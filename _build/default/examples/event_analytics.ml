(* Scenario: analytics over a JSON event stream — the Mison / Fad.js use
   case. The analytics task touches 2 of 24 fields; the structural-index
   projection parser and the speculative lazy decoder avoid materializing
   the other 22.

   Run with:  dune exec examples/event_analytics.exe *)

open Core

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let st = Datagen.rng ~seed:7 in
  let n = 20_000 in
  let docs = Datagen.events st ~fields:24 n in
  let text = Datagen.to_ndjson docs in
  Printf.printf "stream: %d events, %.1f MB\n\n" n
    (float_of_int (String.length text) /. 1e6);

  (* baseline: full tree parse, then extract the two fields *)
  let (full_sum, full_time) =
    time (fun () ->
        match Json.Stream.fold_documents text ~init:0 ~f:(fun acc doc ->
                  match Json.Value.(member "f0" doc, member "f4" doc) with
                  | Some (Json.Value.Int a), Some _ -> acc + a
                  | _ -> acc)
        with
        | Ok sum -> sum
        | Error e -> failwith (Json.Parser.string_of_error e))
  in

  (* Mison-style projection: only f0 and f4 are ever parsed *)
  let (mison_sum, mison_time) =
    time (fun () ->
        match
          Fastjson.Mison.project_ndjson_with_stats
            { Fastjson.Mison.fields = [ "f0"; "f4" ] } text
        with
        | Ok (rows, stats) ->
            let sum =
              List.fold_left
                (fun acc row ->
                  match List.assoc_opt "f0" row with
                  | Some (Json.Value.Int a) -> acc + a
                  | _ -> acc)
                0 rows
            in
            Printf.printf "mison speculation: %d/%d fields found at predicted position\n"
              stats.Fastjson.Mison.speculative_hits
              (2 * stats.Fastjson.Mison.records);
            sum
        | Error m -> failwith m)
  in

  (* Fad.js-style lazy decoding: application code does doc.get "f0" *)
  let (fadjs_sum, fadjs_time) =
    time (fun () ->
        let decoder = Fastjson.Fadjs.create () in
        let lines =
          List.filter (fun l -> l <> "") (String.split_on_char '\n' text)
        in
        let sum =
          List.fold_left
            (fun acc line ->
              match Fastjson.Fadjs.decode decoder line with
              | Ok doc -> (
                  ignore (Fastjson.Fadjs.get doc "f4");
                  match Fastjson.Fadjs.get doc "f0" with
                  | Some (Json.Value.Int a) -> acc + a
                  | _ -> acc)
              | Error m -> failwith m)
            0 lines
        in
        let s = Fastjson.Fadjs.stats decoder in
        Printf.printf "fadjs: %d eager parses, %d skipped values, %d deopts\n\n"
          s.Fastjson.Fadjs.eager_fields s.Fastjson.Fadjs.skipped_fields
          s.Fastjson.Fadjs.deopts;
        sum)
  in

  assert (full_sum = mison_sum && full_sum = fadjs_sum);
  let mb = float_of_int (String.length text) /. 1e6 in
  Printf.printf "full parse : %6.1f ms  (%5.1f MB/s)\n" (full_time *. 1e3) (mb /. full_time);
  Printf.printf "mison      : %6.1f ms  (%5.1f MB/s, %.1fx)\n" (mison_time *. 1e3)
    (mb /. mison_time) (full_time /. mison_time);
  Printf.printf "fadjs      : %6.1f ms  (%5.1f MB/s, %.1fx)\n" (fadjs_time *. 1e3)
    (mb /. fadjs_time) (full_time /. fadjs_time)
