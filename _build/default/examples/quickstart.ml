(* Quickstart: parse JSON, infer a type, generate schemas, validate.

   Run with:  dune exec examples/quickstart.exe *)

open Core

let () =
  (* 1. Parse some JSON documents (e.g. an API response log). *)
  let docs =
    List.map Json.Parser.parse_exn
      [ {|{"id": 1, "name": "ada",   "languages": ["ocaml", "ml"]}|};
        {|{"id": 2, "name": "brian", "languages": ["c"], "awards": 3}|};
        {|{"id": 3, "name": "grace", "languages": []}|} ]
  in

  (* 2. Infer a structural type for the collection: record fields that are
     sometimes missing become optional, type conflicts become unions. *)
  let inferred = Pipeline.infer ~name:"Person" docs in
  print_endline "== inferred type (paper syntax) ==";
  print_endline (Jtype.Types.to_string inferred.Pipeline.jtype);

  (* 3. The same type as JSON Schema, TypeScript and Swift. *)
  print_endline "\n== JSON Schema ==";
  print_endline (Json.Printer.to_string_pretty inferred.Pipeline.json_schema);
  print_endline "\n== TypeScript ==";
  print_endline inferred.Pipeline.typescript;
  print_endline "\n== Swift ==";
  print_endline inferred.Pipeline.swift;

  (* 4. Validate new documents against the inferred schema. *)
  let good = Json.Parser.parse_exn {|{"id": 4, "name": "don", "languages": ["tex"]}|} in
  let bad = Json.Parser.parse_exn {|{"id": "five", "languages": "all"}|} in
  let show v =
    match Jsonschema.Validate.validate ~root:inferred.Pipeline.json_schema v with
    | Ok () -> Printf.printf "valid:   %s\n" (Json.Printer.to_string v)
    | Error es ->
        Printf.printf "invalid: %s\n" (Json.Printer.to_string v);
        List.iter
          (fun e -> Printf.printf "  - %s\n" (Jsonschema.Validate.string_of_error e))
          es
  in
  print_endline "\n== validation ==";
  show good;
  show bad;

  (* 5. Counting types: how often does each field occur? *)
  print_endline "\n== counting type ==";
  print_endline (Jtype.Counting.to_string inferred.Pipeline.counting)
