(* Scenario: validating a payment API with the three schema languages the
   tutorial compares — Joi (co-occurrence + value-dependent constraints),
   JSON Schema (the same contract compiled), and JSound (a restrictive
   subset for the config file).

   Run with:  dune exec examples/validation_pipeline.exe *)

open Core

let payment_schema =
  (* Joi's sweet spot: relations between sibling fields.
     - card payments need number + expiry, and billing_address
     - iban payments need iban, and must NOT carry card fields
     - exactly one of "card" / "iban" mode markers *)
  Joi.object_
    [ ("amount", Joi.(number |> positive |> required));
      ("currency", Joi.(string |> length 3 |> uppercase |> required));
      ("card", Joi.(object_
                      [ ("number", Joi.(string |> pattern "^[0-9]{12,19}$" |> required));
                        ("expiry", Joi.(string |> pattern "^[0-9]{2}/[0-9]{2}$" |> required)) ]));
      ("iban", Joi.(string |> pattern "^[A-Z]{2}[0-9]{2}[A-Z0-9]+$"));
      ("billing_address", Joi.string);
      ("note", Joi.(string |> max 140 |> default (Json.Value.String ""))) ]
  |> Joi.xor [ "card"; "iban" ]
  |> Joi.with_ "card" [ "billing_address" ]
  |> Joi.without "iban" [ "billing_address" ]

let requests =
  [ {|{"amount": 10.5, "currency": "EUR",
       "card": {"number": "4111111111111111", "expiry": "12/27"},
       "billing_address": "1 rue de la Paix"}|};
    {|{"amount": 20, "currency": "USD", "iban": "DE89370400440532013000"}|};
    {|{"amount": 5, "currency": "GBP",
       "card": {"number": "4111111111111111", "expiry": "12/27"}}|};
    {|{"amount": 7, "currency": "EUR",
       "card": {"number": "4111111111111111", "expiry": "12/27"},
       "iban": "DE89370400440532013000", "billing_address": "x"}|};
    {|{"amount": -3, "currency": "EUR", "iban": "DE89370400440532013000"}|};
    {|{"amount": 3, "currency": "eur", "iban": "DE89370400440532013000"}|} ]

let () =
  print_endline "== Joi validation ==";
  List.iter
    (fun src ->
      let v = Json.Parser.parse_exn src in
      match Joi.validate payment_schema v with
      | Ok coerced ->
          Printf.printf "OK      %s\n"
            (Json.Printer.to_string coerced)
      | Error es ->
          Printf.printf "REJECT  %s\n" (Json.Printer.to_string v);
          List.iter (fun e -> Printf.printf "        - %s\n" (Joi.string_of_error e)) es)
    requests;

  (* the same contract, compiled to JSON Schema (the expressible part) *)
  print_endline "\n== compiled JSON Schema ==";
  let compiled = Joi.to_json_schema payment_schema in
  print_endline (Jsonschema.Print.to_string ~pretty:true compiled);

  (* describe() — Joi's introspection *)
  print_endline "\n== Joi describe() ==";
  print_endline (Json.Printer.to_string_pretty (Joi.describe payment_schema));

  (* JSound for the service's config file: restrictive on purpose *)
  print_endline "\n== JSound config validation ==";
  let config_schema =
    match
      Jsound.parse_string
        {|{"endpoint": "anyURI", "timeout_ms": "integer",
           "?retries": "integer?", "currencies": ["string"]}|}
    with
    | Ok s -> s
    | Error m -> failwith m
  in
  List.iter
    (fun src ->
      let v = Json.Parser.parse_exn src in
      match Jsound.validate config_schema v with
      | Ok () -> Printf.printf "OK      %s\n" src
      | Error es ->
          Printf.printf "REJECT  %s\n" src;
          List.iter (fun e -> Printf.printf "        - %s\n" (Jsound.string_of_error e)) es)
    [ {|{"endpoint": "https://pay.example.com", "timeout_ms": 500, "currencies": ["EUR", "USD"]}|};
      {|{"endpoint": "https://pay.example.com", "timeout_ms": 500, "retries": null, "currencies": []}|};
      {|{"endpoint": "not a uri", "timeout_ms": "fast", "currencies": ["EUR"]}|} ]
