examples/event_analytics.mli:
