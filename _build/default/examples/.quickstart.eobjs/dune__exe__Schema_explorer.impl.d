examples/schema_explorer.ml: Core Datagen Inference Json Jtype List Printf Query String
