examples/quickstart.mli:
