examples/validation_pipeline.ml: Core Joi Json Jsonschema Jsound List Printf
