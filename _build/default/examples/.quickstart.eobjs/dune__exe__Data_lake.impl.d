examples/data_lake.ml: Core Datagen Inference List Pipeline Printf Stdlib String Translate
