examples/data_lake.mli:
