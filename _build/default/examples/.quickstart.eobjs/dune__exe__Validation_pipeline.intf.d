examples/validation_pipeline.mli:
