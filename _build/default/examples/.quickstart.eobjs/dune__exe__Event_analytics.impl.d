examples/event_analytics.ml: Core Datagen Fastjson Json List Printf String Unix
