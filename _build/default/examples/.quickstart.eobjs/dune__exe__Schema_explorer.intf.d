examples/schema_explorer.mli:
