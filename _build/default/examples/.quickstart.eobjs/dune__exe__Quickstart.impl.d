examples/quickstart.ml: Core Json Jsonschema Jtype List Pipeline Printf
