examples/api_evolution.ml: Core Datagen Inference Json Jtype List Printf String Translate
