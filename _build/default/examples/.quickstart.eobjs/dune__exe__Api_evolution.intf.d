examples/api_evolution.mli:
