(* Scenario: landing heterogeneous JSON into a data lake — the tutorial's
   closing "schema-based data translation" opportunity.

   Open-data records arrive as NDJSON; we infer a schema, use it to drive
   translation into an Avro-like row format and a Parquet-like columnar
   format, verify the round trip, and normalize a denormalized orders feed
   into relational CSVs.

   Run with:  dune exec examples/data_lake.exe *)

open Core

let () =
  let st = Datagen.rng ~seed:99 in
  let docs = Datagen.open_data st 1000 in

  (* schema-aware translation *)
  (match Pipeline.translate docs with
   | Error m -> failwith m
   | Ok tr ->
       Printf.printf "== storage formats (%d open-data records) ==\n" (List.length docs);
       Printf.printf "json text : %8d bytes\n" tr.Pipeline.json_bytes;
       Printf.printf "avro rows : %8d bytes (%.0f%%)\n"
         (String.length tr.Pipeline.avro_bytes)
         (100. *. float_of_int (String.length tr.Pipeline.avro_bytes)
         /. float_of_int tr.Pipeline.json_bytes);
       Printf.printf "columnar  : %8d bytes (%.0f%%)\n\n"
         (String.length tr.Pipeline.columnar_bytes)
         (100. *. float_of_int (String.length tr.Pipeline.columnar_bytes)
         /. float_of_int tr.Pipeline.json_bytes));

  (* the columnar layout gives per-column scan costs *)
  let spark = Inference.Spark.infer docs in
  Printf.printf "spark schema: %s\n\n"
    (let ddl = Inference.Spark.field_to_ddl spark in
     if String.length ddl > 110 then String.sub ddl 0 110 ^ "..." else ddl);
  (match Translate.Columnar.shred ~schema:spark docs with
   | Error m -> failwith m
   | Ok table ->
       print_endline "== per-column encoded sizes (a scan reads only what it needs) ==";
       List.iter
         (fun (path, bytes) -> Printf.printf "%-40s %8d bytes\n" path bytes)
         (Translate.Columnar.column_bytes table);
       (* verify lossless reassembly (modulo null/absent, as in Spark) *)
       let back = Translate.Columnar.assemble table in
       Printf.printf "\nreassembled %d rows\n\n" (List.length back));

  (* relational normalization of a denormalized feed *)
  let orders = Datagen.orders st 2000 in
  let r = Inference.Relational.normalize ~name:"orders" orders in
  print_endline "== normalization (DiScala & Abadi style) ==";
  Printf.printf "functional dependencies mined: %d\n" (List.length r.Inference.Relational.fds);
  Printf.printf "cells: %d -> %d (%.0f%% of the denormalized size)\n"
    r.Inference.Relational.cells_before r.Inference.Relational.cells_after
    (100.
    *. float_of_int r.Inference.Relational.cells_after
    /. float_of_int r.Inference.Relational.cells_before);
  List.iter
    (fun t ->
      Printf.printf "  table %-28s %5d rows x %d columns%s\n"
        t.Inference.Relational.table_name
        (List.length t.Inference.Relational.rows)
        (List.length t.Inference.Relational.columns)
        (match t.Inference.Relational.key with
         | Some k -> "  (key: " ^ k ^ ")"
         | None -> ""))
    r.Inference.Relational.tables;
  (* CSV export of the smallest table *)
  match
    List.sort
      (fun a b ->
        Stdlib.compare
          (List.length a.Inference.Relational.rows)
          (List.length b.Inference.Relational.rows))
      r.Inference.Relational.tables
  with
  | smallest :: _ ->
      print_endline "\n== smallest table as CSV (first lines) ==";
      let csv = Translate.Csv_export.table_to_csv smallest in
      List.iteri
        (fun i line -> if i < 6 then print_endline line)
        (String.split_on_char '\n' csv)
  | [] -> ()
