(* Scenario: making sense of an unfamiliar document store.

   A "bucket" contains three interleaved entity kinds (as NoSQL collections
   often do). We (1) discover the entity clusters Couchbase-style,
   (2) profile WHY documents vary with a decision tree (Gallinucci-style
   schema profiling), and (3) run typed Jaql-style queries whose output
   schemas are inferred statically before execution.

   Run with:  dune exec examples/schema_explorer.exe *)

open Core

let () =
  let st = Datagen.rng ~seed:4242 in
  (* a mixed bucket: tweets, articles, and open-data records *)
  let bucket =
    List.concat
      [ Datagen.tweets st 120; Datagen.articles st 60; Datagen.open_data st 30 ]
  in

  (* --- 1. discovery: what lives in this bucket? *)
  print_endline "== cluster discovery ==";
  let clusters = Inference.Discovery.discover ~threshold:0.35 bucket in
  List.iteri
    (fun i (c : Inference.Discovery.cluster) ->
      let schema = Jtype.Types.to_string c.Inference.Discovery.schema in
      let shown = if String.length schema > 90 then String.sub schema 0 90 ^ "..." else schema in
      Printf.printf "cluster %d: %4d docs   %s\n" i c.Inference.Discovery.size shown)
    clusters;

  (* --- 2. profiling: why do documents vary structurally? Support tickets
     carry their explanation in the "channel" field. *)
  print_endline "\n== schema profiling (support tickets) ==";
  let tix = Datagen.tickets st 400 in
  let p = Inference.Profile.profile ~max_depth:3 tix in
  Printf.printf "structural variants: %d; training accuracy %.2f\n"
    (List.length p.Inference.Profile.variants)
    p.Inference.Profile.training_accuracy;
  let shown = ref 0 in
  List.iter
    (fun rule ->
      if !shown < 5 then begin
        incr shown;
        let rule =
          if String.length rule > 100 then String.sub rule 0 100 ^ "..." else rule
        in
        print_endline ("  " ^ rule)
      end)
    (Inference.Profile.rules p);

  (* --- 3. typed queries over the discovered tweet cluster *)
  let tweets = Datagen.tweets st 400 in
  print_endline "\n== typed query ==";
  let q =
    "filter $.retweet_count > 1000 \
     | group by $.lang into {n: count, reach: sum $.retweet_count} \
     | sort by $.reach desc"
  in
  Printf.printf "query: %s\n" q;
  let pipeline = Query.Parse.pipeline_exn q in
  let input_t =
    Jtype.Merge.merge_all ~equiv:Jtype.Merge.Kind
      (List.map Jtype.Types.of_value tweets)
  in
  let output_t = Query.Typing.type_pipeline input_t pipeline in
  Printf.printf "inferred output schema: %s\n" (Jtype.Types.to_string output_t);
  Printf.printf "as TypeScript: %s\n\n" (Jtype.Typescript.type_expr output_t);
  let results = Query.Eval.run pipeline tweets in
  List.iter (fun v -> print_endline ("  " ^ Json.Printer.to_string v)) results;
  (* the static promise holds *)
  assert (List.for_all (fun v -> Jtype.Typecheck.member v output_t) results);
  print_endline "\nevery result inhabits the inferred schema ✓"
