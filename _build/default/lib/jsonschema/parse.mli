(** Reading a {!Schema.t} out of its JSON representation.

    Unknown keywords are ignored (per spec); malformed keyword values are
    errors. Each error carries the JSON pointer of the offending keyword. *)

type error = { at : Json.Pointer.t; message : string }

val string_of_error : error -> string

val of_json : Json.Value.t -> (Schema.t, error) result
val of_string : string -> (Schema.t, string) result
(** Parse the JSON text then the schema; both error kinds are formatted. *)

val of_json_exn : Json.Value.t -> Schema.t
val of_string_exn : string -> Schema.t
