(** Static sanity checks over schema documents (the "well-formedness"
    judgment of Pezoa et al.).

    These are checks on the schema itself, independent of any instance:
    internal [$ref] targets must resolve, numeric and size bounds must be
    internally consistent, and tuple-[items]/[additionalItems] combinations
    must make sense. A well-formed schema can still be unsatisfiable (that
    is undecidable in general once [not] enters the language); these checks
    catch the mistakes schema authors actually make. *)

type warning = { at : Json.Pointer.t; message : string }

val string_of_warning : warning -> string

val check : Json.Value.t -> warning list
(** Analyze a schema document (as JSON, so that [$ref] targets anywhere in
    the document can be verified). Empty list = no problems found. *)

val is_wellformed : Json.Value.t -> bool
