(** Abstract syntax of JSON Schema (draft-04/06/07 core).

    This follows the formal treatment of Pezoa et al. (WWW'16): a schema is
    either a boolean or a conjunction of keyword assertions, each keyword
    constraining one primitive type (assertions for other types are vacuous),
    plus the Boolean combinators [allOf]/[anyOf]/[oneOf]/[not], conditional
    [if]/[then]/[else], and internal [$ref] indirection.

    Remote references are out of scope: [$ref] must be ["#"] or a ["#/..."]
    JSON-pointer into the current document. *)

type type_name = [ `Null | `Boolean | `Integer | `Number | `String | `Array | `Object ]

val type_name_to_string : type_name -> string
val type_name_of_string : string -> type_name option

type t =
  | Bool_schema of bool  (** [true] accepts everything, [false] nothing *)
  | Schema of node

and node = {
  (* generic *)
  types : type_name list option;  (** [type]: empty list never occurs *)
  enum : Json.Value.t list option;
  const : Json.Value.t option;
  (* numeric *)
  multiple_of : float option;
  maximum : float option;
  exclusive_maximum : float option;
  minimum : float option;
  exclusive_minimum : float option;
  (* string *)
  min_length : int option;
  max_length : int option;
  pattern : (string * Re.re) option;
  format : string option;  (** assertion only when the validator opts in *)
  (* array *)
  items : items option;
  additional_items : t option;
  min_items : int option;
  max_items : int option;
  unique_items : bool;
  contains : t option;
  min_contains : int option;  (** draft 2019-09; applies with [contains] *)
  max_contains : int option;
  (* object *)
  properties : (string * t) list;
  pattern_properties : (string * Re.re * t) list;
  additional_properties : t option;
  required : string list;
  min_properties : int option;
  max_properties : int option;
  property_names : t option;
  dependencies : (string * dependency) list;
  (* combinators *)
  all_of : t list;
  any_of : t list;
  one_of : t list;
  not_ : t option;
  if_ : t option;
  then_ : t option;
  else_ : t option;
  (* reference *)
  ref_ : string option;
  definitions : (string * t) list;
  (* annotations *)
  title : string option;
  description : string option;
  default : Json.Value.t option;
}

and items =
  | Items_one : t -> items      (** homogeneous: every element *)
  | Items_many : t list -> items (** positional (tuple) validation *)

and dependency =
  | Dep_required of string list  (** presence implies presence *)
  | Dep_schema of t              (** presence implies the whole object matches *)

val empty : node
(** All keywords absent: semantically [true]. *)

val node : ?types:type_name list -> unit -> node
(** Convenience for building nodes programmatically; start from {!empty} and
    override fields for anything richer. *)

val is_trivial : t -> bool
(** [true] schema or a node with no constraining keyword. *)

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Fold over this schema and every syntactic subschema. *)

val size : t -> int
(** Number of schema nodes (used by the conciseness experiments). *)
