let number f =
  if Float.is_integer f && Float.abs f < 1e15 then Json.Value.Int (int_of_float f)
  else Json.Value.Float f

let rec to_json (s : Schema.t) : Json.Value.t =
  match s with
  | Schema.Bool_schema b -> Json.Value.Bool b
  | Schema.Schema n ->
      let fields = ref [] in
      let add k v = fields := (k, v) :: !fields in
      let add_opt k f o = Option.iter (fun x -> add k (f x)) o in
      let add_schemas k = function
        | [] -> ()
        | ss -> add k (Json.Value.Array (List.map to_json ss))
      in
      let add_schema_map k = function
        | [] -> ()
        | m -> add k (Json.Value.Object (List.map (fun (name, s) -> (name, to_json s)) m))
      in
      let str s = Json.Value.String s in
      let int n = Json.Value.Int n in
      add_opt "title" str n.title;
      add_opt "description" str n.description;
      add_opt "type"
        (function
          | [ t ] -> str (Schema.type_name_to_string t)
          | ts -> Json.Value.Array (List.map (fun t -> str (Schema.type_name_to_string t)) ts))
        n.types;
      add_opt "enum" (fun vs -> Json.Value.Array vs) n.enum;
      add_opt "const" Fun.id n.const;
      add_opt "multipleOf" number n.multiple_of;
      add_opt "maximum" number n.maximum;
      add_opt "exclusiveMaximum" number n.exclusive_maximum;
      add_opt "minimum" number n.minimum;
      add_opt "exclusiveMinimum" number n.exclusive_minimum;
      add_opt "minLength" int n.min_length;
      add_opt "maxLength" int n.max_length;
      add_opt "pattern" (fun (src, _) -> str src) n.pattern;
      add_opt "format" str n.format;
      add_opt "items"
        (function
          | Schema.Items_one s -> to_json s
          | Schema.Items_many ss -> Json.Value.Array (List.map to_json ss))
        n.items;
      add_opt "additionalItems" to_json n.additional_items;
      add_opt "minItems" int n.min_items;
      add_opt "maxItems" int n.max_items;
      if n.unique_items then add "uniqueItems" (Json.Value.Bool true);
      add_opt "contains" to_json n.contains;
      add_opt "minContains" int n.min_contains;
      add_opt "maxContains" int n.max_contains;
      add_schema_map "properties" n.properties;
      (match n.pattern_properties with
       | [] -> ()
       | pps ->
           add "patternProperties"
             (Json.Value.Object (List.map (fun (src, _, s) -> (src, to_json s)) pps)));
      add_opt "additionalProperties" to_json n.additional_properties;
      (match n.required with
       | [] -> ()
       | rs -> add "required" (Json.Value.Array (List.map str rs)));
      add_opt "minProperties" int n.min_properties;
      add_opt "maxProperties" int n.max_properties;
      add_opt "propertyNames" to_json n.property_names;
      (match n.dependencies with
       | [] -> ()
       | deps ->
           add "dependencies"
             (Json.Value.Object
                (List.map
                   (fun (name, d) ->
                     ( name,
                       match d with
                       | Schema.Dep_required ks -> Json.Value.Array (List.map str ks)
                       | Schema.Dep_schema s -> to_json s ))
                   deps)));
      add_schemas "allOf" n.all_of;
      add_schemas "anyOf" n.any_of;
      add_schemas "oneOf" n.one_of;
      add_opt "not" to_json n.not_;
      add_opt "if" to_json n.if_;
      add_opt "then" to_json n.then_;
      add_opt "else" to_json n.else_;
      add_opt "$ref" str n.ref_;
      add_schema_map "definitions" n.definitions;
      add_opt "default" Fun.id n.default;
      Json.Value.Object (List.rev !fields)

let to_string ?(pretty = false) s =
  let j = to_json s in
  if pretty then Json.Printer.to_string_pretty j else Json.Printer.to_string j

let pp ppf s = Format.pp_print_string ppf (to_string s)
