lib/jsonschema/wellformed.ml: Float Json List Option Parse Printf Schema String
