lib/jsonschema/parse.ml: Json List Option Printf Re Schema
