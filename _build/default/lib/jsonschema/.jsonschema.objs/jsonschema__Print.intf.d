lib/jsonschema/print.mli: Format Json Schema
