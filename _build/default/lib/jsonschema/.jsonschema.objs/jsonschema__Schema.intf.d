lib/jsonschema/schema.mli: Json Re
