lib/jsonschema/generate.ml: Char Float Json List Option Parse Random Schema String Validate
