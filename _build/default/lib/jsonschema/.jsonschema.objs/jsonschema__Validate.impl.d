lib/jsonschema/validate.ml: Char Float Hashtbl Json Lazy List Option Parse Print Printf Re Result Schema String
