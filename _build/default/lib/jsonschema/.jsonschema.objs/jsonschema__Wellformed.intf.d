lib/jsonschema/wellformed.mli: Json
