lib/jsonschema/parse.mli: Json Schema
