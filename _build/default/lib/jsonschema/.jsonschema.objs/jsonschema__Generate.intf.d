lib/jsonschema/generate.mli: Json Schema
