lib/jsonschema/validate.mli: Json Schema
