lib/jsonschema/schema.ml: Json List Option Re
