lib/jsonschema/print.ml: Float Format Fun Json List Option Schema
