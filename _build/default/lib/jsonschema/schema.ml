type type_name = [ `Null | `Boolean | `Integer | `Number | `String | `Array | `Object ]

let type_name_to_string = function
  | `Null -> "null"
  | `Boolean -> "boolean"
  | `Integer -> "integer"
  | `Number -> "number"
  | `String -> "string"
  | `Array -> "array"
  | `Object -> "object"

let type_name_of_string = function
  | "null" -> Some `Null
  | "boolean" -> Some `Boolean
  | "integer" -> Some `Integer
  | "number" -> Some `Number
  | "string" -> Some `String
  | "array" -> Some `Array
  | "object" -> Some `Object
  | _ -> None

type t =
  | Bool_schema of bool
  | Schema of node

and node = {
  types : type_name list option;
  enum : Json.Value.t list option;
  const : Json.Value.t option;
  multiple_of : float option;
  maximum : float option;
  exclusive_maximum : float option;
  minimum : float option;
  exclusive_minimum : float option;
  min_length : int option;
  max_length : int option;
  pattern : (string * Re.re) option;
  format : string option;
  items : items option;
  additional_items : t option;
  min_items : int option;
  max_items : int option;
  unique_items : bool;
  contains : t option;
  min_contains : int option;
  max_contains : int option;
  properties : (string * t) list;
  pattern_properties : (string * Re.re * t) list;
  additional_properties : t option;
  required : string list;
  min_properties : int option;
  max_properties : int option;
  property_names : t option;
  dependencies : (string * dependency) list;
  all_of : t list;
  any_of : t list;
  one_of : t list;
  not_ : t option;
  if_ : t option;
  then_ : t option;
  else_ : t option;
  ref_ : string option;
  definitions : (string * t) list;
  title : string option;
  description : string option;
  default : Json.Value.t option;
}

and items =
  | Items_one : t -> items
  | Items_many : t list -> items

and dependency =
  | Dep_required of string list
  | Dep_schema of t

let empty =
  {
    types = None;
    enum = None;
    const = None;
    multiple_of = None;
    maximum = None;
    exclusive_maximum = None;
    minimum = None;
    exclusive_minimum = None;
    min_length = None;
    max_length = None;
    pattern = None;
    format = None;
    items = None;
    additional_items = None;
    min_items = None;
    max_items = None;
    unique_items = false;
    contains = None;
    min_contains = None;
    max_contains = None;
    properties = [];
    pattern_properties = [];
    additional_properties = None;
    required = [];
    min_properties = None;
    max_properties = None;
    property_names = None;
    dependencies = [];
    all_of = [];
    any_of = [];
    one_of = [];
    not_ = None;
    if_ = None;
    then_ = None;
    else_ = None;
    ref_ = None;
    definitions = [];
    title = None;
    description = None;
    default = None;
  }

let node ?types () = { empty with types }

let is_trivial = function
  | Bool_schema true -> true
  | Bool_schema false -> false
  | Schema n ->
      n.types = None && n.enum = None && n.const = None && n.multiple_of = None
      && n.maximum = None && n.exclusive_maximum = None && n.minimum = None
      && n.exclusive_minimum = None && n.min_length = None && n.max_length = None
      && n.pattern = None && n.items = None && n.additional_items = None
      && n.min_items = None && n.max_items = None && not n.unique_items
      && n.contains = None && n.min_contains = None && n.max_contains = None
      && n.properties = [] && n.pattern_properties = []
      && n.additional_properties = None && n.required = [] && n.min_properties = None
      && n.max_properties = None && n.property_names = None && n.dependencies = []
      && n.all_of = [] && n.any_of = [] && n.one_of = [] && n.not_ = None
      && n.if_ = None && n.ref_ = None

let subschemas n =
  let opt = Option.to_list in
  let items =
    match n.items with
    | None -> []
    | Some (Items_one s) -> [ s ]
    | Some (Items_many ss) -> ss
  in
  let deps =
    List.filter_map
      (function _, Dep_schema s -> Some s | _, Dep_required _ -> None)
      n.dependencies
  in
  items
  @ opt n.additional_items @ opt n.contains
  @ List.map snd n.properties
  @ List.map (fun (_, _, s) -> s) n.pattern_properties
  @ opt n.additional_properties @ opt n.property_names @ deps @ n.all_of @ n.any_of
  @ n.one_of @ opt n.not_ @ opt n.if_ @ opt n.then_ @ opt n.else_
  @ List.map snd n.definitions

let rec fold f acc s =
  let acc = f acc s in
  match s with
  | Bool_schema _ -> acc
  | Schema n -> List.fold_left (fold f) acc (subschemas n)

let size s = fold (fun n _ -> n + 1) 0 s
