type rng = Random.State.t

let rng ~seed = Random.State.make [| seed |]

let pick st xs = List.nth xs (Random.State.int st (List.length xs))

let gen_string st n =
  String.init n (fun _ -> Char.chr (Char.code 'a' + Random.State.int st 26))

let gen_number st (n : Schema.node) =
  let lo =
    match (n.Schema.minimum, n.Schema.exclusive_minimum) with
    | Some m, _ -> m
    | None, Some m -> m +. 1.0
    | None, None -> -1000.0
  in
  let hi =
    match (n.Schema.maximum, n.Schema.exclusive_maximum) with
    | Some m, _ -> m
    | None, Some m -> m -. 1.0
    | None, None -> 1000.0
  in
  let hi = if hi < lo then lo else hi in
  match n.Schema.multiple_of with
  | Some m ->
      let k_lo = Float.ceil (lo /. m) in
      let k_hi = Float.floor (hi /. m) in
      let k = k_lo +. Float.of_int (Random.State.int st (max 1 (int_of_float (k_hi -. k_lo +. 1.0)))) in
      k *. m
  | None -> lo +. Random.State.float st (hi -. lo)

let rec generate ?(max_depth = 6) st (s : Schema.t) : Json.Value.t =
  match s with
  | Schema.Bool_schema _ -> Json.Value.Null
  | Schema.Schema n -> gen_node ~max_depth st n

and gen_node ~max_depth st (n : Schema.node) =
  match (n.Schema.const, n.Schema.enum) with
  | Some c, _ -> c
  | None, Some vs -> pick st vs
  | None, None -> (
      (* delegate through combinators first *)
      match n.Schema.any_of, n.Schema.one_of, n.Schema.all_of with
      | (_ :: _ as branches), _, _ | [], (_ :: _ as branches), _ ->
          generate ~max_depth st (pick st branches)
      | [], [], [ s ] -> generate ~max_depth st s
      | _ ->
          let t =
            match n.Schema.types with
            | Some ts -> pick st ts
            | None ->
                if n.Schema.properties <> [] || n.Schema.required <> [] then `Object
                else if n.Schema.items <> None then `Array
                else if
                  n.Schema.minimum <> None || n.Schema.maximum <> None
                  || n.Schema.multiple_of <> None
                then `Number
                else if
                  n.Schema.pattern <> None || n.Schema.min_length <> None
                  || n.Schema.max_length <> None || n.Schema.format <> None
                then `String
                else
                  pick st
                    (if max_depth > 0 then
                       [ `Null; `Boolean; `Integer; `Number; `String; `Array; `Object ]
                     else [ `Null; `Boolean; `Integer; `Number; `String ])
          in
          gen_typed ~max_depth st n t)

and gen_typed ~max_depth st (n : Schema.node) t =
  match t with
  | `Null -> Json.Value.Null
  | `Boolean -> Json.Value.Bool (Random.State.bool st)
  | `Integer ->
      let f = gen_number st n in
      let i = Float.to_int (Float.round f) in
      let i =
        (* re-clamp after rounding *)
        match (n.Schema.minimum, n.Schema.maximum) with
        | Some lo, _ when float_of_int i < lo -> int_of_float (Float.ceil lo)
        | _, Some hi when float_of_int i > hi -> int_of_float (Float.floor hi)
        | _ -> i
      in
      Json.Value.Int i
  | `Number ->
      let f = gen_number st n in
      if Float.is_integer f then Json.Value.Float f else Json.Value.Float f
  | `String ->
      let min_l = Option.value ~default:0 n.Schema.min_length in
      let max_l = Option.value ~default:(max min_l 12) n.Schema.max_length in
      let len = min_l + Random.State.int st (max 1 (max_l - min_l + 1)) in
      let s =
        match n.Schema.format with
        | Some "date" -> "2021-04-05"
        | Some "date-time" -> "2021-04-05T10:44:00Z"
        | Some "time" -> "10:44:00Z"
        | Some "email" -> gen_string st 5 ^ "@example.com"
        | Some "uri" -> "https://example.com/" ^ gen_string st 6
        | Some "uuid" -> "123e4567-e89b-12d3-a456-426614174000"
        | Some "ipv4" -> "192.168.0.1"
        | Some "hostname" -> gen_string st 6 ^ ".example.com"
        | _ -> gen_string st len
      in
      Json.Value.String s
  | `Array ->
      if max_depth <= 0 then Json.Value.Array []
      else
        let min_i = Option.value ~default:0 n.Schema.min_items in
        let max_i = Option.value ~default:(min_i + 3) n.Schema.max_items in
        let len = min_i + Random.State.int st (max 1 (max_i - min_i + 1)) in
        let elem i =
          match n.Schema.items with
          | Some (Schema.Items_one s) -> generate ~max_depth:(max_depth - 1) st s
          | Some (Schema.Items_many ss) when i < List.length ss ->
              generate ~max_depth:(max_depth - 1) st (List.nth ss i)
          | Some (Schema.Items_many _) -> (
              match n.Schema.additional_items with
              | Some s -> generate ~max_depth:(max_depth - 1) st s
              | None -> Json.Value.Null)
          | None -> Json.Value.Int (Random.State.int st 100)
        in
        Json.Value.Array (List.init len elem)
  | `Object ->
      if max_depth <= 0 then Json.Value.Object []
      else
        let required = n.Schema.required in
        let optional =
          List.filter (fun (k, _) -> not (List.mem k required)) n.Schema.properties
        in
        let fields =
          List.map
            (fun k ->
              let s =
                match List.assoc_opt k n.Schema.properties with
                | Some s -> s
                | None -> Schema.Bool_schema true
              in
              (k, generate ~max_depth:(max_depth - 1) st s))
            required
          @ List.filter_map
              (fun (k, s) ->
                if Random.State.bool st then
                  Some (k, generate ~max_depth:(max_depth - 1) st s)
                else None)
              optional
        in
        Json.Value.Object fields

let generate_valid ?max_depth ?(attempts = 50) st ~root =
  match Parse.of_json root with
  | Error _ -> None
  | Ok s ->
      let rec try_ k =
        if k <= 0 then None
        else
          let v = generate ?max_depth st s in
          if Validate.is_valid ~root v then Some v else try_ (k - 1)
      in
      try_ attempts
