type error = { at : Json.Pointer.t; message : string }

let string_of_error { at; message } =
  Printf.sprintf "at %s: %s"
    (match Json.Pointer.to_string at with "" -> "#" | p -> "#" ^ p)
    message

exception Err of error

let fail at message = raise (Err { at; message })
let key at k = Json.Pointer.append at (Json.Pointer.Key k)
let idx at i = Json.Pointer.append at (Json.Pointer.Index i)

let as_int at = function
  | Json.Value.Int n -> n
  | v -> fail at (Printf.sprintf "expected an integer, got %s" (Json.Value.kind_name (Json.Value.kind v)))

let as_nonneg_int at v =
  let n = as_int at v in
  if n < 0 then fail at "expected a non-negative integer" else n

let as_number at = function
  | Json.Value.Int n -> float_of_int n
  | Json.Value.Float f -> f
  | v -> fail at (Printf.sprintf "expected a number, got %s" (Json.Value.kind_name (Json.Value.kind v)))

let as_string at = function
  | Json.Value.String s -> s
  | v -> fail at (Printf.sprintf "expected a string, got %s" (Json.Value.kind_name (Json.Value.kind v)))

let as_bool at = function
  | Json.Value.Bool b -> b
  | v -> fail at (Printf.sprintf "expected a boolean, got %s" (Json.Value.kind_name (Json.Value.kind v)))

let as_array at = function
  | Json.Value.Array vs -> vs
  | v -> fail at (Printf.sprintf "expected an array, got %s" (Json.Value.kind_name (Json.Value.kind v)))

let as_obj at = function
  | Json.Value.Object fields -> fields
  | v -> fail at (Printf.sprintf "expected an object, got %s" (Json.Value.kind_name (Json.Value.kind v)))

let compile_pattern at src =
  match Re.Pcre.re src with
  | re -> (src, Re.compile re)
  | exception _ -> fail at (Printf.sprintf "invalid regular expression %S" src)

let parse_type_field at v =
  let one at v =
    let s = as_string at v in
    match Schema.type_name_of_string s with
    | Some t -> t
    | None -> fail at (Printf.sprintf "unknown type name %S" s)
  in
  match v with
  | Json.Value.String _ -> [ one at v ]
  | Json.Value.Array vs ->
      if vs = [] then fail at "\"type\" array must not be empty"
      else List.mapi (fun i x -> one (idx at i) x) vs
  | _ -> fail at "\"type\" must be a string or an array of strings"

let rec parse_schema at v : Schema.t =
  match v with
  | Json.Value.Bool b -> Schema.Bool_schema b
  | Json.Value.Object fields -> Schema.Schema (parse_node at fields)
  | v ->
      fail at
        (Printf.sprintf "a schema must be a boolean or an object, got %s"
           (Json.Value.kind_name (Json.Value.kind v)))

and parse_node at fields : Schema.node =
  let find k = List.assoc_opt k fields in
  let opt k f = Option.map (fun v -> f (key at k) v) (find k) in
  let schema_opt k = opt k parse_schema in
  let schema_list k =
    match find k with
    | None -> []
    | Some v ->
        let vs = as_array (key at k) v in
        if vs = [] then fail (key at k) (Printf.sprintf "%S must not be empty" k)
        else List.mapi (fun i x -> parse_schema (idx (key at k) i) x) vs
  in
  let schema_map k =
    match find k with
    | None -> []
    | Some v ->
        List.map
          (fun (name, x) -> (name, parse_schema (key (key at k) name) x))
          (as_obj (key at k) v)
  in
  let items =
    match find "items" with
    | None -> None
    | Some (Json.Value.Array vs) ->
        Some
          (Schema.Items_many
             (List.mapi (fun i x -> parse_schema (idx (key at "items") i) x) vs))
    | Some v -> Some (Schema.Items_one (parse_schema (key at "items") v))
  in
  let required =
    match find "required" with
    | None -> []
    | Some v ->
        let a = key at "required" in
        List.mapi (fun i x -> as_string (idx a i) x) (as_array a v)
  in
  let dependencies =
    (* draft-7 "dependencies" plus its 2019-09 split into dependentRequired /
       dependentSchemas; all three merge into one list *)
    let legacy =
      match find "dependencies" with
      | None -> []
      | Some v ->
          let a = key at "dependencies" in
          List.map
            (fun (name, x) ->
              let da = key a name in
              match x with
              | Json.Value.Array vs ->
                  (name, Schema.Dep_required (List.mapi (fun i y -> as_string (idx da i) y) vs))
              | _ -> (name, Schema.Dep_schema (parse_schema da x)))
            (as_obj a v)
    in
    let dep_required =
      match find "dependentRequired" with
      | None -> []
      | Some v ->
          let a = key at "dependentRequired" in
          List.map
            (fun (name, x) ->
              let da = key a name in
              (name,
               Schema.Dep_required
                 (List.mapi (fun i y -> as_string (idx da i) y) (as_array da x))))
            (as_obj a v)
    in
    let dep_schemas =
      match find "dependentSchemas" with
      | None -> []
      | Some v ->
          let a = key at "dependentSchemas" in
          List.map
            (fun (name, x) -> (name, Schema.Dep_schema (parse_schema (key a name) x)))
            (as_obj a v)
    in
    legacy @ dep_required @ dep_schemas
  in
  let pattern_properties =
    match find "patternProperties" with
    | None -> []
    | Some v ->
        let a = key at "patternProperties" in
        List.map
          (fun (pat, x) ->
            let src, re = compile_pattern (key a pat) pat in
            (src, re, parse_schema (key a pat) x))
          (as_obj a v)
  in
  (* draft-4 wrote exclusiveMaximum as a boolean modifying maximum;
     draft-6+ made it a standalone number. Accept both: a boolean [true]
     turns the adjacent bound exclusive. *)
  let maximum, exclusive_maximum =
    match find "exclusiveMaximum" with
    | Some (Json.Value.Bool true) ->
        (None, Option.map (as_number (key at "maximum")) (find "maximum"))
    | Some (Json.Value.Bool false) | None -> (opt "maximum" as_number, None)
    | Some v ->
        (opt "maximum" as_number, Some (as_number (key at "exclusiveMaximum") v))
  in
  let minimum, exclusive_minimum =
    match find "exclusiveMinimum" with
    | Some (Json.Value.Bool true) ->
        (None, Option.map (as_number (key at "minimum")) (find "minimum"))
    | Some (Json.Value.Bool false) | None -> (opt "minimum" as_number, None)
    | Some v ->
        (opt "minimum" as_number, Some (as_number (key at "exclusiveMinimum") v))
  in
  {
    Schema.empty with
    types = opt "type" parse_type_field;
    enum =
      Option.map
        (fun v ->
          let a = key at "enum" in
          match as_array a v with
          | [] -> fail a "\"enum\" must not be empty"
          | vs -> vs)
        (find "enum");
    const = find "const";
    multiple_of =
      opt "multipleOf" (fun a v ->
          let f = as_number a v in
          if f <= 0.0 then fail a "\"multipleOf\" must be positive" else f);
    maximum;
    exclusive_maximum;
    minimum;
    exclusive_minimum;
    min_length = opt "minLength" as_nonneg_int;
    max_length = opt "maxLength" as_nonneg_int;
    pattern = opt "pattern" (fun a v -> compile_pattern a (as_string a v));
    format = opt "format" as_string;
    items;
    additional_items = schema_opt "additionalItems";
    min_items = opt "minItems" as_nonneg_int;
    max_items = opt "maxItems" as_nonneg_int;
    unique_items = Option.value ~default:false (opt "uniqueItems" as_bool);
    contains = schema_opt "contains";
    min_contains = opt "minContains" as_nonneg_int;
    max_contains = opt "maxContains" as_nonneg_int;
    properties = schema_map "properties";
    pattern_properties;
    additional_properties = schema_opt "additionalProperties";
    required;
    min_properties = opt "minProperties" as_nonneg_int;
    max_properties = opt "maxProperties" as_nonneg_int;
    property_names = schema_opt "propertyNames";
    dependencies;
    all_of = schema_list "allOf";
    any_of = schema_list "anyOf";
    one_of = schema_list "oneOf";
    not_ = schema_opt "not";
    if_ = schema_opt "if";
    then_ = schema_opt "then";
    else_ = schema_opt "else";
    ref_ = opt "$ref" (fun a v -> as_string a v);
    definitions = schema_map "definitions" @ schema_map "$defs";
    title = opt "title" as_string;
    description = opt "description" as_string;
    default = find "default";
  }

let of_json v =
  match parse_schema [] v with
  | s -> Ok s
  | exception Err e -> Error e

let of_json_exn v =
  match of_json v with Ok s -> s | Error e -> invalid_arg (string_of_error e)

let of_string src =
  match Json.Parser.parse src with
  | Error e -> Error (Json.Parser.string_of_error e)
  | Ok v -> (
      match of_json v with
      | Ok s -> Ok s
      | Error e -> Error (string_of_error e))

let of_string_exn src =
  match of_string src with Ok s -> s | Error msg -> invalid_arg msg
