type warning = { at : Json.Pointer.t; message : string }

let string_of_warning { at; message } =
  Printf.sprintf "at %s: %s"
    (match Json.Pointer.to_string at with "" -> "#" | p -> "#" ^ p)
    message

let check root =
  let warnings = ref [] in
  let warn at message = warnings := { at; message } :: !warnings in
  let check_bound at name lo hi =
    match (lo, hi) with
    | Some l, Some h when l > h ->
        warn at (Printf.sprintf "%s bounds are inconsistent (%g > %g)" name l h)
    | _ -> ()
  in
  let check_int_bound at name lo hi =
    check_bound at name
      (Option.map float_of_int lo)
      (Option.map float_of_int hi)
  in
  (* Walk the document structurally, tracking the pointer, so warnings can
     point at the offending keyword even inside definitions. *)
  let rec walk at (v : Json.Value.t) =
    match Parse.of_json v with
    | Error e -> warn e.Parse.at e.Parse.message
    | Ok (Schema.Bool_schema _) -> ()
    | Ok (Schema.Schema n) ->
        check_bound at "number" n.Schema.minimum n.Schema.maximum;
        check_bound at "exclusive number" n.Schema.exclusive_minimum
          n.Schema.exclusive_maximum;
        check_int_bound at "string length" n.Schema.min_length n.Schema.max_length;
        check_int_bound at "array size" n.Schema.min_items n.Schema.max_items;
        check_int_bound at "object size" n.Schema.min_properties n.Schema.max_properties;
        (match (n.Schema.types, n.Schema.enum) with
         | Some ts, Some vs ->
             let matches_some_type e =
               List.exists
                 (fun t ->
                   match (t, Json.Value.kind e) with
                   | `Null, `Null | `Boolean, `Bool | `Number, `Number
                   | `String, `String | `Array, `Array | `Object, `Object ->
                       true
                   | `Integer, `Number -> (
                       match e with
                       | Json.Value.Int _ -> true
                       | Json.Value.Float f -> Float.is_integer f
                       | _ -> false)
                   | _ -> false)
                 ts
             in
             if not (List.exists matches_some_type vs) then
               warn at "no enum value is compatible with \"type\": schema is unsatisfiable"
         | _ -> ());
        (match (n.Schema.items, n.Schema.additional_items) with
         | Some (Schema.Items_one _), Some _ ->
             warn at "\"additionalItems\" is ignored when \"items\" is a single schema"
         | _ -> ());
        (match n.Schema.ref_ with
         | None -> ()
         | Some target ->
             if String.equal target "#" then ()
             else if String.length target > 0 && target.[0] = '#' then begin
               let ptr_str = String.sub target 1 (String.length target - 1) in
               match Json.Pointer.parse ptr_str with
               | Error msg -> warn at (Printf.sprintf "invalid $ref %S: %s" target msg)
               | Ok ptr ->
                   if not (Json.Pointer.exists ptr root) then
                     warn at (Printf.sprintf "$ref target %S does not exist" target)
             end
             else warn at (Printf.sprintf "non-local $ref %S is not supported" target));
        (* Recurse into syntactic subschemas via the JSON, so pointers stay
           accurate. *)
        descend at v
  and descend at v =
    let sub k x =
      walk (Json.Pointer.append at (Json.Pointer.Key k)) x
    in
    match v with
    | Json.Value.Object fields ->
        List.iter
          (fun (k, x) ->
            match k with
            | "items" -> (
                match x with
                | Json.Value.Array vs ->
                    List.iteri
                      (fun i y ->
                        walk
                          (Json.Pointer.append
                             (Json.Pointer.append at (Json.Pointer.Key "items"))
                             (Json.Pointer.Index i))
                          y)
                      vs
                | _ -> sub k x)
            | "additionalItems" | "contains" | "additionalProperties"
            | "propertyNames" | "not" | "if" | "then" | "else" ->
                sub k x
            | "allOf" | "anyOf" | "oneOf" -> (
                match x with
                | Json.Value.Array vs ->
                    List.iteri
                      (fun i y ->
                        walk
                          (Json.Pointer.append
                             (Json.Pointer.append at (Json.Pointer.Key k))
                             (Json.Pointer.Index i))
                          y)
                      vs
                | _ -> ())
            | "properties" | "patternProperties" | "definitions" -> (
                match x with
                | Json.Value.Object props ->
                    List.iter
                      (fun (name, y) ->
                        walk
                          (Json.Pointer.append
                             (Json.Pointer.append at (Json.Pointer.Key k))
                             (Json.Pointer.Key name))
                          y)
                      props
                | _ -> ())
            | "dependencies" -> (
                match x with
                | Json.Value.Object deps ->
                    List.iter
                      (fun (name, y) ->
                        match y with
                        | Json.Value.Object _ | Json.Value.Bool _ ->
                            walk
                              (Json.Pointer.append
                                 (Json.Pointer.append at (Json.Pointer.Key k))
                                 (Json.Pointer.Key name))
                              y
                        | _ -> ())
                      deps
                | _ -> ())
            | _ -> ())
          fields
    | _ -> ()
  in
  walk [] root;
  List.rev !warnings

let is_wellformed root = check root = []
