(** Serializing a {!Schema.t} back to its JSON form.

    [of_json |> to_json] is semantics-preserving (draft-7 style output:
    exclusive bounds print as numbers). *)

val to_json : Schema.t -> Json.Value.t
val to_string : ?pretty:bool -> Schema.t -> string
val pp : Format.formatter -> Schema.t -> unit
