(** Deterministic instance generation from a schema.

    Used to test the validator against itself (everything generated must
    validate) and to synthesize workloads in the benchmarks. Generation is
    best-effort: schemas relying on [not], [oneOf] disjointness or patterns
    may produce instances that fail validation; {!generate_valid} retries
    and filters through the validator. *)

type rng
(** Deterministic splittable generator state. *)

val rng : seed:int -> rng

val generate : ?max_depth:int -> rng -> Schema.t -> Json.Value.t
(** One instance aimed at satisfying the schema. *)

val generate_valid :
  ?max_depth:int -> ?attempts:int -> rng -> root:Json.Value.t ->
  Json.Value.t option
(** Retry {!generate} until the result validates against the schema document
    [root] (or attempts are exhausted). *)
