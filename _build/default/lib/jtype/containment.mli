(** JSON Schema containment and satisfiability checking, via the type
    algebra.

    Full JSON Schema containment is intractable in general (EXPTIME-hard
    with negation — Pezoa et al. WWW'16, Bourhis et al. PODS'17), so this
    module is honest about what it knows:

    - {b refutation} is semidecidable and cheap: generate instances of the
      candidate subschema and test them against the superschema — any
      failure is a concrete counterexample;
    - {b proof} is decided on the {e structural fragment} — schemas
      expressible in the type algebra (single [type], closed objects with
      [properties]/[required], homogeneous [items], [anyOf], booleans) —
      by translating both sides exactly ({!Interop.of_schema}) and using
      the algebra's sound subtyping ({!Typecheck.subtype});
    - everything else returns [Unknown].

    This three-valued design mirrors how practical tools (e.g. schema
    registries checking evolution compatibility) behave. *)

type verdict =
  | Included
  | Not_included of Json.Value.t
      (** counterexample: valid for the sub, invalid for the super *)
  | Unknown

val verdict_to_string : verdict -> string

val check : ?samples:int -> Json.Value.t -> Json.Value.t -> verdict
(** [check sub super]: is every instance of [sub] an instance of [super]?
    Schemas are given as JSON documents. [samples] (default 200) bounds
    the refutation search. *)

val equivalent : ?samples:int -> Json.Value.t -> Json.Value.t -> verdict
(** Containment both ways (a counterexample may witness either side). *)

val exact : Jsonschema.Schema.t -> bool
(** Does the schema lie in the structural fragment (its translation to the
    type algebra is semantics-preserving)? *)

type sat = Satisfiable of Json.Value.t | Maybe_unsatisfiable

val satisfiable : ?samples:int -> Json.Value.t -> sat
(** Witness search: generation-based, so "maybe" on failure (schemas that
    are syntactically [false] are reported unsatisfiable immediately). *)
