type equiv = Kind | Label

let equiv_to_string = function Kind -> "kind" | Label -> "label"

(* Merge the field lists of two records that have been deemed equivalent.
   Both lists are sorted by name (Types invariant). A field present on only
   one side becomes optional. *)
let rec merge_fields ~equiv xs ys =
  match (xs, ys) with
  | [], rest | rest, [] ->
      List.map (fun f -> { f with Types.optional = true }) rest
  | (x :: xs' as xl), (y :: ys' as yl) ->
      let c = String.compare x.Types.fname y.Types.fname in
      if c = 0 then
        Types.field ~optional:(x.Types.optional || y.Types.optional) x.Types.fname
          (merge_canonical ~equiv x.Types.ftype y.Types.ftype)
        :: merge_fields ~equiv xs' ys'
      else if c < 0 then { x with Types.optional = true } :: merge_fields ~equiv xs' yl
      else { y with Types.optional = true } :: merge_fields ~equiv xl ys'

(* Two record types are label-equivalent when they declare the same field
   names (optionality ignored: an optional field still names a label). *)
and same_labels xs ys =
  List.length xs = List.length ys
  && List.for_all2 (fun x y -> String.equal x.Types.fname y.Types.fname) xs ys

(* Try to fuse two non-union, non-Bot branches; None when the equivalence
   keeps them as distinct union branches. *)
and fuse ~equiv (a : Types.t) (b : Types.t) : Types.t option =
  match (a, b) with
  | Types.Any, _ | _, Types.Any -> Some Types.any
  | Types.Null, Types.Null -> Some Types.null
  | Types.Bool, Types.Bool -> Some Types.bool
  | Types.Int, Types.Int -> Some Types.int
  | Types.Str, Types.Str -> Some Types.str
  | (Types.Num | Types.Int), (Types.Num | Types.Int) -> Some Types.num
  | Types.Arr x, Types.Arr y -> Some (Types.arr (merge_canonical ~equiv x y))
  | Types.Rec xs, Types.Rec ys -> (
      match equiv with
      | Kind -> Some (Types.rec_ (merge_fields ~equiv xs ys))
      | Label ->
          if same_labels xs ys then Some (Types.rec_ (merge_fields ~equiv xs ys))
          else None)
  | _ -> None

(* Insert a branch into an accumulated list of pairwise-unfusable branches. *)
and insert ~equiv branch acc =
  let rec go seen = function
    | [] -> List.rev (branch :: seen)
    | candidate :: rest -> (
        match fuse ~equiv candidate branch with
        | Some fused ->
            (* fusing may enable further fusions (e.g. Int then Num) *)
            insert ~equiv fused (List.rev_append seen rest)
        | None -> go (candidate :: seen) rest)
  in
  go [] acc

(* Merge two types whose subterms are already simplified under [equiv]
   ("canonical"). [fuse] merges subtrees with [merge_canonical], so by
   induction the output is canonical — this is what keeps a fold over a
   collection linear instead of re-traversing the accumulator each step. *)
and merge_canonical ~equiv a b =
  let branches t = match t with Types.Union ts -> ts | Types.Bot -> [] | t -> [ t ] in
  Types.union
    (List.fold_left (fun acc t -> insert ~equiv t acc) [] (branches a @ branches b))

(* Simplify the subterms of a single branch. *)
and push_down ~equiv (t : Types.t) : Types.t =
  match t with
  | Types.Bot | Types.Null | Types.Bool | Types.Int | Types.Num | Types.Str
  | Types.Any ->
      t
  | Types.Arr x -> Types.arr (simplify ~equiv x)
  | Types.Rec fields ->
      Types.rec_
        (List.map
           (fun f -> { f with Types.ftype = simplify ~equiv f.Types.ftype })
           fields)
  | Types.Union ts -> Types.union (List.map (push_down ~equiv) ts)

and simplify ~equiv t =
  match t with
  | Types.Union ts ->
      let ts = List.map (push_down ~equiv) ts in
      Types.union (List.fold_left (fun acc t -> insert ~equiv t acc) [] ts)
  | t -> push_down ~equiv t

and merge ~equiv a b =
  merge_canonical ~equiv (simplify ~equiv a) (simplify ~equiv b)

let merge_all ~equiv = function
  | [] -> Types.bot
  | t :: ts ->
      List.fold_left
        (fun acc t -> merge_canonical ~equiv acc (simplify ~equiv t))
        (simplify ~equiv t) ts
