(** Rendering inferred types as Swift [Codable] declarations.

    Mirrors how Swift models JSON: records become [struct]s conforming to
    [Codable], optional fields become [T?], arrays are [[T]], and union
    types — which Swift lacks — become [enum]s with associated values (the
    standard community encoding). [Null] in a union folds into Swift
    optionality instead of an enum case. *)

val type_expr : Types.t -> string
(** Inline Swift type for non-record, non-union types (records/unions need
    declarations and render as their would-be names). *)

val declaration : name:string -> Types.t -> string
(** Full declaration block: nested records become nested structs; unions
    become enums with one case per branch plus a [Codable] implementation
    that tries each branch in turn. *)
