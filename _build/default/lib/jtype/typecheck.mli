(** Semantic membership and subtyping for the type algebra.

    [member] is the denotational judgment v ∈ ⟦t⟧ — exact. [subtype] is a
    sound syntactic approximation of ⟦a⟧ ⊆ ⟦b⟧ (it may answer [false] for
    some true containments involving unions of records, but never answers
    [true] wrongly); the property tests exercise this contract. *)

val member : Json.Value.t -> Types.t -> bool

type mismatch = { at : Json.Pointer.t; expected : Types.t; got : Json.Value.t }

val check : Json.Value.t -> Types.t -> (unit, mismatch) result
(** Like {!member} but reports the first (leftmost-innermost) mismatch. *)

val string_of_mismatch : mismatch -> string

val subtype : Types.t -> Types.t -> bool
(** Sound approximation of semantic inclusion. Reflexive, transitive;
    [Bot <= t <= Any] and [Int <= Num] hold; record width & depth
    subtyping: more (or mandatory) fields is a subtype of fewer (or
    optional), covariant in field and element types. *)

val precision : Types.t -> Types.t -> [ `Equal | `Less | `Greater | `Incomparable ]
(** Compare two types by {!subtype} both ways: [`Less] means strictly more
    precise (smaller denotation). *)
