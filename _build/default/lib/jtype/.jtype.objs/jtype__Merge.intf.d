lib/jtype/merge.mli: Types
