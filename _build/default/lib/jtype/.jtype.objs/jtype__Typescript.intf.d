lib/jtype/typescript.mli: Types
