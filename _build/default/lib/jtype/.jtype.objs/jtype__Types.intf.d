lib/jtype/types.mli: Format Json
