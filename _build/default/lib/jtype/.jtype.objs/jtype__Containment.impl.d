lib/jtype/containment.ml: Interop Json Jsonschema List Typecheck
