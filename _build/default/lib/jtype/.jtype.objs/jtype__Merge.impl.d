lib/jtype/merge.ml: List String Types
