lib/jtype/typescript.ml: Char Hashtbl Json List Printf String Types
