lib/jtype/containment.mli: Json Jsonschema
