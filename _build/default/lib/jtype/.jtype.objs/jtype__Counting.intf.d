lib/jtype/counting.mli: Format Json Merge Types
