lib/jtype/interop.mli: Json Jsonschema Types
