lib/jtype/swift.ml: Char Fun List Printf String Types
