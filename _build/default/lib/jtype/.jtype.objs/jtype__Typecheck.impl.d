lib/jtype/typecheck.ml: Json List Printf Result String Types
