lib/jtype/interop.ml: Jsonschema List String Types
