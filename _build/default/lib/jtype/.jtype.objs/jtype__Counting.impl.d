lib/jtype/counting.ml: Format Hashtbl Json List Merge Printf Stdlib String Types
