lib/jtype/typecheck.mli: Json Types
