lib/jtype/types.ml: Bool Format Hashtbl Json List Printf Stdlib String
