lib/jtype/swift.mli: Types
