(** The fusion operator ⊕ of parametric schema inference.

    Merging is parameterized by an equivalence on types that decides which
    union branches collapse (Baazizi et al., VLDBJ'19):

    - {b Kind equivalence} ([K]): any two types of the same kind fuse. All
      record types collapse into one record whose fields are merged
      field-wise (a field missing on one side becomes optional); all array
      types collapse element-wise. Produces maximally concise, least precise
      types.
    - {b Label equivalence} ([L]): two record types fuse only when they have
      exactly the same set of (mandatory and optional) field names;
      otherwise both stay as separate union branches. Captures field
      correlations that kind equivalence loses.

    Both parameters yield an associative, commutative, idempotent merge —
    the property that makes map/reduce inference deterministic regardless of
    partitioning (exercised by experiment E3). *)

type equiv = Kind | Label

val equiv_to_string : equiv -> string

val merge : equiv:equiv -> Types.t -> Types.t -> Types.t
(** Fuse two types. *)

val merge_all : equiv:equiv -> Types.t list -> Types.t
(** Left fold of {!merge} over the list ([Bot] for the empty list). *)

val simplify : equiv:equiv -> Types.t -> Types.t
(** Re-canonicalize a type bottom-up, collapsing union branches that the
    equivalence identifies. [merge] outputs are already simplified; use this
    on types built by other means (e.g. {!Types.of_value} unions). *)
