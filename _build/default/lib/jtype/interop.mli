(** Bridging the type algebra and JSON Schema.

    [to_schema] targets the union-free-friendly fragment: records become
    [type: object] with [properties]/[required]/[additionalProperties:
    false], arrays [type: array] + [items], unions [anyOf]. [of_schema]
    abstracts a schema back into a type, over-approximating keywords the
    algebra cannot express (bounds, patterns, enums collapse to their base
    type). *)

val to_schema : Types.t -> Jsonschema.Schema.t
val to_schema_json : Types.t -> Json.Value.t

val of_schema : Jsonschema.Schema.t -> Types.t
(** Over-approximation: every value accepted by the schema inhabits the
    returned type (the converse need not hold). [$ref]s resolve through
    [definitions] when local, otherwise become [Any]. *)

val of_schema_json : Json.Value.t -> (Types.t, string) result
