(** Rendering inferred types as TypeScript declarations.

    Mirrors how TypeScript models JSON: records become interfaces with [?]
    optional members, unions become union types, [Null] is [null], [Num] is
    [number], arrays are [T[]]. Nested record types are lifted into named
    interfaces so the output matches what a developer would write. *)

val type_expr : Types.t -> string
(** Inline type expression, e.g. ["{ a: number; b?: string } | null"]. *)

val declaration : name:string -> Types.t -> string
(** A full declaration block: the root becomes [interface <name>] when it is
    a record (or [type <name> = ...] otherwise), and nested records are
    lifted to auxiliary interfaces named [<name><Field>]. *)
