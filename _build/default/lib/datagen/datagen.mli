(** Seeded synthetic JSON corpora.

    Stand-ins for the public datasets the tutorial's running examples use
    (Twitter API results, newspaper articles, data.gov open data) — the
    real services are unreachable offline, so these generators reproduce
    the {e structural} properties that matter to the experiments:
    optional fields with controlled probability, cross-field correlation,
    type heterogeneity, nesting, and skewed structure frequencies.

    All generators are deterministic in [seed]. *)

type rng

val rng : seed:int -> rng

(** {1 Domain corpora} *)

val tweet : rng -> Json.Value.t
(** Twitter-like status: [id], [text], [user{...}], optional [coordinates],
    optional [entities{hashtags[], urls[]}], [retweet_count], …; about 10%
    are retweets carrying a nested [retweeted_status]. *)

val tweets : rng -> int -> Json.Value.t list

val article : rng -> Json.Value.t
(** New-York-Times-ish article metadata: [headline{...}], [byline],
    [keywords[]], optional [multimedia[]]. *)

val articles : rng -> int -> Json.Value.t list

val open_data_record : rng -> Json.Value.t
(** data.gov-ish dataset descriptor with heterogeneous [temporal] (string
    or {start,end} object) and optional distribution list. *)

val open_data : rng -> int -> Json.Value.t list

val order : rng -> Json.Value.t
(** Denormalized e-commerce order for the normalization experiment:
    customer and product attributes are embedded (functionally dependent
    on their ids). *)

val orders : rng -> int -> Json.Value.t list

val ticket : rng -> Json.Value.t
(** Support ticket whose structure is {e determined by} the value of its
    [channel] field ("email" → subject/body, "phone" → duration/callback,
    "chat" → messages[]). The value→structure correlation is what the
    schema-profiling experiment (E12) learns. *)

val tickets : rng -> int -> Json.Value.t list

(** {1 Parametric corpora} *)

val heterogeneous : rng -> heterogeneity:float -> int -> Json.Value.t list
(** Records drawn from [k] distinct shapes; [heterogeneity] ∈ [0,1]
    controls how much shapes and field types vary (0 = single rigid shape;
    1 = every document may differ in fields and in the types of shared
    fields). Used by E1. *)

val skewed_structures : rng -> shapes:int -> zipf:float -> int -> Json.Value.t list
(** Documents whose structure index follows a Zipf-like distribution —
    a few very frequent shapes and a long tail (E8). *)

val events : rng -> fields:int -> int -> Json.Value.t list
(** Wide flat records with [fields] scalar fields [f0..f(n-1)], for the
    projection-parser experiments (E5/E6). *)

val to_ndjson : Json.Value.t list -> string
(** One compact document per line. *)
