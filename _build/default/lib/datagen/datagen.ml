type rng = Random.State.t

let rng ~seed = Random.State.make [| seed |]

open Json.Value

let chance st p = Random.State.float st 1.0 < p
let pick st xs = List.nth xs (Random.State.int st (List.length xs))

let word st =
  let words =
    [| "data"; "json"; "schema"; "type"; "query"; "spark"; "tweet"; "graph";
       "model"; "cloud"; "index"; "store"; "table"; "array"; "union"; "merge" |]
  in
  words.(Random.State.int st (Array.length words))

let sentence st n =
  String.concat " " (List.init n (fun _ -> word st))

let name_ st =
  let first = [| "ann"; "bob"; "carol"; "dan"; "eve"; "frank"; "grace"; "hugo" |] in
  let last = [| "smith"; "jones"; "lopez"; "kim"; "chen"; "rossi"; "dubois" |] in
  first.(Random.State.int st (Array.length first))
  ^ " "
  ^ last.(Random.State.int st (Array.length last))

let date st =
  Printf.sprintf "%04d-%02d-%02d" (2015 + Random.State.int st 8)
    (1 + Random.State.int st 12)
    (1 + Random.State.int st 28)

let datetime st = date st ^ Printf.sprintf "T%02d:%02d:%02dZ" (Random.State.int st 24) (Random.State.int st 60) (Random.State.int st 60)

(* --- tweets ------------------------------------------------------------ *)

let user st =
  Object
    ([ ("id", Int (Random.State.int st 1_000_000));
       ("screen_name", String (word st ^ string_of_int (Random.State.int st 100)));
       ("name", String (name_ st));
       ("followers_count", Int (Random.State.int st 100_000));
       ("verified", Bool (chance st 0.08)) ]
    @ (if chance st 0.6 then [ ("location", String (word st)) ] else [])
    @ if chance st 0.3 then [ ("url", String ("https://t.co/" ^ word st)) ] else [])

let hashtag st =
  Object [ ("text", String (word st)); ("indices", Array [ Int 0; Int 7 ]) ]

let url_entity st =
  Object
    [ ("url", String ("https://t.co/" ^ word st));
      ("expanded_url", String ("https://example.com/" ^ word st)) ]

let rec tweet_inner st ~allow_retweet =
  let base =
    [ ("id", Int (Random.State.int st 10_000_000));
      ("created_at", String (datetime st));
      ("text", String (sentence st (3 + Random.State.int st 8)));
      ("user", user st);
      ("retweet_count", Int (Random.State.int st 5000));
      ("favorite_count", Int (Random.State.int st 10000));
      ("lang", String (pick st [ "en"; "fr"; "it"; "de"; "es" ])) ]
  in
  let optional =
    (if chance st 0.15 then
       [ ("coordinates",
          Object
            [ ("type", String "Point");
              ("coordinates",
               Array [ Float (Random.State.float st 360.0 -. 180.0);
                       Float (Random.State.float st 180.0 -. 90.0) ]) ]) ]
     else [])
    @ (if chance st 0.55 then
         [ ("entities",
            Object
              [ ("hashtags",
                 Array (List.init (Random.State.int st 4) (fun _ -> hashtag st)));
                ("urls",
                 Array (List.init (Random.State.int st 2) (fun _ -> url_entity st))) ]) ]
       else [])
    @ (if chance st 0.2 then [ ("in_reply_to_status_id", Int (Random.State.int st 10_000_000)) ]
       else [])
    @
    if allow_retweet && chance st 0.1 then
      [ ("retweeted_status", tweet_inner st ~allow_retweet:false) ]
    else []
  in
  Object (base @ optional)

let tweet st = tweet_inner st ~allow_retweet:true
let tweets st n = List.init n (fun _ -> tweet st)

(* --- articles ----------------------------------------------------------- *)

let article st =
  Object
    ([ ("_id", String (Printf.sprintf "article-%06d" (Random.State.int st 1_000_000)));
       ("headline",
        Object
          ([ ("main", String (sentence st 6)) ]
          @ if chance st 0.4 then [ ("kicker", String (word st)) ] else []));
       ("pub_date", String (datetime st));
       ("document_type", String (pick st [ "article"; "blogpost"; "multimedia" ]));
       ("word_count", Int (100 + Random.State.int st 3000));
       ("keywords",
        Array
          (List.init (Random.State.int st 5) (fun _ ->
               Object
                 [ ("name", String (pick st [ "subject"; "persons"; "glocations" ]));
                   ("value", String (word st)) ]))) ]
    @ (if chance st 0.7 then [ ("byline", Object [ ("original", String ("By " ^ name_ st)) ]) ]
       else [])
    @ (if chance st 0.5 then [ ("snippet", String (sentence st 12)) ] else [])
    @
    if chance st 0.35 then
      [ ("multimedia",
         Array
           (List.init
              (1 + Random.State.int st 3)
              (fun _ ->
                Object
                  [ ("url", String ("https://img.example.com/" ^ word st));
                    ("height", Int (100 + Random.State.int st 900));
                    ("width", Int (100 + Random.State.int st 900)) ]))) ]
    else [])

let articles st n = List.init n (fun _ -> article st)

(* --- open data ----------------------------------------------------------- *)

let open_data_record st =
  Object
    ([ ("title", String (sentence st 5));
       ("identifier", String (Printf.sprintf "dataset-%05d" (Random.State.int st 100_000)));
       ("accessLevel", String (pick st [ "public"; "restricted public"; "non-public" ]));
       (* heterogeneous field: string in some records, object in others *)
       ("temporal",
        if chance st 0.5 then String (date st ^ "/" ^ date st)
        else Object [ ("start", String (date st)); ("end", String (date st)) ]);
       ("publisher", Object [ ("name", String (word st ^ " agency") ) ]) ]
    @ (if chance st 0.6 then
         [ ("distribution",
            Array
              (List.init
                 (1 + Random.State.int st 3)
                 (fun _ ->
                   Object
                     ([ ("mediaType", String (pick st [ "text/csv"; "application/json" ])) ]
                     @ if chance st 0.8 then [ ("downloadURL", String ("https://data.gov/" ^ word st)) ]
                       else [])))) ]
       else [])
    @ (if chance st 0.4 then [ ("describedBy", String ("https://schema.example.org/" ^ word st)) ]
       else [])
    @ if chance st 0.3 then [ ("landingPage", Null) ] else [])

let open_data st n = List.init n (fun _ -> open_data_record st)

(* --- denormalized orders -------------------------------------------------- *)

let order st =
  (* small key spaces so functional dependencies are observable *)
  let customer_id = 1 + Random.State.int st 20 in
  let product_id = 1 + Random.State.int st 15 in
  let cnames = [| "acme"; "globex"; "initech"; "umbrella"; "stark"; "wayne";
                  "tyrell"; "cyberdyne"; "oscorp"; "soylent"; "wonka"; "dunder";
                  "hooli"; "massive"; "pied"; "aviato"; "bluth"; "sterling";
                  "prestige"; "vandelay" |] in
  let cities = [| "paris"; "pisa"; "potenza"; "lyon"; "rome"; "milan"; "nice";
                  "turin"; "bari"; "lille"; "genoa"; "nantes"; "siena"; "parma";
                  "arles"; "dijon"; "pavia"; "lucca"; "aosta"; "amiens" |] in
  let pnames = [| "widget"; "gadget"; "sprocket"; "gizmo"; "doohickey"; "flange";
                  "grommet"; "bracket"; "fitting"; "coupler"; "valve"; "washer";
                  "bearing"; "spindle"; "gasket" |] in
  let prices = [| 9.99; 19.99; 4.5; 100.0; 42.0; 7.25; 15.0; 3.99; 89.0; 12.5;
                  6.75; 22.0; 31.5; 54.0; 18.25 |] in
  Object
    [ ("order_id", Int (100000 + Random.State.int st 900000));
      ("order_date", String (date st));
      ("quantity", Int (1 + Random.State.int st 9));
      ("customer",
       Object
         [ ("customer_id", Int customer_id);
           ("customer_name", String cnames.(customer_id - 1));
           ("customer_city", String cities.(customer_id - 1)) ]);
      ("product",
       Object
         [ ("product_id", Int product_id);
           ("product_name", String pnames.(product_id - 1));
           ("product_price", Float prices.(product_id - 1)) ]) ]

let orders st n = List.init n (fun _ -> order st)

(* --- support tickets --------------------------------------------------------- *)

let ticket st =
  let base =
    [ ("ticket_id", Int (Random.State.int st 1_000_000));
      ("opened_at", String (datetime st));
      ("priority", String (pick st [ "low"; "normal"; "high" ])) ]
  in
  match pick st [ "email"; "phone"; "chat" ] with
  | "email" ->
      Object
        (base
        @ [ ("channel", String "email");
            ("subject", String (sentence st 4));
            ("body", String (sentence st 20)) ]
        @ if chance st 0.3 then [ ("attachments", Int (Random.State.int st 4)) ] else [])
  | "phone" ->
      Object
        (base
        @ [ ("channel", String "phone");
            ("duration_s", Int (Random.State.int st 1800));
            ("callback", Bool (chance st 0.5)) ])
  | _ ->
      Object
        (base
        @ [ ("channel", String "chat");
            ("messages",
             Array
               (List.init
                  (1 + Random.State.int st 5)
                  (fun _ ->
                    Object
                      [ ("from", String (pick st [ "agent"; "customer" ]));
                        ("text", String (sentence st 6)) ]))) ])

let tickets st n = List.init n (fun _ -> ticket st)

(* --- parametric corpora ---------------------------------------------------- *)

let heterogeneous st ~heterogeneity n =
  let h = Float.max 0.0 (Float.min 1.0 heterogeneity) in
  List.init n (fun i ->
      let shape = if chance st h then Random.State.int st 4 else 0 in
      let id_value : Json.Value.t =
        (* with heterogeneity, the id field's type itself varies *)
        if chance st (h *. 0.5) then String (string_of_int i) else Int i
      in
      let base = [ ("id", id_value); ("name", String (word st)) ] in
      let extra =
        match shape with
        | 0 -> [ ("score", Int (Random.State.int st 100)) ]
        | 1 -> [ ("score", Float (Random.State.float st 1.0)); ("tags", Array [ String (word st) ]) ]
        | 2 -> [ ("nested", Object [ ("flag", Bool (chance st 0.5)) ]) ]
        | _ -> [ ("payload", if chance st 0.5 then Null else String (word st)) ]
      in
      Object (base @ extra))

let skewed_structures st ~shapes ~zipf n =
  (* shape s is chosen with probability proportional to 1/(s+1)^zipf *)
  let weights =
    Array.init shapes (fun s -> 1.0 /. Float.pow (float_of_int (s + 1)) zipf)
  in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let pick_shape () =
    let r = Random.State.float st total in
    let rec go i acc =
      if i >= shapes - 1 then i
      else if acc +. weights.(i) > r then i
      else go (i + 1) (acc +. weights.(i))
    in
    go 0 0.0
  in
  List.init n (fun i ->
      let s = pick_shape () in
      (* each shape has a distinctive field set *)
      Object
        ([ ("id", Int i) ]
        @ List.init (s + 1) (fun j -> (Printf.sprintf "field_%d_%d" s j, Int j))))

let events st ~fields n =
  List.init n (fun i ->
      Object
        (List.init fields (fun j ->
             let value : Json.Value.t =
               match j mod 4 with
               | 0 -> Int (i + j)
               | 1 -> String (word st)
               | 2 -> Bool (chance st 0.5)
               | _ -> Float (Random.State.float st 1000.0)
             in
             (Printf.sprintf "f%d" j, value))))

let to_ndjson docs =
  String.concat "\n" (List.map Json.Printer.to_string docs) ^ "\n"
