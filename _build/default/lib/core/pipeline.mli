(** End-to-end pipelines combining the toolkit's components — the workflows
    a user of the tutorial's systems would actually run. *)

(** {1 Inference pipeline} *)

type inferred = {
  jtype : Jtype.Types.t;            (** the union-aware structural type *)
  counting : Jtype.Counting.t;      (** with cardinalities *)
  json_schema : Json.Value.t;       (** translated to JSON Schema *)
  typescript : string;              (** TypeScript declarations *)
  swift : string;                   (** Swift Codable declarations *)
}

val infer :
  ?equiv:Jtype.Merge.equiv -> ?name:string -> Json.Value.t list -> inferred
(** One call from collection to every schema artifact (default equivalence
    [Kind], default root declaration name ["Root"]). *)

val infer_ndjson :
  ?equiv:Jtype.Merge.equiv -> ?name:string -> string -> (inferred, string) result

(** {1 Validation pipeline} *)

val validate_collection :
  root:Json.Value.t -> Json.Value.t list ->
  (int, (int * Jsonschema.Validate.error list) list) result
(** Validate every document against a JSON Schema document; [Ok n] = all [n]
    valid, otherwise the failing indices with their errors. *)

(** {1 Dataset profiling} *)

val profile : Json.Value.t list -> Json.Value.t
(** A JSON report: document count, inferred type (paper syntax), mongo-style
    field statistics, skeleton summary, size metrics. The CLI's [stats]
    command prints this. *)

(** {1 Translation pipeline} *)

type translated = {
  avro_schema : Json.Value.t;
  avro_bytes : string;
  columnar_bytes : string;
  json_bytes : int;     (** size of the NDJSON text, for comparison *)
}

val translate :
  ?equiv:Jtype.Merge.equiv -> Json.Value.t list -> (translated, string) result
(** Infer, derive Avro + Spark schemas, encode both ways. *)
