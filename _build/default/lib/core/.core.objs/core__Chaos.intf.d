lib/core/chaos.mli:
