lib/core/core.ml: Datagen Fastjson Inference Joi Json Jsonschema Jsound Jtype Pipeline Query Translate
