lib/core/core.ml: Chaos Datagen Fastjson Inference Joi Json Jsonschema Jsound Jtype Pipeline Query Resilient Translate
