lib/core/chaos.ml: Buffer Bytes Char Json List Printf Random Result String
