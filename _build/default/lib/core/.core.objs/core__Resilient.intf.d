lib/core/resilient.mli: Fastjson Json
