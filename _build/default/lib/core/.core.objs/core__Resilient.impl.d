lib/core/resilient.ml: Fastjson Json List Printf String
