lib/core/pipeline.mli: Json Jsonschema Jtype Resilient
