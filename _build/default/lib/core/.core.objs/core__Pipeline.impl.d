lib/core/pipeline.ml: Datagen Fun Inference Json Jsonschema Jtype List Resilient String Translate
