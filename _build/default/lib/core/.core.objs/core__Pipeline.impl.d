lib/core/pipeline.ml: Datagen Fun Inference Json Jsonschema Jtype List String Translate
