(* Hand-written recursive-descent parser for the query syntax. *)

type token =
  | Ident of string     (* keywords resolved by the grammar *)
  | Number of Json.Number.parsed
  | Str_lit of string
  | Dollar
  | Dot
  | Comma
  | Colon
  | Pipe
  | Lparen | Rparen
  | Lbrace | Rbrace
  | Lbracket | Rbracket
  | Op of string        (* + - * / == != < <= > >= *)
  | Eof

exception Err of string

let fail fmt = Printf.ksprintf (fun m -> raise (Err m)) fmt

let tokenize src =
  let n = String.length src in
  let out = ref [] in
  let emit t = out := t :: !out in
  let i = ref 0 in
  let is_ident_char c =
    match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false
  in
  while !i < n do
    let c = src.[!i] in
    (match c with
     | ' ' | '\t' | '\n' | '\r' -> incr i
     | '$' -> emit Dollar; incr i
     | '.' -> emit Dot; incr i
     | ',' -> emit Comma; incr i
     | ':' -> emit Colon; incr i
     | '|' -> emit Pipe; incr i
     | '(' -> emit Lparen; incr i
     | ')' -> emit Rparen; incr i
     | '{' -> emit Lbrace; incr i
     | '}' -> emit Rbrace; incr i
     | '[' -> emit Lbracket; incr i
     | ']' -> emit Rbracket; incr i
     | '+' | '*' | '/' -> emit (Op (String.make 1 c)); incr i
     | '-' ->
         (* negative number literal or minus operator: operator unless the
            previous token forces an operand position AND a digit follows *)
         let operand_position =
           match !out with
           | Op _ :: _ | Comma :: _ | Colon :: _ | Lparen :: _ | Lbracket :: _
           | Pipe :: _ | [] ->
               true
           | Ident k :: _
             when List.mem k
                    [ "filter"; "transform"; "by"; "into"; "not"; "isnull";
                      "sum"; "avg"; "min"; "max"; "and"; "or" ] ->
               true
           | _ -> false
         in
         if operand_position && !i + 1 < n && src.[!i + 1] >= '0' && src.[!i + 1] <= '9'
         then begin
           let start = !i in
           incr i;
           while
             !i < n
             && (match src.[!i] with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false)
           do
             incr i
           done;
           match Json.Number.parse (String.sub src start (!i - start)) with
           | Ok p -> emit (Number p)
           | Error m -> fail "%s" m
         end
         else begin
           emit (Op "-");
           incr i
         end
     | '=' | '!' | '<' | '>' ->
         let two = if !i + 1 < n && src.[!i + 1] = '=' then 2 else 1 in
         let op = String.sub src !i two in
         if op = "=" || op = "!" then fail "unknown operator %S" op;
         emit (Op op);
         i := !i + two
     | '"' ->
         let lx = Json.Lexer.create ~pos:!i src in
         (match Json.Lexer.next lx with
          | Json.Lexer.String_tok s, _ ->
              emit (Str_lit s);
              i := (Json.Lexer.position lx).Json.Lexer.offset
          | _ -> fail "bad string literal")
     | '0' .. '9' ->
         let start = !i in
         while
           !i < n
           && (match src.[!i] with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false)
         do
           incr i
         done;
         (match Json.Number.parse (String.sub src start (!i - start)) with
          | Ok p -> emit (Number p)
          | Error m -> fail "%s" m)
     | c when is_ident_char c ->
         let start = !i in
         while !i < n && is_ident_char src.[!i] do incr i done;
         emit (Ident (String.sub src start (!i - start)))
     | c -> fail "unexpected character %C" c)
  done;
  List.rev (Eof :: !out)

type state = { mutable toks : token list }

let peek st = match st.toks with t :: _ -> t | [] -> Eof
let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let expect st t name =
  if peek st = t then advance st else fail "expected %s" name

let expect_ident st =
  match peek st with
  | Ident s -> advance st; s
  | _ -> fail "expected an identifier"

(* expression grammar, by descending precedence *)
let rec parse_or st =
  let a = parse_and st in
  match peek st with
  | Ident "or" ->
      advance st;
      Ast.Binop (Ast.Or, a, parse_or st)
  | _ -> a

and parse_and st =
  let a = parse_cmp st in
  match peek st with
  | Ident "and" ->
      advance st;
      Ast.Binop (Ast.And, a, parse_and st)
  | _ -> a

and parse_cmp st =
  let a = parse_add st in
  match peek st with
  | Op "==" -> advance st; Ast.Binop (Ast.Eq, a, parse_add st)
  | Op "!=" -> advance st; Ast.Binop (Ast.Ne, a, parse_add st)
  | Op "<" -> advance st; Ast.Binop (Ast.Lt, a, parse_add st)
  | Op "<=" -> advance st; Ast.Binop (Ast.Le, a, parse_add st)
  | Op ">" -> advance st; Ast.Binop (Ast.Gt, a, parse_add st)
  | Op ">=" -> advance st; Ast.Binop (Ast.Ge, a, parse_add st)
  | _ -> a

and parse_add st =
  let rec go acc =
    match peek st with
    | Op "+" -> advance st; go (Ast.Binop (Ast.Add, acc, parse_mul st))
    | Op "-" -> advance st; go (Ast.Binop (Ast.Sub, acc, parse_mul st))
    | _ -> acc
  in
  go (parse_mul st)

and parse_mul st =
  let rec go acc =
    match peek st with
    | Op "*" -> advance st; go (Ast.Binop (Ast.Mul, acc, parse_unary st))
    | Op "/" -> advance st; go (Ast.Binop (Ast.Div, acc, parse_unary st))
    | _ -> acc
  in
  go (parse_unary st)

and parse_unary st =
  match peek st with
  | Ident "not" -> advance st; Ast.Not (parse_unary st)
  | Ident "isnull" -> advance st; Ast.Is_null (parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let rec go acc =
    match peek st with
    | Dot ->
        advance st;
        go (Ast.Field (acc, expect_ident st))
    | Lbracket -> (
        advance st;
        match peek st with
        | Number (Json.Number.Int_lit i) ->
            advance st;
            expect st Rbracket "']'";
            go (Ast.Index (acc, i))
        | _ -> fail "expected an integer index")
    | _ -> acc
  in
  go (parse_atom st)

and parse_atom st =
  match peek st with
  | Dollar -> advance st; Ast.Ctx
  | Number (Json.Number.Int_lit n) -> advance st; Ast.Const (Json.Value.Int n)
  | Number (Json.Number.Float_lit f) -> advance st; Ast.Const (Json.Value.Float f)
  | Str_lit s -> advance st; Ast.Const (Json.Value.String s)
  | Ident "true" -> advance st; Ast.Const (Json.Value.Bool true)
  | Ident "false" -> advance st; Ast.Const (Json.Value.Bool false)
  | Ident "null" -> advance st; Ast.Const Json.Value.Null
  | Lparen ->
      advance st;
      let e = parse_or st in
      expect st Rparen "')'";
      e
  | Lbrace ->
      advance st;
      let rec fields acc =
        match peek st with
        | Rbrace -> advance st; List.rev acc
        | _ -> (
            let name =
              match peek st with
              | Ident s -> advance st; s
              | Str_lit s -> advance st; s
              | _ -> fail "expected a field name"
            in
            expect st Colon "':'";
            let e = parse_or st in
            match peek st with
            | Comma -> advance st; fields ((name, e) :: acc)
            | Rbrace -> advance st; List.rev ((name, e) :: acc)
            | _ -> fail "expected ',' or '}'")
      in
      Ast.Record (fields [])
  | Lbracket ->
      advance st;
      let rec elems acc =
        match peek st with
        | Rbracket -> advance st; List.rev acc
        | _ -> (
            let e = parse_or st in
            match peek st with
            | Comma -> advance st; elems (e :: acc)
            | Rbracket -> advance st; List.rev (e :: acc)
            | _ -> fail "expected ',' or ']'")
      in
      Ast.List (elems [])
  | Ident s -> fail "unexpected identifier %S in expression" s
  | _ -> fail "expected an expression"

let parse_agg st : Ast.agg =
  match expect_ident st with
  | "count" -> Ast.Count
  | "sum" -> Ast.Sum (parse_or st)
  | "avg" -> Ast.Avg (parse_or st)
  | "min" -> Ast.Min (parse_or st)
  | "max" -> Ast.Max (parse_or st)
  | s -> fail "unknown aggregate %S" s

let parse_stage st : Ast.stage =
  match expect_ident st with
  | "filter" -> Ast.Filter (parse_or st)
  | "transform" -> Ast.Transform (parse_or st)
  | "expand" -> (
      match peek st with
      | Ident f -> advance st; Ast.Expand (Some f)
      | _ -> Ast.Expand None)
  | "group" ->
      (match expect_ident st with
       | "by" -> ()
       | _ -> fail "expected 'by' after 'group'");
      let key = parse_or st in
      (match expect_ident st with
       | "into" -> ()
       | _ -> fail "expected 'into'");
      expect st Lbrace "'{'";
      let rec aggs acc =
        let name = expect_ident st in
        expect st Colon "':'";
        let a = parse_agg st in
        match peek st with
        | Comma -> advance st; aggs ((name, a) :: acc)
        | Rbrace -> advance st; List.rev ((name, a) :: acc)
        | _ -> fail "expected ',' or '}'"
      in
      Ast.Group_by (key, aggs [])
  | "sort" ->
      (match expect_ident st with
       | "by" -> ()
       | _ -> fail "expected 'by' after 'sort'");
      let e = parse_or st in
      (match peek st with
       | Ident "desc" -> advance st; Ast.Sort_by (e, `Desc)
       | Ident "asc" -> advance st; Ast.Sort_by (e, `Asc)
       | _ -> Ast.Sort_by (e, `Asc))
  | "top" -> (
      match peek st with
      | Number (Json.Number.Int_lit n) -> advance st; Ast.Top n
      | _ -> fail "expected an integer after 'top'")
  | s -> fail "unknown stage %S" s

let pipeline src =
  match
    let st = { toks = tokenize src } in
    let rec stages acc =
      let s = parse_stage st in
      match peek st with
      | Pipe -> advance st; stages (s :: acc)
      | Eof -> List.rev (s :: acc)
      | _ -> fail "expected '|' or end of query"
    in
    stages []
  with
  | p -> Ok p
  | exception Err m -> Error m
  | exception Json.Lexer.Lex_error (_, m) -> Error m

let pipeline_exn src =
  match pipeline src with Ok p -> p | Error m -> invalid_arg ("Query.Parse: " ^ m)

let expr src =
  match
    let st = { toks = tokenize src } in
    let e = parse_or st in
    if peek st <> Eof then fail "trailing input" else e
  with
  | e -> Ok e
  | exception Err m -> Error m
  | exception Json.Lexer.Lex_error (_, m) -> Error m
