lib/query/ast.ml: Json List Printf String
