lib/query/typing.mli: Ast Jtype
