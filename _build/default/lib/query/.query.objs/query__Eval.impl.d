lib/query/eval.ml: Ast Hashtbl Json List
