lib/query/parse.ml: Ast Json List Printf String
