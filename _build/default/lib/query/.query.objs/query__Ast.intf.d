lib/query/ast.mli: Json
