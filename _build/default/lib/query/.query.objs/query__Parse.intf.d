lib/query/parse.mli: Ast
