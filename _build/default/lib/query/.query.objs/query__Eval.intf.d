lib/query/eval.mli: Ast Json
