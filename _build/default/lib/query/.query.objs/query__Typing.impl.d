lib/query/typing.ml: Ast Hashtbl Jtype List String Typecheck Types
