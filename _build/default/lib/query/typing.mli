(** Static output-schema inference for query pipelines.

    Given the type of the input collection's documents, computes a type
    that every output document is guaranteed to inhabit — the Jaql
    capability the tutorial highlights. The inference is a sound
    over-approximation: permissive dynamic semantics (missing field →
    [null], bad arithmetic → [null]) shows up as explicit [Null] branches
    in the result. Soundness is property-tested against {!Eval} on random
    pipelines. *)

val type_expr : Jtype.Types.t -> Ast.expr -> Jtype.Types.t
(** Type of the expression's value when [$] has the given type. *)

val type_pipeline : Jtype.Types.t -> Ast.pipeline -> Jtype.Types.t
(** Type of the output documents when input documents have the given
    type. [Bot] means the stage provably emits nothing (e.g. [expand] of a
    never-array field). *)
