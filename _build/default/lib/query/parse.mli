(** Concrete syntax for query pipelines.

    {v
    pipeline := stage ('|' stage)*
    stage    := 'filter' expr
              | 'transform' expr
              | 'expand' [ident]
              | 'group' 'by' expr 'into' '{' ident ':' agg (',' ...)* '}'
              | 'sort' 'by' expr ['desc']
              | 'top' INT
    agg      := 'count' | ('sum'|'avg'|'min'|'max') expr
    expr     := usual precedence: or < and < comparison < +- < */ < unary
                ('not', 'isnull') < postfix ('.' field, '[i]')
    atoms    := '$' | JSON scalar literals | '(' expr ')'
              | '{' ident ':' expr, ... '}' | '[' expr, ... ']'
    v}

    [Ast.to_string] output parses back to the same pipeline. *)

val pipeline : string -> (Ast.pipeline, string) result
val pipeline_exn : string -> Ast.pipeline
val expr : string -> (Ast.expr, string) result
