(** Dynamic semantics of the query pipeline.

    Total: queries never raise on data — missing fields, type mismatches
    and division by zero all produce [null] (Jaql's behaviour), so the
    output schema inference in {!Typing} must and does account for
    nullability. *)

val eval_expr : Json.Value.t -> Ast.expr -> Json.Value.t
(** Evaluate an expression with [$] bound to the document. *)

val run : Ast.pipeline -> Json.Value.t list -> Json.Value.t list
