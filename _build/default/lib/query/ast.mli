(** A Jaql-style query pipeline over JSON collections.

    Jaql (Beyer et al., VLDB'11) is the tutorial's example of a system that
    "exploits schema information for inferring the output schema of a
    query". This module defines the query algebra; {!Eval} executes it and
    {!Typing} infers output schemas from input schemas — the static/dynamic
    agreement is property-tested.

    Semantics follow Jaql's permissive style: accessing a missing field or
    a field of a non-record yields [null]; arithmetic on non-numbers yields
    [null]; comparison with [null] is [false]. *)

type op =
  | Add | Sub | Mul | Div
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

type expr =
  | Ctx  (** [$] — the current document *)
  | Const of Json.Value.t
  | Field of expr * string  (** [e.f] *)
  | Index of expr * int     (** [e[i]] *)
  | Binop of op * expr * expr
  | Not of expr
  | Is_null of expr
  | Record of (string * expr) list  (** record constructor *)
  | List of expr list               (** array constructor *)

type agg = Count | Sum of expr | Avg of expr | Min of expr | Max of expr

type stage =
  | Filter of expr  (** keep documents where the expression is [true] *)
  | Transform of expr  (** replace each document by the expression's value *)
  | Expand of string option
      (** unnest: [Expand None] flattens array documents; [Expand (Some f)]
          emits one output per element of field [f] *)
  | Group_by of expr * (string * agg) list
      (** one output record per key: [{key: k, <name>: <agg>, ...}] *)
  | Sort_by of expr * [ `Asc | `Desc ]
  | Top of int

type pipeline = stage list

val expr_to_string : expr -> string
val stage_to_string : stage -> string
val to_string : pipeline -> string
(** Concrete syntax, e.g.
    ["filter $.age > 18 | transform {name: $.name} | top 10"]. *)
