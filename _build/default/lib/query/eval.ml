open Json.Value

let number_of = function
  | Int n -> Some (float_of_int n)
  | Float f -> Some f
  | _ -> None

let arith op a b =
  (* integer arithmetic stays integer (wrapping), as the static typing
     promises; everything else goes through floats *)
  match (op, a, b) with
  | Ast.Add, Int x, Int y -> Int (x + y)
  | Ast.Sub, Int x, Int y -> Int (x - y)
  | Ast.Mul, Int x, Int y -> Int (x * y)
  | _ -> (
      match (number_of a, number_of b) with
      | Some x, Some y -> (
          match op with
          | Ast.Add -> Float (x +. y)
          | Ast.Sub -> Float (x -. y)
          | Ast.Mul -> Float (x *. y)
          | Ast.Div -> if y = 0.0 then Null else Float (x /. y)
          | _ -> Null)
      | _ -> Null)

let compare_values op a b =
  match (a, b) with
  | Null, _ | _, Null -> Bool false
  | _ ->
      let c = Json.Value.compare a b in
      Bool
        (match op with
         | Ast.Eq -> c = 0
         | Ast.Ne -> c <> 0
         | Ast.Lt -> c < 0
         | Ast.Le -> c <= 0
         | Ast.Gt -> c > 0
         | Ast.Ge -> c >= 0
         | _ -> false)

let truthy = function Bool b -> b | _ -> false

let rec eval_expr doc (e : Ast.expr) : t =
  match e with
  | Ast.Ctx -> doc
  | Ast.Const v -> v
  | Ast.Field (e, f) -> (
      match member f (eval_expr doc e) with Some v -> v | None -> Null)
  | Ast.Index (e, i) -> (
      match index i (eval_expr doc e) with Some v -> v | None -> Null)
  | Ast.Not e -> Bool (not (truthy (eval_expr doc e)))
  | Ast.Is_null e -> Bool (eval_expr doc e = Null)
  | Ast.Record fields -> Object (List.map (fun (k, e) -> (k, eval_expr doc e)) fields)
  | Ast.List es -> Array (List.map (eval_expr doc) es)
  | Ast.Binop (op, ea, eb) -> (
      let a = eval_expr doc ea in
      match op with
      | Ast.And -> if truthy a then Bool (truthy (eval_expr doc eb)) else Bool false
      | Ast.Or -> if truthy a then Bool true else Bool (truthy (eval_expr doc eb))
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div -> arith op a (eval_expr doc eb)
      | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
          compare_values op a (eval_expr doc eb))

let eval_agg docs (agg : Ast.agg) : t =
  let numbers e =
    List.filter_map (fun d -> number_of (eval_expr d e)) docs
  in
  match agg with
  | Ast.Count -> Int (List.length docs)
  | Ast.Sum e ->
      (* non-numeric values are skipped; an all-integer (or empty) operand
         column sums to an integer, matching the static typing *)
      let vals = List.map (fun d -> eval_expr d e) docs in
      if List.for_all (function Int _ | Null -> true | _ -> false) vals then
        Int (List.fold_left (fun acc v -> match v with Int n -> acc + n | _ -> acc) 0 vals)
      else
        Float
          (List.fold_left
             (fun acc v -> match number_of v with Some x -> acc +. x | None -> acc)
             0.0 vals)
  | Ast.Avg e -> (
      match numbers e with
      | [] -> Null
      | xs -> Float (List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)))
  | Ast.Min e -> (
      match List.map (fun d -> eval_expr d e) docs with
      | [] -> Null
      | vs -> (
          match List.filter (fun v -> v <> Null) vs with
          | [] -> Null
          | vs -> List.fold_left (fun a b -> if Json.Value.compare b a < 0 then b else a) (List.hd vs) vs))
  | Ast.Max e -> (
      match List.filter (fun v -> v <> Null) (List.map (fun d -> eval_expr d e) docs) with
      | [] -> Null
      | vs -> List.fold_left (fun a b -> if Json.Value.compare b a > 0 then b else a) (List.hd vs) vs)

let run_stage docs (stage : Ast.stage) : t list =
  match stage with
  | Ast.Filter e -> List.filter (fun d -> truthy (eval_expr d e)) docs
  | Ast.Transform e -> List.map (fun d -> eval_expr d e) docs
  | Ast.Expand None ->
      List.concat_map (function Array vs -> vs | _ -> []) docs
  | Ast.Expand (Some f) ->
      List.concat_map
        (fun d -> match member f d with Some (Array vs) -> vs | _ -> [])
        docs
  | Ast.Group_by (key, aggs) ->
      let groups = Hashtbl.create 16 in
      let order = ref [] in
      List.iter
        (fun d ->
          let k = eval_expr d key in
          let repr = Json.Printer.to_string (Json.Value.sort_keys k) in
          match Hashtbl.find_opt groups repr with
          | Some (k0, ds) -> Hashtbl.replace groups repr (k0, d :: ds)
          | None ->
              Hashtbl.add groups repr (k, [ d ]);
              order := repr :: !order)
        docs;
      List.rev_map
        (fun repr ->
          let k, ds = Hashtbl.find groups repr in
          let ds = List.rev ds in
          Object
            (("key", k) :: List.map (fun (name, agg) -> (name, eval_agg ds agg)) aggs))
        !order
  | Ast.Sort_by (e, dir) ->
      let keyed = List.map (fun d -> (eval_expr d e, d)) docs in
      let cmp (a, _) (b, _) =
        let c = Json.Value.compare a b in
        match dir with `Asc -> c | `Desc -> -c
      in
      List.map snd (List.stable_sort cmp keyed)
  | Ast.Top n -> List.filteri (fun i _ -> i < n) docs

let run pipeline docs = List.fold_left run_stage docs pipeline
