type op =
  | Add | Sub | Mul | Div
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

type expr =
  | Ctx
  | Const of Json.Value.t
  | Field of expr * string
  | Index of expr * int
  | Binop of op * expr * expr
  | Not of expr
  | Is_null of expr
  | Record of (string * expr) list
  | List of expr list

type agg = Count | Sum of expr | Avg of expr | Min of expr | Max of expr

type stage =
  | Filter of expr
  | Transform of expr
  | Expand of string option
  | Group_by of expr * (string * agg) list
  | Sort_by of expr * [ `Asc | `Desc ]
  | Top of int

type pipeline = stage list

let op_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "and" | Or -> "or"

let rec expr_to_string = function
  | Ctx -> "$"
  | Const v -> Json.Printer.to_string v
  | Field (Ctx, f) -> "$." ^ f
  | Field (e, f) -> expr_to_string e ^ "." ^ f
  | Index (e, i) -> Printf.sprintf "%s[%d]" (expr_to_string e) i
  | Binop (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr_to_string a) (op_to_string op) (expr_to_string b)
  | Not e -> "not " ^ expr_to_string e
  | Is_null e -> "isnull " ^ expr_to_string e
  | Record fields ->
      "{"
      ^ String.concat ", "
          (List.map (fun (k, e) -> k ^ ": " ^ expr_to_string e) fields)
      ^ "}"
  | List es -> "[" ^ String.concat ", " (List.map expr_to_string es) ^ "]"

let agg_to_string (name, agg) =
  let body =
    match agg with
    | Count -> "count"
    | Sum e -> "sum " ^ expr_to_string e
    | Avg e -> "avg " ^ expr_to_string e
    | Min e -> "min " ^ expr_to_string e
    | Max e -> "max " ^ expr_to_string e
  in
  name ^ ": " ^ body

let stage_to_string = function
  | Filter e -> "filter " ^ expr_to_string e
  | Transform e -> "transform " ^ expr_to_string e
  | Expand None -> "expand"
  | Expand (Some f) -> "expand " ^ f
  | Group_by (key, aggs) ->
      Printf.sprintf "group by %s into {%s}" (expr_to_string key)
        (String.concat ", " (List.map agg_to_string aggs))
  | Sort_by (e, `Asc) -> "sort by " ^ expr_to_string e
  | Sort_by (e, `Desc) -> "sort by " ^ expr_to_string e ^ " desc"
  | Top n -> "top " ^ string_of_int n

let to_string pipeline = String.concat " | " (List.map stage_to_string pipeline)
