lib/translate/csv_export.ml: Buffer Inference Json List String
