lib/translate/columnar.ml: Array Avro Buffer Char Inference Int64 Json List Option Printf String
