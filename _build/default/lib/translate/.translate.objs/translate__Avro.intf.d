lib/translate/avro.mli: Buffer Json Jtype
