lib/translate/csv_export.mli: Inference Json
