lib/translate/avro.ml: Buffer Char Int64 Json Jtype List Printf String
