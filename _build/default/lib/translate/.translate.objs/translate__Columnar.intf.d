lib/translate/columnar.mli: Inference Json
