(** Parquet-style columnar shredding of JSON collections.

    Documents are shredded against a union-free schema (the Spark-style
    schema of {!Inference.Spark} — Parquet, like Spark, has no union types)
    into one typed column per leaf path. Nullability is a presence level on
    each column (Dremel's definition levels, collapsed to one level per
    nesting because the driving schema already fixes the structure);
    repetition is an explicit length column per array node (an offsets
    encoding, as in Arrow/Parquet V2).

    Reassembly is lossy in exactly the way Spark is: an absent optional
    field and an explicit [null] both come back as [null] — the tutorial's
    point that translation fidelity is bounded by the schema language's
    expressiveness. *)

type table

val shred :
  schema:Inference.Spark.field -> Json.Value.t list -> (table, string) result
(** Fails when a document does not conform to the schema (no silent
    coercion: translate after validating, as the pipeline does). *)

val assemble : table -> Json.Value.t list
(** Rows in original order; optional-absent fields materialize as [null]. *)

val row_count : table -> int
val column_paths : table -> string list
(** Dotted leaf paths, e.g. ["user.name"; "tags[]"]. *)

val encode : table -> string
(** Binary serialization: per-column contiguous data (varint longs,
    LE doubles, length-prefixed strings, bit-packed booleans/presence). *)

val decode : schema:Inference.Spark.field -> string -> (table, string) result
val byte_size : table -> int
(** [String.length (encode t)] without materializing twice. *)

val column_bytes : table -> (string * int) list
(** Per-leaf-column encoded sizes — the per-column scan cost a columnar
    engine would pay (E7 reports these). *)
