(** Schema-driven translation of JSON to an Avro-like binary row format.

    Implements the Avro binary encoding (zigzag varints, length-prefixed
    UTF-8, IEEE-754 little-endian doubles, block-encoded arrays, tagged
    unions) against schemas derived from inferred {!Jtype.Types.t} — the
    "schema-aware data translation" opportunity the tutorial closes with.
    Unions map directly onto Avro unions, which is exactly why a
    union-aware inference output is a good translation driver (E7). *)

type schema =
  | Null
  | Boolean
  | Long
  | Double
  | String
  | Record of string * (string * schema) list
  | Array of schema
  | Union of schema list
  | Anything  (** escape hatch: value stored as its JSON text *)

val of_jtype : name:string -> Jtype.Types.t -> schema
(** Optional record fields become [Union [Null; ...]] (the standard Avro
    idiom); [Int]→[Long], [Num]→[Double], [Any]→[Anything]. *)

val schema_to_json : schema -> Json.Value.t
(** Avro schemas are themselves JSON. *)

val encode : schema -> Json.Value.t -> (string, string) result
val decode : schema -> string -> (Json.Value.t, string) result
(** Inverse of {!encode}. Union-encoded optionals decode back to explicit
    [null]s; record fields come back in schema order. *)

val encode_all : schema -> Json.Value.t list -> (string, string) result
(** Concatenated rows prefixed by a count (a minimal object-container). *)

val decode_all : schema -> string -> (Json.Value.t list, string) result

(** {1 Schema resolution} (Avro spec, "Schema Resolution")

    The mechanism behind Avro's schema evolution story: data written with
    one schema is read under another. Supported promotions and adaptations:
    [Long]→[Double]; union re-tagging in both directions; record fields
    matched by name with writer-only fields skipped and reader-only fields
    defaulted to [null] when their reader type admits it. *)

val resolve : writer:schema -> reader:schema -> (unit, string) result
(** Check that every value written with [writer] can be read under
    [reader]; [Error] explains the first incompatibility. *)

val decode_resolved :
  writer:schema -> reader:schema -> string -> (Json.Value.t, string) result
(** Decode bytes produced by [encode writer] into the shape of [reader]
    (fields reordered/defaulted/promoted as the spec prescribes). *)

(** {1 Varint primitives} (exposed for tests) *)

val zigzag : int -> int
val unzigzag : int -> int
val write_varint : Buffer.t -> int -> unit
val read_varint : string -> int -> (int * int, string) result
(** Value and next offset. *)
