(* Column tree: mirrors the schema; every node stores one entry per value
   occurrence at its nesting level (Dremel levels specialized to a fixed
   schema: presence = definition, lengths = repetition). *)
type node =
  | Leaf of Json.Value.t option array
  | Struct of bool array * (string * node) list
  | Arr of bool array * int array * node  (* lengths: one entry per present row *)

type table = { schema : Inference.Spark.field; rows : int; root : node }

let row_count t = t.rows

(* --- builders ------------------------------------------------------------- *)

type builder =
  | BLeaf of Json.Value.t option list ref
  | BStruct of bool list ref * (string * builder) list
  | BArr of bool list ref * int list ref * builder

let rec make_builder (s : Inference.Spark.t) : builder =
  match s with
  | Inference.Spark.Null_type | Inference.Spark.Boolean | Inference.Spark.Long
  | Inference.Spark.Double | Inference.Spark.String ->
      BLeaf (ref [])
  | Inference.Spark.Struct fields ->
      BStruct (ref [], List.map (fun (k, f) -> (k, make_builder f.Inference.Spark.typ)) fields)
  | Inference.Spark.Array elem ->
      BArr (ref [], ref [], make_builder elem.Inference.Spark.typ)

exception Shred_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Shred_error m)) fmt

let rec add (f : Inference.Spark.field) (b : builder) (v : Json.Value.t option) =
  match v with
  | None | Some Json.Value.Null -> (
      if not f.Inference.Spark.nullable && f.Inference.Spark.typ <> Inference.Spark.Null_type
      then fail "null in non-nullable column";
      match b with
      | BLeaf cells -> cells := None :: !cells
      | BStruct (presence, _) -> presence := false :: !presence
      | BArr (presence, _, _) -> presence := false :: !presence)
  | Some v -> (
      match (f.Inference.Spark.typ, b, v) with
      | Inference.Spark.Null_type, BLeaf cells, _ ->
          (* only null fits; handled above, so this value is a conflict *)
          ignore cells;
          fail "non-null value in NULL column: %s" (Json.Printer.to_string v)
      | Inference.Spark.Boolean, BLeaf cells, Json.Value.Bool _
      | Inference.Spark.Long, BLeaf cells, Json.Value.Int _
      | Inference.Spark.Double, BLeaf cells, (Json.Value.Int _ | Json.Value.Float _)
      | Inference.Spark.String, BLeaf cells, Json.Value.String _ ->
          cells := Some v :: !cells
      | Inference.Spark.String, BLeaf cells, v ->
          (* widened column: Spark renders the non-string value as its JSON
             text — the fidelity loss the tutorial warns about *)
          cells := Some (Json.Value.String (Json.Printer.to_string v)) :: !cells
      | Inference.Spark.Struct fields, BStruct (presence, subs), Json.Value.Object obj ->
          List.iter
            (fun (k, _) ->
              if not (List.mem_assoc k fields) then fail "undeclared field %S" k)
            obj;
          presence := true :: !presence;
          List.iter
            (fun (k, sub_builder) ->
              let sub_field = List.assoc k fields in
              add sub_field sub_builder (List.assoc_opt k obj))
            subs
      | Inference.Spark.Array elem, BArr (presence, lengths, sub), Json.Value.Array vs ->
          presence := true :: !presence;
          lengths := List.length vs :: !lengths;
          List.iter (fun x -> add elem sub (Some x)) vs
      | _ ->
          fail "value %s does not fit column type %s" (Json.Printer.to_string v)
            (Inference.Spark.to_ddl f.Inference.Spark.typ))

let rec finalize (b : builder) : node =
  match b with
  | BLeaf cells -> Leaf (Array.of_list (List.rev !cells))
  | BStruct (presence, subs) ->
      Struct
        ( Array.of_list (List.rev !presence),
          List.map (fun (k, sub) -> (k, finalize sub)) subs )
  | BArr (presence, lengths, sub) ->
      Arr
        ( Array.of_list (List.rev !presence),
          Array.of_list (List.rev !lengths),
          finalize sub )

let shred ~schema values =
  let b = make_builder schema.Inference.Spark.typ in
  match List.iter (fun v -> add schema b (Some v)) values with
  | () -> Ok { schema; rows = List.length values; root = finalize b }
  | exception Shred_error m -> Error m

(* --- assembly -------------------------------------------------------------- *)

type cursor =
  | CLeaf of Json.Value.t option array * int ref
  | CStruct of bool array * int ref * (string * cursor) list
  | CArr of bool array * int ref * int array * int ref * cursor

let rec cursor_of = function
  | Leaf cells -> CLeaf (cells, ref 0)
  | Struct (presence, fields) ->
      CStruct (presence, ref 0, List.map (fun (k, n) -> (k, cursor_of n)) fields)
  | Arr (presence, lengths, elem) ->
      CArr (presence, ref 0, lengths, ref 0, cursor_of elem)

let rec next (c : cursor) : Json.Value.t =
  match c with
  | CLeaf (cells, i) ->
      let v = cells.(!i) in
      incr i;
      (match v with Some v -> v | None -> Json.Value.Null)
  | CStruct (presence, i, fields) ->
      let present = presence.(!i) in
      incr i;
      if present then
        Json.Value.Object (List.map (fun (k, sub) -> (k, next sub)) fields)
      else Json.Value.Null
  | CArr (presence, i, lengths, li, elem) ->
      let present = presence.(!i) in
      incr i;
      if present then begin
        let len = lengths.(!li) in
        incr li;
        Json.Value.Array (List.init len (fun _ -> next elem))
      end
      else Json.Value.Null

let assemble t =
  let c = cursor_of t.root in
  List.init t.rows (fun _ -> next c)

(* --- binary encoding -------------------------------------------------------- *)

let write_bits buf bits =
  Avro.write_varint buf (Array.length bits);
  let byte = ref 0 and nbits = ref 0 in
  Array.iter
    (fun b ->
      if b then byte := !byte lor (1 lsl !nbits);
      incr nbits;
      if !nbits = 8 then begin
        Buffer.add_char buf (Char.chr !byte);
        byte := 0;
        nbits := 0
      end)
    bits;
  if !nbits > 0 then Buffer.add_char buf (Char.chr !byte)

let read_bits s pos =
  match Avro.read_varint s pos with
  | Error m -> Error m
  | Ok (count, pos) ->
      if count < 0 || count > 8 * String.length s then Error "corrupt bitmap count"
      else
      let nbytes = (count + 7) / 8 in
      if pos + nbytes > String.length s then Error "truncated bitmap"
      else
        Ok
          ( Array.init count (fun i ->
                Char.code s.[pos + (i / 8)] land (1 lsl (i mod 8)) <> 0),
            pos + nbytes )

let write_leaf buf (typ : Inference.Spark.t) cells =
  let presence = Array.map Option.is_some cells in
  write_bits buf presence;
  Array.iter
    (fun cell ->
      match (cell : Json.Value.t option) with
      | None -> ()
      | Some v -> (
          match (typ, v) with
          | Inference.Spark.Boolean, Json.Value.Bool b ->
              Buffer.add_char buf (if b then '\001' else '\000')
          | Inference.Spark.Long, Json.Value.Int n ->
              Avro.write_varint buf (Avro.zigzag n)
          | Inference.Spark.Double, Json.Value.Int n ->
              Buffer.add_string buf
                (let b = Buffer.create 8 in
                 let bits = Int64.bits_of_float (float_of_int n) in
                 for i = 0 to 7 do
                   Buffer.add_char b
                     (Char.chr
                        (Int64.to_int
                           (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
                 done;
                 Buffer.contents b)
          | Inference.Spark.Double, Json.Value.Float f ->
              let bits = Int64.bits_of_float f in
              for i = 0 to 7 do
                Buffer.add_char buf
                  (Char.chr
                     (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
              done
          | Inference.Spark.String, Json.Value.String s ->
              Avro.write_varint buf (String.length s);
              Buffer.add_string buf s
          | Inference.Spark.Null_type, _ -> ()
          | _ -> ()))
    cells

let rec write_node buf (typ : Inference.Spark.t) (n : node) =
  match (typ, n) with
  | (Inference.Spark.Null_type | Inference.Spark.Boolean | Inference.Spark.Long
    | Inference.Spark.Double | Inference.Spark.String), Leaf cells ->
      write_leaf buf typ cells
  | Inference.Spark.Struct fields, Struct (presence, subs) ->
      write_bits buf presence;
      List.iter
        (fun (k, sub) ->
          let f = List.assoc k fields in
          write_node buf f.Inference.Spark.typ sub)
        subs
  | Inference.Spark.Array elem, Arr (presence, lengths, sub) ->
      write_bits buf presence;
      Avro.write_varint buf (Array.length lengths);
      Array.iter (fun l -> Avro.write_varint buf l) lengths;
      write_node buf elem.Inference.Spark.typ sub
  | _ -> invalid_arg "Columnar.write_node: schema/column mismatch"

let encode t =
  let buf = Buffer.create 4096 in
  Avro.write_varint buf t.rows;
  write_node buf t.schema.Inference.Spark.typ t.root;
  Buffer.contents buf

exception Dec of string

let read_leaf s pos (typ : Inference.Spark.t) =
  match read_bits s pos with
  | Error m -> raise (Dec m)
  | Ok (presence, pos) ->
      let pos = ref pos in
      let cells =
        Array.map
          (fun present ->
            if not present then None
            else
              match typ with
              | Inference.Spark.Boolean ->
                  let b = s.[!pos] <> '\000' in
                  incr pos;
                  Some (Json.Value.Bool b)
              | Inference.Spark.Long -> (
                  match Avro.read_varint s !pos with
                  | Ok (n, p) ->
                      pos := p;
                      Some (Json.Value.Int (Avro.unzigzag n))
                  | Error m -> raise (Dec m))
              | Inference.Spark.Double ->
                  if !pos + 8 > String.length s then raise (Dec "truncated double");
                  let bits = ref 0L in
                  for i = 7 downto 0 do
                    bits :=
                      Int64.logor (Int64.shift_left !bits 8)
                        (Int64.of_int (Char.code s.[!pos + i]))
                  done;
                  pos := !pos + 8;
                  Some (Json.Value.Float (Int64.float_of_bits !bits))
              | Inference.Spark.String -> (
                  match Avro.read_varint s !pos with
                  | Ok (len, p) ->
                      if p + len > String.length s then raise (Dec "truncated string");
                      pos := p + len;
                      Some (Json.Value.String (String.sub s p len))
                  | Error m -> raise (Dec m))
              | Inference.Spark.Null_type -> Some Json.Value.Null
              | _ -> raise (Dec "non-leaf type in leaf"))
          presence
      in
      (Leaf cells, !pos)

let rec read_node s pos (typ : Inference.Spark.t) =
  match typ with
  | Inference.Spark.Null_type | Inference.Spark.Boolean | Inference.Spark.Long
  | Inference.Spark.Double | Inference.Spark.String ->
      read_leaf s pos typ
  | Inference.Spark.Struct fields -> (
      match read_bits s pos with
      | Error m -> raise (Dec m)
      | Ok (presence, pos) ->
          let pos = ref pos in
          let subs =
            List.map
              (fun (k, f) ->
                let n, p = read_node s !pos f.Inference.Spark.typ in
                pos := p;
                (k, n))
              fields
          in
          (Struct (presence, subs), !pos))
  | Inference.Spark.Array elem -> (
      match read_bits s pos with
      | Error m -> raise (Dec m)
      | Ok (presence, pos) -> (
          match Avro.read_varint s pos with
          | Error m -> raise (Dec m)
          | Ok (nlens, pos) ->
              if nlens < 0 || nlens > String.length s then raise (Dec "corrupt length count");
              let p = ref pos in
              let lengths =
                Array.init nlens (fun _ ->
                    match Avro.read_varint s !p with
                    | Ok (l, p') ->
                        p := p';
                        l
                    | Error m -> raise (Dec m))
              in
              let sub, p' = read_node s !p elem.Inference.Spark.typ in
              (Arr (presence, lengths, sub), p')))

let decode ~schema s =
  match
    match Avro.read_varint s 0 with
    | Error m -> raise (Dec m)
    | Ok (rows, pos) ->
        let root, _ = read_node s pos schema.Inference.Spark.typ in
        { schema; rows; root }
  with
  | t -> Ok t
  | exception Dec m -> Error m

let byte_size t = String.length (encode t)

let column_paths t =
  let rec go path (typ : Inference.Spark.t) acc =
    match typ with
    | Inference.Spark.Struct fields ->
        List.fold_left
          (fun acc (k, f) ->
            go (if path = "" then k else path ^ "." ^ k) f.Inference.Spark.typ acc)
          acc fields
    | Inference.Spark.Array elem -> go (path ^ "[]") elem.Inference.Spark.typ acc
    | _ -> (if path = "" then "value" else path) :: acc
  in
  List.rev (go "" t.schema.Inference.Spark.typ [])

let column_bytes t =
  let out = ref [] in
  let rec go path (typ : Inference.Spark.t) (n : node) =
    match (typ, n) with
    | Inference.Spark.Struct fields, Struct (_, subs) ->
        List.iter
          (fun (k, sub) ->
            let f = List.assoc k fields in
            go (if path = "" then k else path ^ "." ^ k) f.Inference.Spark.typ sub)
          subs
    | Inference.Spark.Array elem, Arr (_, _, sub) ->
        go (path ^ "[]") elem.Inference.Spark.typ sub
    | leaf_type, (Leaf _ as leaf) ->
        let buf = Buffer.create 256 in
        write_node buf leaf_type leaf;
        out := ((if path = "" then "value" else path), Buffer.length buf) :: !out
    | _ -> ()
  in
  go "" t.schema.Inference.Spark.typ t.root;
  List.rev !out
