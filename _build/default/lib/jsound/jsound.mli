(** The JSound compact schema language (jsoniq.org/docs/JSound).

    JSound is deliberately restrictive — the tutorial describes it as "an
    alternative, but quite restrictive, schema language". A schema is itself
    a JSON value:

    - an {b atomic type designator} string: ["string"], ["integer"],
      ["decimal"], ["double"], ["boolean"], ["null"], ["date"],
      ["dateTime"], ["time"], ["anyURI"], ["item"] (anything);
      a trailing [?] makes the type nullable (["integer?"]);
    - an {b object schema}: a JSON object mapping field names to schemas.
      Fields are required by default; a [?] prefix on the name makes the
      field optional (["?middle_name"]); an [@] prefix marks a required
      key field whose values must be unique across a collection;
    - an {b array schema}: a singleton array [[S]] — instances are arrays
      whose every element matches [S].

    Unions, co-occurrence constraints and negation are intentionally not
    expressible; that restriction is what experiments E1/E4 measure. *)

type atomic =
  | A_string
  | A_integer
  | A_decimal  (** any JSON number *)
  | A_double
  | A_boolean
  | A_null
  | A_date
  | A_date_time
  | A_time
  | A_any_uri
  | A_item  (** wildcard *)

type t =
  | Atomic of atomic * bool  (** [true] = nullable ([?] suffix) *)
  | Object_s of field list
  | Array_s of t

and field = {
  name : string;
  schema : t;
  optional : bool;  (** [?] prefix *)
  key : bool;  (** [@] prefix *)
}

val parse : Json.Value.t -> (t, string) result
(** Read a schema from its JSON form. *)

val parse_string : string -> (t, string) result
val to_json : t -> Json.Value.t

type error = { at : Json.Pointer.t; message : string }

val string_of_error : error -> string

val validate : t -> Json.Value.t -> (unit, error list) result
val is_valid : t -> Json.Value.t -> bool

val validate_collection : t -> Json.Value.t list -> (unit, error list) result
(** Per-instance validation plus uniqueness of [@]-annotated key fields
    across the collection. *)

val to_json_schema : t -> Jsonschema.Schema.t
(** Faithful translation ([date]/[dateTime]/[time]/[anyURI] become [format]
    annotations; [@] uniqueness is not expressible and is dropped). *)

val to_jtype : t -> Jtype.Types.t
(** Abstraction into the type algebra ([date] etc. collapse to [Str]). *)
