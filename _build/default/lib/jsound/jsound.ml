type atomic =
  | A_string
  | A_integer
  | A_decimal
  | A_double
  | A_boolean
  | A_null
  | A_date
  | A_date_time
  | A_time
  | A_any_uri
  | A_item

type t =
  | Atomic of atomic * bool
  | Object_s of field list
  | Array_s of t

and field = { name : string; schema : t; optional : bool; key : bool }

let atomic_of_string = function
  | "string" -> Some A_string
  | "integer" -> Some A_integer
  | "decimal" -> Some A_decimal
  | "double" -> Some A_double
  | "boolean" -> Some A_boolean
  | "null" -> Some A_null
  | "date" -> Some A_date
  | "dateTime" -> Some A_date_time
  | "time" -> Some A_time
  | "anyURI" -> Some A_any_uri
  | "item" -> Some A_item
  | _ -> None

let atomic_to_string = function
  | A_string -> "string"
  | A_integer -> "integer"
  | A_decimal -> "decimal"
  | A_double -> "double"
  | A_boolean -> "boolean"
  | A_null -> "null"
  | A_date -> "date"
  | A_date_time -> "dateTime"
  | A_time -> "time"
  | A_any_uri -> "anyURI"
  | A_item -> "item"

let rec parse (v : Json.Value.t) : (t, string) result =
  match v with
  | Json.Value.String s ->
      let nullable = String.length s > 0 && s.[String.length s - 1] = '?' in
      let base = if nullable then String.sub s 0 (String.length s - 1) else s in
      (match atomic_of_string base with
       | Some a -> Ok (Atomic (a, nullable))
       | None -> Error (Printf.sprintf "unknown type designator %S" s))
  | Json.Value.Array [ elem ] -> (
      match parse elem with
      | Ok s -> Ok (Array_s s)
      | Error _ as e -> e)
  | Json.Value.Array _ ->
      Error "an array schema must contain exactly one member schema"
  | Json.Value.Object fields ->
      let rec go acc = function
        | [] -> Ok (Object_s (List.rev acc))
        | (raw_name, sub) :: rest -> (
            let optional = String.length raw_name > 0 && raw_name.[0] = '?' in
            let key = String.length raw_name > 0 && raw_name.[0] = '@' in
            let name =
              if optional || key then String.sub raw_name 1 (String.length raw_name - 1)
              else raw_name
            in
            if name = "" then Error "empty field name"
            else
              match parse sub with
              | Ok schema -> go ({ name; schema; optional; key } :: acc) rest
              | Error _ as e -> e)
      in
      go [] fields
  | _ -> Error "a JSound schema is a type string, an object, or a singleton array"

let parse_string src =
  match Json.Parser.parse src with
  | Error e -> Error (Json.Parser.string_of_error e)
  | Ok v -> parse v

let rec to_json = function
  | Atomic (a, nullable) ->
      Json.Value.String (atomic_to_string a ^ if nullable then "?" else "")
  | Array_s s -> Json.Value.Array [ to_json s ]
  | Object_s fields ->
      Json.Value.Object
        (List.map
           (fun f ->
             let prefix = if f.key then "@" else if f.optional then "?" else "" in
             (prefix ^ f.name, to_json f.schema))
           fields)

type error = { at : Json.Pointer.t; message : string }

let string_of_error { at; message } =
  Printf.sprintf "at %s: %s"
    (match Json.Pointer.to_string at with "" -> "<root>" | p -> p)
    message

let date_ok s = Jsonschema.Validate.check_format "date" s = Some true
let datetime_ok s = Jsonschema.Validate.check_format "date-time" s = Some true
let time_ok s = Jsonschema.Validate.check_format "time" s = Some true
let uri_ok s = Jsonschema.Validate.check_format "uri" s = Some true

let atomic_ok a (v : Json.Value.t) =
  match (a, v) with
  | A_item, _ -> true
  | A_string, Json.Value.String _ -> true
  | A_integer, Json.Value.Int _ -> true
  | A_integer, Json.Value.Float f -> Float.is_integer f
  | A_decimal, (Json.Value.Int _ | Json.Value.Float _) -> true
  | A_double, (Json.Value.Int _ | Json.Value.Float _) -> true
  | A_boolean, Json.Value.Bool _ -> true
  | A_null, Json.Value.Null -> true
  | A_date, Json.Value.String s -> date_ok s
  | A_date_time, Json.Value.String s -> datetime_ok s
  | A_time, Json.Value.String s -> time_ok s
  | A_any_uri, Json.Value.String s -> uri_ok s
  | _ -> false

let rec check at (s : t) (v : Json.Value.t) : error list =
  match s with
  | Atomic (a, nullable) ->
      if atomic_ok a v || (nullable && v = Json.Value.Null) then []
      else
        [ { at;
            message =
              Printf.sprintf "expected %s%s, got %s" (atomic_to_string a)
                (if nullable then "?" else "")
                (Json.Value.kind_name (Json.Value.kind v)) } ]
  | Array_s elem -> (
      match v with
      | Json.Value.Array vs ->
          List.concat
            (List.mapi
               (fun i x -> check (Json.Pointer.append at (Json.Pointer.Index i)) elem x)
               vs)
      | _ -> [ { at; message = "expected an array" } ])
  | Object_s fields -> (
      match v with
      | Json.Value.Object obj ->
          let declared = List.map (fun f -> f.name) fields in
          let missing =
            List.filter_map
              (fun f ->
                if f.optional || List.mem_assoc f.name obj then None
                else
                  Some { at; message = Printf.sprintf "missing required field %S" f.name })
              fields
          in
          let extra =
            List.filter_map
              (fun (k, _) ->
                if List.mem k declared then None
                else Some { at; message = Printf.sprintf "undeclared field %S" k })
              obj
          in
          let nested =
            List.concat_map
              (fun f ->
                match List.assoc_opt f.name obj with
                | Some x ->
                    check (Json.Pointer.append at (Json.Pointer.Key f.name)) f.schema x
                | None -> [])
              fields
          in
          missing @ extra @ nested
      | _ -> [ { at; message = "expected an object" } ])

let validate s v = match check [] s v with [] -> Ok () | es -> Error es
let is_valid s v = validate s v = Ok ()

let validate_collection s vs =
  let per_instance =
    List.concat
      (List.mapi
         (fun i v ->
           List.map
             (fun e -> { e with at = Json.Pointer.Index i :: e.at })
             (check [] s v))
         vs)
  in
  (* uniqueness of @key fields at the top level of an object schema *)
  let key_errors =
    match s with
    | Object_s fields ->
        List.concat_map
          (fun f ->
            if not f.key then []
            else begin
              let seen = Hashtbl.create 16 in
              List.concat
                (List.mapi
                   (fun i v ->
                     match Json.Value.member f.name v with
                     | Some key_val -> (
                         let repr = Json.Printer.to_string key_val in
                         match Hashtbl.find_opt seen repr with
                         | Some first ->
                             [ { at = [ Json.Pointer.Index i; Json.Pointer.Key f.name ];
                                 message =
                                   Printf.sprintf
                                     "duplicate value for key field %S (first at index %d)"
                                     f.name first } ]
                         | None ->
                             Hashtbl.add seen repr i;
                             [])
                     | None -> [])
                   vs)
            end)
          fields
    | _ -> []
  in
  match per_instance @ key_errors with [] -> Ok () | es -> Error es

let rec to_json_schema (s : t) : Jsonschema.Schema.t =
  let open Jsonschema.Schema in
  match s with
  | Atomic (a, nullable) ->
      let typed ?format t =
        { empty with
          types = Some (if nullable then [ t; `Null ] else [ t ]);
          format }
      in
      Schema
        (match a with
         | A_string -> typed `String
         | A_integer -> typed `Integer
         | A_decimal | A_double -> typed `Number
         | A_boolean -> typed `Boolean
         | A_null -> typed `Null
         | A_date -> typed ~format:"date" `String
         | A_date_time -> typed ~format:"date-time" `String
         | A_time -> typed ~format:"time" `String
         | A_any_uri -> typed ~format:"uri" `String
         | A_item -> empty)
  | Array_s elem ->
      Schema
        { empty with types = Some [ `Array ]; items = Some (Items_one (to_json_schema elem)) }
  | Object_s fields ->
      Schema
        { empty with
          types = Some [ `Object ];
          properties = List.map (fun f -> (f.name, to_json_schema f.schema)) fields;
          required =
            List.filter_map (fun f -> if f.optional then None else Some f.name) fields;
          additional_properties = Some (Bool_schema false) }

let rec to_jtype (s : t) : Jtype.Types.t =
  match s with
  | Atomic (a, nullable) ->
      let base =
        match a with
        | A_string | A_date | A_date_time | A_time | A_any_uri -> Jtype.Types.str
        | A_integer -> Jtype.Types.int
        | A_decimal | A_double -> Jtype.Types.num
        | A_boolean -> Jtype.Types.bool
        | A_null -> Jtype.Types.null
        | A_item -> Jtype.Types.any
      in
      if nullable then Jtype.Types.union [ base; Jtype.Types.null ] else base
  | Array_s elem -> Jtype.Types.arr (to_jtype elem)
  | Object_s fields ->
      Jtype.Types.rec_
        (List.map
           (fun f -> Jtype.Types.field ~optional:f.optional f.name (to_jtype f.schema))
           fields)
