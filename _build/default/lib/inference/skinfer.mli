(** Skinfer-style JSON Schema inference (scrapinghub/skinfer).

    Skinfer works directly in JSON Schema: one function infers a schema
    from a single object, a second merges two schemas. Faithfully to the
    original (and to the tutorial's description), {b merging is limited to
    record types only and is not applied recursively to objects nested
    inside arrays}: when two [items] schemas disagree the constraint is
    simply dropped, and non-object conflicts widen to an unconstrained
    schema. Experiment E1 measures what this loses against the parametric
    approach. *)

val infer_one : Json.Value.t -> Jsonschema.Schema.t
(** Schema of a single value: objects get [properties] + all-[required] +
    closed; arrays get [items] from merging element schemas {e only} when
    all elements agree on being objects with identical shape, otherwise the
    first element's schema. *)

val merge_schemas : Jsonschema.Schema.t -> Jsonschema.Schema.t -> Jsonschema.Schema.t
(** Record-only merge: object schemas merge property-wise ([required]
    intersects), everything else that conflicts widens to [true]. *)

val infer : Json.Value.t list -> Jsonschema.Schema.t
val infer_json : Json.Value.t list -> Json.Value.t
