module SMap = Map.Make (String)

let max_samples = 5
let max_distinct_tracked = 64

type type_stats = {
  type_name : string;
  type_count : int;
  samples : Json.Value.t list;
  fields : field_stats list;
  item_types : type_stats list;
}

and field_stats = {
  name : string;
  count : int;
  probability : float;
  types : type_stats list;
  has_duplicates : bool;
}

type analysis = { total : int; fields : field_stats list }

(* --- accumulators ----------------------------------------------------- *)

type tacc = {
  t_count : int;
  t_samples : Json.Value.t list; (* reversed, bounded *)
  t_fields : facc SMap.t;        (* when Document *)
  t_items : tacc SMap.t;         (* when Array: per element type name *)
}

and facc = {
  f_count : int;
  f_types : tacc SMap.t;
  f_distinct : int SMap.t; (* serialized scalar -> occurrences (bounded) *)
  f_dup : bool;
}

type state = { total : int; top : facc SMap.t }

let empty = { total = 0; top = SMap.empty }

let type_name_of (v : Json.Value.t) =
  match v with
  | Json.Value.Null -> "Null"
  | Json.Value.Bool _ -> "Boolean"
  | Json.Value.Int _ | Json.Value.Float _ -> "Number"
  | Json.Value.String _ -> "String"
  | Json.Value.Array _ -> "Array"
  | Json.Value.Object _ -> "Document"

let empty_tacc = { t_count = 0; t_samples = []; t_fields = SMap.empty; t_items = SMap.empty }
let empty_facc = { f_count = 0; f_types = SMap.empty; f_distinct = SMap.empty; f_dup = false }

let rec observe_type (acc : tacc) (v : Json.Value.t) : tacc =
  let samples =
    if List.length acc.t_samples < max_samples then v :: acc.t_samples
    else acc.t_samples
  in
  let acc = { acc with t_count = acc.t_count + 1; t_samples = samples } in
  match v with
  | Json.Value.Object fields ->
      let t_fields =
        List.fold_left
          (fun m (k, x) -> SMap.update k (fun f -> Some (observe_field f x)) m)
          acc.t_fields
          (dedup_fields fields)
      in
      { acc with t_fields }
  | Json.Value.Array elems ->
      let t_items =
        List.fold_left
          (fun m x ->
            SMap.update (type_name_of x)
              (fun t -> Some (observe_type (Option.value ~default:empty_tacc t) x))
              m)
          acc.t_items elems
      in
      { acc with t_items }
  | _ -> acc

and observe_field (f : facc option) (v : Json.Value.t) : facc =
  let f = Option.value ~default:empty_facc f in
  let f_types =
    SMap.update (type_name_of v)
      (fun t -> Some (observe_type (Option.value ~default:empty_tacc t) v))
      f.f_types
  in
  let f_distinct, f_dup =
    if f.f_dup then (f.f_distinct, true)
    else if Json.Value.is_scalar v && SMap.cardinal f.f_distinct < max_distinct_tracked
    then begin
      let key = Json.Printer.to_string v in
      match SMap.find_opt key f.f_distinct with
      | Some n -> (SMap.add key (n + 1) f.f_distinct, true)
      | None -> (SMap.add key 1 f.f_distinct, false)
    end
    else (f.f_distinct, f.f_dup)
  in
  { f_count = f.f_count + 1; f_types; f_distinct; f_dup }

and dedup_fields fields =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun (k, _) ->
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    (List.rev fields)

let observe (st : state) (v : Json.Value.t) : state =
  let top =
    match v with
    | Json.Value.Object fields ->
        List.fold_left
          (fun m (k, x) -> SMap.update k (fun f -> Some (observe_field f x)) m)
          st.top (dedup_fields fields)
    | _ -> st.top
  in
  { total = st.total + 1; top }

(* --- finalization ----------------------------------------------------- *)

let rec finalize_tacc name (acc : tacc) : type_stats =
  {
    type_name = name;
    type_count = acc.t_count;
    samples = List.rev acc.t_samples;
    fields = finalize_fields ~parent:acc.t_count acc.t_fields;
    item_types =
      List.map (fun (n, t) -> finalize_tacc n t) (SMap.bindings acc.t_items)
      |> List.sort (fun a b -> Stdlib.compare b.type_count a.type_count);
  }

and finalize_fields ~parent (m : facc SMap.t) : field_stats list =
  List.map
    (fun (name, f) ->
      {
        name;
        count = f.f_count;
        probability =
          (if parent = 0 then 0.0 else float_of_int f.f_count /. float_of_int parent);
        types =
          List.map (fun (n, t) -> finalize_tacc n t) (SMap.bindings f.f_types)
          |> List.sort (fun a b -> Stdlib.compare b.type_count a.type_count);
        has_duplicates = f.f_dup;
      })
    (SMap.bindings m)

let finalize (st : state) : analysis =
  { total = st.total; fields = finalize_fields ~parent:st.total st.top }

let analyze vs = finalize (List.fold_left observe empty vs)
let analyze_seq seq = finalize (Seq.fold_left observe empty seq)

let rec type_stats_to_json (t : type_stats) : Json.Value.t =
  Json.Value.Object
    ([ ("name", Json.Value.String t.type_name);
       ("count", Json.Value.Int t.type_count) ]
    @ (if t.samples = [] then [] else [ ("values", Json.Value.Array t.samples) ])
    @ (if t.fields = [] then []
       else [ ("fields", Json.Value.Array (List.map field_stats_to_json t.fields)) ])
    @
    if t.item_types = [] then []
    else [ ("types", Json.Value.Array (List.map type_stats_to_json t.item_types)) ])

and field_stats_to_json (f : field_stats) : Json.Value.t =
  Json.Value.Object
    [ ("name", Json.Value.String f.name);
      ("count", Json.Value.Int f.count);
      ("probability", Json.Value.Float f.probability);
      ("hasDuplicates", Json.Value.Bool f.has_duplicates);
      ("types", Json.Value.Array (List.map type_stats_to_json f.types)) ]

let to_json (a : analysis) : Json.Value.t =
  Json.Value.Object
    [ ("count", Json.Value.Int a.total);
      ("fields", Json.Value.Array (List.map field_stats_to_json a.fields)) ]

let field (a : analysis) name = List.find_opt (fun f -> String.equal f.name name) a.fields

(* --- conversion to the type algebra ------------------------------------- *)

let rec type_stats_to_jtype (t : type_stats) : Jtype.Types.t =
  match t.type_name with
  | "Null" -> Jtype.Types.null
  | "Boolean" -> Jtype.Types.bool
  | "Number" ->
      (* sample-based refinement: all-integer samples stay Int *)
      if
        t.samples <> []
        && List.for_all (function Json.Value.Int _ -> true | _ -> false) t.samples
      then Jtype.Types.int
      else Jtype.Types.num
  | "String" -> Jtype.Types.str
  | "Array" ->
      Jtype.Types.arr
        (Jtype.Types.union (List.map type_stats_to_jtype t.item_types))
  | "Document" ->
      Jtype.Types.rec_
        (List.map
           (fun (f : field_stats) ->
             Jtype.Types.field
               ~optional:(f.count < t.type_count)
               f.name
               (Jtype.Types.union (List.map type_stats_to_jtype f.types)))
           t.fields)
  | _ -> Jtype.Types.any

let to_jtype ?(optional_below = 1.0) (a : analysis) : Jtype.Types.t =
  Jtype.Types.rec_
    (List.map
       (fun (f : field_stats) ->
         Jtype.Types.field
           ~optional:(f.probability < optional_below)
           f.name
           (Jtype.Types.union (List.map type_stats_to_jtype f.types)))
       a.fields)
