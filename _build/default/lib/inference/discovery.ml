type cluster = {
  size : int;
  paths : string list;
  schema : Jtype.Types.t;
  members : Json.Value.t list;
}

let scalar_type_name (v : Json.Value.t) =
  match v with
  | Json.Value.Null -> "null"
  | Json.Value.Bool _ -> "boolean"
  | Json.Value.Int _ | Json.Value.Float _ -> "number"
  | Json.Value.String _ -> "string"
  | Json.Value.Array _ -> "array"
  | Json.Value.Object _ -> "object"

let typed_paths v =
  let rec go prefix (v : Json.Value.t) acc =
    match v with
    | Json.Value.Object fields ->
        List.fold_left
          (fun acc (k, x) ->
            let p = if prefix = "" then k else prefix ^ "." ^ k in
            go p x acc)
          acc fields
    | Json.Value.Array vs ->
        let p = prefix ^ "[]" in
        if vs = [] then (p ^ ":empty") :: acc
        else List.fold_left (fun acc x -> go p x acc) acc vs
    | scalar ->
        ((if prefix = "" then "value" else prefix) ^ ":" ^ scalar_type_name scalar)
        :: acc
  in
  List.sort_uniq String.compare (go "" v [])

(* Jaccard over sorted lists, without materializing sets. *)
let jaccard a b =
  let rec go a b inter union =
    match (a, b) with
    | [], [] -> if union = 0 then 1.0 else float_of_int inter /. float_of_int union
    | [], rest | rest, [] -> go [] [] inter (union + List.length rest)
    | x :: a', y :: b' ->
        let c = String.compare x y in
        if c = 0 then go a' b' (inter + 1) (union + 1)
        else if c < 0 then go a' b (inter) (union + 1)
        else go a b' inter (union + 1)
  in
  go a b 0 0

(* internal growing cluster *)
type acc = {
  mutable a_size : int;
  mutable a_paths : string list;
  mutable a_members : Json.Value.t list;  (* reversed *)
}

let merge_paths a b = List.sort_uniq String.compare (List.rev_append a b)

let discover ?(threshold = 0.5) docs =
  let clusters : acc list ref = ref [] in
  List.iter
    (fun doc ->
      let paths = typed_paths doc in
      let best =
        List.fold_left
          (fun best c ->
            let s = jaccard paths c.a_paths in
            match best with
            | Some (_, s0) when s0 >= s -> best
            | _ -> if s >= threshold then Some (c, s) else best)
          None !clusters
      in
      match best with
      | Some (c, _) ->
          c.a_size <- c.a_size + 1;
          c.a_paths <- merge_paths paths c.a_paths;
          c.a_members <- doc :: c.a_members
      | None ->
          clusters :=
            !clusters @ [ { a_size = 1; a_paths = paths; a_members = [ doc ] } ])
    docs;
  !clusters
  |> List.map (fun c ->
         let members = List.rev c.a_members in
         {
           size = c.a_size;
           paths = c.a_paths;
           schema =
             Jtype.Merge.merge_all ~equiv:Jtype.Merge.Kind
               (List.map Jtype.Types.of_value members);
           members;
         })
  |> List.sort (fun a b -> Stdlib.compare b.size a.size)

let classify clusters doc =
  let paths = typed_paths doc in
  let scored =
    List.mapi (fun i c -> (i, jaccard paths c.paths)) clusters
  in
  match List.sort (fun (_, a) (_, b) -> Stdlib.compare b a) scored with
  | (i, s) :: _ when s > 0.0 -> Some i
  | _ -> None
