(** mongodb-schema-style streaming schema analysis.

    Processes documents one at a time (never materializing the collection),
    computing per-field statistics: occurrence counts, probabilities, a
    type histogram, and a bounded sample of values. Exactly like the
    JavaScript original, it records {e no field correlations} — each field
    is summarized independently — which is the limitation the tutorial
    notes. *)

type type_stats = {
  type_name : string;  (** "Null" | "Boolean" | "Number" | "String" | "Document" | "Array" *)
  type_count : int;
  samples : Json.Value.t list;  (** up to [max_samples], first-seen order *)
  fields : field_stats list;  (** for "Document": nested analysis *)
  item_types : type_stats list;  (** for "Array": element type histogram *)
}

and field_stats = {
  name : string;
  count : int;  (** documents in which the field occurs *)
  probability : float;  (** count / parent document count *)
  types : type_stats list;  (** descending by count *)
  has_duplicates : bool;  (** a scalar value repeated across documents *)
}

type analysis = {
  total : int;  (** documents analyzed *)
  fields : field_stats list;  (** of the top-level documents, sorted by name *)
}

type state
(** Streaming accumulator. *)

val empty : state
val max_samples : int
val observe : state -> Json.Value.t -> state
(** Non-object documents are counted but contribute no fields, matching
    mongodb-schema (MongoDB documents are always objects). *)

val finalize : state -> analysis
val analyze : Json.Value.t list -> analysis
val analyze_seq : Json.Value.t Seq.t -> analysis

val to_json : analysis -> Json.Value.t
(** Rendering close to mongodb-schema's output format. *)

val field : analysis -> string -> field_stats option
(** Look up a top-level field. *)

val to_jtype : ?optional_below:float -> analysis -> Jtype.Types.t
(** Express the analysis as a structural type: per-field union of observed
    types, fields with probability < [optional_below] (default 1.0) marked
    optional. Enables apples-to-apples precision/size comparison with the
    other inference approaches. *)
