type tree =
  | Leaf of { variant : string; support : int; hits : int }
  | Split of {
      feature : string;
      branches : (Json.Value.t * tree) list;
      default : tree;
    }

type t = {
  tree : tree;
  variants : (string * int) list;
  training_accuracy : float;
}

let variant_of doc = Skeleton.structure_to_string (Skeleton.structure_of doc)

(* scalar leaf fields of a document, as (dotted path, value) *)
let scalar_fields doc =
  let rec go prefix (v : Json.Value.t) acc =
    match v with
    | Json.Value.Object fields ->
        List.fold_left
          (fun acc (k, x) ->
            let p = if prefix = "" then k else prefix ^ "." ^ k in
            go p x acc)
          acc fields
    | Json.Value.Array _ -> acc
    | scalar -> if prefix = "" then acc else (prefix, scalar) :: acc
  in
  go "" doc []

let entropy labeled =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun (_, variant) ->
      Hashtbl.replace counts variant
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts variant)))
    labeled;
  let n = float_of_int (List.length labeled) in
  Hashtbl.fold
    (fun _ c acc ->
      let p = float_of_int c /. n in
      acc -. (p *. Float.log p))
    counts 0.0

let majority labeled =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun (_, variant) ->
      Hashtbl.replace counts variant
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts variant)))
    labeled;
  let best =
    Hashtbl.fold
      (fun v c best ->
        match best with Some (_, c0) when c0 >= c -> best | _ -> Some (v, c))
      counts None
  in
  match best with
  | Some (variant, hits) -> Leaf { variant; support = List.length labeled; hits }
  | None -> Leaf { variant = "{}"; support = 0; hits = 0 }

(* candidate features: scalar paths whose distinct-value count is small *)
let candidates ~max_values labeled =
  let by_feature = Hashtbl.create 16 in
  List.iter
    (fun (doc, _) ->
      List.iter
        (fun (path, v) ->
          let key = Json.Printer.to_string v in
          let vals =
            Option.value ~default:[] (Hashtbl.find_opt by_feature path)
          in
          if not (List.mem_assoc key vals) then
            Hashtbl.replace by_feature path ((key, v) :: vals))
        (scalar_fields doc))
    labeled;
  Hashtbl.fold
    (fun path vals acc ->
      if List.length vals >= 2 && List.length vals <= max_values then
        (path, List.map snd vals) :: acc
      else acc)
    by_feature []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let feature_value doc path =
  List.assoc_opt path (scalar_fields doc)

let rec grow ~max_depth ~max_values labeled =
  let pure =
    match labeled with
    | [] -> true
    | (_, v0) :: rest -> List.for_all (fun (_, v) -> String.equal v v0) rest
  in
  if max_depth = 0 || pure then majority labeled
  else
    let base_entropy = entropy labeled in
    let n = float_of_int (List.length labeled) in
    let score (path, values) =
      (* information gain of splitting on this feature *)
      let parts =
        List.map
          (fun value ->
            List.filter
              (fun (doc, _) ->
                match feature_value doc path with
                | Some v -> Json.Value.equal v value
                | None -> false)
              labeled)
          values
      in
      let rest =
        List.filter
          (fun (doc, _) ->
            match feature_value doc path with
            | Some v -> not (List.exists (Json.Value.equal v) values)
            | None -> true)
          labeled
      in
      let weighted =
        List.fold_left
          (fun acc part ->
            if part = [] then acc
            else acc +. (float_of_int (List.length part) /. n *. entropy part))
          0.0 (rest :: parts)
      in
      (base_entropy -. weighted, path, values, parts, rest)
    in
    let best =
      List.fold_left
        (fun best cand ->
          let (gain, _, _, _, _) as scored = score cand in
          match best with
          | Some (g0, _, _, _, _) when g0 >= gain -> best
          | _ -> Some scored)
        None
        (candidates ~max_values labeled)
    in
    match best with
    | Some (gain, path, values, parts, rest) when gain > 1e-9 ->
        Split
          {
            feature = path;
            branches =
              List.map2
                (fun value part ->
                  (value, grow ~max_depth:(max_depth - 1) ~max_values part))
                values parts
              |> List.filter (fun (_, t) ->
                     match t with Leaf { support = 0; _ } -> false | _ -> true);
            default = grow ~max_depth:(max_depth - 1) ~max_values rest;
          }
    | _ -> majority labeled

let rec predict_tree tree doc =
  match tree with
  | Leaf { variant; _ } -> variant
  | Split { feature; branches; default } -> (
      match feature_value doc feature with
      | Some v -> (
          match
            List.find_opt (fun (value, _) -> Json.Value.equal v value) branches
          with
          | Some (_, sub) -> predict_tree sub doc
          | None -> predict_tree default doc)
      | None -> predict_tree default doc)

let profile ?(max_depth = 4) ?(max_values = 8) docs =
  let labeled = List.map (fun d -> (d, variant_of d)) docs in
  let tree = grow ~max_depth ~max_values labeled in
  let counts = Hashtbl.create 8 in
  List.iter
    (fun (_, v) ->
      Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v)))
    labeled;
  let variants =
    Hashtbl.fold (fun v c acc -> (v, c) :: acc) counts []
    |> List.sort (fun (_, a) (_, b) -> Stdlib.compare b a)
  in
  let hits =
    List.length
      (List.filter (fun (d, v) -> String.equal (predict_tree tree d) v) labeled)
  in
  {
    tree;
    variants;
    training_accuracy =
      (if docs = [] then 1.0 else float_of_int hits /. float_of_int (List.length docs));
  }

let predict t doc = predict_tree t.tree doc

let accuracy t docs =
  match docs with
  | [] -> 1.0
  | _ ->
      let hits =
        List.length
          (List.filter (fun d -> String.equal (predict t d) (variant_of d)) docs)
      in
      float_of_int hits /. float_of_int (List.length docs)

let rules t =
  let out = ref [] in
  let rec go conditions tree =
    match tree with
    | Leaf { variant; support; hits } ->
        let cond =
          match conditions with
          | [] -> "always"
          | cs -> String.concat " and " (List.rev cs)
        in
        out := Printf.sprintf "%s => %s (%d/%d)" cond variant hits support :: !out
    | Split { feature; branches; default } ->
        List.iter
          (fun (value, sub) ->
            go
              (Printf.sprintf "%s = %s" feature (Json.Printer.to_string value)
              :: conditions)
              sub)
          branches;
        go (Printf.sprintf "%s = <other>" feature :: conditions) default
  in
  go [] t.tree;
  List.rev !out
