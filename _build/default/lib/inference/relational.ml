type fd = { determinant : string; dependent : string }

type table = {
  table_name : string;
  columns : string list;
  key : string option;
  rows : Json.Value.t list list;
}

type result = {
  tables : table list;
  fds : fd list;
  cells_before : int;
  cells_after : int;
}

(* --- flattening -------------------------------------------------------- *)

let join_path prefix k = if prefix = "" then k else prefix ^ "." ^ k

(* A document flattens to a set of rows (association lists). Arrays unnest:
   each element yields its own copies of the enclosing row. *)
let rec flatten_at prefix (v : Json.Value.t) : (string * Json.Value.t) list list =
  match v with
  | Json.Value.Null | Json.Value.Bool _ | Json.Value.Int _ | Json.Value.Float _
  | Json.Value.String _ ->
      [ [ ((if prefix = "" then "value" else prefix), v) ] ]
  | Json.Value.Array [] -> [ [] ]
  | Json.Value.Array elems -> List.concat_map (flatten_at prefix) elems
  | Json.Value.Object fields ->
      (* cross-join the row-sets of the fields *)
      List.fold_left
        (fun rows (k, x) ->
          let sub_rows = flatten_at (join_path prefix k) x in
          List.concat_map (fun row -> List.map (fun sub -> row @ sub) sub_rows) rows)
        [ [] ] fields

let flatten v = flatten_at "" v

(* --- FD mining --------------------------------------------------------- *)

let prefix_related a b =
  let pa = a ^ "." and pb = b ^ "." in
  String.length a >= String.length pb && String.sub a 0 (String.length pb) = pb
  || String.length b >= String.length pa && String.sub b 0 (String.length pa) = pa

let mine_fds ?(min_support = 2) rows =
  let attrs =
    List.sort_uniq String.compare (List.concat_map (List.map fst) rows)
  in
  let holds a b =
    (* a -> b on all rows where both occur *)
    let mapping = Hashtbl.create 16 in
    let support = ref 0 in
    let ok =
      List.for_all
        (fun row ->
          match (List.assoc_opt a row, List.assoc_opt b row) with
          | Some va, Some vb -> (
              incr support;
              let key = Json.Printer.to_string va in
              match Hashtbl.find_opt mapping key with
              | Some vb' -> Json.Value.equal vb vb'
              | None ->
                  Hashtbl.add mapping key vb;
                  true)
          | _ -> true)
        rows
    in
    ok && !support >= min_support && Hashtbl.length mapping >= 2
  in
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b ->
          if String.equal a b || prefix_related a b then None
          else if holds a b then Some { determinant = a; dependent = b }
          else None)
        attrs)
    attrs

(* --- normalization ----------------------------------------------------- *)

let normalize ?(min_support = 2) ~name values =
  let rows = List.concat_map flatten values in
  let attrs =
    List.sort_uniq String.compare (List.concat_map (List.map fst) rows)
  in
  let cells_before =
    List.fold_left (fun acc row -> acc + List.length row) 0 rows
  in
  let fds = mine_fds ~min_support rows in
  (* group dependents by determinant *)
  let by_det = Hashtbl.create 16 in
  List.iter
    (fun { determinant; dependent } ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt by_det determinant) in
      Hashtbl.replace by_det determinant (dependent :: existing))
    fds;
  let candidates =
    Hashtbl.fold (fun det deps acc -> (det, List.sort_uniq String.compare deps) :: acc) by_det []
    |> List.sort (fun (a, da) (b, db) ->
           match Stdlib.compare (List.length db) (List.length da) with
           | 0 -> String.compare a b
           | c -> c)
  in
  (* greedy factoring: a dependent claimed by one dimension table cannot be
     claimed again, a claimed attribute cannot become a determinant, and —
     crucially — a dimension is only created when deduplication actually
     compresses (a unique key like order_id functionally determines every
     attribute but factoring it out would just clone the table) *)
  let distinct_count det =
    let seen = Hashtbl.create 64 in
    List.iter
      (fun row ->
        match List.assoc_opt det row with
        | Some v -> Hashtbl.replace seen (Json.Printer.to_string v) ()
        | None -> ())
      rows;
    Hashtbl.length seen
  in
  let support_count det =
    List.length (List.filter (fun row -> List.mem_assoc det row) rows)
  in
  let claimed = Hashtbl.create 16 in
  let dimensions =
    List.filter_map
      (fun (det, deps) ->
        if Hashtbl.mem claimed det then None
        else
          let free = List.filter (fun d -> not (Hashtbl.mem claimed d)) deps in
          (* avoid factoring 1:1 pairs twice: only keep deps that do not
             determine det with a lexicographically smaller name *)
          let free =
            List.filter
              (fun d ->
                not
                  (List.exists
                     (fun fd ->
                       String.equal fd.determinant d && String.equal fd.dependent det)
                     fds)
                || String.compare det d < 0)
              free
          in
          if free = [] then None
          else
            let support = support_count det in
            let distinct = distinct_count det in
            (* cells saved by moving |free| columns out of [support] rows
               into a dimension of [distinct] rows with |free|+1 columns *)
            let saved =
              (support * List.length free) - (distinct * (List.length free + 1))
            in
            if saved <= 0 then None
            else begin
              List.iter (fun d -> Hashtbl.replace claimed d ()) free;
              Some (det, free)
            end)
      candidates
  in
  let dedup_rows rows =
    let seen = Hashtbl.create 64 in
    List.filter
      (fun row ->
        let key = String.concat "\x00" (List.map Json.Printer.to_string row) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      rows
  in
  let cell v = Option.value ~default:Json.Value.Null v in
  let project columns =
    List.map (fun row -> List.map (fun c -> cell (List.assoc_opt c row)) columns) rows
  in
  let dim_tables =
    List.map
      (fun (det, deps) ->
        let columns = det :: deps in
        let projected =
          (* only rows where the determinant is present belong in the
             dimension *)
          List.filter_map
            (fun row ->
              match List.assoc_opt det row with
              | Some _ -> Some (List.map (fun c -> cell (List.assoc_opt c row)) columns)
              | None -> None)
            rows
        in
        { table_name = Printf.sprintf "%s_%s" name (String.map (function '.' -> '_' | c -> c) det);
          columns;
          key = Some det;
          rows = dedup_rows projected })
      dimensions
  in
  let factored_out =
    List.concat_map (fun (_, deps) -> deps) dimensions
  in
  let fact_columns =
    List.filter (fun a -> not (List.mem a factored_out)) attrs
  in
  let fact =
    { table_name = name;
      columns = fact_columns;
      key = None;
      rows = dedup_rows (project fact_columns) }
  in
  let tables = fact :: dim_tables in
  let cells_after =
    List.fold_left
      (fun acc t -> acc + (List.length t.rows * List.length t.columns))
      0 tables
  in
  { tables; fds; cells_before; cells_after }
