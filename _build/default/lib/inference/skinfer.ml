open Jsonschema

let typed t = Schema.Schema { Schema.empty with Schema.types = Some [ t ] }

let rec infer_one (v : Json.Value.t) : Schema.t =
  match v with
  | Json.Value.Null -> typed `Null
  | Json.Value.Bool _ -> typed `Boolean
  | Json.Value.Int _ -> typed `Integer
  | Json.Value.Float _ -> typed `Number
  | Json.Value.String _ -> typed `String
  | Json.Value.Array [] -> typed `Array
  | Json.Value.Array (first :: _ as elems) ->
      (* Skinfer's documented limitation: element schemas are not merged
         recursively; the first element wins unless all elements have the
         same scalar type. *)
      let first_schema = infer_one first in
      let all_same =
        List.for_all
          (fun x -> Json.Value.kind x = Json.Value.kind first)
          elems
      in
      let items = if all_same then Some (Schema.Items_one first_schema) else None in
      Schema.Schema { Schema.empty with Schema.types = Some [ `Array ]; Schema.items = items }
  | Json.Value.Object fields ->
      let seen = Hashtbl.create 8 in
      let uniq =
        List.filter
          (fun (k, _) ->
            if Hashtbl.mem seen k then false
            else begin
              Hashtbl.add seen k ();
              true
            end)
          (List.rev fields)
      in
      let uniq = List.sort (fun (a, _) (b, _) -> String.compare a b) uniq in
      Schema.Schema
        { Schema.empty with
          Schema.types = Some [ `Object ];
          Schema.properties = List.map (fun (k, x) -> (k, infer_one x)) uniq;
          Schema.required = List.map fst uniq;
          Schema.additional_properties = Some (Schema.Bool_schema false) }

let types_of = function
  | Schema.Bool_schema _ -> None
  | Schema.Schema n -> n.Schema.types

let is_object_schema s =
  match types_of s with Some [ `Object ] -> true | _ -> false

let rec merge_schemas (a : Schema.t) (b : Schema.t) : Schema.t =
  match (a, b) with
  | Schema.Bool_schema true, _ | _, Schema.Bool_schema true -> Schema.Bool_schema true
  | Schema.Bool_schema false, s | s, Schema.Bool_schema false -> s
  | Schema.Schema na, Schema.Schema nb -> (
      match (na.Schema.types, nb.Schema.types) with
      | Some [ `Object ], Some [ `Object ] ->
          (* the one real merge Skinfer implements *)
          let keys =
            List.sort_uniq String.compare
              (List.map fst na.Schema.properties @ List.map fst nb.Schema.properties)
          in
          let properties =
            List.map
              (fun k ->
                match
                  ( List.assoc_opt k na.Schema.properties,
                    List.assoc_opt k nb.Schema.properties )
                with
                | Some x, Some y -> (k, merge_schemas x y)
                | Some x, None | None, Some x -> (k, x)
                | None, None -> (k, Schema.Bool_schema true))
              keys
          in
          let required =
            List.filter
              (fun k -> List.mem k na.Schema.required && List.mem k nb.Schema.required)
              keys
          in
          Schema.Schema
            { Schema.empty with
              Schema.types = Some [ `Object ];
              Schema.properties;
              Schema.required;
              Schema.additional_properties = Some (Schema.Bool_schema false) }
      | Some [ `Integer ], Some [ `Number ] | Some [ `Number ], Some [ `Integer ] ->
          typed `Number
      | Some ta, Some tb when ta = tb -> (
          (* same type: keep it; arrays do NOT merge items recursively —
             if both have items keep the first, else drop *)
          match ta with
          | [ `Array ] ->
              let items =
                match (na.Schema.items, nb.Schema.items) with
                | Some x, Some y when items_equal x y -> Some x
                | _ -> None
              in
              Schema.Schema
                { Schema.empty with Schema.types = Some ta; Schema.items = items }
          | _ -> Schema.Schema { Schema.empty with Schema.types = Some ta })
      | _ ->
          (* non-record conflict: widen to anything *)
          Schema.Bool_schema true)

and items_equal x y =
  match (x, y) with
  | Schema.Items_one a, Schema.Items_one b ->
      Json.Value.equal (Print.to_json a) (Print.to_json b)
  | Schema.Items_many xs, Schema.Items_many ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun a b -> Json.Value.equal (Print.to_json a) (Print.to_json b))
           xs ys
  | _ -> false

let infer = function
  | [] -> Schema.Bool_schema true
  | v :: vs ->
      List.fold_left (fun acc x -> merge_schemas acc (infer_one x)) (infer_one v) vs

let infer_json vs = Print.to_json (infer vs)

let _ = is_object_schema
