(** Skeleton schemas for JSON document stores (Wang et al., VLDB'15).

    A skeleton is a small collection of trees describing the structures
    that appear {e frequently} in a collection. Documents are first
    abstracted to their structural tree (field names only, values erased);
    structurally identical documents are grouped and counted (the eSiBu-tree
    of the paper is an indexing device for this grouping — here an in-memory
    hash group-by plays that role); the skeleton keeps the most frequent
    structures up to a support threshold.

    The tutorial's key observation — "the skeleton may totally miss
    information about paths that can be traversed in some of the JSON
    objects" — is measurable: {!path_coverage} reports the fraction of
    distinct paths of the collection that the skeleton retains (E8). *)

type structure =
  | S_leaf  (** any scalar *)
  | S_arr of structure option  (** element structure; [None] for empty *)
  | S_obj of (string * structure) list  (** sorted by field name *)

val structure_of : Json.Value.t -> structure
(** Structural abstraction of one document. *)

val structure_to_string : structure -> string

type t = {
  groups : (structure * int) list;  (** retained structures, most frequent first *)
  dropped : int;  (** documents whose structure was not retained *)
  total : int;
}

val build : ?min_support:float -> ?max_groups:int -> Json.Value.t list -> t
(** Group by structure; retain groups with frequency ≥ [min_support]
    (default 0.05) and at most [max_groups] (default 10) groups. *)

val covers : t -> Json.Value.t -> bool
(** Is the document's structure one of the retained ones? *)

val size : t -> int
(** Total number of structure nodes retained. *)

val paths : structure -> string list list
val all_paths : t -> string list list
(** Distinct field paths over the retained structures. *)

val path_coverage : t -> Json.Value.t list -> float
(** Fraction of distinct paths occurring in the collection that appear in
    the skeleton. *)
