type structure =
  | S_leaf
  | S_arr of structure option
  | S_obj of (string * structure) list

let rec structure_of (v : Json.Value.t) : structure =
  match v with
  | Json.Value.Null | Json.Value.Bool _ | Json.Value.Int _ | Json.Value.Float _
  | Json.Value.String _ ->
      S_leaf
  | Json.Value.Array [] -> S_arr None
  | Json.Value.Array (x :: _) ->
      (* array elements are summarized by their first element's structure,
         as in the paper's tree encoding *)
      S_arr (Some (structure_of x))
  | Json.Value.Object fields ->
      let seen = Hashtbl.create 8 in
      let uniq =
        List.filter
          (fun (k, _) ->
            if Hashtbl.mem seen k then false
            else begin
              Hashtbl.add seen k ();
              true
            end)
          (List.rev fields)
      in
      S_obj
        (List.sort
           (fun (a, _) (b, _) -> String.compare a b)
           (List.map (fun (k, x) -> (k, structure_of x)) uniq))

let rec structure_to_string = function
  | S_leaf -> "*"
  | S_arr None -> "[]"
  | S_arr (Some s) -> "[" ^ structure_to_string s ^ "]"
  | S_obj fields ->
      "{"
      ^ String.concat ", "
          (List.map (fun (k, s) -> k ^ ": " ^ structure_to_string s) fields)
      ^ "}"

type t = {
  groups : (structure * int) list;
  dropped : int;
  total : int;
}

let build ?(min_support = 0.05) ?(max_groups = 10) values =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun v ->
      let s = structure_of v in
      let key = structure_to_string s in
      match Hashtbl.find_opt tbl key with
      | Some (s, n) -> Hashtbl.replace tbl key (s, n + 1)
      | None -> Hashtbl.add tbl key (s, 1))
    values;
  let total = List.length values in
  let groups =
    Hashtbl.fold (fun _ pair acc -> pair :: acc) tbl []
    |> List.sort (fun (_, a) (_, b) -> Stdlib.compare b a)
  in
  let threshold = min_support *. float_of_int total in
  let retained, rest =
    List.partition (fun (_, n) -> float_of_int n >= threshold) groups
  in
  let retained =
    if List.length retained > max_groups then
      (* keep only the most frequent max_groups *)
      List.filteri (fun i _ -> i < max_groups) retained
    else retained
  in
  let kept = List.fold_left (fun acc (_, n) -> acc + n) 0 retained in
  ignore rest;
  { groups = retained; dropped = total - kept; total }

let covers t v =
  let s = structure_of v in
  List.exists (fun (g, _) -> g = s) t.groups

let rec structure_size = function
  | S_leaf -> 1
  | S_arr None -> 1
  | S_arr (Some s) -> 1 + structure_size s
  | S_obj fields -> 1 + List.fold_left (fun n (_, s) -> n + structure_size s) 0 fields

let size t = List.fold_left (fun n (s, _) -> n + structure_size s) 0 t.groups

let paths s =
  let rec go prefix s acc =
    match s with
    | S_leaf -> List.rev prefix :: acc
    | S_arr None -> List.rev prefix :: acc
    | S_arr (Some inner) -> go ("[]" :: prefix) inner acc
    | S_obj [] -> List.rev prefix :: acc
    | S_obj fields ->
        List.fold_left (fun acc (k, inner) -> go (k :: prefix) inner acc) acc fields
  in
  List.rev (go [] s [])

let all_paths t =
  List.sort_uniq Stdlib.compare (List.concat_map (fun (s, _) -> paths s) t.groups)

let path_coverage t values =
  let collection_paths =
    List.sort_uniq Stdlib.compare
      (List.concat_map (fun v -> paths (structure_of v)) values)
  in
  match collection_paths with
  | [] -> 1.0
  | _ ->
      let skeleton_paths = all_paths t in
      let covered =
        List.length (List.filter (fun p -> List.mem p skeleton_paths) collection_paths)
      in
      float_of_int covered /. float_of_int (List.length collection_paths)
