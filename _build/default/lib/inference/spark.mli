(** Spark-Dataframe-style schema extraction.

    Reproduces the behaviour of [spark.read.json]'s schema inference, whose
    type language has {e no union types}: [StructType]/[ArrayType]/atomic
    types plus per-field nullability. When two samples disagree on a type
    the inferencer widens — numerics to [Double], and any other conflict to
    [String] (Spark's "resort to Str" that the tutorial criticizes, also
    quoting it for strongly heterogeneous collections). Experiment E1
    measures the resulting precision loss against the union-aware
    parametric inference. *)

type t =
  | Null_type  (** no evidence yet; collapses into nullability *)
  | Boolean
  | Long
  | Double
  | String
  | Array of field
  | Struct of (string * field) list  (** sorted by name *)

and field = { typ : t; nullable : bool }

val infer_value : Json.Value.t -> field
val merge : field -> field -> field
val infer : Json.Value.t list -> field
(** [Null_type] when the collection is empty. *)

val to_ddl : t -> string
(** Spark DDL syntax: [STRUCT<a: BIGINT, b: ARRAY<STRING>>]. *)

val field_to_ddl : field -> string
val to_jtype : field -> Jtype.Types.t
(** Express the Spark schema in the common type algebra so that precision
    and size can be compared with other approaches. A [String] produced by
    widening accepts only strings — exactly the semantics Spark gives the
    column after conversion (non-strings are rendered as their JSON text).
    We therefore model widened [String] as [Str]; values that were not
    strings no longer typecheck, which is the measured precision loss. *)

val accepts : field -> Json.Value.t -> bool
(** Does the value load into a column of this schema without coercion?
    Coercions Spark performs silently (number → double) are allowed;
    the string fallback is not (that is the information loss). *)
