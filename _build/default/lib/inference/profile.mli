(** Schema profiling (Gallinucci, Golfarelli, Rizzi — Inf. Syst. 2018):
    {e explain} a collection's structural variants with a decision tree
    over field values.

    This is the tutorial's closing "Schema Inference and ML" opportunity:
    instead of only describing {e what} variants exist (as skeletons or
    types do), profiling learns {e why} a document takes a variant — e.g.
    "when [type] = "retweet", the document carries [retweeted_status]".

    Documents are labeled with their structural variant
    ({!Skeleton.structure_of}); candidate features are low-cardinality
    scalar fields; the tree is grown greedily by information gain. *)

type tree =
  | Leaf of { variant : string; support : int; hits : int }
      (** predicted variant; [hits]/[support] training documents match *)
  | Split of {
      feature : string;  (** dotted path of the tested field *)
      branches : (Json.Value.t * tree) list;  (** one per observed value *)
      default : tree;  (** value unseen at training time / field missing *)
    }

type t = {
  tree : tree;
  variants : (string * int) list;  (** variant -> frequency, descending *)
  training_accuracy : float;
}

val profile : ?max_depth:int -> ?max_values:int -> Json.Value.t list -> t
(** Learn a profile ([max_depth] 4, [max_values] 8 distinct values per
    candidate feature). *)

val predict : t -> Json.Value.t -> string
(** Predicted structural variant (as {!Skeleton.structure_to_string}). *)

val accuracy : t -> Json.Value.t list -> float
(** Fraction of documents whose actual variant matches the prediction. *)

val rules : t -> string list
(** Human-readable root-to-leaf rules, e.g.
    ["kind = \"b\" => {b_payload: *, kind: *} (50/50)"]. *)
