(** Couchbase-style schema discovery: classify the objects of a collection
    into clusters of similar structure, then describe each cluster.

    The tutorial (§4.1) describes Couchbase's module as classifying objects
    "based on both structural and semantic information" to "facilitate
    query formulation". Here: documents are abstracted to their typed-path
    sets (structure + leaf types — the semantic part), clustered by Jaccard
    similarity with a single-pass leader algorithm, and each cluster gets a
    parametric schema. Documents of mixed collections (e.g. several entity
    types stored in one bucket) come apart cleanly; see E12. *)

type cluster = {
  size : int;                    (** documents in the cluster *)
  paths : string list;           (** union of typed paths, sorted *)
  schema : Jtype.Types.t;        (** parametric (kind) schema of members *)
  members : Json.Value.t list;   (** in arrival order *)
}

val typed_paths : Json.Value.t -> string list
(** Sorted typed paths, e.g. ["user.name:string"; "tags[]:number"]. *)

val jaccard : string list -> string list -> float
(** Jaccard similarity of two sorted path lists (1.0 for two empties). *)

val discover : ?threshold:float -> Json.Value.t list -> cluster list
(** Leader clustering: a document joins the first cluster whose
    accumulated path set is ≥ [threshold] (default 0.5) similar, else
    founds a new one. Clusters are returned largest first. *)

val classify : cluster list -> Json.Value.t -> int option
(** Index of the best-matching cluster (by similarity), if any clears the
    threshold implied by the clusters' coherence; [None] for an outlier. *)
