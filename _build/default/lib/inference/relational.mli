(** Automatic generation of normalized relational schemas from nested
    key-value data (DiScala & Abadi, SIGMOD'16).

    The pipeline, as the tutorial summarizes it, "ignores the original
    structure of the JSON input and instead depends on patterns in the
    attribute data values (functional dependencies) to guide its schema
    generation":

    1. {b flatten} every document into leaf attributes (array elements are
       unnested into child rows up front);
    2. {b mine functional dependencies} A → B that hold on every row where
       both attributes are present;
    3. {b factor} attribute groups determined by a common attribute into
       separate relations (a lightweight 3NF synthesis), deduplicating
       their rows.

    Experiment E9 reports the discovered tables and the redundancy
    (total cell count) reduction on a denormalized orders corpus. *)

type fd = { determinant : string; dependent : string }
(** [determinant → dependent], attribute names are dotted paths. *)

type table = {
  table_name : string;
  columns : string list;
  key : string option;  (** the determinant column, if factored out *)
  rows : Json.Value.t list list;  (** deduplicated; scalar cells *)
}

type result = {
  tables : table list;
  fds : fd list;
  cells_before : int;  (** flattened cells before normalization *)
  cells_after : int;
}

val flatten : Json.Value.t -> (string * Json.Value.t) list list
(** One document → one or more flat rows (arrays unnest multiplicatively).
    Attribute names are dotted paths; scalars only. *)

val mine_fds : ?min_support:int -> (string * Json.Value.t) list list -> fd list
(** FDs with at least [min_support] (default 2) witnessing rows and at
    least two distinct determinant values (constants are uninformative).
    Trivial A → A and attributes of the same path prefix are excluded. *)

val normalize : ?min_support:int -> name:string -> Json.Value.t list -> result
