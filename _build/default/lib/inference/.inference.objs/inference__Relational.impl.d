lib/inference/relational.ml: Hashtbl Json List Option Printf Stdlib String
