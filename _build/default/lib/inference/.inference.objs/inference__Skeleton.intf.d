lib/inference/skeleton.mli: Json
