lib/inference/discovery.mli: Json Jtype
