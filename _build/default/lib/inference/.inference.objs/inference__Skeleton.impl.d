lib/inference/skeleton.ml: Hashtbl Json List Stdlib String
