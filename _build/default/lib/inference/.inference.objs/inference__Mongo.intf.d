lib/inference/mongo.mli: Json Jtype Seq
