lib/inference/skinfer.ml: Hashtbl Json Jsonschema List Print Schema String
