lib/inference/discovery.ml: Json Jtype List Stdlib String
