lib/inference/skinfer.mli: Json Jsonschema
