lib/inference/spark.mli: Json Jtype
