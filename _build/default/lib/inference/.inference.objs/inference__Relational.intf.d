lib/inference/relational.mli: Json
