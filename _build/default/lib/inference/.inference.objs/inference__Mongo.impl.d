lib/inference/mongo.ml: Hashtbl Json Jtype List Map Option Seq Stdlib String
