lib/inference/profile.mli: Json
