lib/inference/parametric.ml: Json Jtype List
