lib/inference/parametric.mli: Json Jtype
