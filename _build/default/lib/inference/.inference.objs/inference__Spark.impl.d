lib/inference/spark.ml: Hashtbl Json Jtype List Printf String
