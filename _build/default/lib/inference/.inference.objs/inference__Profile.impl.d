lib/inference/profile.ml: Float Hashtbl Json List Option Printf Skeleton Stdlib String
