type slot =
  | Parsed of Json.Value.t
  | Raw of int * int  (* byte span [lo, hi) in the source *)

type t = {
  profile : (string, unit) Hashtbl.t;
  mutable n_decoded : int;
  mutable n_eager : int;
  mutable n_skipped : int;
  mutable n_deopts : int;
}

type doc = {
  decoder : t;
  src : string;
  slots : (string * slot ref) list;
}

type stats = {
  decoded : int;
  eager_fields : int;
  skipped_fields : int;
  deopts : int;
}

let create ?(eager = []) () =
  let profile = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace profile f ()) eager;
  { profile; n_decoded = 0; n_eager = 0; n_skipped = 0; n_deopts = 0 }

let stats t =
  { decoded = t.n_decoded;
    eager_fields = t.n_eager;
    skipped_fields = t.n_skipped;
    deopts = t.n_deopts }

(* Scan the top-level object: for each key decide eager-parse vs raw-skip. *)
let decode t src =
  let n = String.length src in
  let i = Rawscan.skip_ws src 0 in
  if i >= n || src.[i] <> '{' then Error "Fadjs.decode: expected a top-level object"
  else begin
    t.n_decoded <- t.n_decoded + 1;
    let slots = ref [] in
    let exception Fail of string in
    let fail msg = raise (Fail msg) in
    let rec fields i =
      let i = Rawscan.skip_ws src i in
      if i >= n then fail "unterminated object"
      else if src.[i] = '}' then i + 1
      else begin
        (* key *)
        let key_start = i in
        if src.[i] <> '"' then fail "expected a field name";
        let key_end =
          match Rawscan.skip_string src i with Ok e -> e | Error m -> fail m
        in
        let raw_key = String.sub src (key_start + 1) (key_end - key_start - 2) in
        let i = Rawscan.skip_ws src key_end in
        if i >= n || src.[i] <> ':' then fail "expected ':'";
        let value_start = Rawscan.skip_ws src (i + 1) in
        let value_end =
          match Rawscan.skip_value src value_start with Ok e -> e | Error m -> fail m
        in
        let slot =
          if Hashtbl.mem t.profile raw_key then begin
            t.n_eager <- t.n_eager + 1;
            match Json.Parser.parse_substring src ~pos:value_start with
            | Ok (v, _) -> Parsed v
            | Error e -> fail (Json.Parser.string_of_error e)
          end
          else begin
            t.n_skipped <- t.n_skipped + 1;
            Raw (value_start, value_end)
          end
        in
        slots := (raw_key, ref slot) :: !slots;
        let i = Rawscan.skip_ws src value_end in
        if i < n && src.[i] = ',' then fields (i + 1)
        else if i < n && src.[i] = '}' then i + 1
        else fail "expected ',' or '}'"
      end
    in
    match fields (i + 1) with
    | _end_pos -> Ok { decoder = t; src; slots = List.rev !slots }
    | exception Fail msg -> Error msg
  end

let force doc (slot : slot ref) =
  match !slot with
  | Parsed v -> Some v
  | Raw (lo, _hi) -> (
      doc.decoder.n_deopts <- doc.decoder.n_deopts + 1;
      match Json.Parser.parse_substring doc.src ~pos:lo with
      | Ok (v, _) ->
          slot := Parsed v;
          Some v
      | Error _ -> None)

let get doc field =
  match List.assoc_opt field doc.slots with
  | None -> None
  | Some slot ->
      (* learn: next documents will materialize this field eagerly *)
      Hashtbl.replace doc.decoder.profile field ();
      force doc slot

let get_path doc = function
  | [] -> None
  | [ last ] -> get doc last
  | first :: rest -> (
      match get doc first with
      | Some (Json.Value.Object _ as v) -> (
          (* re-wrap nested objects through the same decoder so nested
             access patterns are profiled as "parent.child" keys *)
          let rec walk v = function
            | [] -> Some v
            | k :: more -> (
                match Json.Value.member k v with
                | Some x -> walk x more
                | None -> None)
          in
          walk v rest)
      | _ -> None)

let materialize doc =
  Json.Value.Object
    (List.filter_map
       (fun (k, slot) -> Option.map (fun v -> (k, v)) (force doc slot))
       doc.slots)
