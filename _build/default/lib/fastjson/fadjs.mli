(** Fad.js-style speculative JSON decoding (Bonetta & Brantner, VLDB'17).

    Fad.js bets that "most applications never use all the fields of input
    objects": the decoder materializes only the fields the application has
    been observed to access, leaving the rest as raw byte spans. Touching an
    unmaterialized field {e deoptimizes}: the span is parsed on demand and
    the access profile is updated so future documents materialize it
    eagerly. In the original this is driven by the Graal JIT; here the
    profile is an explicit runtime structure with the same behaviour
    (see DESIGN.md for the substitution argument).

    The decoder also speculates on {e constant object layout}: it caches the
    byte offset at which each profiled field's key appeared in the previous
    document and probes it before scanning. *)

type t
(** A decoder with its learned access profile. *)

val create : ?eager:string list -> unit -> t
(** [eager] pre-seeds the profile (an application that declares its
    accesses up front, as in the paper's API use). *)

type doc
(** A lazily-decoded document. *)

val decode : t -> string -> (doc, string) result
(** Decode the top-level object: profiled fields are parsed eagerly, all
    other values are stored as raw spans without parsing. *)

val get : doc -> string -> Json.Value.t option
(** Field access. A raw span triggers deoptimization: on-demand parse +
    profile update (counted in {!stats}). *)

val get_path : doc -> string list -> Json.Value.t option
(** Chained access: intermediate objects are decoded with the same
    decoder, so nested access patterns are learned too. *)

val materialize : doc -> Json.Value.t
(** Force everything (equivalent to a full parse). *)

type stats = {
  decoded : int;        (** documents decoded *)
  eager_fields : int;   (** fields parsed during decode *)
  skipped_fields : int; (** fields left as raw spans *)
  deopts : int;         (** lazy accesses that forced a parse *)
}

val stats : t -> stats
