(** Raw byte-level scanning over JSON text, without tokenizing.

    These are the "skip without parsing" primitives that give Mison and
    Fad.js their speed: a value that the query does not need is stepped
    over by bracket/quote counting only — no unescaping, no number
    conversion, no tree allocation. *)

val skip_ws : string -> int -> int
(** First offset ≥ the argument that is not JSON whitespace. *)

val skip_string : string -> int -> (int, string) result
(** [skip_string s i] with [s.[i] = '"']: offset one past the closing
    quote, honoring backslash escapes. *)

val skip_value : string -> int -> (int, string) result
(** Offset one past the JSON value starting at the given offset (which must
    not be whitespace). Containers are skipped by depth counting with
    in-string awareness; scalars by delimiter scanning. The value is not
    validated beyond bracket balance. *)

val raw_key_at : string -> colon:int -> (string * int, string) result
(** Scan {e backward} from a colon position to extract the raw (still
    escaped) field name, returning the name and the offset of its opening
    quote. This is how Mison recovers field names from its colon bitmap. *)
