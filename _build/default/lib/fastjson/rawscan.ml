let skip_ws s i =
  let n = String.length s in
  let rec go i =
    if i < n then
      match s.[i] with ' ' | '\t' | '\n' | '\r' -> go (i + 1) | _ -> i
    else i
  in
  go i

let skip_string s i =
  let n = String.length s in
  if i >= n || s.[i] <> '"' then Error "expected a string"
  else
    let rec go i =
      if i >= n then Error "unterminated string"
      else
        match s.[i] with
        | '"' -> Ok (i + 1)
        | '\\' -> if i + 1 < n then go (i + 2) else Error "truncated escape"
        | _ -> go (i + 1)
    in
    go (i + 1)

let skip_literal s i =
  (* numbers, true/false/null: scan to a delimiter *)
  let n = String.length s in
  let rec go i =
    if i >= n then i
    else
      match s.[i] with
      | ',' | '}' | ']' | ' ' | '\t' | '\n' | '\r' -> i
      | _ -> go (i + 1)
  in
  Ok (go i)

let skip_container s i =
  let n = String.length s in
  let rec go i depth in_string =
    if i >= n then Error "unbalanced brackets"
    else if in_string then
      match s.[i] with
      | '\\' -> if i + 1 < n then go (i + 2) depth true else Error "truncated escape"
      | '"' -> go (i + 1) depth false
      | _ -> go (i + 1) depth true
    else
      match s.[i] with
      | '"' -> go (i + 1) depth true
      | '{' | '[' -> go (i + 1) (depth + 1) false
      | '}' | ']' -> if depth = 1 then Ok (i + 1) else go (i + 1) (depth - 1) false
      | _ -> go (i + 1) depth false
  in
  go i 0 false

let skip_value s i =
  let n = String.length s in
  if i >= n then Error "unexpected end of input"
  else
    match s.[i] with
    | '"' -> skip_string s i
    | '{' | '[' -> skip_container s i
    | _ -> skip_literal s i

let raw_key_at s ~colon =
  (* walk back over whitespace, expect closing quote, then scan to the
     opening quote (a quote preceded by an even number of backslashes) *)
  let rec back_ws i =
    if i >= 0 && (s.[i] = ' ' || s.[i] = '\t' || s.[i] = '\n' || s.[i] = '\r') then
      back_ws (i - 1)
    else i
  in
  let close = back_ws (colon - 1) in
  if close < 0 || s.[close] <> '"' then Error "no field name before colon"
  else
    let rec find_open i =
      if i < 0 then Error "unterminated field name"
      else if s.[i] = '"' then begin
        (* count preceding backslashes *)
        let rec bs j acc = if j >= 0 && s.[j] = '\\' then bs (j - 1) (acc + 1) else acc in
        if bs (i - 1) 0 mod 2 = 0 then Ok i else find_open (i - 1)
      end
      else find_open (i - 1)
    in
    match find_open (close - 1) with
    | Ok open_q -> Ok (String.sub s (open_q + 1) (close - open_q - 1), open_q)
    | Error _ as e -> e
