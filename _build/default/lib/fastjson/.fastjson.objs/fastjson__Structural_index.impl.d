lib/fastjson/structural_index.ml: Array Int64 List String
