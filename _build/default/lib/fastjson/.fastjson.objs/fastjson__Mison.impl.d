lib/fastjson/mison.ml: Array Hashtbl Json List Rawscan String Structural_index
