lib/fastjson/structural_index.mli:
