lib/fastjson/mison.mli: Json Structural_index
