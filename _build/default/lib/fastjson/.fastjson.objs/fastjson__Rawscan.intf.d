lib/fastjson/rawscan.mli:
