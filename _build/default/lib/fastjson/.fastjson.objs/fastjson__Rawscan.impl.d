lib/fastjson/rawscan.ml: String
