lib/fastjson/fadjs.ml: Hashtbl Json List Option Rawscan String
