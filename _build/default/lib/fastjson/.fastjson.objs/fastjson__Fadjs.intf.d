lib/fastjson/fadjs.mli: Json
