(* Bitmaps are Int64 arrays, one bit per input byte, little-endian within a
   word: bit i of word w covers byte w*64 + i. The byte→bitmap pass and the
   set-bit extraction loop (x & (x-1)) follow Mison; the AVX lanes of the
   paper become 64-bit words here, which changes constants, not the
   algorithm. *)

type t = {
  source : string;
  max_level : int;
  quotes : int64 array;          (* structural quotes *)
  string_mask : int64 array;     (* 1 = inside a string literal *)
  leveled_colons : int array array;  (* level (1-based) -> sorted offsets *)
}

let source t = t.source
let max_level t = t.max_level

let words_for n = (n + 63) / 64

let bit_set bm i =
  let w = i lsr 6 and b = i land 63 in
  Int64.logand bm.(w) (Int64.shift_left 1L b) <> 0L

let set_bit bm i =
  let w = i lsr 6 and b = i land 63 in
  bm.(w) <- Int64.logor bm.(w) (Int64.shift_left 1L b)

(* iterate over set bits of a bitmap in increasing order *)
let iter_bits bm n f =
  let nwords = Array.length bm in
  for w = 0 to nwords - 1 do
    let x = ref bm.(w) in
    while !x <> 0L do
      let lsb = Int64.logand !x (Int64.neg !x) in
      let b =
        (* count trailing zeros *)
        let rec ctz v acc =
          if Int64.logand v 1L = 1L then acc else ctz (Int64.shift_right_logical v 1) (acc + 1)
        in
        ctz lsb 0
      in
      let i = (w * 64) + b in
      if i < n then f i;
      x := Int64.logand !x (Int64.sub !x 1L)
    done
  done

(* The paper builds the bitmaps in four word-parallel passes (character
   comparison, carry-less backslash parity, prefix-XOR string mask, leveled
   colon extraction). Without SIMD the four passes cost more than they
   save, so this port fuses them into one scalar pass that produces the
   very same three artifacts — structural-quote bitmap, string-mask bitmap,
   leveled colon positions — with the same semantics. *)
let build ?(max_level = 2) s =
  let n = String.length s in
  let nw = words_for n in
  let quotes = Array.make nw 0L in
  let string_mask = Array.make nw 0L in
  let acc = Array.make (max_level + 1) [] in
  let i = ref 0 in
  let in_str = ref false in
  let depth = ref 0 in
  while !i < n do
    let c = String.unsafe_get s !i in
    if !in_str then begin
      if c = '"' then begin
        set_bit quotes !i;
        in_str := false
      end
      else begin
        set_bit string_mask !i;
        if c = '\\' && !i + 1 < n then begin
          set_bit string_mask (!i + 1);
          incr i
        end
      end
    end
    else begin
      match c with
      | '"' ->
          set_bit quotes !i;
          set_bit string_mask !i;
          in_str := true
      | ':' ->
          if !depth >= 1 && !depth <= max_level then acc.(!depth) <- !i :: acc.(!depth)
      | '{' -> incr depth
      | '}' -> decr depth
      | _ -> ()
    end;
    incr i
  done;
  let leveled_colons = Array.map (fun l -> Array.of_list (List.rev l)) acc in
  { source = s; max_level; quotes; string_mask; leveled_colons }

let colons t ~level ~lo ~hi =
  if level < 1 || level > t.max_level then []
  else
    let arr = t.leveled_colons.(level) in
    (* binary search for the first index >= lo *)
    let start =
      let l = ref 0 and r = ref (Array.length arr) in
      while !l < !r do
        let m = (!l + !r) / 2 in
        if arr.(m) < lo then l := m + 1 else r := m
      done;
      !l
    in
    let rec collect i acc =
      if i >= Array.length arr || arr.(i) >= hi then List.rev acc
      else collect (i + 1) (arr.(i) :: acc)
    in
    collect start []

let in_string t i = bit_set t.string_mask i

let structural_quotes t =
  let out = ref [] in
  iter_bits t.quotes (String.length t.source) (fun i -> out := i :: !out);
  List.rev !out
