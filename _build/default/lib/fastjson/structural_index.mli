(** Mison-style structural index (Li et al., VLDB'17, §4).

    The index is a set of bitmaps over the input bytes, built with 64-bit
    word-parallel operations (the paper uses AVX lanes; 64-bit words run the
    identical algorithm — see DESIGN.md):

    + character bitmaps for backslash, quote, colon, braces — one pass;
    + the {e structural quote} bitmap: quotes preceded by an even number of
      backslashes (carry-less two-step of the paper simplified to a serial
      check per set bit, which is still word-sparse);
    + the {e string mask} via prefix-XOR over the quote bitmap with carry
      between words;
    + {e leveled colon bitmaps}: colon positions attributed to each object
      nesting level up to [max_level], computed from the masked brace
      bitmaps with a stack, exactly Algorithm 3 of the paper.

    Querying the index yields the colon positions of a record's top-level
    (or deeper) fields without ever scanning the bytes in between. *)

type t

val build : ?max_level:int -> string -> t
(** Index the whole input (default [max_level] 2). Cost is linear with a
    small constant; no JSON tree is built. *)

val max_level : t -> int
val source : t -> string

val colons : t -> level:int -> lo:int -> hi:int -> int list
(** Colon offsets at the given nesting level within byte range [lo,hi). The
    outermost object's fields are level 1. *)

val in_string : t -> int -> bool
(** Is this byte inside a string literal? (Used by tests.) *)

val structural_quotes : t -> int list
(** Offsets of string-delimiting quotes (tests / diagnostics). *)
