type presence = Default_presence | Required | Optional | Forbidden

type rule =
  | Min of int
  | Max of int
  | Length of int
  | Greater of float
  | Less of float
  | Positive
  | Negative
  | Multiple of int
  | Integer_rule
  | Pattern of string * Re.re
  | Email
  | Uri
  | Lowercase
  | Uppercase
  | Alphanum
  | Unique

type relation =
  | And of string list
  | Or of string list
  | Xor of string list
  | Nand of string list
  | With of string * string list
  | Without of string * string list

type base =
  | Any_base
  | String_base
  | Number_base
  | Boolean_base
  | Null_base
  | Object_base of obj_spec
  | Array_base of arr_spec
  | Alternatives_base of t list

and obj_spec = {
  keys_ : (string * t) list;
  relations : relation list;  (* reversed order of addition *)
  allow_unknown : bool;
}

and arr_spec = { items_ : t option }

and when_clause = {
  w_ref : string;
  w_is : t;
  w_then : t;
  w_otherwise : t option;
}

and t = {
  base : base;
  presence : presence;
  valid_ : Json.Value.t list;
  invalid_ : Json.Value.t list;
  rules : rule list;  (* reversed order of addition *)
  default_ : Json.Value.t option;
  whens : when_clause list;  (* reversed *)
}

let make base =
  { base; presence = Default_presence; valid_ = []; invalid_ = []; rules = [];
    default_ = None; whens = [] }

let any = make Any_base
let string = make String_base
let number = make Number_base
let integer = { (make Number_base) with rules = [ Integer_rule ] }
let boolean = make Boolean_base
let null = make Null_base

let object_ keys_ =
  make (Object_base { keys_; relations = []; allow_unknown = false })

let array = make (Array_base { items_ = None })
let alternatives ts = make (Alternatives_base ts)
let required s = { s with presence = Required }
let optional s = { s with presence = Optional }
let forbidden s = { s with presence = Forbidden }
let add_rule r s = { s with rules = r :: s.rules }
let min n = add_rule (Min n)
let max n = add_rule (Max n)
let length n = add_rule (Length n)
let greater f = add_rule (Greater f)
let less f = add_rule (Less f)
let positive s = add_rule Positive s
let negative s = add_rule Negative s
let multiple n = add_rule (Multiple n)

let pattern src s =
  match Re.Pcre.re src with
  | re -> add_rule (Pattern (src, Re.compile re)) s
  | exception _ -> invalid_arg (Printf.sprintf "Joi.pattern: invalid regex %S" src)

let email s = add_rule Email s
let uri s = add_rule Uri s
let lowercase s = add_rule Lowercase s
let uppercase s = add_rule Uppercase s
let alphanum s = add_rule Alphanum s
let unique s = add_rule Unique s

let items item s =
  match s.base with
  | Array_base _ -> { s with base = Array_base { items_ = Some item } }
  | _ -> invalid_arg "Joi.items: not an array schema"

let valid vs s = { s with valid_ = s.valid_ @ vs }
let invalid vs s = { s with invalid_ = s.invalid_ @ vs }
let default v s = { s with default_ = Some v }

let with_object name f s =
  match s.base with
  | Object_base spec -> { s with base = Object_base (f spec) }
  | _ -> invalid_arg (Printf.sprintf "Joi.%s: not an object schema" name)

let keys more =
  with_object "keys" (fun spec -> { spec with keys_ = spec.keys_ @ more })

let unknown allow =
  with_object "unknown" (fun spec -> { spec with allow_unknown = allow })

let add_relation name r =
  with_object name (fun spec -> { spec with relations = r :: spec.relations })

let and_ ks = add_relation "and_" (And ks)
let or_ ks = add_relation "or_" (Or ks)
let xor ks = add_relation "xor" (Xor ks)
let nand ks = add_relation "nand" (Nand ks)
let with_ k peers = add_relation "with_" (With (k, peers))
let without k peers = add_relation "without" (Without (k, peers))

let when_ ~ref_ ~is ~then_ ?otherwise s =
  { s with whens = { w_ref = ref_; w_is = is; w_then = then_; w_otherwise = otherwise } :: s.whens }

(* --- validation ------------------------------------------------------- *)

type error = { path : Json.Pointer.t; message : string }

let string_of_error { path; message } =
  Printf.sprintf "%s: %s"
    (match Json.Pointer.to_string path with "" -> "value" | p -> p)
    message

let err path fmt = Printf.ksprintf (fun message -> { path; message }) fmt
let kp path k = Json.Pointer.append path (Json.Pointer.Key k)
let ip path i = Json.Pointer.append path (Json.Pointer.Index i)

let utf8_length s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then acc
    else
      let c = Char.code s.[i] in
      let step = if c < 0x80 then 1 else if c < 0xE0 then 2 else if c < 0xF0 then 3 else 4 in
      go (i + step) (acc + 1)
  in
  go 0 0

let email_re =
  Re.compile
    (Re.whole_string
       (Re.Pcre.re {re|[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\.[A-Za-z]{2,}|re}))

let uri_re = Re.compile (Re.whole_string (Re.Pcre.re {|[A-Za-z][A-Za-z0-9+.-]*:[^ ]*|}))

(* Check one rule against a value; None = rule passes or is inapplicable. *)
let check_rule path (v : Json.Value.t) rule : error option =
  let str_rule f = match v with Json.Value.String s -> f s | _ -> None in
  let num_rule f =
    match v with
    | Json.Value.Int n -> f (float_of_int n)
    | Json.Value.Float x -> f x
    | _ -> None
  in
  match rule with
  | Min lo -> (
      match v with
      | Json.Value.String s when utf8_length s < lo ->
          Some (err path "length %d is less than %d" (utf8_length s) lo)
      | Json.Value.Int n when n < lo -> Some (err path "%d is less than %d" n lo)
      | Json.Value.Float f when f < float_of_int lo ->
          Some (err path "%g is less than %d" f lo)
      | Json.Value.Array vs when List.length vs < lo ->
          Some (err path "%d items, need at least %d" (List.length vs) lo)
      | Json.Value.Object fs when List.length fs < lo ->
          Some (err path "%d keys, need at least %d" (List.length fs) lo)
      | _ -> None)
  | Max hi -> (
      match v with
      | Json.Value.String s when utf8_length s > hi ->
          Some (err path "length %d exceeds %d" (utf8_length s) hi)
      | Json.Value.Int n when n > hi -> Some (err path "%d exceeds %d" n hi)
      | Json.Value.Float f when f > float_of_int hi ->
          Some (err path "%g exceeds %d" f hi)
      | Json.Value.Array vs when List.length vs > hi ->
          Some (err path "%d items, allowed at most %d" (List.length vs) hi)
      | Json.Value.Object fs when List.length fs > hi ->
          Some (err path "%d keys, allowed at most %d" (List.length fs) hi)
      | _ -> None)
  | Length n -> (
      match v with
      | Json.Value.String s when utf8_length s <> n ->
          Some (err path "length %d, expected exactly %d" (utf8_length s) n)
      | Json.Value.Array vs when List.length vs <> n ->
          Some (err path "%d items, expected exactly %d" (List.length vs) n)
      | _ -> None)
  | Greater lo ->
      num_rule (fun f ->
          if f > lo then None else Some (err path "%g is not greater than %g" f lo))
  | Less hi ->
      num_rule (fun f ->
          if f < hi then None else Some (err path "%g is not less than %g" f hi))
  | Positive ->
      num_rule (fun f -> if f > 0.0 then None else Some (err path "%g is not positive" f))
  | Negative ->
      num_rule (fun f -> if f < 0.0 then None else Some (err path "%g is not negative" f))
  | Multiple n ->
      num_rule (fun f ->
          if Float.is_integer f && int_of_float f mod n = 0 then None
          else Some (err path "%g is not a multiple of %d" f n))
  | Integer_rule ->
      num_rule (fun f ->
          if Float.is_integer f then None else Some (err path "%g is not an integer" f))
  | Pattern (src, re) ->
      str_rule (fun s ->
          if Re.execp re s then None
          else Some (err path "%S does not match /%s/" s src))
  | Email ->
      str_rule (fun s ->
          if Re.execp email_re s then None else Some (err path "%S is not an email" s))
  | Uri ->
      str_rule (fun s ->
          if Re.execp uri_re s then None else Some (err path "%S is not a uri" s))
  | Lowercase ->
      str_rule (fun s ->
          if String.equal s (String.lowercase_ascii s) then None
          else Some (err path "%S is not lowercase" s))
  | Uppercase ->
      str_rule (fun s ->
          if String.equal s (String.uppercase_ascii s) then None
          else Some (err path "%S is not uppercase" s))
  | Alphanum ->
      str_rule (fun s ->
          if
            String.for_all
              (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true | _ -> false)
              s
          then None
          else Some (err path "%S is not alphanumeric" s))
  | Unique -> (
      match v with
      | Json.Value.Array vs ->
          let sorted = List.sort Json.Value.compare vs in
          let rec dup = function
            | a :: (b :: _ as rest) -> Json.Value.equal a b || dup rest
            | _ -> false
          in
          if dup sorted then Some (err path "array items are not unique") else None
      | _ -> None)

let check_relations path fields relations =
  let present k = List.mem_assoc k fields in
  List.concat_map
    (fun relation ->
      match relation with
      | And ks ->
          let here = List.filter present ks in
          if here = [] || List.length here = List.length ks then []
          else
            [ err path "keys [%s] must appear together (missing %s)"
                (String.concat ", " ks)
                (String.concat ", " (List.filter (fun k -> not (present k)) ks)) ]
      | Or ks ->
          if List.exists present ks then []
          else [ err path "at least one of [%s] is required" (String.concat ", " ks) ]
      | Xor ks -> (
          match List.length (List.filter present ks) with
          | 1 -> []
          | 0 -> [ err path "exactly one of [%s] is required (none present)" (String.concat ", " ks) ]
          | n ->
              [ err path "exactly one of [%s] is required (%d present)" (String.concat ", " ks) n ])
      | Nand ks ->
          if List.for_all present ks then
            [ err path "keys [%s] must not all appear together" (String.concat ", " ks) ]
          else []
      | With (k, peers) ->
          if present k then
            List.filter_map
              (fun p ->
                if present p then None
                else Some (err path "%S requires peer %S" k p))
              peers
          else []
      | Without (k, peers) ->
          if present k then
            List.filter_map
              (fun p ->
                if present p then Some (err path "%S conflicts with %S" k p) else None)
              peers
          else [])
    (List.rev relations)

(* Validation rewrites the value (defaults) and collects errors. [siblings]
   carries the enclosing object's fields for when_ resolution. *)
let rec walk ~siblings path (s : t) (v : Json.Value.t) :
    Json.Value.t * error list =
  (* resolve when_ clauses into an effective schema first *)
  let s =
    List.fold_left
      (fun acc w ->
        let matches =
          match List.assoc_opt w.w_ref siblings with
          | Some ref_val ->
              let _, es = walk ~siblings:[] (kp path w.w_ref) w.w_is ref_val in
              es = []
          | None -> false
        in
        if matches then conjoin acc w.w_then
        else match w.w_otherwise with Some o -> conjoin acc o | None -> acc)
      { s with whens = [] }
      (List.rev s.whens)
  in
  let errors = ref [] in
  let add es = errors := !errors @ es in
  (if s.valid_ <> [] && not (List.exists (Json.Value.equal v) s.valid_) then
     add [ err path "value is not in the allowed set" ]);
  (if List.exists (Json.Value.equal v) s.invalid_ then
     add [ err path "value is explicitly disallowed" ]);
  let v' =
    match (s.base, v) with
    | Any_base, _ -> v
    | String_base, Json.Value.String _ -> v
    | String_base, _ ->
        add [ err path "expected a string" ];
        v
    | Number_base, (Json.Value.Int _ | Json.Value.Float _) -> v
    | Number_base, _ ->
        add [ err path "expected a number" ];
        v
    | Boolean_base, Json.Value.Bool _ -> v
    | Boolean_base, _ ->
        add [ err path "expected a boolean" ];
        v
    | Null_base, Json.Value.Null -> v
    | Null_base, _ ->
        add [ err path "expected null" ];
        v
    | Array_base spec, Json.Value.Array vs ->
        let vs' =
          List.mapi
            (fun i x ->
              match spec.items_ with
              | None -> x
              | Some item_schema ->
                  let x', es = walk ~siblings:[] (ip path i) item_schema x in
                  add es;
                  x')
            vs
        in
        Json.Value.Array vs'
    | Array_base _, _ ->
        add [ err path "expected an array" ];
        v
    | Object_base spec, Json.Value.Object fields ->
        (* unknown keys *)
        if not spec.allow_unknown then
          List.iter
            (fun (k, _) ->
              if not (List.mem_assoc k spec.keys_) then
                add [ err (kp path k) "key is not allowed" ])
            fields;
        (* declared keys *)
        let fields' =
          List.fold_left
            (fun acc (k, key_schema) ->
              match List.assoc_opt k fields with
              | Some x ->
                  if key_schema.presence = Forbidden then begin
                    add [ err (kp path k) "key is forbidden" ];
                    acc
                  end
                  else
                    let x', es = walk ~siblings:fields (kp path k) key_schema x in
                    add es;
                    acc @ [ (k, x') ]
              | None -> (
                  match (key_schema.presence, key_schema.default_) with
                  | Required, _ ->
                      add [ err (kp path k) "key is required" ];
                      acc
                  | _, Some d -> acc @ [ (k, d) ]
                  | _, None -> acc))
            [] spec.keys_
        in
        let undeclared =
          List.filter (fun (k, _) -> not (List.mem_assoc k spec.keys_)) fields
        in
        add (check_relations path fields (List.rev spec.relations));
        Json.Value.Object (fields' @ undeclared)
    | Object_base _, _ ->
        add [ err path "expected an object" ];
        v
    | Alternatives_base alts, _ ->
        let attempts = List.map (fun alt -> walk ~siblings path alt v) alts in
        (match List.find_opt (fun (_, es) -> es = []) attempts with
         | Some (v', _) -> v'
         | None ->
             add [ err path "no alternative matched (%d tried)" (List.length alts) ];
             v)
  in
  List.iter
    (fun rule -> match check_rule path v' rule with Some e -> add [ e ] | None -> ())
    (List.rev s.rules);
  (v', !errors)

(* Conjoin two schemas: used to apply when_ branches. Rules/valid sets
   concatenate; bases combine by preferring the more specific one. *)
and conjoin a b =
  let base =
    match (a.base, b.base) with
    | Any_base, other -> other
    | other, Any_base -> other
    | Object_base x, Object_base y ->
        (* keys present on both sides conjoin recursively so the branch's
           refinements (e.g. required) take effect *)
        let merged =
          List.map
            (fun (k, ks) ->
              match List.assoc_opt k y.keys_ with
              | Some ks' -> (k, conjoin ks ks')
              | None -> (k, ks))
            x.keys_
          @ List.filter (fun (k, _) -> not (List.mem_assoc k x.keys_)) y.keys_
        in
        Object_base
          { keys_ = merged;
            relations = y.relations @ x.relations;
            allow_unknown = x.allow_unknown || y.allow_unknown }
    | other, _ -> other
  in
  { base;
    presence =
      (match (a.presence, b.presence) with
       | Default_presence, p -> p
       | p, Default_presence -> p
       | _, p -> p);
    valid_ = a.valid_ @ b.valid_;
    invalid_ = a.invalid_ @ b.invalid_;
    rules = b.rules @ a.rules;
    default_ = (match b.default_ with Some _ -> b.default_ | None -> a.default_);
    whens = b.whens @ a.whens }

let validate s v =
  (* top-level forbidden/required make little sense; accept and validate *)
  let v', errors = walk ~siblings:[] [] s v in
  if errors = [] then Ok v' else Error errors

let is_valid s v = Result.is_ok (validate s v)

(* --- describe --------------------------------------------------------- *)

let rec describe (s : t) : Json.Value.t =
  let fields = ref [] in
  let add k v = fields := (k, v) :: !fields in
  let type_name =
    match s.base with
    | Any_base -> "any"
    | String_base -> "string"
    | Number_base -> "number"
    | Boolean_base -> "boolean"
    | Null_base -> "null"
    | Object_base _ -> "object"
    | Array_base _ -> "array"
    | Alternatives_base _ -> "alternatives"
  in
  add "type" (Json.Value.String type_name);
  (match s.presence with
   | Required -> add "presence" (Json.Value.String "required")
   | Forbidden -> add "presence" (Json.Value.String "forbidden")
   | Optional | Default_presence -> ());
  if s.valid_ <> [] then add "valids" (Json.Value.Array s.valid_);
  if s.invalid_ <> [] then add "invalids" (Json.Value.Array s.invalid_);
  Option.iter (fun d -> add "default" d) s.default_;
  let rule_json r =
    let name n = Json.Value.Object [ ("name", Json.Value.String n) ] in
    let with_arg n (a : Json.Value.t) =
      Json.Value.Object [ ("name", Json.Value.String n); ("arg", a) ]
    in
    match r with
    | Min n -> with_arg "min" (Json.Value.Int n)
    | Max n -> with_arg "max" (Json.Value.Int n)
    | Length n -> with_arg "length" (Json.Value.Int n)
    | Greater f -> with_arg "greater" (Json.Value.Float f)
    | Less f -> with_arg "less" (Json.Value.Float f)
    | Positive -> name "positive"
    | Negative -> name "negative"
    | Multiple n -> with_arg "multiple" (Json.Value.Int n)
    | Integer_rule -> name "integer"
    | Pattern (src, _) -> with_arg "pattern" (Json.Value.String src)
    | Email -> name "email"
    | Uri -> name "uri"
    | Lowercase -> name "lowercase"
    | Uppercase -> name "uppercase"
    | Alphanum -> name "alphanum"
    | Unique -> name "unique"
  in
  (match List.rev s.rules with
   | [] -> ()
   | rs -> add "rules" (Json.Value.Array (List.map rule_json rs)));
  (match s.base with
   | Object_base spec ->
       if spec.keys_ <> [] then
         add "keys"
           (Json.Value.Object (List.map (fun (k, ks) -> (k, describe ks)) spec.keys_));
       if spec.allow_unknown then add "unknown" (Json.Value.Bool true);
       let rel_json = function
         | And ks -> ("and", ks)
         | Or ks -> ("or", ks)
         | Xor ks -> ("xor", ks)
         | Nand ks -> ("nand", ks)
         | With (k, peers) -> ("with " ^ k, peers)
         | Without (k, peers) -> ("without " ^ k, peers)
       in
       (match List.rev spec.relations with
        | [] -> ()
        | rels ->
            add "dependencies"
              (Json.Value.Array
                 (List.map
                    (fun r ->
                      let name, ks = rel_json r in
                      Json.Value.Object
                        [ ("rel", Json.Value.String name);
                          ("keys", Json.Value.Array (List.map (fun k -> Json.Value.String k) ks)) ])
                    rels)))
   | Array_base { items_ = Some item } -> add "items" (describe item)
   | Alternatives_base alts ->
       add "alternatives" (Json.Value.Array (List.map describe alts))
   | _ -> ());
  (match List.rev s.whens with
   | [] -> ()
   | ws ->
       add "whens"
         (Json.Value.Array
            (List.map
               (fun w ->
                 Json.Value.Object
                   ([ ("ref", Json.Value.String w.w_ref);
                      ("is", describe w.w_is);
                      ("then", describe w.w_then) ]
                   @ match w.w_otherwise with
                     | Some o -> [ ("otherwise", describe o) ]
                     | None -> []))
               ws)));
  Json.Value.Object (List.rev !fields)

(* --- JSON Schema translation ------------------------------------------ *)

let rec to_json_schema (s : t) : Jsonschema.Schema.t =
  let open Jsonschema.Schema in
  let base_node =
    match s.base with
    | Any_base -> empty
    | String_base -> { empty with types = Some [ `String ] }
    | Number_base ->
        if List.mem Integer_rule s.rules then { empty with types = Some [ `Integer ] }
        else { empty with types = Some [ `Number ] }
    | Boolean_base -> { empty with types = Some [ `Boolean ] }
    | Null_base -> { empty with types = Some [ `Null ] }
    | Array_base spec ->
        { empty with
          types = Some [ `Array ];
          items = Option.map (fun i -> Items_one (to_json_schema i)) spec.items_ }
    | Object_base spec ->
        let required =
          List.filter_map
            (fun (k, ks) -> if ks.presence = Required then Some k else None)
            spec.keys_
        in
        let dependencies =
          List.concat_map
            (function
              | With (k, peers) -> [ (k, Dep_required peers) ]
              | _ -> [])
            (List.rev spec.relations)
        in
        { empty with
          types = Some [ `Object ];
          properties = List.map (fun (k, ks) -> (k, to_json_schema ks)) spec.keys_;
          required;
          dependencies;
          additional_properties =
            (if spec.allow_unknown then None else Some (Bool_schema false)) }
    | Alternatives_base alts ->
        { empty with any_of = List.map to_json_schema alts }
  in
  let node =
    List.fold_left
      (fun n rule ->
        match (rule, s.base) with
        | Min lo, String_base -> { n with min_length = Some lo }
        | Max hi, String_base -> { n with max_length = Some hi }
        | Length l, String_base -> { n with min_length = Some l; max_length = Some l }
        | Min lo, Number_base -> { n with minimum = Some (float_of_int lo) }
        | Max hi, Number_base -> { n with maximum = Some (float_of_int hi) }
        | Min lo, Array_base _ -> { n with min_items = Some lo }
        | Max hi, Array_base _ -> { n with max_items = Some hi }
        | Length l, Array_base _ -> { n with min_items = Some l; max_items = Some l }
        | Min lo, Object_base _ -> { n with min_properties = Some lo }
        | Max hi, Object_base _ -> { n with max_properties = Some hi }
        | Greater lo, Number_base -> { n with exclusive_minimum = Some lo }
        | Less hi, Number_base -> { n with exclusive_maximum = Some hi }
        | Positive, Number_base -> { n with exclusive_minimum = Some 0.0 }
        | Negative, Number_base -> { n with exclusive_maximum = Some 0.0 }
        | Multiple m, Number_base -> { n with multiple_of = Some (float_of_int m) }
        | Pattern (src, re), String_base -> { n with pattern = Some (src, re) }
        | Email, String_base -> { n with format = Some "email" }
        | Uri, String_base -> { n with format = Some "uri" }
        | Unique, Array_base _ -> { n with unique_items = true }
        | _ -> n)
      base_node (List.rev s.rules)
  in
  let node =
    match s.valid_ with
    | [] -> node
    | [ v ] -> { node with const = Some v }
    | vs -> { node with enum = Some vs }
  in
  let node =
    match s.default_ with None -> node | Some d -> { node with default = Some d }
  in
  Schema node
