(** An OCaml embedding of the Walmart Labs Joi schema DSL.

    Joi describes JSON {e objects} inside an untyped language by chaining
    refinements onto base types; its distinguishing features — the ones the
    tutorial contrasts against JSON Schema — are relational constraints
    between sibling fields ([and_]/[or_]/[xor]/[nand]/[with_]/[without])
    and value-dependent types ([when_]).

    The embedding is purely functional: every combinator returns a new
    schema. Validation optionally rewrites the value (inserting [default]s),
    mirroring Joi's [validate] returning the coerced value. *)

type t

(** {1 Base types} *)

val any : t
val string : t
val number : t
val integer : t
val boolean : t
val null : t

val object_ : (string * t) list -> t
(** Keys with their schemas. Unknown keys are rejected unless {!unknown}. *)

val array : t
val alternatives : t list -> t
(** Matches if any alternative matches (Joi's [alternatives().try()]). *)

(** {1 Presence} *)

val required : t -> t
(** Field must be present (fields default to optional, as in Joi). *)

val optional : t -> t
val forbidden : t -> t

(** {1 Refinements} — meaning depends on the base type, as in Joi:
    on strings they constrain length, on numbers the value, on arrays the
    element count, on objects the number of keys. *)

val min : int -> t -> t
val max : int -> t -> t
val length : int -> t -> t
val greater : float -> t -> t
val less : float -> t -> t
val positive : t -> t
val negative : t -> t
val multiple : int -> t -> t
val pattern : string -> t -> t  (** @raise Invalid_argument on a bad regex *)
val email : t -> t
val uri : t -> t
val lowercase : t -> t
val uppercase : t -> t
val alphanum : t -> t
val valid : Json.Value.t list -> t -> t  (** whitelist (Joi [valid]) *)
val invalid : Json.Value.t list -> t -> t  (** blacklist *)
val default : Json.Value.t -> t -> t
(** Inserted by {!validate} when the field is absent. *)

(** {1 Array refinements} *)

val items : t -> t -> t  (** element schema *)
val unique : t -> t

(** {1 Object refinements and field relations} *)

val keys : (string * t) list -> t -> t  (** add keys to an object schema *)
val unknown : bool -> t -> t  (** tolerate undeclared keys *)
val and_ : string list -> t -> t  (** all-or-none co-occurrence *)
val or_ : string list -> t -> t  (** at least one present *)
val xor : string list -> t -> t  (** exactly one present *)
val nand : string list -> t -> t  (** not all present together *)
val with_ : string -> string list -> t -> t
(** if the first key is present, its peers must be too *)

val without : string -> string list -> t -> t
(** if the first key is present, its peers must be absent *)

(** {1 Value-dependent types} *)

val when_ : ref_:string -> is:t -> then_:t -> ?otherwise:t -> t -> t
(** [when_ ~ref_:"type" ~is:(valid [`String "card"] any) ~then_:... schema]:
    while validating an {e object} field whose schema carries this clause,
    the sibling field [ref_] is tested against [is] and the [then_]
    (respectively [otherwise]) schema is conjoined. *)

(** {1 Validation} *)

type error = { path : Json.Pointer.t; message : string }

val string_of_error : error -> string

val validate : t -> Json.Value.t -> (Json.Value.t, error list) result
(** All errors; on success returns the value with defaults inserted. *)

val is_valid : t -> Json.Value.t -> bool

(** {1 Introspection} *)

val describe : t -> Json.Value.t
(** Joi's [describe()]: a JSON rendering of the schema tree. *)

val to_json_schema : t -> Jsonschema.Schema.t
(** Best-effort translation to JSON Schema. Relational constraints map to
    [dependencies]/[allOf]-encodings where possible; [when_] clauses map to
    [if]/[then]/[else]. *)
