type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Array of t list
  | Object of (string * t) list

let null = Null
let bool b = Bool b
let int n = Int n
let float f = Float f
let string s = String s
let array vs = Array vs
let obj fields = Object fields

exception Type_error of string

type kind = [ `Null | `Bool | `Number | `String | `Array | `Object ]

let kind = function
  | Null -> `Null
  | Bool _ -> `Bool
  | Int _ | Float _ -> `Number
  | String _ -> `String
  | Array _ -> `Array
  | Object _ -> `Object

let kind_name = function
  | `Null -> "null"
  | `Bool -> "boolean"
  | `Number -> "number"
  | `String -> "string"
  | `Array -> "array"
  | `Object -> "object"

let is_scalar v =
  match v with
  | Null | Bool _ | Int _ | Float _ | String _ -> true
  | Array _ | Object _ -> false

let type_error expected v =
  raise (Type_error (Printf.sprintf "expected %s, got %s" expected (kind_name (kind v))))

let to_bool = function Bool b -> Some b | _ -> None
let to_int = function Int n -> Some n | _ -> None

let to_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_string = function String s -> Some s | _ -> None
let to_array = function Array vs -> Some vs | _ -> None
let to_obj = function Object fields -> Some fields | _ -> None
let to_bool_exn = function Bool b -> b | v -> type_error "boolean" v
let to_int_exn = function Int n -> n | v -> type_error "integer" v

let to_float_exn = function
  | Float f -> f
  | Int n -> float_of_int n
  | v -> type_error "number" v

let to_string_exn = function String s -> s | v -> type_error "string" v
let to_array_exn = function Array vs -> vs | v -> type_error "array" v
let to_obj_exn = function Object fields -> fields | v -> type_error "object" v

let member key = function
  | Object fields -> List.assoc_opt key fields
  | _ -> None

let member_exn key v =
  match member key v with
  | Some x -> x
  | None -> raise (Type_error (Printf.sprintf "no member %S" key))

let index i = function
  | Array vs ->
      let n = List.length vs in
      let i = if i < 0 then n + i else i in
      if i < 0 || i >= n then None else Some (List.nth vs i)
  | _ -> None

let has_member key v = member key v <> None

(* Objects are unordered in the JSON data model: canonicalize by sorting
   fields before comparing. Duplicate keys keep the last binding, matching
   the parser's default policy. *)
let dedup_last_sorted fields =
  let sorted =
    List.stable_sort (fun (k1, _) (k2, _) -> String.compare k1 k2) fields
  in
  let rec keep_last = function
    | (k1, _) :: ((k2, _) :: _ as rest) when String.equal k1 k2 -> keep_last rest
    | pair :: rest -> pair :: keep_last rest
    | [] -> []
  in
  keep_last sorted

let rec sort_keys v =
  match v with
  | Null | Bool _ | Int _ | Float _ | String _ -> v
  | Array vs -> Array (List.map sort_keys vs)
  | Object fields ->
      Object (dedup_last_sorted (List.map (fun (k, x) -> (k, sort_keys x)) fields))

let rec compare_canonical a b =
  let rank = function
    | Null -> 0 | Bool _ -> 1 | Int _ | Float _ -> 2
    | String _ -> 3 | Array _ -> 4 | Object _ -> 5
  in
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Float x, Float y -> Float.compare x y
  | String x, String y -> String.compare x y
  | Array xs, Array ys -> compare_lists xs ys
  | Object xs, Object ys ->
      compare_lists
        (List.map (fun (k, v) -> Array [ String k; v ]) xs)
        (List.map (fun (k, v) -> Array [ String k; v ]) ys)
  | _ -> Int.compare (rank a) (rank b)

and compare_lists xs ys =
  match (xs, ys) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs', y :: ys' ->
      let c = compare_canonical x y in
      if c <> 0 then c else compare_lists xs' ys'

let compare a b = compare_canonical (sort_keys a) (sort_keys b)
let equal a b = compare a b = 0

let rec equal_strict a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | String x, String y -> String.equal x y
  | Array xs, Array ys ->
      List.length xs = List.length ys && List.for_all2 equal_strict xs ys
  | Object xs, Object ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal_strict v1 v2)
           xs ys
  | (Null | Bool _ | Int _ | Float _ | String _ | Array _ | Object _), _ -> false

let rec fold f acc v =
  let acc = f acc v in
  match v with
  | Null | Bool _ | Int _ | Float _ | String _ -> acc
  | Array vs -> List.fold_left (fold f) acc vs
  | Object fields -> List.fold_left (fun acc (_, x) -> fold f acc x) acc fields

let rec map_values f v =
  match v with
  | Null | Bool _ | Int _ | Float _ | String _ -> f v
  | Array vs -> f (Array (List.map (map_values f) vs))
  | Object fields ->
      f (Object (List.map (fun (k, x) -> (k, map_values f x)) fields))

let rec depth = function
  | Null | Bool _ | Int _ | Float _ | String _ -> 1
  | Array vs -> 1 + List.fold_left (fun m v -> max m (depth v)) 0 vs
  | Object fields ->
      1 + List.fold_left (fun m (_, v) -> max m (depth v)) 0 fields

let size v = fold (fun n _ -> n + 1) 0 v

let paths v =
  let rec go prefix v acc =
    match v with
    | Null | Bool _ | Int _ | Float _ | String _ -> List.rev prefix :: acc
    | Array [] -> List.rev prefix :: acc
    | Array vs -> List.fold_left (fun acc x -> go ("[]" :: prefix) x acc) acc vs
    | Object [] -> List.rev prefix :: acc
    | Object fields ->
        List.fold_left (fun acc (k, x) -> go (k :: prefix) x acc) acc fields
  in
  List.rev (go [] v [])

(* Printing lives in Printer; this forward reference is filled at library
   initialization so Value.pp can be used in error messages and tests. *)
let pp_ref : (Format.formatter -> t -> unit) ref =
  ref (fun ppf _ -> Format.pp_print_string ppf "<json>")

let pp ppf v = !pp_ref ppf v
