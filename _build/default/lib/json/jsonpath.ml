type step =
  | Field of string
  | Item of int
  | Wildcard
  | Descend of string

type t = step list

let parse str =
  let n = String.length str in
  let err msg = Error (Printf.sprintf "JSONPath %S: %s" str msg) in
  if n = 0 || str.[0] <> '$' then err "must start with '$'"
  else
    let rec ident i =
      (* consume [A-Za-z0-9_-]* starting at i *)
      if
        i < n
        &&
        match str.[i] with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true
        | _ -> false
      then ident (i + 1)
      else i
    in
    let rec go acc i =
      if i >= n then Ok (List.rev acc)
      else if i + 1 < n && str.[i] = '.' && str.[i + 1] = '.' then begin
        let stop = ident (i + 2) in
        if stop = i + 2 then err "'..' must be followed by a name"
        else go (Descend (String.sub str (i + 2) (stop - i - 2)) :: acc) stop
      end
      else if str.[i] = '.' then
        if i + 1 < n && str.[i + 1] = '*' then go (Wildcard :: acc) (i + 2)
        else begin
          let stop = ident (i + 1) in
          if stop = i + 1 then err "'.' must be followed by a name"
          else go (Field (String.sub str (i + 1) (stop - i - 1)) :: acc) stop
        end
      else if str.[i] = '[' then
        if i + 1 < n && str.[i + 1] = '*' then
          if i + 2 < n && str.[i + 2] = ']' then go (Wildcard :: acc) (i + 3)
          else err "expected ']' after '*'"
        else if i + 1 < n && str.[i + 1] = '\'' then begin
          match String.index_from_opt str (i + 2) '\'' with
          | Some q when q + 1 < n && str.[q + 1] = ']' ->
              go (Field (String.sub str (i + 2) (q - i - 2)) :: acc) (q + 2)
          | Some _ -> err "expected ']' after quoted name"
          | None -> err "unterminated quoted name"
        end
        else begin
          match String.index_from_opt str i ']' with
          | Some q -> (
              let digits = String.sub str (i + 1) (q - i - 1) in
              match int_of_string_opt digits with
              | Some k -> go (Item k :: acc) (q + 1)
              | None -> err (Printf.sprintf "invalid index %S" digits))
          | None -> err "unterminated '['"
        end
      else err (Printf.sprintf "unexpected character %C" str.[i])
    in
    go [] 1

let parse_exn str =
  match parse str with Ok t -> t | Error msg -> invalid_arg msg

let step_to_string = function
  | Field f -> "." ^ f
  | Item k -> Printf.sprintf "[%d]" k
  | Wildcard -> "[*]"
  | Descend f -> ".." ^ f

let to_string t = "$" ^ String.concat "" (List.map step_to_string t)

let rec descend_matches name v acc =
  let acc =
    match Value.member name v with Some x -> x :: acc | None -> acc
  in
  match v with
  | Value.Array vs -> List.fold_left (fun acc x -> descend_matches name x acc) acc vs
  | Value.Object fields ->
      List.fold_left (fun acc (_, x) -> descend_matches name x acc) acc fields
  | Value.Null | Value.Bool _ | Value.Int _ | Value.Float _ | Value.String _ -> acc

let eval_step v = function
  | Field f -> ( match Value.member f v with Some x -> [ x ] | None -> [])
  | Item k -> ( match Value.index k v with Some x -> [ x ] | None -> [])
  | Wildcard -> (
      match v with
      | Value.Array vs -> vs
      | Value.Object fields -> List.map snd fields
      | _ -> [])
  | Descend f -> List.rev (descend_matches f v [])

let eval t root =
  List.fold_left
    (fun frontier step -> List.concat_map (fun v -> eval_step v step) frontier)
    [ root ] t

let eval_first t root = match eval t root with [] -> None | x :: _ -> Some x

let first_fields t =
  match t with Field f :: _ -> [ f ] | _ -> []
