(** Hand-written JSON lexer with byte-accurate source positions.

    The lexer is shared by the tree parser ({!Parser}) and the event parser
    ({!Stream}). It performs string unescaping (including surrogate pairs)
    and validates UTF-8 in string literals. *)

type position = { offset : int; line : int; column : int }
(** 0-based byte [offset]; 1-based [line] and [column]. *)

type token =
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Colon
  | Comma
  | True
  | False
  | Null_tok
  | String_tok of string  (** unescaped contents *)
  | Number_tok of Number.parsed
  | Eof

exception Lex_error of position * string

exception Limit_error of position * string
(** A lexical resource budget (currently the string-length cap) was hit.
    Distinct from {!Lex_error} so callers can classify the failure as a
    budget kill rather than a syntax error. *)

type t
(** Lexer state over an in-memory document. *)

(** [create ?pos ?max_string_bytes src] lexes [src] starting at byte offset
    [pos] (default 0; line/column numbers are counted from that point).
    [max_string_bytes] caps the unescaped length of any one string literal;
    exceeding it raises {!Limit_error}. *)
val create : ?pos:int -> ?max_string_bytes:int -> string -> t
val next : t -> token * position
(** Next token and the position where it starts.
    @raise Lex_error on malformed input. *)

val peek : t -> token * position
(** Like {!next} without consuming. *)

val position : t -> position
(** Current position (after the last consumed token). *)

val token_name : token -> string
(** Human-readable token description for error messages. *)
