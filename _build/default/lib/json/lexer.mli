(** Hand-written JSON lexer with byte-accurate source positions.

    The lexer is shared by the tree parser ({!Parser}) and the event parser
    ({!Stream}). It performs string unescaping (including surrogate pairs)
    and validates UTF-8 in string literals. *)

type position = { offset : int; line : int; column : int }
(** 0-based byte [offset]; 1-based [line] and [column]. *)

type token =
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Colon
  | Comma
  | True
  | False
  | Null_tok
  | String_tok of string  (** unescaped contents *)
  | Number_tok of Number.parsed
  | Eof

exception Lex_error of position * string

type t
(** Lexer state over an in-memory document. *)

(** [create ?pos src] lexes [src] starting at byte offset [pos]
    (default 0; line/column numbers are counted from that point). *)
val create : ?pos:int -> string -> t
val next : t -> token * position
(** Next token and the position where it starts.
    @raise Lex_error on malformed input. *)

val peek : t -> token * position
(** Like {!next} without consuming. *)

val position : t -> position
(** Current position (after the last consumed token). *)

val token_name : token -> string
(** Human-readable token description for error messages. *)
