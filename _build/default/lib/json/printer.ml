let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  add_escaped buf s;
  Buffer.contents buf

let rec add_compact buf (v : Value.t) =
  match v with
  | Value.Null -> Buffer.add_string buf "null"
  | Value.Bool true -> Buffer.add_string buf "true"
  | Value.Bool false -> Buffer.add_string buf "false"
  | Value.Int n -> Buffer.add_string buf (string_of_int n)
  | Value.Float f -> Buffer.add_string buf (Number.print_float f)
  | Value.String s -> add_escaped buf s
  | Value.Array vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          add_compact buf x)
        vs;
      Buffer.add_char buf ']'
  | Value.Object fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          add_compact buf x)
        fields;
      Buffer.add_char buf '}'

let add_pretty ~indent buf v =
  let pad level = Buffer.add_string buf (String.make (level * indent) ' ') in
  let rec go level (v : Value.t) =
    match v with
    | Value.Array [] -> Buffer.add_string buf "[]"
    | Value.Object [] -> Buffer.add_string buf "{}"
    | Value.Array vs ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (level + 1);
            go (level + 1) x)
          vs;
        Buffer.add_char buf '\n';
        pad level;
        Buffer.add_char buf ']'
    | Value.Object fields ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (level + 1);
            add_escaped buf k;
            Buffer.add_string buf ": ";
            go (level + 1) x)
          fields;
        Buffer.add_char buf '\n';
        pad level;
        Buffer.add_char buf '}'
    | scalar -> add_compact buf scalar
  in
  go 0 v

let to_buffer buf v = add_compact buf v

let to_string v =
  let buf = Buffer.create 256 in
  add_compact buf v;
  Buffer.contents buf

let to_string_pretty ?(indent = 2) v =
  let buf = Buffer.create 256 in
  add_pretty ~indent buf v;
  Buffer.contents buf

let to_channel oc v = output_string oc (to_string v)
let pp ppf v = Format.pp_print_string ppf (to_string v)
let pp_pretty ppf v = Format.pp_print_string ppf (to_string_pretty v)

(* Make Value.pp usable without depending on this module. *)
let () = Value.pp_ref := pp
