(** JSON abstract syntax tree and structural operations.

    This is the data model shared by every component of the toolkit: the
    parsers produce it, the validators consume it, the inference algorithms
    abstract it into types, and the translators shred it into other formats.

    Objects are represented as association lists in document order, so a
    parsed document can be re-printed byte-identically (modulo whitespace);
    use {!sort_keys} to obtain a canonical form. *)

type t =
  | Null
  | Bool of bool
  | Int of int          (** JSON numbers with no fractional/exponent part *)
  | Float of float      (** all other JSON numbers *)
  | String of string    (** UTF-8, already unescaped *)
  | Array of t list
  | Object of (string * t) list  (** fields in document order *)

(** {1 Constructors} *)

val null : t
val bool : bool -> t
val int : int -> t
val float : float -> t
val string : string -> t
val array : t list -> t
val obj : (string * t) list -> t

(** {1 Accessors}

    The [*_exn] accessors raise {!Type_error}; the optional variants
    return [None] on a type mismatch. *)

exception Type_error of string
(** Raised by [*_exn] accessors when the value has the wrong shape. *)

val to_bool : t -> bool option
val to_int : t -> int option
val to_float : t -> float option
(** [to_float] also accepts [Int], widening it. *)

val to_string : t -> string option
val to_array : t -> t list option
val to_obj : t -> (string * t) list option

val to_bool_exn : t -> bool
val to_int_exn : t -> int
val to_float_exn : t -> float
val to_string_exn : t -> string
val to_array_exn : t -> t list
val to_obj_exn : t -> (string * t) list

val member : string -> t -> t option
(** [member k v] is the value of field [k] if [v] is an object that has it. *)

val member_exn : string -> t -> t
val index : int -> t -> t option
(** [index i v] is the [i]-th element if [v] is an array; negative indices
    count from the end. *)

val has_member : string -> t -> bool

(** {1 Classification} *)

type kind = [ `Null | `Bool | `Number | `String | `Array | `Object ]

val kind : t -> kind
(** The JSON-level kind; [Int] and [Float] both map to [`Number]. *)

val kind_name : kind -> string
val is_scalar : t -> bool

(** {1 Structural operations} *)

val equal : t -> t -> bool
(** Structural equality. Objects compare unordered (per the JSON data model):
    [{"a":1,"b":2}] equals [{"b":2,"a":1}]. Numbers compare by numeric value,
    so [Int 1] equals [Float 1.0]. Duplicate keys make comparison
    last-wins, matching {!Parser} defaults. *)

val equal_strict : t -> t -> bool
(** Like {!equal} but field order and Int/Float distinction are significant. *)

val compare : t -> t -> int
(** Total order compatible with {!equal} (canonicalizes before comparing). *)

val sort_keys : t -> t
(** Recursively sort object fields by key (byte order); on duplicate keys the
    last binding wins. *)

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over every node of the tree, including the root. *)

val map_values : (t -> t) -> t -> t
(** Bottom-up rewrite: children are rewritten first, then the function is
    applied to the rebuilt node. *)

val depth : t -> int
(** Nesting depth; scalars have depth 1. *)

val size : t -> int
(** Number of nodes in the tree. *)

val paths : t -> string list list
(** All root-to-leaf field paths (array elements contribute ["[]"]).
    Scalars at the root produce [[]]. *)

val pp : Format.formatter -> t -> unit
(** Debug printer (compact JSON). *)

(**/**)

val pp_ref : (Format.formatter -> t -> unit) ref
(** Installed by {!Printer} at load time; not part of the public API. *)
