(** A deliberately small JSONPath dialect for field projection.

    Supported syntax: [$] (root), [.name] / [['name']] (member),
    [[k]] (array index), [[*]] and [.*] (wildcard), [..name] (recursive
    descent). This is the query fragment the projection experiments (E5/E6)
    need; it is not the full JSONPath proposal. *)

type step =
  | Field of string
  | Item of int
  | Wildcard
  | Descend of string  (** [..name]: any depth *)

type t = step list

val parse : string -> (t, string) result
val parse_exn : string -> t
val to_string : t -> string

val eval : t -> Value.t -> Value.t list
(** All matches in document order. *)

val eval_first : t -> Value.t -> Value.t option

val first_fields : t -> string list
(** The set of top-level object fields the path can touch — the projection
    set that {!Fastjson}'s Mison-style parser needs. Empty means
    "potentially all" (e.g. a leading wildcard). *)
