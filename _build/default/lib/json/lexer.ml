type position = { offset : int; line : int; column : int }

type token =
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Colon
  | Comma
  | True
  | False
  | Null_tok
  | String_tok of string
  | Number_tok of Number.parsed

  | Eof

exception Lex_error of position * string
exception Limit_error of position * string

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* offset of the beginning of the current line *)
  mutable lookahead : (token * position) option;
  buf : Buffer.t; (* scratch for string unescaping *)
  max_string_bytes : int option;
}

let create ?(pos = 0) ?max_string_bytes src =
  { src; pos; line = 1; bol = pos; lookahead = None; buf = Buffer.create 64;
    max_string_bytes }

let position_at lx off = { offset = off; line = lx.line; column = off - lx.bol + 1 }
let position lx = position_at lx lx.pos

let error lx off msg = raise (Lex_error (position_at lx off, msg))

let token_name = function
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Lbracket -> "'['"
  | Rbracket -> "']'"
  | Colon -> "':'"
  | Comma -> "','"
  | True -> "'true'"
  | False -> "'false'"
  | Null_tok -> "'null'"
  | String_tok _ -> "string"
  | Number_tok _ -> "number"
  | Eof -> "end of input"

let is_digit c = c >= '0' && c <= '9'

let skip_ws lx =
  let n = String.length lx.src in
  let rec go () =
    if lx.pos < n then
      match lx.src.[lx.pos] with
      | ' ' | '\t' | '\r' -> lx.pos <- lx.pos + 1; go ()
      | '\n' ->
          lx.pos <- lx.pos + 1;
          lx.line <- lx.line + 1;
          lx.bol <- lx.pos;
          go ()
      | _ -> ()
  in
  go ()

let expect_keyword lx word token =
  let n = String.length word in
  if lx.pos + n <= String.length lx.src && String.sub lx.src lx.pos n = word then begin
    lx.pos <- lx.pos + n;
    token
  end
  else error lx lx.pos (Printf.sprintf "expected %s" word)

(* Append a Unicode scalar value as UTF-8. *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let hex_value lx off c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> error lx off "invalid hex digit in \\u escape"

let read_hex4 lx =
  let n = String.length lx.src in
  if lx.pos + 4 > n then error lx lx.pos "truncated \\u escape";
  let v =
    (hex_value lx lx.pos lx.src.[lx.pos] lsl 12)
    lor (hex_value lx (lx.pos + 1) lx.src.[lx.pos + 1] lsl 8)
    lor (hex_value lx (lx.pos + 2) lx.src.[lx.pos + 2] lsl 4)
    lor hex_value lx (lx.pos + 3) lx.src.[lx.pos + 3]
  in
  lx.pos <- lx.pos + 4;
  v

let read_string lx =
  let n = String.length lx.src in
  let start = lx.pos in
  lx.pos <- lx.pos + 1; (* opening quote *)
  Buffer.clear lx.buf;
  let check_budget () =
    match lx.max_string_bytes with
    | Some limit when Buffer.length lx.buf > limit ->
        raise
          (Limit_error
             ( position_at lx start,
               Printf.sprintf "string literal exceeds %d bytes" limit ))
    | _ -> ()
  in
  let rec go () =
    check_budget ();
    if lx.pos >= n then error lx start "unterminated string"
    else
      match lx.src.[lx.pos] with
      | '"' -> lx.pos <- lx.pos + 1
      | '\\' ->
          lx.pos <- lx.pos + 1;
          if lx.pos >= n then error lx start "unterminated string";
          (match lx.src.[lx.pos] with
           | '"' -> Buffer.add_char lx.buf '"'; lx.pos <- lx.pos + 1
           | '\\' -> Buffer.add_char lx.buf '\\'; lx.pos <- lx.pos + 1
           | '/' -> Buffer.add_char lx.buf '/'; lx.pos <- lx.pos + 1
           | 'b' -> Buffer.add_char lx.buf '\b'; lx.pos <- lx.pos + 1
           | 'f' -> Buffer.add_char lx.buf '\012'; lx.pos <- lx.pos + 1
           | 'n' -> Buffer.add_char lx.buf '\n'; lx.pos <- lx.pos + 1
           | 'r' -> Buffer.add_char lx.buf '\r'; lx.pos <- lx.pos + 1
           | 't' -> Buffer.add_char lx.buf '\t'; lx.pos <- lx.pos + 1
           | 'u' ->
               lx.pos <- lx.pos + 1;
               let u = read_hex4 lx in
               if u >= 0xD800 && u <= 0xDBFF then begin
                 (* high surrogate: require a following \uDC00-\uDFFF *)
                 if lx.pos + 2 <= n && lx.src.[lx.pos] = '\\' && lx.src.[lx.pos + 1] = 'u'
                 then begin
                   lx.pos <- lx.pos + 2;
                   let lo = read_hex4 lx in
                   if lo >= 0xDC00 && lo <= 0xDFFF then
                     add_utf8 lx.buf (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00))
                   else error lx lx.pos "invalid low surrogate"
                 end
                 else error lx lx.pos "unpaired high surrogate"
               end
               else if u >= 0xDC00 && u <= 0xDFFF then
                 error lx lx.pos "unpaired low surrogate"
               else add_utf8 lx.buf u
           | c -> error lx lx.pos (Printf.sprintf "invalid escape '\\%c'" c));
          go ()
      | c when Char.code c < 0x20 ->
          error lx lx.pos "unescaped control character in string"
      | c ->
          Buffer.add_char lx.buf c;
          lx.pos <- lx.pos + 1;
          go ()
  in
  go ();
  Buffer.contents lx.buf

let read_number lx =
  let n = String.length lx.src in
  let start = lx.pos in
  if lx.pos < n && lx.src.[lx.pos] = '-' then lx.pos <- lx.pos + 1;
  while lx.pos < n && is_digit lx.src.[lx.pos] do lx.pos <- lx.pos + 1 done;
  if lx.pos < n && lx.src.[lx.pos] = '.' then begin
    lx.pos <- lx.pos + 1;
    while lx.pos < n && is_digit lx.src.[lx.pos] do lx.pos <- lx.pos + 1 done
  end;
  if lx.pos < n && (lx.src.[lx.pos] = 'e' || lx.src.[lx.pos] = 'E') then begin
    lx.pos <- lx.pos + 1;
    if lx.pos < n && (lx.src.[lx.pos] = '+' || lx.src.[lx.pos] = '-') then
      lx.pos <- lx.pos + 1;
    while lx.pos < n && is_digit lx.src.[lx.pos] do lx.pos <- lx.pos + 1 done
  end;
  let literal = String.sub lx.src start (lx.pos - start) in
  match Number.parse literal with
  | Ok parsed -> Number_tok parsed
  | Error msg -> error lx start msg

let lex_token lx =
  skip_ws lx;
  let start = lx.pos in
  let pos = position_at lx start in
  let tok =
    if lx.pos >= String.length lx.src then Eof
    else
      match lx.src.[lx.pos] with
      | '{' -> lx.pos <- lx.pos + 1; Lbrace
      | '}' -> lx.pos <- lx.pos + 1; Rbrace
      | '[' -> lx.pos <- lx.pos + 1; Lbracket
      | ']' -> lx.pos <- lx.pos + 1; Rbracket
      | ':' -> lx.pos <- lx.pos + 1; Colon
      | ',' -> lx.pos <- lx.pos + 1; Comma
      | 't' -> expect_keyword lx "true" True
      | 'f' -> expect_keyword lx "false" False
      | 'n' -> expect_keyword lx "null" Null_tok
      | '"' -> String_tok (read_string lx)
      | '-' | '0' .. '9' -> read_number lx
      | c -> error lx start (Printf.sprintf "unexpected character %C" c)
  in
  (tok, pos)

let next lx =
  match lx.lookahead with
  | Some t ->
      lx.lookahead <- None;
      t
  | None -> lex_token lx

let peek lx =
  match lx.lookahead with
  | Some t -> t
  | None ->
      let t = lex_token lx in
      lx.lookahead <- Some t;
      t
