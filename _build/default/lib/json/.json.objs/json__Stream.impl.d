lib/json/stream.ml: Format Lexer List Number Parser Printf String Value
