lib/json/lexer.ml: Buffer Char Number Printf String
