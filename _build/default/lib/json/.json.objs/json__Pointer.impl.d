lib/json/pointer.ml: Buffer Format List Printf String Value
