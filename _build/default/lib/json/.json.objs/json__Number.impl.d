lib/json/number.ml: Float Printf Result String
