lib/json/parser.mli: Lexer Value
