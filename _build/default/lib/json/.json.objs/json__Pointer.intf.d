lib/json/pointer.mli: Format Value
