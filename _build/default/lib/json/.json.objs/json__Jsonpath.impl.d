lib/json/jsonpath.ml: List Printf String Value
