lib/json/parser.ml: Hashtbl Lexer List Number Printf Value
