lib/json/number.mli:
