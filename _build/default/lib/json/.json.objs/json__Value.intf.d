lib/json/value.mli: Format
