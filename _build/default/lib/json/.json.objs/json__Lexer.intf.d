lib/json/lexer.mli: Number
