lib/json/value.ml: Bool Float Format Int List Printf String
