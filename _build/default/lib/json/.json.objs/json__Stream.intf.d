lib/json/stream.mli: Format Parser Value
