lib/json/jsonpath.mli: Value
