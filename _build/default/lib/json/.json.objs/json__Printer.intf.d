lib/json/printer.mli: Buffer Format Value
