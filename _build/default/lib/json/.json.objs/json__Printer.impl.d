lib/json/printer.ml: Buffer Char Format List Number Printf String Value
