(* Failure-injection / fuzz tests: every component must fail *cleanly*
   (Error results, never exceptions or hangs) on corrupted input. *)

let gen_value : Json.Value.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let scalar =
    oneof
      [ return Json.Value.Null;
        map (fun b -> Json.Value.Bool b) bool;
        map (fun n -> Json.Value.Int n) (int_range (-1000) 1000);
        map (fun f -> Json.Value.Float f) (float_range (-1e6) 1e6);
        map (fun s -> Json.Value.String s) (string_size ~gen:printable (int_range 0 10));
      ]
  in
  let key = string_size ~gen:(char_range 'a' 'z') (int_range 1 5) in
  sized @@ fix (fun self n ->
      if n <= 0 then scalar
      else
        frequency
          [ (3, scalar);
            (1, map (fun vs -> Json.Value.Array vs) (list_size (int_range 0 4) (self (n / 2))));
            (1,
             map
               (fun fields ->
                 let seen = Hashtbl.create 4 in
                 Json.Value.Object
                   (List.filter
                      (fun (k, _) ->
                        if Hashtbl.mem seen k then false
                        else (Hashtbl.add seen k (); true))
                      fields))
               (list_size (int_range 0 4) (pair key (self (n / 2)))));
          ])

(* corrupt a valid JSON text: mutate / delete / insert random bytes *)
let gen_corrupted : string QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* v = gen_value in
  let src = Json.Printer.to_string v in
  let* n_edits = int_range 1 4 in
  let* edits =
    list_size (return n_edits)
      (triple (int_range 0 (max 0 (String.length src - 1))) (int_range 0 2)
         (map Char.chr (int_range 0 255)))
  in
  return
    (List.fold_left
       (fun s (pos, kind, c) ->
         if String.length s = 0 then s
         else
           let pos = pos mod String.length s in
           match kind with
           | 0 -> (* mutate *)
               String.mapi (fun i ch -> if i = pos then c else ch) s
           | 1 -> (* delete *)
               String.sub s 0 pos ^ String.sub s (pos + 1) (String.length s - pos - 1)
           | _ -> (* insert *)
               String.sub s 0 pos ^ String.make 1 c ^ String.sub s pos (String.length s - pos))
       src edits)

let prop_parser_total =
  QCheck2.Test.make ~name:"parser never raises on corrupted input" ~count:1000
    gen_corrupted (fun src ->
      match Json.Parser.parse src with Ok _ | Error _ -> true)

let prop_stream_total =
  QCheck2.Test.make ~name:"stream reader never raises" ~count:1000 gen_corrupted
    (fun src ->
      let r = Json.Stream.reader src in
      let rec drain n =
        if n > 100000 then true (* would be a hang; bound it *)
        else
          match Json.Stream.read r with
          | Ok None -> true
          | Ok (Some _) -> drain (n + 1)
          | Error _ -> true
      in
      drain 0)

let prop_parse_many_total =
  QCheck2.Test.make ~name:"parse_many never raises" ~count:500 gen_corrupted
    (fun src -> match Json.Parser.parse_many src with Ok _ | Error _ -> true)

let prop_index_never_raises =
  QCheck2.Test.make ~name:"structural index never raises" ~count:500 gen_corrupted
    (fun src ->
      let idx = Fastjson.Structural_index.build src in
      ignore (Fastjson.Structural_index.colons idx ~level:1 ~lo:0 ~hi:(String.length src));
      true)

let prop_mison_total =
  QCheck2.Test.make ~name:"mison projection never raises" ~count:500 gen_corrupted
    (fun src ->
      let t = Fastjson.Mison.create { Fastjson.Mison.fields = [ "a"; "id" ] } in
      match Fastjson.Mison.parse_string t src with Ok _ | Error _ -> true)

let prop_fadjs_total =
  QCheck2.Test.make ~name:"fadjs decode never raises" ~count:500 gen_corrupted
    (fun src ->
      let d = Fastjson.Fadjs.create () in
      match Fastjson.Fadjs.decode d src with
      | Ok doc ->
          ignore (Fastjson.Fadjs.get doc "a");
          ignore (Fastjson.Fadjs.materialize doc);
          true
      | Error _ -> true)

let prop_schema_parse_total =
  QCheck2.Test.make ~name:"schema parser never raises on arbitrary JSON" ~count:500
    gen_value (fun v ->
      match Jsonschema.Parse.of_json v with Ok _ | Error _ -> true)

let prop_jsound_parse_total =
  QCheck2.Test.make ~name:"jsound parser never raises on arbitrary JSON" ~count:500
    gen_value (fun v -> match Jsound.parse v with Ok _ | Error _ -> true)

let prop_pointer_total =
  QCheck2.Test.make ~name:"pointer parse/get never raises" ~count:500
    QCheck2.Gen.(pair (string_size ~gen:printable (int_range 0 15)) gen_value)
    (fun (s, v) ->
      match Json.Pointer.parse s with
      | Ok p ->
          ignore (Json.Pointer.get p v);
          true
      | Error _ -> true)

let prop_query_parse_total =
  QCheck2.Test.make ~name:"query parser never raises" ~count:500
    QCheck2.Gen.(string_size ~gen:printable (int_range 0 40))
    (fun src -> match Query.Parse.pipeline src with Ok _ | Error _ -> true)

let prop_avro_decode_total =
  QCheck2.Test.make ~name:"avro decode never raises on garbage" ~count:500
    QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 40))
    (fun bytes ->
      let schema =
        Translate.Avro.of_jtype ~name:"r"
          (Jtype.Types.rec_
             [ Jtype.Types.field "a" Jtype.Types.int;
               Jtype.Types.field ~optional:true "b"
                 (Jtype.Types.arr Jtype.Types.str) ])
      in
      match Translate.Avro.decode schema bytes with Ok _ | Error _ -> true)

let prop_columnar_decode_total =
  QCheck2.Test.make ~name:"columnar decode never raises on garbage" ~count:500
    QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 40))
    (fun bytes ->
      let schema = Inference.Spark.infer [ Json.Parser.parse_exn {|{"a": 1, "xs": ["s"]}|} ] in
      match Translate.Columnar.decode ~schema bytes with Ok _ | Error _ -> true)

(* round-trip under valid inputs is exercised elsewhere; here make sure the
   validator is total on (schema, instance) pairs drawn independently *)
let prop_validate_total =
  QCheck2.Test.make ~name:"validator total on arbitrary schema/instance pairs"
    ~count:500
    QCheck2.Gen.(pair gen_value gen_value)
    (fun (schema, instance) ->
      match Jsonschema.Validate.validate ~root:schema instance with
      | Ok () | Error _ -> true)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "robustness"
    [ ("fuzz",
       q [ prop_parser_total; prop_stream_total; prop_parse_many_total;
           prop_index_never_raises; prop_mison_total; prop_fadjs_total;
           prop_schema_parse_total; prop_jsound_parse_total; prop_pointer_total;
           prop_query_parse_total; prop_avro_decode_total;
           prop_columnar_decode_total; prop_validate_total ]) ]
