(* Tests for the type algebra: typing, canonical forms, kind-/label-
   parametric merging, membership, subtyping, printers, counting types. *)

open Jtype

let parse = Json.Parser.parse_exn
let ty = Alcotest.testable Types.pp Types.equal
let value' = Alcotest.testable Json.Printer.pp Json.Value.equal
let of_src src = Types.of_value (parse src)
let infer ~equiv srcs = Merge.merge_all ~equiv (List.map of_src srcs)

(* --- typing of single values ----------------------------------------- *)

let test_of_value () =
  Alcotest.check ty "null" Types.null (of_src "null");
  Alcotest.check ty "bool" Types.bool (of_src "true");
  Alcotest.check ty "int" Types.int (of_src "42");
  Alcotest.check ty "num" Types.num (of_src "4.5");
  Alcotest.check ty "str" Types.str (of_src {|"x"|});
  Alcotest.check ty "empty array" (Types.arr Types.bot) (of_src "[]");
  Alcotest.check ty "homog array" (Types.arr Types.int) (of_src "[1,2,3]");
  Alcotest.check ty "mixed array"
    (Types.arr (Types.union [ Types.int; Types.str ]))
    (of_src {|[1, "x", 2]|});
  Alcotest.check ty "record"
    (Types.rec_ [ Types.field "a" Types.int; Types.field "b" Types.str ])
    (of_src {|{"b": "x", "a": 1}|})

let test_union_canonical () =
  (* flattening, dedup, Bot identity, Any absorption, singleton collapse *)
  Alcotest.check ty "flatten"
    (Types.union [ Types.int; Types.str; Types.null ])
    (Types.union [ Types.union [ Types.int; Types.str ]; Types.null ]);
  Alcotest.check ty "dedup" Types.int (Types.union [ Types.int; Types.int ]);
  Alcotest.check ty "bot identity" Types.str (Types.union [ Types.bot; Types.str ]);
  Alcotest.check ty "any absorbs" Types.any (Types.union [ Types.int; Types.any ]);
  Alcotest.check ty "empty union" Types.bot (Types.union []);
  Alcotest.check ty "order irrelevant"
    (Types.union [ Types.int; Types.str ])
    (Types.union [ Types.str; Types.int ])

let test_rec_constructor () =
  Alcotest.check_raises "duplicate fields rejected"
    (Invalid_argument "Jtype.rec_: duplicate field \"a\"") (fun () ->
      ignore (Types.rec_ [ Types.field "a" Types.int; Types.field "a" Types.str ]))

(* --- merge: kind equivalence ------------------------------------------ *)

let test_merge_kind_scalars () =
  let m = Merge.merge ~equiv:Merge.Kind in
  Alcotest.check ty "int+int" Types.int (m Types.int Types.int);
  Alcotest.check ty "int+num" Types.num (m Types.int Types.num);
  Alcotest.check ty "int+str" (Types.union [ Types.int; Types.str ]) (m Types.int Types.str);
  Alcotest.check ty "null+bool" (Types.union [ Types.null; Types.bool ])
    (m Types.null Types.bool);
  Alcotest.check ty "any absorbs" Types.any (m Types.any Types.int)

let test_merge_kind_records () =
  (* the motivating example: optional fields appear *)
  let t = infer ~equiv:Merge.Kind [ {|{"a": 1, "b": "x"}|}; {|{"a": 2, "c": true}|} ] in
  Alcotest.check ty "fieldwise merge"
    (Types.rec_
       [ Types.field "a" Types.int;
         Types.field ~optional:true "b" Types.str;
         Types.field ~optional:true "c" Types.bool ])
    t;
  (* field type conflicts become unions inside the field *)
  let t2 = infer ~equiv:Merge.Kind [ {|{"a": 1}|}; {|{"a": "x"}|} ] in
  Alcotest.check ty "field type union"
    (Types.rec_ [ Types.field "a" (Types.union [ Types.int; Types.str ]) ])
    t2

let test_merge_kind_arrays () =
  let t = infer ~equiv:Merge.Kind [ "[1,2]"; {|["a"]|}; "[]" ] in
  Alcotest.check ty "arrays fuse elementwise"
    (Types.arr (Types.union [ Types.int; Types.str ]))
    t

let test_merge_kind_nested () =
  let t =
    infer ~equiv:Merge.Kind
      [ {|{"user": {"name": "ann", "age": 3}}|};
        {|{"user": {"name": "bob", "email": "e"}}|} ]
  in
  Alcotest.check ty "nested records"
    (Types.rec_
       [ Types.field "user"
           (Types.rec_
              [ Types.field ~optional:true "age" Types.int;
                Types.field ~optional:true "email" Types.str;
                Types.field "name" Types.str ]) ])
    t

(* --- merge: label equivalence ----------------------------------------- *)

let test_merge_label_keeps_correlation () =
  (* records with different label sets stay separate *)
  let docs = [ {|{"a": 1, "b": "x"}|}; {|{"a": 2, "c": true}|} ] in
  let t = infer ~equiv:Merge.Label docs in
  Alcotest.check ty "two branches"
    (Types.union
       [ Types.rec_ [ Types.field "a" Types.int; Types.field "b" Types.str ];
         Types.rec_ [ Types.field "a" Types.int; Types.field "c" Types.bool ] ])
    t;
  (* same labels fuse *)
  let t2 = infer ~equiv:Merge.Label [ {|{"a": 1}|}; {|{"a": "x"}|} ] in
  Alcotest.check ty "same labels fuse"
    (Types.rec_ [ Types.field "a" (Types.union [ Types.int; Types.str ]) ])
    t2

let test_label_more_precise_than_kind () =
  (* the correlation example: b occurs exactly when kind = "b" *)
  let docs =
    [ {|{"kind": "a", "a_payload": 1}|}; {|{"kind": "b", "b_payload": "x"}|} ]
  in
  let k = infer ~equiv:Merge.Kind docs in
  let l = infer ~equiv:Merge.Label docs in
  (* kind-merged type accepts a mixed object that label-merged rejects *)
  let confused = parse {|{"kind": "a", "a_payload": 1, "b_payload": "x"}|} in
  Alcotest.(check bool) "kind accepts confusion" true (Typecheck.member confused k);
  Alcotest.(check bool) "label rejects confusion" false (Typecheck.member confused l);
  (* both accept the original documents *)
  List.iter
    (fun src ->
      Alcotest.(check bool) "kind ok" true (Typecheck.member (parse src) k);
      Alcotest.(check bool) "label ok" true (Typecheck.member (parse src) l))
    docs;
  Alcotest.(check bool) "label <= kind" true (Typecheck.subtype l k)

(* --- membership / subtyping ------------------------------------------- *)

let test_member () =
  let t =
    Types.rec_
      [ Types.field "id" Types.int;
        Types.field ~optional:true "tags" (Types.arr Types.str) ]
  in
  Alcotest.(check bool) "full" true (Typecheck.member (parse {|{"id": 1, "tags": ["a"]}|}) t);
  Alcotest.(check bool) "optional absent" true (Typecheck.member (parse {|{"id": 1}|}) t);
  Alcotest.(check bool) "missing required" false (Typecheck.member (parse {|{"tags": []}|}) t);
  Alcotest.(check bool) "wrong field type" false
    (Typecheck.member (parse {|{"id": "x"}|}) t);
  Alcotest.(check bool) "closed record" false
    (Typecheck.member (parse {|{"id": 1, "extra": 2}|}) t);
  Alcotest.(check bool) "int member of num" true (Typecheck.member (parse "1") Types.num);
  Alcotest.(check bool) "float not member of int" false
    (Typecheck.member (parse "1.5") Types.int);
  Alcotest.(check bool) "anything member of any" true
    (Typecheck.member (parse {|[{"x": [1]}]|}) Types.any);
  Alcotest.(check bool) "nothing member of bot" false
    (Typecheck.member (parse "null") Types.bot)

let test_check_mismatch_location () =
  let t = Types.rec_ [ Types.field "a" (Types.arr Types.int) ] in
  match Typecheck.check (parse {|{"a": [1, "x"]}|}) t with
  | Ok () -> Alcotest.fail "should mismatch"
  | Error m ->
      Alcotest.(check string) "pointer" "/a/1" (Json.Pointer.to_string m.Typecheck.at)

let test_subtype () =
  let sub = Typecheck.subtype in
  Alcotest.(check bool) "bot <= int" true (sub Types.bot Types.int);
  Alcotest.(check bool) "int <= any" true (sub Types.int Types.any);
  Alcotest.(check bool) "int <= num" true (sub Types.int Types.num);
  Alcotest.(check bool) "num !<= int" false (sub Types.num Types.int);
  Alcotest.(check bool) "int <= int+str" true
    (sub Types.int (Types.union [ Types.int; Types.str ]));
  Alcotest.(check bool) "int+str !<= int" false
    (sub (Types.union [ Types.int; Types.str ]) Types.int);
  Alcotest.(check bool) "arr covariant" true
    (sub (Types.arr Types.int) (Types.arr Types.num));
  (* mandatory field is a subtype of optional field *)
  Alcotest.(check bool) "mandatory <= optional" true
    (sub
       (Types.rec_ [ Types.field "a" Types.int ])
       (Types.rec_ [ Types.field ~optional:true "a" Types.int ]));
  Alcotest.(check bool) "optional !<= mandatory" false
    (sub
       (Types.rec_ [ Types.field ~optional:true "a" Types.int ])
       (Types.rec_ [ Types.field "a" Types.int ]));
  (* closed records: extra fields are not allowed by the supertype *)
  Alcotest.(check bool) "wider record !<= narrower" false
    (sub
       (Types.rec_ [ Types.field "a" Types.int; Types.field "b" Types.str ])
       (Types.rec_ [ Types.field "a" Types.int ]));
  Alcotest.(check bool) "narrower <= with-optional" true
    (sub
       (Types.rec_ [ Types.field "a" Types.int ])
       (Types.rec_ [ Types.field "a" Types.int; Types.field ~optional:true "b" Types.str ]))

(* --- printers ---------------------------------------------------------- *)

let test_paper_syntax () =
  let t = infer ~equiv:Merge.Kind [ {|{"a": 1, "b": "x"}|}; {|{"a": 2}|}; "null" ] in
  Alcotest.(check string) "paper syntax" "Null + {a: Int, b?: Str}" (Types.to_string t)

let test_typescript () =
  let t =
    Types.rec_
      [ Types.field "id" Types.int;
        Types.field ~optional:true "name" Types.str;
        Types.field "tags" (Types.arr (Types.union [ Types.int; Types.str ])) ]
  in
  Alcotest.(check string) "inline"
    "{ id: number; name?: string; tags: (number | string)[] }"
    (Typescript.type_expr t);
  let decl = Typescript.declaration ~name:"tweet" t in
  Alcotest.(check bool) "interface emitted" true
    (String.length decl > 0
    &&
    let re = Re.compile (Re.str "interface Tweet {") in
    Re.execp re decl);
  (* non-identifier keys are quoted *)
  Alcotest.(check string) "quoted key"
    {|{ "strange-key": number }|}
    (Typescript.type_expr (Types.rec_ [ Types.field "strange-key" Types.int ]))

let test_typescript_nested_lifting () =
  let t =
    Types.rec_
      [ Types.field "user" (Types.rec_ [ Types.field "name" Types.str ]) ]
  in
  let decl = Typescript.declaration ~name:"post" t in
  let has s = Re.execp (Re.compile (Re.str s)) decl in
  Alcotest.(check bool) "nested interface" true (has "interface PostUser {");
  Alcotest.(check bool) "reference to it" true (has "user: PostUser;")

let test_swift () =
  let t =
    Types.rec_
      [ Types.field "id" Types.int;
        Types.field ~optional:true "bio" Types.str ]
  in
  let decl = Swift.declaration ~name:"user" t in
  let has s = Re.execp (Re.compile (Re.str s)) decl in
  Alcotest.(check bool) "struct" true (has "struct User: Codable {");
  Alcotest.(check bool) "field" true (has "let id: Int");
  Alcotest.(check bool) "optional" true (has "let bio: String?")

let test_swift_union_enum () =
  let t = Types.union [ Types.int; Types.str ] in
  let decl = Swift.declaration ~name:"value" t in
  let has s = Re.execp (Re.compile (Re.str s)) decl in
  Alcotest.(check bool) "enum" true (has "enum Value: Codable {");
  Alcotest.(check bool) "int case" true (has "case int(Int)");
  Alcotest.(check bool) "string case" true (has "case string(String)");
  Alcotest.(check bool) "decoder" true (has "init(from decoder: Decoder)");
  (* null + T folds into optionality *)
  let t2 = Types.union [ Types.null; Types.str ] in
  Alcotest.(check string) "nullable alias" "typealias Nick = String?"
    (Swift.declaration ~name:"nick" t2)

(* --- interop ----------------------------------------------------------- *)

let test_to_schema () =
  let t =
    Types.rec_
      [ Types.field "id" Types.int; Types.field ~optional:true "name" Types.str ]
  in
  let root = Interop.to_schema_json t in
  Alcotest.(check bool) "accepts member" true
    (Jsonschema.Validate.is_valid ~root (parse {|{"id": 1, "name": "x"}|}));
  Alcotest.(check bool) "optional omitted ok" true
    (Jsonschema.Validate.is_valid ~root (parse {|{"id": 1}|}));
  Alcotest.(check bool) "rejects missing" false
    (Jsonschema.Validate.is_valid ~root (parse {|{"name": "x"}|}));
  Alcotest.(check bool) "rejects extra (closed)" false
    (Jsonschema.Validate.is_valid ~root (parse {|{"id": 1, "zzz": 0}|}))

let test_of_schema () =
  let s =
    Jsonschema.Parse.of_string_exn
      {|{"type": "object",
         "properties": {"id": {"type": "integer"},
                        "vals": {"type": "array", "items": {"type": "number"}}},
         "required": ["id"]}|}
  in
  Alcotest.check ty "roundtrip structure"
    (Types.rec_
       [ Types.field "id" Types.int;
         Types.field ~optional:true "vals" (Types.arr Types.num) ])
    (Interop.of_schema s)

let test_schema_type_galois () =
  (* to_schema then of_schema loses nothing on the algebra's fragment *)
  let types =
    [ Types.int;
      Types.arr Types.str;
      Types.union [ Types.null; Types.bool ];
      Types.rec_ [ Types.field "a" Types.int; Types.field ~optional:true "b" Types.str ] ]
  in
  List.iter
    (fun t -> Alcotest.check ty "of_schema (to_schema t) = t" t
        (Interop.of_schema (Interop.to_schema t)))
    types

(* --- counting types ---------------------------------------------------- *)

let test_counting_basic () =
  let docs = [ {|{"a": 1, "b": "x"}|}; {|{"a": 2}|}; {|{"a": 3, "b": "y"}|} ] in
  let c = Counting.infer ~equiv:Merge.Kind (List.map parse docs) in
  Alcotest.(check int) "count" 3 (Counting.count c);
  Alcotest.(check string) "printed"
    "{a(3): Int(3), b(2): Str(2)}(3)"
    (Counting.to_string c);
  (match Counting.field_probability c [ "b" ] with
   | Some p -> Alcotest.(check (float 1e-9)) "P(b)" (2.0 /. 3.0) p
   | None -> Alcotest.fail "b should occur");
  Alcotest.(check (option (float 1e-9))) "P(zzz)" None
    (Counting.field_probability c [ "zzz" ])

let test_counting_erase () =
  let docs = [ {|{"a": 1, "b": "x"}|}; {|{"a": 2}|} ] in
  let vs = List.map parse docs in
  let erased = Counting.erase (Counting.infer ~equiv:Merge.Kind vs) in
  let plain = Merge.merge_all ~equiv:Merge.Kind (List.map Types.of_value vs) in
  Alcotest.check ty "erase commutes with plain inference" plain erased

let test_counting_nested_probability () =
  let docs =
    [ {|{"user": {"name": "a", "verified": true}}|};
      {|{"user": {"name": "b"}}|};
      {|{"user": {"name": "c"}}|};
      {|{"user": {"name": "d", "verified": false}}|} ]
  in
  let c = Counting.infer ~equiv:Merge.Kind (List.map parse docs) in
  match Counting.field_probability c [ "user"; "verified" ] with
  | Some p -> Alcotest.(check (float 1e-9)) "P(user.verified)" 0.5 p
  | None -> Alcotest.fail "path should occur"


let test_counting_to_json () =
  let docs = [ {|{"a": 1}|}; {|{"a": 2, "b": "x"}|} ] in
  let c = Counting.infer ~equiv:Merge.Kind (List.map parse docs) in
  let j = Counting.to_json c in
  Alcotest.(check (option value')) "kind" (Some (Json.Value.String "record"))
    (Json.Value.member "kind" j);
  Alcotest.(check (option value')) "count" (Some (Json.Value.Int 2))
    (Json.Value.member "count" j);
  match Json.Pointer.get (Json.Pointer.parse_exn "/fields/b/occurs") j with
  | Some (Json.Value.Int 1) -> ()
  | other ->
      Alcotest.fail
        ("b occurs: "
        ^ match other with Some v -> Json.Printer.to_string v | None -> "missing")

(* --- properties -------------------------------------------------------- *)

let gen_value = QCheck2.Gen.(
  let scalar =
    oneof
      [ return Json.Value.Null;
        map (fun b -> Json.Value.Bool b) bool;
        map (fun n -> Json.Value.Int n) (int_range (-100) 100);
        map (fun f -> Json.Value.Float f) (float_range (-100.) 100.);
        map (fun s -> Json.Value.String s) (string_size ~gen:(char_range 'a' 'e') (int_range 0 3));
      ]
  in
  let key = string_size ~gen:(char_range 'a' 'd') (return 1) in
  sized @@ fix (fun self n ->
      if n <= 0 then scalar
      else
        frequency
          [ (3, scalar);
            (1, map (fun vs -> Json.Value.Array vs) (list_size (int_range 0 3) (self (n / 2))));
            (1,
             map
               (fun fields ->
                 let seen = Hashtbl.create 4 in
                 Json.Value.Object
                   (List.filter
                      (fun (k, _) ->
                        if Hashtbl.mem seen k then false
                        else (Hashtbl.add seen k (); true))
                      fields))
               (list_size (int_range 0 3) (pair key (self (n / 2)))));
          ]))

let gen_equiv = QCheck2.Gen.oneofl [ Merge.Kind; Merge.Label ]

let prop_sound =
  (* soundness of inference: every input value inhabits the merged type *)
  QCheck2.Test.make ~name:"inference is sound" ~count:300
    QCheck2.Gen.(pair gen_equiv (list_size (int_range 1 8) gen_value))
    (fun (equiv, vs) ->
      let t = Merge.merge_all ~equiv (List.map Types.of_value vs) in
      List.for_all (fun v -> Typecheck.member v t) vs)

let prop_merge_commutative =
  QCheck2.Test.make ~name:"merge commutative" ~count:300
    QCheck2.Gen.(triple gen_equiv gen_value gen_value)
    (fun (equiv, a, b) ->
      let ta = Types.of_value a and tb = Types.of_value b in
      Types.equal (Merge.merge ~equiv ta tb) (Merge.merge ~equiv tb ta))

let prop_merge_associative =
  QCheck2.Test.make ~name:"merge associative" ~count:300
    QCheck2.Gen.(pair gen_equiv (triple gen_value gen_value gen_value))
    (fun (equiv, (a, b, c)) ->
      let ta = Types.of_value a and tb = Types.of_value b and tc = Types.of_value c in
      Types.equal
        (Merge.merge ~equiv (Merge.merge ~equiv ta tb) tc)
        (Merge.merge ~equiv ta (Merge.merge ~equiv tb tc)))

let prop_merge_idempotent =
  QCheck2.Test.make ~name:"merge idempotent" ~count:300
    QCheck2.Gen.(pair gen_equiv gen_value)
    (fun (equiv, v) ->
      let t = Types.of_value v in
      Types.equal (Merge.merge ~equiv t t) (Merge.simplify ~equiv t))

let prop_merge_upper_bound =
  QCheck2.Test.make ~name:"merge is an upper bound" ~count:300
    QCheck2.Gen.(pair gen_equiv (pair gen_value gen_value))
    (fun (equiv, (a, b)) ->
      let ta = Types.of_value a and tb = Types.of_value b in
      let m = Merge.merge ~equiv ta tb in
      Typecheck.member a m && Typecheck.member b m)

let prop_subtype_sound_on_members =
  QCheck2.Test.make ~name:"subtype respects membership" ~count:300
    QCheck2.Gen.(triple gen_value gen_value gen_value)
    (fun (v, a, b) ->
      let ta = Types.of_value a in
      let tb = Merge.merge ~equiv:Merge.Kind ta (Types.of_value b) in
      (* ta <= tb by construction...if subtype says so, members must agree *)
      (not (Typecheck.subtype ta tb))
      || (not (Typecheck.member v ta))
      || Typecheck.member v tb)

let prop_counting_erase_coherent =
  QCheck2.Test.make ~name:"counting erase = plain inference" ~count:200
    QCheck2.Gen.(pair gen_equiv (list_size (int_range 1 6) gen_value))
    (fun (equiv, vs) ->
      Types.equal
        (Counting.erase (Counting.infer ~equiv vs))
        (Merge.merge_all ~equiv (List.map Types.of_value vs)))

let prop_counting_total =
  QCheck2.Test.make ~name:"counting count = #values" ~count:200
    QCheck2.Gen.(pair gen_equiv (list_size (int_range 0 10) gen_value))
    (fun (equiv, vs) ->
      Counting.count (Counting.merge_all ~equiv (List.map (Counting.of_value ~equiv) vs))
      = List.length vs)

let prop_to_schema_sound =
  QCheck2.Test.make ~name:"to_schema accepts the values" ~count:200
    QCheck2.Gen.(list_size (int_range 1 6) gen_value)
    (fun vs ->
      let t = Merge.merge_all ~equiv:Merge.Kind (List.map Types.of_value vs) in
      let root = Interop.to_schema_json t in
      List.for_all (fun v -> Jsonschema.Validate.is_valid ~root v) vs)


(* --- containment ------------------------------------------------------- *)

let test_containment_included () =
  let s = Json.Parser.parse_exn in
  let check a b = Containment.check (s a) (s b) in
  (match check {|{"type": "integer"}|} {|{"type": "number"}|} with
   | Containment.Included -> ()
   | v -> Alcotest.fail ("int <= num: " ^ Containment.verdict_to_string v));
  (match check {|{"type": "integer"}|} {|{"anyOf": [{"type": "integer"}, {"type": "string"}]}|} with
   | Containment.Included -> ()
   | v -> Alcotest.fail ("int <= int|str: " ^ Containment.verdict_to_string v));
  (* a record with a mandatory field is included in one where it is optional *)
  match
    check
      {|{"type": "object", "properties": {"a": {"type": "integer"}},
         "required": ["a"], "additionalProperties": false}|}
      {|{"type": "object", "properties": {"a": {"type": "integer"}},
         "additionalProperties": false}|}
  with
  | Containment.Included -> ()
  | v -> Alcotest.fail ("record width: " ^ Containment.verdict_to_string v)

let test_containment_refuted () =
  let s = Json.Parser.parse_exn in
  (match Containment.check (s {|{"type": "number"}|}) (s {|{"type": "integer"}|}) with
   | Containment.Not_included cex ->
       (* the counterexample really does separate the schemas *)
       Alcotest.(check bool) "cex valid for sub" true
         (Jsonschema.Validate.is_valid ~root:(s {|{"type": "number"}|}) cex);
       Alcotest.(check bool) "cex invalid for super" false
         (Jsonschema.Validate.is_valid ~root:(s {|{"type": "integer"}|}) cex)
   | v -> Alcotest.fail ("num !<= int: " ^ Containment.verdict_to_string v));
  (* refutation works outside the structural fragment too *)
  match
    Containment.check
      (s {|{"type": "integer", "minimum": 0, "maximum": 100}|})
      (s {|{"type": "integer", "minimum": 50}|})
  with
  | Containment.Not_included _ -> ()
  | v -> Alcotest.fail ("bounds: " ^ Containment.verdict_to_string v)

let test_containment_unknown_outside_fragment () =
  let s = Json.Parser.parse_exn in
  (* true containment but with keywords outside the fragment: Unknown, not
     a wrong answer *)
  match
    Containment.check
      (s {|{"type": "integer", "minimum": 5}|})
      (s {|{"type": "integer", "minimum": 0}|})
  with
  | Containment.Unknown | Containment.Included -> ()
  | Containment.Not_included cex ->
      Alcotest.fail
        ("must not produce a false counterexample: " ^ Json.Printer.to_string cex)

let test_containment_equivalent () =
  let s = Json.Parser.parse_exn in
  match
    Containment.equivalent
      (s {|{"anyOf": [{"type": "integer"}, {"type": "string"}]}|})
      (s {|{"anyOf": [{"type": "string"}, {"type": "integer"}]}|})
  with
  | Containment.Included -> ()
  | v -> Alcotest.fail ("union order: " ^ Containment.verdict_to_string v)

let test_satisfiable () =
  let s = Json.Parser.parse_exn in
  (match Containment.satisfiable (s {|{"type": "integer", "minimum": 3, "maximum": 5}|}) with
   | Containment.Satisfiable w ->
       Alcotest.(check bool) "witness valid" true
         (Jsonschema.Validate.is_valid
            ~root:(s {|{"type": "integer", "minimum": 3, "maximum": 5}|}) w)
   | Containment.Maybe_unsatisfiable -> Alcotest.fail "should find a witness");
  match Containment.satisfiable (s "false") with
  | Containment.Maybe_unsatisfiable -> ()
  | Containment.Satisfiable _ -> Alcotest.fail "false has no instances"

(* property: check never returns a wrong Included on the fragment, tested
   by sampling sub instances and validating against super *)
let prop_containment_included_is_sound =
  QCheck2.Test.make ~name:"Included implies instance-level inclusion" ~count:60
    QCheck2.Gen.(pair (list_size (int_range 1 5) gen_value) (list_size (int_range 1 5) gen_value))
    (fun (va, vb) ->
      (* build two fragment schemas from inferred types *)
      let ta = Merge.merge_all ~equiv:Merge.Kind (List.map Types.of_value va) in
      let tb = Merge.merge_all ~equiv:Merge.Kind (List.map Types.of_value (va @ vb)) in
      let sa = Interop.to_schema_json ta and sb = Interop.to_schema_json tb in
      match Containment.check ~samples:30 sa sb with
      | Containment.Included ->
          (* every sampled instance of sa must satisfy sb *)
          let st = Jsonschema.Generate.rng ~seed:7 in
          List.for_all
            (fun _ ->
              match Jsonschema.Generate.generate_valid st ~root:sa with
              | Some v -> Jsonschema.Validate.is_valid ~root:sb v
              | None -> true)
            (List.init 20 Fun.id)
      | Containment.Not_included cex ->
          Jsonschema.Validate.is_valid ~root:sa cex
          && not (Jsonschema.Validate.is_valid ~root:sb cex)
      | Containment.Unknown -> true)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "jtype"
    [ ("typing",
       [ Alcotest.test_case "of_value" `Quick test_of_value;
         Alcotest.test_case "union canonical form" `Quick test_union_canonical;
         Alcotest.test_case "rec_ validation" `Quick test_rec_constructor ]);
      ("merge-kind",
       [ Alcotest.test_case "scalars" `Quick test_merge_kind_scalars;
         Alcotest.test_case "records" `Quick test_merge_kind_records;
         Alcotest.test_case "arrays" `Quick test_merge_kind_arrays;
         Alcotest.test_case "nested" `Quick test_merge_kind_nested ]);
      ("merge-label",
       [ Alcotest.test_case "correlation kept" `Quick test_merge_label_keeps_correlation;
         Alcotest.test_case "precision vs kind" `Quick test_label_more_precise_than_kind ]);
      ("typecheck",
       [ Alcotest.test_case "member" `Quick test_member;
         Alcotest.test_case "mismatch location" `Quick test_check_mismatch_location;
         Alcotest.test_case "subtype" `Quick test_subtype ]);
      ("printers",
       [ Alcotest.test_case "paper syntax" `Quick test_paper_syntax;
         Alcotest.test_case "typescript" `Quick test_typescript;
         Alcotest.test_case "typescript lifting" `Quick test_typescript_nested_lifting;
         Alcotest.test_case "swift struct" `Quick test_swift;
         Alcotest.test_case "swift union enum" `Quick test_swift_union_enum ]);
      ("interop",
       [ Alcotest.test_case "to_schema" `Quick test_to_schema;
         Alcotest.test_case "of_schema" `Quick test_of_schema;
         Alcotest.test_case "galois roundtrip" `Quick test_schema_type_galois ]);
      ("containment",
       [ Alcotest.test_case "included" `Quick test_containment_included;
         Alcotest.test_case "refuted" `Quick test_containment_refuted;
         Alcotest.test_case "unknown outside fragment" `Quick test_containment_unknown_outside_fragment;
         Alcotest.test_case "equivalence" `Quick test_containment_equivalent;
         Alcotest.test_case "satisfiability" `Quick test_satisfiable ]);
      ("counting",
       [ Alcotest.test_case "basics" `Quick test_counting_basic;
         Alcotest.test_case "erase" `Quick test_counting_erase;
         Alcotest.test_case "nested probability" `Quick test_counting_nested_probability;
         Alcotest.test_case "to_json" `Quick test_counting_to_json ]);
      ("properties",
       q [ prop_sound; prop_merge_commutative; prop_merge_associative;
           prop_merge_idempotent; prop_merge_upper_bound;
           prop_subtype_sound_on_members; prop_counting_erase_coherent;
           prop_counting_total; prop_to_schema_sound;
           prop_containment_included_is_sound ]);
    ]
