(* Tests for the Jaql-style query pipeline: evaluation, parsing, and —
   the point of the exercise — sound static output-schema inference. *)

let parse = Json.Parser.parse_exn
let value = Alcotest.testable Json.Printer.pp Json.Value.equal
let ty = Alcotest.testable Jtype.Types.pp Jtype.Types.equal

let docs srcs = List.map parse srcs

let run q srcs = Query.Eval.run (Query.Parse.pipeline_exn q) (docs srcs)

let check_run name q input expected =
  Alcotest.(check (list value)) name (docs expected) (run q input)

(* --- evaluation -------------------------------------------------------- *)

let people =
  [ {|{"name": "ann", "age": 31, "tags": ["admin", "dev"]}|};
    {|{"name": "bob", "age": 17, "tags": []}|};
    {|{"name": "cho", "age": 46, "tags": ["dev"]}|} ]

let test_filter () =
  check_run "age filter" {|filter $.age > 18|} people
    [ {|{"name": "ann", "age": 31, "tags": ["admin", "dev"]}|};
      {|{"name": "cho", "age": 46, "tags": ["dev"]}|} ];
  check_run "conjunction" {|filter $.age > 18 and $.name != "cho"|} people
    [ {|{"name": "ann", "age": 31, "tags": ["admin", "dev"]}|} ];
  check_run "missing field is null, comparison false" {|filter $.salary > 0|} people []

let test_transform () =
  check_run "projection" {|transform {who: $.name, next: $.age + 1}|} people
    [ {|{"who": "ann", "next": 32}|}; {|{"who": "bob", "next": 18}|};
      {|{"who": "cho", "next": 47}|} ];
  check_run "nested access" {|transform $.tags[0]|} people
    [ {|"admin"|}; "null"; {|"dev"|} ]

let test_expand () =
  check_run "expand field" {|expand tags|} people
    [ {|"admin"|}; {|"dev"|}; {|"dev"|} ];
  check_run "expand root arrays" {|transform $.tags | expand|} people
    [ {|"admin"|}; {|"dev"|}; {|"dev"|} ]

let test_group () =
  let sales =
    [ {|{"region": "eu", "amount": 10}|}; {|{"region": "us", "amount": 20}|};
      {|{"region": "eu", "amount": 5}|} ]
  in
  check_run "group with aggregates"
    {|group by $.region into {n: count, total: sum $.amount, peak: max $.amount}|}
    sales
    [ {|{"key": "eu", "n": 2, "total": 15, "peak": 10}|};
      {|{"key": "us", "n": 1, "total": 20, "peak": 20}|} ];
  check_run "avg is float" {|group by true into {m: avg $.amount}|} sales
    [ {|{"key": true, "m": 11.666666666666666}|} ]

let test_sort_top () =
  check_run "sort desc + top" {|sort by $.age desc | top 2|} people
    [ {|{"name": "cho", "age": 46, "tags": ["dev"]}|};
      {|{"name": "ann", "age": 31, "tags": ["admin", "dev"]}|} ]

let test_null_semantics () =
  check_run "arith on missing -> null" {|transform $.nope + 1|} [ "{}" ] [ "null" ];
  check_run "div by zero -> null" {|transform 1 / 0|} [ "{}" ] [ "null" ];
  check_run "isnull" {|filter isnull $.nope|} [ {|{"a": 1}|} ] [ {|{"a": 1}|} ];
  check_run "field of scalar -> null" {|transform $.a.b|} [ {|{"a": 3}|} ] [ "null" ];
  check_run "int arithmetic stays int" {|transform 2 * 3 + 1|} [ "{}" ] [ "7" ];
  check_run "mixed arithmetic is float" {|transform 2 * 3.5|} [ "{}" ] [ "7.0" ]

(* --- parser ------------------------------------------------------------- *)

let test_parse_roundtrip () =
  let queries =
    [ "filter $.age > 18";
      "transform {who: $.name, next: ($.age + 1)}";
      "expand tags";
      "expand";
      "group by $.region into {n: count, total: sum $.amount}";
      "sort by $.age desc | top 2";
      {|filter ($.a == "x") or not $.b | transform [$.a, $.b, -1]|};
      "transform $.xs[2].y" ]
  in
  List.iter
    (fun q ->
      let p = Query.Parse.pipeline_exn q in
      let printed = Query.Ast.to_string p in
      match Query.Parse.pipeline printed with
      | Ok p2 ->
          Alcotest.(check string) ("print . parse fixpoint: " ^ q) printed
            (Query.Ast.to_string p2)
      | Error m -> Alcotest.fail (printed ^ ": " ^ m))
    queries

let test_parse_errors () =
  List.iter
    (fun q ->
      match Query.Parse.pipeline q with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (q ^ " should not parse"))
    [ ""; "fliter $.a"; "filter"; "group $.a into {n: count}"; "top x";
      "filter $.a >< 1"; "transform {a 1}"; "filter $.a | | top 1";
      "transform $.xs[$.i]" ]

let test_negative_numbers () =
  check_run "negative literal" {|filter $.t > -5|} [ {|{"t": 0}|} ] [ {|{"t": 0}|} ];
  check_run "binary minus" {|transform $.t - 1|} [ {|{"t": 0}|} ] [ "-1" ]

(* --- static typing ------------------------------------------------------- *)

let input_type srcs =
  Jtype.Merge.merge_all ~equiv:Jtype.Merge.Kind
    (List.map (fun s -> Jtype.Types.of_value (parse s)) srcs)

let test_typing_basics () =
  let t = input_type people in
  let out q = Query.Typing.type_pipeline t (Query.Parse.pipeline_exn q) in
  Alcotest.check ty "filter keeps type" t (out "filter $.age > 18");
  Alcotest.check ty "projection type"
    (Jtype.Types.rec_
       [ Jtype.Types.field "next" Jtype.Types.int;
         Jtype.Types.field "who" Jtype.Types.str ])
    (out "transform {who: $.name, next: $.age + 1}");
  Alcotest.check ty "expand element type" Jtype.Types.str (out "expand tags");
  Alcotest.check ty "group type"
    (Jtype.Types.rec_
       [ Jtype.Types.field "key" Jtype.Types.str;
         Jtype.Types.field "n" Jtype.Types.int ])
    (out "group by $.name into {n: count}");
  (* missing field manifests as Null in the type *)
  Alcotest.check ty "missing field"
    (Jtype.Types.union [ Jtype.Types.null ])
    (out "transform $.salary")

let test_typing_optional_fields () =
  let t = input_type [ {|{"a": 1, "b": "x"}|}; {|{"a": 2}|} ] in
  let out q = Query.Typing.type_pipeline t (Query.Parse.pipeline_exn q) in
  (* b is optional: access yields Str + Null *)
  Alcotest.check ty "optional access"
    (Jtype.Types.union [ Jtype.Types.null; Jtype.Types.str ])
    (out "transform $.b");
  (* arithmetic on maybe-null propagates nullability *)
  Alcotest.check ty "arith on optional int"
    Jtype.Types.int
    (out "transform $.a + 1")

let test_typing_heterogeneous_arith () =
  let t = input_type [ {|{"v": 1}|}; {|{"v": "s"}|} ] in
  let out q = Query.Typing.type_pipeline t (Query.Parse.pipeline_exn q) in
  Alcotest.check ty "mixed arith may be null"
    (Jtype.Types.union [ Jtype.Types.null; Jtype.Types.num ])
    (out "transform $.v * 2")

(* soundness: every dynamic output inhabits the inferred output type *)
let check_soundness name q srcs =
  let t = input_type srcs in
  let p = Query.Parse.pipeline_exn q in
  let out_t = Query.Typing.type_pipeline t p in
  let outputs = Query.Eval.run p (docs srcs) in
  List.iter
    (fun v ->
      if not (Jtype.Typecheck.member v out_t) then
        Alcotest.fail
          (Printf.sprintf "%s: output %s not in inferred type %s" name
             (Json.Printer.to_string v) (Jtype.Types.to_string out_t)))
    outputs

let test_typing_soundness_fixed () =
  let sales =
    [ {|{"region": "eu", "amount": 10, "items": [{"sku": "a"}, {"sku": "b"}]}|};
      {|{"region": "us", "amount": 20.5, "items": []}|};
      {|{"region": "eu", "amount": 5}|} ]
  in
  List.iter
    (fun q -> check_soundness q q sales)
    [ "filter $.amount > 7";
      "transform {r: $.region, a2: $.amount * 2, d: $.amount / $.amount}";
      "expand items";
      "expand items | transform $.sku";
      "group by $.region into {n: count, s: sum $.amount, m: min $.amount, a: avg $.amount}";
      "sort by $.amount desc | top 2 | transform [$.region, $.missing]";
      "transform $.items[0]";
      "transform {x: $.amount + $.missing}" ]

(* random pipelines over random heterogeneous corpora *)
let gen_field = QCheck2.Gen.oneofl [ "id"; "name"; "score"; "tags"; "nested"; "payload" ]

let gen_expr : Query.Ast.expr QCheck2.Gen.t =
  let open QCheck2.Gen in
  sized @@ QCheck2.Gen.fix (fun self n ->
      if n <= 0 then
        oneof
          [ return Query.Ast.Ctx;
            map (fun f -> Query.Ast.Field (Query.Ast.Ctx, f)) gen_field;
            map (fun i -> Query.Ast.Const (Json.Value.Int i)) (int_range (-5) 5);
            return (Query.Ast.Const (Json.Value.String "x")) ]
      else
        oneof
          [ map (fun f -> Query.Ast.Field (Query.Ast.Ctx, f)) gen_field;
            map2 (fun a b -> Query.Ast.Binop (Query.Ast.Add, a, b)) (self (n / 2)) (self (n / 2));
            map2 (fun a b -> Query.Ast.Binop (Query.Ast.Mul, a, b)) (self (n / 2)) (self (n / 2));
            map2 (fun a b -> Query.Ast.Binop (Query.Ast.Div, a, b)) (self (n / 2)) (self (n / 2));
            map2 (fun a b -> Query.Ast.Binop (Query.Ast.Lt, a, b)) (self (n / 2)) (self (n / 2));
            map (fun e -> Query.Ast.Is_null e) (self (n - 1));
            map2
              (fun a b -> Query.Ast.Record [ ("u", a); ("v", b) ])
              (self (n / 2)) (self (n / 2));
            map (fun e -> Query.Ast.List [ e ]) (self (n - 1));
            map (fun e -> Query.Ast.Index (e, 0)) (self (n - 1)) ])

let gen_stage : Query.Ast.stage QCheck2.Gen.t =
  let open QCheck2.Gen in
  oneof
    [ map (fun e -> Query.Ast.Filter e) gen_expr;
      map (fun e -> Query.Ast.Transform e) gen_expr;
      map (fun f -> Query.Ast.Expand (Some f)) gen_field;
      return (Query.Ast.Expand None);
      map2
        (fun key agg -> Query.Ast.Group_by (key, [ ("g", agg) ]))
        gen_expr
        (oneof
           [ return Query.Ast.Count;
             map (fun e -> Query.Ast.Sum e) gen_expr;
             map (fun e -> Query.Ast.Avg e) gen_expr;
             map (fun e -> Query.Ast.Min e) gen_expr ]);
      map (fun e -> Query.Ast.Sort_by (e, `Asc)) gen_expr;
      map (fun n -> Query.Ast.Top n) (int_range 0 5) ]

let gen_pipeline = QCheck2.Gen.(list_size (int_range 1 4) gen_stage)

let prop_output_schema_sound =
  QCheck2.Test.make ~name:"output schema inference is sound" ~count:300
    QCheck2.Gen.(pair gen_pipeline (int_range 0 1000))
    (fun (pipeline, seed) ->
      let st = Datagen.rng ~seed in
      let docs = Datagen.heterogeneous st ~heterogeneity:1.0 20 in
      let t = Jtype.Merge.merge_all ~equiv:Jtype.Merge.Kind (List.map Jtype.Types.of_value docs) in
      let out_t = Query.Typing.type_pipeline t pipeline in
      let outputs = Query.Eval.run pipeline docs in
      List.for_all (fun v -> Jtype.Typecheck.member v out_t) outputs)

let prop_parse_print_roundtrip =
  QCheck2.Test.make ~name:"pipeline print/parse roundtrip" ~count:300 gen_pipeline
    (fun p ->
      match Query.Parse.pipeline (Query.Ast.to_string p) with
      | Ok p2 -> Query.Ast.to_string p = Query.Ast.to_string p2
      | Error _ -> false)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "query"
    [ ("eval",
       [ Alcotest.test_case "filter" `Quick test_filter;
         Alcotest.test_case "transform" `Quick test_transform;
         Alcotest.test_case "expand" `Quick test_expand;
         Alcotest.test_case "group" `Quick test_group;
         Alcotest.test_case "sort/top" `Quick test_sort_top;
         Alcotest.test_case "null semantics" `Quick test_null_semantics ]);
      ("parse",
       [ Alcotest.test_case "roundtrip" `Quick test_parse_roundtrip;
         Alcotest.test_case "errors" `Quick test_parse_errors;
         Alcotest.test_case "negative numbers" `Quick test_negative_numbers ]);
      ("typing",
       [ Alcotest.test_case "basics" `Quick test_typing_basics;
         Alcotest.test_case "optional fields" `Quick test_typing_optional_fields;
         Alcotest.test_case "heterogeneous arith" `Quick test_typing_heterogeneous_arith;
         Alcotest.test_case "soundness (fixed)" `Quick test_typing_soundness_fixed ]);
      ("properties", q [ prop_output_schema_sound; prop_parse_print_roundtrip ]);
    ]
