(* Tests for the Joi combinator DSL: base types, refinements, presence,
   defaults, co-occurrence/mutual-exclusion relations, value-dependent
   types, describe, and JSON Schema compilation. *)

let parse = Json.Parser.parse_exn

let check_ok ?(name = "valid") schema src =
  match Joi.validate schema (parse src) with
  | Ok _ -> ()
  | Error es ->
      Alcotest.fail
        (Printf.sprintf "%s: %s unexpectedly rejected: %s" name src
           (String.concat "; " (List.map Joi.string_of_error es)))

let check_err ?(name = "invalid") schema src =
  match Joi.validate schema (parse src) with
  | Ok _ -> Alcotest.fail (Printf.sprintf "%s: %s unexpectedly accepted" name src)
  | Error _ -> ()

let test_base_types () =
  check_ok Joi.string {|"s"|};
  check_err Joi.string "1";
  check_ok Joi.number "1.5";
  check_ok Joi.number "2";
  check_err Joi.number {|"1"|};
  check_ok Joi.integer "2";
  check_err Joi.integer "2.5";
  check_ok Joi.boolean "true";
  check_err Joi.boolean "null";
  check_ok Joi.null "null";
  check_ok Joi.any {|{"free": "form"}|};
  check_ok Joi.array "[1,2]";
  check_err Joi.array "{}"

let test_string_rules () =
  let s = Joi.(string |> min 2 |> max 5) in
  check_ok s {|"abc"|};
  check_err s {|"a"|};
  check_err s {|"abcdef"|};
  check_ok Joi.(string |> length 3) {|"abc"|};
  check_err Joi.(string |> length 3) {|"ab"|};
  check_ok Joi.(string |> pattern "^[a-z]+$") {|"abc"|};
  check_err Joi.(string |> pattern "^[a-z]+$") {|"aBc"|};
  check_ok Joi.(string |> email) {|"bob@example.com"|};
  check_err Joi.(string |> email) {|"bob"|};
  check_ok Joi.(string |> uri) {|"https://x.org"|};
  check_err Joi.(string |> uri) {|"not a uri"|};
  check_ok Joi.(string |> lowercase) {|"abc"|};
  check_err Joi.(string |> lowercase) {|"Abc"|};
  check_ok Joi.(string |> alphanum) {|"a1B2"|};
  check_err Joi.(string |> alphanum) {|"a b"|};
  Alcotest.check_raises "bad regex"
    (Invalid_argument "Joi.pattern: invalid regex \"[\"") (fun () ->
      ignore (Joi.pattern "[" Joi.string))

let test_number_rules () =
  check_ok Joi.(number |> min 2 |> max 5) "3";
  check_err Joi.(number |> min 2) "1";
  check_err Joi.(number |> max 5) "6";
  check_ok Joi.(number |> greater 0.0) "0.1";
  check_err Joi.(number |> greater 0.0) "0";
  check_ok Joi.(number |> less 1.0) "0.9";
  check_ok Joi.(number |> positive) "3";
  check_err Joi.(number |> positive) "-3";
  check_ok Joi.(number |> negative) "-3";
  check_ok Joi.(number |> multiple 3) "9";
  check_err Joi.(number |> multiple 3) "10"

let test_array_rules () =
  let s = Joi.(array |> items (Joi.integer) |> min 1 |> max 3) in
  check_ok s "[1,2]";
  check_err s "[]";
  check_err s "[1,2,3,4]";
  check_err s {|[1,"x"]|};
  check_ok Joi.(array |> unique) "[1,2,3]";
  check_err Joi.(array |> unique) "[1,2,1]"

let test_valid_invalid () =
  let s = Joi.(string |> valid [ Json.Value.String "a"; Json.Value.String "b" ]) in
  check_ok s {|"a"|};
  check_err s {|"c"|};
  let s2 = Joi.(any |> invalid [ Json.Value.Null ]) in
  check_ok s2 "1";
  check_err s2 "null"

let test_object_presence () =
  let s =
    Joi.object_
      [ ("id", Joi.(integer |> required));
        ("name", Joi.string);
        ("secret", Joi.(any |> forbidden)) ]
  in
  check_ok s {|{"id": 1, "name": "x"}|};
  check_ok s {|{"id": 1}|};
  check_err ~name:"missing required" s {|{"name": "x"}|};
  check_err ~name:"forbidden present" s {|{"id": 1, "secret": 2}|};
  check_err ~name:"unknown key" s {|{"id": 1, "extra": 2}|};
  check_ok Joi.(object_ [ ("id", Joi.integer) ] |> unknown true) {|{"id": 1, "extra": 2}|}

let test_defaults_inserted () =
  let s =
    Joi.object_
      [ ("id", Joi.(integer |> required));
        ("role", Joi.(string |> default (Json.Value.String "user"))) ]
  in
  match Joi.validate s (parse {|{"id": 7}|}) with
  | Ok v ->
      Alcotest.(check string) "default inserted"
        {|{"id":7,"role":"user"}|}
        (Json.Printer.to_string v)
  | Error _ -> Alcotest.fail "should validate"

let test_relations_and () =
  let s = Joi.(object_ [ ("a", Joi.any); ("b", Joi.any) ] |> and_ [ "a"; "b" ]) in
  check_ok s {|{"a": 1, "b": 2}|};
  check_ok s "{}";
  check_err s {|{"a": 1}|}

let test_relations_or_xor_nand () =
  let base = Joi.object_ [ ("a", Joi.any); ("b", Joi.any) ] in
  let s_or = Joi.or_ [ "a"; "b" ] base in
  check_ok s_or {|{"a": 1}|};
  check_ok s_or {|{"a": 1, "b": 2}|};
  check_err s_or "{}";
  let s_xor = Joi.xor [ "a"; "b" ] base in
  check_ok s_xor {|{"a": 1}|};
  check_err s_xor {|{"a": 1, "b": 2}|};
  check_err s_xor "{}";
  let s_nand = Joi.nand [ "a"; "b" ] base in
  check_ok s_nand {|{"a": 1}|};
  check_ok s_nand "{}";
  check_err s_nand {|{"a": 1, "b": 2}|}

let test_relations_with_without () =
  let base =
    Joi.object_ [ ("card", Joi.any); ("addr", Joi.any); ("cash", Joi.any) ]
  in
  let s = Joi.(base |> with_ "card" [ "addr" ] |> without "cash" [ "card" ]) in
  check_ok s {|{"card": 1, "addr": "x"}|};
  check_err ~name:"card without addr" s {|{"card": 1}|};
  check_ok s {|{"cash": 1}|};
  check_err ~name:"cash conflicts card" s {|{"cash": 1, "card": 2, "addr": "x"}|}

let test_when_value_dependent () =
  (* the canonical Joi example: payment method selects the required fields *)
  let s =
    Joi.object_
      [ ("method", Joi.(string |> required));
        ("details",
         Joi.(
           object_ [ ("number", Joi.any); ("iban", Joi.any) ]
           |> required
           |> when_ ~ref_:"method"
                ~is:(Joi.(any |> valid [ Json.Value.String "card" ]))
                ~then_:(Joi.object_ [ ("number", Joi.(string |> required)); ("iban", Joi.any) ] |> Joi.unknown true)
                ~otherwise:(Joi.object_ [ ("iban", Joi.(string |> required)); ("number", Joi.any) ] |> Joi.unknown true))) ]
  in
  check_ok s {|{"method": "card", "details": {"number": "4111"}}|};
  check_err ~name:"card needs number" s {|{"method": "card", "details": {"iban": "DE1"}}|};
  check_ok s {|{"method": "sepa", "details": {"iban": "DE1"}}|};
  check_err ~name:"sepa needs iban" s {|{"method": "sepa", "details": {"number": "4111"}}|}

let test_alternatives () =
  let s = Joi.alternatives [ Joi.integer; Joi.(string |> min 1) ] in
  check_ok s "3";
  check_ok s {|"x"|};
  check_err s "3.5";
  check_err s {|""|};
  check_err s "null"

let test_error_paths () =
  let s = Joi.object_ [ ("xs", Joi.(array |> items Joi.integer)) ] in
  match Joi.validate s (parse {|{"xs": [1, "bad"]}|}) with
  | Ok _ -> Alcotest.fail "should fail"
  | Error [ e ] ->
      Alcotest.(check string) "path" "/xs/1" (Json.Pointer.to_string e.Joi.path)
  | Error es -> Alcotest.fail (Printf.sprintf "expected 1 error, got %d" (List.length es))

let test_describe () =
  let s =
    Joi.(object_ [ ("id", Joi.integer |> Joi.required) ] |> xor [ "a"; "b" ])
  in
  let d = Joi.describe s in
  Alcotest.(check (option string)) "type" (Some "object")
    Json.Value.(to_string (member_exn "type" d));
  Alcotest.(check bool) "keys present" true (Json.Value.has_member "keys" d);
  Alcotest.(check bool) "dependencies present" true
    (Json.Value.has_member "dependencies" d)

let test_to_json_schema () =
  let s =
    Joi.object_
      [ ("id", Joi.(integer |> required |> min 0));
        ("email", Joi.(string |> email));
        ("tags", Joi.(array |> items Joi.string |> unique)) ]
  in
  let root = Jsonschema.Print.to_json (Joi.to_json_schema s) in
  let ok src = Jsonschema.Validate.is_valid ~root (parse src) in
  Alcotest.(check bool) "accepts valid" true
    (ok {|{"id": 1, "email": "a@b.co", "tags": ["x"]}|});
  Alcotest.(check bool) "rejects missing id" false (ok {|{"email": "a@b.co"}|});
  Alcotest.(check bool) "rejects negative id" false (ok {|{"id": -1}|});
  Alcotest.(check bool) "rejects dup tags" false (ok {|{"id": 1, "tags": ["x","x"]}|});
  Alcotest.(check bool) "rejects unknown key" false (ok {|{"id": 1, "zz": 0}|})

let test_joi_agrees_with_compiled_schema () =
  (* behavioural agreement between the DSL and its JSON Schema compilation
     on the expressible fragment *)
  let s =
    Joi.object_
      [ ("a", Joi.(integer |> required |> min 0 |> max 10));
        ("b", Joi.(string |> min 1 |> max 4)) ]
  in
  let root = Jsonschema.Print.to_json (Joi.to_json_schema s) in
  let cases =
    [ {|{"a": 5}|}; {|{"a": 5, "b": "xy"}|}; {|{"a": -1}|}; {|{"a": 11}|};
      {|{"b": "xy"}|}; {|{"a": 5, "b": ""}|}; {|{"a": 5, "b": "tooooolong"}|};
      {|{"a": 5, "c": 1}|}; {|[]|}; {|{"a": "5"}|} ]
  in
  List.iter
    (fun src ->
      let j = Joi.is_valid s (parse src) in
      let d = Jsonschema.Validate.is_valid ~root (parse src) in
      Alcotest.(check bool) (Printf.sprintf "agree on %s" src) j d)
    cases


(* property: Joi and its JSON Schema compilation agree on random instances
   of a fixed expressible contract *)
let gen_instance =
  let open QCheck2.Gen in
  let scalar =
    oneof
      [ return Json.Value.Null;
        map (fun b -> Json.Value.Bool b) bool;
        map (fun n -> Json.Value.Int n) (int_range (-20) 20);
        map (fun f -> Json.Value.Float f) (float_range (-20.) 20.);
        map (fun s -> Json.Value.String s) (string_size ~gen:(char_range 'a' 'e') (int_range 0 6)) ]
  in
  let field = oneofl [ "a"; "b"; "c"; "zz" ] in
  map
    (fun fields ->
      let seen = Hashtbl.create 4 in
      Json.Value.Object
        (List.filter
           (fun (k, _) -> if Hashtbl.mem seen k then false else (Hashtbl.add seen k (); true))
           fields))
    (list_size (int_range 0 4) (pair field scalar))

let prop_joi_schema_agreement =
  let contract =
    Joi.object_
      [ ("a", Joi.(integer |> required |> min 0 |> max 10));
        ("b", Joi.(string |> min 1 |> max 4));
        ("c", Joi.boolean) ]
  in
  let root = Jsonschema.Print.to_json (Joi.to_json_schema contract) in
  QCheck2.Test.make ~name:"joi = compiled JSON Schema on the fragment" ~count:500
    gen_instance (fun v ->
      Joi.is_valid contract v = Jsonschema.Validate.is_valid ~root v)

let prop_joi_defaults_idempotent =
  let contract =
    Joi.object_
      [ ("a", Joi.(integer |> required));
        ("r", Joi.(string |> default (Json.Value.String "d"))) ]
  in
  QCheck2.Test.make ~name:"validate is idempotent (defaults settle)" ~count:300
    gen_instance (fun v ->
      match Joi.validate contract v with
      | Error _ -> true
      | Ok v1 -> (
          match Joi.validate contract v1 with
          | Ok v2 -> Json.Value.equal v1 v2
          | Error _ -> false))

let () =
  Alcotest.run "joi"
    [ ("base",
       [ Alcotest.test_case "types" `Quick test_base_types;
         Alcotest.test_case "string rules" `Quick test_string_rules;
         Alcotest.test_case "number rules" `Quick test_number_rules;
         Alcotest.test_case "array rules" `Quick test_array_rules;
         Alcotest.test_case "valid/invalid sets" `Quick test_valid_invalid ]);
      ("objects",
       [ Alcotest.test_case "presence" `Quick test_object_presence;
         Alcotest.test_case "defaults" `Quick test_defaults_inserted;
         Alcotest.test_case "and" `Quick test_relations_and;
         Alcotest.test_case "or/xor/nand" `Quick test_relations_or_xor_nand;
         Alcotest.test_case "with/without" `Quick test_relations_with_without ]);
      ("value-dependent",
       [ Alcotest.test_case "when" `Quick test_when_value_dependent;
         Alcotest.test_case "alternatives" `Quick test_alternatives ]);
      ("reporting",
       [ Alcotest.test_case "error paths" `Quick test_error_paths;
         Alcotest.test_case "describe" `Quick test_describe ]);
      ("compilation",
       [ Alcotest.test_case "to JSON Schema" `Quick test_to_json_schema;
         Alcotest.test_case "behavioural agreement" `Quick test_joi_agrees_with_compiled_schema ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_joi_schema_agreement; prop_joi_defaults_idempotent ]);
    ]
