(* Tests for the JSound compact schema language. *)

let parse = Json.Parser.parse_exn

let schema src =
  match Jsound.parse_string src with
  | Ok s -> s
  | Error msg -> Alcotest.fail ("schema parse: " ^ msg)

let check_ok s src =
  match Jsound.validate s (parse src) with
  | Ok () -> ()
  | Error es ->
      Alcotest.fail
        (Printf.sprintf "%s rejected: %s" src
           (String.concat "; " (List.map Jsound.string_of_error es)))

let check_err s src =
  if Jsound.is_valid s (parse src) then
    Alcotest.fail (Printf.sprintf "%s unexpectedly accepted" src)

let test_atomic () =
  check_ok (schema {|"string"|}) {|"x"|};
  check_err (schema {|"string"|}) "1";
  check_ok (schema {|"integer"|}) "3";
  check_ok (schema {|"integer"|}) "3.0";
  check_err (schema {|"integer"|}) "3.5";
  check_ok (schema {|"decimal"|}) "3.5";
  check_ok (schema {|"double"|}) "3.5";
  check_ok (schema {|"boolean"|}) "false";
  check_ok (schema {|"null"|}) "null";
  check_err (schema {|"null"|}) "0";
  check_ok (schema {|"item"|}) {|{"anything": []}|};
  check_ok (schema {|"date"|}) {|"2021-12-31"|};
  check_err (schema {|"date"|}) {|"2021-13-01"|};
  check_ok (schema {|"dateTime"|}) {|"2021-12-31T10:00:00Z"|};
  check_ok (schema {|"anyURI"|}) {|"https://a.io/x"|};
  check_err (schema {|"anyURI"|}) {|"::"|}

let test_nullable_suffix () =
  let s = schema {|"integer?"|} in
  check_ok s "3";
  check_ok s "null";
  check_err s {|"3"|};
  check_err (schema {|"integer"|}) "null"

let test_unknown_designator () =
  match Jsound.parse_string {|"quaternion"|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown designator must be rejected"

let test_object_schema () =
  let s = schema {|{"name": "string", "?nick": "string", "age": "integer?"}|} in
  check_ok s {|{"name": "a", "age": 3}|};
  check_ok s {|{"name": "a", "age": null, "nick": "n"}|};
  check_err s {|{"age": 3}|};                (* missing required name *)
  check_err s {|{"name": "a", "age": 3, "x": 1}|};  (* undeclared field *)
  check_err s {|{"name": 1, "age": 3}|}

let test_array_schema () =
  let s = schema {|[{"v": "integer"}]|} in
  check_ok s {|[{"v": 1}, {"v": 2}]|};
  check_ok s "[]";
  check_err s {|[{"v": "x"}]|};
  check_err s {|{"v": 1}|};
  match Jsound.parse_string {|["integer", "string"]|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "multi-element array schema must be rejected"

let test_key_uniqueness () =
  let s = schema {|{"@id": "integer", "v": "string"}|} in
  let docs srcs = List.map parse srcs in
  (match Jsound.validate_collection s (docs [ {|{"id": 1, "v": "a"}|}; {|{"id": 2, "v": "b"}|} ]) with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "unique keys should pass");
  match Jsound.validate_collection s (docs [ {|{"id": 1, "v": "a"}|}; {|{"id": 1, "v": "b"}|} ]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate keys should fail"

let test_roundtrip () =
  let srcs =
    [ {|"integer?"|}; {|{"name":"string","?nick":"string"}|}; {|[{"@id":"integer"}]|} ]
  in
  List.iter
    (fun src ->
      let s = schema src in
      let j = Jsound.to_json s in
      Alcotest.(check bool) ("roundtrip " ^ src) true
        (Json.Value.equal (parse src) j))
    srcs

let test_to_json_schema () =
  let s = schema {|{"name": "string", "?age": "integer?", "when": "date"}|} in
  let root = Jsonschema.Print.to_json (Jsound.to_json_schema s) in
  let config =
    { Jsonschema.Validate.default_config with Jsonschema.Validate.assert_formats = true }
  in
  let ok src = Jsonschema.Validate.is_valid ~config ~root (parse src) in
  Alcotest.(check bool) "valid accepted" true
    (ok {|{"name": "a", "age": null, "when": "2020-01-01"}|});
  Alcotest.(check bool) "missing name rejected" false (ok {|{"when": "2020-01-01"}|});
  Alcotest.(check bool) "bad date rejected" false
    (ok {|{"name": "a", "when": "2020-13-01"}|});
  Alcotest.(check bool) "extra field rejected" false
    (ok {|{"name": "a", "when": "2020-01-01", "z": 1}|})

let test_to_jtype () =
  let s = schema {|{"name": "string", "?age": "integer?", "tags": ["string"]}|} in
  let t = Jsound.to_jtype s in
  Alcotest.(check string) "jtype"
    "{age?: Null + Int, name: Str, tags: [Str]}"
    (Jtype.Types.to_string t)

let test_agreement_with_jsonschema () =
  (* JSound validation and its JSON Schema compilation agree (formats
     asserted) on a battery of instances *)
  let s = schema {|{"@id": "integer", "name": "string", "?bio": "string?", "xs": ["decimal"]}|} in
  let root = Jsonschema.Print.to_json (Jsound.to_json_schema s) in
  let config =
    { Jsonschema.Validate.default_config with Jsonschema.Validate.assert_formats = true }
  in
  let cases =
    [ {|{"id": 1, "name": "a", "xs": [1, 2.5]}|};
      {|{"id": 1, "name": "a", "bio": null, "xs": []}|};
      {|{"id": 1, "name": "a", "bio": "b", "xs": [1]}|};
      {|{"id": "x", "name": "a", "xs": []}|};
      {|{"name": "a", "xs": []}|};
      {|{"id": 1, "name": "a", "xs": ["s"]}|};
      {|{"id": 1, "name": "a", "xs": [], "zz": 0}|};
      {|[1]|} ]
  in
  List.iter
    (fun src ->
      let a = Jsound.is_valid s (parse src) in
      let b = Jsonschema.Validate.is_valid ~config ~root (parse src) in
      Alcotest.(check bool) (Printf.sprintf "agree on %s" src) a b)
    cases


(* property: schema JSON <-> AST roundtrip over random fragment schemas *)
let gen_jsound_schema : Json.Value.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let atomic =
    map
      (fun (t, n) -> Json.Value.String (t ^ if n then "?" else ""))
      (pair
         (oneofl [ "string"; "integer"; "decimal"; "boolean"; "null"; "item"; "date" ])
         bool)
  in
  let key =
    map2
      (fun prefix name -> prefix ^ name)
      (oneofl [ ""; "?"; "@" ])
      (string_size ~gen:(char_range 'a' 'f') (int_range 1 4))
  in
  sized @@ fix (fun self n ->
      if n <= 0 then atomic
      else
        oneof
          [ atomic;
            map (fun s -> Json.Value.Array [ s ]) (self (n / 2));
            map
              (fun fields ->
                let seen = Hashtbl.create 4 in
                Json.Value.Object
                  (List.filter
                     (fun (k, _) ->
                       let bare =
                         if String.length k > 0 && (k.[0] = '?' || k.[0] = '@') then
                           String.sub k 1 (String.length k - 1)
                         else k
                       in
                       if Hashtbl.mem seen bare then false
                       else (Hashtbl.add seen bare (); true))
                     fields))
              (list_size (int_range 0 4) (pair key (self (n / 2)))) ])

let prop_jsound_roundtrip =
  QCheck2.Test.make ~name:"jsound to_json . parse = id" ~count:500 gen_jsound_schema
    (fun j ->
      match Jsound.parse j with
      | Ok s -> Json.Value.equal (Jsound.to_json s) j
      | Error _ -> QCheck2.assume_fail ())

let prop_jsound_agrees_with_jsonschema =
  QCheck2.Test.make ~name:"jsound = compiled JSON Schema (formats asserted)" ~count:200
    gen_jsound_schema (fun j ->
      match Jsound.parse j with
      | Error _ -> QCheck2.assume_fail ()
      | Ok s ->
          let root = Jsonschema.Print.to_json (Jsound.to_json_schema s) in
          let config =
            { Jsonschema.Validate.default_config with
              Jsonschema.Validate.assert_formats = true }
          in
          (* sample instances via the JSON Schema generator; both validators
             must agree on them *)
          let st = Jsonschema.Generate.rng ~seed:11 in
          List.for_all
            (fun _ ->
              match Jsonschema.Generate.generate_valid st ~root with
              | Some v ->
                  Jsound.is_valid s v = Jsonschema.Validate.is_valid ~config ~root v
              | None -> true)
            (List.init 10 Fun.id))

let () =
  Alcotest.run "jsound"
    [ ("atomic",
       [ Alcotest.test_case "designators" `Quick test_atomic;
         Alcotest.test_case "nullable suffix" `Quick test_nullable_suffix;
         Alcotest.test_case "unknown designator" `Quick test_unknown_designator ]);
      ("structures",
       [ Alcotest.test_case "objects" `Quick test_object_schema;
         Alcotest.test_case "arrays" `Quick test_array_schema;
         Alcotest.test_case "key uniqueness" `Quick test_key_uniqueness ]);
      ("conversion",
       [ Alcotest.test_case "json roundtrip" `Quick test_roundtrip;
         Alcotest.test_case "to JSON Schema" `Quick test_to_json_schema;
         Alcotest.test_case "to jtype" `Quick test_to_jtype;
         Alcotest.test_case "agreement" `Quick test_agreement_with_jsonschema ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_jsound_roundtrip; prop_jsound_agrees_with_jsonschema ]);
    ]
