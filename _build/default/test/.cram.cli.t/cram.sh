  $ jsontool generate -c orders -n 20 --seed 5 > orders.ndjson
  $ wc -l < orders.ndjson
  $ echo '{"b": 1, "a": [1, 2.5, "x"]}' | jsontool parse
  $ echo '{"broken": ' | jsontool parse
  $ echo '{"a": 1, "a": 2}' | jsontool parse --dup-keys first
  $ echo '{"a": 1, "a": 2}' | jsontool parse --dup-keys reject
  $ echo '[[[[1]]]]' | jsontool parse --max-depth 2
  $ printf '{"a": 1}\n{broken\n{"a": [1, 2]}\n' > messy.ndjson
  $ jsontool ingest --quarantine dead.ndjson messy.ndjson
  $ cat dead.ndjson
  $ echo '[[[[1]]]]' | jsontool ingest --max-depth 3 -
  $ jsontool ingest --max-docs 1 messy.ndjson
  $ jsontool generate -c orders -n 50 --seed 5 | jsontool ingest -
  $ jsontool generate -c orders -n 50 --seed 5 | jsontool ingest --chaos 7 -
  $ jsontool generate -c orders -n 50 --seed 5 | jsontool ingest --chaos 7 --max-bytes 16384 -
  $ jsontool infer -a parametric -e kind orders.ndjson
  $ jsontool infer -a spark orders.ndjson
  $ jsontool infer -a parametric -o typescript orders.ndjson
  $ jsontool infer -a parametric -o jsonschema orders.ndjson > schema.json
  $ jsontool validate -s schema.json orders.ndjson
  $ echo '{"order_id": "not a number"}' | jsontool validate -s schema.json -
  $ jsontool query --type 'filter $.quantity >= 5 | group by $.customer.customer_city into {n: count}' orders.ndjson | head -3
  $ jsontool generate -c orders -n 200 --seed 5 | jsontool normalize - | head -1
  $ jsontool generate -c tickets -n 100 --seed 2 2>/dev/null | jsontool profile - | head -2
  $ cat > config.jsound <<'SCHEMA'
  > {"endpoint": "anyURI", "timeout_ms": "integer", "?retries": "integer?"}
  > SCHEMA
  $ echo '{"endpoint": "https://x.io", "timeout_ms": 50}' | jsontool validate -l jsound -s config.jsound -
  $ echo '{"endpoint": 12}' | jsontool validate -l jsound -s config.jsound -
  $ cat > old.json <<'S'
  > {"type": "object", "properties": {"id": {"type": "integer"}}, "required": ["id"], "additionalProperties": false}
  > S
  $ cat > new.json <<'S'
  > {"type": "object", "properties": {"id": {"type": "integer"}, "tag": {"type": "string"}}, "required": ["id"], "additionalProperties": false}
  > S
  $ jsontool compat old.json new.json | head -1
  $ jsontool generate -c orders -n 10 --seed 1 > mixed.ndjson
  $ jsontool generate -c tickets -n 10 --seed 1 >> mixed.ndjson
  $ jsontool discover --threshold 0.3 mixed.ndjson | grep -c 'cluster'
