test/test_jsound.ml: Alcotest Fun Hashtbl Json Jsonschema Jsound Jtype List Printf QCheck2 QCheck_alcotest String
