test/test_joi.mli:
