test/test_jsonschema.ml: Alcotest Json Jsonschema List Printf
