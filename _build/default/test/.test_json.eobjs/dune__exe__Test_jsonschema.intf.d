test/test_jsonschema.mli:
