test/test_translate.ml: Alcotest Buffer Datagen Inference Json Jtype List Printf String Translate
