test/test_joi.ml: Alcotest Hashtbl Joi Json Jsonschema List Printf QCheck2 QCheck_alcotest String
