test/test_translate.mli:
