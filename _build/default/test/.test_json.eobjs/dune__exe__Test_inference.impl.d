test/test_inference.ml: Alcotest Datagen Inference Json Jsonschema Jtype List Printf Re String
