test/test_robustness.ml: Alcotest Char Core Datagen Fastjson Hashtbl Inference Json Jsonschema Jsound Jtype List Option Printf QCheck2 QCheck_alcotest Query Random String Sys Translate
