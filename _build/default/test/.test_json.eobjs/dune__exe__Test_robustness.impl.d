test/test_robustness.ml: Alcotest Char Fastjson Hashtbl Inference Json Jsonschema Jsound Jtype List QCheck2 QCheck_alcotest Query String Translate
