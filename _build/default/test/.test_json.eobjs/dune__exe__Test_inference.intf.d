test/test_inference.mli:
