test/test_json.ml: Alcotest Float Hashtbl Json List Printf QCheck2 QCheck_alcotest String
