test/test_fastjson.ml: Alcotest Datagen Fastjson Json List Option Printf String
