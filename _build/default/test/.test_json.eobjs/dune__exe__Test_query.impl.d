test/test_query.ml: Alcotest Datagen Json Jtype List Printf QCheck2 QCheck_alcotest Query
