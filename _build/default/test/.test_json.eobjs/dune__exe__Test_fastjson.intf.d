test/test_fastjson.mli:
