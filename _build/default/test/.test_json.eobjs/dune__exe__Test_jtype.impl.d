test/test_jtype.ml: Alcotest Containment Counting Fun Hashtbl Interop Json Jsonschema Jtype List Merge QCheck2 QCheck_alcotest Re String Swift Typecheck Types Typescript
