test/test_core.ml: Alcotest Core Datagen Fastjson Inference Joi Json Jsonschema Jsound Jtype List Pipeline Printf Query Re Resilient String Translate
