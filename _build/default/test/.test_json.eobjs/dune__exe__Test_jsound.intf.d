test/test_jsound.mli:
