test/test_jtype.mli:
