(* Scenario: tracking an evolving web API (the tutorial's Twitter example).

   A service consumes tweets whose shape drifts over time: optional fields
   appear, a field changes type. We infer schemas under both equivalence
   parameters, compare their precision/conciseness trade-off, and emit
   client-side types.

   Run with:  dune exec examples/api_evolution.exe *)

open Core

let () =
  let st = Datagen.rng ~seed:2019 in
  let v1 = Datagen.tweets st 400 in

  (* simulate an API evolution: v2 renames "lang" to a structured object *)
  let evolve (doc : Json.Value.t) =
    match doc with
    | Json.Value.Object fields ->
        Json.Value.Object
          (List.map
             (fun (k, v) ->
               if k = "lang" then
                 ( "lang",
                   Json.Value.Object
                     [ ("code", v); ("confidence", Json.Value.Float 0.99) ] )
               else (k, v))
             fields)
    | v -> v
  in
  let v2 = List.map evolve (Datagen.tweets st 100) in
  let all = v1 @ v2 in

  let kind_t = Inference.Parametric.infer ~equiv:Jtype.Merge.Kind all in
  let label_t = Inference.Parametric.infer ~equiv:Jtype.Merge.Label all in

  Printf.printf "documents: %d (v1: %d, v2: %d)\n\n" (List.length all)
    (List.length v1) (List.length v2);
  Printf.printf "kind-equivalence type size:  %4d nodes\n" (Jtype.Types.size kind_t);
  Printf.printf "label-equivalence type size: %4d nodes\n\n" (Jtype.Types.size label_t);

  (* the "lang" field shows the union the evolution created *)
  (match kind_t.Jtype.Types.node with
   | Jtype.Types.Rec fields ->
       List.iter
         (fun f ->
           if f.Jtype.Types.fname = "lang" then
             Printf.printf "lang under kind-equiv: %s\n\n"
               (Jtype.Types.to_string f.Jtype.Types.ftype))
         fields
   | _ -> ());

  (* counting types quantify the drift *)
  let counting = Inference.Parametric.infer_counting ~equiv:Jtype.Merge.Kind all in
  (match Jtype.Counting.field_probability counting [ "coordinates" ] with
   | Some p -> Printf.printf "P(coordinates present) = %.2f\n" p
   | None -> ());
  (match Jtype.Counting.field_probability counting [ "retweeted_status" ] with
   | Some p -> Printf.printf "P(retweet)             = %.2f\n\n" p
   | None -> ());

  (* held-out precision: infer on a prefix, test on the rest *)
  let rec split n = function
    | [] -> ([], [])
    | x :: rest when n > 0 ->
        let a, b = split (n - 1) rest in
        (x :: a, b)
    | rest -> ([], rest)
  in
  let train, test = split 250 all in
  List.iter
    (fun (label, equiv) ->
      let t = Inference.Parametric.infer ~equiv train in
      Printf.printf "held-out precision (%s): %.3f\n" label
        (Inference.Parametric.precision t test))
    [ ("kind ", Jtype.Merge.Kind); ("label", Jtype.Merge.Label) ];

  (* storage-side evolution: data written under the v1 schema is read
     under the merged schema via Avro resolution *)
  let v1_t = Inference.Parametric.infer ~equiv:Jtype.Merge.Kind v1 in
  let writer = Translate.Avro.of_jtype ~name:"tweet" v1_t in
  let reader = Translate.Avro.of_jtype ~name:"tweet" kind_t in
  (match Translate.Avro.resolve ~writer ~reader with
   | Ok () -> print_endline "\navro: v1-written data is readable under the evolved schema"
   | Error m -> Printf.printf "\navro: schemas do not resolve (%s)\n" m);
  (match Translate.Avro.encode writer (List.hd v1) with
   | Ok bytes -> (
       match Translate.Avro.decode_resolved ~writer ~reader bytes with
       | Ok _ -> print_endline "avro: sample v1 record decoded under the v2 reader"
       | Error m -> print_endline ("avro: " ^ m))
   | Error m -> print_endline ("avro: " ^ m));

  (* client code generation for the mobile team *)
  print_endline "\n== TypeScript client types (truncated) ==";
  let ts = Jtype.Typescript.declaration ~name:"Tweet" kind_t in
  let lines = String.split_on_char '\n' ts in
  List.iteri (fun i l -> if i < 12 then print_endline l) lines;
  Printf.printf "... (%d more lines)\n" (max 0 (List.length lines - 12))
