(* jsontool — command-line front end to the schemas_types toolkit.

   Subcommands:
     parse      parse/pretty-print JSON syntax
     validate   validate documents against a JSON Schema / JSound schema
     infer      infer a schema (parametric, spark, mongo, skinfer, skeleton)
     stats      profile a collection (counts, types, field statistics)
     translate  convert NDJSON to Avro-like binary or columnar form
     generate   produce synthetic corpora (tweets, articles, orders, ...)
     query      run a Jaql-style pipeline (with output-schema inference)
     discover   cluster a mixed collection by structural similarity
     profile    explain structural variants with a decision tree
     compat     check schema-evolution compatibility between two schemas
     normalize  JSON -> normalized relational CSVs *)

open Core

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let read_input = function
  | "-" -> In_channel.input_all In_channel.stdin
  | path -> read_file path

(* All raw text enters through the resilient layer; the classic subcommands
   use its strict (fail-fast) mode, [ingest] uses full quarantine. The depth
   bound travels in the budget — [Resilient] derives its parser options from
   the budget, so an [options.max_depth] alone would be overwritten. *)
let load_documents ?options ?max_depth ?(jobs = 1) ?telemetry path =
  let budget =
    match max_depth with
    | None -> Resilient.unbounded_budget
    | Some max_depth -> { Resilient.unbounded_budget with Resilient.max_depth }
  in
  Parallel.parse_ndjson_strict ~budget ?options ~jobs ?telemetry (read_input path)

let or_die = function
  | Ok x -> x
  | Error msg ->
      prerr_endline ("jsontool: " ^ msg);
      exit 1

open Cmdliner

let input_arg =
  Arg.(value & pos 0 string "-" & info [] ~docv:"FILE" ~doc:"Input file (NDJSON or concatenated JSON); - for stdin.")

(* shared parser-option flags: the knobs real deployments disagree on sit
   beside the resource-budget flags of [ingest] *)

let dup_keys_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("first", Json.Parser.Keep_first); ("last", Json.Parser.Keep_last);
             ("reject", Json.Parser.Reject); ("all", Json.Parser.Keep_all) ])
        Json.Parser.Keep_last
    & info [ "dup-keys" ] ~docv:"POLICY"
        ~doc:"Duplicate object keys: first, last (default), reject, or all.")

let max_depth_arg ~default =
  Arg.(value & opt int default
       & info [ "max-depth" ] ~docv:"N" ~doc:"Maximum nesting depth per document.")

let jobs_arg =
  Arg.(value & opt int 1
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Shard the work across $(docv) domains (default 1, sequential). \
                 Output is byte-identical for every job count.")

let engine_arg =
  Arg.(
    value
    & opt (enum [ ("tree", `Tree); ("streaming", `Streaming) ]) `Streaming
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:"Execution engine: streaming (default) fuses parsing with \
              inference/validation at token level, never materializing \
              value trees; tree parses every document into a value first. \
              Reports and exit codes are byte-identical either way. \
              Validation streams only with --compiled on; JSound and the \
              non-parametric inference approaches always use the tree \
              engine.")

let engine_name = function `Tree -> "tree" | `Streaming -> "streaming"

(* supervision flags: shared by ingest/infer/validate. Supervision engages
   only when one of them is given, so the default paths — and their
   telemetry key sets — are exactly the pre-supervisor ones. *)

type sup_opts = {
  sup_retries : int;
  sup_timeout_ms : float option;
  sup_checkpoint : string;
  sup_resume : bool;
  sup_chaos_workers : int option;
  sup_chaos_worker_rate : float;
  sup_chaos_worker_permanent : bool;
}

let sup_term =
  let retries =
    Arg.(value & opt int 0
         & info [ "retries" ] ~docv:"N"
             ~doc:"Retry a failed shard up to $(docv) times (with deterministic \
                   exponential backoff) before quarantining it. Engages the \
                   shard supervisor.")
  in
  let timeout =
    Arg.(value & opt (some float) None
         & info [ "shard-timeout-ms" ] ~docv:"MS"
             ~doc:"Per-attempt wall-clock deadline per shard, enforced \
                   cooperatively at document boundaries. Engages the shard \
                   supervisor.")
  in
  let checkpoint =
    Arg.(value & opt string ""
         & info [ "checkpoint" ] ~docv:"FILE"
             ~doc:"Journal completed shards to $(docv) so an interrupted run \
                   can resume. Engages the shard supervisor.")
  in
  let resume =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:"Reuse completed shards from the --checkpoint journal \
                   (verified against the input fingerprint); only missing or \
                   poisoned shards are recomputed. Use the same --jobs as the \
                   original run to actually skip work.")
  in
  let chaos_workers =
    Arg.(value & opt (some int) None
         & info [ "chaos-workers" ] ~docv:"SEED"
             ~doc:"Inject seeded worker faults into shard execution (see \
                   --chaos-worker-rate); a drill for the retry policy. Engages \
                   the shard supervisor.")
  in
  let chaos_worker_rate =
    Arg.(value & opt float 0.3
         & info [ "chaos-worker-rate" ] ~docv:"P"
             ~doc:"Fraction of shards that fault under --chaos-workers \
                   (default 0.3).")
  in
  let chaos_worker_permanent =
    Arg.(value & flag
         & info [ "chaos-worker-permanent" ]
             ~doc:"Injected worker faults fail every attempt (default: \
                   transient — they heal after 1-2 attempts).")
  in
  let mk sup_retries sup_timeout_ms sup_checkpoint sup_resume sup_chaos_workers
      sup_chaos_worker_rate sup_chaos_worker_permanent =
    { sup_retries; sup_timeout_ms; sup_checkpoint; sup_resume;
      sup_chaos_workers; sup_chaos_worker_rate; sup_chaos_worker_permanent }
  in
  Term.(const mk $ retries $ timeout $ checkpoint $ resume $ chaos_workers
        $ chaos_worker_rate $ chaos_worker_permanent)

let sup_engaged o =
  o.sup_retries > 0 || o.sup_timeout_ms <> None || o.sup_checkpoint <> ""
  || o.sup_chaos_workers <> None

let sup_policy o =
  { Supervisor.default_policy with
    Supervisor.max_attempts = 1 + max 0 o.sup_retries;
    timeout_ms = o.sup_timeout_ms }

let sup_inject o =
  Option.map
    (fun seed ->
      Chaos.worker_faults ~seed ~rate:o.sup_chaos_worker_rate
        ~permanent:o.sup_chaos_worker_permanent ())
    o.sup_chaos_workers

let sup_checkpoint o = if o.sup_checkpoint = "" then None else Some o.sup_checkpoint

let emit_supervision (sup : Pipeline.supervision) =
  let s = sup.Pipeline.sup_stats in
  Printf.eprintf
    "supervisor: shards=%d attempts=%d retries=%d poisoned=%d degraded=%d resumed=%d\n"
    s.Supervisor.shards s.Supervisor.attempts s.Supervisor.retries
    s.Supervisor.poisoned s.Supervisor.degraded sup.Pipeline.sup_resumed

(* observability flags: both create a recording sink; the report goes to
   stderr so stdout stays exactly the command's normal output *)

let stats_arg =
  Arg.(value & flag
       & info [ "stats" ]
           ~doc:"Print a telemetry table (counters, histograms, spans) to stderr.")

let stats_json_arg =
  Arg.(value & flag
       & info [ "stats-json" ]
           ~doc:"Print telemetry as one JSON object on stderr (machine form).")

let make_sink ~stats ~stats_json =
  if stats || stats_json then Telemetry.create () else Telemetry.nop

(* [tags] lands ahead of the metric families in the JSON form — the engine
   tag, so a stats consumer can tell which executor produced the numbers *)
let emit_stats ?(tags = []) ~stats ~stats_json sink =
  if Telemetry.is_recording sink then begin
    let snap = Telemetry.snapshot sink in
    if stats_json then begin
      let json =
        match Telemetry_report.to_json snap with
        | Json.Value.Object fields -> Json.Value.Object (tags @ fields)
        | j -> j
      in
      prerr_endline (Json.Printer.to_string json)
    end;
    if stats then prerr_string (Telemetry_report.to_table snap)
  end

let engine_tags engine = [ ("engine", Json.Value.String (engine_name engine)) ]

(* --- parse ----------------------------------------------------------- *)

let parse_cmd =
  let pretty = Arg.(value & flag & info [ "pretty"; "p" ] ~doc:"Pretty-print output.") in
  let run pretty dup_keys max_depth stats stats_json file =
    let options = { Json.Parser.default_options with dup_keys } in
    let sink = make_sink ~stats ~stats_json in
    let docs = or_die (load_documents ~options ~max_depth ~telemetry:sink file) in
    List.iter
      (fun v ->
        print_endline
          (if pretty then Json.Printer.to_string_pretty v else Json.Printer.to_string v))
      docs;
    emit_stats ~stats ~stats_json sink
  in
  Cmd.v (Cmd.info "parse" ~doc:"Parse and re-print JSON documents.")
    Term.(const run $ pretty $ dup_keys_arg
          $ max_depth_arg ~default:Json.Parser.default_options.Json.Parser.max_depth
          $ stats_arg $ stats_json_arg $ input_arg)

(* --- ingest ----------------------------------------------------------- *)

let ingest_cmd =
  let opt_cap names doc =
    Arg.(value & opt (some int) None & info names ~docv:"N" ~doc)
  in
  let max_bytes = opt_cap [ "max-bytes" ] "Byte budget per document (default 8388608)." in
  let max_nodes = opt_cap [ "max-nodes" ] "Node budget per document (default 1000000)." in
  let max_string = opt_cap [ "max-string" ] "Byte budget per string literal (default 1048576)." in
  let max_docs = opt_cap [ "max-docs" ] "Stop after this many ingested documents." in
  let quarantine =
    Arg.(value & opt string ""
         & info [ "quarantine" ] ~docv:"OUT"
             ~doc:"Write dead-letter records (one JSON object per line) here.")
  in
  let chaos =
    Arg.(value & opt (some int) None
         & info [ "chaos" ] ~docv:"SEED"
             ~doc:"Corrupt the input first with seeded fault injection (see --chaos-rate).")
  in
  let chaos_rate =
    Arg.(value & opt float 0.2
         & info [ "chaos-rate" ] ~docv:"P" ~doc:"Fraction of lines to fault (default 0.2).")
  in
  let run max_depth max_bytes max_nodes max_string max_docs dup_keys quarantine
      chaos chaos_rate sup jobs stats stats_json file =
    let sink = make_sink ~stats ~stats_json in
    let text = read_input file in
    let text, faults =
      match chaos with
      | None -> (text, None)
      | Some seed -> (
          let o = Chaos.corrupt ~seed ~rate:chaos_rate text in
          (o.Chaos.text, Some o))
    in
    let d = Resilient.default_budget in
    let cap v dflt = match v with Some _ -> v | None -> dflt in
    let budget =
      { Resilient.max_doc_bytes = cap max_bytes d.Resilient.max_doc_bytes;
        max_nodes = cap max_nodes d.Resilient.max_nodes;
        max_string_bytes = cap max_string d.Resilient.max_string_bytes;
        max_depth;
        max_docs = cap max_docs d.Resilient.max_docs }
    in
    let options = { Json.Parser.default_options with dup_keys } in
    let r =
      if sup_engaged sup then begin
        let r, s =
          or_die
            (Pipeline.ingest_ndjson_supervised ~budget ~options
               ~policy:(sup_policy sup) ?inject:(sup_inject sup)
               ?checkpoint:(sup_checkpoint sup) ~resume:sup.sup_resume ~jobs
               ~telemetry:sink text)
        in
        emit_supervision s;
        r
      end
      else Parallel.ingest ~budget ~options ~jobs ~telemetry:sink text
    in
    (* attribution: dead letters an injected fault can claim get the fault's
       site id as their cause, so a drill is distinguishable from a real
       corpus problem in quarantine output *)
    let dead =
      match faults with
      | Some o -> Chaos.attribute o r.Resilient.dead
      | None -> r.Resilient.dead
    in
    (if quarantine <> "" then begin
       let oc = open_out quarantine in
       (* one buffer reused across the NDJSON emit loop *)
       let buf = Buffer.create 4096 in
       List.iter
         (fun dl ->
           Buffer.clear buf;
           Json.Printer.to_buffer buf (Resilient.dead_letter_to_json dl);
           Buffer.add_char buf '\n';
           Buffer.output_buffer oc buf)
         dead;
       close_out oc
     end);
    let report_fields =
      match r.Resilient.report |> Resilient.report_to_json with
      | Json.Value.Object fields -> (
          match faults with
          | None -> fields
          | Some o ->
              fields
              @ [ ("chaos_faults", Json.Value.Int (List.length o.Chaos.injected));
                  ("chaos_corrupting", Json.Value.Int o.Chaos.corrupting);
                  ("chaos_oversized", Json.Value.Int o.Chaos.oversized);
                  ("chaos_duplicated", Json.Value.Int o.Chaos.duplicated) ])
      | _ -> assert false
    in
    print_endline (Json.Printer.to_string (Json.Value.Object report_fields));
    emit_stats ~stats ~stats_json sink;
    if quarantine <> "" then
      Printf.eprintf "wrote %d dead letters to %s\n" (List.length dead) quarantine
  in
  Cmd.v
    (Cmd.info "ingest"
       ~doc:"Resilient NDJSON ingestion: budgets, quarantine, fault injection.")
    Term.(const run $ max_depth_arg ~default:Resilient.default_budget.Resilient.max_depth
          $ max_bytes $ max_nodes $ max_string $ max_docs $ dup_keys_arg
          $ quarantine $ chaos $ chaos_rate $ sup_term $ jobs_arg $ stats_arg
          $ stats_json_arg $ input_arg)

(* --- validate -------------------------------------------------------- *)

let validate_cmd =
  let schema_file =
    Arg.(required & opt (some string) None & info [ "schema"; "s" ] ~docv:"SCHEMA" ~doc:"Schema file.")
  in
  let language =
    Arg.(value & opt (enum [ ("jsonschema", `Jsonschema); ("jsound", `Jsound) ]) `Jsonschema
         & info [ "language"; "l" ] ~doc:"Schema language: jsonschema or jsound.")
  in
  let formats = Arg.(value & flag & info [ "assert-formats" ] ~doc:"Treat format as an assertion.") in
  let compiled =
    Arg.(value & opt (enum [ ("on", true); ("off", false) ]) true
         & info [ "compiled" ]
             ~doc:"Compiled validation plans: on (default) lowers the schema \
                   once into specialized closures shared across shards; off \
                   re-interprets it per document. Affects cost only — \
                   verdicts and error reports are byte-identical.")
  in
  let validate_cache =
    Arg.(value & opt (enum [ ("on", true); ("off", false) ]) true
         & info [ "validate-cache" ]
             ~doc:"Fingerprint-keyed compiled-schema cache: on (default) or \
                   off. Affects cost only, never verdicts; off forces a \
                   fresh compilation per run and drops the \
                   validate.cache.* counters.")
  in
  let run language formats compiled validate_cache engine sup jobs stats
      stats_json schema_file file =
    Jsonschema.Compile.set_cache validate_cache;
    let sink = make_sink ~stats ~stats_json in
    let schema_json = or_die (Result.map_error Json.Parser.string_of_error (Json.Parser.parse (read_input schema_file))) in
    (* the fused walk needs a compiled plan; JSound has none *)
    let engine =
      match (language, compiled) with
      | (`Jsound, _) | (_, false) -> `Tree
      | _ -> engine
    in
    let failures = ref 0 in
    let print_failures ndocs fs =
      List.iter
        (fun (i, es) ->
          incr failures;
          List.iter
            (fun e ->
              Printf.printf "document %d: %s\n" i (Jsonschema.Validate.string_of_error e))
            es)
        fs;
      Printf.printf "%d/%d documents valid\n" (ndocs - !failures) ndocs
    in
    (match language with
     | `Jsonschema when sup_engaged sup ->
         (* supervised path: quarantining ingestion + per-shard validation
            under retry/timeout, with optional checkpoint/resume *)
         let config =
           { Jsonschema.Validate.default_config with
             Jsonschema.Validate.assert_formats = formats;
             telemetry = sink }
         in
         let r, fs, s =
           or_die
             (Pipeline.validate_ndjson_supervised ~config ~compiled
                ~budget:Resilient.unbounded_budget ~policy:(sup_policy sup)
                ?inject:(sup_inject sup) ?checkpoint:(sup_checkpoint sup)
                ~resume:sup.sup_resume ~engine ~jobs ~telemetry:sink
                ~root:schema_json (read_input file))
         in
         emit_supervision s;
         (* the streaming engine does not materialize documents: the
            survivor count reads off the report for both engines *)
         print_failures r.Resilient.report.Resilient.ok fs
     | `Jsonschema ->
         let config =
           { Jsonschema.Validate.default_config with
             Jsonschema.Validate.assert_formats = formats;
             telemetry = sink }
         in
         (* shard-parallel; failures come back in input order, so the
            printout matches the sequential one — and the tree engine's *)
         let ndocs, fs =
           or_die
             (Pipeline.validate_ndjson_strict ~config ~compiled ~engine ~jobs
                ~telemetry:sink ~root:schema_json (read_input file))
         in
         print_failures ndocs fs
     | `Jsound ->
         let docs = or_die (load_documents ~jobs ~telemetry:sink file) in
         let schema = or_die (Jsound.parse schema_json) in
         List.iteri
           (fun i v ->
             match Jsound.validate schema v with
             | Ok () -> ()
             | Error es ->
                 incr failures;
                 List.iter
                   (fun e -> Printf.printf "document %d: %s\n" i (Jsound.string_of_error e))
                   es)
           docs;
         Printf.printf "%d/%d documents valid\n" (List.length docs - !failures)
           (List.length docs));
    emit_stats ~tags:(engine_tags engine) ~stats ~stats_json sink;
    if !failures > 0 then exit 1
  in
  Cmd.v (Cmd.info "validate" ~doc:"Validate documents against a schema.")
    Term.(const run $ language $ formats $ compiled $ validate_cache
          $ engine_arg $ sup_term $ jobs_arg $ stats_arg $ stats_json_arg
          $ schema_file $ input_arg)

(* --- infer ----------------------------------------------------------- *)

let infer_cmd =
  let approach =
    Arg.(value
         & opt (enum [ ("parametric", `Parametric); ("spark", `Spark); ("mongo", `Mongo);
                       ("skinfer", `Skinfer); ("skeleton", `Skeleton) ]) `Parametric
         & info [ "approach"; "a" ] ~doc:"Inference approach.")
  in
  let equiv =
    Arg.(value & opt (enum [ ("kind", Jtype.Merge.Kind); ("label", Jtype.Merge.Label) ]) Jtype.Merge.Kind
         & info [ "equiv"; "e" ] ~doc:"Equivalence for parametric inference: kind or label.")
  in
  let output =
    Arg.(value
         & opt (enum [ ("type", `Type); ("counting", `Counting); ("jsonschema", `Schema);
                       ("typescript", `Ts); ("swift", `Swift) ]) `Type
         & info [ "output"; "o" ] ~doc:"Output form for parametric inference.")
  in
  let merge_cache =
    Arg.(value & opt (enum [ ("on", true); ("off", false) ]) true
         & info [ "merge-cache" ]
             ~doc:"Memoized fusion cache of the hash-consed type kernel: on \
                   (default) or off. Affects cost only, never the inferred \
                   type; off bounds memory on pathological corpora and gives \
                   an unmemoized baseline for comparisons.")
  in
  let run approach equiv output merge_cache engine sup jobs stats stats_json
      file =
    Jtype.Merge.set_memoize merge_cache;
    let sink = make_sink ~stats ~stats_json in
    (* only the parametric map/reduce has a token-level fold *)
    let engine = if approach = `Parametric then engine else `Tree in
    let print_inferred inferred output =
      match output with
      | `Type -> print_endline (Jtype.Types.to_string inferred.Pipeline.jtype)
      | `Counting -> print_endline (Jtype.Counting.to_string inferred.Pipeline.counting)
      | `Schema -> print_endline (Json.Printer.to_string_pretty inferred.Pipeline.json_schema)
      | `Ts -> print_endline inferred.Pipeline.typescript
      | `Swift -> print_endline inferred.Pipeline.swift
    in
    if approach = `Parametric && sup_engaged sup then begin
      (* supervised path: quarantining ingestion (unlike the fail-fast
         default), retry/timeout per shard, optional checkpoint/resume *)
      let inferred, r, s =
        or_die
          (Pipeline.infer_ndjson_supervised ~equiv
             ~budget:Resilient.unbounded_budget ~policy:(sup_policy sup)
             ?inject:(sup_inject sup) ?checkpoint:(sup_checkpoint sup)
             ~resume:sup.sup_resume ~engine ~jobs ~telemetry:sink
             (read_input file))
      in
      emit_supervision s;
      (match inferred with
       | Some inferred -> print_inferred inferred output
       | None ->
           Printf.eprintf "jsontool: no documents survived ingestion (%d dead)\n"
             (List.length r.Resilient.dead);
           exit 1);
      emit_stats ~tags:(engine_tags engine) ~stats ~stats_json sink
    end
    else if approach = `Parametric then begin
      (* strict like the tree path below — the first bad document aborts
         with the same error — but folding tokens straight into types *)
      let inferred =
        or_die
          (Pipeline.infer_ndjson ~equiv ~engine ~jobs ~telemetry:sink
             (read_input file))
      in
      print_inferred inferred output;
      emit_stats ~tags:(engine_tags engine) ~stats ~stats_json sink
    end
    else begin
    let docs = or_die (load_documents ~jobs ~telemetry:sink file) in
    (match approach with
    | `Parametric -> assert false (* handled above *)
    | `Spark ->
        let f = Inference.Spark.infer docs in
        print_endline (Inference.Spark.field_to_ddl f)
    | `Mongo ->
        print_endline
          (Json.Printer.to_string_pretty (Inference.Mongo.to_json (Inference.Mongo.analyze docs)))
    | `Skinfer ->
        print_endline (Json.Printer.to_string_pretty (Inference.Skinfer.infer_json docs))
    | `Skeleton ->
        let sk = Inference.Skeleton.build docs in
        List.iter
          (fun (s, n) ->
            Printf.printf "%6d  %s\n" n (Inference.Skeleton.structure_to_string s))
          sk.Inference.Skeleton.groups;
        Printf.printf "(%d documents outside the skeleton)\n" sk.Inference.Skeleton.dropped);
    emit_stats ~tags:(engine_tags engine) ~stats ~stats_json sink
    end
  in
  Cmd.v (Cmd.info "infer" ~doc:"Infer a schema from a collection.")
    Term.(const run $ approach $ equiv $ output $ merge_cache $ engine_arg
          $ sup_term $ jobs_arg $ stats_arg $ stats_json_arg $ input_arg)

(* --- check ----------------------------------------------------------- *)

let check_cmd =
  let schema_file =
    Arg.(required & opt (some string) None
         & info [ "schema"; "s" ] ~docv:"SCHEMA" ~doc:"Schema file.")
  in
  let formats =
    Arg.(value & flag
         & info [ "assert-formats" ]
             ~doc:"Treat format as an assertion (a schema with an asserted \
                   format can then never be proved to contain a type).")
  in
  let equiv =
    Arg.(value & opt (enum [ ("kind", Jtype.Merge.Kind); ("label", Jtype.Merge.Label) ]) Jtype.Merge.Kind
         & info [ "equiv"; "e" ] ~doc:"Equivalence for the inference step: kind or label.")
  in
  let run equiv formats engine sup jobs stats stats_json schema_file file =
    let sink = make_sink ~stats ~stats_json in
    let schema_json =
      or_die
        (Result.map_error Json.Parser.string_of_error
           (Json.Parser.parse (read_input schema_file)))
    in
    let vconfig =
      { Jsonschema.Validate.default_config with
        Jsonschema.Validate.assert_formats = formats }
    in
    let checked, r, s =
      or_die
        (Pipeline.check_ndjson ~equiv ~budget:Resilient.unbounded_budget
           ~policy:(sup_policy sup) ?inject:(sup_inject sup)
           ?checkpoint:(sup_checkpoint sup) ~resume:sup.sup_resume ~engine
           ~jobs ~telemetry:sink ~vconfig ~root:schema_json (read_input file))
    in
    if sup_engaged sup then emit_supervision s;
    let code =
      match (checked.Pipeline.chk_inferred, checked.Pipeline.chk_verdict) with
      | None, _ | _, None ->
          Printf.eprintf "jsontool: no documents survived ingestion (%d dead)\n"
            (List.length r.Resilient.dead);
          1
      | Some inferred, Some verdict -> (
          Printf.printf "inferred: %s\n"
            (Jtype.Types.to_string inferred.Pipeline.jtype);
          match verdict with
          | Jtype.Contain.Contained ->
              print_endline "contained: every instance of the inferred type satisfies the schema";
              0
          | Jtype.Contain.Not_contained w ->
              Printf.printf
                "NOT contained: the schema rejects this instance of the inferred type:\n  %s\n"
                (Json.Printer.to_string w);
              1
          | Jtype.Contain.Unknown reason ->
              Printf.printf "unknown: %s\n" reason;
              2)
    in
    emit_stats ~tags:(engine_tags engine) ~stats ~stats_json sink;
    if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Check a collection against a schema statically: infer the \
             collection's type, then decide whether every value of that type \
             satisfies the schema. Exit 0 = contained, 1 = a counter-example \
             witness exists (printed), 2 = outside the decided fragment.")
    Term.(const run $ equiv $ formats $ engine_arg $ sup_term $ jobs_arg
          $ stats_arg $ stats_json_arg $ schema_file $ input_arg)

(* --- stats ----------------------------------------------------------- *)

let stats_cmd =
  let run file =
    let docs = or_die (load_documents file) in
    print_endline (Json.Printer.to_string_pretty (Pipeline.profile docs))
  in
  Cmd.v (Cmd.info "stats" ~doc:"Profile a collection.") Term.(const run $ input_arg)

(* --- translate --------------------------------------------------------- *)

let translate_cmd =
  let target =
    Arg.(value & opt (enum [ ("avro", `Avro); ("columnar", `Columnar) ]) `Avro
         & info [ "to"; "t" ] ~doc:"Target format: avro or columnar.")
  in
  let out = Arg.(value & opt string "" & info [ "output-file" ] ~docv:"OUT" ~doc:"Write binary output here.") in
  let run target out file =
    let docs = or_die (load_documents file) in
    let tr = or_die (Pipeline.translate docs) in
    let bytes =
      match target with `Avro -> tr.Pipeline.avro_bytes | `Columnar -> tr.Pipeline.columnar_bytes
    in
    (if out <> "" then begin
       let oc = open_out_bin out in
       output_string oc bytes;
       close_out oc
     end);
    Printf.printf "json: %d bytes; %s: %d bytes (%.1f%%)\n" tr.Pipeline.json_bytes
      (match target with `Avro -> "avro" | `Columnar -> "columnar")
      (String.length bytes)
      (100.0 *. float_of_int (String.length bytes) /. float_of_int tr.Pipeline.json_bytes);
    if target = `Avro then
      print_endline (Json.Printer.to_string_pretty tr.Pipeline.avro_schema)
  in
  Cmd.v (Cmd.info "translate" ~doc:"Schema-aware translation to binary formats.")
    Term.(const run $ target $ out $ input_arg)

(* --- generate ----------------------------------------------------------- *)

let generate_cmd =
  let corpus =
    Arg.(value
         & opt (enum [ ("tweets", `Tweets); ("articles", `Articles); ("opendata", `Opendata);
                       ("orders", `Orders); ("events", `Events); ("tickets", `Tickets) ]) `Tweets
         & info [ "corpus"; "c" ] ~doc:"Corpus kind.")
  in
  let count = Arg.(value & opt int 100 & info [ "n" ] ~doc:"Number of documents.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let run corpus count seed =
    let st = Datagen.rng ~seed in
    let docs =
      match corpus with
      | `Tweets -> Datagen.tweets st count
      | `Articles -> Datagen.articles st count
      | `Opendata -> Datagen.open_data st count
      | `Orders -> Datagen.orders st count
      | `Tickets -> Datagen.tickets st count
      | `Events -> Datagen.events st ~fields:16 count
    in
    print_string (Datagen.to_ndjson docs)
  in
  Cmd.v (Cmd.info "generate" ~doc:"Generate synthetic corpora.")
    Term.(const run $ corpus $ count $ seed)

(* --- query ----------------------------------------------------------------- *)

let query_cmd =
  let query_string =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"QUERY"
             ~doc:"Pipeline, e.g. 'filter \\$.age > 18 | group by \\$.city into {n: count}'.")
  in
  let file =
    Arg.(value & pos 1 string "-" & info [] ~docv:"FILE" ~doc:"Input collection.")
  in
  let show_type =
    Arg.(value & flag & info [ "type" ] ~doc:"Also print the inferred output schema.")
  in
  let run q show_type file =
    let docs = or_die (load_documents file) in
    let pipeline = or_die (Query.Parse.pipeline q) in
    if show_type then begin
      let input_t =
        Jtype.Merge.merge_all ~equiv:Jtype.Merge.Kind
          (List.map Jtype.Types.of_value docs)
      in
      Printf.printf "input  type: %s\n" (Jtype.Types.to_string input_t);
      Printf.printf "output type: %s\n"
        (Jtype.Types.to_string (Query.Typing.type_pipeline input_t pipeline))
    end;
    List.iter
      (fun v -> print_endline (Json.Printer.to_string v))
      (Query.Eval.run pipeline docs)
  in
  Cmd.v (Cmd.info "query" ~doc:"Run a Jaql-style pipeline (with output schema inference).")
    Term.(const run $ query_string $ show_type $ file)

(* --- compat ------------------------------------------------------------------ *)

let compat_cmd =
  let old_schema =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OLD" ~doc:"Old schema file.")
  in
  let new_schema =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"NEW" ~doc:"New schema file.")
  in
  let run old_file new_file =
    let load f =
      or_die (Result.map_error Json.Parser.string_of_error (Json.Parser.parse (read_input f)))
    in
    let old_s = load old_file and new_s = load new_file in
    (* backward compatibility: everything valid under the old schema must
       stay valid under the new one *)
    (match Jtype.Containment.check old_s new_s with
     | Jtype.Containment.Included ->
         print_endline "backward compatible: old instances remain valid"
     | Jtype.Containment.Not_included cex ->
         Printf.printf "NOT backward compatible; counterexample:\n  %s\n"
           (Json.Printer.to_string cex);
         exit 1
     | Jtype.Containment.Unknown ->
         print_endline "backward compatibility: unknown (outside the decidable fragment)");
    match Jtype.Containment.check new_s old_s with
    | Jtype.Containment.Included ->
        print_endline "forward compatible: new instances validate against the old schema"
    | Jtype.Containment.Not_included cex ->
        Printf.printf "not forward compatible (expected for widening changes); example:\n  %s\n"
          (Json.Printer.to_string cex)
    | Jtype.Containment.Unknown -> print_endline "forward compatibility: unknown"
  in
  Cmd.v
    (Cmd.info "compat" ~doc:"Check schema-evolution compatibility between two JSON Schemas.")
    Term.(const run $ old_schema $ new_schema)

(* --- discover ---------------------------------------------------------------- *)

let discover_cmd =
  let threshold =
    Arg.(value & opt float 0.5 & info [ "threshold" ] ~doc:"Jaccard similarity threshold.")
  in
  let run threshold file =
    let docs = or_die (load_documents file) in
    let clusters = Inference.Discovery.discover ~threshold docs in
    List.iteri
      (fun i (c : Inference.Discovery.cluster) ->
        Printf.printf "cluster %d: %d documents\n  %s\n" i c.Inference.Discovery.size
          (Jtype.Types.to_string c.Inference.Discovery.schema))
      clusters
  in
  Cmd.v (Cmd.info "discover" ~doc:"Cluster a mixed collection by structural similarity.")
    Term.(const run $ threshold $ input_arg)

(* --- profile ----------------------------------------------------------------- *)

let profile_cmd =
  let depth = Arg.(value & opt int 4 & info [ "depth" ] ~doc:"Maximum tree depth.") in
  let run depth file =
    let docs = or_die (load_documents file) in
    let p = Inference.Profile.profile ~max_depth:depth docs in
    Printf.printf "structural variants: %d; training accuracy %.3f\n"
      (List.length p.Inference.Profile.variants)
      p.Inference.Profile.training_accuracy;
    List.iter (fun r -> print_endline ("  " ^ r)) (Inference.Profile.rules p)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Explain structural variants with a decision tree over field values.")
    Term.(const run $ depth $ input_arg)

(* --- normalize ------------------------------------------------------------ *)

let normalize_cmd =
  let outdir = Arg.(value & opt string "" & info [ "outdir"; "d" ] ~doc:"Write one CSV per table here.") in
  let run outdir file =
    let docs = or_die (load_documents file) in
    let r = Inference.Relational.normalize ~name:"root" docs in
    Printf.printf "cells: %d -> %d (%.1f%% of original)\n" r.Inference.Relational.cells_before
      r.Inference.Relational.cells_after
      (100.0
      *. float_of_int r.Inference.Relational.cells_after
      /. float_of_int (max 1 r.Inference.Relational.cells_before));
    List.iter
      (fun (name, csv) ->
        if outdir = "" then begin
          Printf.printf "-- %s --\n%s" name csv
        end
        else begin
          let path = Filename.concat outdir (name ^ ".csv") in
          let oc = open_out path in
          output_string oc csv;
          close_out oc;
          Printf.printf "wrote %s\n" path
        end)
      (Translate.Csv_export.result_to_csvs r)
  in
  Cmd.v (Cmd.info "normalize" ~doc:"Normalize nested JSON into relational CSVs.")
    Term.(const run $ outdir $ input_arg)

let () =
  let doc = "schemas and types for JSON data — toolkit CLI" in
  let info = Cmd.info "jsontool" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ parse_cmd; ingest_cmd; validate_cmd; infer_cmd; check_cmd;
            stats_cmd; translate_cmd; generate_cmd; query_cmd; discover_cmd;
            profile_cmd; compat_cmd; normalize_cmd ]))
