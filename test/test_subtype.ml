(* Soundness and termination suite for the subtype/containment engine.

   Two random oracles anchor everything:

   - value-level: a value [v] has type [of_value v] by construction, so
     [Subtype.check (of_value v) b = Sub] must imply [Typecheck.member v b]
     — soundness of Sub without ever trusting the checker's own witness
     machinery.
   - engine-level: a [Contain.Not_contained w] verdict must name a value
     of the type that BOTH real validation engines reject, and a
     [Contained] verdict must mean every corpus value validates — the
     acceptance property of the PR, checked against Validate and Compile
     rather than against the checker itself.

   The conformance/containment/*.json corpus pins hand-written cases
   (type, schema, expected verdict, witness validity) through the same
   oracle. *)

open Jtype
module V = Json.Value

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* --- generators -------------------------------------------------------- *)

(* Field names from a tiny pool so random record types overlap — subtyping
   between records with disjoint fields is trivially refuted and tests
   nothing. *)
let gen_type : Types.t QCheck2.Gen.t =
  QCheck2.Gen.(
    let scalar =
      oneofl [ Types.null; Types.bool; Types.int; Types.num; Types.str ]
    in
    let leaf =
      frequency [ (8, scalar); (1, return Types.bot); (1, return Types.any) ]
    in
    let key = string_size ~gen:(char_range 'a' 'd') (return 1) in
    sized @@ fix (fun self n ->
        if n <= 0 then leaf
        else
          frequency
            [ (3, leaf);
              (2, map Types.arr (self (n / 2)));
              (2,
               map
                 (fun fields ->
                   let seen = Hashtbl.create 4 in
                   Types.rec_
                     (List.filter
                        (fun (f : Types.field) ->
                          if Hashtbl.mem seen f.Types.fname then false
                          else begin
                            Hashtbl.add seen f.Types.fname ();
                            true
                          end)
                        fields))
                 (list_size (int_range 0 3)
                    (map2
                       (fun (k, opt) t -> Types.field ~optional:opt k t)
                       (pair key bool) (self (n / 2)))));
              (2, map Types.union (list_size (int_range 2 4) (self (n / 2))));
            ]))

let gen_value = QCheck2.Gen.(
  let scalar =
    oneof
      [ return V.Null;
        map (fun b -> V.Bool b) bool;
        map (fun n -> V.Int n) (int_range (-100) 100);
        map (fun f -> V.Float f) (float_range (-100.) 100.);
        map (fun s -> V.String s) (string_size ~gen:(char_range 'a' 'e') (int_range 0 3));
      ]
  in
  let key = string_size ~gen:(char_range 'a' 'd') (return 1) in
  sized @@ fix (fun self n ->
      if n <= 0 then scalar
      else
        frequency
          [ (3, scalar);
            (1, map (fun vs -> V.Array vs) (list_size (int_range 0 3) (self (n / 2))));
            (1,
             map
               (fun fields ->
                 let seen = Hashtbl.create 4 in
                 V.Object
                   (List.filter
                      (fun (k, _) ->
                        if Hashtbl.mem seen k then false
                        else (Hashtbl.add seen k (); true))
                      fields))
               (list_size (int_range 0 3) (pair key (self (n / 2)))));
          ]))

(* --- QCheck properties -------------------------------------------------- *)

let prop_reflexive =
  QCheck2.Test.make ~name:"subtype: reflexivity" ~count:500 gen_type (fun t ->
      Subtype.check t t = Subtype.Sub)

let prop_witness_sound =
  QCheck2.Test.make ~name:"subtype: witness is in a, not in b" ~count:1000
    QCheck2.Gen.(pair gen_type gen_type)
    (fun (a, b) ->
      match Subtype.check a b with
      | Subtype.Not_sub w -> Typecheck.member w a && not (Typecheck.member w b)
      | Subtype.Sub | Subtype.Unknown _ -> true)

let prop_sub_sound_on_values =
  QCheck2.Test.make ~name:"subtype: Sub implies membership transfers"
    ~count:1000
    QCheck2.Gen.(pair gen_value gen_type)
    (fun (v, b) ->
      let a = Types.of_value v in
      match Subtype.check a b with
      | Subtype.Sub -> Typecheck.member v b
      | Subtype.Not_sub _ | Subtype.Unknown _ -> true)

let prop_at_least_syntactic =
  (* the syntactic approximation is sound, so everything it proves the
     witness engine must also prove — it can only be more complete *)
  QCheck2.Test.make ~name:"subtype: refines Typecheck.subtype" ~count:1000
    QCheck2.Gen.(pair gen_type gen_type)
    (fun (a, b) ->
      (not (Typecheck.subtype a b)) || Subtype.check a b = Subtype.Sub)

let prop_union_monotone =
  QCheck2.Test.make ~name:"subtype: t ≤ t ∪ u" ~count:500
    QCheck2.Gen.(pair gen_type gen_type)
    (fun (t, u) -> Subtype.check t (Types.union [ t; u ]) = Subtype.Sub)

(* engine-level containment oracle *)
let prop_contain_oracle =
  QCheck2.Test.make ~name:"contain: witness rejected by both engines"
    ~count:400
    QCheck2.Gen.(pair (list_size (int_range 1 6) gen_value) gen_type)
    (fun (corpus, shape) ->
      let t =
        Merge.merge_all ~equiv:Merge.Kind (List.map Types.of_value corpus)
      in
      let root = Interop.to_schema_json shape in
      match Contain.check ~root t with
      | Contain.Contained ->
          (* every corpus value has type t, so all must validate *)
          List.for_all (fun v -> Jsonschema.Validate.is_valid ~root v) corpus
      | Contain.Not_contained w ->
          Typecheck.member w t
          && (not (Jsonschema.Validate.is_valid ~root w))
          && (match Jsonschema.Compile.compile root with
             | Ok plan -> not (Jsonschema.Compile.is_valid plan w)
             | Error _ -> false)
      | Contain.Unknown _ -> true)

let prop_contain_self =
  QCheck2.Test.make ~name:"contain: type contained in its own translation"
    ~count:400
    QCheck2.Gen.(list_size (int_range 1 6) gen_value)
    (fun corpus ->
      let t =
        Merge.merge_all ~equiv:Merge.Kind (List.map Types.of_value corpus)
      in
      match Contain.check ~root:(Interop.to_schema_json t) t with
      | Contain.Contained -> true
      | Contain.Not_contained _ -> false (* would be outright unsound *)
      | Contain.Unknown _ -> true (* conservative is allowed, wrong is not *))

(* --- unit pins ---------------------------------------------------------- *)

let verdict_kind = function
  | Subtype.Sub -> "sub"
  | Subtype.Not_sub _ -> "not_sub"
  | Subtype.Unknown _ -> "unknown"

let check_kind = Alcotest.(check string)

let test_scalars () =
  check_kind "int ≤ num" "sub" (verdict_kind (Subtype.check Types.int Types.num));
  check_kind "num ≰ int" "not_sub" (verdict_kind (Subtype.check Types.num Types.int));
  check_kind "int ≤ int+str" "sub"
    (verdict_kind (Subtype.check Types.int (Types.union [ Types.int; Types.str ])));
  check_kind "bot ≤ anything" "sub" (verdict_kind (Subtype.check Types.bot Types.null));
  check_kind "null ≰ bot" "not_sub" (verdict_kind (Subtype.check Types.null Types.bot));
  check_kind "any absorbs" "sub" (verdict_kind (Subtype.check Types.str Types.any));
  check_kind "any ≰ str" "not_sub" (verdict_kind (Subtype.check Types.any Types.str))

let test_records () =
  let r fields = Types.rec_ fields in
  let f = Types.field in
  (* width: extra mandatory field breaks closed-record subtyping *)
  check_kind "extra mandatory field" "not_sub"
    (verdict_kind
       (Subtype.check (r [ f "a" Types.int; f "b" Types.str ]) (r [ f "a" Types.int ])));
  (* depth *)
  check_kind "field depth" "sub"
    (verdict_kind (Subtype.check (r [ f "a" Types.int ]) (r [ f "a" Types.num ])));
  (* optional supertype field admits both presence and absence *)
  check_kind "mandatory ≤ optional" "sub"
    (verdict_kind
       (Subtype.check (r [ f "a" Types.int ]) (r [ f ~optional:true "a" Types.int ])));
  check_kind "optional ≰ mandatory" "not_sub"
    (verdict_kind
       (Subtype.check (r [ f ~optional:true "a" Types.int ]) (r [ f "a" Types.int ])));
  (* uninhabited mandatory field: the type is empty, vacuously below all *)
  check_kind "uninhabited record" "sub"
    (verdict_kind (Subtype.check (r [ f "a" Types.bot ]) Types.str))

let test_union_distribution () =
  let r fields = Types.rec_ fields in
  let f = Types.field in
  (* {a: Int+Str} vs {a:Int} ∪ {a:Str}: semantically contained, but only
     by distributing the union over the record — outside the fragment *)
  let sub = r [ f "a" (Types.union [ Types.int; Types.str ]) ] in
  let super =
    Types.union [ r [ f "a" Types.int ]; r [ f "a" Types.str ] ]
  in
  check_kind "distribution is Unknown, never Not_sub" "unknown"
    (verdict_kind (Subtype.check sub super));
  (* a genuine counter-example variant of the same shape *)
  let sub2 =
    r [ f "a" (Types.union [ Types.int; Types.str ]); f "b" Types.int ]
  in
  let super2 =
    Types.union
      [ r [ f "a" Types.int; f "b" Types.int ]; r [ f "a" Types.str ] ]
  in
  match Subtype.check sub2 super2 with
  | Subtype.Not_sub w ->
      Alcotest.(check bool) "witness in sub2" true (Typecheck.member w sub2);
      Alcotest.(check bool) "witness not in super2" false (Typecheck.member w super2)
  | v -> Alcotest.failf "expected a witness, got %s" (Subtype.verdict_to_string v)

let test_wide_and_deep_termination () =
  (* wide: a union of 60 distinct record types, checked against a widened
     copy of itself — repeat queries must hit the memo, not recompute *)
  let mk i =
    Types.rec_
      [ Types.field "tag" Types.int;
        Types.field (Printf.sprintf "f%02d" i) Types.str ]
  in
  let wide = Types.union (List.init 60 mk) in
  check_kind "wide union reflexive" "sub" (verdict_kind (Subtype.check wide wide));
  (* deep: nested arrays/records, Int widened to Num at the bottom *)
  let rec deep n t = if n = 0 then t else deep (n - 1) (Types.arr (Types.rec_ [ Types.field "x" t ])) in
  check_kind "deep nesting Int ≤ Num" "sub"
    (verdict_kind (Subtype.check (deep 40 Types.int) (deep 40 Types.num)));
  match Subtype.check (deep 40 Types.num) (deep 40 Types.int) with
  | Subtype.Not_sub w ->
      Alcotest.(check bool) "deep witness checks out" true
        (Typecheck.member w (deep 40 Types.num)
        && not (Typecheck.member w (deep 40 Types.int)))
  | v -> Alcotest.failf "expected a witness, got %s" (Subtype.verdict_to_string v)

let test_contain_basics () =
  let parse s = Result.get_ok (Json.Parser.parse s) in
  let kind = function
    | Contain.Contained -> "contained"
    | Contain.Not_contained _ -> "not_contained"
    | Contain.Unknown _ -> "unknown"
  in
  let t = Types.rec_ [ Types.field "a" Types.int; Types.field "b" Types.str ] in
  Alcotest.(check string) "closed object" "contained"
    (kind
       (Contain.check
          ~root:(parse {|{"type":"object","required":["a"],"properties":{"a":{"type":"number"},"b":{"type":"string"}}}|})
          t));
  Alcotest.(check string) "bounds refuted" "not_contained"
    (kind
       (Contain.check
          ~root:(parse {|{"type":"object","properties":{"a":{"type":"integer","minimum":0}}}|})
          t));
  Alcotest.(check string) "pattern is unknown" "unknown"
    (kind
       (Contain.check
          ~root:(parse {|{"type":"object","properties":{"b":{"type":"string","pattern":".*"}}}|})
          t));
  Alcotest.(check string) "int vs multipleOf 1 proved" "contained"
    (kind (Contain.check ~root:(parse {|{"type":"integer","multipleOf":1}|}) Types.int));
  Alcotest.(check string) "enum over finite bool" "contained"
    (kind (Contain.check ~root:(parse {|{"enum":[true,false,0]}|}) Types.bool));
  Alcotest.(check string) "enum pigeonholed over int" "not_contained"
    (kind (Contain.check ~root:(parse {|{"enum":[0,1,2]}|}) Types.int))

(* --- conformance corpus: type, schema, expected verdict ----------------- *)

let containment_corpus_case file case =
  let get k fields = List.assoc_opt k fields in
  match case with
  | V.Object fields ->
      let name =
        match get "description" fields with
        | Some (V.String s) -> s
        | _ -> "?"
      in
      let fail fmt = Alcotest.failf ("%s :: %s : " ^^ fmt) file name in
      let t =
        match get "type" fields with
        | Some tj -> (
            match Types.of_json tj with
            | Ok t -> t
            | Error e -> fail "bad type: %s" e)
        | None -> fail "missing type"
      in
      let root =
        match get "schema" fields with Some s -> s | None -> fail "missing schema"
      in
      let expected =
        match get "verdict" fields with
        | Some (V.String s) -> s
        | _ -> fail "missing verdict"
      in
      (match (Contain.check ~root t, expected) with
      | Contain.Contained, "contained" -> ()
      | Contain.Not_contained w, "not_contained" ->
          (* the corpus promise: the witness is rejected by both engines *)
          if Typecheck.member w t = false then
            fail "witness %s not a member of the type" (Json.Printer.to_string w);
          if Jsonschema.Validate.is_valid ~root w then
            fail "witness %s accepted by Validate" (Json.Printer.to_string w);
          (match Jsonschema.Compile.compile root with
          | Ok plan ->
              if Jsonschema.Compile.is_valid plan w then
                fail "witness %s accepted by Compile" (Json.Printer.to_string w)
          | Error _ -> fail "schema failed to compile")
      | Contain.Unknown _, "unknown" -> ()
      | got, _ ->
          fail "expected %s, got %s" expected (Contain.verdict_to_string got))
  | _ -> Alcotest.failf "%s: corpus case must be an object" file

let test_containment_corpus () =
  let dir = Filename.concat "conformance" "containment" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort String.compare
  in
  Alcotest.(check bool) "corpus present" true (files <> []);
  let cases = ref 0 in
  List.iter
    (fun f ->
      match Json.Parser.parse (read_file (Filename.concat dir f)) with
      | Error e ->
          Alcotest.failf "%s: %s" f (Json.Parser.string_of_error e)
      | Ok (V.Array cs) ->
          List.iter
            (fun c ->
              incr cases;
              containment_corpus_case f c)
            cs
      | Ok _ -> Alcotest.failf "%s: corpus file must be an array" f)
    files;
  Printf.printf "containment corpus: %d cases\n" !cases;
  Alcotest.(check bool) "at least 30 cases" true (!cases >= 30)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "subtype"
    [ ("properties",
       q
         [ prop_reflexive; prop_witness_sound; prop_sub_sound_on_values;
           prop_at_least_syntactic; prop_union_monotone; prop_contain_oracle;
           prop_contain_self ]);
      ("units",
       [ Alcotest.test_case "scalars" `Quick test_scalars;
         Alcotest.test_case "records" `Quick test_records;
         Alcotest.test_case "union distribution" `Quick test_union_distribution;
         Alcotest.test_case "wide and deep" `Quick test_wide_and_deep_termination;
         Alcotest.test_case "contain basics" `Quick test_contain_basics ]);
      ("corpus",
       [ Alcotest.test_case "containment corpus" `Quick test_containment_corpus ]) ]
