(* Tests for the JSON Schema implementation: keyword-by-keyword validation
   semantics, $ref resolution, round-trip printing, well-formedness,
   instance generation. *)

let parse = Json.Parser.parse_exn

let valid ?config schema_src instance_src =
  Jsonschema.Validate.is_valid ?config ~root:(parse schema_src) (parse instance_src)

let check_valid ?config schema_src instance_src =
  if not (valid ?config schema_src instance_src) then
    Alcotest.fail (Printf.sprintf "%s should accept %s" schema_src instance_src)

let check_invalid ?config schema_src instance_src =
  if valid ?config schema_src instance_src then
    Alcotest.fail (Printf.sprintf "%s should reject %s" schema_src instance_src)

(* --- keyword semantics ------------------------------------------------ *)

let test_boolean_schemas () =
  check_valid "true" "17";
  check_valid "{}" {|{"anything": ["goes"]}|};
  check_invalid "false" "17"

let test_type_keyword () =
  check_valid {|{"type": "string"}|} {|"x"|};
  check_invalid {|{"type": "string"}|} "1";
  check_valid {|{"type": "integer"}|} "3";
  (* a float with integral value is an integer, per draft-6+ *)
  check_valid {|{"type": "integer"}|} "3.0";
  check_invalid {|{"type": "integer"}|} "3.5";
  check_valid {|{"type": "number"}|} "3.5";
  check_valid {|{"type": ["string", "null"]}|} "null";
  check_invalid {|{"type": ["string", "null"]}|} "true";
  check_valid {|{"type": "array"}|} "[]";
  check_valid {|{"type": "object"}|} "{}";
  check_invalid {|{"type": "object"}|} "[]";
  (* assertions for other types are vacuous *)
  check_valid {|{"minLength": 100}|} "42";
  check_valid {|{"minimum": 100}|} {|"short"|}

let test_enum_const () =
  check_valid {|{"enum": [1, "two", [3], {"f": 4}]}|} {|{"f": 4}|};
  check_valid {|{"enum": [1, "two"]}|} "1";
  check_invalid {|{"enum": [1, "two"]}|} "2";
  (* enum comparison is unordered-object equality *)
  check_valid {|{"enum": [{"a": 1, "b": 2}]}|} {|{"b": 2, "a": 1}|};
  check_valid {|{"const": 3}|} "3";
  check_valid {|{"const": 3}|} "3.0";
  check_invalid {|{"const": 3}|} "4"

(* Audited and verified not a bug: JSON has one number type, so 1 and 1.0
   must be the same value to uniqueItems/enum/const. The tree engine's
   sorted-dup check goes through Value.compare (which compares Int/Float
   through the float image) and the compiled engine's hashed literal sets
   hash Int through the same image — this pins both, including the hashed
   path (enum >= 4 literals) the scan-path tests never reach. *)
let test_numeric_literal_equality_both_engines () =
  let both schema_src instance_src expect =
    let schema = parse schema_src and instance = parse instance_src in
    let tree = Jsonschema.Validate.is_valid ~root:schema instance in
    let compiled =
      match Jsonschema.Compile.compile schema with
      | Ok plan -> Jsonschema.Compile.is_valid plan instance
      | Error _ -> Alcotest.fail (schema_src ^ " must compile")
    in
    Alcotest.(check bool) ("tree: " ^ schema_src ^ " / " ^ instance_src)
      expect tree;
    Alcotest.(check bool) ("compiled: " ^ schema_src ^ " / " ^ instance_src)
      expect compiled
  in
  both {|{"uniqueItems": true}|} "[1, 1.0]" false;
  both {|{"uniqueItems": true}|} {|[{"a": 1}, {"a": 1.0}]|} false;
  both {|{"uniqueItems": true}|} {|[1, "1"]|} true;
  both {|{"enum": [1]}|} "1.0" true;
  both {|{"const": 1}|} "1.0" true;
  both {|{"const": 1.0}|} "1" true;
  (* >= 4 literals engages Compile's hashed literal_set *)
  both {|{"enum": [1, 2.0, 3, "x"]}|} "1.0" true;
  both {|{"enum": [1, 2.0, 3, "x"]}|} "2" true;
  both {|{"enum": [1, 2.0, 3, "x"]}|} "2.5" false;
  both {|{"enum": [1, 2.0, 3, "x"]}|} {|"1"|} false

let test_numeric_keywords () =
  check_valid {|{"minimum": 2, "maximum": 5}|} "3";
  check_valid {|{"minimum": 2}|} "2";
  check_invalid {|{"minimum": 2}|} "1.9";
  check_invalid {|{"maximum": 5}|} "5.1";
  check_valid {|{"exclusiveMinimum": 2}|} "2.1";
  check_invalid {|{"exclusiveMinimum": 2}|} "2";
  check_valid {|{"exclusiveMaximum": 5}|} "4.9";
  check_invalid {|{"exclusiveMaximum": 5}|} "5";
  (* draft-4 boolean form *)
  check_invalid {|{"maximum": 5, "exclusiveMaximum": true}|} "5";
  check_valid {|{"maximum": 5, "exclusiveMaximum": false}|} "5";
  check_invalid {|{"minimum": 2, "exclusiveMinimum": true}|} "2";
  check_valid {|{"multipleOf": 2}|} "8";
  check_invalid {|{"multipleOf": 2}|} "7";
  check_valid {|{"multipleOf": 0.1}|} "0.3";
  check_valid {|{"multipleOf": 2.5}|} "7.5"

let test_string_keywords () =
  check_valid {|{"minLength": 2, "maxLength": 4}|} {|"abc"|};
  check_invalid {|{"minLength": 2}|} {|"a"|};
  check_invalid {|{"maxLength": 4}|} {|"abcde"|};
  (* length counts code points, not bytes: €
     is 3 bytes but 1 character *)
  check_valid {|{"maxLength": 1}|} {|"€"|};
  check_valid {|{"pattern": "^a.*z$"}|} {|"abcz"|};
  check_invalid {|{"pattern": "^a.*z$"}|} {|"abc"|};
  (* pattern is a search unless anchored *)
  check_valid {|{"pattern": "b+"}|} {|"abbc"|}

let test_array_keywords () =
  check_valid {|{"items": {"type": "integer"}}|} "[1,2,3]";
  check_invalid {|{"items": {"type": "integer"}}|} {|[1,"x"]|};
  check_valid {|{"items": [{"type": "integer"}, {"type": "string"}]}|} {|[1,"x"]|};
  (* tuple shorter than items is fine *)
  check_valid {|{"items": [{"type": "integer"}, {"type": "string"}]}|} "[1]";
  check_invalid {|{"items": [{"type": "integer"}], "additionalItems": {"type": "string"}}|}
    "[1, 2]";
  check_valid {|{"items": [{"type": "integer"}], "additionalItems": {"type": "string"}}|}
    {|[1, "x", "y"]|};
  check_valid {|{"minItems": 1, "maxItems": 2}|} "[1]";
  check_invalid {|{"minItems": 1}|} "[]";
  check_invalid {|{"maxItems": 2}|} "[1,2,3]";
  check_valid {|{"uniqueItems": true}|} {|[1, "1", [1], {"a":1}]|};
  check_invalid {|{"uniqueItems": true}|} "[1, 2, 1]";
  (* 1 and 1.0 are the same JSON number *)
  check_invalid {|{"uniqueItems": true}|} "[1, 1.0]";
  (* unordered object equality applies *)
  check_invalid {|{"uniqueItems": true}|} {|[{"a":1,"b":2}, {"b":2,"a":1}]|};
  check_valid {|{"contains": {"type": "string"}}|} {|[1, "x"]|};
  check_invalid {|{"contains": {"type": "string"}}|} "[1, 2]"

let test_object_keywords () =
  check_valid {|{"properties": {"a": {"type": "integer"}}}|} {|{"a": 1}|};
  check_invalid {|{"properties": {"a": {"type": "integer"}}}|} {|{"a": "x"}|};
  (* properties does not require *)
  check_valid {|{"properties": {"a": {"type": "integer"}}}|} "{}";
  check_invalid {|{"required": ["a"]}|} "{}";
  check_valid {|{"required": ["a"]}|} {|{"a": null}|};
  check_valid {|{"minProperties": 1, "maxProperties": 2}|} {|{"a": 1}|};
  check_invalid {|{"minProperties": 1}|} "{}";
  check_invalid {|{"maxProperties": 1}|} {|{"a": 1, "b": 2}|};
  check_valid {|{"patternProperties": {"^x_": {"type": "integer"}}}|} {|{"x_a": 1, "other": "s"}|};
  check_invalid {|{"patternProperties": {"^x_": {"type": "integer"}}}|} {|{"x_a": "s"}|};
  (* additionalProperties sees only unmatched fields *)
  check_valid
    {|{"properties": {"a": {}}, "patternProperties": {"^x_": {}},
       "additionalProperties": false}|}
    {|{"a": 1, "x_b": 2}|};
  check_invalid
    {|{"properties": {"a": {}}, "additionalProperties": false}|}
    {|{"a": 1, "b": 2}|};
  check_valid
    {|{"additionalProperties": {"type": "integer"}}|}
    {|{"a": 1, "b": 2}|};
  check_invalid
    {|{"additionalProperties": {"type": "integer"}}|}
    {|{"a": "x"}|};
  check_valid {|{"propertyNames": {"maxLength": 3}}|} {|{"abc": 1}|};
  check_invalid {|{"propertyNames": {"maxLength": 3}}|} {|{"abcd": 1}|}

let test_dependencies () =
  (* co-occurrence: credit_card requires billing_address *)
  let dep_req = {|{"dependencies": {"credit_card": ["billing_address"]}}|} in
  check_valid dep_req {|{"credit_card": "1234", "billing_address": "x"}|};
  check_invalid dep_req {|{"credit_card": "1234"}|};
  check_valid dep_req {|{"billing_address": "x"}|};
  check_valid dep_req "{}";
  let dep_schema =
    {|{"dependencies": {"credit_card": {"required": ["billing_address"]}}}|}
  in
  check_invalid dep_schema {|{"credit_card": "1234"}|};
  check_valid dep_schema {|{"credit_card": "1234", "billing_address": "x"}|}

let test_combinators () =
  check_valid {|{"allOf": [{"minimum": 2}, {"maximum": 5}]}|} "3";
  check_invalid {|{"allOf": [{"minimum": 2}, {"maximum": 5}]}|} "6";
  check_valid {|{"anyOf": [{"type": "string"}, {"type": "integer"}]}|} "3";
  check_invalid {|{"anyOf": [{"type": "string"}, {"type": "integer"}]}|} "3.5";
  check_valid {|{"oneOf": [{"multipleOf": 3}, {"multipleOf": 5}]}|} "9";
  check_invalid {|{"oneOf": [{"multipleOf": 3}, {"multipleOf": 5}]}|} "15";
  check_invalid {|{"oneOf": [{"multipleOf": 3}, {"multipleOf": 5}]}|} "7";
  (* negation types: the tutorial singles these out as unusually powerful *)
  check_valid {|{"not": {"type": "string"}}|} "1";
  check_invalid {|{"not": {"type": "string"}}|} {|"s"|};
  check_valid {|{"not": {"properties": {"a": {"const": 1}}, "required": ["a"]}}|}
    {|{"a": 2}|};
  check_invalid {|{"not": {"properties": {"a": {"const": 1}}, "required": ["a"]}}|}
    {|{"a": 1}|}

let test_if_then_else () =
  let s =
    {|{"if": {"properties": {"country": {"const": "US"}}, "required": ["country"]},
       "then": {"required": ["zipcode"]},
       "else": {"required": ["postal_code"]}}|}
  in
  check_valid s {|{"country": "US", "zipcode": "12345"}|};
  check_invalid s {|{"country": "US"}|};
  check_valid s {|{"country": "FR", "postal_code": "75001"}|};
  check_invalid s {|{"country": "FR"}|}

let test_ref () =
  let s =
    {|{"definitions": {"positive": {"type": "integer", "minimum": 1}},
       "properties": {"count": {"$ref": "#/definitions/positive"}}}|}
  in
  check_valid s {|{"count": 3}|};
  check_invalid s {|{"count": 0}|};
  check_invalid s {|{"count": "three"}|}

let test_recursive_ref () =
  (* a linked list of integers *)
  let s =
    {|{"definitions":
        {"list": {"type": "object",
                  "properties": {"head": {"type": "integer"},
                                 "tail": {"anyOf": [{"type": "null"},
                                                    {"$ref": "#/definitions/list"}]}},
                  "required": ["head", "tail"]}},
       "$ref": "#/definitions/list"}|}
  in
  check_valid s {|{"head": 1, "tail": {"head": 2, "tail": null}}|};
  check_invalid s {|{"head": 1, "tail": {"head": "x", "tail": null}}|};
  check_invalid s {|{"head": 1}|}

let test_cyclic_ref_terminates () =
  (* $ref loop that never consumes input must fail, not hang *)
  let s = {|{"definitions": {"a": {"$ref": "#/definitions/a"}}, "$ref": "#/definitions/a"}|} in
  check_invalid s "1"

let test_missing_ref () =
  check_invalid {|{"$ref": "#/definitions/nope"}|} "1";
  check_invalid {|{"$ref": "http://elsewhere/schema"}|} "1"

let test_formats () =
  let config = { Jsonschema.Validate.default_config with Jsonschema.Validate.assert_formats = true } in
  check_valid ~config {|{"format": "date"}|} {|"2021-02-28"|};
  check_invalid ~config {|{"format": "date"}|} {|"2021-02-30"|};
  check_valid ~config {|{"format": "date"}|} {|"2020-02-29"|};
  check_invalid ~config {|{"format": "date"}|} {|"2100-02-29"|};
  check_valid ~config {|{"format": "date-time"}|} {|"2021-04-05T10:44:00.5+02:00"|};
  check_invalid ~config {|{"format": "date-time"}|} {|"2021-04-05"|};
  check_valid ~config {|{"format": "email"}|} {|"a.b@example.com"|};
  check_invalid ~config {|{"format": "email"}|} {|"not an email"|};
  check_valid ~config {|{"format": "ipv4"}|} {|"192.168.0.255"|};
  check_invalid ~config {|{"format": "ipv4"}|} {|"192.168.0.256"|};
  check_valid ~config {|{"format": "uuid"}|} {|"123e4567-e89b-12d3-a456-426614174000"|};
  check_invalid ~config {|{"format": "uuid"}|} {|"123"|};
  check_valid ~config {|{"format": "uri"}|} {|"https://example.com/x?y=1"|};
  check_invalid ~config {|{"format": "uri"}|} {|"no scheme"|};
  check_valid ~config {|{"format": "json-pointer"}|} {|"/a/b"|};
  check_invalid ~config {|{"format": "json-pointer"}|} {|"a/b"|};
  (* unknown formats validate *)
  check_valid ~config {|{"format": "zorglub"}|} {|"anything"|};
  (* formats are annotations by default *)
  check_valid {|{"format": "date"}|} {|"2021-02-30"|}

let test_format_ipv6 () =
  let config = { Jsonschema.Validate.default_config with Jsonschema.Validate.assert_formats = true } in
  let ok s = check_valid ~config {|{"format": "ipv6"}|} (Printf.sprintf "%S" s) in
  let bad s = check_invalid ~config {|{"format": "ipv6"}|} (Printf.sprintf "%S" s) in
  ok "::";
  ok "::1";
  ok "1:2:3:4:5:6:7:8";
  ok "2001:db8::8:800:200c:417a";
  ok "fe80::";
  ok "64:ff9b::192.0.2.33";
  ok "::ffff:192.168.0.1";
  ok "1:2:3:4:5:6:192.0.2.1";
  (* the old character-class regex accepted all of these *)
  bad ":::::";
  bad "....";
  bad ":";
  bad "1:2:3:4:5:6:7";            (* too few groups, no :: *)
  bad "1:2:3:4:5:6:7:8:9";        (* too many groups *)
  bad "1:2:3:4:5:6:7:8::";        (* :: must compress at least one group *)
  bad "1::2::3";                  (* at most one :: *)
  bad "12345::";                  (* group longer than 4 digits *)
  bad "g::1";                     (* non-hex digit *)
  bad ":1:2:3:4:5:6:7:8";         (* stray leading colon *)
  bad "192.168.0.1";              (* bare IPv4 is not an IPv6 *)
  bad "1.2.3.4::";                (* IPv4 tail must be final *)
  bad "1:2:3:4:5:6:7:1.2.3.4";    (* 7 + tail = 9 groups *)
  bad "::1.2.3.456"               (* invalid dotted quad *)

let test_multiple_of_exact () =
  (* Int values take an exact integer path: the float quotient of a large
     odd Int by 2 rounds to an even mantissa and used to pass *)
  check_invalid {|{"multipleOf": 2}|} "9007199254740993";
  check_valid {|{"multipleOf": 2}|} "9007199254740992";
  check_invalid {|{"multipleOf": 3}|} "4611686018427387902";
  check_valid {|{"multipleOf": 2}|} "4611686018427387902";
  check_valid {|{"multipleOf": 7}|} "-49";
  check_invalid {|{"multipleOf": 7}|} "-50";
  (* integral divisor over a float value keeps the tolerant path *)
  check_valid {|{"multipleOf": 2}|} "8.0";
  check_invalid {|{"multipleOf": 2}|} "7.5";
  (* fractional divisors are unaffected *)
  check_valid {|{"multipleOf": 0.5}|} "3";
  check_invalid {|{"multipleOf": 0.4}|} "3"

let test_unanchored_patterns () =
  (* pattern and patternProperties are substring searches unless anchored *)
  check_valid {|{"pattern": "b+"}|} {|"abbc"|};
  check_invalid {|{"pattern": "b+"}|} {|"acd"|};
  check_valid {|{"pattern": "^b+"}|} {|"bbc"|};
  check_invalid {|{"pattern": "^b+$"}|} {|"abbc"|};
  check_invalid {|{"patternProperties": {"oo": {"type": "integer"}}}|} {|{"foo!": "s"}|};
  check_valid {|{"patternProperties": {"oo": {"type": "integer"}}}|} {|{"foo!": 1, "bar": "s"}|};
  (* an unanchored key pattern also shields matches from additionalProperties *)
  check_valid
    {|{"patternProperties": {"oo": {}}, "additionalProperties": false}|}
    {|{"foo": 1}|};
  check_invalid
    {|{"patternProperties": {"oo": {}}, "additionalProperties": false}|}
    {|{"bar": 1}|}


let test_contains_counts () =
  check_valid {|{"contains": {"type": "integer"}, "minContains": 2}|} {|[1, "x", 2]|};
  check_invalid {|{"contains": {"type": "integer"}, "minContains": 2}|} {|[1, "x"]|};
  check_valid {|{"contains": {"type": "integer"}, "maxContains": 2}|} {|[1, 2, "x"]|};
  check_invalid {|{"contains": {"type": "integer"}, "maxContains": 2}|} "[1, 2, 3]";
  (* minContains 0 makes contains vacuous *)
  check_valid {|{"contains": {"type": "integer"}, "minContains": 0}|} {|["x"]|}

let test_dependent_keywords () =
  let s = {|{"dependentRequired": {"card": ["addr"]}}|} in
  check_valid s {|{"card": 1, "addr": "x"}|};
  check_invalid s {|{"card": 1}|};
  let s2 = {|{"dependentSchemas": {"card": {"properties": {"addr": {"type": "string"}}, "required": ["addr"]}}}|} in
  check_valid s2 {|{"card": 1, "addr": "x"}|};
  check_invalid s2 {|{"card": 1, "addr": 7}|};
  check_valid s2 {|{"other": true}|}

let test_defs_alias () =
  let s =
    {|{"$defs": {"pos": {"type": "integer", "minimum": 1}},
       "properties": {"n": {"$ref": "#/$defs/pos"}}}|}
  in
  check_valid s {|{"n": 3}|};
  check_invalid s {|{"n": 0}|}

let test_error_reporting () =
  let root =
    parse
      {|{"properties": {"user": {"properties": {"age": {"type": "integer", "minimum": 0}},
                                 "required": ["age"]}}}|}
  in
  match Jsonschema.Validate.validate ~root (parse {|{"user": {"age": -3}}|}) with
  | Ok () -> Alcotest.fail "should be invalid"
  | Error [ e ] ->
      Alcotest.(check string) "instance pointer" "/user/age"
        (Json.Pointer.to_string e.Jsonschema.Validate.instance_at);
      Alcotest.(check string) "schema pointer"
        "/properties/user/properties/age/minimum"
        (Json.Pointer.to_string e.Jsonschema.Validate.schema_at)
  | Error es ->
      Alcotest.fail (Printf.sprintf "expected one error, got %d" (List.length es))

let test_multiple_errors_reported () =
  let root =
    parse {|{"properties": {"a": {"type": "integer"}, "b": {"type": "string"}},
             "required": ["c"]}|}
  in
  match Jsonschema.Validate.validate ~root (parse {|{"a": "x", "b": 1}|}) with
  | Ok () -> Alcotest.fail "should be invalid"
  | Error es -> Alcotest.(check int) "three violations" 3 (List.length es)

(* --- parsing / printing ---------------------------------------------- *)

let test_parse_errors () =
  let bad src =
    match Jsonschema.Parse.of_string src with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "%s should not parse as a schema" src)
  in
  bad {|{"type": "strng"}|};
  bad {|{"type": []}|};
  bad {|{"type": 3}|};
  bad {|{"enum": []}|};
  bad {|{"minLength": -1}|};
  bad {|{"minLength": 1.5}|};
  bad {|{"multipleOf": 0}|};
  bad {|{"pattern": "["}|};
  bad {|{"patternProperties": {"[": {}}}|};
  bad {|{"allOf": []}|};
  bad {|{"required": [1]}|};
  bad "17"

let test_print_roundtrip () =
  let sources =
    [ {|{"type":"object","properties":{"a":{"type":"integer","minimum":0}},"required":["a"]}|};
      {|{"anyOf":[{"type":"string","pattern":"^x"},{"enum":[1,2]}]}|};
      {|{"items":[{"type":"integer"}],"additionalItems":false,"uniqueItems":true}|};
      {|{"not":{"const":null},"definitions":{"d":{"type":"null"}}}|};
      {|{"if":{"type":"string"},"then":{"minLength":1},"else":{"minimum":0}}|};
      {|{"dependencies":{"a":["b"],"c":{"required":["d"]}}}|};
      {|{"exclusiveMinimum":2,"exclusiveMaximum":9.5,"multipleOf":0.5}|} ]
  in
  List.iter
    (fun src ->
      let s = Jsonschema.Parse.of_string_exn src in
      let printed = Jsonschema.Print.to_json s in
      let s2 = Jsonschema.Parse.of_json_exn printed in
      let printed2 = Jsonschema.Print.to_json s2 in
      Alcotest.(check bool)
        (Printf.sprintf "parse/print fixpoint for %s" src)
        true
        (Json.Value.equal printed printed2))
    sources

let test_schema_size () =
  let s = Jsonschema.Parse.of_string_exn
      {|{"properties": {"a": {"type": "integer"}, "b": {"items": {"type": "string"}}}}|}
  in
  (* root + a + b + items-of-b = 4 *)
  Alcotest.(check int) "size" 4 (Jsonschema.Schema.size s)

(* --- well-formedness -------------------------------------------------- *)

let test_wellformed () =
  let warn_count src = List.length (Jsonschema.Wellformed.check (parse src)) in
  Alcotest.(check int) "clean schema" 0
    (warn_count {|{"type": "object", "properties": {"a": {"minimum": 0, "maximum": 10}}}|});
  Alcotest.(check bool) "inverted numeric bounds" true
    (warn_count {|{"minimum": 10, "maximum": 0}|} > 0);
  Alcotest.(check bool) "inverted length bounds" true
    (warn_count {|{"minLength": 5, "maxLength": 2}|} > 0);
  Alcotest.(check bool) "enum/type conflict" true
    (warn_count {|{"type": "string", "enum": [1, 2]}|} > 0);
  Alcotest.(check bool) "dangling ref" true
    (warn_count {|{"$ref": "#/definitions/missing"}|} > 0);
  Alcotest.(check bool) "nested warning found" true
    (warn_count {|{"properties": {"a": {"minItems": 3, "maxItems": 1}}}|} > 0);
  Alcotest.(check bool) "wellformed predicate" true
    (Jsonschema.Wellformed.is_wellformed (parse {|{"type": "integer"}|}))

(* --- generation ------------------------------------------------------- *)

let test_generate_satisfies () =
  let schemas =
    [ {|{"type": "integer", "minimum": 5, "maximum": 10}|};
      {|{"type": "string", "minLength": 3, "maxLength": 6}|};
      {|{"type": "object",
         "properties": {"id": {"type": "integer", "minimum": 0},
                        "name": {"type": "string"},
                        "tags": {"type": "array", "items": {"type": "string"}}},
         "required": ["id", "name"]}|};
      {|{"type": "array", "items": {"type": "number", "minimum": 0}, "minItems": 1, "maxItems": 4}|};
      {|{"enum": [1, "two", null]}|};
      {|{"const": {"fixed": true}}|};
      {|{"anyOf": [{"type": "integer", "multipleOf": 3}, {"type": "string"}]}|};
      {|{"type": "integer", "multipleOf": 7, "minimum": 10, "maximum": 100}|} ]
  in
  let st = Jsonschema.Generate.rng ~seed:42 in
  List.iter
    (fun src ->
      let root = parse src in
      for _ = 1 to 20 do
        match Jsonschema.Generate.generate_valid st ~root with
        | Some v ->
            Alcotest.(check bool)
              (Printf.sprintf "generated %s matches %s" (Json.Printer.to_string v) src)
              true
              (Jsonschema.Validate.is_valid ~root v)
        | None -> Alcotest.fail (Printf.sprintf "could not generate for %s" src)
      done)
    schemas

let test_generate_deterministic () =
  let root = parse {|{"type": "object", "properties": {"a": {"type": "integer"}}}|} in
  let gen seed =
    let st = Jsonschema.Generate.rng ~seed in
    List.init 5 (fun _ -> Jsonschema.Generate.generate_valid st ~root)
  in
  Alcotest.(check bool) "same seed, same output" true (gen 7 = gen 7);
  Alcotest.(check bool) "diff seed, diff output (overwhelmingly)" true (gen 7 <> gen 8)

(* --- compiled plans: differential oracle ------------------------------ *)

(* The compiled engine (Compile) promises byte-identical results to the
   interpreter (Validate) — same verdicts, same error records in the same
   order. These properties throw randomized schema/instance pairs at both
   and diff the rendered error lists, with the plan cache on and off. *)

let render_errors = function
  | Ok () -> "valid"
  | Error es ->
      String.concat "\n" (List.map Jsonschema.Validate.string_of_error es)

let oracle_gen_value : Json.Value.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let scalar =
    oneof
      [ return Json.Value.Null;
        map (fun b -> Json.Value.Bool b) bool;
        map (fun n -> Json.Value.Int n) (int_range (-20) 20);
        map (fun f -> Json.Value.Float f) (float_range (-20.) 20.);
        map (fun s -> Json.Value.String s)
          (string_size ~gen:(char_range 'a' 'e') (int_range 0 4));
      ]
  in
  let key = string_size ~gen:(char_range 'a' 'c') (int_range 1 2) in
  sized @@ fix (fun self n ->
      if n <= 0 then scalar
      else
        frequency
          [ (3, scalar);
            (1, map (fun vs -> Json.Value.Array vs)
                  (list_size (int_range 0 4) (self (n / 2))));
            (1,
             map
               (fun fields ->
                 let seen = Hashtbl.create 4 in
                 Json.Value.Object
                   (List.filter
                      (fun (k, _) ->
                        if Hashtbl.mem seen k then false
                        else (Hashtbl.add seen k (); true))
                      fields))
               (list_size (int_range 0 4) (pair key (self (n / 2)))));
          ])

let oracle_gen_schema : Json.Value.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let open Json.Value in
  let type_name =
    oneofl [ "null"; "boolean"; "integer"; "number"; "string"; "array"; "object" ]
  in
  let ref_target =
    oneofl [ "#"; "#/definitions/a"; "#/definitions/missing"; "not-a-pointer" ]
  in
  let key = string_size ~gen:(char_range 'a' 'c') (int_range 1 2) in
  sized @@ fix (fun self n ->
      let sub = self (n / 2) in
      let leaf =
        oneof
          [ map (fun t -> Object [ ("type", String t) ]) type_name;
            map (fun r -> Object [ ("$ref", String r) ]) ref_target;
            map (fun k -> Object [ ("required", Array [ String k ]) ]) key;
            map (fun i -> Object [ ("minimum", Int i) ]) (int_range (-5) 5);
            map (fun i -> Object [ ("maximum", Int i) ]) (int_range (-5) 5);
            map (fun i -> Object [ ("minLength", Int i) ]) (int_range 0 4);
            map (fun i -> Object [ ("minItems", Int i) ]) (int_range 0 3);
            map (fun i -> Object [ ("multipleOf", Int i) ]) (int_range 1 4);
            return (Object [ ("uniqueItems", Bool true) ]);
            return (Object [ ("format", String "ipv4") ]);
            map
              (fun vs -> Object [ ("enum", Array vs) ])
              (list_size (int_range 1 6) (map (fun i -> Int i) (int_range 0 9)));
          ]
      in
      if n <= 0 then leaf
      else
        frequency
          [ (3, leaf);
            (1,
             map2
               (fun k s ->
                 Object
                   [ ("properties", Object [ (k, s) ]);
                     ("required", Array [ String k ]) ])
               key sub);
            (1, map (fun s -> Object [ ("items", s) ]) sub);
            (1, map2 (fun a b -> Object [ ("items", Array [ a; b ]) ]) sub sub);
            (1, map (fun s -> Object [ ("contains", s) ]) sub);
            (1, map (fun s -> Object [ ("not", s) ]) sub);
            (1, map (fun ss -> Object [ ("anyOf", Array ss) ])
                  (list_size (int_range 1 3) sub));
            (1, map (fun ss -> Object [ ("allOf", Array ss) ])
                  (list_size (int_range 1 3) sub));
            (1, map (fun ss -> Object [ ("oneOf", Array ss) ])
                  (list_size (int_range 1 3) sub));
            (1, map2 (fun a b ->
                     Object [ ("if", a); ("then", b); ("else", a) ]) sub sub);
            (1, map2 (fun k s -> Object [ ("patternProperties", Object [ (k, s) ]) ])
                  key sub);
            (1, map (fun s -> Object [ ("additionalProperties", s) ]) sub);
            (1, map2 (fun k s -> Object [ ("dependencies", Object [ (k, s) ]) ])
                  key sub);
            (1,
             map2
               (fun k s ->
                 Object
                   [ ("definitions", Object [ (k, s) ]);
                     ("$ref", String ("#/definitions/" ^ k)) ])
               key sub);
          ])

let differential_agrees ?(config = Jsonschema.Validate.default_config)
    (schema, instance) =
  let interp =
    render_errors (Jsonschema.Validate.validate ~config ~root:schema instance)
  in
  let compiled =
    render_errors
      (match Jsonschema.Compile.compile schema with
      | Ok plan -> Jsonschema.Compile.run ~config plan instance
      | Error es -> Error es)
  in
  Jsonschema.Compile.set_cache true;
  let cached_on =
    render_errors (Jsonschema.Compile.validate ~config ~root:schema instance)
  in
  Jsonschema.Compile.set_cache false;
  let cached_off =
    render_errors (Jsonschema.Compile.validate ~config ~root:schema instance)
  in
  Jsonschema.Compile.set_cache true;
  if interp = compiled && interp = cached_on && interp = cached_off then true
  else
    QCheck2.Test.fail_reportf
      "engines diverge on schema %s / instance %s@.interpreter:@.%s@.compiled:@.%s@.cached on:@.%s@.cached off:@.%s"
      (Json.Printer.to_string schema)
      (Json.Printer.to_string instance)
      interp compiled cached_on cached_off

(* A small $ref budget keeps randomly generated no-input cycles (e.g. a
   [oneOf] of ["$ref": "#"]s) from doing branches^fuel work; both engines
   get the same config, so byte-identity is still what's being tested. *)
let oracle_config =
  { Jsonschema.Validate.default_config with max_ref_expansions = 6 }

let prop_compiled_differential =
  QCheck2.Test.make
    ~name:"compiled = interpreted: verdicts and error lists, cache on/off"
    ~count:500
    QCheck2.Gen.(pair oracle_gen_schema oracle_gen_value)
    (differential_agrees ~config:oracle_config)

let prop_compiled_differential_formats =
  QCheck2.Test.make
    ~name:"compiled = interpreted under assert_formats"
    ~count:200
    QCheck2.Gen.(pair oracle_gen_schema oracle_gen_value)
    (differential_agrees ~config:{ oracle_config with assert_formats = true })

let test_compiled_parallel_jobs () =
  (* The sharded pipeline path: compiled and interpreted engines must report
     the same failures (order included) at every job count. *)
  let root =
    parse
      {|{"definitions": {"item": {"type": "object",
                                  "required": ["id"],
                                  "properties": {"id": {"type": "integer", "minimum": 1},
                                                 "tag": {"type": "string", "pattern": "^[a-z]+$"}}}},
         "type": "array", "items": {"$ref": "#/definitions/item"}, "minItems": 1}|}
  in
  let docs =
    List.init 40 (fun i ->
        if i mod 3 = 0 then parse (Printf.sprintf {|[{"id": %d, "tag": "ok"}]|} (i + 1))
        else if i mod 3 = 1 then parse (Printf.sprintf {|[{"id": -%d}]|} (i + 1))
        else parse {|[{"tag": "NOPE"}]|})
  in
  let render failures =
    String.concat "\n"
      (List.map
         (fun (i, es) ->
           String.concat "\n"
             (List.map
                (fun e ->
                  Printf.sprintf "%d: %s" i (Jsonschema.Validate.string_of_error e))
                es))
         failures)
  in
  let reference = Core.Parallel.validate ~compiled:false ~root docs in
  Alcotest.(check bool) "some failures exist" true (reference <> []);
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d compiled failures identical" jobs)
        (render reference)
        (render (Core.Parallel.validate ~compiled:true ~jobs ~root docs));
      Jsonschema.Compile.set_cache false;
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d compiled, cache off" jobs)
        (render reference)
        (render (Core.Parallel.validate ~compiled:true ~jobs ~root docs));
      Jsonschema.Compile.set_cache true)
    [ 1; 4; 8 ]

(* --- regression pins --------------------------------------------------- *)

let test_tuple_items_error_paths () =
  (* Pin the tuple-items error pointers: position i must appear in both the
     instance pointer (/i) and the schema pointer (/items/i), and overflow
     elements must blame /additionalItems. Checked against both engines. *)
  let root =
    parse
      {|{"items": [{"type": "string"}, {"type": "integer"}],
         "additionalItems": {"type": "null"}}|}
  in
  let instance = parse {|["ok", "bad", 7]|} in
  let check_engine label result =
    match result with
    | Ok () -> Alcotest.fail (label ^ ": should be invalid")
    | Error es ->
        let pairs =
          List.map
            (fun e ->
              ( Json.Pointer.to_string e.Jsonschema.Validate.instance_at,
                Json.Pointer.to_string e.Jsonschema.Validate.schema_at ))
            es
        in
        Alcotest.(check (list (pair string string)))
          (label ^ ": tuple error pointers carry the array index")
          [ ("/1", "/items/1/type"); ("/2", "/additionalItems/type") ]
          pairs
  in
  check_engine "interpreter" (Jsonschema.Validate.validate ~root instance);
  check_engine "compiled" (Jsonschema.Compile.validate ~root instance)

let test_wellformed_escaped_ref () =
  (* Pin ~0/~1 un-escaping on the $ref warn path: pointers through keys that
     contain "/" or "~" must resolve (no dangling-ref warning) and must
     validate identically in both engines. *)
  let src =
    {|{"definitions": {"a/b": {"type": "integer"}, "a~b": {"type": "string"}},
       "properties": {"slash": {"$ref": "#/definitions/a~1b"},
                      "tilde": {"$ref": "#/definitions/a~0b"}}}|}
  in
  let root = parse src in
  Alcotest.(check int) "escaped $refs resolve without warnings" 0
    (List.length (Jsonschema.Wellformed.check root));
  let dangling =
    parse
      {|{"definitions": {"a/b": {}}, "$ref": "#/definitions/a~0b"}|}
  in
  Alcotest.(check bool) "genuinely dangling escaped ref still warns" true
    (List.length (Jsonschema.Wellformed.check dangling) > 0);
  let inst = parse {|{"slash": 1, "tilde": "x"}|} in
  Alcotest.(check bool) "interpreter resolves escaped refs" true
    (Jsonschema.Validate.is_valid ~root inst);
  Alcotest.(check bool) "compiled resolves escaped refs" true
    (Result.is_ok (Jsonschema.Compile.validate ~root inst));
  Alcotest.(check bool) "interpreter enforces escaped target" false
    (Jsonschema.Validate.is_valid ~root (parse {|{"slash": "no"}|}));
  Alcotest.(check bool) "compiled enforces escaped target" false
    (Result.is_ok (Jsonschema.Compile.validate ~root (parse {|{"slash": "no"}|})))

let test_compiled_plan_stats () =
  let root =
    parse
      {|{"definitions": {"node": {"type": "object",
                                  "properties": {"next": {"$ref": "#/definitions/node"}},
                                  "additionalProperties": true}},
         "$ref": "#/definitions/node"}|}
  in
  match Jsonschema.Compile.compile root with
  | Error _ -> Alcotest.fail "schema should compile"
  | Ok plan ->
      Alcotest.(check bool) "has nodes" true (Jsonschema.Compile.nodes plan > 0);
      Alcotest.(check bool) "counts ref targets" true
        (Jsonschema.Compile.ref_targets plan >= 1);
      Alcotest.(check bool) "detects the cycle" true
        (Jsonschema.Compile.cycles plan >= 1);
      Alcotest.(check bool) "prunes trivial subschemas" true
        (Jsonschema.Compile.pruned plan >= 1)

let test_plan_cache () =
  let root = parse {|{"type": "integer", "minimum": 3}|} in
  Jsonschema.Compile.set_cache true;
  Jsonschema.Compile.clear_cache ();
  Alcotest.(check int) "cache empty" 0 (Jsonschema.Compile.cache_size ());
  ignore (Jsonschema.Compile.validate ~root (parse "4"));
  Alcotest.(check int) "one plan cached" 1 (Jsonschema.Compile.cache_size ());
  ignore (Jsonschema.Compile.validate ~root (parse "2"));
  Alcotest.(check int) "hit, not a second entry" 1
    (Jsonschema.Compile.cache_size ());
  let fp1 = Jsonschema.Compile.fingerprint root in
  let fp2 = Jsonschema.Compile.fingerprint (parse {|{"minimum": 3, "type": "integer"}|}) in
  Alcotest.(check bool) "fingerprint is over the printed form" true (fp1 <> fp2);
  Alcotest.(check string) "fingerprint deterministic" fp1
    (Jsonschema.Compile.fingerprint (parse {|{"type": "integer", "minimum": 3}|}));
  Jsonschema.Compile.set_cache false;
  Jsonschema.Compile.clear_cache ();
  ignore (Jsonschema.Compile.validate ~root (parse "4"));
  Alcotest.(check int) "disabled cache stays empty" 0
    (Jsonschema.Compile.cache_size ());
  Jsonschema.Compile.set_cache true

let () =
  Alcotest.run "jsonschema"
    [ ("keywords",
       [ Alcotest.test_case "boolean schemas" `Quick test_boolean_schemas;
         Alcotest.test_case "type" `Quick test_type_keyword;
         Alcotest.test_case "enum/const" `Quick test_enum_const;
         Alcotest.test_case "numeric literal equality (both engines)" `Quick
           test_numeric_literal_equality_both_engines;
         Alcotest.test_case "numeric" `Quick test_numeric_keywords;
         Alcotest.test_case "string" `Quick test_string_keywords;
         Alcotest.test_case "array" `Quick test_array_keywords;
         Alcotest.test_case "object" `Quick test_object_keywords;
         Alcotest.test_case "dependencies" `Quick test_dependencies;
         Alcotest.test_case "combinators" `Quick test_combinators;
         Alcotest.test_case "if/then/else" `Quick test_if_then_else;
         Alcotest.test_case "min/maxContains (2019-09)" `Quick test_contains_counts;
         Alcotest.test_case "dependent keywords (2019-09)" `Quick test_dependent_keywords;
         Alcotest.test_case "$defs alias" `Quick test_defs_alias;
         Alcotest.test_case "ipv6 format" `Quick test_format_ipv6;
         Alcotest.test_case "multipleOf exact ints" `Quick test_multiple_of_exact;
         Alcotest.test_case "unanchored patterns" `Quick test_unanchored_patterns ]);
      ("refs",
       [ Alcotest.test_case "definitions" `Quick test_ref;
         Alcotest.test_case "recursive" `Quick test_recursive_ref;
         Alcotest.test_case "cyclic terminates" `Quick test_cyclic_ref_terminates;
         Alcotest.test_case "missing/remote" `Quick test_missing_ref ]);
      ("formats", [ Alcotest.test_case "all" `Quick test_formats ]);
      ("errors",
       [ Alcotest.test_case "pointers" `Quick test_error_reporting;
         Alcotest.test_case "multiple" `Quick test_multiple_errors_reported ]);
      ("parse/print",
       [ Alcotest.test_case "parse errors" `Quick test_parse_errors;
         Alcotest.test_case "roundtrip" `Quick test_print_roundtrip;
         Alcotest.test_case "size" `Quick test_schema_size ]);
      ("wellformed", [ Alcotest.test_case "checks" `Quick test_wellformed ]);
      ("generate",
       [ Alcotest.test_case "satisfies schema" `Quick test_generate_satisfies;
         Alcotest.test_case "deterministic" `Quick test_generate_deterministic ]);
      ("compiled",
       [ QCheck_alcotest.to_alcotest
           ~rand:(Random.State.make [| 20250808 |])
           prop_compiled_differential;
         QCheck_alcotest.to_alcotest
           ~rand:(Random.State.make [| 20250808 |])
           prop_compiled_differential_formats;
         Alcotest.test_case "parallel jobs sweep" `Quick test_compiled_parallel_jobs;
         Alcotest.test_case "plan stats" `Quick test_compiled_plan_stats;
         Alcotest.test_case "plan cache" `Quick test_plan_cache ]);
      ("regressions",
       [ Alcotest.test_case "tuple items error paths" `Quick
           test_tuple_items_error_paths;
         Alcotest.test_case "escaped $ref pointers" `Quick
           test_wellformed_escaped_ref ]);
    ]
