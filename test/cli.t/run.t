CLI end-to-end checks. The binary is the public jsontool executable.

Generate a deterministic corpus:

  $ jsontool generate -c orders -n 20 --seed 5 > orders.ndjson
  $ wc -l < orders.ndjson
  20

Parse / re-print:

  $ echo '{"b": 1, "a": [1, 2.5, "x"]}' | jsontool parse
  {"b":1,"a":[1,2.5,"x"]}

  $ echo '{"broken": ' | jsontool parse
  jsontool: line 2, column 1: expected a value, got end of input
  [1]

Duplicate-key policy and nesting-depth bound are CLI knobs:

  $ echo '{"a": 1, "a": 2}' | jsontool parse --dup-keys first
  {"a":1}
  $ echo '{"a": 1, "a": 2}' | jsontool parse --dup-keys reject
  jsontool: line 1, column 16: duplicate key "a"
  [1]
  $ echo '[[[[1]]]]' | jsontool parse --max-depth 2
  jsontool: line 1, column 5: maximum nesting depth exceeded
  [1]

Resilient ingestion: bad documents are quarantined, not fatal.

  $ printf '{"a": 1}\n{broken\n{"a": [1, 2]}\n' > messy.ndjson
  $ jsontool ingest --quarantine dead.ndjson messy.ndjson
  {"ok":2,"quarantined":1,"budget_killed":0,"truncated":false}
  wrote 1 dead letters to dead.ndjson
  $ cat dead.ndjson
  {"line":2,"byte_offset":9,"kind":"syntax","cause":"syntax","attempts":1,"error":"line 2, column 2: unexpected character 'b'","raw_prefix":"{broken "}

Resource budgets kill documents with typed errors instead of exceptions:

  $ echo '[[[[1]]]]' | jsontool ingest --max-depth 3 -
  {"ok":0,"quarantined":0,"budget_killed":1,"budget_by_cause":{"max-depth":1},"truncated":false}
  $ jsontool ingest --max-docs 1 messy.ndjson
  {"ok":1,"quarantined":0,"budget_killed":1,"budget_by_cause":{"max-docs":1},"truncated":true}

Seeded fault injection: the report accounts for every fault, and the
corrupting ones match the quarantine count exactly.

  $ jsontool generate -c orders -n 50 --seed 5 | jsontool ingest -
  {"ok":50,"quarantined":0,"budget_killed":0,"truncated":false}
  $ jsontool generate -c orders -n 50 --seed 5 | jsontool ingest --chaos 7 -
  {"ok":46,"quarantined":5,"budget_killed":0,"truncated":false,"chaos_faults":10,"chaos_corrupting":5,"chaos_oversized":4,"chaos_duplicated":1}

With a document byte budget, the oversized faults become budget kills:

  $ jsontool generate -c orders -n 50 --seed 5 | jsontool ingest --chaos 7 --max-bytes 16384 -
  {"ok":42,"quarantined":5,"budget_killed":4,"budget_by_cause":{"max-bytes":4},"truncated":false,"chaos_faults":10,"chaos_corrupting":5,"chaos_oversized":4,"chaos_duplicated":1}

Sharded parallel execution is byte-identical to sequential — same report,
same dead letters in the same order, same inferred type:

  $ jsontool generate -c orders -n 50 --seed 5 | jsontool ingest --chaos 7 --max-bytes 16384 --jobs 4 -
  {"ok":42,"quarantined":5,"budget_killed":4,"budget_by_cause":{"max-bytes":4},"truncated":false,"chaos_faults":10,"chaos_corrupting":5,"chaos_oversized":4,"chaos_duplicated":1}
  $ jsontool generate -c orders -n 200 --seed 5 > par.ndjson
  $ jsontool ingest --quarantine dead1.ndjson par.ndjson > report1.json
  wrote 0 dead letters to dead1.ndjson
  $ jsontool ingest --quarantine dead4.ndjson --jobs 4 par.ndjson > report4.json
  wrote 0 dead letters to dead4.ndjson
  $ cmp report1.json report4.json && cmp dead1.ndjson dead4.ndjson && echo identical
  identical
  $ jsontool infer --jobs 1 par.ndjson > infer1.txt
  $ jsontool infer --jobs 4 par.ndjson > infer4.txt
  $ cmp infer1.txt infer4.txt && echo identical
  identical

Parametric inference (kind equivalence):

  $ jsontool infer -a parametric -e kind orders.ndjson
  {customer: {customer_city: Str, customer_id: Int, customer_name: Str}, order_date: Str, order_id: Int, product: {product_id: Int, product_name: Str, product_price: Num}, quantity: Int}

Spark DDL output:

  $ jsontool infer -a spark orders.ndjson
  STRUCT<customer: STRUCT<customer_city: STRING, customer_id: BIGINT, customer_name: STRING>, order_date: STRING, order_id: BIGINT, product: STRUCT<product_id: BIGINT, product_name: STRING, product_price: DOUBLE>, quantity: BIGINT> NOT NULL

TypeScript code generation:

  $ jsontool infer -a parametric -o typescript orders.ndjson
  interface RootCustomer {
    customer_city: string;
    customer_id: number;
    customer_name: string;
  }
  
  interface RootProduct {
    product_id: number;
    product_name: string;
    product_price: number;
  }
  
  interface Root {
    customer: RootCustomer;
    order_date: string;
    order_id: number;
    product: RootProduct;
    quantity: number;
  }

Validation round trip: the inferred JSON Schema accepts its own corpus.

  $ jsontool infer -a parametric -o jsonschema orders.ndjson > schema.json
  $ jsontool validate -s schema.json orders.ndjson
  20/20 documents valid

...and rejects a corrupted document:

  $ echo '{"order_id": "not a number"}' | jsontool validate -s schema.json -
  document 0: instance # violates schema #/required: missing required property "customer"
  document 0: instance # violates schema #/required: missing required property "order_date"
  document 0: instance # violates schema #/required: missing required property "product"
  document 0: instance # violates schema #/required: missing required property "quantity"
  document 0: instance #/order_id violates schema #/properties/order_id/type: expected integer, got string
  0/1 documents valid
  [1]

Queries with static output schemas:

  $ jsontool query --type 'filter $.quantity >= 5 | group by $.customer.customer_city into {n: count}' orders.ndjson | head -3
  input  type: {customer: {customer_city: Str, customer_id: Int, customer_name: Str}, order_date: Str, order_id: Int, product: {product_id: Int, product_name: Str, product_price: Num}, quantity: Int}
  output type: {key: Str, n: Int}
  {"key":"nantes","n":1}

Normalization discovers the embedded dimensions:

  $ jsontool generate -c orders -n 200 --seed 5 | jsontool normalize - | head -1
  cells: 1800 -> 1105 (61.4% of original)

Profiling explains ticket structure by channel:

  $ jsontool generate -c tickets -n 100 --seed 2 2>/dev/null | jsontool profile - | head -2
  structural variants: 4; training accuracy 1.000
    channel = "phone" => {callback: *, channel: *, duration_s: *, opened_at: *, priority: *, ticket_id: *} (32/32)

JSound validation through the CLI:

  $ cat > config.jsound <<'SCHEMA'
  > {"endpoint": "anyURI", "timeout_ms": "integer", "?retries": "integer?"}
  > SCHEMA
  $ echo '{"endpoint": "https://x.io", "timeout_ms": 50}' | jsontool validate -l jsound -s config.jsound -
  1/1 documents valid
  $ echo '{"endpoint": 12}' | jsontool validate -l jsound -s config.jsound -
  document 0: at <root>: missing required field "timeout_ms"
  document 0: at /endpoint: expected anyURI, got number
  0/1 documents valid
  [1]

Schema evolution compatibility:

  $ cat > old.json <<'S'
  > {"type": "object", "properties": {"id": {"type": "integer"}}, "required": ["id"], "additionalProperties": false}
  > S
  $ cat > new.json <<'S'
  > {"type": "object", "properties": {"id": {"type": "integer"}, "tag": {"type": "string"}}, "required": ["id"], "additionalProperties": false}
  > S
  $ jsontool compat old.json new.json | head -1
  backward compatible: old instances remain valid

Discovery on a mixed collection:

  $ jsontool generate -c orders -n 10 --seed 1 > mixed.ndjson
  $ jsontool generate -c tickets -n 10 --seed 1 >> mixed.ndjson
  $ jsontool discover --threshold 0.3 mixed.ndjson | grep -c 'cluster'
  2

Fault-tolerant supervised execution. Transient worker faults (seeded, so the
schedule is reproducible) are retried with backoff and the final output is
byte-identical to an undisturbed run:

  $ jsontool ingest --jobs 4 par.ndjson > plain.json
  $ cat plain.json
  {"ok":200,"quarantined":0,"budget_killed":0,"truncated":false}
  $ jsontool ingest --jobs 4 --retries 2 --chaos-workers 5 par.ndjson > sup.json 2> sup.log
  $ cmp plain.json sup.json && cat sup.log
  supervisor: shards=4 attempts=7 retries=3 poisoned=0 degraded=0 resumed=0

Permanent worker faults exhaust the retry budget and poison only their own
shards: the rest of the input survives, and each poisoned shard becomes one
dead letter naming the injection site and the attempts spent on it.

  $ jsontool ingest --jobs 4 --retries 1 --chaos-workers 5 --chaos-worker-permanent --quarantine deadp.ndjson par.ndjson 2> sup2.log
  {"ok":99,"quarantined":0,"budget_killed":0,"poisoned":2,"truncated":false}
  $ cat sup2.log
  supervisor: shards=4 attempts=6 retries=2 poisoned=2 degraded=0 resumed=0
  wrote 2 dead letters to deadp.ndjson
  $ sed -E 's/,"error".*//' deadp.ndjson
  {"line":1,"byte_offset":0,"kind":"shard:fault","cause":"chaos:worker@shard0:permanent","attempts":2
  {"line":103,"byte_offset":21475,"kind":"shard:fault","cause":"chaos:worker@shard2:permanent","attempts":2

Checkpoint/resume round trip: a run "killed" by permanent faults journals
its completed shards; resuming with healthy workers recomputes only the two
poisoned shards and reproduces the undisturbed output byte for byte.

  $ jsontool ingest --jobs 4 --chaos-workers 5 --chaos-worker-permanent --checkpoint ck.ndjson par.ndjson > interrupted.json 2> int.log
  $ cat interrupted.json
  {"ok":99,"quarantined":0,"budget_killed":0,"poisoned":2,"truncated":false}
  $ wc -l < ck.ndjson
  3
  $ jsontool ingest --jobs 4 --checkpoint ck.ndjson --resume par.ndjson > resumed.json 2> resume.log
  $ cat resume.log
  supervisor: shards=2 attempts=2 retries=0 poisoned=0 degraded=0 resumed=2
  $ cmp plain.json resumed.json && echo identical
  identical

A journal refuses to resume a different input (the header fingerprints it):

  $ jsontool generate -c orders -n 10 --seed 6 > other.ndjson
  $ jsontool ingest --jobs 4 --checkpoint ck.ndjson --resume other.ndjson
  jsontool: checkpoint: input fingerprint mismatch (journal 3355e3b63c8e2379, input bb98fcf00dfebc56) — refusing to resume against different data
  [1]

Observability: --stats-json prints one JSON object on stderr. Timings and
sizes vary run to run, so every numeric value is masked to N — the assertion
is that the *key set* of each command's telemetry is stable. The inputs are
the checked-in fixtures under test/corpus.

  $ mask() { sed -E 's/:-?[0-9][^,}"]*/:N/g'; }

Ingest of a clean corpus: parser counters and size histograms, no errors:

  $ jsontool ingest --stats-json ../corpus/optional_fields.ndjson 2>&1 >/dev/null | mask
  {"counters":{"ingest.docs_ok":N,"parse.bytes":N,"parse.docs":N,"parse.nodes":N},"gauges":{},"histograms":{"parse.budget_headroom_bytes":{"count":N,"sum":N,"min":N,"max":N,"p50":N,"p90":N,"p99":N},"parse.budget_headroom_nodes":{"count":N,"sum":N,"min":N,"max":N,"p50":N,"p90":N,"p99":N},"parse.doc_bytes":{"count":N,"sum":N,"min":N,"max":N,"p50":N,"p90":N,"p99":N},"parse.doc_nodes":{"count":N,"sum":N,"min":N,"max":N,"p50":N,"p90":N,"p99":N}},"spans":{}}

A corpus with syntax faults adds quarantine and error counters; the report
itself (stdout) is exact:

  $ jsontool ingest --stats-json ../corpus/broken.ndjson 2>stats.json
  {"ok":3,"quarantined":2,"budget_killed":0,"truncated":false}
  $ mask < stats.json
  {"counters":{"ingest.docs_ok":N,"ingest.docs_quarantined":N,"parse.bytes":N,"parse.docs":N,"parse.errors.syntax":N,"parse.nodes":N},"gauges":{},"histograms":{"parse.budget_headroom_bytes":{"count":N,"sum":N,"min":N,"max":N,"p50":N,"p90":N,"p99":N},"parse.budget_headroom_nodes":{"count":N,"sum":N,"min":N,"max":N,"p50":N,"p90":N,"p99":N},"parse.doc_bytes":{"count":N,"sum":N,"min":N,"max":N,"p50":N,"p90":N,"p99":N},"parse.doc_nodes":{"count":N,"sum":N,"min":N,"max":N,"p50":N,"p90":N,"p99":N}},"spans":{}}

A depth budget turns the deep fixture into a typed budget kill, visible in
both the report and the telemetry:

  $ jsontool ingest --max-depth 4 --stats-json ../corpus/deep.ndjson 2>stats.json
  {"ok":1,"quarantined":0,"budget_killed":1,"budget_by_cause":{"max-depth":1},"truncated":false}
  $ mask < stats.json
  {"counters":{"ingest.budget.max-depth":N,"ingest.docs_ok":N,"parse.bytes":N,"parse.docs":N,"parse.errors.budget.max-depth":N,"parse.nodes":N},"gauges":{},"histograms":{"parse.budget_headroom_bytes":{"count":N,"sum":N,"min":N,"max":N,"p50":N,"p90":N,"p99":N},"parse.budget_headroom_nodes":{"count":N,"sum":N,"min":N,"max":N,"p50":N,"p90":N,"p99":N},"parse.doc_bytes":{"count":N,"sum":N,"min":N,"max":N,"p50":N,"p90":N,"p99":N},"parse.doc_nodes":{"count":N,"sum":N,"min":N,"max":N,"p50":N,"p90":N,"p99":N}},"spans":{}}

Inference adds merge counters, the union-width histogram, and the infer
span; the default streaming engine tags the report and adds its token and
scratch-reuse counters. The inferred type over the drifting fixture is
exact:

  $ jsontool infer --stats-json ../corpus/mixed_types.ndjson 2>stats.json
  {v: Null + Bool + Num + Str}
  $ mask < stats.json
  {"engine":"streaming","counters":{"infer.merge_ops":N,"ingest.docs_ok":N,"kernel.fuse.misses":N,"kernel.intern.hits":N,"kernel.merge.misses":N,"kernel.nodes":N,"kernel.simplify.misses":N,"parse.bytes":N,"parse.docs":N,"parse.nodes":N,"stream.scratch.reuse":N,"stream.tokens":N},"gauges":{"kernel.cache.entries":N},"histograms":{"infer.union_width":{"count":N,"sum":N,"min":N,"max":N,"p50":N,"p90":N,"p99":N},"parse.doc_bytes":{"count":N,"sum":N,"min":N,"max":N,"p50":N,"p90":N,"p99":N},"parse.doc_nodes":{"count":N,"sum":N,"min":N,"max":N,"p50":N,"p90":N,"p99":N}},"spans":{"infer":{"calls":N,"total_s":N,"max_s":N}}}

With `--engine tree` the stream.* counters disappear and the tag flips; the
key set is otherwise the streaming one:

  $ jsontool infer --engine tree --stats-json ../corpus/mixed_types.ndjson 2>stats.json
  {v: Null + Bool + Num + Str}
  $ mask < stats.json
  {"engine":"tree","counters":{"infer.merge_ops":N,"ingest.docs_ok":N,"kernel.fuse.misses":N,"kernel.intern.hits":N,"kernel.merge.misses":N,"kernel.nodes":N,"kernel.simplify.misses":N,"parse.bytes":N,"parse.docs":N,"parse.nodes":N},"gauges":{"kernel.cache.entries":N},"histograms":{"infer.union_width":{"count":N,"sum":N,"min":N,"max":N,"p50":N,"p90":N,"p99":N},"parse.doc_bytes":{"count":N,"sum":N,"min":N,"max":N,"p50":N,"p90":N,"p99":N},"parse.doc_nodes":{"count":N,"sum":N,"min":N,"max":N,"p50":N,"p90":N,"p99":N}},"spans":{"infer":{"calls":N,"total_s":N,"max_s":N}}}

Compiled validation plans: `validate` lowers the schema to an executable plan
by default; reports must be byte-identical to the interpreter (`--compiled
off`), on the clean corpus and on violations alike.

  $ jsontool validate -s schema.json orders.ndjson > compiled.out 2>&1
  $ jsontool validate --compiled off -s schema.json orders.ndjson > interp.out 2>&1
  $ cmp compiled.out interp.out
  $ cat compiled.out
  20/20 documents valid

  $ echo '{"order_id": "not a number"}' > bad.ndjson
  $ jsontool validate -s schema.json bad.ndjson > compiled.out 2>&1
  [1]
  $ jsontool validate --compiled off -s schema.json bad.ndjson > interp.out 2>&1
  [1]
  $ cmp compiled.out interp.out

The plan cache kill switch changes nothing observable in the report:

  $ jsontool validate --validate-cache off -s schema.json orders.ndjson
  20/20 documents valid

Validation telemetry: the compiled engine emits the same per-keyword counters
as the interpreter plus plan compilation and cache metrics; the default
streaming engine tags the report and counts the tokens it walked:

  $ jsontool validate --stats-json -s schema.json orders.ndjson 2>stats.json
  20/20 documents valid
  $ mask < stats.json
  {"engine":"streaming","counters":{"ingest.docs_ok":N,"parse.bytes":N,"parse.docs":N,"parse.nodes":N,"stream.tokens":N,"validate.cache.misses":N,"validate.kw.properties":N,"validate.kw.required":N,"validate.kw.type":N},"gauges":{"validate.max_depth":N,"validate.plan.nodes":N},"histograms":{"parse.doc_bytes":{"count":N,"sum":N,"min":N,"max":N,"p50":N,"p90":N,"p99":N},"parse.doc_nodes":{"count":N,"sum":N,"min":N,"max":N,"p50":N,"p90":N,"p99":N},"validate.compile_ms":{"count":N,"sum":N,"min":N,"max":N,"p50":N,"p90":N,"p99":N}},"spans":{}}

...and with `--compiled off` the compile/cache keys disappear while the
keyword counters stay; no plan means no streaming, so the run is tagged with
the tree engine it fell back to:

  $ jsontool validate --compiled off --stats-json -s schema.json orders.ndjson 2>stats.json
  20/20 documents valid
  $ mask < stats.json
  {"engine":"tree","counters":{"ingest.docs_ok":N,"parse.bytes":N,"parse.docs":N,"parse.nodes":N,"validate.kw.properties":N,"validate.kw.required":N,"validate.kw.type":N},"gauges":{"validate.max_depth":N},"histograms":{"parse.doc_bytes":{"count":N,"sum":N,"min":N,"max":N,"p50":N,"p90":N,"p99":N},"parse.doc_nodes":{"count":N,"sum":N,"min":N,"max":N,"p50":N,"p90":N,"p99":N}},"spans":{}}

Engine byte-identity: `--engine tree` materializes every document;
`--engine streaming` (the default) fuses parsing with the fold. Reports must
be byte-identical across engines and job counts, for inference and
validation, on clean corpora and on violations alike:

  $ jsontool infer --engine tree par.ndjson > infer_tree.txt
  $ jsontool infer --engine streaming par.ndjson > infer_stream.txt
  $ cmp infer_tree.txt infer_stream.txt
  $ jsontool infer --engine streaming --jobs 4 par.ndjson > infer_stream4.txt
  $ cmp infer_tree.txt infer_stream4.txt

  $ jsontool validate --engine tree -s schema.json orders.ndjson > val_tree.out 2>&1
  $ jsontool validate --engine streaming -s schema.json orders.ndjson > val_stream.out 2>&1
  $ cmp val_tree.out val_stream.out
  $ jsontool validate --engine streaming --jobs 4 -s schema.json orders.ndjson > val_stream4.out 2>&1
  $ cmp val_tree.out val_stream4.out

  $ jsontool validate --engine tree -s schema.json bad.ndjson > bad_tree.out 2>&1
  [1]
  $ jsontool validate --engine streaming -s schema.json bad.ndjson > bad_stream.out 2>&1
  [1]
  $ cmp bad_tree.out bad_stream.out

Schema-drift check: `check` infers the corpus type and decides containment
against the schema — the cost of the verdict depends on the type and the
schema, never the corpus size. Exit 0 = contained, 1 = refuted (with a
concrete witness the schema rejects), 2 = outside the decided fragment.

  $ printf '{"a":1,"b":"x"}\n{"a":2,"b":"y"}\n' > chk.ndjson
  $ echo '{"type":"object","required":["a","b"],"properties":{"a":{"type":"integer"},"b":{"type":"string"}}}' > chk_ok.json
  $ jsontool check -s chk_ok.json chk.ndjson
  inferred: {a: Int, b: Str}
  contained: every instance of the inferred type satisfies the schema

  $ echo '{"type":"object","properties":{"a":{"type":"string"}}}' > chk_bad.json
  $ jsontool check -s chk_bad.json chk.ndjson
  inferred: {a: Int, b: Str}
  NOT contained: the schema rejects this instance of the inferred type:
    {"a":0,"b":""}
  [1]

  $ echo '{"type":"object","properties":{"w":{"type":"string","pattern":".*"}}}' > chk_unk.json
  $ printf '{"u":1,"v":2,"w":"x"}\n' > uvw.ndjson
  $ jsontool check -s chk_unk.json uvw.ndjson
  inferred: {u: Int, v: Int, w: Str}
  unknown: properties/w: pattern ".*" outside the decided fragment
  [2]

The check rides the same engine plumbing as infer; both engines agree:

  $ jsontool check --engine tree -s chk_bad.json chk.ndjson > chk_tree.out 2>&1
  [1]
  $ jsontool check --engine streaming -s chk_bad.json chk.ndjson > chk_stream.out 2>&1
  [1]
  $ cmp chk_tree.out chk_stream.out

Check telemetry: the subtype engine's memoized decision cache is observable.
Two Int fields against two identical exact `number` subschemas are one
computed query plus one memo hit; the pattern keyword forces the one
conservative Unknown. The counters are deterministic:

  $ echo '{"type":"object","properties":{"u":{"type":"number"},"v":{"type":"number"},"w":{"type":"string","pattern":".*"}}}' > chk_memo.json
  $ jsontool check -s chk_memo.json --stats-json uvw.ndjson 2>stats.json
  inferred: {u: Int, v: Int, w: Str}
  unknown: properties/w: pattern ".*" outside the decided fragment
  [2]
  $ grep -o '"subtype[^,}]*' stats.json | sort
  "subtype.hits":1
  "subtype.queries":2
  "subtype.unknown":1
  $ mask < stats.json
  {"engine":"streaming","counters":{"ingest.docs_ok":N,"kernel.intern.hits":N,"kernel.nodes":N,"kernel.simplify.hits":N,"kernel.simplify.misses":N,"parse.bytes":N,"parse.docs":N,"parse.nodes":N,"stream.tokens":N,"subtype.hits":N,"subtype.queries":N,"subtype.unknown":N,"supervisor.attempts":N},"gauges":{"kernel.cache.entries":N},"histograms":{"parse.doc_bytes":{"count":N,"sum":N,"min":N,"max":N,"p50":N,"p90":N,"p99":N},"parse.doc_nodes":{"count":N,"sum":N,"min":N,"max":N,"p50":N,"p90":N,"p99":N}},"spans":{}}

Under the tree engine the stream.* counters disappear and a fully-contained
check touches the subtype cache without ever answering Unknown — only the
positive counters materialize:

  $ jsontool check --engine tree -s chk_ok.json --stats-json chk.ndjson 2>stats.json
  inferred: {a: Int, b: Str}
  contained: every instance of the inferred type satisfies the schema
  $ mask < stats.json
  {"engine":"tree","counters":{"ingest.docs_ok":N,"kernel.intern.hits":N,"kernel.nodes":N,"kernel.simplify.hits":N,"kernel.simplify.misses":N,"parse.bytes":N,"parse.docs":N,"parse.nodes":N,"subtype.queries":N,"supervisor.attempts":N},"gauges":{"kernel.cache.entries":N},"histograms":{"parse.doc_bytes":{"count":N,"sum":N,"min":N,"max":N,"p50":N,"p90":N,"p99":N},"parse.doc_nodes":{"count":N,"sum":N,"min":N,"max":N,"p50":N,"p90":N,"p99":N}},"spans":{}}
