(* Integration tests for the Core umbrella and the end-to-end Pipeline. *)

open Core

let parse = Json.Parser.parse_exn
let value = Alcotest.testable Json.Printer.pp Json.Value.equal

let docs =
  List.map parse
    [ {|{"id": 1, "name": "ann", "tags": ["a"]}|};
      {|{"id": 2, "name": "bob"}|};
      {|{"id": 3, "name": "cho", "tags": []}|} ]

let test_infer_artifacts () =
  let inferred = Pipeline.infer ~name:"User" docs in
  Alcotest.(check string) "type"
    "{id: Int, name: Str, tags?: [Str]}"
    (Jtype.Types.to_string inferred.Pipeline.jtype);
  (* schema artifact validates the corpus *)
  List.iter
    (fun d ->
      Alcotest.(check bool) "schema accepts corpus" true
        (Jsonschema.Validate.is_valid ~root:inferred.Pipeline.json_schema d))
    docs;
  (* codegen artifacts mention the fields *)
  let has needle hay = Re.execp (Re.compile (Re.str needle)) hay in
  Alcotest.(check bool) "ts" true (has "tags?: string[]" inferred.Pipeline.typescript);
  Alcotest.(check bool) "swift" true (has "let tags: [String]?" inferred.Pipeline.swift);
  (* counting totals *)
  Alcotest.(check int) "counting total" 3 (Jtype.Counting.count inferred.Pipeline.counting)

let test_infer_ndjson () =
  let text = String.concat "\n" (List.map Json.Printer.to_string docs) in
  match Pipeline.infer_ndjson text with
  | Ok inferred ->
      Alcotest.(check string) "same as batch"
        (Jtype.Types.to_string (Pipeline.infer docs).Pipeline.jtype)
        (Jtype.Types.to_string inferred.Pipeline.jtype)
  | Error m -> Alcotest.fail m

let test_validate_collection () =
  let root = (Pipeline.infer docs).Pipeline.json_schema in
  (match Pipeline.validate_collection ~root docs with
   | Ok 3 -> ()
   | Ok n -> Alcotest.fail (Printf.sprintf "expected 3 valid, got %d" n)
   | Error _ -> Alcotest.fail "corpus must validate");
  match Pipeline.validate_collection ~root (docs @ [ parse {|{"id": "four"}|} ]) with
  | Ok _ -> Alcotest.fail "corrupted doc must fail"
  | Error [ (3, _ :: _) ] -> ()
  | Error failures ->
      Alcotest.fail (Printf.sprintf "expected failure at index 3, got %d failures" (List.length failures))

let test_profile_report () =
  let report = Pipeline.profile docs in
  Alcotest.(check (option value)) "documents" (Some (Json.Value.Int 3))
    (Json.Value.member "documents" report);
  Alcotest.(check bool) "has inferred type" true
    (Json.Value.has_member "inferred_type" report);
  Alcotest.(check bool) "has field stats" true
    (Json.Value.has_member "field_statistics" report);
  (* the report itself is valid JSON all the way down (printable) *)
  match Json.Parser.parse (Json.Printer.to_string report) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Json.Parser.string_of_error e)

let test_translate_pipeline () =
  let st = Datagen.rng ~seed:13 in
  let tweets = Datagen.tweets st 100 in
  match Pipeline.translate tweets with
  | Error m -> Alcotest.fail m
  | Ok tr ->
      Alcotest.(check bool) "avro smaller than json" true
        (String.length tr.Pipeline.avro_bytes < tr.Pipeline.json_bytes);
      Alcotest.(check bool) "columnar smaller than json" true
        (String.length tr.Pipeline.columnar_bytes < tr.Pipeline.json_bytes);
      (* the avro schema is a record *)
      Alcotest.(check (option value)) "avro schema kind"
        (Some (Json.Value.String "record"))
        (Json.Value.member "type" tr.Pipeline.avro_schema)

let test_resilient_pipelines () =
  let text = "{\"a\": 1}\n{oops\n{\"a\": 2}\n" in
  (* inference runs on the survivors, the wreck is quarantined *)
  let inferred, r = Pipeline.infer_ndjson_resilient text in
  Alcotest.(check int) "ok" 2 r.Resilient.report.Resilient.ok;
  Alcotest.(check int) "quarantined" 1 r.Resilient.report.Resilient.quarantined;
  (match inferred with
   | Some inf ->
       Alcotest.(check bool) "a typed" true
         (Jtype.Types.size inf.Pipeline.jtype > 0)
   | None -> Alcotest.fail "two documents survived; inference must run");
  (* nothing survives -> None, not an exception *)
  (match Pipeline.infer_ndjson_resilient "{nope\n" with
   | None, r0 -> Alcotest.(check int) "all dead" 1 r0.Resilient.report.Resilient.quarantined
   | Some _, _ -> Alcotest.fail "no survivors expected");
  (* guarded validation indexes failures into the survivor list *)
  let root = Json.Parser.parse_exn {|{"type": "object", "required": ["a"]}|} in
  let rv, failures = Pipeline.validate_ndjson ~root "{\"a\": 1}\n{oops\n{\"b\": 2}\n" in
  Alcotest.(check int) "validated survivors" 2 rv.Resilient.report.Resilient.ok;
  Alcotest.(check (list int)) "failing survivor indices" [ 1 ] (List.map fst failures);
  (* guarded translation *)
  match Pipeline.translate_ndjson text with
  | Some (Ok tr), rt ->
      Alcotest.(check int) "translate survivors" 2 rt.Resilient.report.Resilient.ok;
      Alcotest.(check bool) "bytes produced" true (String.length tr.Pipeline.avro_bytes > 0)
  | Some (Error m), _ -> Alcotest.fail ("translate: " ^ m)
  | None, _ -> Alcotest.fail "translation had survivors"

let test_umbrella_exposes_everything () =
  (* every component is reachable through Core *)
  ignore (Json.Parser.parse "1");
  ignore (Jsonschema.Parse.of_string "true");
  ignore Joi.string;
  ignore (Jsound.parse_string {|"item"|});
  ignore Jtype.Types.any;
  ignore (Inference.Skeleton.build []);
  ignore (Fastjson.Fadjs.create ());
  ignore (Translate.Avro.zigzag 1);
  ignore (Datagen.rng ~seed:1);
  ignore (Query.Parse.pipeline "top 1");
  Alcotest.(check pass) "all modules linked" () ()

let () =
  Alcotest.run "core"
    [ ("pipeline",
       [ Alcotest.test_case "infer artifacts" `Quick test_infer_artifacts;
         Alcotest.test_case "infer ndjson" `Quick test_infer_ndjson;
         Alcotest.test_case "validate collection" `Quick test_validate_collection;
         Alcotest.test_case "profile report" `Quick test_profile_report;
         Alcotest.test_case "translate" `Quick test_translate_pipeline;
         Alcotest.test_case "resilient variants" `Quick test_resilient_pipelines ]);
      ("umbrella", [ Alcotest.test_case "exposure" `Quick test_umbrella_exposes_everything ]);
    ]
