(* Tests for Core.Telemetry: metric semantics (counters, gauges, log-scale
   histograms, nested spans), the hard promise that recording never changes
   a pipeline's output (byte-identical under nop vs recording sinks, for
   jobs 1 and 4), a differential property that Mison's projection agrees
   with full-parse-then-project while its byte accounting stays within the
   input, and a regression test for the typed budget-cause breakdown.

   Properties run from a fixed seed (QCHECK_SEED overrides) and FUZZ_COUNT
   rescales case counts, as in test_robustness. *)

open Core

let fuzz_seed =
  match Option.bind (Sys.getenv_opt "QCHECK_SEED") int_of_string_opt with
  | Some s -> s
  | None -> 20250806

let count_cases base =
  match Option.bind (Sys.getenv_opt "FUZZ_COUNT") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> base

let counter snap name =
  match List.assoc_opt name snap.Telemetry.counters with Some n -> n | None -> 0

let histo snap name = List.assoc_opt name snap.Telemetry.histograms

(* --- counters and gauges ----------------------------------------------- *)

let test_counters () =
  let s = Telemetry.create () in
  Alcotest.(check bool) "recording" true (Telemetry.is_recording s);
  Alcotest.(check bool) "nop is not" false (Telemetry.is_recording Telemetry.nop);
  Telemetry.count s "a" 1;
  Telemetry.count s "a" 41;
  Telemetry.count s "a" (-7);
  (* negative increments ignored *)
  Telemetry.count s "b" 3;
  let snap = Telemetry.snapshot s in
  Alcotest.(check int) "a sums" 42 (counter snap "a");
  Alcotest.(check int) "b" 3 (counter snap "b");
  Alcotest.(check (list string)) "sorted by name" [ "a"; "b" ]
    (List.map fst snap.Telemetry.counters);
  (* the nop sink records nothing *)
  Telemetry.count Telemetry.nop "x" 5;
  let nsnap = Telemetry.snapshot Telemetry.nop in
  Alcotest.(check int) "nop empty" 0 (List.length nsnap.Telemetry.counters)

let test_gauge_max () =
  let s = Telemetry.create () in
  Telemetry.gauge_max s "depth" 1.0;
  Telemetry.gauge_max s "depth" 5.0;
  Telemetry.gauge_max s "depth" 3.0;
  let snap = Telemetry.snapshot s in
  Alcotest.(check (float 0.0)) "high-water mark" 5.0
    (List.assoc "depth" snap.Telemetry.gauges)

(* --- histograms --------------------------------------------------------- *)

let test_histogram_empty () =
  let h = Telemetry.Histogram.create () in
  Alcotest.(check int) "count" 0 (Telemetry.Histogram.count h);
  Alcotest.(check bool) "p50 of empty" true
    (Telemetry.Histogram.percentile h 0.5 = None)

let test_histogram_single_sample () =
  (* one sample must be reported exactly for every quantile (clamping) *)
  let h = Telemetry.Histogram.create () in
  Telemetry.Histogram.observe h 0.125;
  List.iter
    (fun q ->
      match Telemetry.Histogram.percentile h q with
      | None -> Alcotest.fail "expected a percentile"
      | Some v ->
          Alcotest.(check (float 1e-12))
            (Printf.sprintf "q=%.2f exact" q)
            0.125 v)
    [ 0.0; 0.5; 0.9; 0.99; 1.0 ]

let test_histogram_percentiles () =
  let s = Telemetry.create () in
  for i = 1 to 1000 do
    Telemetry.observe s "lat" (float_of_int i)
  done;
  let snap = Telemetry.snapshot s in
  match histo snap "lat" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
      Alcotest.(check int) "count" 1000 h.Telemetry.h_count;
      Alcotest.(check (float 1e-6)) "sum exact" 500500.0 h.Telemetry.h_sum;
      Alcotest.(check (float 1e-12)) "min exact" 1.0 h.Telemetry.h_min;
      Alcotest.(check (float 1e-12)) "max exact" 1000.0 h.Telemetry.h_max;
      (* log-scale buckets at quarter powers of two: relative error of a
         bucket midpoint is bounded by 2^(1/8) - 1 < 9.1% *)
      let close ~exact v =
        let rel = Float.abs (v -. exact) /. exact in
        Alcotest.(check bool)
          (Printf.sprintf "within bucket tolerance (%g vs %g)" v exact)
          true (rel < 0.1)
      in
      close ~exact:500.0 h.Telemetry.h_p50;
      close ~exact:900.0 h.Telemetry.h_p90;
      close ~exact:990.0 h.Telemetry.h_p99;
      Alcotest.(check bool) "monotone" true
        (h.Telemetry.h_p50 <= h.Telemetry.h_p90
        && h.Telemetry.h_p90 <= h.Telemetry.h_p99
        && h.Telemetry.h_p99 <= h.Telemetry.h_max)

let test_histogram_underflow () =
  (* non-positive samples land in the underflow bucket but still count,
     and clamping keeps the reported quantile at the exact extremum *)
  let s = Telemetry.create () in
  Telemetry.observe s "neg" (-1.0);
  Telemetry.observe s "neg" Float.nan;
  (* dropped *)
  let snap = Telemetry.snapshot s in
  match histo snap "neg" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
      Alcotest.(check int) "nan dropped" 1 h.Telemetry.h_count;
      Alcotest.(check (float 1e-12)) "p50 clamped to sample" (-1.0)
        h.Telemetry.h_p50

(* --- spans -------------------------------------------------------------- *)

let span_calls snap path =
  match
    List.find_opt (fun sp -> sp.Telemetry.sp_path = path) snap.Telemetry.spans
  with
  | Some sp -> sp.Telemetry.sp_calls
  | None -> 0

let test_spans_nested () =
  let s = Telemetry.create () in
  Telemetry.span s "outer" (fun () ->
      Telemetry.span s "inner" (fun () -> ());
      Telemetry.span s "inner" (fun () -> ()));
  Telemetry.span s "outer" (fun () -> ());
  let snap = Telemetry.snapshot s in
  Alcotest.(check int) "outer calls" 2 (span_calls snap "outer");
  Alcotest.(check int) "nested path" 2 (span_calls snap "outer/inner");
  Alcotest.(check int) "no bare inner" 0 (span_calls snap "inner");
  let outer =
    List.find (fun sp -> sp.Telemetry.sp_path = "outer") snap.Telemetry.spans
  in
  Alcotest.(check bool) "total >= max >= 0" true
    (outer.Telemetry.sp_total_s >= outer.Telemetry.sp_max_s
    && outer.Telemetry.sp_max_s >= 0.0)

let test_spans_close_on_raise () =
  let s = Telemetry.create () in
  (try Telemetry.span s "boom" (fun () -> failwith "x") with Failure _ -> ());
  Telemetry.span s "after" (fun () -> ());
  let snap = Telemetry.snapshot s in
  Alcotest.(check int) "raising span recorded" 1 (span_calls snap "boom");
  (* the failed span was popped: "after" is a root path, not "boom/after" *)
  Alcotest.(check int) "stack unwound" 1 (span_calls snap "after");
  Alcotest.(check int) "no orphan nesting" 0 (span_calls snap "boom/after")

(* --- recording never changes pipeline output ---------------------------- *)

let messy_text =
  let st = Datagen.rng ~seed:91 in
  let text = Datagen.to_ndjson (Datagen.tweets st 120) in
  (Chaos.corrupt ~seed:910 ~rate:0.12 text).Chaos.text

let infer_fingerprint (inferred, (r : Resilient.ingest)) =
  let body =
    match inferred with
    | None -> "none"
    | Some i ->
        Jtype.Types.to_string i.Pipeline.jtype
        ^ "\n" ^ i.Pipeline.typescript
        ^ "\n"
        ^ Json.Printer.to_string i.Pipeline.json_schema
  in
  String.concat "\n"
    (body
     :: Json.Printer.to_string (Resilient.report_to_json r.Resilient.report)
     :: List.map
          (fun d -> Json.Printer.to_string (Resilient.dead_letter_to_json d))
          r.Resilient.dead)

let test_determinism_infer () =
  List.iter
    (fun jobs ->
      let plain = Pipeline.infer_ndjson_resilient ~jobs messy_text in
      let sink = Telemetry.create () in
      let observed =
        Pipeline.infer_ndjson_resilient ~jobs ~telemetry:sink messy_text
      in
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d output identical under recording" jobs)
        (infer_fingerprint plain)
        (infer_fingerprint observed);
      (* and the sink actually saw the pipeline *)
      let snap = Telemetry.snapshot sink in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d sink non-empty" jobs)
        true
        (counter snap "ingest.docs_ok" > 0))
    [ 1; 4 ]

let test_determinism_validate () =
  let st = Datagen.rng ~seed:92 in
  let text = Datagen.to_ndjson (Datagen.events st ~fields:6 80) in
  let root =
    match Pipeline.infer_ndjson ~name:"Root" text with
    | Ok i -> i.Pipeline.json_schema
    | Error m -> Alcotest.fail m
  in
  let render (r, failures) =
    String.concat "\n"
      (Json.Printer.to_string (Resilient.report_to_json r.Resilient.report)
       :: List.map
            (fun (i, errs) ->
              string_of_int i ^ ": "
              ^ String.concat "; "
                  (List.map Jsonschema.Validate.string_of_error errs))
            failures)
  in
  List.iter
    (fun jobs ->
      let plain = Pipeline.validate_ndjson ~jobs ~root text in
      let sink = Telemetry.create () in
      let config =
        { Jsonschema.Validate.default_config with telemetry = sink }
      in
      let observed =
        Pipeline.validate_ndjson ~config ~jobs ~telemetry:sink ~root text
      in
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d validation identical under recording" jobs)
        (render plain) (render observed);
      let snap = Telemetry.snapshot sink in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d keyword counters present" jobs)
        true
        (counter snap "validate.kw.type" > 0))
    [ 1; 4 ]

(* --- differential: Mison projection vs full parse ----------------------- *)

let field_pool = [ "a"; "b"; "c"; "id"; "payload" ]

let gen_doc : Json.Value.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let scalar =
    oneof
      [ map (fun i -> Json.Value.Int i) small_int;
        map (fun s -> Json.Value.String s)
          (string_size ~gen:(char_range 'a' 'z') (int_range 0 8));
        return (Json.Value.Bool true);
        return Json.Value.Null;
        map (fun f -> Json.Value.Float f) (float_bound_exclusive 1000.0) ]
  in
  let* present = flatten_l (List.map (fun f -> pair (return f) bool) field_pool)
  in
  let fields = List.filter_map (fun (f, p) -> if p then Some f else None) present in
  let* vals = flatten_l (List.map (fun f -> pair (return f) scalar) fields) in
  return (Json.Value.Object vals)

let gen_corpus : (string list * string) QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* docs = list_size (int_range 1 20) gen_doc in
  let* wanted =
    List.fold_right
      (fun f acc ->
        let* keep = bool in
        let* rest = acc in
        return (if keep then f :: rest else rest))
      field_pool (return [])
  in
  return (wanted, Datagen.to_ndjson docs)

let reference_projection ~fields text =
  (* full parse, then keep the wanted fields in record order *)
  String.split_on_char '\n' text
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map (fun line ->
         match Json.Parser.parse line with
         | Ok (Json.Value.Object kvs) ->
             List.filter (fun (k, _) -> List.mem k fields) kvs
         | Ok _ | Error _ -> Alcotest.fail ("reference parse failed: " ^ line))

(* speculative probing can surface fields out of record order; compare as
   sorted assoc lists *)
let row_to_string row =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) row in
  Json.Printer.to_string (Json.Value.Object sorted)

let mison_differential =
  QCheck2.Test.make ~name:"mison projection == full parse projection"
    ~count:(count_cases 300) gen_corpus (fun (fields, text) ->
      let sink = Telemetry.create () in
      match
        Fastjson.Mison.project_ndjson_with_stats ~telemetry:sink
          { Fastjson.Mison.fields } text
      with
      | Error m -> QCheck2.Test.fail_reportf "mison errored: %s" m
      | Ok (rows, _stats) ->
          let expected = reference_projection ~fields text in
          if List.length rows <> List.length expected then
            QCheck2.Test.fail_reportf "row count %d vs %d" (List.length rows)
              (List.length expected);
          List.iter2
            (fun got want ->
              if row_to_string got <> row_to_string want then
                QCheck2.Test.fail_reportf "row mismatch: %s vs %s"
                  (row_to_string got) (row_to_string want))
            rows expected;
          (* byte accounting never exceeds the input *)
          let snap = Telemetry.snapshot sink in
          let input = counter snap "mison.input_bytes" in
          let pruned = counter snap "mison.bytes_pruned" in
          let mat = counter snap "mison.bytes_materialized" in
          if pruned + mat > input then
            QCheck2.Test.fail_reportf
              "pruned %d + materialized %d > input %d" pruned mat input;
          true)

(* --- budget causes regression ------------------------------------------- *)

let test_budget_causes () =
  let deep = "[[[[[[1]]]]]]" in
  let big =
    Printf.sprintf "{\"big\":\"%s\"}" (String.make 200 'x')
  in
  let lines =
    List.init 6 (fun i -> Printf.sprintf "{\"a\":%d}" i)
    @ [ deep; big; deep; big; big ]
  in
  let text = String.concat "\n" lines ^ "\n" in
  let budget =
    {
      Resilient.max_doc_bytes = Some 64;
      max_nodes = None;
      max_string_bytes = None;
      max_depth = 3;
      max_docs = None;
    }
  in
  let check_report label (r : Resilient.report) =
    Alcotest.(check int) (label ^ " ok") 6 r.Resilient.ok;
    Alcotest.(check int) (label ^ " killed") 5 r.Resilient.budget_killed;
    let causes =
      List.map
        (fun (v, n) -> (Json.Parser.violation_name v, n))
        r.Resilient.budget_causes
    in
    (* sorted by name: max-bytes < max-depth *)
    Alcotest.(check (list (pair string int)))
      (label ^ " causes")
      [ ("max-bytes", 3); ("max-depth", 2) ]
      causes;
    let rendered = Json.Printer.to_string (Resilient.report_to_json r) in
    Alcotest.(check bool) (label ^ " json key") true
      (let needle = "\"budget_by_cause\":{\"max-bytes\":3,\"max-depth\":2}" in
       let len_n = String.length needle and len_h = String.length rendered in
       let rec scan i =
         i + len_n <= len_h
         && (String.sub rendered i len_n = needle || scan (i + 1))
       in
       scan 0)
  in
  let seq = Resilient.ingest ~budget text in
  check_report "sequential" seq.Resilient.report;
  let par = Parallel.ingest ~budget ~jobs:4 text in
  check_report "jobs=4 merged" par.Resilient.report;
  (* a clean report renders without the key at all *)
  let clean = Resilient.ingest "{\"a\":1}\n" in
  let rendered =
    Json.Printer.to_string (Resilient.report_to_json clean.Resilient.report)
  in
  Alcotest.(check string) "clean report unchanged"
    "{\"ok\":1,\"quarantined\":0,\"budget_killed\":0,\"truncated\":false}"
    rendered

let () =
  Printf.printf "telemetry suite seed: %d\n%!" fuzz_seed;
  let qcheck t =
    QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| fuzz_seed |]) t
  in
  Alcotest.run "telemetry"
    [ ("metrics",
       [ Alcotest.test_case "counters" `Quick test_counters;
         Alcotest.test_case "gauge max" `Quick test_gauge_max ]);
      ("histograms",
       [ Alcotest.test_case "empty" `Quick test_histogram_empty;
         Alcotest.test_case "single sample exact" `Quick
           test_histogram_single_sample;
         Alcotest.test_case "percentiles" `Quick test_histogram_percentiles;
         Alcotest.test_case "underflow + nan" `Quick test_histogram_underflow ]);
      ("spans",
       [ Alcotest.test_case "nested paths" `Quick test_spans_nested;
         Alcotest.test_case "closes on raise" `Quick test_spans_close_on_raise ]);
      ("determinism",
       [ Alcotest.test_case "infer pipeline" `Quick test_determinism_infer;
         Alcotest.test_case "validate pipeline" `Quick
           test_determinism_validate ]);
      ("differential", [ qcheck mison_differential ]);
      ("budget causes",
       [ Alcotest.test_case "typed breakdown" `Quick test_budget_causes ]);
    ]
