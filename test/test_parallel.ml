(* Tests for Core.Parallel: the sharded execution engine must be
   byte-identical to the sequential path — same documents, same dead
   letters (order included), same reports, same inferred types — for any
   job count, on clean and chaos-corrupted input alike. *)

open Core

let dead_to_string d = Json.Printer.to_string (Resilient.dead_letter_to_json d)
let report_to_string r = Json.Printer.to_string (Resilient.report_to_json r)

let ingest_fingerprint (r : Resilient.ingest) =
  String.concat "\n"
    (report_to_string r.Resilient.report
     :: List.map dead_to_string r.Resilient.dead
    @ List.map Json.Printer.to_string r.Resilient.docs)

(* a messy corpus: seeded tweets run through the chaos harness *)
let messy_text =
  let st = Datagen.rng ~seed:77 in
  let text = Datagen.to_ndjson (Datagen.tweets st 400) in
  (Chaos.corrupt ~seed:770 ~rate:0.15 text).Chaos.text

let clean_text =
  let st = Datagen.rng ~seed:78 in
  Datagen.to_ndjson (Datagen.events st ~fields:12 500)

(* --- pool primitives --------------------------------------------------- *)

let test_run_order_and_results () =
  let thunks = List.init 37 (fun i () -> i * i) in
  Alcotest.(check (list int)) "order preserved (jobs=4)"
    (List.init 37 (fun i -> i * i))
    (Parallel.run ~jobs:4 thunks);
  Alcotest.(check (list int)) "jobs > tasks" [ 1; 2 ]
    (Parallel.run ~jobs:16 [ (fun () -> 1); (fun () -> 2) ]);
  Alcotest.(check (list int)) "empty" [] (Parallel.run ~jobs:4 [])

let test_run_propagates_exceptions () =
  match Parallel.run ~jobs:3 (List.init 8 (fun i () -> if i = 5 then failwith "boom" else i)) with
  | _ -> Alcotest.fail "exception must escape"
  | exception Failure m -> Alcotest.(check string) "message" "boom" m

let test_shards_cover_input () =
  List.iter
    (fun jobs ->
      let ss = Parallel.shards ~jobs messy_text in
      Alcotest.(check bool) "at most jobs shards" true (List.length ss <= jobs);
      (* exact cover, in order *)
      let rec walk off line = function
        | [] -> Alcotest.(check int) "covers all bytes" (String.length messy_text) off
        | s :: rest ->
            Alcotest.(check int) "contiguous" off s.Parallel.s_off;
            Alcotest.(check int) "line number" line s.Parallel.s_line;
            let nl = ref 0 in
            String.iter (fun c -> if c = '\n' then incr nl)
              (String.sub messy_text s.Parallel.s_off s.Parallel.s_len);
            (* every cut sits just after a newline *)
            (if rest <> [] then
               Alcotest.(check char) "cut after newline" '\n'
                 messy_text.[s.Parallel.s_off + s.Parallel.s_len - 1]);
            walk (s.Parallel.s_off + s.Parallel.s_len) (line + !nl) rest
      in
      walk 0 1 ss)
    [ 1; 2; 3; 4; 8; 100 ]

(* --- sharded ingestion ------------------------------------------------- *)

let test_ingest_identical () =
  let reference = Resilient.ingest messy_text in
  Alcotest.(check bool) "corpus actually has dead letters" true
    (reference.Resilient.dead <> []);
  List.iter
    (fun jobs ->
      let r = Parallel.ingest ~jobs messy_text in
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d byte-identical" jobs)
        (ingest_fingerprint reference) (ingest_fingerprint r))
    [ 1; 2; 4; 8 ]

let test_ingest_budget_identical () =
  let budget =
    { Resilient.default_budget with Resilient.max_doc_bytes = Some 512 }
  in
  let reference = Resilient.ingest ~budget messy_text in
  let r = Parallel.ingest ~budget ~jobs:4 messy_text in
  Alcotest.(check string) "budget kills identical"
    (ingest_fingerprint reference) (ingest_fingerprint r)

let test_ingest_max_docs_sequential_fallback () =
  (* the global document cap is order-dependent: parallel must defer *)
  let budget = { Resilient.default_budget with Resilient.max_docs = Some 5 } in
  let reference = Resilient.ingest ~budget clean_text in
  let r = Parallel.ingest ~budget ~jobs:4 clean_text in
  Alcotest.(check string) "truncation identical"
    (ingest_fingerprint reference) (ingest_fingerprint r);
  Alcotest.(check bool) "truncated" true r.Resilient.report.Resilient.truncated

let test_strict_first_error () =
  let reference = Resilient.parse_ndjson_strict messy_text in
  List.iter
    (fun jobs ->
      match (reference, Parallel.parse_ndjson_strict ~jobs messy_text) with
      | Error a, Error b ->
          Alcotest.(check string) (Printf.sprintf "jobs=%d same error" jobs) a b
      | Ok _, _ | _, Ok _ -> Alcotest.fail "corrupted corpus must error")
    [ 1; 4 ]

(* --- sharded inference ------------------------------------------------- *)

let test_infer_identical () =
  let docs = (Resilient.ingest messy_text).Resilient.docs in
  let reference = Inference.Parametric.infer ~equiv:Jtype.Merge.Kind docs in
  let ref_counting = Inference.Parametric.infer_counting ~equiv:Jtype.Merge.Kind docs in
  List.iter
    (fun jobs ->
      List.iter
        (fun equiv ->
          let seq = Inference.Parametric.infer ~equiv docs in
          Alcotest.(check string)
            (Printf.sprintf "type jobs=%d" jobs)
            (Jtype.Types.to_string seq)
            (Jtype.Types.to_string (Parallel.infer_type ~equiv ~jobs docs)))
        [ Jtype.Merge.Kind; Jtype.Merge.Label ];
      Alcotest.(check string)
        (Printf.sprintf "counting jobs=%d" jobs)
        (Jtype.Counting.to_string ref_counting)
        (Jtype.Counting.to_string
           (Parallel.infer_counting ~equiv:Jtype.Merge.Kind ~jobs docs)))
    [ 2; 4; 8 ];
  ignore reference

let test_pipeline_resilient_jobs () =
  let seq_inf, seq_r = Pipeline.infer_ndjson_resilient messy_text in
  let par_inf, par_r = Pipeline.infer_ndjson_resilient ~jobs:4 messy_text in
  Alcotest.(check string) "ingest identical"
    (ingest_fingerprint seq_r) (ingest_fingerprint par_r);
  match (seq_inf, par_inf) with
  | Some a, Some b ->
      Alcotest.(check string) "jtype" (Jtype.Types.to_string a.Pipeline.jtype)
        (Jtype.Types.to_string b.Pipeline.jtype);
      Alcotest.(check string) "counting"
        (Jtype.Counting.to_string a.Pipeline.counting)
        (Jtype.Counting.to_string b.Pipeline.counting);
      Alcotest.(check string) "json schema"
        (Json.Printer.to_string a.Pipeline.json_schema)
        (Json.Printer.to_string b.Pipeline.json_schema);
      Alcotest.(check string) "typescript" a.Pipeline.typescript b.Pipeline.typescript;
      Alcotest.(check string) "swift" a.Pipeline.swift b.Pipeline.swift
  | _ -> Alcotest.fail "both paths must infer"

(* --- sharded validation ------------------------------------------------ *)

let test_validate_identical () =
  let docs = (Resilient.ingest clean_text).Resilient.docs in
  let root =
    Json.Parser.parse_exn
      {|{"type": "object", "required": ["f0"],
         "properties": {"f0": {"type": "integer", "multipleOf": 3}}}|}
  in
  let render failures =
    String.concat "\n"
      (List.map
         (fun (i, es) ->
           String.concat "\n"
             (List.map
                (fun e -> Printf.sprintf "%d: %s" i (Jsonschema.Validate.string_of_error e))
                es))
         failures)
  in
  let reference = Parallel.validate ~root docs in
  Alcotest.(check bool) "some failures exist" true (reference <> []);
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d failures identical" jobs)
        (render reference)
        (render (Parallel.validate ~jobs ~root docs)))
    [ 2; 4; 8 ];
  (* guarded text entry point *)
  let seq_r, seq_f = Pipeline.validate_ndjson ~root clean_text in
  let par_r, par_f = Pipeline.validate_ndjson ~jobs:4 ~root clean_text in
  Alcotest.(check string) "ndjson ingest identical"
    (ingest_fingerprint seq_r) (ingest_fingerprint par_r);
  Alcotest.(check string) "ndjson failures identical" (render seq_f) (render par_f)

(* --- supervised execution ---------------------------------------------- *)

let fuzz_seed =
  match Option.bind (Sys.getenv_opt "QCHECK_SEED") int_of_string_opt with
  | Some s -> s
  | None -> 20250806

let count base =
  match Option.bind (Sys.getenv_opt "FUZZ_COUNT") int_of_string_opt with
  | Some n when n > 0 -> max 1 (base * n / 500)
  | _ -> base

(* zero backoff everywhere in tests: retry *semantics* are under test, not
   retry pacing *)
let test_policy ?timeout_ms ?degrade_threshold ~retries () =
  { Supervisor.default_policy with
    Supervisor.max_attempts = 1 + retries;
    timeout_ms;
    base_backoff_ms = 0.0;
    max_backoff_ms = 0.0;
    degrade_threshold }

(* dead letters record which attempt finally produced them (observability,
   not semantics); zero that out when comparing against a sequential
   reference whose letters are always attempt 1 *)
let forget_attempts (r : Resilient.ingest) =
  { r with
    Resilient.dead =
      List.map
        (fun (d : Resilient.dead_letter) -> { d with Resilient.attempts = 1 })
        r.Resilient.dead }

let sup_ingest ?policy ?inject ?checkpoint ?resume ~jobs text =
  match
    Pipeline.ingest_ndjson_supervised ?policy ?inject ?checkpoint ?resume ~jobs
      text
  with
  | Ok v -> v
  | Error e -> Alcotest.fail e

let test_supervisor_no_faults_identical () =
  (* supervision without faults is invisible: byte-identical to the plain
     parallel path, which is byte-identical to sequential *)
  let reference = Resilient.ingest messy_text in
  List.iter
    (fun jobs ->
      let r, s = sup_ingest ~policy:(test_policy ~retries:2 ()) ~jobs messy_text in
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d byte-identical" jobs)
        (ingest_fingerprint reference) (ingest_fingerprint r);
      Alcotest.(check int) "no retries" 0 s.Pipeline.sup_stats.Supervisor.retries)
    [ 1; 2; 4; 8 ]

let test_supervisor_transient_recovered () =
  (* worker_faults heals after at most 2 failed attempts, so 2 retries must
     recover every shard: no data loss, only retries *)
  let reference = Resilient.ingest messy_text in
  let inject = Chaos.worker_faults ~seed:5 ~rate:0.9 () in
  let r, s =
    sup_ingest ~policy:(test_policy ~retries:2 ()) ~inject ~jobs:4 messy_text
  in
  let s = s.Pipeline.sup_stats in
  Alcotest.(check bool) "faults actually injected" true (s.Supervisor.faults > 0);
  Alcotest.(check bool) "retries happened" true (s.Supervisor.retries > 0);
  Alcotest.(check int) "nothing poisoned" 0 s.Supervisor.poisoned;
  Alcotest.(check string) "identical modulo attempt counts"
    (ingest_fingerprint reference) (ingest_fingerprint (forget_attempts r))

let test_supervisor_poison_isolation () =
  (* permanent faults: the faulted shards are quarantined as dead letters
     with whole-input coordinates; every other shard is untouched *)
  let inject = Chaos.worker_faults ~seed:5 ~rate:0.5 ~permanent:true () in
  let jobs = 4 in
  let r, s = sup_ingest ~policy:(test_policy ~retries:1 ()) ~inject ~jobs messy_text in
  let s = s.Pipeline.sup_stats in
  Alcotest.(check bool) "some shards poisoned" true (s.Supervisor.poisoned > 0);
  Alcotest.(check bool) "not all shards poisoned" true
    (s.Supervisor.poisoned < s.Supervisor.shards);
  Alcotest.(check int) "report counts them" s.Supervisor.poisoned
    r.Resilient.report.Resilient.poisoned;
  let shard_letters =
    List.filter
      (fun (d : Resilient.dead_letter) ->
        match d.Resilient.kind with Resilient.Shard _ -> true | _ -> false)
      r.Resilient.dead
  in
  Alcotest.(check int) "one letter per poisoned shard" s.Supervisor.poisoned
    (List.length shard_letters);
  let ss = Parallel.shards ~jobs messy_text in
  List.iter
    (fun (d : Resilient.dead_letter) ->
      Alcotest.(check bool) "letter sits on a shard boundary" true
        (List.exists
           (fun sh ->
             sh.Parallel.s_off = d.Resilient.byte_offset
             && sh.Parallel.s_line = d.Resilient.line)
           ss);
      Alcotest.(check int) "attempts = exhausted budget" 2 d.Resilient.attempts;
      Alcotest.(check bool) "cause is the injected site" true
        (String.length d.Resilient.cause >= String.length "chaos:worker@"
        && String.sub d.Resilient.cause 0 (String.length "chaos:worker@")
           = "chaos:worker@"))
    shard_letters

let test_supervisor_degradation () =
  (* an impossible deadline poisons every shard in the parallel pass; the
     degradation fallback (sequential, deadline-free) then recovers all of
     them, so the job still produces the full result *)
  let reference = Resilient.ingest messy_text in
  let r, s =
    sup_ingest
      ~policy:(test_policy ~retries:0 ~timeout_ms:0.0 ~degrade_threshold:0.5 ())
      ~jobs:4 messy_text
  in
  let s = s.Pipeline.sup_stats in
  Alcotest.(check bool) "deadline fired" true (s.Supervisor.timeouts > 0);
  Alcotest.(check int) "fallback recovered every shard" s.Supervisor.shards
    s.Supervisor.degraded;
  Alcotest.(check int) "nothing poisoned" 0 s.Supervisor.poisoned;
  Alcotest.(check string) "identical after degradation, modulo attempts"
    (ingest_fingerprint reference) (ingest_fingerprint (forget_attempts r));
  (* same deadline without the fallback: everything is quarantined *)
  let r2, s2 =
    sup_ingest ~policy:(test_policy ~retries:0 ~timeout_ms:0.0 ()) ~jobs:4
      messy_text
  in
  Alcotest.(check int) "without fallback all shards poison"
    s2.Pipeline.sup_stats.Supervisor.shards
    s2.Pipeline.sup_stats.Supervisor.poisoned;
  Alcotest.(check int) "no documents survive" 0
    (List.length r2.Resilient.docs)

let test_backoff_deterministic () =
  let p = Supervisor.default_policy in
  List.iter
    (fun shard ->
      List.iter
        (fun attempt ->
          let a = Supervisor.backoff_ms p ~shard ~attempt in
          let b = Supervisor.backoff_ms p ~shard ~attempt in
          Alcotest.(check (float 0.0)) "same (shard, attempt), same delay" a b;
          Alcotest.(check bool) "within the cap" true
            (a >= 0.0 && a <= p.Supervisor.max_backoff_ms))
        [ 1; 2; 3; 7 ])
    [ 0; 1; 5 ];
  (* jitter actually spreads distinct shards retrying the same attempt *)
  let delays =
    List.map (fun shard -> Supervisor.backoff_ms p ~shard ~attempt:3) [ 0; 1; 2; 3 ]
  in
  Alcotest.(check bool) "not all identical" true
    (List.exists (fun d -> d <> List.hd delays) delays)

(* The determinism property of the ISSUE: for any seeded worker-fault plan
   and any jobs/retry-policy combination, the supervised run equals the
   plain sequential run restricted to surviving shards — plus exactly one
   Shard dead letter per poisoned shard. The oracle recomputes each
   surviving shard with the plain sequential ingester (no supervisor, no
   pool, no injection), so agreement pins the whole retry/merge machinery. *)
let prop_supervised_determinism =
  QCheck2.Test.make ~name:"supervised run = sequential minus poisoned shards"
    ~count:(count 20)
    QCheck2.Gen.(
      tup5 (int_range 0 1000) (float_range 0.0 1.0) bool (int_range 1 6)
        (int_range 0 3))
    (fun (seed, rate, permanent, jobs, retries) ->
      let inject = Chaos.worker_faults ~seed ~rate ~permanent () in
      let policy = test_policy ~retries () in
      let r, _ =
        sup_ingest ~policy ~inject ~jobs messy_text
      in
      (* the plan is pure, so which shards must be poisoned is computable
         without running anything *)
      let max_attempts = 1 + retries in
      let expect_poisoned shard =
        let rec all_fail attempt =
          attempt > max_attempts
          || (inject ~shard ~attempt <> None && all_fail (attempt + 1))
        in
        all_fail 1
      in
      let ss = Parallel.shards ~jobs messy_text in
      let surviving, poisoned_shards =
        List.partition
          (fun (i, _) -> not (expect_poisoned i))
          (List.mapi (fun i sh -> (i, sh)) ss)
      in
      let expected =
        List.map
          (fun (_, sh) ->
            let sub = String.sub messy_text sh.Parallel.s_off sh.Parallel.s_len in
            Resilient.ingest ~first_line:sh.Parallel.s_line
              ~base_offset:sh.Parallel.s_off sub)
          surviving
      in
      (* documents: exactly the surviving shards' documents, in order *)
      let got_docs = List.map Json.Printer.to_string r.Resilient.docs in
      let want_docs =
        List.concat_map
          (fun ing -> List.map Json.Printer.to_string ing.Resilient.docs)
          expected
      in
      (* dead letters: the surviving shards' parse letters at unchanged
         whole-input coordinates + one Shard letter per poisoned shard *)
      let got_parse, got_shard =
        List.partition
          (fun (d : Resilient.dead_letter) ->
            match d.Resilient.kind with Resilient.Parse _ -> true | _ -> false)
          (forget_attempts r).Resilient.dead
      in
      let want_parse =
        List.concat_map (fun ing -> List.map dead_to_string ing.Resilient.dead)
          expected
      in
      got_docs = want_docs
      && List.sort compare (List.map dead_to_string got_parse)
         = List.sort compare want_parse
      && List.length got_shard = List.length poisoned_shards
      && List.for_all
           (fun (d : Resilient.dead_letter) ->
             List.exists
               (fun (_, sh) ->
                 sh.Parallel.s_off = d.Resilient.byte_offset
                 && sh.Parallel.s_line = d.Resilient.line)
               poisoned_shards)
           got_shard
      && r.Resilient.report.Resilient.ok = List.length got_docs
      && r.Resilient.report.Resilient.poisoned = List.length poisoned_shards)

(* --- checkpoint/resume -------------------------------------------------- *)

let with_temp_journal f =
  let path = Filename.temp_file "jsontool-ckpt" ".ndjson" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let infer_fingerprint (inf : Pipeline.inferred option) (r : Resilient.ingest)
    (s : Pipeline.supervision) =
  String.concat "\n"
    [ (match inf with
      | None -> "<none>"
      | Some i ->
          Json.Printer.to_string (Jtype.Types.to_json i.Pipeline.jtype)
          ^ "\n"
          ^ Json.Printer.to_string (Jtype.Counting.to_json i.Pipeline.counting)
          ^ "\n"
          ^ Json.Printer.to_string i.Pipeline.json_schema
          ^ "\n" ^ i.Pipeline.typescript ^ "\n" ^ i.Pipeline.swift);
      ingest_fingerprint r;
      string_of_int r.Resilient.report.Resilient.poisoned;
      string_of_int s.Pipeline.sup_stats.Supervisor.poisoned ]

let sup_infer ?policy ?inject ?checkpoint ?resume ?engine ~jobs text =
  match
    Pipeline.infer_ndjson_supervised ?policy ?inject ?checkpoint ?resume
      ?engine ~jobs text
  with
  | Ok v -> v
  | Error e -> Alcotest.fail e

let test_checkpoint_kill_and_resume () =
  (* run 1 is "killed": permanent faults poison some shards, the journal
     records only the completed ones. Run 2 resumes with healthy workers
     and must equal an uninterrupted run byte for byte. *)
  let jobs = 4 in
  let inf0, r0, s0 = sup_infer ~policy:(test_policy ~retries:0 ()) ~jobs messy_text in
  let reference = infer_fingerprint inf0 r0 s0 in
  with_temp_journal (fun path ->
      let inject = Chaos.worker_faults ~seed:5 ~rate:0.5 ~permanent:true () in
      let _, rk, sk =
        sup_infer ~policy:(test_policy ~retries:0 ()) ~inject ~checkpoint:path
          ~jobs messy_text
      in
      Alcotest.(check bool) "interrupted run lost shards" true
        (sk.Pipeline.sup_stats.Supervisor.poisoned > 0);
      Alcotest.(check bool) "but completed some" true
        (sk.Pipeline.sup_stats.Supervisor.poisoned
        < sk.Pipeline.sup_stats.Supervisor.shards);
      Alcotest.(check int) "interrupted run resumed nothing" 0 sk.Pipeline.sup_resumed;
      ignore rk;
      let inf2, r2, s2 =
        sup_infer ~policy:(test_policy ~retries:0 ()) ~checkpoint:path
          ~resume:true ~jobs messy_text
      in
      Alcotest.(check int) "completed shards restored from journal"
        (sk.Pipeline.sup_stats.Supervisor.shards
        - sk.Pipeline.sup_stats.Supervisor.poisoned)
        s2.Pipeline.sup_resumed;
      Alcotest.(check string) "resumed output byte-identical" reference
        (infer_fingerprint inf2 r2 s2))

let test_checkpoint_torn_tail () =
  (* a crash mid-write leaves a torn final line; resume must scrub it and
     recompute that shard, still byte-identical *)
  let jobs = 4 in
  let reference = ingest_fingerprint (Resilient.ingest messy_text) in
  with_temp_journal (fun path ->
      let _ = sup_ingest ~policy:(test_policy ~retries:0 ()) ~checkpoint:path ~jobs messy_text in
      let len = (Unix.stat path).Unix.st_size in
      Alcotest.(check bool) "journal has content" true (len > 40);
      (* tear the last 10 bytes off *)
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o600 in
      Unix.ftruncate fd (len - 10);
      Unix.close fd;
      let r, s =
        sup_ingest ~policy:(test_policy ~retries:0 ()) ~checkpoint:path
          ~resume:true ~jobs messy_text
      in
      let total = List.length (Parallel.shards ~jobs messy_text) in
      Alcotest.(check int) "exactly the torn entry recomputed" (total - 1)
        s.Pipeline.sup_resumed;
      Alcotest.(check int) "supervisor ran only the torn shard" 1
        s.Pipeline.sup_stats.Supervisor.shards;
      Alcotest.(check string) "byte-identical after torn-tail resume" reference
        (ingest_fingerprint r))

let test_checkpoint_rejects_other_input () =
  with_temp_journal (fun path ->
      let _ = sup_ingest ~policy:(test_policy ~retries:0 ()) ~checkpoint:path ~jobs:2 messy_text in
      match
        Pipeline.ingest_ndjson_supervised ~policy:(test_policy ~retries:0 ())
          ~checkpoint:path ~resume:true ~jobs:2 clean_text
      with
      | Ok _ -> Alcotest.fail "resume against different input must be refused"
      | Error e ->
          let contains hay needle =
            let n = String.length needle and h = String.length hay in
            let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
            at 0
          in
          Alcotest.(check bool) "error names the fingerprint" true
            (contains e "fingerprint"))

let test_checkpoint_rejects_other_engine () =
  (* a tree journal's shard payloads are meaningless to the streaming
     resume path (and vice versa): the header records the engine and a
     cross-engine resume must be refused, not silently merged *)
  with_temp_journal (fun path ->
      let _ =
        sup_infer ~policy:(test_policy ~retries:0 ()) ~checkpoint:path
          ~engine:`Tree ~jobs:2 messy_text
      in
      match
        Pipeline.infer_ndjson_supervised ~policy:(test_policy ~retries:0 ())
          ~checkpoint:path ~resume:true ~engine:`Streaming ~jobs:2 messy_text
      with
      | Ok _ -> Alcotest.fail "cross-engine resume must be refused"
      | Error e ->
          let contains hay needle =
            let n = String.length needle and h = String.length hay in
            let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
            at 0
          in
          Alcotest.(check bool) "error names the engine mismatch" true
            (contains e "engine mismatch"));
  (* same journal, same engine: resumes fine in both directions *)
  List.iter
    (fun engine ->
      with_temp_journal (fun path ->
          let inf0, _, _ =
            sup_infer ~policy:(test_policy ~retries:0 ()) ~checkpoint:path
              ~engine ~jobs:2 messy_text
          in
          let inf1, _, s1 =
            sup_infer ~policy:(test_policy ~retries:0 ()) ~checkpoint:path
              ~resume:true ~engine ~jobs:2 messy_text
          in
          Alcotest.(check bool) "all shards restored" true
            (s1.Pipeline.sup_resumed > 0
            && s1.Pipeline.sup_stats.Supervisor.shards = 0);
          match (inf0, inf1) with
          | Some a, Some b ->
              Alcotest.(check bool) "same type after resume" true
                (Jtype.Types.equal a.Pipeline.jtype b.Pipeline.jtype)
          | _ -> Alcotest.fail "inference must survive"))
    [ `Tree; `Streaming ]

let test_check_ndjson () =
  (* the drift check rides the same supervised machinery: inferred type plus
     a containment verdict, under both engines *)
  let parse s = Result.get_ok (Json.Parser.parse s) in
  let text = "{\"a\":1}\n{\"a\":2,\"b\":true}\n" in
  List.iter
    (fun engine ->
      let ok_root = parse {|{"type":"object","properties":{"a":{"type":"integer"}}}|} in
      (match Pipeline.check_ndjson ~engine ~jobs:2 ~root:ok_root text with
      | Ok ({ chk_verdict = Some Jtype.Contain.Contained; _ }, _, _) -> ()
      | Ok ({ chk_verdict = v; _ }, _, _) ->
          Alcotest.failf "expected Contained, got %s"
            (match v with
            | None -> "no verdict"
            | Some v -> Jtype.Contain.verdict_to_string v)
      | Error e -> Alcotest.fail e);
      let bad_root = parse {|{"type":"object","properties":{"a":{"type":"string"}}}|} in
      match Pipeline.check_ndjson ~engine ~jobs:2 ~root:bad_root text with
      | Ok ({ chk_verdict = Some (Jtype.Contain.Not_contained w); _ }, _, _) ->
          Alcotest.(check bool) "witness rejected by the validator" false
            (Jsonschema.Validate.is_valid ~root:bad_root w)
      | Ok _ | Error _ -> Alcotest.fail "expected a witnessed refutation")
    [ `Tree; `Streaming ]

let test_checkpoint_rejects_other_job () =
  (* an ingest journal cannot resume an infer run *)
  with_temp_journal (fun path ->
      let _ = sup_ingest ~policy:(test_policy ~retries:0 ()) ~checkpoint:path ~jobs:2 messy_text in
      match
        Pipeline.infer_ndjson_supervised ~policy:(test_policy ~retries:0 ())
          ~checkpoint:path ~resume:true ~jobs:2 messy_text
      with
      | Ok _ -> Alcotest.fail "resume under a different job tag must be refused"
      | Error _ -> ())

let () =
  Alcotest.run "parallel"
    [ ("pool",
       [ Alcotest.test_case "run order/results" `Quick test_run_order_and_results;
         Alcotest.test_case "exceptions" `Quick test_run_propagates_exceptions;
         Alcotest.test_case "shards cover input" `Quick test_shards_cover_input ]);
      ("ingest",
       [ Alcotest.test_case "chaos corpus identical" `Quick test_ingest_identical;
         Alcotest.test_case "budget kills identical" `Quick test_ingest_budget_identical;
         Alcotest.test_case "max_docs fallback" `Quick test_ingest_max_docs_sequential_fallback;
         Alcotest.test_case "strict first error" `Quick test_strict_first_error ]);
      ("inference",
       [ Alcotest.test_case "types identical" `Quick test_infer_identical;
         Alcotest.test_case "pipeline resilient" `Quick test_pipeline_resilient_jobs ]);
      ("validation",
       [ Alcotest.test_case "failures identical" `Quick test_validate_identical ]);
      ("supervision",
       [ Alcotest.test_case "no faults identical" `Quick test_supervisor_no_faults_identical;
         Alcotest.test_case "transient recovered" `Quick test_supervisor_transient_recovered;
         Alcotest.test_case "poison isolation" `Quick test_supervisor_poison_isolation;
         Alcotest.test_case "graceful degradation" `Quick test_supervisor_degradation;
         Alcotest.test_case "backoff deterministic" `Quick test_backoff_deterministic;
         QCheck_alcotest.to_alcotest
           ~rand:(Random.State.make [| fuzz_seed |])
           prop_supervised_determinism ]);
      ("checkpoint",
       [ Alcotest.test_case "kill and resume" `Quick test_checkpoint_kill_and_resume;
         Alcotest.test_case "torn tail" `Quick test_checkpoint_torn_tail;
         Alcotest.test_case "rejects other input" `Quick test_checkpoint_rejects_other_input;
         Alcotest.test_case "rejects other job" `Quick test_checkpoint_rejects_other_job;
         Alcotest.test_case "rejects other engine" `Quick
           test_checkpoint_rejects_other_engine;
         Alcotest.test_case "check_ndjson verdicts" `Quick test_check_ndjson ]);
    ]
