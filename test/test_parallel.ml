(* Tests for Core.Parallel: the sharded execution engine must be
   byte-identical to the sequential path — same documents, same dead
   letters (order included), same reports, same inferred types — for any
   job count, on clean and chaos-corrupted input alike. *)

open Core

let dead_to_string d = Json.Printer.to_string (Resilient.dead_letter_to_json d)
let report_to_string r = Json.Printer.to_string (Resilient.report_to_json r)

let ingest_fingerprint (r : Resilient.ingest) =
  String.concat "\n"
    (report_to_string r.Resilient.report
     :: List.map dead_to_string r.Resilient.dead
    @ List.map Json.Printer.to_string r.Resilient.docs)

(* a messy corpus: seeded tweets run through the chaos harness *)
let messy_text =
  let st = Datagen.rng ~seed:77 in
  let text = Datagen.to_ndjson (Datagen.tweets st 400) in
  (Chaos.corrupt ~seed:770 ~rate:0.15 text).Chaos.text

let clean_text =
  let st = Datagen.rng ~seed:78 in
  Datagen.to_ndjson (Datagen.events st ~fields:12 500)

(* --- pool primitives --------------------------------------------------- *)

let test_run_order_and_results () =
  let thunks = List.init 37 (fun i () -> i * i) in
  Alcotest.(check (list int)) "order preserved (jobs=4)"
    (List.init 37 (fun i -> i * i))
    (Parallel.run ~jobs:4 thunks);
  Alcotest.(check (list int)) "jobs > tasks" [ 1; 2 ]
    (Parallel.run ~jobs:16 [ (fun () -> 1); (fun () -> 2) ]);
  Alcotest.(check (list int)) "empty" [] (Parallel.run ~jobs:4 [])

let test_run_propagates_exceptions () =
  match Parallel.run ~jobs:3 (List.init 8 (fun i () -> if i = 5 then failwith "boom" else i)) with
  | _ -> Alcotest.fail "exception must escape"
  | exception Failure m -> Alcotest.(check string) "message" "boom" m

let test_shards_cover_input () =
  List.iter
    (fun jobs ->
      let ss = Parallel.shards ~jobs messy_text in
      Alcotest.(check bool) "at most jobs shards" true (List.length ss <= jobs);
      (* exact cover, in order *)
      let rec walk off line = function
        | [] -> Alcotest.(check int) "covers all bytes" (String.length messy_text) off
        | s :: rest ->
            Alcotest.(check int) "contiguous" off s.Parallel.s_off;
            Alcotest.(check int) "line number" line s.Parallel.s_line;
            let nl = ref 0 in
            String.iter (fun c -> if c = '\n' then incr nl)
              (String.sub messy_text s.Parallel.s_off s.Parallel.s_len);
            (* every cut sits just after a newline *)
            (if rest <> [] then
               Alcotest.(check char) "cut after newline" '\n'
                 messy_text.[s.Parallel.s_off + s.Parallel.s_len - 1]);
            walk (s.Parallel.s_off + s.Parallel.s_len) (line + !nl) rest
      in
      walk 0 1 ss)
    [ 1; 2; 3; 4; 8; 100 ]

(* --- sharded ingestion ------------------------------------------------- *)

let test_ingest_identical () =
  let reference = Resilient.ingest messy_text in
  Alcotest.(check bool) "corpus actually has dead letters" true
    (reference.Resilient.dead <> []);
  List.iter
    (fun jobs ->
      let r = Parallel.ingest ~jobs messy_text in
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d byte-identical" jobs)
        (ingest_fingerprint reference) (ingest_fingerprint r))
    [ 1; 2; 4; 8 ]

let test_ingest_budget_identical () =
  let budget =
    { Resilient.default_budget with Resilient.max_doc_bytes = Some 512 }
  in
  let reference = Resilient.ingest ~budget messy_text in
  let r = Parallel.ingest ~budget ~jobs:4 messy_text in
  Alcotest.(check string) "budget kills identical"
    (ingest_fingerprint reference) (ingest_fingerprint r)

let test_ingest_max_docs_sequential_fallback () =
  (* the global document cap is order-dependent: parallel must defer *)
  let budget = { Resilient.default_budget with Resilient.max_docs = Some 5 } in
  let reference = Resilient.ingest ~budget clean_text in
  let r = Parallel.ingest ~budget ~jobs:4 clean_text in
  Alcotest.(check string) "truncation identical"
    (ingest_fingerprint reference) (ingest_fingerprint r);
  Alcotest.(check bool) "truncated" true r.Resilient.report.Resilient.truncated

let test_strict_first_error () =
  let reference = Resilient.parse_ndjson_strict messy_text in
  List.iter
    (fun jobs ->
      match (reference, Parallel.parse_ndjson_strict ~jobs messy_text) with
      | Error a, Error b ->
          Alcotest.(check string) (Printf.sprintf "jobs=%d same error" jobs) a b
      | Ok _, _ | _, Ok _ -> Alcotest.fail "corrupted corpus must error")
    [ 1; 4 ]

(* --- sharded inference ------------------------------------------------- *)

let test_infer_identical () =
  let docs = (Resilient.ingest messy_text).Resilient.docs in
  let reference = Inference.Parametric.infer ~equiv:Jtype.Merge.Kind docs in
  let ref_counting = Inference.Parametric.infer_counting ~equiv:Jtype.Merge.Kind docs in
  List.iter
    (fun jobs ->
      List.iter
        (fun equiv ->
          let seq = Inference.Parametric.infer ~equiv docs in
          Alcotest.(check string)
            (Printf.sprintf "type jobs=%d" jobs)
            (Jtype.Types.to_string seq)
            (Jtype.Types.to_string (Parallel.infer_type ~equiv ~jobs docs)))
        [ Jtype.Merge.Kind; Jtype.Merge.Label ];
      Alcotest.(check string)
        (Printf.sprintf "counting jobs=%d" jobs)
        (Jtype.Counting.to_string ref_counting)
        (Jtype.Counting.to_string
           (Parallel.infer_counting ~equiv:Jtype.Merge.Kind ~jobs docs)))
    [ 2; 4; 8 ];
  ignore reference

let test_pipeline_resilient_jobs () =
  let seq_inf, seq_r = Pipeline.infer_ndjson_resilient messy_text in
  let par_inf, par_r = Pipeline.infer_ndjson_resilient ~jobs:4 messy_text in
  Alcotest.(check string) "ingest identical"
    (ingest_fingerprint seq_r) (ingest_fingerprint par_r);
  match (seq_inf, par_inf) with
  | Some a, Some b ->
      Alcotest.(check string) "jtype" (Jtype.Types.to_string a.Pipeline.jtype)
        (Jtype.Types.to_string b.Pipeline.jtype);
      Alcotest.(check string) "counting"
        (Jtype.Counting.to_string a.Pipeline.counting)
        (Jtype.Counting.to_string b.Pipeline.counting);
      Alcotest.(check string) "json schema"
        (Json.Printer.to_string a.Pipeline.json_schema)
        (Json.Printer.to_string b.Pipeline.json_schema);
      Alcotest.(check string) "typescript" a.Pipeline.typescript b.Pipeline.typescript;
      Alcotest.(check string) "swift" a.Pipeline.swift b.Pipeline.swift
  | _ -> Alcotest.fail "both paths must infer"

(* --- sharded validation ------------------------------------------------ *)

let test_validate_identical () =
  let docs = (Resilient.ingest clean_text).Resilient.docs in
  let root =
    Json.Parser.parse_exn
      {|{"type": "object", "required": ["f0"],
         "properties": {"f0": {"type": "integer", "multipleOf": 3}}}|}
  in
  let render failures =
    String.concat "\n"
      (List.map
         (fun (i, es) ->
           String.concat "\n"
             (List.map
                (fun e -> Printf.sprintf "%d: %s" i (Jsonschema.Validate.string_of_error e))
                es))
         failures)
  in
  let reference = Parallel.validate ~root docs in
  Alcotest.(check bool) "some failures exist" true (reference <> []);
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d failures identical" jobs)
        (render reference)
        (render (Parallel.validate ~jobs ~root docs)))
    [ 2; 4; 8 ];
  (* guarded text entry point *)
  let seq_r, seq_f = Pipeline.validate_ndjson ~root clean_text in
  let par_r, par_f = Pipeline.validate_ndjson ~jobs:4 ~root clean_text in
  Alcotest.(check string) "ndjson ingest identical"
    (ingest_fingerprint seq_r) (ingest_fingerprint par_r);
  Alcotest.(check string) "ndjson failures identical" (render seq_f) (render par_f)

let () =
  Alcotest.run "parallel"
    [ ("pool",
       [ Alcotest.test_case "run order/results" `Quick test_run_order_and_results;
         Alcotest.test_case "exceptions" `Quick test_run_propagates_exceptions;
         Alcotest.test_case "shards cover input" `Quick test_shards_cover_input ]);
      ("ingest",
       [ Alcotest.test_case "chaos corpus identical" `Quick test_ingest_identical;
         Alcotest.test_case "budget kills identical" `Quick test_ingest_budget_identical;
         Alcotest.test_case "max_docs fallback" `Quick test_ingest_max_docs_sequential_fallback;
         Alcotest.test_case "strict first error" `Quick test_strict_first_error ]);
      ("inference",
       [ Alcotest.test_case "types identical" `Quick test_infer_identical;
         Alcotest.test_case "pipeline resilient" `Quick test_pipeline_resilient_jobs ]);
      ("validation",
       [ Alcotest.test_case "failures identical" `Quick test_validate_identical ]);
    ]
