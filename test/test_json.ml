(* Tests for the JSON substrate: values, numbers, lexer, parser, printer,
   pointers, paths, streaming. *)

let value : Json.Value.t Alcotest.testable =
  Alcotest.testable Json.Printer.pp Json.Value.equal_strict

let value_loose : Json.Value.t Alcotest.testable =
  Alcotest.testable Json.Printer.pp Json.Value.equal

let parse = Json.Parser.parse_exn
let print = Json.Printer.to_string

let check_roundtrip name src =
  Alcotest.(check string) name src (print (parse src))

(* --- Value ----------------------------------------------------------- *)

let test_accessors () =
  let v = parse {|{"a": 1, "b": [true, null], "c": "x", "d": 2.5}|} in
  Alcotest.(check (option int)) "int" (Some 1) Json.Value.(to_int (member_exn "a" v));
  Alcotest.(check (option string)) "string" (Some "x") Json.Value.(to_string (member_exn "c" v));
  Alcotest.(check (option (float 0.))) "float" (Some 2.5) Json.Value.(to_float (member_exn "d" v));
  Alcotest.(check (option (float 0.))) "int as float" (Some 1.0) Json.Value.(to_float (member_exn "a" v));
  Alcotest.(check bool) "has_member" true (Json.Value.has_member "b" v);
  Alcotest.(check bool) "missing" false (Json.Value.has_member "z" v);
  Alcotest.(check (option value)) "index" (Some Json.Value.Null)
    Json.Value.(index 1 (member_exn "b" v));
  Alcotest.(check (option value)) "negative index" (Some (Json.Value.Bool true))
    Json.Value.(index (-2) (member_exn "b" v));
  Alcotest.check_raises "type error" (Json.Value.Type_error "expected integer, got string")
    (fun () -> ignore (Json.Value.to_int_exn (Json.Value.String "hi")))

let test_equal_unordered () =
  let a = parse {|{"x": 1, "y": {"p": [1,2], "q": null}}|} in
  let b = parse {|{"y": {"q": null, "p": [1,2]}, "x": 1}|} in
  Alcotest.(check bool) "unordered equal" true (Json.Value.equal a b);
  Alcotest.(check bool) "strict differs" false (Json.Value.equal_strict a b);
  Alcotest.(check bool) "int/float equal" true
    (Json.Value.equal (Json.Value.Int 3) (Json.Value.Float 3.0));
  Alcotest.(check bool) "int/float strict" false
    (Json.Value.equal_strict (Json.Value.Int 3) (Json.Value.Float 3.0));
  Alcotest.(check bool) "array order matters" false
    (Json.Value.equal (parse "[1,2]") (parse "[2,1]"))

let test_structure_ops () =
  let v = parse {|{"a": {"b": [1, {"c": 2}]}, "d": 3}|} in
  Alcotest.(check int) "size" 7 (Json.Value.size v);
  Alcotest.(check int) "depth" 5 (Json.Value.depth v);
  Alcotest.(check (list (list string))) "paths"
    [ [ "a"; "b"; "[]" ]; [ "a"; "b"; "[]"; "c" ]; [ "d" ] ]
    (Json.Value.paths v);
  let doubled =
    Json.Value.map_values
      (function Json.Value.Int n -> Json.Value.Int (2 * n) | x -> x)
      v
  in
  Alcotest.check value "map_values" (parse {|{"a": {"b": [2, {"c": 4}]}, "d": 6}|}) doubled;
  let count_strings =
    Json.Value.fold
      (fun n x -> match x with Json.Value.String _ -> n + 1 | _ -> n)
      0
      (parse {|["a", {"k": "b"}, 1]|})
  in
  (* "k" is a key, not a value: only "a" and "b" count *)
  Alcotest.(check int) "fold" 2 count_strings

(* --- Number ---------------------------------------------------------- *)

let test_number_grammar () =
  let ok s = Alcotest.(check bool) s true (Json.Number.is_valid_literal s) in
  let bad s = Alcotest.(check bool) s false (Json.Number.is_valid_literal s) in
  List.iter ok [ "0"; "-0"; "1"; "-1"; "10.5"; "0.5"; "1e3"; "1E+3"; "1.5e-3"; "123456789" ];
  List.iter bad [ ""; "+1"; ".5"; "5."; "01"; "0x1"; "1e"; "1e+"; "--1"; "NaN"; "Infinity"; "1 " ]

let test_number_int_vs_float () =
  (match Json.Number.parse "42" with
   | Ok (Json.Number.Int_lit 42) -> ()
   | _ -> Alcotest.fail "42 should be Int_lit");
  (match Json.Number.parse "42.0" with
   | Ok (Json.Number.Float_lit f) -> Alcotest.(check (float 0.)) "42.0" 42.0 f
   | _ -> Alcotest.fail "42.0 should be Float_lit");
  (match Json.Number.parse "1e2" with
   | Ok (Json.Number.Float_lit f) -> Alcotest.(check (float 0.)) "1e2" 100.0 f
   | _ -> Alcotest.fail "1e2 should be Float_lit");
  (* huge integer literals degrade to float *)
  match Json.Number.parse "123456789012345678901234567890" with
  | Ok (Json.Number.Float_lit _) -> ()
  | _ -> Alcotest.fail "overflowing integer should degrade to float"

let test_number_parse_never_raises () =
  (* [parse] must return [Error] on every malformed literal — in particular
     the float conversion can never raise, whatever the grammar check let
     through *)
  List.iter
    (fun s ->
      match Json.Number.parse s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error _ -> ())
    [ ""; "-"; "+"; "+1"; "1e"; "1e+"; "1E-"; "0x10"; "1_000"; "01"; ".5";
      "5."; "--1"; "1.2.3"; "NaN"; "Infinity"; "-Infinity"; "nan"; "inf";
      "1 "; " 1"; "1,5"; "e5"; "0b101"; "\xff"; "1\x00";
      (* well-formed but overflowing the double range: accepting these would
         produce an infinity no printer (or checkpoint journal) can
         re-encode, so they are errors, not values *)
      "1e999999"; "-1e999999"; "9e400" ];
  (* extreme literals that stay finite stay total: underflow degrades to
     [0.] rather than erroring or raising *)
  List.iter
    (fun s ->
      match Json.Number.parse s with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "%S should parse: %s" s m)
    [ "1e-999999"; "0.0000000001e-400"; "1e308"; "-1.7e308" ]

let test_float_printing () =
  let check f expected =
    Alcotest.(check string) (string_of_float f) expected (Json.Number.print_float f)
  in
  check 1.5 "1.5";
  check 0.1 "0.1";
  check 100.0 "100.0";
  check (-2.5e-3) "-0.0025";
  Alcotest.(check bool) "roundtrip pi" true
    (float_of_string (Json.Number.print_float Float.pi) = Float.pi);
  Alcotest.check_raises "nan" (Invalid_argument "Json.Number.print_float: not representable in JSON")
    (fun () -> ignore (Json.Number.print_float Float.nan))

(* --- Parser ---------------------------------------------------------- *)

let test_parse_scalars () =
  Alcotest.check value "null" Json.Value.Null (parse "null");
  Alcotest.check value "true" (Json.Value.Bool true) (parse "true");
  Alcotest.check value "false" (Json.Value.Bool false) (parse " false ");
  Alcotest.check value "int" (Json.Value.Int (-17)) (parse "-17");
  Alcotest.check value "float" (Json.Value.Float 2.5) (parse "2.5");
  Alcotest.check value "string" (Json.Value.String "hi") (parse {|"hi"|})

let test_parse_escapes () =
  Alcotest.check value "escapes"
    (Json.Value.String "a\"b\\c/d\be\012f\ng\rh\ti")
    (parse {|"a\"b\\c\/d\be\ff\ng\rh\ti"|});
  Alcotest.check value "unicode bmp" (Json.Value.String "\xe2\x82\xac") (parse {|"€"|});
  Alcotest.check value "surrogate pair" (Json.Value.String "\xf0\x9d\x84\x9e")
    (parse {|"𝄞"|});
  Alcotest.check value "nul escape" (Json.Value.String "\x00") (parse {|"\u0000"|})

let expect_error src =
  match Json.Parser.parse src with
  | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" src)
  | Error _ -> ()

let test_parse_errors () =
  List.iter expect_error
    [ ""; "{"; "}"; "[1,]"; "{\"a\":}"; "{\"a\" 1}"; "{a: 1}"; "[1 2]";
      {|"unterminated|}; "tru"; "nul"; "01"; "1.2.3"; {|{"a":1,}|};
      {|"bad \x escape"|}; {|"unpaired \uD834 surrogate"|}; "[1] extra";
      "\"ctrl \x01 char\"" ]

let test_parse_error_position () =
  match Json.Parser.parse "{\n  \"a\": 12,\n  \"b\": tru\n}" with
  | Ok _ -> Alcotest.fail "should fail"
  | Error e ->
      Alcotest.(check int) "line" 3 e.Json.Parser.position.Json.Lexer.line;
      Alcotest.(check int) "column" 8 e.Json.Parser.position.Json.Lexer.column

let test_dup_keys () =
  let src = {|{"a": 1, "b": 2, "a": 3}|} in
  let with_policy p =
    Json.Parser.parse ~options:{ Json.Parser.default_options with Json.Parser.dup_keys = p } src
  in
  (match with_policy Json.Parser.Keep_last with
   | Ok v -> Alcotest.check value "keep_last" (parse {|{"a": 3, "b": 2}|}) v
   | Error _ -> Alcotest.fail "keep_last");
  (match with_policy Json.Parser.Keep_first with
   | Ok v -> Alcotest.check value "keep_first" (parse {|{"a": 1, "b": 2}|}) v
   | Error _ -> Alcotest.fail "keep_first");
  (match with_policy Json.Parser.Keep_all with
   | Ok (Json.Value.Object fields) ->
       Alcotest.(check int) "keep_all" 3 (List.length fields)
   | _ -> Alcotest.fail "keep_all");
  match with_policy Json.Parser.Reject with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "reject should error"

let test_max_depth () =
  let deep = String.concat "" (List.init 40 (fun _ -> "[")) in
  let deep = deep ^ "1" ^ String.concat "" (List.init 40 (fun _ -> "]")) in
  let options = { Json.Parser.default_options with Json.Parser.max_depth = 10 } in
  (match Json.Parser.parse ~options deep with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "should exceed max depth");
  match Json.Parser.parse deep with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Json.Parser.string_of_error e)

let expect_budget ~violation options src =
  match Json.Parser.parse ~options src with
  | Ok _ -> Alcotest.failf "%S should be budget-killed" src
  | Error e -> (
      match e.Json.Parser.kind with
      | Json.Parser.Budget_exceeded v ->
          Alcotest.(check string) src violation (Json.Parser.violation_name v)
      | Json.Parser.Syntax ->
          Alcotest.failf "%S: expected a budget error, got syntax: %s" src
            e.Json.Parser.message)

let test_budgets () =
  let opts = Json.Parser.default_options in
  (* bytes: the whole document counts, not just the parsed prefix *)
  expect_budget ~violation:"max-bytes"
    { opts with Json.Parser.max_doc_bytes = Some 10 }
    {|{"key": [1, 2, 3, 4]}|};
  (* nodes: every value (scalars included) spends one node *)
  expect_budget ~violation:"max-nodes"
    { opts with Json.Parser.max_nodes = Some 4 }
    "[1, 2, 3, 4, 5]";
  (* string literal budget, enforced mid-lex so a huge string never
     materializes *)
  expect_budget ~violation:"max-string"
    { opts with Json.Parser.max_string_bytes = Some 8 }
    (Printf.sprintf {|"%s"|} (String.make 64 'x'));
  (* depth overflow is typed, not a plain syntax error *)
  expect_budget ~violation:"max-depth"
    { opts with Json.Parser.max_depth = 3 }
    "[[[[[1]]]]]";
  (* budget errors are recognizable without string matching *)
  (match Json.Parser.parse ~options:{ opts with Json.Parser.max_nodes = Some 1 } "[1]" with
   | Error e -> Alcotest.(check bool) "is_budget_error" true (Json.Parser.is_budget_error e)
   | Ok _ -> Alcotest.fail "should be killed");
  (match Json.Parser.parse "tru" with
   | Error e -> Alcotest.(check bool) "syntax is not budget" false (Json.Parser.is_budget_error e)
   | Ok _ -> Alcotest.fail "should be a syntax error");
  (* documents under budget are unaffected *)
  match
    Json.Parser.parse
      ~options:
        { opts with
          Json.Parser.max_doc_bytes = Some 1024;
          max_nodes = Some 100;
          max_string_bytes = Some 100 }
      {|{"a": [1, "two", null]}|}
  with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Json.Parser.string_of_error e)

let test_budget_unlimited_by_default () =
  (* the defaults impose no byte/node/string budget: a large flat document
     parses fine *)
  let big =
    "[" ^ String.concat "," (List.init 20000 string_of_int) ^ "]"
  in
  match Json.Parser.parse big with
  | Ok (Json.Value.Array vs) -> Alcotest.(check int) "all elements" 20000 (List.length vs)
  | _ -> Alcotest.fail "default options must not impose budgets"

let test_parse_many () =
  match Json.Parser.parse_many "{\"a\":1}\n{\"a\":2}\n[3]" with
  | Ok vs -> Alcotest.(check int) "three docs" 3 (List.length vs)
  | Error e -> Alcotest.fail (Json.Parser.string_of_error e)

let test_parse_substring () =
  let src = "   {\"a\": [1,2]} trailing" in
  match Json.Parser.parse_substring src ~pos:0 with
  | Ok (v, stop) ->
      Alcotest.check value "value" (parse {|{"a":[1,2]}|}) v;
      Alcotest.(check int) "stop offset" 15 stop
  | Error e -> Alcotest.fail (Json.Parser.string_of_error e)

(* --- Printer --------------------------------------------------------- *)

let test_print_roundtrips () =
  List.iter (check_roundtrip "roundtrip")
    [ "null"; "true"; "[1,2,3]"; {|{"a":1,"b":[null,false],"c":{"d":"e"}}|};
      {|"quote\"backslash\\newline\n"|}; "[-1,0.5,100.0]"; "[]"; "{}" ]

let test_pretty_print () =
  let v = parse {|{"a": [1, 2], "b": {}}|} in
  Alcotest.(check string) "pretty"
    "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {}\n}"
    (Json.Printer.to_string_pretty v)

let test_escape_string () =
  Alcotest.(check string) "escape" "\"a\\\"b\\u0001\"" (Json.Printer.escape_string "a\"b\x01")

let test_print_utf8_sanitized () =
  (* pinned policy: valid UTF-8 passes through byte-for-byte; every byte
     that is not part of a valid scalar sequence becomes one U+FFFD, so the
     printer's output is always valid JSON (RFC 8259 §8.1: UTF-8) *)
  let fffd = "\xEF\xBF\xBD" in
  let escaped s = Json.Printer.escape_string s in
  Alcotest.(check string) "2/3/4-byte sequences untouched"
    "\"\xC3\xA9 \xE2\x82\xAC \xF0\x9F\x90\xAB\""
    (escaped "\xC3\xA9 \xE2\x82\xAC \xF0\x9F\x90\xAB");
  Alcotest.(check string) "lone 0xFF replaced"
    ("\"a" ^ fffd ^ "b\"") (escaped "a\xFFb");
  Alcotest.(check string) "stray continuation byte replaced"
    ("\"" ^ fffd ^ "\"") (escaped "\x80");
  Alcotest.(check string) "overlong C0 80 replaced per byte"
    ("\"" ^ fffd ^ fffd ^ "\"") (escaped "\xC0\x80");
  Alcotest.(check string) "surrogate ED A0 80 replaced per byte"
    ("\"" ^ fffd ^ fffd ^ fffd ^ "\"") (escaped "\xED\xA0\x80");
  Alcotest.(check string) "truncated lead at end replaced per byte"
    ("\"ok" ^ fffd ^ fffd ^ "\"") (escaped "ok\xE2\x82");
  Alcotest.(check string) "beyond U+10FFFF replaced per byte"
    ("\"" ^ fffd ^ fffd ^ fffd ^ fffd ^ "\"") (escaped "\xF5\x80\x80\x80");
  (* sanitized output must itself re-parse: the checkpoint-journal property *)
  let junk = Json.Value.String "\xFE\xC3\xA9\x80tail" in
  let printed = Json.Printer.to_string junk in
  Alcotest.check value "sanitized output re-parses"
    (Json.Value.String ("\xEF\xBF\xBD\xC3\xA9\xEF\xBF\xBDtail"))
    (parse printed)

(* --- Pointer --------------------------------------------------------- *)

let test_pointer_parse () =
  let check_pp s = Alcotest.(check string) s s Json.Pointer.(to_string (parse_exn s)) in
  List.iter check_pp [ ""; "/a"; "/a/0/b"; "/a~0b/c~1d"; "/" ];
  match Json.Pointer.parse "no-slash" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "must reject pointer without leading /"

let test_pointer_get () =
  let doc = parse {|{"foo": ["bar", "baz"], "": 0, "a/b": 1, "m~n": 8, "k\"l": 6}|} in
  let get s = Json.Pointer.(get (parse_exn s) doc) in
  Alcotest.(check (option value)) "root" (Some doc) (get "");
  Alcotest.(check (option value)) "/foo/0" (Some (Json.Value.String "bar")) (get "/foo/0");
  Alcotest.(check (option value)) "/foo/1" (Some (Json.Value.String "baz")) (get "/foo/1");
  Alcotest.(check (option value)) "/foo/2" None (get "/foo/2");
  Alcotest.(check (option value)) "empty key" (Some (Json.Value.Int 0)) (get "/");
  Alcotest.(check (option value)) "escaped slash" (Some (Json.Value.Int 1)) (get "/a~1b");
  Alcotest.(check (option value)) "escaped tilde" (Some (Json.Value.Int 8)) (get "/m~0n");
  Alcotest.(check (option value)) "quote in key" (Some (Json.Value.Int 6)) (get {|/k"l|})

let test_pointer_numeric_member () =
  let doc = parse {|{"0": "zero"}|} in
  Alcotest.(check (option value)) "numeric token on object"
    (Some (Json.Value.String "zero"))
    Json.Pointer.(get (parse_exn "/0") doc)

let test_pointer_index_overflow () =
  (* a canonical index literal beyond max_int used to demote silently to a
     Key and dereference objects instead of arrays; it is now an error *)
  let huge = "/18446744073709551616" in
  (match Json.Pointer.parse huge with
   | Error msg ->
       Alcotest.(check bool) "error names the index" true
         (Re.execp (Re.compile (Re.str "18446744073709551616")) msg)
   | Ok _ -> Alcotest.fail "overflowing index must not parse");
  (match Json.Pointer.parse "/a/99999999999999999999999999/b" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "overflow must be detected mid-pointer");
  (* non-canonical digit strings are still member names, not indices *)
  (match Json.Pointer.parse "/018446744073709551616" with
   | Ok [ Json.Pointer.Key k ] ->
       Alcotest.(check string) "leading zero stays a key" "018446744073709551616" k
   | _ -> Alcotest.fail "leading-zero token must stay a Key");
  (* max_int itself still classifies as an index *)
  let edge = "/" ^ string_of_int max_int in
  match Json.Pointer.parse edge with
  | Ok [ Json.Pointer.Index i ] -> Alcotest.(check int) "max_int index" max_int i
  | _ -> Alcotest.fail "max_int must classify as Index"

let test_pointer_set () =
  let doc = parse {|{"a": [1, 2], "b": 0}|} in
  let set p r =
    match Json.Pointer.set (Json.Pointer.parse_exn p) r doc with
    | Ok v -> v
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.check value "replace member" (parse {|{"a":[1,2],"b":9}|})
    (set "/b" (Json.Value.Int 9));
  Alcotest.check value "replace element" (parse {|{"a":[1,9],"b":0}|})
    (set "/a/1" (Json.Value.Int 9));
  Alcotest.check value "append via length" (parse {|{"a":[1,2,9],"b":0}|})
    (set "/a/2" (Json.Value.Int 9));
  Alcotest.check value "append via -" (parse {|{"a":[1,2,9],"b":0}|})
    (set "/a/-" (Json.Value.Int 9));
  Alcotest.check value "add member" (parse {|{"a":[1,2],"b":0,"c":9}|})
    (set "/c" (Json.Value.Int 9));
  match Json.Pointer.set (Json.Pointer.parse_exn "/a/7") (Json.Value.Int 9) doc with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out of bounds set should fail"

(* --- JSONPath -------------------------------------------------------- *)

let test_jsonpath () =
  let doc =
    parse
      {|{"store": {"book": [{"title": "A", "price": 1},
                            {"title": "B", "price": 2}],
                   "bicycle": {"price": 3}}}|}
  in
  let eval s = Json.Jsonpath.(eval (parse_exn s) doc) in
  Alcotest.(check (list value)) "field chain"
    [ Json.Value.String "A" ]
    (eval "$.store.book[0].title");
  Alcotest.(check (list value)) "wildcard"
    [ Json.Value.Int 1; Json.Value.Int 2 ]
    (eval "$.store.book[*].price");
  Alcotest.(check (list value)) "descend"
    [ Json.Value.Int 1; Json.Value.Int 2; Json.Value.Int 3 ]
    (eval "$..price");
  Alcotest.(check (list value)) "quoted" [ Json.Value.Int 3 ]
    (eval "$.store['bicycle'].price");
  Alcotest.(check (list string)) "first_fields" [ "store" ]
    (Json.Jsonpath.first_fields (Json.Jsonpath.parse_exn "$.store.book"));
  Alcotest.(check string) "print"
    "$.store.book[0][*]..price"
    Json.Jsonpath.(to_string (parse_exn "$.store.book[0][*]..price"))

(* --- Stream ---------------------------------------------------------- *)

let event = Alcotest.testable Json.Stream.pp_event Json.Stream.event_equal

let drain src =
  let r = Json.Stream.reader src in
  let rec go acc =
    match Json.Stream.read r with
    | Ok None -> List.rev acc
    | Ok (Some ev) -> go (ev :: acc)
    | Error e -> Alcotest.fail (Json.Parser.string_of_error e)
  in
  go []

let test_stream_events () =
  let open Json.Stream in
  Alcotest.(check (list event)) "object events"
    [ Start_object; Field_name "a"; Scalar (Json.Value.Int 1); Field_name "b";
      Start_array; Scalar (Json.Value.Bool true); End_array; End_object ]
    (drain {|{"a": 1, "b": [true]}|});
  Alcotest.(check (list event)) "scalar root" [ Scalar Json.Value.Null ] (drain "null");
  Alcotest.(check (list event)) "empty containers"
    [ Start_array; Start_object; End_object; Start_array; End_array; End_array ]
    (drain "[{} , []]")

let test_stream_errors () =
  let bad src =
    let r = Json.Stream.reader src in
    let rec go () =
      match Json.Stream.read r with
      | Ok None -> Alcotest.fail (Printf.sprintf "%S should fail" src)
      | Ok (Some _) -> go ()
      | Error _ -> ()
    in
    go ()
  in
  List.iter bad [ "[1,]"; "{\"a\"}"; "{\"a\":1,}"; "[1 2]"; "{1:2}" ]

let test_stream_value_roundtrip () =
  let check src =
    let v = parse src in
    match Json.Stream.value_of_events (Json.Stream.events_of_value v) with
    | Ok v' -> Alcotest.check value src v v'
    | Error msg -> Alcotest.fail msg
  in
  List.iter check
    [ "null"; "[1,[2,[3]]]"; {|{"a":{"b":{"c":[]}},"d":[{"e":1}]}|}; "{}"; {|"s"|} ]

let test_stream_reader_matches_tree () =
  let src = {|{"a": [1, {"b": null}], "c": "x"}|} in
  match Json.Stream.value_of_events (drain src) with
  | Ok v -> Alcotest.check value "reader == tree parser" (parse src) v
  | Error msg -> Alcotest.fail msg

let test_fold_documents () =
  let src = "{\"n\":1}\n{\"n\":2}  {\"n\":3}\n" in
  match
    Json.Stream.fold_documents src ~init:0 ~f:(fun acc v ->
        acc + Json.Value.(to_int_exn (member_exn "n" v)))
  with
  | Ok total -> Alcotest.(check int) "sum over documents" 6 total
  | Error e -> Alcotest.fail (Json.Parser.string_of_error e)

(* --- Properties ------------------------------------------------------ *)

let gen_value : Json.Value.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let scalar =
    oneof
      [ return Json.Value.Null;
        map (fun b -> Json.Value.Bool b) bool;
        map (fun n -> Json.Value.Int n) (int_range (-1000000) 1000000);
        map (fun f -> Json.Value.Float f) (float_range (-1e9) 1e9);
        map (fun s -> Json.Value.String s) (string_size ~gen:printable (int_range 0 12));
      ]
  in
  let key = string_size ~gen:(char_range 'a' 'z') (int_range 1 6) in
  sized @@ fix (fun self n ->
      if n <= 0 then scalar
      else
        frequency
          [ (3, scalar);
            (1, map (fun vs -> Json.Value.Array vs) (list_size (int_range 0 4) (self (n / 2))));
            (1,
             map
               (fun fields ->
                 (* distinct keys: duplicate keys break print/parse roundtrip *)
                 let seen = Hashtbl.create 8 in
                 Json.Value.Object
                   (List.filter
                      (fun (k, _) ->
                        if Hashtbl.mem seen k then false
                        else (Hashtbl.add seen k (); true))
                      fields))
               (list_size (int_range 0 4) (pair key (self (n / 2)))));
          ])

let prop_print_parse_roundtrip =
  QCheck2.Test.make ~name:"print |> parse = id" ~count:500 gen_value (fun v ->
      Json.Value.equal_strict v (parse (print v)))

let prop_pretty_parse_roundtrip =
  QCheck2.Test.make ~name:"pretty |> parse = id" ~count:200 gen_value (fun v ->
      Json.Value.equal_strict v (parse (Json.Printer.to_string_pretty v)))

let prop_events_roundtrip =
  QCheck2.Test.make ~name:"events |> rebuild = id" ~count:500 gen_value (fun v ->
      match Json.Stream.value_of_events (Json.Stream.events_of_value v) with
      | Ok v' -> Json.Value.equal_strict v v'
      | Error _ -> false)

let prop_sort_keys_idempotent =
  QCheck2.Test.make ~name:"sort_keys idempotent" ~count:300 gen_value (fun v ->
      let s = Json.Value.sort_keys v in
      Json.Value.equal_strict s (Json.Value.sort_keys s))

let prop_equal_reflexive_compare_total =
  QCheck2.Test.make ~name:"equal reflexive; compare antisym" ~count:300
    (QCheck2.Gen.pair gen_value gen_value) (fun (a, b) ->
      Json.Value.equal a a
      && Json.Value.compare a b = -Json.Value.compare b a)

let prop_paths_count_bounded =
  QCheck2.Test.make ~name:"paths <= size" ~count:300 gen_value (fun v ->
      List.length (Json.Value.paths v) <= Json.Value.size v)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "json"
    [ ("value",
       [ Alcotest.test_case "accessors" `Quick test_accessors;
         Alcotest.test_case "unordered equality" `Quick test_equal_unordered;
         Alcotest.test_case "structure ops" `Quick test_structure_ops ]);
      ("number",
       [ Alcotest.test_case "grammar" `Quick test_number_grammar;
         Alcotest.test_case "int vs float" `Quick test_number_int_vs_float;
         Alcotest.test_case "parse never raises" `Quick test_number_parse_never_raises;
         Alcotest.test_case "float printing" `Quick test_float_printing ]);
      ("parser",
       [ Alcotest.test_case "scalars" `Quick test_parse_scalars;
         Alcotest.test_case "escapes" `Quick test_parse_escapes;
         Alcotest.test_case "errors" `Quick test_parse_errors;
         Alcotest.test_case "error position" `Quick test_parse_error_position;
         Alcotest.test_case "duplicate keys" `Quick test_dup_keys;
         Alcotest.test_case "max depth" `Quick test_max_depth;
         Alcotest.test_case "budgets" `Quick test_budgets;
         Alcotest.test_case "budgets off by default" `Quick test_budget_unlimited_by_default;
         Alcotest.test_case "parse_many" `Quick test_parse_many;
         Alcotest.test_case "parse_substring" `Quick test_parse_substring ]);
      ("printer",
       [ Alcotest.test_case "roundtrips" `Quick test_print_roundtrips;
         Alcotest.test_case "pretty" `Quick test_pretty_print;
         Alcotest.test_case "escape_string" `Quick test_escape_string;
         Alcotest.test_case "utf8 sanitized" `Quick test_print_utf8_sanitized ]);
      ("pointer",
       [ Alcotest.test_case "parse/print" `Quick test_pointer_parse;
         Alcotest.test_case "get (RFC 6901 examples)" `Quick test_pointer_get;
         Alcotest.test_case "numeric member" `Quick test_pointer_numeric_member;
         Alcotest.test_case "index overflow" `Quick test_pointer_index_overflow;
         Alcotest.test_case "set" `Quick test_pointer_set ]);
      ("jsonpath", [ Alcotest.test_case "eval" `Quick test_jsonpath ]);
      ("stream",
       [ Alcotest.test_case "events" `Quick test_stream_events;
         Alcotest.test_case "errors" `Quick test_stream_errors;
         Alcotest.test_case "value<->events" `Quick test_stream_value_roundtrip;
         Alcotest.test_case "reader matches tree" `Quick test_stream_reader_matches_tree;
         Alcotest.test_case "fold_documents" `Quick test_fold_documents ]);
      ("properties",
       q [ prop_print_parse_roundtrip; prop_pretty_parse_roundtrip;
           prop_events_roundtrip; prop_sort_keys_idempotent;
           prop_equal_reflexive_compare_total; prop_paths_count_bounded ]);
    ]

let _ = value_loose
