(* Tests for the six inference tools: parametric (kind/label/counting),
   Spark-style, mongodb-schema-style, Skinfer, skeletons, relational
   normalization — including the comparative claims the tutorial makes. *)

let parse = Json.Parser.parse_exn
let ty = Alcotest.testable Jtype.Types.pp Jtype.Types.equal

(* --- parametric -------------------------------------------------------- *)

let test_partitioning_invariance () =
  let st = Datagen.rng ~seed:11 in
  let docs = Datagen.tweets st 200 in
  List.iter
    (fun equiv ->
      let reference = Inference.Parametric.infer ~equiv docs in
      List.iter
        (fun p ->
          Alcotest.check ty
            (Printf.sprintf "%s equiv, %d partitions" (Jtype.Merge.equiv_to_string equiv) p)
            reference
            (Inference.Parametric.infer_partitioned ~equiv ~partitions:p docs))
        [ 1; 2; 7; 16; 64; 200; 1000 ])
    [ Jtype.Merge.Kind; Jtype.Merge.Label ]

let test_parametric_soundness_on_corpora () =
  let st = Datagen.rng ~seed:5 in
  let corpora =
    [ ("tweets", Datagen.tweets st 100);
      ("articles", Datagen.articles st 100);
      ("open_data", Datagen.open_data st 100);
      ("heterogeneous", Datagen.heterogeneous st ~heterogeneity:1.0 100) ]
  in
  List.iter
    (fun (name, docs) ->
      List.iter
        (fun equiv ->
          let t = Inference.Parametric.infer ~equiv docs in
          Alcotest.(check (float 0.0))
            (Printf.sprintf "%s precision (%s)" name (Jtype.Merge.equiv_to_string equiv))
            1.0
            (Inference.Parametric.precision t docs))
        [ Jtype.Merge.Kind; Jtype.Merge.Label ])
    corpora

let test_ndjson_streaming_matches () =
  let st = Datagen.rng ~seed:3 in
  let docs = Datagen.open_data st 50 in
  let text = Datagen.to_ndjson docs in
  match Inference.Parametric.infer_ndjson ~equiv:Jtype.Merge.Kind text with
  | Ok t ->
      Alcotest.check ty "streaming = batch"
        (Inference.Parametric.infer ~equiv:Jtype.Merge.Kind docs)
        t
  | Error e -> Alcotest.fail (Json.Parser.string_of_error e)

let test_counting_matches_sizes () =
  let st = Datagen.rng ~seed:7 in
  let docs = Datagen.tweets st 80 in
  let c = Inference.Parametric.infer_counting ~equiv:Jtype.Merge.Kind docs in
  Alcotest.(check int) "root count" 80 (Jtype.Counting.count c);
  match Jtype.Counting.field_probability c [ "user"; "verified" ] with
  | Some p -> Alcotest.(check (float 0.0)) "verified always present" 1.0 p
  | None -> Alcotest.fail "user.verified must occur"

(* --- spark ------------------------------------------------------------- *)

let test_spark_widening () =
  let infer srcs = Inference.Spark.infer (List.map parse srcs) in
  (* long + double -> double *)
  let f = infer [ {|{"x": 1}|}; {|{"x": 2.5}|} ] in
  Alcotest.(check string) "numeric widening" "STRUCT<x: DOUBLE>" (Inference.Spark.to_ddl f.Inference.Spark.typ);
  (* int + string -> string: the documented fallback *)
  let f2 = infer [ {|{"x": 1}|}; {|{"x": "s"}|} ] in
  Alcotest.(check string) "string fallback" "STRUCT<x: STRING>" (Inference.Spark.to_ddl f2.Inference.Spark.typ);
  (* struct + scalar -> string *)
  let f3 = infer [ {|{"x": {"y": 1}}|}; {|{"x": 3}|} ] in
  Alcotest.(check string) "cross-kind fallback" "STRUCT<x: STRING>" (Inference.Spark.to_ddl f3.Inference.Spark.typ)

let test_spark_nullability () =
  let f = Inference.Spark.infer (List.map parse [ {|{"a": 1, "b": 2}|}; {|{"a": null}|} ]) in
  match f.Inference.Spark.typ with
  | Inference.Spark.Struct [ ("a", fa); ("b", fb) ] ->
      Alcotest.(check bool) "a nullable (saw null)" true fa.Inference.Spark.nullable;
      Alcotest.(check bool) "b nullable (absent once)" true fb.Inference.Spark.nullable;
      Alcotest.(check string) "a stays long" "BIGINT" (Inference.Spark.to_ddl fa.Inference.Spark.typ)
  | _ -> Alcotest.fail "expected struct with fields a, b"

let test_spark_less_precise_than_parametric () =
  (* the tutorial's core comparative claim, on heterogeneous data *)
  let st = Datagen.rng ~seed:23 in
  let docs = Datagen.heterogeneous st ~heterogeneity:1.0 300 in
  let spark_t = Inference.Spark.to_jtype (Inference.Spark.infer docs) in
  let param_t = Inference.Parametric.infer ~equiv:Jtype.Merge.Kind docs in
  let spark_precision = Inference.Parametric.precision spark_t docs in
  let param_precision = Inference.Parametric.precision param_t docs in
  Alcotest.(check (float 0.0)) "parametric is sound" 1.0 param_precision;
  Alcotest.(check bool)
    (Printf.sprintf "spark loses precision (%.2f < 1.0)" spark_precision)
    true (spark_precision < 1.0)

let test_spark_ddl_printer () =
  let f = Inference.Spark.infer_value (parse {|{"a": [1], "b": {"c": true}}|}) in
  Alcotest.(check string) "ddl"
    "STRUCT<a: ARRAY<BIGINT>, b: STRUCT<c: BOOLEAN>>"
    (Inference.Spark.to_ddl f.Inference.Spark.typ)

let test_spark_ddl_quoting () =
  (* field names that are not plain identifiers must be backtick-quoted,
     Spark SQL style, or the emitted STRUCT<...> is unparseable *)
  let ddl src =
    Inference.Spark.to_ddl (Inference.Spark.infer_value (parse src)).Inference.Spark.typ
  in
  Alcotest.(check string) "colon, angle, comma, space"
    "STRUCT<`a:b`: BIGINT, `c,d`: BIGINT, `e<f>`: BIGINT, `g h`: BIGINT>"
    (ddl {|{"a:b": 1, "c,d": 2, "e<f>": 3, "g h": 4}|});
  Alcotest.(check string) "backtick doubled" "STRUCT<`x``y`: STRING>"
    (ddl {|{"x`y": "v"}|});
  Alcotest.(check string) "leading digit quoted" "STRUCT<`0day`: BOOLEAN>"
    (ddl {|{"0day": true}|});
  Alcotest.(check string) "nested struct keys quoted"
    "STRUCT<outer: STRUCT<`in:ner`: BIGINT>>"
    (ddl {|{"outer": {"in:ner": 1}}|});
  Alcotest.(check string) "plain identifiers untouched"
    "STRUCT<_ok: BIGINT, ok2: BIGINT>"
    (ddl {|{"_ok": 1, "ok2": 2}|})

(* --- mongo ------------------------------------------------------------- *)

let test_mongo_statistics () =
  let docs =
    List.map parse
      [ {|{"a": 1, "b": "x"}|}; {|{"a": "one"}|}; {|{"a": 2, "b": "y"}|}; {|{"a": 3}|} ]
  in
  let a = Inference.Mongo.analyze docs in
  Alcotest.(check int) "total" 4 a.Inference.Mongo.total;
  (match Inference.Mongo.field a "a" with
   | Some f ->
       Alcotest.(check int) "a count" 4 f.Inference.Mongo.count;
       Alcotest.(check (float 1e-9)) "a probability" 1.0 f.Inference.Mongo.probability;
       (match f.Inference.Mongo.types with
        | first :: second :: [] ->
            Alcotest.(check string) "dominant type" "Number" first.Inference.Mongo.type_name;
            Alcotest.(check int) "number count" 3 first.Inference.Mongo.type_count;
            Alcotest.(check string) "minor type" "String" second.Inference.Mongo.type_name
        | ts -> Alcotest.fail (Printf.sprintf "expected 2 types for a, got %d" (List.length ts)))
   | None -> Alcotest.fail "field a missing");
  match Inference.Mongo.field a "b" with
  | Some f ->
      Alcotest.(check (float 1e-9)) "b probability" 0.5 f.Inference.Mongo.probability
  | None -> Alcotest.fail "field b missing"

let test_mongo_duplicates_and_nesting () =
  let docs =
    List.map parse
      [ {|{"tag": "hot", "user": {"name": "a"}}|};
        {|{"tag": "hot", "user": {"name": "b", "age": 3}}|} ]
  in
  let a = Inference.Mongo.analyze docs in
  (match Inference.Mongo.field a "tag" with
   | Some f -> Alcotest.(check bool) "duplicates" true f.Inference.Mongo.has_duplicates
   | None -> Alcotest.fail "tag missing");
  match Inference.Mongo.field a "user" with
  | Some f -> (
      match f.Inference.Mongo.types with
      | [ doc_type ] -> (
          Alcotest.(check string) "doc type" "Document" doc_type.Inference.Mongo.type_name;
          match
            List.find_opt
              (fun (x : Inference.Mongo.field_stats) -> x.Inference.Mongo.name = "age")
              doc_type.Inference.Mongo.fields
          with
          | Some age ->
              Alcotest.(check (float 1e-9)) "nested probability" 0.5
                age.Inference.Mongo.probability
          | None -> Alcotest.fail "nested age missing")
      | _ -> Alcotest.fail "user should have a single Document type")
  | None -> Alcotest.fail "user missing"

let test_mongo_streaming_incremental () =
  let st = Datagen.rng ~seed:9 in
  let docs = Datagen.tweets st 60 in
  let batch = Inference.Mongo.analyze docs in
  let streamed =
    Inference.Mongo.finalize (List.fold_left Inference.Mongo.observe Inference.Mongo.empty docs)
  in
  Alcotest.(check bool) "same result" true
    (Json.Value.equal (Inference.Mongo.to_json batch) (Inference.Mongo.to_json streamed));
  (* no correlation: mongo cannot distinguish co-occurring fields, so its
     output is a flat field list *)
  Alcotest.(check int) "total" 60 batch.Inference.Mongo.total


let test_mongo_to_jtype () =
  let docs =
    List.map parse
      [ {|{"a": 1, "b": "x"}|}; {|{"a": 2}|}; {|{"a": 2.5}|} ]
  in
  let t = Inference.Mongo.to_jtype (Inference.Mongo.analyze docs) in
  Alcotest.check ty "mongo type"
    (Jtype.Types.rec_
       [ Jtype.Types.field "a" Jtype.Types.num;
         Jtype.Types.field ~optional:true "b" Jtype.Types.str ])
    t;
  (* every document inhabits the derived type *)
  List.iter
    (fun d -> Alcotest.(check bool) "member" true (Jtype.Typecheck.member d t))
    docs

(* --- skinfer ------------------------------------------------------------ *)

let test_skinfer_record_merge () =
  let s = Inference.Skinfer.infer (List.map parse [ {|{"a": 1, "b": "x"}|}; {|{"a": 2}|} ]) in
  let root = Jsonschema.Print.to_json s in
  Alcotest.(check bool) "accepts both" true
    (Jsonschema.Validate.is_valid ~root (parse {|{"a": 5, "b": "z"}|})
    && Jsonschema.Validate.is_valid ~root (parse {|{"a": 5}|}));
  (* a stays required, b becomes optional *)
  Alcotest.(check bool) "a required" false
    (Jsonschema.Validate.is_valid ~root (parse {|{"b": "z"}|}))

let test_skinfer_scalar_conflict_widens () =
  let s = Inference.Skinfer.infer (List.map parse [ "1"; {|"s"|} ]) in
  Alcotest.(check bool) "widened to true" true
    (match s with Jsonschema.Schema.Bool_schema true -> true | _ -> false)

let test_skinfer_array_limitation () =
  (* two arrays of objects with different shapes: a recursive merge would
     produce a precise items schema; Skinfer drops the items constraint *)
  let s =
    Inference.Skinfer.infer
      (List.map parse [ {|[{"a": 1}]|}; {|[{"b": "x"}]|} ])
  in
  let root = Jsonschema.Print.to_json s in
  (* anything goes inside the array now *)
  Alcotest.(check bool) "lost element schema" true
    (Jsonschema.Validate.is_valid ~root (parse {|[17, "anything"]|}));
  (* the parametric inference on the same data keeps element structure *)
  let t =
    Inference.Parametric.infer ~equiv:Jtype.Merge.Kind
      (List.map parse [ {|[{"a": 1}]|}; {|[{"b": "x"}]|} ])
  in
  Alcotest.(check bool) "parametric keeps it" false
    (Jtype.Typecheck.member (parse {|[17, "anything"]|}) t)

(* --- skeleton ------------------------------------------------------------ *)

let test_skeleton_grouping () =
  let docs =
    List.map parse
      [ {|{"a": 1, "b": "x"}|}; {|{"a": 2, "b": "y"}|}; {|{"a": 3, "b": "z"}|};
        {|{"a": 4, "b": "w"}|}; {|{"c": true}|} ]
  in
  let sk = Inference.Skeleton.build ~min_support:0.5 docs in
  Alcotest.(check int) "one retained group" 1 (List.length sk.Inference.Skeleton.groups);
  Alcotest.(check int) "dropped" 1 sk.Inference.Skeleton.dropped;
  Alcotest.(check bool) "covers frequent" true
    (Inference.Skeleton.covers sk (parse {|{"a": 9, "b": "q"}|}));
  Alcotest.(check bool) "misses rare" false
    (Inference.Skeleton.covers sk (parse {|{"c": false}|}))

let test_skeleton_misses_paths () =
  (* the tutorial: "the skeleton may totally miss information about paths" *)
  let st = Datagen.rng ~seed:31 in
  let docs = Datagen.skewed_structures st ~shapes:12 ~zipf:1.5 500 in
  let sk = Inference.Skeleton.build ~min_support:0.05 ~max_groups:4 docs in
  let coverage = Inference.Skeleton.path_coverage sk docs in
  Alcotest.(check bool)
    (Printf.sprintf "path coverage %.2f strictly between 0 and 1" coverage)
    true
    (coverage > 0.0 && coverage < 1.0);
  (* skeleton is much smaller than the union of all structures *)
  let sk_full = Inference.Skeleton.build ~min_support:0.0 ~max_groups:1000 docs in
  Alcotest.(check bool) "skeleton smaller than full" true
    (Inference.Skeleton.size sk < Inference.Skeleton.size sk_full)

let test_structure_abstraction () =
  Alcotest.(check string) "structure"
    "{a: *, b: [{c: *}]}"
    (Inference.Skeleton.structure_to_string
       (Inference.Skeleton.structure_of (parse {|{"a": 1, "b": [{"c": 2}]}|})));
  (* values are erased: different scalars, same structure *)
  Alcotest.(check bool) "value-independent" true
    (Inference.Skeleton.structure_of (parse {|{"a": 1}|})
    = Inference.Skeleton.structure_of (parse {|{"a": "s"}|}))

(* --- relational ------------------------------------------------------------ *)

let test_flatten () =
  let rows = Inference.Relational.flatten (parse {|{"a": 1, "b": {"c": 2}, "xs": [{"v": 10}, {"v": 20}]}|}) in
  Alcotest.(check int) "two rows from unnesting" 2 (List.length rows);
  List.iter
    (fun row ->
      Alcotest.(check bool) "dotted path" true (List.mem_assoc "b.c" row);
      Alcotest.(check bool) "array path" true (List.mem_assoc "xs.v" row))
    rows

let test_fd_mining () =
  let docs =
    List.map parse
      [ {|{"cid": 1, "cname": "acme", "amount": 10}|};
        {|{"cid": 2, "cname": "globex", "amount": 20}|};
        {|{"cid": 1, "cname": "acme", "amount": 30}|} ]
  in
  let rows = List.concat_map Inference.Relational.flatten docs in
  let fds = Inference.Relational.mine_fds rows in
  let has_fd d dep =
    List.exists
      (fun fd ->
        fd.Inference.Relational.determinant = d && fd.Inference.Relational.dependent = dep)
      fds
  in
  Alcotest.(check bool) "cid -> cname" true (has_fd "cid" "cname");
  Alcotest.(check bool) "cname -> cid" true (has_fd "cname" "cid");
  Alcotest.(check bool) "no cid -> amount" false (has_fd "cid" "amount")

let test_normalization_reduces_redundancy () =
  let st = Datagen.rng ~seed:17 in
  let docs = Datagen.orders st 300 in
  let r = Inference.Relational.normalize ~name:"orders" docs in
  Alcotest.(check bool)
    (Printf.sprintf "tables discovered (%d)" (List.length r.Inference.Relational.tables))
    true
    (List.length r.Inference.Relational.tables >= 2);
  Alcotest.(check bool)
    (Printf.sprintf "redundancy reduced (%d -> %d cells)" r.Inference.Relational.cells_before
       r.Inference.Relational.cells_after)
    true
    (r.Inference.Relational.cells_after < r.Inference.Relational.cells_before);
  (* customer attributes end up in a dimension table keyed by customer_id *)
  let dim_keys = List.filter_map (fun t -> t.Inference.Relational.key) r.Inference.Relational.tables in
  let keyed_on prefix =
    List.exists
      (fun k -> String.length k >= String.length prefix && String.sub k 0 (String.length prefix) = prefix)
      dim_keys
  in
  Alcotest.(check bool) "customer dimension exists" true (keyed_on "customer.");
  Alcotest.(check bool) "product dimension exists" true (keyed_on "product.")


(* --- discovery (Couchbase-style clustering) ------------------------------ *)

let test_typed_paths () =
  Alcotest.(check (list string)) "typed paths"
    [ "a:number"; "b.c:string"; "xs[]:number" ]
    (Inference.Discovery.typed_paths (parse {|{"a": 1, "b": {"c": "x"}, "xs": [1, 2]}|}));
  Alcotest.(check (list string)) "empty array marker" [ "xs[]:empty" ]
    (Inference.Discovery.typed_paths (parse {|{"xs": []}|}))

let test_jaccard () =
  Alcotest.(check (float 1e-9)) "identical" 1.0
    (Inference.Discovery.jaccard [ "a"; "b" ] [ "a"; "b" ]);
  Alcotest.(check (float 1e-9)) "disjoint" 0.0
    (Inference.Discovery.jaccard [ "a" ] [ "b" ]);
  Alcotest.(check (float 1e-9)) "half" (1.0 /. 3.0)
    (Inference.Discovery.jaccard [ "a"; "b" ] [ "b"; "c" ]);
  Alcotest.(check (float 1e-9)) "both empty" 1.0 (Inference.Discovery.jaccard [] [])

let test_discovery_separates_entities () =
  (* a mixed bucket: users and products interleaved *)
  let users =
    List.init 40 (fun i ->
        parse (Printf.sprintf {|{"user_id": %d, "name": "u%d", "email": "u%d@x.io"}|} i i i))
  in
  let products =
    List.init 25 (fun i ->
        parse (Printf.sprintf {|{"sku": "p%d", "price": %d.5, "stock": %d}|} i (i mod 9) i))
  in
  let rec interleave a b =
    match (a, b) with
    | [], rest | rest, [] -> rest
    | x :: a2, y :: b2 -> x :: y :: interleave a2 b2
  in
  let clusters = Inference.Discovery.discover (interleave users products) in
  Alcotest.(check int) "two clusters" 2 (List.length clusters);
  (match clusters with
   | [ c1; c2 ] ->
       Alcotest.(check int) "largest first" 40 c1.Inference.Discovery.size;
       Alcotest.(check int) "second" 25 c2.Inference.Discovery.size;
       List.iter
         (fun (c : Inference.Discovery.cluster) ->
           List.iter
             (fun m ->
               Alcotest.(check bool) "member fits cluster schema" true
                 (Jtype.Typecheck.member m c.Inference.Discovery.schema))
             c.Inference.Discovery.members)
         [ c1; c2 ]
   | _ -> Alcotest.fail "expected exactly two clusters");
  match Inference.Discovery.classify clusters (parse {|{"sku": "z", "price": 1.0, "stock": 7}|}) with
  | Some 1 -> ()
  | Some i -> Alcotest.fail (Printf.sprintf "classified into cluster %d" i)
  | None -> Alcotest.fail "should classify"

let test_discovery_threshold () =
  let docs =
    List.map parse
      [ {|{"a": 1, "b": 2}|}; {|{"a": 3, "b": 4, "c": 5}|}; {|{"z": "far"}|} ]
  in
  let strict = Inference.Discovery.discover ~threshold:0.9 docs in
  let loose = Inference.Discovery.discover ~threshold:0.3 docs in
  Alcotest.(check int) "strict splits" 3 (List.length strict);
  Alcotest.(check int) "loose merges similar" 2 (List.length loose)

(* --- profiling (decision trees over field values) ------------------------- *)

let test_profile_learns_rule () =
  (* the variant is fully determined by the "kind" field *)
  let docs =
    List.init 60 (fun i ->
        if i mod 2 = 0 then
          parse (Printf.sprintf {|{"kind": "a", "a_payload": %d}|} i)
        else parse (Printf.sprintf {|{"kind": "b", "b_payload": "s%d"}|} i))
  in
  let p = Inference.Profile.profile docs in
  Alcotest.(check (float 1e-9)) "perfect training accuracy" 1.0
    p.Inference.Profile.training_accuracy;
  Alcotest.(check int) "two variants" 2 (List.length p.Inference.Profile.variants);
  (match p.Inference.Profile.tree with
   | Inference.Profile.Split { feature; _ } ->
       Alcotest.(check string) "splits on kind" "kind" feature
   | Inference.Profile.Leaf _ -> Alcotest.fail "expected a split");
  Alcotest.(check string) "predicts a-variant"
    "{a_payload: *, kind: *}"
    (Inference.Profile.predict p (parse {|{"kind": "a", "a_payload": 999}|}));
  let rs = Inference.Profile.rules p in
  Alcotest.(check bool) "has kind rule" true
    (List.exists
       (fun r -> Re.execp (Re.compile (Re.str {|kind = "a"|})) r)
       rs)

let test_profile_no_signal () =
  let docs = List.init 10 (fun i -> parse (Printf.sprintf {|{"x": %d}|} i)) in
  let p = Inference.Profile.profile docs in
  (match p.Inference.Profile.tree with
   | Inference.Profile.Leaf _ -> ()
   | _ -> Alcotest.fail "expected a leaf");
  Alcotest.(check (float 1e-9)) "accuracy" 1.0 (Inference.Profile.accuracy p docs)

let test_profile_generalizes () =
  (* variant depends on lang: "en" docs carry entities, others never do *)
  let mk i =
    let lang = if i mod 3 = 0 then "en" else "fr" in
    if lang = "en" then
      parse (Printf.sprintf {|{"lang": "en", "id": %d, "entities": {"tags": []}}|} i)
    else parse (Printf.sprintf {|{"lang": "fr", "id": %d}|} i)
  in
  let train = List.init 100 mk in
  let test = List.init 40 (fun i -> mk (i + 1000)) in
  let p = Inference.Profile.profile train in
  Alcotest.(check bool)
    (Printf.sprintf "held-out accuracy %.2f" (Inference.Profile.accuracy p test))
    true
    (Inference.Profile.accuracy p test >= 0.95)

let () =
  Alcotest.run "inference"
    [ ("parametric",
       [ Alcotest.test_case "partitioning invariance" `Quick test_partitioning_invariance;
         Alcotest.test_case "soundness on corpora" `Quick test_parametric_soundness_on_corpora;
         Alcotest.test_case "ndjson streaming" `Quick test_ndjson_streaming_matches;
         Alcotest.test_case "counting" `Quick test_counting_matches_sizes ]);
      ("spark",
       [ Alcotest.test_case "widening" `Quick test_spark_widening;
         Alcotest.test_case "nullability" `Quick test_spark_nullability;
         Alcotest.test_case "imprecision vs parametric" `Quick test_spark_less_precise_than_parametric;
         Alcotest.test_case "ddl printer" `Quick test_spark_ddl_printer;
         Alcotest.test_case "ddl identifier quoting" `Quick test_spark_ddl_quoting ]);
      ("mongo",
       [ Alcotest.test_case "statistics" `Quick test_mongo_statistics;
         Alcotest.test_case "duplicates and nesting" `Quick test_mongo_duplicates_and_nesting;
         Alcotest.test_case "streaming incremental" `Quick test_mongo_streaming_incremental;
         Alcotest.test_case "to jtype" `Quick test_mongo_to_jtype ]);
      ("skinfer",
       [ Alcotest.test_case "record merge" `Quick test_skinfer_record_merge;
         Alcotest.test_case "scalar conflict widens" `Quick test_skinfer_scalar_conflict_widens;
         Alcotest.test_case "array limitation" `Quick test_skinfer_array_limitation ]);
      ("skeleton",
       [ Alcotest.test_case "grouping" `Quick test_skeleton_grouping;
         Alcotest.test_case "misses rare paths" `Quick test_skeleton_misses_paths;
         Alcotest.test_case "structure abstraction" `Quick test_structure_abstraction ]);
      ("discovery",
       [ Alcotest.test_case "typed paths" `Quick test_typed_paths;
         Alcotest.test_case "jaccard" `Quick test_jaccard;
         Alcotest.test_case "separates entities" `Quick test_discovery_separates_entities;
         Alcotest.test_case "threshold" `Quick test_discovery_threshold ]);
      ("profile",
       [ Alcotest.test_case "learns rule" `Quick test_profile_learns_rule;
         Alcotest.test_case "no signal" `Quick test_profile_no_signal;
         Alcotest.test_case "generalizes" `Quick test_profile_generalizes ]);
      ("relational",
       [ Alcotest.test_case "flatten" `Quick test_flatten;
         Alcotest.test_case "fd mining" `Quick test_fd_mining;
         Alcotest.test_case "normalization" `Quick test_normalization_reduces_redundancy ]);
    ]
