(* Tests for the hash-consed type kernel (Jtype.Types interning +
   Jtype.Merge memoized fusion).

   The centerpiece is a differential oracle: [Seed] below is an
   independent re-implementation of the pre-kernel representation — a
   plain variant with deep-structural compare and the unmemoized fusion
   algorithm — and the QCheck properties demand that kernel-backed
   inference produce the same printed type for both equivalences on
   random corpora. Physical-sharing and cache-determinism tests pin the
   properties the memo caches rely on. *)

open Jtype

let ty = Alcotest.testable Types.pp Types.equal

(* --- the seed oracle ---------------------------------------------------- *)

module Seed = struct
  type t =
    | Bot
    | Null
    | Bool
    | Int
    | Num
    | Str
    | Arr of t
    | Rec of field list
    | Union of t list
    | Any

  and field = { fname : string; optional : bool; ftype : t }

  let rank = function
    | Bot -> 0 | Null -> 1 | Bool -> 2 | Int -> 3 | Num -> 4 | Str -> 5
    | Arr _ -> 6 | Rec _ -> 7 | Union _ -> 8 | Any -> 9

  let rec compare a b =
    match (a, b) with
    | Arr x, Arr y -> compare x y
    | Rec xs, Rec ys -> compare_fields xs ys
    | Union xs, Union ys -> compare_list xs ys
    | _ -> Stdlib.compare (rank a) (rank b)

  and compare_list xs ys =
    match (xs, ys) with
    | [], [] -> 0
    | [], _ -> -1
    | _, [] -> 1
    | x :: xs', y :: ys' ->
        let c = compare x y in
        if c <> 0 then c else compare_list xs' ys'

  and compare_fields xs ys =
    match (xs, ys) with
    | [], [] -> 0
    | [], _ -> -1
    | _, [] -> 1
    | x :: xs', y :: ys' ->
        let c = String.compare x.fname y.fname in
        if c <> 0 then c
        else
          let c = Bool.compare x.optional y.optional in
          if c <> 0 then c
          else
            let c = compare x.ftype y.ftype in
            if c <> 0 then c else compare_fields xs' ys'

  let union ts =
    let rec flatten acc = function
      | [] -> acc
      | Union us :: rest -> flatten (flatten acc us) rest
      | Bot :: rest -> flatten acc rest
      | t :: rest -> flatten (t :: acc) rest
    in
    let flat = flatten [] ts in
    if List.exists (fun t -> t = Any) flat then Any
    else
      match List.sort_uniq compare flat with
      | [] -> Bot
      | [ t ] -> t
      | ts -> Union ts

  let rec of_value (v : Json.Value.t) : t =
    match v with
    | Json.Value.Null -> Null
    | Json.Value.Bool _ -> Bool
    | Json.Value.Int _ -> Int
    | Json.Value.Float _ -> Num
    | Json.Value.String _ -> Str
    | Json.Value.Array vs -> Arr (union (List.map of_value vs))
    | Json.Value.Object fields ->
        let seen = Hashtbl.create 8 in
        let uniq =
          List.filter
            (fun (k, _) ->
              if Hashtbl.mem seen k then false
              else (Hashtbl.add seen k (); true))
            (List.rev fields)
        in
        let fields =
          List.sort
            (fun (a, _) (b, _) -> String.compare a b)
            (List.map (fun (k, x) -> (k, of_value x)) uniq)
        in
        Rec (List.map (fun (k, ft) -> { fname = k; optional = false; ftype = ft }) fields)

  let rec merge_fields ~equiv xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> List.map (fun f -> { f with optional = true }) rest
    | (x :: xs' as xl), (y :: ys' as yl) ->
        let c = String.compare x.fname y.fname in
        if c = 0 then
          { fname = x.fname;
            optional = x.optional || y.optional;
            ftype = merge_canonical ~equiv x.ftype y.ftype }
          :: merge_fields ~equiv xs' ys'
        else if c < 0 then { x with optional = true } :: merge_fields ~equiv xs' yl
        else { y with optional = true } :: merge_fields ~equiv xl ys'

  and same_labels xs ys =
    List.length xs = List.length ys
    && List.for_all2 (fun x y -> String.equal x.fname y.fname) xs ys

  and fuse ~equiv a b =
    match (a, b) with
    | Any, _ | _, Any -> Some Any
    | Null, Null -> Some Null
    | Bool, Bool -> Some Bool
    | Int, Int -> Some Int
    | Str, Str -> Some Str
    | (Num | Int), (Num | Int) -> Some Num
    | Arr x, Arr y -> Some (Arr (merge_canonical ~equiv x y))
    | Rec xs, Rec ys -> (
        match (equiv : Merge.equiv) with
        | Kind -> Some (Rec (merge_fields ~equiv xs ys))
        | Label ->
            if same_labels xs ys then Some (Rec (merge_fields ~equiv xs ys))
            else None)
    | _ -> None

  and insert ~equiv branch acc =
    let rec go seen = function
      | [] -> List.rev (branch :: seen)
      | candidate :: rest -> (
          match fuse ~equiv candidate branch with
          | Some fused -> insert ~equiv fused (List.rev_append seen rest)
          | None -> go (candidate :: seen) rest)
    in
    go [] acc

  and merge_canonical ~equiv a b =
    let branches = function Union ts -> ts | Bot -> [] | t -> [ t ] in
    union
      (List.fold_left (fun acc t -> insert ~equiv t acc) [] (branches a @ branches b))

  and push_down ~equiv t =
    match t with
    | Bot | Null | Bool | Int | Num | Str | Any -> t
    | Arr x -> Arr (simplify ~equiv x)
    | Rec fields ->
        Rec (List.map (fun f -> { f with ftype = simplify ~equiv f.ftype }) fields)
    | Union ts -> union (List.map (push_down ~equiv) ts)

  and simplify ~equiv t =
    match t with
    | Union ts ->
        let ts = List.map (push_down ~equiv) ts in
        union (List.fold_left (fun acc t -> insert ~equiv t acc) [] ts)
    | t -> push_down ~equiv t

  let merge_all ~equiv = function
    | [] -> Bot
    | t :: ts ->
        List.fold_left
          (fun acc t -> merge_canonical ~equiv acc (simplify ~equiv t))
          (simplify ~equiv t) ts

  let rec to_string t =
    match t with
    | Bot -> "Bot"
    | Null -> "Null"
    | Bool -> "Bool"
    | Int -> "Int"
    | Num -> "Num"
    | Str -> "Str"
    | Any -> "Any"
    | Arr Bot -> "[]"
    | Arr t -> "[" ^ to_string t ^ "]"
    | Rec fields ->
        let f { fname; optional; ftype } =
          Printf.sprintf "%s%s: %s" fname (if optional then "?" else "")
            (to_string ftype)
        in
        "{" ^ String.concat ", " (List.map f fields) ^ "}"
    | Union ts -> String.concat " + " (List.map to_string_atom ts)

  and to_string_atom t =
    match t with Union _ -> "(" ^ to_string t ^ ")" | _ -> to_string t
end

(* --- generators (same shape as test_jtype's) ---------------------------- *)

let gen_value = QCheck2.Gen.(
  let scalar =
    oneof
      [ return Json.Value.Null;
        map (fun b -> Json.Value.Bool b) bool;
        map (fun n -> Json.Value.Int n) (int_range (-100) 100);
        map (fun f -> Json.Value.Float f) (float_range (-100.) 100.);
        map (fun s -> Json.Value.String s) (string_size ~gen:(char_range 'a' 'e') (int_range 0 3));
      ]
  in
  let key = string_size ~gen:(char_range 'a' 'd') (return 1) in
  sized @@ fix (fun self n ->
      if n <= 0 then scalar
      else
        frequency
          [ (3, scalar);
            (1, map (fun vs -> Json.Value.Array vs) (list_size (int_range 0 3) (self (n / 2))));
            (1,
             map
               (fun fields ->
                 let seen = Hashtbl.create 4 in
                 Json.Value.Object
                   (List.filter
                      (fun (k, _) ->
                        if Hashtbl.mem seen k then false
                        else (Hashtbl.add seen k (); true))
                      fields))
               (list_size (int_range 0 3) (pair key (self (n / 2)))));
          ]))

let gen_equiv = QCheck2.Gen.oneofl [ Merge.Kind; Merge.Label ]

(* --- oracle properties --------------------------------------------------- *)

let prop_oracle_merge =
  QCheck2.Test.make ~name:"kernel merge == seed merge (oracle)" ~count:500
    QCheck2.Gen.(pair gen_equiv (list_size (int_range 0 12) gen_value))
    (fun (equiv, vs) ->
      let kernel =
        Types.to_string (Merge.merge_all ~equiv (List.map Types.of_value vs))
      in
      let seed =
        Seed.to_string (Seed.merge_all ~equiv (List.map Seed.of_value vs))
      in
      String.equal kernel seed)

let prop_oracle_memo_off =
  (* the memo caches change cost, never results *)
  QCheck2.Test.make ~name:"memoized merge == unmemoized merge" ~count:300
    QCheck2.Gen.(pair gen_equiv (list_size (int_range 0 10) gen_value))
    (fun (equiv, vs) ->
      let ts () = List.map Types.of_value vs in
      let memoized = Merge.merge_all ~equiv (ts ()) in
      Merge.set_memoize false;
      let plain =
        Fun.protect
          ~finally:(fun () -> Merge.set_memoize true)
          (fun () -> Merge.merge_all ~equiv (ts ()))
      in
      memoized == plain)

let prop_hash_structural =
  QCheck2.Test.make ~name:"hash is structural" ~count:300
    QCheck2.Gen.(pair gen_value gen_value)
    (fun (a, b) ->
      let ta = Types.of_value a and tb = Types.of_value b in
      (Types.hash ta = Types.hash tb || not (Types.equal ta tb))
      && Types.hash ta = Types.hash (Types.of_value a))

(* --- physical sharing ---------------------------------------------------- *)

let docs_of src =
  List.map Json.Parser.parse_exn (String.split_on_char '\n' (String.trim src))

let sample_docs =
  docs_of
    {|{"id": 1, "tags": ["a", "b"], "meta": {"lang": "en"}}
{"id": 2, "tags": [], "meta": {"lang": "fr"}}
{"id": 3.5, "tags": ["c"], "meta": {"lang": "en"}, "extra": null}
{"id": 4, "tags": ["a"], "meta": {"lang": "de"}}|}

let test_interning_shares () =
  let v = List.hd sample_docs in
  Alcotest.(check bool) "of_value is physically stable" true
    (Types.of_value v == Types.of_value v);
  let t1 = Merge.merge_all ~equiv:Merge.Kind (List.map Types.of_value sample_docs) in
  let t2 = Merge.merge_all ~equiv:Merge.Kind (List.map Types.of_value sample_docs) in
  Alcotest.(check bool) "re-inference returns the same node" true (t1 == t2);
  (match Types.of_json (Types.to_json t1) with
   | Ok t3 ->
       Alcotest.(check bool) "json round-trip re-interns to the same node" true
         (t1 == t3)
   | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "distinct structures stay distinct" false
    (Types.of_value (List.hd sample_docs)
    == Types.of_value (List.nth sample_docs 1))

let test_ids_and_hashes () =
  let t = Types.of_value (List.hd sample_docs) in
  Alcotest.(check int) "id stable across re-interning" (Types.id t)
    (Types.id (Types.of_value (List.hd sample_docs)));
  Alcotest.(check bool) "scalars are global singletons" true
    (Types.int == Types.int && Types.of_value (Json.Value.Int 7) == Types.int)

(* --- cache determinism under sharding ------------------------------------ *)

let determinism_corpus =
  let st = Datagen.rng ~seed:4242 in
  Datagen.heterogeneous st ~heterogeneity:0.8 600

let test_jobs_determinism () =
  List.iter
    (fun equiv ->
      let results =
        List.map
          (fun jobs ->
            Types.to_string (Core.Parallel.infer_type ~equiv ~jobs determinism_corpus))
          [ 1; 4; 8 ]
      in
      match results with
      | [ r1; r4; r8 ] ->
          Alcotest.(check string) "jobs 4 == jobs 1" r1 r4;
          Alcotest.(check string) "jobs 8 == jobs 1" r1 r8
      | _ -> assert false)
    [ Merge.Kind; Merge.Label ]

let test_warm_cache_determinism () =
  (* a warm memo cache must not perturb results: run the same inference
     repeatedly and against a freshly cleared cache *)
  let run () =
    Types.to_string
      (Core.Parallel.infer_type ~equiv:Merge.Label ~jobs:1 determinism_corpus)
  in
  let cold = (Merge.clear_caches (); run ()) in
  let warm = run () in
  let warm2 = run () in
  Alcotest.(check string) "warm == cold" cold warm;
  Alcotest.(check string) "warm is stable" warm warm2;
  Alcotest.(check bool) "cache grew" true (Merge.cache_size () > 0)

(* --- float print/parse round-trips --------------------------------------- *)

let test_float_roundtrip () =
  let cases =
    [ ("-0.0", -0.0);
      ("1e21", 1e21);
      ("1e-21", 1e-21);
      ("0.1", 0.1);
      ("0.30000000000000004", 0.1 +. 0.2);           (* 17 significant digits *)
      ("2.2250738585072014e-308", 2.2250738585072014e-308);
      ("5e-324", 5e-324);                             (* smallest denormal *)
      ("1.7976931348623157e308", Float.max_float);
      ("9007199254740993.0", 9007199254740993.0);
      ("123456789.123456789", 123456789.123456789) ]
  in
  List.iter
    (fun (name, f) ->
      let printed = Json.Printer.to_string (Json.Value.Float f) in
      match Json.Parser.parse_exn printed with
      | Json.Value.Float g ->
          Alcotest.(check int64)
            (Printf.sprintf "%s (printed %s) bit-exact" name printed)
            (Int64.bits_of_float f) (Int64.bits_of_float g)
      | other ->
          Alcotest.failf "%s reparsed as %s" name (Json.Printer.to_string other))
    cases;
  (* -0.0 must keep its sign through the printer *)
  Alcotest.(check string) "-0.0 prints with its sign" "-0.0"
    (Json.Printer.to_string (Json.Value.Float (-0.0)))

let prop_float_roundtrip =
  QCheck2.Test.make ~name:"random float round-trips bit-exactly" ~count:1000
    QCheck2.Gen.float
    (fun f ->
      (not (Float.is_finite f))
      ||
      match Json.Parser.parse_exn (Json.Printer.to_string (Json.Value.Float f)) with
      | Json.Value.Float g -> Int64.bits_of_float f = Int64.bits_of_float g
      | Json.Value.Int n -> float_of_int n = f
      | _ -> false)

(* --- kernel equal/compare laws ------------------------------------------- *)

let test_equal_is_structural () =
  let a = Types.union [ Types.int; Types.str; Types.arr Types.num ] in
  let b = Types.union [ Types.arr Types.num; Types.str; Types.int ] in
  Alcotest.(check ty) "union order canonical" a b;
  Alcotest.(check bool) "physically shared" true (a == b);
  Alcotest.(check int) "compare 0" 0 (Types.compare a b)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "kernel"
    [ ("oracle",
       q [ prop_oracle_merge; prop_oracle_memo_off; prop_hash_structural ]);
      ("sharing",
       [ Alcotest.test_case "interning shares" `Quick test_interning_shares;
         Alcotest.test_case "ids and hashes" `Quick test_ids_and_hashes;
         Alcotest.test_case "equal is structural" `Quick test_equal_is_structural ]);
      ("determinism",
       [ Alcotest.test_case "jobs 1/4/8" `Quick test_jobs_determinism;
         Alcotest.test_case "warm cache" `Quick test_warm_cache_determinism ]);
      ("floats",
       Alcotest.test_case "pinned round-trips" `Quick test_float_roundtrip
       :: q [ prop_float_roundtrip ]) ]
