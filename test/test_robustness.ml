(* Failure-injection / fuzz tests: every component must fail *cleanly*
   (Error results, never exceptions or hangs) on corrupted input.

   The whole suite is deterministic under plain [dune runtest]: properties
   run from a fixed seed (echoed below, overridable with QCHECK_SEED), and
   FUZZ_COUNT=<n> rescales every property's case count for longer runs. *)

let fuzz_seed =
  match Option.bind (Sys.getenv_opt "QCHECK_SEED") int_of_string_opt with
  | Some s -> s
  | None -> 20250806

let count base =
  match Option.bind (Sys.getenv_opt "FUZZ_COUNT") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> base

let gen_value : Json.Value.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let scalar =
    oneof
      [ return Json.Value.Null;
        map (fun b -> Json.Value.Bool b) bool;
        map (fun n -> Json.Value.Int n) (int_range (-1000) 1000);
        map (fun f -> Json.Value.Float f) (float_range (-1e6) 1e6);
        map (fun s -> Json.Value.String s) (string_size ~gen:printable (int_range 0 10));
      ]
  in
  let key = string_size ~gen:(char_range 'a' 'z') (int_range 1 5) in
  sized @@ fix (fun self n ->
      if n <= 0 then scalar
      else
        frequency
          [ (3, scalar);
            (1, map (fun vs -> Json.Value.Array vs) (list_size (int_range 0 4) (self (n / 2))));
            (1,
             map
               (fun fields ->
                 let seen = Hashtbl.create 4 in
                 Json.Value.Object
                   (List.filter
                      (fun (k, _) ->
                        if Hashtbl.mem seen k then false
                        else (Hashtbl.add seen k (); true))
                      fields))
               (list_size (int_range 0 4) (pair key (self (n / 2)))));
          ])

(* corrupt a valid JSON text: mutate / delete / insert random bytes *)
let gen_corruption_of (gen_src : string QCheck2.Gen.t) : string QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* src = gen_src in
  let* n_edits = int_range 1 4 in
  let* edits =
    list_size (return n_edits)
      (triple (int_range 0 (max 0 (String.length src - 1))) (int_range 0 2)
         (map Char.chr (int_range 0 255)))
  in
  return
    (List.fold_left
       (fun s (pos, kind, c) ->
         if String.length s = 0 then s
         else
           let pos = pos mod String.length s in
           match kind with
           | 0 -> (* mutate *)
               String.mapi (fun i ch -> if i = pos then c else ch) s
           | 1 -> (* delete *)
               String.sub s 0 pos ^ String.sub s (pos + 1) (String.length s - pos - 1)
           | _ -> (* insert *)
               String.sub s 0 pos ^ String.make 1 c ^ String.sub s pos (String.length s - pos))
       src edits)

let gen_corrupted : string QCheck2.Gen.t =
  gen_corruption_of (QCheck2.Gen.map Json.Printer.to_string gen_value)

let prop_parser_total =
  QCheck2.Test.make ~name:"parser never raises on corrupted input" ~count:(count 1000)
    gen_corrupted (fun src ->
      match Json.Parser.parse src with Ok _ | Error _ -> true)

let prop_stream_total =
  QCheck2.Test.make ~name:"stream reader never raises" ~count:(count 1000) gen_corrupted
    (fun src ->
      let r = Json.Stream.reader src in
      let rec drain n =
        if n > 100000 then true (* would be a hang; bound it *)
        else
          match Json.Stream.read r with
          | Ok None -> true
          | Ok (Some _) -> drain (n + 1)
          | Error _ -> true
      in
      drain 0)

let prop_parse_many_total =
  QCheck2.Test.make ~name:"parse_many never raises" ~count:(count 500) gen_corrupted
    (fun src -> match Json.Parser.parse_many src with Ok _ | Error _ -> true)

let prop_index_never_raises =
  QCheck2.Test.make ~name:"structural index never raises" ~count:(count 500) gen_corrupted
    (fun src ->
      let idx = Fastjson.Structural_index.build src in
      ignore (Fastjson.Structural_index.colons idx ~level:1 ~lo:0 ~hi:(String.length src));
      true)

let prop_mison_total =
  QCheck2.Test.make ~name:"mison projection never raises" ~count:(count 500) gen_corrupted
    (fun src ->
      let t = Fastjson.Mison.create { Fastjson.Mison.fields = [ "a"; "id" ] } in
      match Fastjson.Mison.parse_string t src with Ok _ | Error _ -> true)

let prop_fadjs_total =
  QCheck2.Test.make ~name:"fadjs decode never raises" ~count:(count 500) gen_corrupted
    (fun src ->
      let d = Fastjson.Fadjs.create () in
      match Fastjson.Fadjs.decode d src with
      | Ok doc ->
          ignore (Fastjson.Fadjs.get doc "a");
          ignore (Fastjson.Fadjs.materialize doc);
          true
      | Error _ -> true)

let prop_schema_parse_total =
  QCheck2.Test.make ~name:"schema parser never raises on arbitrary JSON" ~count:(count 500)
    gen_value (fun v ->
      match Jsonschema.Parse.of_json v with Ok _ | Error _ -> true)

let prop_jsound_parse_total =
  QCheck2.Test.make ~name:"jsound parser never raises on arbitrary JSON" ~count:(count 500)
    gen_value (fun v -> match Jsound.parse v with Ok _ | Error _ -> true)

let prop_pointer_total =
  QCheck2.Test.make ~name:"pointer parse/get never raises" ~count:(count 500)
    QCheck2.Gen.(pair (string_size ~gen:printable (int_range 0 15)) gen_value)
    (fun (s, v) ->
      match Json.Pointer.parse s with
      | Ok p ->
          ignore (Json.Pointer.get p v);
          true
      | Error _ -> true)

let prop_query_parse_total =
  QCheck2.Test.make ~name:"query parser never raises" ~count:(count 500)
    QCheck2.Gen.(string_size ~gen:printable (int_range 0 40))
    (fun src -> match Query.Parse.pipeline src with Ok _ | Error _ -> true)

let prop_avro_decode_total =
  QCheck2.Test.make ~name:"avro decode never raises on garbage" ~count:(count 500)
    QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 40))
    (fun bytes ->
      let schema =
        Translate.Avro.of_jtype ~name:"r"
          (Jtype.Types.rec_
             [ Jtype.Types.field "a" Jtype.Types.int;
               Jtype.Types.field ~optional:true "b"
                 (Jtype.Types.arr Jtype.Types.str) ])
      in
      match Translate.Avro.decode schema bytes with Ok _ | Error _ -> true)

let prop_columnar_decode_total =
  QCheck2.Test.make ~name:"columnar decode never raises on garbage" ~count:(count 500)
    QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 40))
    (fun bytes ->
      let schema = Inference.Spark.infer [ Json.Parser.parse_exn {|{"a": 1, "xs": ["s"]}|} ] in
      match Translate.Columnar.decode ~schema bytes with Ok _ | Error _ -> true)

(* round-trip under valid inputs is exercised elsewhere; here make sure the
   validator is total on (schema, instance) pairs drawn independently *)
let prop_validate_total =
  QCheck2.Test.make ~name:"validator total on arbitrary schema/instance pairs"
    ~count:(count 500)
    QCheck2.Gen.(pair gen_value gen_value)
    (fun (schema, instance) ->
      match Jsonschema.Validate.validate ~root:schema instance with
      | Ok () | Error _ -> true)

(* --- schema-vocabulary fuzz ------------------------------------------- *)

(* Schema-shaped JSON (rather than arbitrary values): real keywords with
   plausible and malformed operands, plus [$ref]s pointing at targets that
   may or may not exist. Exercises [Invalid_ref] containment and keyword
   operand validation in the same sweep. *)
let gen_schema : Json.Value.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let open Json.Value in
  let type_name =
    oneofl [ "null"; "boolean"; "integer"; "number"; "string"; "array"; "object"; "bogus" ]
  in
  let ref_target =
    oneofl
      [ "#"; "#/definitions/a"; "#/definitions/missing"; "#/properties/a";
        "#/nope/3"; "not-a-pointer"; "#/definitions/a/~2"; "#/" ]
  in
  let key = string_size ~gen:(char_range 'a' 'c') (int_range 1 2) in
  sized @@ fix (fun self n ->
      let sub = self (n / 2) in
      let leaf =
        oneof
          [ map (fun t -> Object [ ("type", String t) ]) type_name;
            map (fun r -> Object [ ("$ref", String r) ]) ref_target;
            map (fun k -> Object [ ("required", Array [ String k ]) ]) key;
            map (fun i -> Object [ ("minimum", Int i) ]) (int_range (-5) 5);
            map (fun i -> Object [ ("minLength", Int i) ]) (int_range (-2) 5);
            map
              (fun vs -> Object [ ("enum", Array vs) ])
              (list_size (int_range 0 3) (map (fun i -> Int i) (int_range 0 9)));
            (* malformed operands: keywords whose value has the wrong shape *)
            return (Object [ ("properties", Array [ Int 1 ]) ]);
            return (Object [ ("items", String "not a schema") ]);
            return (Object [ ("required", Int 3) ]);
          ]
      in
      if n <= 0 then leaf
      else
        frequency
          [ (3, leaf);
            (1,
             map2
               (fun k s ->
                 Object [ ("properties", Object [ (k, s) ]); ("required", Array [ String k ]) ])
               key sub);
            (1, map (fun s -> Object [ ("items", s) ]) sub);
            (1, map (fun ss -> Object [ ("anyOf", Array ss) ]) (list_size (int_range 1 3) sub));
            (1, map (fun ss -> Object [ ("allOf", Array ss) ]) (list_size (int_range 1 3) sub));
            (1,
             map2
               (fun k s ->
                 Object
                   [ ("definitions", Object [ (k, s) ]);
                     ("$ref", String ("#/definitions/" ^ k)) ])
               key sub);
          ])

let prop_validate_schema_vocab =
  QCheck2.Test.make
    ~name:"validator total on schema-vocabulary roots (incl. bogus $refs)"
    ~count:(count 500)
    QCheck2.Gen.(pair gen_schema gen_value)
    (fun (schema, instance) ->
      match Jsonschema.Validate.validate ~root:schema instance with
      | Ok () | Error _ -> true)

let prop_corrupted_schema_total =
  (* corrupt the *text* of a schema document; whatever still parses as JSON
     must flow through schema parsing and validation without an exception *)
  QCheck2.Test.make ~name:"corrupted schema text never raises" ~count:(count 500)
    QCheck2.Gen.(pair (gen_corruption_of (map Json.Printer.to_string gen_schema)) gen_value)
    (fun (text, instance) ->
      match Json.Parser.parse text with
      | Error _ -> true
      | Ok root -> (
          (match Jsonschema.Parse.of_json root with Ok _ | Error _ -> ());
          match Jsonschema.Validate.validate ~root instance with
          | Ok () | Error _ -> true))

(* --- resilient ingestion fuzz ------------------------------------------ *)

let gen_corrupted_ndjson : string QCheck2.Gen.t =
  let open QCheck2.Gen in
  map (String.concat "\n") (list_size (int_range 0 6) gen_corrupted)

let prop_resilient_ingest_total =
  QCheck2.Test.make ~name:"resilient ingest total + accounting consistent"
    ~count:(count 500) gen_corrupted_ndjson
    (fun text ->
      let r = Core.Resilient.ingest text in
      List.length r.Core.Resilient.docs = r.Core.Resilient.report.Core.Resilient.ok
      && List.length r.Core.Resilient.dead
         = r.Core.Resilient.report.Core.Resilient.quarantined
           + r.Core.Resilient.report.Core.Resilient.budget_killed)

let prop_resilient_project_total =
  QCheck2.Test.make ~name:"resilient mison projection total" ~count:(count 500)
    gen_corrupted_ndjson
    (fun text ->
      let p = Core.Resilient.project ~fields:[ "a"; "id" ] text in
      List.length p.Core.Resilient.rows
      = p.Core.Resilient.proj_report.Core.Resilient.ok)

let prop_mison_parse_line_total =
  QCheck2.Test.make ~name:"mison parse_line (degradation path) never raises"
    ~count:(count 500) gen_corrupted
    (fun src ->
      let t = Fastjson.Mison.create { Fastjson.Mison.fields = [ "a"; "id" ] } in
      match Fastjson.Mison.parse_line t src with Ok _ | Error _ -> true)

(* --- chaos: injected-fault accounting ---------------------------------- *)

let sample_ndjson n =
  let st = Datagen.rng ~seed:97 in
  Datagen.to_ndjson (Datagen.tweets st n)

let test_chaos_accounting () =
  let n = 200 in
  let text = sample_ndjson n in
  let o = Core.Chaos.corrupt ~seed:42 ~rate:0.3 text in
  Alcotest.(check bool) "some faults injected" true (o.Core.Chaos.injected <> []);
  Alcotest.(check int) "fault kinds sum up"
    (List.length o.Core.Chaos.injected)
    (o.Core.Chaos.corrupting + o.Core.Chaos.oversized + o.Core.Chaos.duplicated);
  (* under the default budget the oversize pad (64 KiB) fits, so exactly the
     corrupting faults quarantine and nothing is budget-killed *)
  let r = Core.Resilient.ingest o.Core.Chaos.text in
  Alcotest.(check int) "quarantined = corrupting faults" o.Core.Chaos.corrupting
    r.Core.Resilient.report.Core.Resilient.quarantined;
  Alcotest.(check int) "no budget kills" 0
    r.Core.Resilient.report.Core.Resilient.budget_killed;
  Alcotest.(check int) "survivors"
    (n - o.Core.Chaos.corrupting + o.Core.Chaos.duplicated)
    r.Core.Resilient.report.Core.Resilient.ok;
  (* a 16 KiB document budget turns every oversized record into a typed
     budget kill without disturbing the quarantine count *)
  let budget =
    { Core.Resilient.default_budget with Core.Resilient.max_doc_bytes = Some 16384 }
  in
  let rb = Core.Resilient.ingest ~budget o.Core.Chaos.text in
  Alcotest.(check int) "budget-killed = oversized faults" o.Core.Chaos.oversized
    rb.Core.Resilient.report.Core.Resilient.budget_killed;
  Alcotest.(check int) "quarantine count unchanged" o.Core.Chaos.corrupting
    rb.Core.Resilient.report.Core.Resilient.quarantined

let test_chaos_deterministic () =
  let text = sample_ndjson 50 in
  let o1 = Core.Chaos.corrupt ~seed:7 ~rate:0.25 text in
  let o2 = Core.Chaos.corrupt ~seed:7 ~rate:0.25 text in
  Alcotest.(check string) "same seed, same corruption" o1.Core.Chaos.text o2.Core.Chaos.text;
  Alcotest.(check int) "same fault count"
    (List.length o1.Core.Chaos.injected) (List.length o2.Core.Chaos.injected)

let test_chaos_mison_projection () =
  (* the fast path projects without validating the whole record, so
     corruption that doesn't touch a projected field degrades to an empty or
     partial row instead of quarantining (the strict ingester above is the
     one that must reject every corrupting fault) — but it still must
     account for every line and never reject a healthy one *)
  let n = 100 in
  let text = sample_ndjson n in
  let o = Core.Chaos.corrupt ~seed:11 ~rate:0.3 text in
  let p = Core.Resilient.project ~fields:[ "id"; "lang" ] o.Core.Chaos.text in
  let r = p.Core.Resilient.proj_report in
  Alcotest.(check int) "every line is a row or a dead letter"
    (n + o.Core.Chaos.duplicated)
    (List.length p.Core.Resilient.rows + List.length p.Core.Resilient.proj_dead);
  Alcotest.(check int) "rows = ok" r.Core.Resilient.ok (List.length p.Core.Resilient.rows);
  Alcotest.(check bool) "healthy lines never quarantined" true
    (r.Core.Resilient.quarantined + r.Core.Resilient.budget_killed
     <= o.Core.Chaos.corrupting)

let test_chaos_attribution () =
  (* every quarantine caused by an injected corrupting fault must be
     traceable back to its injection site: attribute rewrites the letter's
     cause to the site id recorded when the fault was planted *)
  let n = 200 in
  let text = sample_ndjson n in
  let o = Core.Chaos.corrupt ~seed:42 ~rate:0.3 text in
  (* 16 KiB budget: oversize faults become budget kills, so *all* three
     corrupting fault kinds produce dead letters to attribute *)
  let budget =
    { Core.Resilient.default_budget with Core.Resilient.max_doc_bytes = Some 16384 }
  in
  let r = Core.Resilient.ingest ~budget o.Core.Chaos.text in
  let dead = Core.Chaos.attribute o r.Core.Resilient.dead in
  let attributed, unattributed =
    List.partition
      (fun (d : Core.Resilient.dead_letter) ->
        String.length d.Core.Resilient.cause >= 6
        && String.sub d.Core.Resilient.cause 0 6 = "chaos:")
      dead
  in
  (* chaos is the only source of corruption here, so every letter is claimed *)
  Alcotest.(check int) "every dead letter attributed"
    (o.Core.Chaos.corrupting + o.Core.Chaos.oversized)
    (List.length attributed);
  Alcotest.(check int) "no stray letters" 0 (List.length unattributed);
  (* each claimed letter sits exactly where its fault was injected and
     names the right fault kind *)
  List.iter
    (fun (inj : Core.Chaos.injected) ->
      match inj.Core.Chaos.fault with
      | Core.Chaos.Duplicate_line -> ()
      | _ ->
          let letter =
            List.find_opt
              (fun (d : Core.Resilient.dead_letter) ->
                d.Core.Resilient.line = inj.Core.Chaos.out_line)
              attributed
          in
          (match letter with
          | None ->
              Alcotest.failf "fault %s left no dead letter" inj.Core.Chaos.site
          | Some d ->
              Alcotest.(check string) "cause = injection site"
                inj.Core.Chaos.site d.Core.Resilient.cause))
    o.Core.Chaos.injected;
  (* attribution only relabels: coordinates, errors, counts untouched *)
  Alcotest.(check int) "same letter count" (List.length r.Core.Resilient.dead)
    (List.length dead);
  List.iter2
    (fun (a : Core.Resilient.dead_letter) (b : Core.Resilient.dead_letter) ->
      Alcotest.(check int) "line" a.Core.Resilient.line b.Core.Resilient.line;
      Alcotest.(check string) "error" a.Core.Resilient.error b.Core.Resilient.error)
    r.Core.Resilient.dead dead

let test_dead_letter_attempts () =
  (* the supervisor stamps retried shards' letters with the attempt that
     finally produced them; default (unsupervised) is attempt 1 *)
  let o = Core.Chaos.corrupt ~seed:42 ~rate:0.3 (sample_ndjson 50) in
  let r1 = Core.Resilient.ingest o.Core.Chaos.text in
  let r3 = Core.Resilient.ingest ~attempt:3 o.Core.Chaos.text in
  Alcotest.(check bool) "letters exist" true (r1.Core.Resilient.dead <> []);
  List.iter
    (fun (d : Core.Resilient.dead_letter) ->
      Alcotest.(check int) "default attempt" 1 d.Core.Resilient.attempts)
    r1.Core.Resilient.dead;
  List.iter
    (fun (d : Core.Resilient.dead_letter) ->
      Alcotest.(check int) "stamped attempt" 3 d.Core.Resilient.attempts)
    r3.Core.Resilient.dead

let prop_ingest_json_roundtrip =
  (* the checkpoint journal persists ingests in this encoding; resume
     correctness rests on it being an exact inverse *)
  QCheck2.Test.make ~name:"ingest JSON round-trip exact" ~count:(count 500)
    gen_corrupted_ndjson
    (fun text ->
      let r = Core.Resilient.ingest text in
      match Core.Resilient.ingest_of_json (Core.Resilient.ingest_to_json r) with
      | Error _ -> false
      | Ok r2 ->
          Json.Printer.to_string (Core.Resilient.ingest_to_json r2)
          = Json.Printer.to_string (Core.Resilient.ingest_to_json r))

(* --- validator recursion guard ----------------------------------------- *)

let test_deep_instance_guard () =
  (* a recursive schema applied to an instance nested past [max_depth] must
     produce a normal validation error, never [Stack_overflow] *)
  let schema =
    Json.Value.Object
      [ ("items", Json.Value.Object [ ("$ref", Json.Value.String "#") ]) ]
  in
  let deep =
    let v = ref (Json.Value.Int 1) in
    for _ = 1 to 6000 do v := Json.Value.Array [ !v ] done;
    !v
  in
  match Jsonschema.Validate.validate ~root:schema deep with
  | Ok () -> Alcotest.fail "deep instance should exceed the depth bound"
  | Error errs ->
      Alcotest.(check bool) "mentions the depth bound" true
        (List.exists
           (fun e ->
             let m = e.Jsonschema.Validate.message in
             let needle = "maximum validation depth" in
             let rec has i =
               i + String.length needle <= String.length m
               && (String.sub m i (String.length needle) = needle || has (i + 1))
             in
             has 0)
           errs)

let test_deep_schema_guard () =
  (* depth can also come from the schema side (allOf consumes no instance
     input); the same bound applies *)
  let rec deep_schema n =
    if n = 0 then Json.Value.Object [ ("type", Json.Value.String "integer") ]
    else Json.Value.Object [ ("allOf", Json.Value.Array [ deep_schema (n - 1) ]) ]
  in
  match Jsonschema.Validate.validate ~root:(deep_schema 6000) (Json.Value.Int 1) with
  | Ok () | Error _ -> Alcotest.(check pass) "no exception escaped" () ()

let test_invalid_ref_contained () =
  List.iter
    (fun target ->
      let schema = Json.Value.Object [ ("$ref", Json.Value.String target) ] in
      match Jsonschema.Validate.validate ~root:schema (Json.Value.Int 1) with
      | Ok () -> Alcotest.failf "bogus ref %s should not validate" target
      | Error _ -> ())
    [ "#/definitions/missing"; "not-a-pointer"; "#/a/b/c" ]

let () =
  Printf.printf "fuzz seed %d (QCHECK_SEED overrides; FUZZ_COUNT scales case counts)\n%!"
    fuzz_seed;
  let q =
    List.map (fun t ->
        QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| fuzz_seed |]) t)
  in
  Alcotest.run "robustness"
    [ ("fuzz",
       q [ prop_parser_total; prop_stream_total; prop_parse_many_total;
           prop_index_never_raises; prop_mison_total; prop_fadjs_total;
           prop_schema_parse_total; prop_jsound_parse_total; prop_pointer_total;
           prop_query_parse_total; prop_avro_decode_total;
           prop_columnar_decode_total; prop_validate_total ]);
      ("schema-fuzz", q [ prop_validate_schema_vocab; prop_corrupted_schema_total ]);
      ("resilient-fuzz",
       q [ prop_resilient_ingest_total; prop_resilient_project_total;
           prop_mison_parse_line_total ]);
      ("chaos",
       [ Alcotest.test_case "fault accounting" `Quick test_chaos_accounting;
         Alcotest.test_case "deterministic" `Quick test_chaos_deterministic;
         Alcotest.test_case "mison fast path" `Quick test_chaos_mison_projection;
         Alcotest.test_case "fault attribution" `Quick test_chaos_attribution;
         Alcotest.test_case "dead-letter attempts" `Quick test_dead_letter_attempts ]
       @ q [ prop_ingest_json_roundtrip ]);
      ("validator-guards",
       [ Alcotest.test_case "deep instance" `Quick test_deep_instance_guard;
         Alcotest.test_case "deep schema" `Quick test_deep_schema_guard;
         Alcotest.test_case "invalid $ref contained" `Quick test_invalid_ref_contained ]);
    ]
