(* Tests for the fast parsing substrate: raw scanning, the Mison structural
   index, the projection parser with speculation, and the Fad.js speculative
   decoder. *)

let parse = Json.Parser.parse_exn
let value = Alcotest.testable Json.Printer.pp Json.Value.equal_strict

(* --- rawscan ----------------------------------------------------------- *)

let test_skip_value () =
  let check src expected_end =
    match Fastjson.Rawscan.skip_value src 0 with
    | Ok e -> Alcotest.(check int) src expected_end e
    | Error msg -> Alcotest.fail (src ^ ": " ^ msg)
  in
  check {|"abc" rest|} 5;
  check {|"a\"b" rest|} 6;
  check "12345, rest" 5;
  check "true, rest" 4;
  check "[1, [2, 3]] rest" 11;
  check {|{"a": {"b": "}"}} rest|} 17;
  check {|{"a": "[not a bracket]"} rest|} 24;
  match Fastjson.Rawscan.skip_value "[1, 2" 0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unbalanced must fail"

let test_raw_key_at () =
  let src = {|{"alpha": 1, "be\"ta" : 2}|} in
  let colon1 = String.index src ':' in
  (match Fastjson.Rawscan.raw_key_at src ~colon:colon1 with
   | Ok (k, _) -> Alcotest.(check string) "simple key" "alpha" k
   | Error m -> Alcotest.fail m);
  let colon2 = String.rindex src ':' in
  match Fastjson.Rawscan.raw_key_at src ~colon:colon2 with
  | Ok (k, _) -> Alcotest.(check string) "escaped key (raw)" {|be\"ta|} k
  | Error m -> Alcotest.fail m

(* --- structural index --------------------------------------------------- *)

let test_index_quotes_and_strings () =
  let src = {|{"a": "x:y", "b\"q": 2}|} in
  let idx = Fastjson.Structural_index.build src in
  (* the escaped quote inside the key is not structural *)
  let quotes = Fastjson.Structural_index.structural_quotes idx in
  Alcotest.(check int) "structural quotes" 6 (List.length quotes);
  (* the colon inside the string "x:y" is masked *)
  let colons = Fastjson.Structural_index.colons idx ~level:1 ~lo:0 ~hi:(String.length src) in
  Alcotest.(check int) "two structural colons" 2 (List.length colons);
  List.iter
    (fun c -> Alcotest.(check char) "colon char" ':' src.[c])
    colons

let test_index_levels () =
  let src = {|{"a": 1, "nested": {"x": 2, "y": {"deep": 3}}, "b": 4}|} in
  let idx = Fastjson.Structural_index.build ~max_level:3 src in
  let all lo hi level = Fastjson.Structural_index.colons idx ~level ~lo ~hi in
  let n = String.length src in
  Alcotest.(check int) "level 1 colons" 3 (List.length (all 0 n 1));
  Alcotest.(check int) "level 2 colons" 2 (List.length (all 0 n 2));
  Alcotest.(check int) "level 3 colons" 1 (List.length (all 0 n 3));
  (* range query restricts *)
  let nested_start = String.index_from src 1 '{' + 1 in
  Alcotest.(check bool) "range filters" true
    (List.length (all nested_start n 1) < 3)

let test_index_vs_full_parse_agreement () =
  (* index-driven field extraction agrees with the tree parser *)
  let st = Datagen.rng ~seed:41 in
  let docs = Datagen.tweets st 50 in
  List.iter
    (fun doc ->
      let src = Json.Printer.to_string doc in
      let idx = Fastjson.Structural_index.build src in
      let colons =
        Fastjson.Structural_index.colons idx ~level:1 ~lo:0 ~hi:(String.length src)
      in
      let fields_via_index =
        List.filter_map
          (fun c ->
            match Fastjson.Rawscan.raw_key_at src ~colon:c with
            | Ok (k, _) -> Some k
            | Error _ -> None)
          colons
      in
      let fields_via_parse =
        match doc with Json.Value.Object fs -> List.map fst fs | _ -> []
      in
      Alcotest.(check (list string)) "field names agree" fields_via_parse fields_via_index)
    docs

(* --- mison projection ---------------------------------------------------- *)

let test_projection_correct () =
  let t = Fastjson.Mison.create { Fastjson.Mison.fields = [ "id"; "user" ] } in
  let src = {|{"id": 7, "text": "irrelevant stuff", "user": {"name": "ann"}, "lang": "en"}|} in
  match Fastjson.Mison.parse_string t src with
  | Ok fields ->
      Alcotest.(check int) "two fields" 2 (List.length fields);
      Alcotest.check value "id" (Json.Value.Int 7) (List.assoc "id" fields);
      Alcotest.check value "user" (parse {|{"name": "ann"}|}) (List.assoc "user" fields)
  | Error msg -> Alcotest.fail msg

let test_projection_missing_field () =
  let t = Fastjson.Mison.create { Fastjson.Mison.fields = [ "nope" ] } in
  match Fastjson.Mison.parse_string t {|{"id": 1}|} with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "should find nothing"
  | Error msg -> Alcotest.fail msg

let test_projection_agrees_with_parser () =
  let st = Datagen.rng ~seed:43 in
  let docs = Datagen.tweets st 100 in
  let text = Datagen.to_ndjson docs in
  let fields = [ "id"; "lang"; "retweet_count" ] in
  match Fastjson.Mison.project_ndjson { Fastjson.Mison.fields } text with
  | Error msg -> Alcotest.fail msg
  | Ok rows ->
      Alcotest.(check int) "row count" (List.length docs) (List.length rows);
      List.iter2
        (fun doc row ->
          List.iter
            (fun f ->
              let expected = Json.Value.member f doc in
              let got = List.assoc_opt f row in
              Alcotest.(check (option value)) f expected got)
            fields)
        docs rows

let test_speculation_learns () =
  (* fixed field order: after the first record, every projected field should
     be found at its predicted ordinal *)
  let st = Datagen.rng ~seed:47 in
  let docs = Datagen.events st ~fields:20 300 in
  let text = Datagen.to_ndjson docs in
  match
    Fastjson.Mison.project_ndjson_with_stats { Fastjson.Mison.fields = [ "f3"; "f17" ] } text
  with
  | Error msg -> Alcotest.fail msg
  | Ok (_, s) ->
      Alcotest.(check int) "records" 300 s.Fastjson.Mison.records;
      Alcotest.(check bool)
        (Printf.sprintf "speculation hits (%d) dominate" s.Fastjson.Mison.speculative_hits)
        true
        (s.Fastjson.Mison.speculative_hits >= 2 * 299);
      Alcotest.(check bool)
        (Printf.sprintf "few fallbacks (%d)" s.Fastjson.Mison.fallback_scans)
        true
        (s.Fastjson.Mison.fallback_scans <= 2)


let test_nested_projection () =
  let t = Fastjson.Mison.create { Fastjson.Mison.fields = [ "user.name"; "id"; "user.stats.score" ] } in
  let src =
    {|{"id": 5, "pad": "xxxxxxxxxxxxxxxxxxxx",
       "user": {"bio": "ignore: me", "name": "ann", "stats": {"level": 2, "score": 99}},
       "tail": [1,2,3]}|}
  in
  (* index must be deep enough for the deepest path *)
  let idx = Fastjson.Structural_index.build ~max_level:3 src in
  match Fastjson.Mison.parse_record t idx ~lo:0 ~hi:(String.length src) with
  | Error m -> Alcotest.fail m
  | Ok fields ->
      Alcotest.(check (option value)) "id" (Some (Json.Value.Int 5))
        (List.assoc_opt "id" fields);
      Alcotest.(check (option value)) "user.name" (Some (Json.Value.String "ann"))
        (List.assoc_opt "user.name" fields);
      Alcotest.(check (option value)) "user.stats.score" (Some (Json.Value.Int 99))
        (List.assoc_opt "user.stats.score" fields);
      Alcotest.(check int) "nothing else" 3 (List.length fields)

let test_nested_projection_agrees () =
  let st = Datagen.rng ~seed:71 in
  let docs = Datagen.tweets st 80 in
  let t = Fastjson.Mison.create { Fastjson.Mison.fields = [ "user.screen_name"; "lang" ] } in
  List.iter
    (fun doc ->
      let src = Json.Printer.to_string doc in
      let idx = Fastjson.Structural_index.build ~max_level:2 src in
      match Fastjson.Mison.parse_record t idx ~lo:0 ~hi:(String.length src) with
      | Error m -> Alcotest.fail m
      | Ok fields ->
          let expected =
            Option.bind (Json.Value.member "user" doc) (Json.Value.member "screen_name")
          in
          Alcotest.(check (option value)) "user.screen_name" expected
            (List.assoc_opt "user.screen_name" fields))
    docs

let test_fallback_rescues_escaped_keys () =
  (* a key written a denotes the name a after unescaping, but the raw
     colon scanner compares the escaped byte form and silently misses the
     field; the degradation policy must detect the incomplete projection and
     rescue the record with the full parser *)
  let lines =
    [ {|{"a": 1, "b": "x"}|};
      {|{"\u0061": 2, "b": "y"}|};
      {|{"a": 3, "b": "z"}|} ]
  in
  let t = Fastjson.Mison.create { Fastjson.Mison.fields = [ "a" ] } in
  List.iteri
    (fun i line ->
      let expected =
        match Json.Value.member "a" (Json.Parser.parse_exn line) with
        | Some v -> [ ("a", v) ]
        | None -> []
      in
      match Fastjson.Mison.parse_line t line with
      | Error m -> Alcotest.fail m
      | Ok row ->
          Alcotest.check value
            (Printf.sprintf "line %d matches full parse" (i + 1))
            (Json.Value.Object expected) (Json.Value.Object row))
    lines;
  let s = Fastjson.Mison.stats t in
  Alcotest.(check int) "exactly the escaped record fell back" 1
    s.Fastjson.Mison.full_parse_fallbacks;
  Alcotest.(check int) "all records counted" 3 s.Fastjson.Mison.records

let test_fallback_respects_budget () =
  (* the rescue path runs under the caller's parser options, so ingestion
     budgets still bound the full re-parse: when the budget kills the rescue
     of an escaped-key record, the fast path's (empty) projection stands
     rather than becoming a hard failure; both paths failing is an error *)
  let t = Fastjson.Mison.create { Fastjson.Mison.fields = [ "a" ] } in
  let options = { Json.Parser.default_options with Json.Parser.max_nodes = Some 2 } in
  (match Fastjson.Mison.parse_line ~options t {|{"\u0061": [1, 2, 3]}|} with
   | Ok row -> Alcotest.(check int) "fast-path projection kept" 0 (List.length row)
   | Error m -> Alcotest.failf "degradation should not hard-fail: %s" m);
  match Fastjson.Mison.parse_line ~options t {|{"a": oops}|} with
  | Ok _ -> Alcotest.fail "malformed record should fail both paths"
  | Error _ -> ()

(* --- fadjs ---------------------------------------------------------------- *)

let test_fadjs_lazy_and_deopt () =
  let d = Fastjson.Fadjs.create () in
  let src = {|{"a": 1, "b": {"big": [1,2,3]}, "c": "s"}|} in
  (match Fastjson.Fadjs.decode d src with
   | Error m -> Alcotest.fail m
   | Ok doc ->
       (* nothing profiled: everything skipped *)
       let s = Fastjson.Fadjs.stats d in
       Alcotest.(check int) "skipped all" 3 s.Fastjson.Fadjs.skipped_fields;
       Alcotest.(check int) "eager none" 0 s.Fastjson.Fadjs.eager_fields;
       (* access deoptimizes *)
       Alcotest.(check (option value)) "a" (Some (Json.Value.Int 1))
         (Fastjson.Fadjs.get doc "a");
       let s = Fastjson.Fadjs.stats d in
       Alcotest.(check int) "one deopt" 1 s.Fastjson.Fadjs.deopts;
       (* second access hits the cached parse *)
       ignore (Fastjson.Fadjs.get doc "a");
       Alcotest.(check int) "still one deopt" 1 (Fastjson.Fadjs.stats d).Fastjson.Fadjs.deopts);
  (* the profile learned "a": next decode parses it eagerly *)
  match Fastjson.Fadjs.decode d src with
  | Error m -> Alcotest.fail m
  | Ok doc2 ->
      let s = Fastjson.Fadjs.stats d in
      Alcotest.(check int) "eager after learning" 1 s.Fastjson.Fadjs.eager_fields;
      ignore (Fastjson.Fadjs.get doc2 "a");
      Alcotest.(check int) "no new deopt" 1 (Fastjson.Fadjs.stats d).Fastjson.Fadjs.deopts

let test_fadjs_matches_parser () =
  let st = Datagen.rng ~seed:53 in
  let docs = Datagen.tweets st 50 in
  let d = Fastjson.Fadjs.create ~eager:[ "id" ] () in
  List.iter
    (fun doc ->
      let src = Json.Printer.to_string doc in
      match Fastjson.Fadjs.decode d src with
      | Error m -> Alcotest.fail m
      | Ok lazy_doc ->
          Alcotest.check value "materialize = parse" doc
            (Fastjson.Fadjs.materialize lazy_doc);
          Alcotest.(check (option value)) "get user.name"
            (Json.Value.member "user" doc
            |> Option.map (fun u -> Option.get (Json.Value.member "name" u)))
            (Fastjson.Fadjs.get_path lazy_doc [ "user"; "name" ]))
    docs

let test_fadjs_stable_pattern_no_deopts () =
  let st = Datagen.rng ~seed:59 in
  let docs = Datagen.events st ~fields:12 200 in
  let d = Fastjson.Fadjs.create ~eager:[ "f1" ] () in
  List.iter
    (fun doc ->
      let src = Json.Printer.to_string doc in
      match Fastjson.Fadjs.decode d src with
      | Error m -> Alcotest.fail m
      | Ok lazy_doc -> ignore (Fastjson.Fadjs.get lazy_doc "f1"))
    docs;
  let s = Fastjson.Fadjs.stats d in
  Alcotest.(check int) "no deopts on stable pattern" 0 s.Fastjson.Fadjs.deopts;
  Alcotest.(check int) "eager each time" 200 s.Fastjson.Fadjs.eager_fields

let test_fadjs_rejects_non_objects () =
  let d = Fastjson.Fadjs.create () in
  match Fastjson.Fadjs.decode d "[1,2]" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "arrays are not Fad.js documents"

let () =
  Alcotest.run "fastjson"
    [ ("rawscan",
       [ Alcotest.test_case "skip_value" `Quick test_skip_value;
         Alcotest.test_case "raw_key_at" `Quick test_raw_key_at ]);
      ("index",
       [ Alcotest.test_case "quotes & string mask" `Quick test_index_quotes_and_strings;
         Alcotest.test_case "leveled colons" `Quick test_index_levels;
         Alcotest.test_case "agrees with parser" `Quick test_index_vs_full_parse_agreement ]);
      ("mison",
       [ Alcotest.test_case "projection" `Quick test_projection_correct;
         Alcotest.test_case "missing field" `Quick test_projection_missing_field;
         Alcotest.test_case "agrees with parser" `Quick test_projection_agrees_with_parser;
         Alcotest.test_case "speculation learns" `Quick test_speculation_learns;
         Alcotest.test_case "nested projection" `Quick test_nested_projection;
         Alcotest.test_case "nested agrees with parser" `Quick test_nested_projection_agrees;
         Alcotest.test_case "fallback rescues escaped keys" `Quick test_fallback_rescues_escaped_keys;
         Alcotest.test_case "fallback respects budget" `Quick test_fallback_respects_budget ]);
      ("fadjs",
       [ Alcotest.test_case "lazy + deopt" `Quick test_fadjs_lazy_and_deopt;
         Alcotest.test_case "matches parser" `Quick test_fadjs_matches_parser;
         Alcotest.test_case "stable pattern" `Quick test_fadjs_stable_pattern_no_deopts;
         Alcotest.test_case "rejects non-objects" `Quick test_fadjs_rejects_non_objects ]);
    ]
