(* Tests for schema-driven translation: Avro-like binary rows, Parquet-like
   columnar shredding, CSV export. *)

let parse = Json.Parser.parse_exn
let value = Alcotest.testable Json.Printer.pp Json.Value.equal

(* null and absent-optional collapse in translation targets; compare after
   normalizing both sides by dropping null-valued fields *)
let rec drop_nulls (v : Json.Value.t) : Json.Value.t =
  match v with
  | Json.Value.Object fields ->
      Json.Value.Object
        (List.filter_map
           (fun (k, x) ->
             match x with
             | Json.Value.Null -> None
             | _ -> Some (k, drop_nulls x))
           fields)
  | Json.Value.Array vs -> Json.Value.Array (List.map drop_nulls vs)
  | _ -> v

let check_equiv name expected actual =
  Alcotest.check value name (drop_nulls expected) (drop_nulls actual)

(* --- varints ---------------------------------------------------------- *)

let test_zigzag () =
  List.iter
    (fun n ->
      Alcotest.(check int) (string_of_int n) n (Translate.Avro.unzigzag (Translate.Avro.zigzag n)))
    [ 0; 1; -1; 2; -2; 1000; -1000; max_int / 2; -(max_int / 2) ];
  Alcotest.(check int) "zigzag 0" 0 (Translate.Avro.zigzag 0);
  Alcotest.(check int) "zigzag -1" 1 (Translate.Avro.zigzag (-1));
  Alcotest.(check int) "zigzag 1" 2 (Translate.Avro.zigzag 1)

let test_varint_roundtrip () =
  List.iter
    (fun n ->
      let buf = Buffer.create 8 in
      Translate.Avro.write_varint buf n;
      match Translate.Avro.read_varint (Buffer.contents buf) 0 with
      | Ok (m, stop) ->
          Alcotest.(check int) (string_of_int n) n m;
          Alcotest.(check int) "consumed all" (Buffer.length buf) stop
      | Error e -> Alcotest.fail e)
    [ 0; 1; 127; 128; 300; 16384; 1_000_000_000 ]

(* --- avro -------------------------------------------------------------- *)

let tweet_type docs = Inference.Parametric.infer ~equiv:Jtype.Merge.Kind docs

let test_avro_roundtrip_simple () =
  let docs =
    List.map parse
      [ {|{"id": 1, "name": "ann", "score": 2.5, "ok": true, "tags": ["x", "y"]}|};
        {|{"id": 2, "name": "bob", "score": -1.0, "ok": false, "tags": []}|} ]
  in
  let schema = Translate.Avro.of_jtype ~name:"row" (tweet_type docs) in
  List.iter
    (fun doc ->
      match Translate.Avro.encode schema doc with
      | Error m -> Alcotest.fail ("encode: " ^ m)
      | Ok bytes -> (
          match Translate.Avro.decode schema bytes with
          | Ok back -> check_equiv "roundtrip" doc back
          | Error m -> Alcotest.fail ("decode: " ^ m)))
    docs

let test_avro_optionals_and_unions () =
  let docs =
    List.map parse
      [ {|{"id": 1, "payload": "text"}|};
        {|{"id": 2, "payload": 42}|};
        {|{"id": 3}|} ]
  in
  let schema = Translate.Avro.of_jtype ~name:"row" (tweet_type docs) in
  List.iter
    (fun doc ->
      match Translate.Avro.encode schema doc with
      | Error m -> Alcotest.fail m
      | Ok bytes -> (
          match Translate.Avro.decode schema bytes with
          | Ok back -> check_equiv "roundtrip" doc back
          | Error m -> Alcotest.fail m))
    docs

let test_avro_collection_roundtrip () =
  let st = Datagen.rng ~seed:61 in
  let docs = Datagen.tweets st 100 in
  let schema = Translate.Avro.of_jtype ~name:"tweet" (tweet_type docs) in
  match Translate.Avro.encode_all schema docs with
  | Error m -> Alcotest.fail m
  | Ok bytes -> (
      match Translate.Avro.decode_all schema bytes with
      | Error m -> Alcotest.fail m
      | Ok back ->
          Alcotest.(check int) "count" (List.length docs) (List.length back);
          List.iter2 (fun a b -> check_equiv "doc" a b) docs back;
          (* binary rows should undercut the JSON text substantially *)
          let json_bytes = String.length (Datagen.to_ndjson docs) in
          Alcotest.(check bool)
            (Printf.sprintf "avro (%d) < json (%d)" (String.length bytes) json_bytes)
            true
            (String.length bytes < json_bytes))

let test_avro_schema_json () =
  let t =
    Jtype.Types.rec_
      [ Jtype.Types.field "id" Jtype.Types.int;
        Jtype.Types.field ~optional:true "bio" Jtype.Types.str ]
  in
  let j = Translate.Avro.schema_to_json (Translate.Avro.of_jtype ~name:"user" t) in
  Alcotest.check value "avro schema json"
    (parse
       {|{"type": "record", "name": "user",
          "fields": [{"name": "bio", "type": ["null", "string"]},
                     {"name": "id", "type": "long"}]}|})
    j

let test_avro_mismatch_errors () =
  let schema = Translate.Avro.of_jtype ~name:"r" (Jtype.Types.rec_ [ Jtype.Types.field "a" Jtype.Types.int ]) in
  (match Translate.Avro.encode schema (parse {|{"a": "not an int"}|}) with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "type mismatch must fail");
  match Translate.Avro.decode schema "\255\255" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must not decode"


let test_avro_resolution () =
  (* writer v1: {id: long, name: string}; reader v2 adds optional email,
     drops name, widens id to double *)
  let writer =
    Translate.Avro.Record
      ("user", [ ("id", Translate.Avro.Long); ("name", Translate.Avro.String) ])
  in
  let reader =
    Translate.Avro.Record
      ("user",
       [ ("id", Translate.Avro.Double);
         ("email", Translate.Avro.Union [ Translate.Avro.Null; Translate.Avro.String ]) ])
  in
  (match Translate.Avro.resolve ~writer ~reader with
   | Ok () -> ()
   | Error m -> Alcotest.fail ("should resolve: " ^ m));
  let v = parse {|{"id": 7, "name": "ann"}|} in
  (match Translate.Avro.encode writer v with
   | Error m -> Alcotest.fail m
   | Ok bytes -> (
       match Translate.Avro.decode_resolved ~writer ~reader bytes with
       | Ok adapted ->
           Alcotest.check value "adapted shape"
             (parse {|{"id": 7.0, "email": null}|})
             adapted
       | Error m -> Alcotest.fail m));
  (* incompatible: reader demands a field the writer never wrote *)
  let reader_bad =
    Translate.Avro.Record ("user", [ ("must_have", Translate.Avro.String) ])
  in
  match Translate.Avro.resolve ~writer ~reader:reader_bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "must reject non-defaultable reader field"

let test_avro_resolution_promotion_and_unions () =
  (* long promotes to double, including inside unions *)
  let writer = Translate.Avro.Long in
  let reader = Translate.Avro.Union [ Translate.Avro.Null; Translate.Avro.Double ] in
  (match Translate.Avro.resolve ~writer ~reader with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  (match Translate.Avro.encode writer (parse "5") with
   | Error m -> Alcotest.fail m
   | Ok bytes -> (
       match Translate.Avro.decode_resolved ~writer ~reader bytes with
       | Ok v -> Alcotest.check value "promoted" (parse "5.0") v
       | Error m -> Alcotest.fail m));
  (* double does NOT demote to long *)
  match Translate.Avro.resolve ~writer:Translate.Avro.Double ~reader:Translate.Avro.Long with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "double must not demote"

(* --- columnar ------------------------------------------------------------ *)

let spark_schema docs = Inference.Spark.infer docs

let test_columnar_roundtrip () =
  let docs =
    List.map parse
      [ {|{"id": 1, "name": "ann", "xs": [1, 2], "meta": {"ok": true}}|};
        {|{"id": 2, "name": null, "xs": [], "meta": null}|};
        {|{"id": 3, "xs": [7]}|} ]
  in
  let schema = spark_schema docs in
  match Translate.Columnar.shred ~schema docs with
  | Error m -> Alcotest.fail m
  | Ok table ->
      Alcotest.(check int) "rows" 3 (Translate.Columnar.row_count table);
      let back = Translate.Columnar.assemble table in
      List.iter2 (fun a b -> check_equiv "assemble" a b) docs back

let test_columnar_binary_roundtrip () =
  let st = Datagen.rng ~seed:67 in
  let docs = Datagen.tweets st 80 in
  let schema = spark_schema docs in
  match Translate.Columnar.shred ~schema docs with
  | Error m -> Alcotest.fail m
  | Ok table -> (
      let bytes = Translate.Columnar.encode table in
      match Translate.Columnar.decode ~schema bytes with
      | Error m -> Alcotest.fail m
      | Ok table2 ->
          let a = Translate.Columnar.assemble table in
          let b = Translate.Columnar.assemble table2 in
          List.iter2 (fun x y -> Alcotest.check value "binary roundtrip" x y) a b)

let test_columnar_column_paths () =
  let docs = List.map parse [ {|{"a": 1, "b": {"c": "x"}, "xs": [true]}|} ] in
  let schema = spark_schema docs in
  match Translate.Columnar.shred ~schema docs with
  | Error m -> Alcotest.fail m
  | Ok table ->
      Alcotest.(check (list string)) "paths" [ "a"; "b.c"; "xs[]" ]
        (Translate.Columnar.column_paths table);
      let cb = Translate.Columnar.column_bytes table in
      Alcotest.(check (list string)) "column_bytes paths" [ "a"; "b.c"; "xs[]" ]
        (List.map fst cb);
      List.iter (fun (_, n) -> Alcotest.(check bool) "positive size" true (n > 0)) cb

let test_columnar_rejects_nonconforming () =
  let docs = List.map parse [ {|{"a": 1}|} ] in
  let schema = spark_schema docs in
  match Translate.Columnar.shred ~schema (List.map parse [ {|{"a": 1, "zzz": 2}|} ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "undeclared field must be rejected"

(* --- csv ------------------------------------------------------------------ *)

let test_csv_escaping () =
  Alcotest.(check string) "plain" "abc" (Translate.Csv_export.escape_cell "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Translate.Csv_export.escape_cell "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Translate.Csv_export.escape_cell "a\"b");
  Alcotest.(check string) "newline" "\"a\nb\"" (Translate.Csv_export.escape_cell "a\nb")

(* Regression: null and "" used to render as the same bare empty cell; the
   export must keep them distinguishable (null bare, empty string quoted). *)
let test_csv_null_vs_empty_string () =
  let t =
    { Inference.Relational.table_name = "t";
      columns = [ "a"; "b"; "c" ];
      key = None;
      rows =
        [ [ Json.Value.Null; Json.Value.String ""; Json.Value.String "x" ];
          [ Json.Value.String "a,b"; Json.Value.Null; Json.Value.Int 0 ] ] }
  in
  Alcotest.(check string) "null bare, empty string quoted"
    "a,b,c\n,\"\",x\n\"a,b\",,0\n"
    (Translate.Csv_export.table_to_csv t)

let test_csv_tables () =
  let st = Datagen.rng ~seed:71 in
  let docs = Datagen.orders st 50 in
  let r = Inference.Relational.normalize ~name:"orders" docs in
  let csvs = Translate.Csv_export.result_to_csvs r in
  Alcotest.(check int) "one csv per table" (List.length r.Inference.Relational.tables)
    (List.length csvs);
  List.iter
    (fun (name, csv) ->
      let lines = String.split_on_char '\n' (String.trim csv) in
      let table =
        List.find
          (fun t -> t.Inference.Relational.table_name = name)
          r.Inference.Relational.tables
      in
      Alcotest.(check int)
        (name ^ " line count")
        (1 + List.length table.Inference.Relational.rows)
        (List.length lines);
      (* all lines have the same number of cells (no unescaped commas) *)
      let header_cells = List.length table.Inference.Relational.columns in
      List.iter
        (fun line ->
          let cells = ref 1 and in_quotes = ref false in
          String.iter
            (fun c ->
              if c = '"' then in_quotes := not !in_quotes
              else if c = ',' && not !in_quotes then incr cells)
            line;
          Alcotest.(check int) "cells" header_cells !cells)
        lines)
    csvs

let () =
  Alcotest.run "translate"
    [ ("varint",
       [ Alcotest.test_case "zigzag" `Quick test_zigzag;
         Alcotest.test_case "roundtrip" `Quick test_varint_roundtrip ]);
      ("avro",
       [ Alcotest.test_case "simple roundtrip" `Quick test_avro_roundtrip_simple;
         Alcotest.test_case "optionals & unions" `Quick test_avro_optionals_and_unions;
         Alcotest.test_case "collection roundtrip + size" `Quick test_avro_collection_roundtrip;
         Alcotest.test_case "schema json" `Quick test_avro_schema_json;
         Alcotest.test_case "mismatch errors" `Quick test_avro_mismatch_errors;
         Alcotest.test_case "schema resolution" `Quick test_avro_resolution;
         Alcotest.test_case "promotion & unions" `Quick test_avro_resolution_promotion_and_unions ]);
      ("columnar",
       [ Alcotest.test_case "roundtrip" `Quick test_columnar_roundtrip;
         Alcotest.test_case "binary roundtrip" `Quick test_columnar_binary_roundtrip;
         Alcotest.test_case "column paths" `Quick test_columnar_column_paths;
         Alcotest.test_case "rejects nonconforming" `Quick test_columnar_rejects_nonconforming ]);
      ("csv",
       [ Alcotest.test_case "escaping" `Quick test_csv_escaping;
         Alcotest.test_case "null vs empty string" `Quick
           test_csv_null_vs_empty_string;
         Alcotest.test_case "tables" `Quick test_csv_tables ]);
    ]
