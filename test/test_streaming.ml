(* Differential oracle for the streaming fused engine (ISSUE 9): the
   [`Streaming] executors — token-level inference and plan-driven
   validation — must be byte-identical to the [`Tree] executable spec.
   Same inferred types (all five artifacts), same verdicts and error
   lists, same dead-letter coordinates, same reports, for any jobs count,
   both equivalences, cache on or off, on clean and corrupted input
   alike. Plus the chunk-boundary audit for [Stream.fold_documents_chunked]:
   multi-byte UTF-8 and surrogate-pair escapes split across refills,
   down to one-byte chunks. *)

open Core

let fuzz_seed =
  match Option.bind (Sys.getenv_opt "QCHECK_SEED") int_of_string_opt with
  | Some s -> s
  | None -> 20250806

let count base =
  match Option.bind (Sys.getenv_opt "FUZZ_COUNT") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> base

(* --- fingerprints ------------------------------------------------------ *)

let dead_to_string d = Json.Printer.to_string (Resilient.dead_letter_to_json d)
let report_to_string r = Json.Printer.to_string (Resilient.report_to_json r)

(* streaming ingests deliberately carry [docs = []], so the comparable
   surface is the report and the dead letters (coordinates included) *)
let ingest_fingerprint (r : Resilient.ingest) =
  String.concat "\n"
    (report_to_string r.Resilient.report
    :: List.map dead_to_string r.Resilient.dead)

let inferred_fingerprint (i : Pipeline.inferred) =
  String.concat "\n"
    [ Jtype.Types.to_string i.Pipeline.jtype;
      Jtype.Counting.to_string i.Pipeline.counting;
      Json.Printer.to_string i.Pipeline.json_schema;
      i.Pipeline.typescript;
      i.Pipeline.swift ]

let failures_fingerprint fs =
  String.concat "\n"
    (List.map
       (fun (i, es) ->
         Printf.sprintf "%d: %s" i
           (String.concat " | "
              (List.map Jsonschema.Validate.string_of_error es)))
       fs)

(* --- corpora ----------------------------------------------------------- *)

let messy_text =
  let st = Datagen.rng ~seed:91 in
  let text = Datagen.to_ndjson (Datagen.tweets st 300) in
  (Chaos.corrupt ~seed:910 ~rate:0.15 text).Chaos.text

let clean_text =
  let st = Datagen.rng ~seed:92 in
  Datagen.to_ndjson (Datagen.open_data st 200)

let orders_text =
  let st = Datagen.rng ~seed:93 in
  Datagen.to_ndjson (Datagen.orders st 200)

let equivs = [ Jtype.Merge.Kind; Jtype.Merge.Label ]
let jobses = [ 1; 4; 8 ]

(* --- inference --------------------------------------------------------- *)

let test_infer_strict_identical () =
  List.iter
    (fun equiv ->
      List.iter
        (fun jobs ->
          let label =
            Printf.sprintf "%s jobs=%d" (Jtype.Merge.equiv_to_string equiv) jobs
          in
          match
            ( Pipeline.infer_ndjson ~equiv ~engine:`Tree ~jobs clean_text,
              Pipeline.infer_ndjson ~equiv ~engine:`Streaming ~jobs clean_text )
          with
          | Ok t, Ok s ->
              Alcotest.(check string) label (inferred_fingerprint t)
                (inferred_fingerprint s)
          | _ -> Alcotest.fail (label ^ ": clean corpus must infer"))
        jobses)
    equivs

let test_infer_strict_same_error () =
  List.iter
    (fun jobs ->
      match
        ( Pipeline.infer_ndjson ~engine:`Tree ~jobs messy_text,
          Pipeline.infer_ndjson ~engine:`Streaming ~jobs messy_text )
      with
      | Error a, Error b ->
          Alcotest.(check string) (Printf.sprintf "jobs=%d" jobs) a b
      | _ -> Alcotest.fail "corrupted corpus must error strictly")
    jobses

let resilient_fingerprint (inferred, ingest) =
  (match inferred with
  | None -> "none"
  | Some i -> inferred_fingerprint i)
  ^ "\n---\n" ^ ingest_fingerprint ingest

let test_infer_resilient_identical () =
  let budgets =
    [ ("unbounded", None);
      ( "doc-bytes-512",
        Some
          { Resilient.default_budget with
            Resilient.max_doc_bytes = Some 512 } ) ]
  in
  List.iter
    (fun (bname, budget) ->
      List.iter
        (fun equiv ->
          List.iter
            (fun jobs ->
              let run engine =
                Pipeline.infer_ndjson_resilient ?budget ~equiv ~engine ~jobs
                  messy_text
              in
              Alcotest.(check string)
                (Printf.sprintf "%s %s jobs=%d" bname
                   (Jtype.Merge.equiv_to_string equiv) jobs)
                (resilient_fingerprint (run `Tree))
                (resilient_fingerprint (run `Streaming)))
            jobses)
        equivs)
    budgets

let test_infer_streaming_counts_docs () =
  (* the streaming ingest must report the documents it refused to
     materialize *)
  let _, ingest = Pipeline.infer_ndjson_resilient ~engine:`Streaming clean_text in
  Alcotest.(check (list Alcotest.string)) "no docs" []
    (List.map Json.Printer.to_string ingest.Resilient.docs);
  Alcotest.(check int) "ok = corpus size" 200
    ingest.Resilient.report.Resilient.ok

(* --- validation -------------------------------------------------------- *)

(* schema inferred from the orders corpus: every order validates; the
   tweet-derived messy corpus mostly does not, exercising error paths *)
let orders_schema =
  match Pipeline.infer_ndjson orders_text with
  | Ok i -> i.Pipeline.json_schema
  | Error e -> failwith e

let test_validate_identical () =
  List.iter
    (fun (cname, text) ->
      List.iter
        (fun jobs ->
          let run engine =
            Pipeline.validate_ndjson ~engine ~jobs ~root:orders_schema text
          in
          let ti, tf = run `Tree and si, sf = run `Streaming in
          let label = Printf.sprintf "%s jobs=%d" cname jobs in
          Alcotest.(check string) (label ^ " failures")
            (failures_fingerprint tf) (failures_fingerprint sf);
          Alcotest.(check string) (label ^ " ingest")
            (ingest_fingerprint ti) (ingest_fingerprint si))
        jobses)
    [ ("orders", orders_text); ("messy", messy_text) ]

let test_validate_strict_identical () =
  let run engine =
    Pipeline.validate_ndjson_strict ~engine ~root:orders_schema orders_text
  in
  (match (run `Tree, run `Streaming) with
  | Ok (nt, ft), Ok (ns, fs) ->
      Alcotest.(check int) "ndocs" nt ns;
      Alcotest.(check string) "failures" (failures_fingerprint ft)
        (failures_fingerprint fs)
  | _ -> Alcotest.fail "orders corpus must parse strictly");
  (* first parse error aborts identically *)
  match
    ( Pipeline.validate_ndjson_strict ~engine:`Tree ~root:orders_schema
        messy_text,
      Pipeline.validate_ndjson_strict ~engine:`Streaming ~root:orders_schema
        messy_text )
  with
  | Error a, Error b -> Alcotest.(check string) "same abort" a b
  | _ -> Alcotest.fail "messy corpus must abort strictly"

(* Full conformance corpus: every group's test documents as one NDJSON
   collection, validated with both engines, plan cache on and off. The
   streaming engine must agree with the tree engine on every case —
   including schemas whose access analysis can't prune anything. *)
let test_validate_conformance_corpus () =
  let read_file path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let dir = "conformance" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort compare
  in
  Alcotest.(check bool) "corpus present" true (files <> []);
  let groups = ref 0 in
  let was_cached = Jsonschema.Compile.cache_enabled () in
  Fun.protect
    ~finally:(fun () -> Jsonschema.Compile.set_cache was_cached)
    (fun () ->
      List.iter
        (fun cache ->
          Jsonschema.Compile.set_cache cache;
          Jsonschema.Compile.clear_cache ();
          List.iter
            (fun file ->
              match Json.Parser.parse_exn (read_file (Filename.concat dir file)) with
              | Json.Value.Array gs ->
                  List.iter
                    (fun g ->
                      match g with
                      | Json.Value.Object fields ->
                          let get k = List.assoc_opt k fields in
                          let schema =
                            match get "schema" with
                            | Some s -> s
                            | None -> failwith (file ^ ": no schema")
                          in
                          let assert_formats =
                            match get "formats" with
                            | Some (Json.Value.Bool b) -> b
                            | _ -> false
                          in
                          let config =
                            { Jsonschema.Validate.default_config with
                              Jsonschema.Validate.assert_formats }
                          in
                          let tests =
                            match get "tests" with
                            | Some (Json.Value.Array ts) -> ts
                            | _ -> []
                          in
                          let data =
                            List.filter_map
                              (fun t ->
                                match t with
                                | Json.Value.Object fs ->
                                    List.assoc_opt "data" fs
                                | _ -> None)
                              tests
                          in
                          if data <> [] then begin
                            incr groups;
                            let text = Datagen.to_ndjson data in
                            let run engine =
                              Pipeline.validate_ndjson ~config ~engine
                                ~root:schema text
                            in
                            let ti, tf = run `Tree
                            and si, sf = run `Streaming in
                            let label =
                              Printf.sprintf "%s :: group %d (cache=%b)" file
                                !groups cache
                            in
                            Alcotest.(check string) (label ^ " failures")
                              (failures_fingerprint tf)
                              (failures_fingerprint sf);
                            Alcotest.(check string) (label ^ " ingest")
                              (ingest_fingerprint ti) (ingest_fingerprint si)
                          end
                      | _ -> failwith (file ^ ": group is not an object"))
                    gs
              | _ -> failwith (file ^ ": top level is not an array"))
            files)
        [ true; false ]);
  Alcotest.(check bool) "non-trivial corpus" true (!groups >= 2 * 40)

(* --- chunk boundaries (Stream.fold_documents_chunked) ------------------ *)

let chunked_refill text size =
  let pos = ref 0 in
  fun () ->
    if !pos >= String.length text then None
    else begin
      let n = min size (String.length text - !pos) in
      let s = String.sub text !pos n in
      pos := !pos + n;
      Some s
    end

let fold_fingerprint r =
  match r with
  | Ok docs ->
      "ok\n"
      ^ String.concat "\n" (List.rev_map Json.Printer.to_string docs)
  | Error e -> "error " ^ Json.Parser.string_of_error e

let run_chunked text size =
  fold_fingerprint
    (Json.Stream.fold_documents_chunked (chunked_refill text size) ~init:[]
       ~f:(fun acc v -> v :: acc))

let run_whole text =
  fold_fingerprint
    (Json.Stream.fold_documents text ~init:[] ~f:(fun acc v -> v :: acc))

(* multi-byte UTF-8 (2-, 3- and 4-byte sequences) and \uXXXX escapes
   including a surrogate pair; any chunk size may split any of them *)
let unicode_text =
  String.concat "\n"
    [ {|{"café": "élève"}|};
      "{\"k\": \"caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x98\x80\"}";
      {|{"pair": "😀 tail", "n": [1.5e2, -0.25]}|};
      "\"\xf0\x9f\x98\x80\xf0\x9f\x98\x81\xf0\x9f\x98\x82\"";
      {|{"esc": "\u00e9 \u20ac \ud83d\ude00 pair"}|};
      {|{"deep": {"𝄞": ["\u0000nul", "two\u2028sep"]}}|} ]

let test_chunked_unicode_boundaries () =
  let whole = run_whole unicode_text in
  Alcotest.(check bool) "fixture parses" true
    (String.length whole >= 2 && String.sub whole 0 2 = "ok");
  List.iter
    (fun size ->
      Alcotest.(check string)
        (Printf.sprintf "chunk=%d" size)
        whole (run_chunked unicode_text size))
    [ 1; 2; 3; 5; 7; 64; 4096 ]

let test_chunked_error_boundaries () =
  (* a lone high surrogate and a truncated escape: the error (message and
     absolute position) must not depend on where the refill boundary fell *)
  List.iter
    (fun text ->
      let whole = run_whole text in
      List.iter
        (fun size ->
          Alcotest.(check string)
            (Printf.sprintf "chunk=%d" size)
            whole (run_chunked text size))
        [ 1; 2; 3; 8 ])
    [ {|{"ok": 1}
{"bad": "\ud83d oops"}|};
      {|{"ok": 1}
{"bad": "\u00g1"}|};
      "{\"ok\": 1}\n{\"bad\": \"tear \xf0\x9f" ]

(* --- 1-byte-chunk audit for the Lexer.skim fast path -------------------- *)

(* The fused engine's lexer latches escape-free string payloads as raw
   spans on the lexer state instead of materializing them ([Lexer.skim] /
   [last_string_span]). Feed [Streaming.infer_tokens] through the refill
   discipline of [Stream.fold_documents_chunked] — accept a document only
   when it ends strictly before the buffered frontier (or at eof), grow
   and re-lex on anything else — so every retry re-skims a string whose
   span crossed the previous frontier. The per-document report (type and
   counting) must be byte-identical to whole-buffer inference for every
   chunk size, down to 1 byte. *)
let skim_ws s i =
  let n = String.length s in
  let j = ref i in
  while !j < n && (s.[!j] = ' ' || s.[!j] = '\t' || s.[!j] = '\n' || s.[!j] = '\r')
  do incr j done;
  !j

let infer_report r =
  match r with
  | Ok docs ->
      "ok\n"
      ^ String.concat "\n"
          (List.rev_map
             (fun (t, c) ->
               Json.Printer.to_string (Jtype.Types.to_json t)
               ^ " / "
               ^ Json.Printer.to_string (Jtype.Counting.to_json c))
             docs)
  | Error (e : Json.Parser.error) ->
      Printf.sprintf "error %s at %d" e.Json.Parser.message
        e.Json.Parser.position.Json.Lexer.offset

let infer_whole ~equiv text =
  let scr = Inference.Streaming.scratch () in
  let n = String.length text in
  let rec go acc pos =
    let pos = skim_ws text pos in
    if pos >= n then Ok acc
    else
      match Inference.Streaming.infer_tokens ~scratch:scr ~equiv text ~pos with
      | Ok (doc, stop) -> go (doc :: acc) stop
      | Error e -> Error e
  in
  infer_report (go [] 0)

let infer_chunked ~equiv text size =
  let scr = Inference.Streaming.scratch () in
  let refill = chunked_refill text size in
  let data = ref "" in
  let consumed = ref 0 in
  let rebase (e : Json.Parser.error) =
    let p = e.Json.Parser.position in
    { e with
      Json.Parser.position = { p with Json.Lexer.offset = p.Json.Lexer.offset + !consumed } }
  in
  let rec step acc ~eof =
    let s = !data in
    let n = String.length s in
    let pos = skim_ws s 0 in
    if pos >= n then if eof then Ok acc else grow acc
    else
      match Inference.Streaming.infer_tokens ~scratch:scr ~equiv s ~pos with
      | Ok (doc, stop) when stop < n || eof ->
          consumed := !consumed + stop;
          data := String.sub s stop (n - stop);
          step (doc :: acc) ~eof
      | Ok _ -> grow acc
      | Error e when eof -> Error (rebase e)
      | Error _ -> grow acc
  and grow acc =
    match refill () with
    | None -> step acc ~eof:true
    | Some chunk ->
        if chunk <> "" then data := !data ^ chunk;
        step acc ~eof:false
  in
  infer_report (step [] ~eof:false)

(* long escape-free spans (the latched fast path), escapes forcing the slow
   path, multi-byte UTF-8 inside spans, and a string-heavy record — every
   1-byte frontier lands inside some span *)
let skim_span_text =
  String.concat "\n"
    [ {|{"long": "|} ^ String.make 120 'a' ^ {|", "n": 1}|};
      {|"|} ^ String.make 64 'z' ^ {|"|};
      {|{"esc": "head\né tail", "raw": "café"}|};
      "{\"k\": \"caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x98\x80 span\"}";
      {|{"mix": ["|} ^ String.make 40 'b' ^ {|", "c\\d", "", "x"]}|} ]

let test_skim_one_byte_chunks () =
  List.iter
    (fun equiv ->
      let whole = infer_whole ~equiv skim_span_text in
      Alcotest.(check bool) "fixture infers" true
        (String.length whole >= 2 && String.sub whole 0 2 = "ok");
      List.iter
        (fun size ->
          Alcotest.(check string)
            (Printf.sprintf "chunk=%d" size)
            whole
            (infer_chunked ~equiv skim_span_text size))
        [ 1; 2; 3; 5; 64; 4096 ])
    [ Jtype.Merge.Kind; Jtype.Merge.Label ];
  (* a corrupted corpus: truncation retries must not mask real errors *)
  let messy = String.sub messy_text 0 (min 4096 (String.length messy_text)) in
  let whole = infer_whole ~equiv:Jtype.Merge.Kind messy in
  List.iter
    (fun size ->
      Alcotest.(check string)
        (Printf.sprintf "messy chunk=%d" size)
        whole
        (infer_chunked ~equiv:Jtype.Merge.Kind messy size))
    [ 1; 7; 512 ]

(* --- properties -------------------------------------------------------- *)

let gen_value : Json.Value.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let scalar =
    oneof
      [ return Json.Value.Null;
        map (fun b -> Json.Value.Bool b) bool;
        map (fun n -> Json.Value.Int n) (int_range (-1000) 1000);
        map (fun f -> Json.Value.Float f) (float_range (-1e6) 1e6);
        map
          (fun s -> Json.Value.String s)
          (string_size ~gen:printable (int_range 0 10)) ]
  in
  let key = string_size ~gen:(char_range 'a' 'z') (int_range 1 5) in
  sized
  @@ fix (fun self n ->
         if n <= 0 then scalar
         else
           frequency
             [ (3, scalar);
               ( 1,
                 map
                   (fun vs -> Json.Value.Array vs)
                   (list_size (int_range 0 4) (self (n / 2))) );
               ( 1,
                 map
                   (fun fields ->
                     let seen = Hashtbl.create 4 in
                     Json.Value.Object
                       (List.filter
                          (fun (k, _) ->
                            if Hashtbl.mem seen k then false
                            else (Hashtbl.add seen k (); true))
                          fields))
                   (list_size (int_range 0 4) (pair key (self (n / 2)))) ) ])

(* an NDJSON text where some lines are corrupted by byte edits *)
let gen_ndjson : string QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* docs = list_size (int_range 0 20) gen_value in
  let lines = List.map Json.Printer.to_string docs in
  let* lines =
    flatten_l
      (List.map
         (fun line ->
           let* corrupt = frequency [ (4, return false); (1, return true) ] in
           if not corrupt || String.length line = 0 then return line
           else
             let* pos = int_range 0 (String.length line - 1) in
             let* c = map Char.chr (int_range 0 255) in
             return (String.mapi (fun i ch -> if i = pos then c else ch) line))
         lines)
  in
  return (String.concat "\n" lines)

let prop_infer_differential =
  QCheck2.Test.make ~name:"streaming infer = tree infer (resilient)"
    ~count:(count 120)
    QCheck2.Gen.(tup3 gen_ndjson (oneofl equivs) (oneofl jobses))
    (fun (text, equiv, jobs) ->
      let run engine =
        resilient_fingerprint
          (Pipeline.infer_ndjson_resilient ~equiv ~engine ~jobs text)
      in
      run `Tree = run `Streaming)

let prop_validate_differential =
  QCheck2.Test.make ~name:"streaming validate = tree validate"
    ~count:(count 120)
    QCheck2.Gen.(tup2 gen_ndjson (oneofl jobses))
    (fun (text, jobs) ->
      let run engine =
        let i, f =
          Pipeline.validate_ndjson ~engine ~jobs ~root:orders_schema text
        in
        ingest_fingerprint i ^ "\n===\n" ^ failures_fingerprint f
      in
      run `Tree = run `Streaming)

let prop_chunked_fold =
  QCheck2.Test.make ~name:"chunked fold invariant under chunk size"
    ~count:(count 120)
    QCheck2.Gen.(tup2 gen_ndjson (int_range 1 9))
    (fun (text, size) -> run_whole text = run_chunked text size)

let prop_skim_chunked =
  QCheck2.Test.make ~name:"chunked skim inference invariant under chunk size"
    ~count:(count 120)
    QCheck2.Gen.(tup2 gen_ndjson (int_range 1 9))
    (fun (text, size) ->
      infer_whole ~equiv:Jtype.Merge.Kind text
      = infer_chunked ~equiv:Jtype.Merge.Kind text size)

let () =
  let prop p =
    QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| fuzz_seed |]) p
  in
  Alcotest.run "streaming"
    [ ( "inference",
        [ Alcotest.test_case "strict identical" `Quick
            test_infer_strict_identical;
          Alcotest.test_case "strict same error" `Quick
            test_infer_strict_same_error;
          Alcotest.test_case "resilient identical" `Quick
            test_infer_resilient_identical;
          Alcotest.test_case "streaming counts docs" `Quick
            test_infer_streaming_counts_docs ] );
      ( "validation",
        [ Alcotest.test_case "corpus identical" `Quick test_validate_identical;
          Alcotest.test_case "strict identical" `Quick
            test_validate_strict_identical;
          Alcotest.test_case "conformance identical" `Quick
            test_validate_conformance_corpus ] );
      ( "chunk-boundaries",
        [ Alcotest.test_case "unicode split anywhere" `Quick
            test_chunked_unicode_boundaries;
          Alcotest.test_case "errors split anywhere" `Quick
            test_chunked_error_boundaries;
          Alcotest.test_case "skim spans split anywhere" `Quick
            test_skim_one_byte_chunks ] );
      ( "properties",
        [ prop prop_infer_differential;
          prop prop_validate_differential;
          prop prop_chunked_fold;
          prop prop_skim_chunked ] ) ]
