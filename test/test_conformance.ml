(* Differential conformance harness: every case in conformance/*.json runs
   against BOTH validation engines — the interpreter ([Validate.validate])
   and the compiled plan ([Compile.run], plus the cached [Compile.validate]
   path) — and must produce the expected verdict AND identical error lists.
   A divergence fails the build with a readable "file :: group :: test"
   diff naming the case and the differing error pointers. *)

open Jsonschema

let failures = ref 0
let total = ref 0

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let errors_to_strings = function
  | Ok () -> []
  | Error es -> List.map Validate.string_of_error es

let report file group test msg =
  incr failures;
  Printf.printf "FAIL %s :: %s :: %s\n  %s\n" file group test msg

let print_errs label errs =
  Printf.printf "  %s:\n" label;
  if errs = [] then Printf.printf "    (no errors)\n"
  else List.iter (fun e -> Printf.printf "    %s\n" e) errs

let run_case file group config ~schema ~plan test =
  incr total;
  let name, data, expected =
    match test with
    | Json.Value.Object fields ->
        let get k = List.assoc_opt k fields in
        let name =
          match get "description" with
          | Some (Json.Value.String s) -> s
          | _ -> "?"
        in
        let data = Option.value (get "data") ~default:Json.Value.Null in
        let expected =
          match get "valid" with
          | Some (Json.Value.Bool b) -> b
          | _ -> failwith "test case missing \"valid\""
        in
        (name, data, expected)
    | _ -> failwith "test case is not an object"
  in
  let interp = Validate.validate ~config ~root:schema data in
  let compiled =
    match plan with
    | Ok p -> Compile.run ~config p data
    | Error es -> Error es
  in
  let cached = Compile.validate ~config ~root:schema data in
  let i_errs = errors_to_strings interp in
  let c_errs = errors_to_strings compiled in
  let k_errs = errors_to_strings cached in
  let verdict = Result.is_ok interp in
  if verdict <> expected then begin
    report file group name
      (Printf.sprintf "expected %s, interpreter said %s"
         (if expected then "valid" else "invalid")
         (if verdict then "valid" else "invalid"));
    print_errs "interpreter errors" i_errs
  end;
  if c_errs <> i_errs then begin
    report file group name "compiled plan diverges from interpreter";
    print_errs "interpreter" i_errs;
    print_errs "compiled" c_errs
  end;
  if k_errs <> i_errs then begin
    report file group name "cached Compile.validate diverges from interpreter";
    print_errs "interpreter" i_errs;
    print_errs "cached" k_errs
  end

let run_group file group =
  match group with
  | Json.Value.Object fields ->
      let get k = List.assoc_opt k fields in
      let desc =
        match get "description" with
        | Some (Json.Value.String s) -> s
        | _ -> "?"
      in
      let schema =
        match get "schema" with
        | Some s -> s
        | None -> failwith (Printf.sprintf "%s :: %s: no schema" file desc)
      in
      let assert_formats =
        match get "formats" with Some (Json.Value.Bool b) -> b | _ -> false
      in
      let config = { Validate.default_config with assert_formats } in
      let plan = Compile.compile schema in
      let tests =
        match get "tests" with
        | Some (Json.Value.Array ts) -> ts
        | _ -> failwith (Printf.sprintf "%s :: %s: no tests" file desc)
      in
      List.iter (run_case file desc config ~schema ~plan) tests
  | _ -> failwith (Printf.sprintf "%s: group is not an object" file)

let run_file dir file =
  let doc = Json.Parser.parse_exn (read_file (Filename.concat dir file)) in
  match doc with
  | Json.Value.Array groups -> List.iter (run_group file) groups
  | _ -> failwith (Printf.sprintf "%s: top level is not an array" file)

let () =
  let dir = "conformance" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort compare
  in
  if files = [] then begin
    prerr_endline "conformance: no corpus files found";
    exit 1
  end;
  (* Exercise both cache states: first pass with the plan cache enabled
     (the default), second pass with it disabled. Verdicts and error lists
     must be identical either way. *)
  List.iter
    (fun enabled ->
      Compile.set_cache enabled;
      Compile.clear_cache ();
      List.iter (run_file dir) files)
    [ true; false ];
  Compile.set_cache true;
  if !total < 2 * 150 then begin
    Printf.printf "conformance: only %d case runs (< 150 cases); corpus too small\n"
      !total;
    exit 1
  end;
  if !failures > 0 then begin
    Printf.printf "conformance: %d failure(s) out of %d case runs\n" !failures
      !total;
    exit 1
  end;
  Printf.printf "conformance: %d case runs across %d files, both engines agree\n"
    !total (List.length files)
