(** Fault-tolerant shard supervision: retry with deterministic backoff,
    cooperative deadlines, poison-shard isolation, graceful degradation.

    {!Parallel.run} is deliberately dumb — a thunk that raises kills the
    whole job. The supervisor wraps each shard's work in a retry loop that
    runs {e inside} its pooled thunk, so the pool never sees an exception:
    a shard that fails every attempt becomes a typed {!outcome.Poisoned}
    value and its siblings are untouched. {!Pipeline} turns poisoned shards
    into {!Resilient.dead_letter}s with whole-input coordinates, keeping
    the merged result deterministic.

    Everything that could make a supervised run nondeterministic is pinned:

    - backoff jitter is a hash of [(shard, attempt)], not a PRNG draw or a
      clock read — re-running reproduces the exact retry schedule;
    - deadlines are {e cooperative}: the task receives a [tick] callback and
      calls it at document boundaries ({!Resilient.ingest} does this), so a
      timeout interrupts between documents, never inside one;
    - fault injection is a caller-supplied pure plan
      ({!Chaos.worker_faults}), decided by [(seed, shard)] alone. *)

(** Why an attempt failed — the alphabet the retry classifier speaks. *)
type failure_class =
  | Timed_out            (** the cooperative deadline fired *)
  | Fault of string      (** injected worker fault; payload is the site id *)
  | Budget of string     (** task-raised budget abort (violation name) *)
  | Parse of string      (** task-raised parse abort *)
  | Crash of string      (** unexpected exception ([Printexc.to_string]) *)

val failure_label : failure_class -> string
(** Constructor name only: ["timeout"], ["fault"], ["budget"], ["parse"],
    ["crash"] — the {!Resilient.fault_kind.Shard} label. *)

val failure_describe : failure_class -> string
(** Label plus payload, e.g. ["chaos:worker@shard2:permanent"] or
    ["crash:Stack_overflow"] — the dead letter's [cause]. *)

exception Abort of failure_class
(** Raised by supervised tasks (or their [tick]) to fail the current
    attempt with a typed cause; anything else raised is a [Crash]. *)

type policy = {
  max_attempts : int;           (** total attempts per shard, >= 1 *)
  timeout_ms : float option;    (** per-attempt cooperative deadline *)
  base_backoff_ms : float;      (** delay before the 2nd attempt *)
  max_backoff_ms : float;       (** exponential growth cap *)
  jitter : float;               (** in [0,1]: delay is spread over
                                    [[1-jitter, 1] * capped] *)
  retryable : failure_class -> bool;
      (** which failures earn another attempt; non-retryable ones poison
          the shard immediately *)
  degrade_threshold : float option;
      (** if the poisoned fraction after the parallel pass exceeds this,
          each poisoned shard gets one sequential, deadline-free,
          injection-free attempt in the calling domain; [None] disables *)
}

val default_policy : policy
(** 3 attempts, no deadline, 1 ms base / 50 ms cap / 0.5 jitter backoff,
    everything retryable except [Crash] (a crash is a bug — retrying hides
    it), degradation at 0.5. *)

val no_retry : policy
(** Single attempt, no deadline, no degradation: supervision reduced to
    poison isolation — the pre-supervisor semantics, minus the job-killing
    exception. *)

val backoff_ms : policy -> shard:int -> attempt:int -> float
(** The deterministic delay inserted after failed [attempt] of [shard]:
    capped exponential with hash-derived jitter. Exposed for tests. *)

type 'a outcome =
  | Done of { value : 'a; attempts : int }
  | Poisoned of { failure : failure_class; attempts : int }
      (** every attempt failed; [attempts] is the exhausted budget,
          distinguishing transient-exhausted from first-try-permanent *)

type stats = {
  shards : int;
  attempts : int;   (** total attempts across all shards *)
  retries : int;    (** attempts beyond each shard's first *)
  timeouts : int;
  faults : int;     (** injected-fault failures *)
  crashes : int;
  poisoned : int;   (** final count, after any degradation pass *)
  degraded : int;   (** poisoned shards the sequential fallback recovered *)
}

val run :
  ?policy:policy -> ?telemetry:Telemetry.sink ->
  ?inject:(shard:int -> attempt:int -> string option) ->
  jobs:int ->
  (attempt:int -> tick:(unit -> unit) -> 'a) list ->
  'a outcome list * stats
(** Execute one task per shard on the {!Parallel.run} pool under [policy].
    Tasks receive the current [attempt] (1-based — {!Resilient.ingest}
    stamps it into dead letters) and a [tick] to call at work-unit
    boundaries (the deadline check; whatever [tick] raises fails the
    attempt). [inject] (default none) is consulted before each attempt —
    [Some site] aborts it with [Fault site]; see {!Chaos.worker_faults}.
    Outcomes are in task order. Never raises on task failure; only [jobs]
    plumbing errors escape. [telemetry] receives [supervisor.attempts] /
    [.retries] / [.timeouts] / [.faults_injected] / [.crashes] /
    [.poisoned] / [.degraded] counters (zero-valued ones are omitted) and
    the [supervisor.backoff_ms] histogram. *)

val stats_to_json : stats -> Json.Value.t
