(* Sharded execution on a fixed pool of domains.

   The inference merge is associative and commutative (Jtype.Merge), so
   map/reduce over shards is semantics-preserving by construction; the work
   here is the bookkeeping that makes the parallel path *byte-identical* to
   the sequential one: shards split only at newline boundaries, dead
   letters are produced in whole-input coordinates (Resilient's
   first_line/base_offset) and re-sorted by global position, and reports
   are summed. *)

let default_jobs () = Domain.recommended_domain_count ()

(* --- domain pool with a bounded work queue ----------------------------- *)

module Pool = struct
  type t = {
    queue : (unit -> unit) Queue.t;
    capacity : int;
    mutex : Mutex.t;
    not_empty : Condition.t;
    not_full : Condition.t;
    mutable closed : bool;
    mutable workers : unit Domain.t list;
    tele : Telemetry.sink;
  }

  let rec worker t =
    Mutex.lock t.mutex;
    (* time spent with nothing to do: the starvation signal for shard
       imbalance. Measured around the wait loop, so a worker that never
       blocks contributes near-zero samples. *)
    let idle_from = if Telemetry.is_recording t.tele then Telemetry.now () else 0.0 in
    while Queue.is_empty t.queue && not t.closed do
      Condition.wait t.not_empty t.mutex
    done;
    if Telemetry.is_recording t.tele then
      Telemetry.observe t.tele "pool.idle_s" (Telemetry.now () -. idle_from);
    if Queue.is_empty t.queue then Mutex.unlock t.mutex (* closed & drained *)
    else begin
      let task = Queue.pop t.queue in
      Condition.signal t.not_full;
      Mutex.unlock t.mutex;
      task ();
      worker t
    end

  let create ?(telemetry = Telemetry.nop) ~workers ~capacity () =
    let t =
      { queue = Queue.create ();
        capacity = max 1 capacity;
        mutex = Mutex.create ();
        not_empty = Condition.create ();
        not_full = Condition.create ();
        closed = false;
        workers = [];
        tele = telemetry }
    in
    t.workers <- List.init (max 1 workers) (fun _ -> Domain.spawn (fun () -> worker t));
    t

  let submit t task =
    let task =
      if Telemetry.is_recording t.tele then begin
        let enqueued = Telemetry.now () in
        fun () ->
          Telemetry.observe t.tele "pool.queue_wait_s"
            (Telemetry.now () -. enqueued);
          task ()
      end
      else task
    in
    Mutex.lock t.mutex;
    while Queue.length t.queue >= t.capacity do
      Condition.wait t.not_full t.mutex
    done;
    Queue.push task t.queue;
    Condition.signal t.not_empty;
    Mutex.unlock t.mutex

  (* close the queue and wait for every worker to drain and exit *)
  let shutdown t =
    Mutex.lock t.mutex;
    t.closed <- true;
    Condition.broadcast t.not_empty;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.workers;
    t.workers <- []
end

let run ?(telemetry = Telemetry.nop) ~jobs thunks =
  match thunks with
  | [] -> []
  | [ f ] -> [ f () ]
  | _ when jobs <= 1 -> List.map (fun f -> f ()) thunks
  | _ ->
      let thunks = Array.of_list thunks in
      let n = Array.length thunks in
      let results = Array.make n None in
      let pool =
        Pool.create ~telemetry ~workers:(min jobs n) ~capacity:(2 * jobs) ()
      in
      (* exceptions are carried back to the caller, never lost in a domain *)
      Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () ->
          Array.iteri
            (fun i f ->
              Pool.submit pool (fun () ->
                  results.(i) <- Some (try Ok (f ()) with e -> Error e)))
            thunks);
      Array.to_list
        (Array.map
           (function
             | Some (Ok v) -> v
             | Some (Error e) -> raise e
             | None -> assert false (* shutdown joined every worker *))
           results)

(* --- newline-boundary sharding ----------------------------------------- *)

type shard = {
  s_off : int;   (* byte offset of the shard in the whole input *)
  s_len : int;
  s_line : int;  (* 1-based line its first byte sits on *)
}

let count_newlines src lo hi =
  let c = ref 0 in
  for i = lo to hi - 1 do
    if src.[i] = '\n' then incr c
  done;
  !c

let shards ~jobs src =
  let n = String.length src in
  let jobs = max 1 jobs in
  if n = 0 then []
  else begin
    let target = max 1 (n / jobs) in
    let rec cut acc start line k =
      if start >= n then List.rev acc
      else if k = 1 then List.rev ({ s_off = start; s_len = n - start; s_line = line } :: acc)
      else
        let stop =
          let want = start + target in
          if want >= n then n
          else
            match String.index_from_opt src want '\n' with
            | Some i -> i + 1
            | None -> n
        in
        cut
          ({ s_off = start; s_len = stop - start; s_line = line } :: acc)
          stop
          (line + count_newlines src start stop)
          (k - 1)
    in
    cut [] 0 1 jobs
  end

(* --- sharded resilient ingestion --------------------------------------- *)

let merge_reports (a : Resilient.report) (b : Resilient.report) =
  { Resilient.ok = a.Resilient.ok + b.Resilient.ok;
    quarantined = a.Resilient.quarantined + b.Resilient.quarantined;
    budget_killed = a.Resilient.budget_killed + b.Resilient.budget_killed;
    budget_causes =
      Resilient.merge_causes a.Resilient.budget_causes b.Resilient.budget_causes;
    poisoned = a.Resilient.poisoned + b.Resilient.poisoned;
    truncated = a.Resilient.truncated || b.Resilient.truncated }

let dead_order (a : Resilient.dead_letter) (b : Resilient.dead_letter) =
  compare a.Resilient.byte_offset b.Resilient.byte_offset

let ingest_with ?(budget = Resilient.default_budget) ?options ?(jobs = 1)
    ?(telemetry = Telemetry.nop) ~parse_doc src =
  (* the document-count budget is a global, order-dependent cap: shards
     cannot apply it independently, so it routes through the sequential
     scanner to keep the cut deterministic. [parse_doc] is a factory: one
     instance per shard, so per-shard scratch state (the streaming engine's
     field-name interning table) never crosses a domain. *)
  let sequential () =
    Resilient.ingest_with ~budget ?options ~telemetry ~parse_doc:(parse_doc ())
      src
  in
  if jobs <= 1 || budget.Resilient.max_docs <> None then sequential ()
  else
    match shards ~jobs src with
    | ([] | [ _ ]) -> sequential ()
    | ss ->
        Telemetry.count telemetry "parallel.shards" (List.length ss);
        let parts =
          run ~telemetry ~jobs
            (List.map
               (fun sh () ->
                 Telemetry.span telemetry "ingest.shard" (fun () ->
                     Resilient.ingest_with ~budget ?options
                       ~first_line:sh.s_line ~base_offset:sh.s_off ~telemetry
                       ~parse_doc:(parse_doc ())
                       (String.sub src sh.s_off sh.s_len)))
               ss)
        in
        Telemetry.span telemetry "ingest.merge" (fun () ->
            ( List.concat_map (fun (p, _, _) -> p) parts,
              List.stable_sort dead_order
                (List.concat_map (fun (_, d, _) -> d) parts),
              List.fold_left
                (fun acc (_, _, r) -> merge_reports acc r)
                Resilient.empty_report parts ))

let ingest ?budget ?options ?jobs ?telemetry src =
  let docs, dead, report =
    ingest_with ?budget ?options ?jobs ?telemetry
      ~parse_doc:(fun () ~options ~telemetry src ~pos ->
        Json.Parser.parse_substring ~options ~telemetry src ~pos)
      src
  in
  { Resilient.docs; dead; report }

let parse_ndjson_strict ?(budget = Resilient.unbounded_budget) ?options ?(jobs = 1)
    ?telemetry src =
  let r = ingest ~budget ?options ~jobs ?telemetry src in
  match r.Resilient.dead with
  | [] -> Ok r.Resilient.docs
  | d :: _ -> Error d.Resilient.error

(* --- sharded map/reduce over a materialized collection ----------------- *)

(* contiguous chunks with their global start index *)
let chunked ~jobs xs =
  let n = List.length xs in
  if jobs <= 1 || n <= 1 then [ (0, xs) ]
  else begin
    let per = max 1 ((n + jobs - 1) / jobs) in
    let rec go start acc cur cur_n = function
      | [] ->
          List.rev (if cur = [] then acc else (start, List.rev cur) :: acc)
      | x :: rest ->
          if cur_n = per then
            go (start + per) ((start, List.rev cur) :: acc) [ x ] 1 rest
          else go start acc (x :: cur) (cur_n + 1) rest
    in
    go 0 [] [] 0 xs
  end

(* Emit the hash-consed kernel's counter deltas (intern and fusion-cache
   hits/misses) into the sink, so [--stats-json] reports what the memoized
   merge did during this call and nothing else. Counters are per-domain
   cells summed over all domains; both snapshots are taken while no pool
   is running (run/shutdown joins every worker), so the delta is exact. *)
let with_kernel_stats telemetry f =
  if not (Telemetry.is_recording telemetry) then f ()
  else begin
    let before = Jtype.Kernel.totals () in
    let r = f () in
    List.iter
      (fun (k, v) ->
        let b = Option.value ~default:0 (List.assoc_opt k before) in
        if v - b > 0 then Telemetry.count telemetry k (v - b))
      (Jtype.Kernel.totals ());
    Telemetry.gauge_max telemetry "kernel.cache.entries"
      (float_of_int (Jtype.Merge.cache_size ()));
    r
  end

let infer_type ~equiv ?(jobs = 1) ?(telemetry = Telemetry.nop) docs =
  with_kernel_stats telemetry @@ fun () ->
  if jobs <= 1 then Inference.Parametric.infer ~telemetry ~equiv docs
  else begin
    let chunks = chunked ~jobs docs in
    Telemetry.count telemetry "parallel.merge_fanin" (List.length chunks);
    let partials =
      run ~telemetry ~jobs
        (List.map
           (fun (_, chunk) () ->
             (* per-shard metrics stay out of the sink (chunk boundaries are
                a [jobs] artifact); the shard span is the useful signal *)
             Telemetry.span telemetry "infer.shard" (fun () ->
                 Inference.Parametric.infer ~equiv chunk))
           chunks)
    in
    let t =
      Telemetry.span telemetry "infer.merge" (fun () ->
          Jtype.Merge.merge_all ~equiv partials)
    in
    if Telemetry.is_recording telemetry then begin
      Telemetry.count telemetry "infer.merge_ops" (max 0 (List.length docs - 1));
      Telemetry.observe telemetry "infer.union_width"
        (float_of_int (Inference.Parametric.union_width t))
    end;
    t
  end

let infer_counting ~equiv ?(jobs = 1) ?(telemetry = Telemetry.nop) docs =
  if jobs <= 1 then Inference.Parametric.infer_counting ~telemetry ~equiv docs
  else begin
    let chunks = chunked ~jobs docs in
    Telemetry.count telemetry "parallel.merge_fanin" (List.length chunks);
    run ~telemetry ~jobs
      (List.map
         (fun (_, chunk) () ->
           Telemetry.span telemetry "infer.shard" (fun () ->
               Jtype.Counting.infer ~equiv chunk))
         chunks)
    |> fun partials ->
    Telemetry.count telemetry "infer.merge_ops" (max 0 (List.length docs - 1));
    Telemetry.span telemetry "infer.merge" (fun () ->
        Jtype.Counting.merge_all ~equiv partials)
  end

let validate ?config ?(compiled = true) ?(jobs = 1) ?(telemetry = Telemetry.nop)
    ~root docs =
  (* compiled (default): lower the schema once and share the immutable plan
     across all worker domains, instead of re-parsing and re-interpreting it
     per document. Verdicts and error reports are byte-identical either way;
     the compiled-schema cache makes repeated calls against the same schema
     reuse one compilation. *)
  let check =
    if not compiled then fun v -> Jsonschema.Validate.validate ?config ~root v
    else
      match Jsonschema.Compile.plan_for ~telemetry root with
      | Ok plan -> fun v -> Jsonschema.Compile.run ?config plan v
      | Error es -> fun _ -> Error es
  in
  let validate_chunk (start, chunk) =
    List.mapi
      (fun i v ->
        match check v with
        | Ok () -> None
        | Error es -> Some (start + i, es))
      chunk
    |> List.filter_map Fun.id
  in
  if jobs <= 1 then validate_chunk (0, docs)
  else
    run ~telemetry ~jobs
      (List.map (fun chunk () -> validate_chunk chunk) (chunked ~jobs docs))
    |> List.concat
