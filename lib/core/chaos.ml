type fault = Truncate | Bit_flip | Duplicate_line | Oversize

let fault_name = function
  | Truncate -> "truncate"
  | Bit_flip -> "bit-flip"
  | Duplicate_line -> "duplicate-line"
  | Oversize -> "oversize"

let all_faults = [ Truncate; Bit_flip; Duplicate_line; Oversize ]

type injected = { line : int; out_line : int; fault : fault; site : string }

let site_id fault line = Printf.sprintf "chaos:%s@L%d" (fault_name fault) line

type outcome = {
  text : string;
  injected : injected list;
  corrupting : int;
  oversized : int;
  duplicated : int;
}

(* A prefix after which no suffix forms valid JSON: '{' must be followed by a
   field name or '}', and ',' is neither — the parse error lands on the
   second byte, *inside* the faulted line. Prepending it to every corrupting
   fault guarantees (a) the line quarantines and (b) a stream ingester's
   error recovery never runs past the line's own newline (a bare truncation
   like ["[1,"] is a valid JSON *prefix*, so the parser would otherwise
   continue into — and ruin — the next, healthy record). That containment is
   what lets tests assert [quarantined = corrupting] exactly. *)
let poison = "{,"

let is_valid_json line = Result.is_ok (Json.Parser.parse line)

let truncate st line =
  let n = String.length line in
  if n <= 1 then line
  else String.sub line 0 (1 + Random.State.int st (n - 1))

let bit_flip st line =
  let n = String.length line in
  if n = 0 then line
  else begin
    let b = Bytes.of_string line in
    let i = Random.State.int st n in
    let bit = Random.State.int st 8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
    (* newlines would silently split the record in two and desynchronize
       fault accounting; remap them *)
    let c = Bytes.get b i in
    if c = '\n' || c = '\r' then Bytes.set b i '#';
    Bytes.to_string b
  end

(* Wrap the record in an envelope padded past any reasonable byte budget;
   the result is *valid* JSON that a budgeted ingester must kill. *)
let oversize ~pad line =
  let payload = if is_valid_json line then line else "null" in
  Printf.sprintf {|{"chaos_pad":"%s","doc":%s}|} (String.make pad 'x') payload

let corrupt ?(faults = all_faults) ?(pad = 65536) ~seed ~rate text =
  let st = Random.State.make [| seed |] in
  let faults = if faults = [] then all_faults else faults in
  let pick () = List.nth faults (Random.State.int st (List.length faults)) in
  let buf = Buffer.create (String.length text) in
  let injected = ref [] in
  let corrupting = ref 0 in
  let oversized = ref 0 in
  let duplicated = ref 0 in
  let lines = String.split_on_char '\n' text in
  (* 1-based line the next [emit] lands on in the corrupted output; faults
     record it so quarantine output can be attributed back to the injection
     site even though duplications shift everything below them *)
  let out = ref 1 in
  let emit line = Buffer.add_string buf line; Buffer.add_char buf '\n'; incr out in
  List.iteri
    (fun i line ->
      if String.trim line = "" then ()
      else if Random.State.float st 1.0 >= rate then emit line
      else begin
        let fault = pick () in
        injected :=
          { line = i + 1; out_line = !out; fault; site = site_id fault (i + 1) }
          :: !injected;
        match fault with
        | Duplicate_line ->
            incr duplicated;
            emit line;
            emit line
        | Oversize ->
            incr oversized;
            emit (oversize ~pad line)
        | Truncate | Bit_flip ->
            incr corrupting;
            let corrupted =
              match fault with
              | Truncate -> truncate st line
              | _ -> bit_flip st line
            in
            (* poison unconditionally: a flip inside a string payload can
               leave the line parseable, and a truncation can leave a valid
               JSON *prefix* whose parse error would land on the next line *)
            emit (poison ^ corrupted)
      end)
    lines;
  { text = Buffer.contents buf;
    injected = List.rev !injected;
    corrupting = !corrupting;
    oversized = !oversized;
    duplicated = !duplicated }

(* --- attribution -------------------------------------------------------- *)

let attribute outcome dead =
  (* only the fault classes that *cause* quarantine can claim a dead letter;
     a Duplicate_line record is valid JSON and any failure on it is real *)
  let sites = Hashtbl.create 16 in
  List.iter
    (fun inj ->
      match inj.fault with
      | Truncate | Bit_flip | Oversize -> Hashtbl.replace sites inj.out_line inj.site
      | Duplicate_line -> ())
    outcome.injected;
  List.map
    (fun (d : Resilient.dead_letter) ->
      match Hashtbl.find_opt sites d.Resilient.line with
      | Some site -> { d with Resilient.cause = site }
      | None -> d)
    dead

(* --- deterministic worker-fault plans ----------------------------------- *)

let worker_faults ~seed ~rate ?(permanent = false) () ~shard ~attempt =
  (* the plan is a pure function of (seed, shard): re-seeding per call makes
     the decision independent of call order, so a retried or resumed run
     sees exactly the faults the first run saw *)
  let st = Random.State.make [| 0x57ea1; seed; shard |] in
  if Random.State.float st 1.0 >= rate then None
  else if permanent then Some (Printf.sprintf "chaos:worker@shard%d:permanent" shard)
  else begin
    (* transient: the first k attempts fail, then the shard heals — a retry
       policy with max_attempts > k must recover it *)
    let k = 1 + Random.State.int st 2 in
    if attempt <= k then
      Some (Printf.sprintf "chaos:worker@shard%d:transient%d" shard k)
    else None
  end
