(** Crash-safe checkpoint journal for supervised sharded jobs.

    Append-only NDJSON file: a header line
    [{"format":"jsontool-checkpoint/1","job":...,"engine":...,"input_fp":...}]
    followed by one line per {e completed} shard. Poisoned shards are never
    journaled — a resumed run retries them instead of inheriting their
    quarantine. Every line is flushed as a unit, so a crash loses at most
    a torn final line, which the loader silently drops (along with
    anything after it) and the resumed run recomputes.

    Resume invariants (enforced by {!start}, relied on by {!Pipeline}):

    - the journal's [job] tag, [engine] tag and input fingerprint must
      match, so a journal can never replay against different data, a
      different pipeline, or (tree vs. streaming) a different execution
      engine;
    - entries round-trip exactly ({!Resilient.ingest_of_json} inverts
      {!Resilient.ingest_to_json}; the JSON printer emits
      shortest-round-trip floats), so shards restored from the journal are
      indistinguishable from recomputed ones and the resumed job's output
      is byte-identical to an uninterrupted run's. *)

type entry = {
  e_off : int;   (** shard byte offset in the whole input *)
  e_len : int;
  e_line : int;  (** 1-based first line of the shard *)
  e_ingest : Resilient.ingest;  (** the shard's full ingest result *)
  e_payload : Json.Value.t;
      (** pipeline-specific partial result (serialized partial type for
          inference, failure list for validation, [null] for plain
          ingestion) *)
}

type journal

val fingerprint : string -> string
(** FNV-1a 64-bit hex of the input text — accidental-mismatch detection,
    not cryptography. *)

val start :
  path:string -> resume:bool -> job:string -> engine:string -> input:string ->
  (journal * entry list, string) result
(** Open a journal at [path] for a run of pipeline [job] on execution
    [engine] (["tree"] or ["streaming"]) over [input]. With [resume] false
    (or no file yet): truncate, write the header, return no entries. With
    [resume] true: verify the header against [job], [engine] and [input]'s
    fingerprint (mismatch is an [Error] — never silently recompute against
    the wrong journal or mix engines), load every decodable entry, drop
    the torn tail, and rewrite the file to exactly the trusted entries
    before returning them. *)

val record : journal -> entry -> unit
(** Append one completed-shard entry and flush. *)

val close : journal -> unit

(**/**)

val entry_to_json : entry -> Json.Value.t
val entry_of_json : Json.Value.t -> (entry, string) result
