type budget = {
  max_doc_bytes : int option;
  max_nodes : int option;
  max_string_bytes : int option;
  max_depth : int;
  max_docs : int option;
}

let default_budget =
  { max_doc_bytes = Some (8 * 1024 * 1024);
    max_nodes = Some 1_000_000;
    max_string_bytes = Some (1024 * 1024);
    max_depth = 256;
    max_docs = None }

let unbounded_budget =
  { max_doc_bytes = None;
    max_nodes = None;
    max_string_bytes = None;
    max_depth = Json.Parser.default_options.Json.Parser.max_depth;
    max_docs = None }

let parser_options ?(base = Json.Parser.default_options) b =
  { base with
    Json.Parser.max_depth = b.max_depth;
    max_doc_bytes = b.max_doc_bytes;
    max_nodes = b.max_nodes;
    max_string_bytes = b.max_string_bytes }

type fault_kind =
  | Parse of Json.Parser.error_kind
  | Shard of string

let kind_name = function
  | Parse Json.Parser.Syntax -> "syntax"
  | Parse (Json.Parser.Budget_exceeded v) -> "budget:" ^ Json.Parser.violation_name v
  | Shard label -> "shard:" ^ label

let all_violations =
  [ Json.Parser.Depth_exceeded; Json.Parser.Bytes_exceeded;
    Json.Parser.Nodes_exceeded; Json.Parser.String_exceeded;
    Json.Parser.Documents_exceeded ]

let violation_of_name name =
  List.find_opt (fun v -> Json.Parser.violation_name v = name) all_violations

let kind_of_name name =
  match String.index_opt name ':' with
  | None when name = "syntax" -> Some (Parse Json.Parser.Syntax)
  | None -> None
  | Some i -> (
      let prefix = String.sub name 0 i in
      let rest = String.sub name (i + 1) (String.length name - i - 1) in
      match prefix with
      | "budget" ->
          Option.map
            (fun v -> Parse (Json.Parser.Budget_exceeded v))
            (violation_of_name rest)
      | "shard" -> Some (Shard rest)
      | _ -> None)

type dead_letter = {
  line : int;
  byte_offset : int;
  error : string;
  kind : fault_kind;
  cause : string;
  attempts : int;
  raw_prefix : string;
}

type report = {
  ok : int;
  quarantined : int;
  budget_killed : int;
  budget_causes : (Json.Parser.budget_violation * int) list;
  poisoned : int;
  truncated : bool;
}

let empty_report =
  { ok = 0; quarantined = 0; budget_killed = 0; budget_causes = []; poisoned = 0;
    truncated = false }

(* deterministic order for reports and merges: by flag-style name *)
let sort_causes causes =
  List.sort
    (fun (a, _) (b, _) ->
      String.compare (Json.Parser.violation_name a) (Json.Parser.violation_name b))
    causes

let add_cause causes v =
  let rec go = function
    | [] -> [ (v, 1) ]
    | (v', n) :: rest when v' = v -> (v', n + 1) :: rest
    | c :: rest -> c :: go rest
  in
  go causes

let merge_causes a b =
  sort_causes
    (List.fold_left
       (fun acc (v, n) ->
         let rec bump = function
           | [] -> [ (v, n) ]
           | (v', m) :: rest when v' = v -> (v', m + n) :: rest
           | c :: rest -> c :: bump rest
         in
         bump acc)
       a b)

type ingest = {
  docs : Json.Value.t list;
  dead : dead_letter list;
  report : report;
}

let prefix_len = 80

let raw_prefix src ~lo ~hi =
  let hi = min hi (lo + prefix_len) in
  String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c)
    (String.sub src lo (max 0 (hi - lo)))

(* Global (whole-input) line/column for an error reported relative to a
   document that starts on [start_line]. *)
let global_error ~start_line (e : Json.Parser.error) =
  Printf.sprintf "line %d, column %d: %s"
    (start_line + e.Json.Parser.position.Json.Lexer.line - 1)
    e.Json.Parser.position.Json.Lexer.column e.Json.Parser.message

let is_ws c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let ingest_with ?(budget = default_budget) ?options ?(first_line = 1)
    ?(base_offset = 0) ?(attempt = 1) ?(tick = fun () -> ())
    ?(telemetry = Telemetry.nop) ~parse_doc src =
  let options =
    { (parser_options ?base:options budget) with Json.Parser.allow_trailing = true }
  in
  let n = String.length src in
  (* incremental global line counter: newlines are counted exactly once.
     [first_line]/[base_offset] let a shard of a larger input report
     line numbers and byte offsets in the coordinates of the whole input. *)
  let line = ref first_line in
  let counted = ref 0 in
  let advance_to off =
    let off = min off n in
    for i = !counted to off - 1 do
      (* i < n by the clamp above *)
      if String.unsafe_get src i = '\n' then incr line
    done;
    counted := max !counted off
  in
  let rec skip_ws pos = if pos < n && is_ws src.[pos] then skip_ws (pos + 1) else pos in
  let docs = ref [] and dead = ref [] in
  let ok = ref 0 and quarantined = ref 0 and budget_killed = ref 0 in
  let causes = ref [] in
  let truncated = ref false in
  let add_dead ~start ~stop ~error ~kind =
    (match kind with
     | Json.Parser.Budget_exceeded v ->
         incr budget_killed;
         causes := add_cause !causes v;
         Telemetry.count telemetry
           ("ingest.budget." ^ Json.Parser.violation_name v) 1
     | Json.Parser.Syntax ->
         incr quarantined;
         Telemetry.count telemetry "ingest.docs_quarantined" 1);
    dead :=
      { line = !line;
        byte_offset = base_offset + start;
        error;
        kind = Parse kind;
        cause = kind_name (Parse kind);
        attempts = attempt;
        raw_prefix = raw_prefix src ~lo:start ~hi:stop }
      :: !dead
  in
  let rec go pos =
    tick ();
    let pos = skip_ws pos in
    advance_to pos;
    if pos >= n then ()
    else
      match budget.max_docs with
      | Some cap when !ok >= cap ->
          (* the document-count budget: one dead letter for the cut, the
             rest of the input is not scanned *)
          truncated := true;
          add_dead ~start:pos ~stop:n
            ~error:
              (Printf.sprintf "line %d: document budget of %d reached; remaining input dropped"
                 !line cap)
            ~kind:(Json.Parser.Budget_exceeded Json.Parser.Documents_exceeded)
      | _ -> (
          match parse_doc ~options ~telemetry src ~pos with
          | Ok (v, next_pos) ->
              incr ok;
              Telemetry.count telemetry "ingest.docs_ok" 1;
              docs := v :: !docs;
              advance_to next_pos;
              go next_pos
          | Error e ->
              (* quarantine the span and resume at the next line boundary —
                 per-document containment for NDJSON, line-level containment
                 for concatenated JSON *)
              let err_off = max pos (min e.Json.Parser.position.Json.Lexer.offset n) in
              let resume =
                match String.index_from_opt src err_off '\n' with
                | Some i -> i + 1
                | None -> n
              in
              add_dead ~start:pos ~stop:resume
                ~error:(global_error ~start_line:!line e)
                ~kind:e.Json.Parser.kind;
              advance_to resume;
              go resume)
  in
  go 0;
  ( List.rev !docs,
    List.rev !dead,
    { ok = !ok;
      quarantined = !quarantined;
      budget_killed = !budget_killed;
      budget_causes = sort_causes !causes;
      poisoned = 0;
      truncated = !truncated } )

let ingest ?budget ?options ?first_line ?base_offset ?attempt ?tick ?telemetry
    src =
  let docs, dead, report =
    ingest_with ?budget ?options ?first_line ?base_offset ?attempt ?tick
      ?telemetry
      ~parse_doc:(fun ~options ~telemetry src ~pos ->
        Json.Parser.parse_substring ~options ~telemetry src ~pos)
      src
  in
  { docs; dead; report }

let parse_ndjson_strict ?(budget = unbounded_budget) ?options src =
  let r = ingest ~budget ?options src in
  match r.dead with
  | [] -> Ok r.docs
  | d :: _ -> Error d.error

(* --- fast-path projection with degradation --------------------------- *)

type projected = {
  rows : (string * Json.Value.t) list list;
  proj_dead : dead_letter list;
  proj_report : report;
  mison : Fastjson.Mison.stats;
}

let project ?(budget = default_budget) ?(telemetry = Telemetry.nop) ~fields src =
  let options = parser_options budget in
  let t = Fastjson.Mison.create ~telemetry { Fastjson.Mison.fields } in
  let rows = ref [] and dead = ref [] in
  let ok = ref 0 and quarantined = ref 0 and budget_killed = ref 0 in
  let causes = ref [] in
  let truncated = ref false in
  let n = String.length src in
  let rec go lineno pos =
    if pos < n then begin
      let stop =
        match String.index_from_opt src pos '\n' with Some i -> i | None -> n
      in
      let line_str = String.sub src pos (stop - pos) in
      (if String.trim line_str <> "" then
         match budget.max_docs with
         | Some cap when !ok >= cap -> truncated := true
         | _ -> (
             match Fastjson.Mison.parse_line ~options t line_str with
             | Ok row ->
                 incr ok;
                 Telemetry.count telemetry "ingest.docs_ok" 1;
                 rows := row :: !rows
             | Error msg ->
                 (* classify by re-parsing: the fast path reports plain
                    strings, but the report distinguishes budget kills *)
                 let kind =
                   match Json.Parser.parse ~options line_str with
                   | Error e -> e.Json.Parser.kind
                   | Ok _ -> Json.Parser.Syntax
                 in
                 (match kind with
                  | Json.Parser.Budget_exceeded v ->
                      incr budget_killed;
                      causes := add_cause !causes v;
                      Telemetry.count telemetry
                        ("ingest.budget." ^ Json.Parser.violation_name v) 1
                  | Json.Parser.Syntax ->
                      incr quarantined;
                      Telemetry.count telemetry "ingest.docs_quarantined" 1);
                 dead :=
                   { line = lineno;
                     byte_offset = pos;
                     error = msg;
                     kind = Parse kind;
                     cause = kind_name (Parse kind);
                     attempts = 1;
                     raw_prefix = raw_prefix src ~lo:pos ~hi:stop }
                   :: !dead));
      go (lineno + 1) (stop + 1)
    end
  in
  go 1 0;
  { rows = List.rev !rows;
    proj_dead = List.rev !dead;
    proj_report =
      { ok = !ok;
        quarantined = !quarantined;
        budget_killed = !budget_killed;
        budget_causes = sort_causes !causes;
        poisoned = 0;
        truncated = !truncated };
    mison = Fastjson.Mison.stats t }

(* --- reports as JSON --------------------------------------------------- *)

let report_to_json r =
  let base =
    [ ("ok", Json.Value.Int r.ok);
      ("quarantined", Json.Value.Int r.quarantined);
      ("budget_killed", Json.Value.Int r.budget_killed) ]
  in
  (* the cause breakdown is keyed by flag-style name and omitted when there
     were no budget kills, so the common report shape is unchanged; the
     [poisoned] shard counter likewise only appears under a supervisor *)
  let by_cause =
    match r.budget_causes with
    | [] -> []
    | causes ->
        [ ( "budget_by_cause",
            Json.Value.Object
              (List.map
                 (fun (v, n) ->
                   (Json.Parser.violation_name v, Json.Value.Int n))
                 causes) ) ]
  in
  let poisoned =
    if r.poisoned = 0 then [] else [ ("poisoned", Json.Value.Int r.poisoned) ]
  in
  Json.Value.Object
    (base @ by_cause @ poisoned @ [ ("truncated", Json.Value.Bool r.truncated) ])

let dead_letter_to_json d =
  Json.Value.Object
    [ ("line", Json.Value.Int d.line);
      ("byte_offset", Json.Value.Int d.byte_offset);
      ("kind", Json.Value.String (kind_name d.kind));
      ("cause", Json.Value.String d.cause);
      ("attempts", Json.Value.Int d.attempts);
      ("error", Json.Value.String d.error);
      ("raw_prefix", Json.Value.String d.raw_prefix) ]

(* --- round trips for the checkpoint journal ---------------------------- *)

let ( let* ) = Result.bind

let member name = function
  | Json.Value.Object fields -> (
      match List.assoc_opt name fields with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "resilient json: missing %S" name))
  | _ -> Error "resilient json: expected an object"

let int_field name v =
  let* f = member name v in
  match f with
  | Json.Value.Int n -> Ok n
  | _ -> Error (Printf.sprintf "resilient json: %S must be an integer" name)

let string_field name v =
  let* f = member name v in
  match f with
  | Json.Value.String s -> Ok s
  | _ -> Error (Printf.sprintf "resilient json: %S must be a string" name)

let bool_field name v =
  let* f = member name v in
  match f with
  | Json.Value.Bool b -> Ok b
  | _ -> Error (Printf.sprintf "resilient json: %S must be a boolean" name)

let report_of_json v =
  let* ok = int_field "ok" v in
  let* quarantined = int_field "quarantined" v in
  let* budget_killed = int_field "budget_killed" v in
  let* truncated = bool_field "truncated" v in
  let poisoned =
    match int_field "poisoned" v with Ok n -> n | Error _ -> 0
  in
  let* budget_causes =
    match v with
    | Json.Value.Object fields -> (
        match List.assoc_opt "budget_by_cause" fields with
        | None -> Ok []
        | Some (Json.Value.Object causes) ->
            List.fold_left
              (fun acc (name, n) ->
                let* acc = acc in
                match (violation_of_name name, n) with
                | Some viol, Json.Value.Int n -> Ok ((viol, n) :: acc)
                | _ -> Error ("resilient json: bad budget cause " ^ name))
              (Ok []) causes
            |> Result.map List.rev
        | Some _ -> Error "resilient json: budget_by_cause must be an object")
    | _ -> Error "resilient json: expected an object"
  in
  Ok
    { ok; quarantined; budget_killed; budget_causes = sort_causes budget_causes;
      poisoned; truncated }

let dead_letter_of_json v =
  let* line = int_field "line" v in
  let* byte_offset = int_field "byte_offset" v in
  let* kind_str = string_field "kind" v in
  let* cause = string_field "cause" v in
  let* attempts = int_field "attempts" v in
  let* error = string_field "error" v in
  let* raw_prefix = string_field "raw_prefix" v in
  match kind_of_name kind_str with
  | None -> Error ("resilient json: unknown dead-letter kind " ^ kind_str)
  | Some kind -> Ok { line; byte_offset; error; kind; cause; attempts; raw_prefix }

let ingest_to_json r =
  Json.Value.Object
    [ ("docs", Json.Value.Array r.docs);
      ("dead", Json.Value.Array (List.map dead_letter_to_json r.dead));
      ("report", report_to_json r.report) ]

let ingest_of_json v =
  let* docs = member "docs" v in
  let* dead = member "dead" v in
  let* report = member "report" v in
  match (docs, dead) with
  | Json.Value.Array docs, Json.Value.Array dead ->
      let* dead =
        List.fold_left
          (fun acc d ->
            let* acc = acc in
            let* d = dead_letter_of_json d in
            Ok (d :: acc))
          (Ok []) dead
        |> Result.map List.rev
      in
      let* report = report_of_json report in
      Ok { docs; dead; report }
  | _ -> Error "resilient json: docs and dead must be arrays"
