(* Fault-tolerant shard supervision over the Parallel domain pool.

   The pool (Parallel.run) is deliberately dumb: a thunk that raises kills
   the whole job. This layer wraps each shard in a retry loop *inside* its
   pooled thunk — the pool never sees an exception — so one pathological
   shard degrades to a typed Poisoned outcome instead of aborting a
   multi-hour job. Everything that could make retries nondeterministic is
   pinned: backoff jitter derives from a hash of (shard, attempt), not a
   PRNG or the clock; deadlines are enforced cooperatively at document
   boundaries (the tick callback), so a timeout can fire mid-shard but
   never mid-document; and injected faults come from a caller-supplied
   pure plan. Same input, same policy, same plan => same outcomes. *)

type failure_class =
  | Timed_out
  | Fault of string
  | Budget of string
  | Parse of string
  | Crash of string

let failure_label = function
  | Timed_out -> "timeout"
  | Fault _ -> "fault"
  | Budget _ -> "budget"
  | Parse _ -> "parse"
  | Crash _ -> "crash"

let failure_describe = function
  | Timed_out -> "timeout"
  | Fault s -> s
  | Budget s -> "budget:" ^ s
  | Parse s -> "parse:" ^ s
  | Crash s -> "crash:" ^ s

exception Abort of failure_class

type policy = {
  max_attempts : int;
  timeout_ms : float option;
  base_backoff_ms : float;
  max_backoff_ms : float;
  jitter : float;
  retryable : failure_class -> bool;
  degrade_threshold : float option;
}

let default_policy =
  { max_attempts = 3;
    timeout_ms = None;
    base_backoff_ms = 1.0;
    max_backoff_ms = 50.0;
    jitter = 0.5;
    (* a crash is a bug, not weather: retrying it hides the bug and burns
       the attempt budget. Everything typed — timeouts, injected faults,
       budget/parse aborts — defaults to retryable. *)
    retryable = (function Crash _ -> false | _ -> true);
    degrade_threshold = Some 0.5 }

let no_retry =
  { default_policy with
    max_attempts = 1;
    timeout_ms = None;
    degrade_threshold = None }

(* Deterministic decorrelated jitter: spread the capped exponential delay
   over [1-jitter, 1] using a hash of the (shard, attempt) pair. Distinct
   shards retrying in lockstep land on distinct delays (the thundering-herd
   fix jitter exists for), yet a re-run reproduces the exact schedule. *)
let backoff_ms policy ~shard ~attempt =
  let expo = policy.base_backoff_ms *. (2.0 ** float_of_int (attempt - 1)) in
  let capped = Float.min expo policy.max_backoff_ms in
  let jitter = Float.max 0.0 (Float.min 1.0 policy.jitter) in
  let frac = float_of_int (Hashtbl.hash (shard, attempt) land 0xFFFF) /. 65535.0 in
  capped *. (1.0 -. jitter +. (jitter *. frac))

type 'a outcome =
  | Done of { value : 'a; attempts : int }
  | Poisoned of { failure : failure_class; attempts : int }

type stats = {
  shards : int;
  attempts : int;
  retries : int;
  timeouts : int;
  faults : int;
  crashes : int;
  poisoned : int;
  degraded : int;  (* poisoned shards recovered by the sequential fallback *)
}

let run ?(policy = default_policy) ?(telemetry = Telemetry.nop) ?inject
    ~jobs tasks =
  let n = List.length tasks in
  let attempts_c = Atomic.make 0 in
  let retries_c = Atomic.make 0 in
  let timeouts_c = Atomic.make 0 in
  let faults_c = Atomic.make 0 in
  let crashes_c = Atomic.make 0 in
  let classify shard attempt task =
    let deadline =
      Option.map (fun ms -> Telemetry.now () +. (ms /. 1000.0)) policy.timeout_ms
    in
    let tick () =
      match deadline with
      | Some d when Telemetry.now () > d -> raise (Abort Timed_out)
      | _ -> ()
    in
    let attempt_body () =
      (* injected faults hit before any work, like a worker dying on pickup *)
      (match inject with
      | Some plan -> (
          match plan ~shard ~attempt with
          | Some site -> raise (Abort (Fault site))
          | None -> ())
      | None -> ());
      task ~attempt ~tick
    in
    match attempt_body () with
    | v -> Ok v
    | exception Abort c -> Error c
    | exception e -> Error (Crash (Printexc.to_string e))
  in
  let note_failure = function
    | Timed_out -> Atomic.incr timeouts_c
    | Fault _ -> Atomic.incr faults_c
    | Crash _ -> Atomic.incr crashes_c
    | Budget _ | Parse _ -> ()
  in
  let supervise shard task () =
    let rec go attempt =
      Atomic.incr attempts_c;
      match classify shard attempt task with
      | Ok v -> Done { value = v; attempts = attempt }
      | Error c ->
          note_failure c;
          if attempt < policy.max_attempts && policy.retryable c then begin
            Atomic.incr retries_c;
            let ms = backoff_ms policy ~shard ~attempt in
            Telemetry.observe telemetry "supervisor.backoff_ms" ms;
            if ms > 0.0 then Unix.sleepf (ms /. 1000.0);
            go (attempt + 1)
          end
          else Poisoned { failure = c; attempts = attempt }
    in
    go 1
  in
  (* the supervised thunks never raise, so the pool's re-raise path is
     provably dead here: one poisoned shard cannot abort its siblings *)
  let outcomes =
    Parallel.run ~telemetry ~jobs
      (List.mapi (fun shard task -> supervise shard task) tasks)
  in
  let poisoned_n =
    List.fold_left
      (fun acc -> function Poisoned _ -> acc + 1 | Done _ -> acc)
      0 outcomes
  in
  (* Graceful degradation: mass poisoning means the *environment* (pool,
     injected worker faults, a deadline tuned too tight) is the problem,
     not the data. Shed to one sequential, deadline-free, injection-free
     attempt per poisoned shard in the calling domain — slower, but the
     job finishes. Genuinely poisonous data still fails here and stays
     quarantined. *)
  let degraded_c = ref 0 in
  let outcomes =
    match policy.degrade_threshold with
    | Some threshold
      when n > 0 && float_of_int poisoned_n /. float_of_int n > threshold ->
        List.map2
          (fun task outcome ->
            match outcome with
            | Done _ -> outcome
            | Poisoned { attempts; _ } -> (
                let attempt = attempts + 1 in
                Atomic.incr attempts_c;
                match task ~attempt ~tick:(fun () -> ()) with
                | v ->
                    incr degraded_c;
                    Done { value = v; attempts = attempt }
                | exception Abort c ->
                    note_failure c;
                    Poisoned { failure = c; attempts = attempt }
                | exception e ->
                    let c = Crash (Printexc.to_string e) in
                    note_failure c;
                    Poisoned { failure = c; attempts = attempt }))
          tasks outcomes
    | _ -> outcomes
  in
  let poisoned_n =
    List.fold_left
      (fun acc -> function Poisoned _ -> acc + 1 | Done _ -> acc)
      0 outcomes
  in
  let stats =
    { shards = n;
      attempts = Atomic.get attempts_c;
      retries = Atomic.get retries_c;
      timeouts = Atomic.get timeouts_c;
      faults = Atomic.get faults_c;
      crashes = Atomic.get crashes_c;
      poisoned = poisoned_n;
      degraded = !degraded_c }
  in
  if Telemetry.is_recording telemetry then begin
    Telemetry.count telemetry "supervisor.attempts" stats.attempts;
    if stats.retries > 0 then
      Telemetry.count telemetry "supervisor.retries" stats.retries;
    if stats.timeouts > 0 then
      Telemetry.count telemetry "supervisor.timeouts" stats.timeouts;
    if stats.faults > 0 then
      Telemetry.count telemetry "supervisor.faults_injected" stats.faults;
    if stats.crashes > 0 then
      Telemetry.count telemetry "supervisor.crashes" stats.crashes;
    if stats.poisoned > 0 then
      Telemetry.count telemetry "supervisor.poisoned" stats.poisoned;
    if stats.degraded > 0 then
      Telemetry.count telemetry "supervisor.degraded" stats.degraded
  end;
  (outcomes, stats)

let stats_to_json s =
  let fields =
    [ ("shards", s.shards); ("attempts", s.attempts); ("retries", s.retries);
      ("timeouts", s.timeouts); ("faults", s.faults); ("crashes", s.crashes);
      ("poisoned", s.poisoned); ("degraded", s.degraded) ]
  in
  Json.Value.Object
    (List.map (fun (k, v) -> (k, Json.Value.Int v)) fields)
