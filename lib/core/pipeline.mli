(** End-to-end pipelines combining the toolkit's components — the workflows
    a user of the tutorial's systems would actually run. *)

(** {1 Inference pipeline} *)

type inferred = {
  jtype : Jtype.Types.t;            (** the union-aware structural type *)
  counting : Jtype.Counting.t;      (** with cardinalities *)
  json_schema : Json.Value.t;       (** translated to JSON Schema *)
  typescript : string;              (** TypeScript declarations *)
  swift : string;                   (** Swift Codable declarations *)
}

val infer :
  ?equiv:Jtype.Merge.equiv -> ?name:string -> ?jobs:int ->
  ?telemetry:Telemetry.sink -> Json.Value.t list -> inferred
(** One call from collection to every schema artifact (default equivalence
    [Kind], default root declaration name ["Root"]). [jobs > 1] runs the
    inference map/reduce shard-parallel ({!Parallel}); the result is
    identical for any job count. [telemetry] (default {!Telemetry.nop})
    observes without changing any output — see {!Telemetry}. *)

type engine = [ `Tree | `Streaming ]
(** How the NDJSON pipelines execute. [`Tree] (the executable spec)
    materializes every document as a {!Json.Value.t} and folds over the
    trees. [`Streaming] (the default) fuses parsing with the fold:
    inference types the token stream directly
    ({!Inference.Streaming.infer_tokens}) and validation walks a compiled
    plan over it, skimming subtrees the plan provably ignores
    ({!Jsonschema.Compile.run_stream}). The two engines produce
    byte-identical inferred types, verdicts, error lists and dead-letter
    coordinates — enforced by a differential QCheck oracle — and differ
    only in cost and in the [stream.*] telemetry the streaming engine adds.
    The one observable difference: streaming pipelines return their
    {!Resilient.ingest} with an empty [docs] list (not materializing it is
    the point); consumers must read counts off [report], not [docs]. *)

val infer_ndjson :
  ?equiv:Jtype.Merge.equiv -> ?name:string -> ?engine:engine -> ?jobs:int ->
  ?telemetry:Telemetry.sink -> string -> (inferred, string) result
(** Strict inference from raw text: fail-fast on the first bad document,
    with global line/column in the error. The default [`Streaming] engine
    types the token stream shard-parallel without materializing documents;
    [`Tree] parses through {!Parallel.parse_ndjson_strict}. Same result,
    same error either way. *)

val infer_ndjson_resilient :
  ?equiv:Jtype.Merge.equiv -> ?name:string -> ?budget:Resilient.budget ->
  ?engine:engine -> ?jobs:int -> ?telemetry:Telemetry.sink ->
  string -> inferred option * Resilient.ingest
(** Guarded variant: corrupted or over-budget documents are quarantined
    (see the returned {!Resilient.ingest}) and inference runs on the
    survivors; [None] when nothing survived. Never raises. [jobs > 1]
    shards ingestion and inference over a domain pool ({!Parallel}) with
    byte-identical results. Under the default [`Streaming] engine each
    shard folds tokens straight into per-document types with a per-shard
    field-name interning scratch, and the returned ingest carries no
    documents. *)

(** {1 Supervised execution with checkpoint/resume}

    Fault-tolerant variants of the resilient pipelines: shards run under
    {!Supervisor.run} (retry with deterministic backoff, cooperative
    per-shard deadlines, graceful degradation), a shard that exhausts its
    attempts is {e quarantined} as one {!Resilient.dead_letter} with
    whole-input coordinates ([kind = Shard _], [report.poisoned] counts
    it) instead of failing the job, and [?checkpoint] journals each
    completed shard so an interrupted run resumes byte-identically
    ({!Checkpoint}). Results are deterministic: same input, same policy,
    same fault plan — same merged output, for any [jobs], interrupted or
    not. Resume matches journal entries by shard coordinates, so use the
    same [jobs] value to actually skip work (a different [jobs] is safe
    but recomputes everything). *)

type supervision = {
  sup_stats : Supervisor.stats;
  sup_resumed : int;  (** shards restored from the checkpoint journal *)
}

val ingest_ndjson_supervised :
  ?budget:Resilient.budget -> ?options:Json.Parser.options ->
  ?policy:Supervisor.policy ->
  ?inject:(shard:int -> attempt:int -> string option) ->
  ?checkpoint:string -> ?resume:bool -> ?jobs:int ->
  ?telemetry:Telemetry.sink -> string ->
  (Resilient.ingest * supervision, string) result
(** Supervised {!Parallel.ingest}. [inject] is a worker-fault plan keyed
    by {e global} shard index (see {!Chaos.worker_faults}) — consistent
    across retries and resume, and never consulted for journaled shards.
    [Error] only for an unusable journal (wrong job, fingerprint
    mismatch); shard failures never error. *)

val infer_ndjson_supervised :
  ?equiv:Jtype.Merge.equiv -> ?name:string -> ?budget:Resilient.budget ->
  ?options:Json.Parser.options -> ?policy:Supervisor.policy ->
  ?inject:(shard:int -> attempt:int -> string option) ->
  ?checkpoint:string -> ?resume:bool -> ?engine:engine -> ?jobs:int ->
  ?telemetry:Telemetry.sink -> string ->
  (inferred option * Resilient.ingest * supervision, string) result
(** Supervised {!infer_ndjson_resilient}: each shard journals its partial
    type ({!Jtype.Types.to_json} / {!Jtype.Counting.to_json}) alongside
    its ingest; the final type merges completed shards' partials, so only
    genuinely-poisoned shards' documents are missing from it. The journal
    job tag includes [equiv] — a [Kind] journal cannot resume a [Label]
    run — and the journal header records the engine, since a streaming
    journal's ingest records carry no documents: a [`Tree] journal refuses
    to resume a [`Streaming] run and vice versa. *)

val validate_ndjson_supervised :
  ?config:Jsonschema.Validate.config -> ?compiled:bool ->
  ?budget:Resilient.budget ->
  ?options:Json.Parser.options -> ?policy:Supervisor.policy ->
  ?inject:(shard:int -> attempt:int -> string option) ->
  ?checkpoint:string -> ?resume:bool -> ?engine:engine -> ?jobs:int ->
  ?telemetry:Telemetry.sink -> root:Json.Value.t -> string ->
  (Resilient.ingest * (int * Jsonschema.Validate.error list) list * supervision,
   string)
  result
(** Supervised {!validate_ndjson}: failure indices are into the merged
    surviving-document sequence (the tree engine's [ingest.docs]), exactly
    as the unsupervised path reports them. [compiled] (default [true])
    compiles the schema once and shares the plan across shards and retry
    attempts; the default [`Streaming] engine additionally requires it —
    with [compiled = false], or when the schema fails to compile, the tree
    engine runs regardless of [engine]. The journal job tag fingerprints
    the schema and the journal header records the {e effective} engine, so
    a journal written against one schema or engine refuses to resume a run
    against another ([config] is not fingerprinted — resume with the same
    flags). *)

type checked = {
  chk_inferred : inferred option;
      (** the inferred artifacts, as {!infer_ndjson_supervised} *)
  chk_verdict : Jtype.Contain.verdict option;
      (** containment of the inferred type in the schema; [None] iff no
          document survived ingestion *)
}

val check_ndjson :
  ?equiv:Jtype.Merge.equiv -> ?name:string -> ?budget:Resilient.budget ->
  ?options:Json.Parser.options -> ?policy:Supervisor.policy ->
  ?inject:(shard:int -> attempt:int -> string option) ->
  ?checkpoint:string -> ?resume:bool -> ?engine:engine -> ?jobs:int ->
  ?telemetry:Telemetry.sink -> ?vconfig:Jsonschema.Validate.config ->
  root:Json.Value.t -> string ->
  (checked * Resilient.ingest * supervision, string) result
(** Schema-drift check: infer the type of the corpus (through the full
    supervised/parallel machinery of {!infer_ndjson_supervised}, including
    engine choice and checkpoint/resume), then decide whether that type is
    contained in schema [root] with {!Jtype.Contain.check}. The
    containment step's cost depends on the type and the schema, not the
    corpus size. [vconfig] configures witness verification (notably
    [assert_formats]). Kernel counters [subtype.queries]/[subtype.hits]/
    [subtype.unknown] from the containment step are published to
    [telemetry]. *)

(** {1 Validation pipeline} *)

val validate_collection :
  ?config:Jsonschema.Validate.config -> ?compiled:bool -> ?jobs:int ->
  ?telemetry:Telemetry.sink -> root:Json.Value.t -> Json.Value.t list ->
  (int, (int * Jsonschema.Validate.error list) list) result
(** Validate every document against a JSON Schema document; [Ok n] = all [n]
    valid, otherwise the failing indices with their errors. [jobs > 1]
    validates document batches shard-parallel. [compiled] (default [true])
    shares one {!Jsonschema.Compile} plan across shards; verdicts and
    error reports are byte-identical either way. *)

val validate_ndjson :
  ?config:Jsonschema.Validate.config -> ?compiled:bool ->
  ?budget:Resilient.budget -> ?engine:engine ->
  ?jobs:int -> ?telemetry:Telemetry.sink -> root:Json.Value.t -> string ->
  Resilient.ingest * (int * Jsonschema.Validate.error list) list
(** Guarded validation from raw text: unparseable documents are quarantined
    in the ingest report, surviving documents are validated (indices are
    into the surviving-document sequence — the tree engine's
    [ingest.docs]). Never raises. [jobs > 1] shards both ingestion and
    validation over a domain pool. The default [`Streaming] engine fuses
    parse and validation per shard through the compiled plan's access
    analysis ({!Jsonschema.Compile.run_stream}); it requires [compiled]
    (the default) and a well-formed schema, falling back to the tree
    engine otherwise. *)

val validate_ndjson_strict :
  ?config:Jsonschema.Validate.config -> ?compiled:bool -> ?engine:engine ->
  ?jobs:int -> ?telemetry:Telemetry.sink -> root:Json.Value.t -> string ->
  (int * (int * Jsonschema.Validate.error list) list, string) result
(** Fail-fast validation from raw text: the first unparseable document
    aborts with its (whole-input line/column) error, otherwise
    [Ok (ndocs, failures)] — the document count and the failing indices
    with their errors ([failures = []] means every document validated).
    Engine semantics as in {!validate_ndjson}. *)

(** {1 Dataset profiling} *)

val profile : Json.Value.t list -> Json.Value.t
(** A JSON report: document count, inferred type (paper syntax), mongo-style
    field statistics, skeleton summary, size metrics. The CLI's [stats]
    command prints this. *)

(** {1 Translation pipeline} *)

type translated = {
  avro_schema : Json.Value.t;
  avro_bytes : string;
  columnar_bytes : string;
  json_bytes : int;     (** size of the NDJSON text, for comparison *)
}

val translate :
  ?equiv:Jtype.Merge.equiv -> Json.Value.t list -> (translated, string) result
(** Infer, derive Avro + Spark schemas, encode both ways. *)

val translate_ndjson :
  ?equiv:Jtype.Merge.equiv -> ?budget:Resilient.budget -> string ->
  (translated, string) result option * Resilient.ingest
(** Guarded translation from raw text: ingest under the budget, then
    {!translate} the survivors ([None] when nothing survived). *)
