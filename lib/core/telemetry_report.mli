(** Rendering {!Telemetry.snapshot}s: the machine form behind the CLI's
    [--stats-json] and the human table behind [--stats].

    Both forms list every section (counters, gauges, histograms, spans)
    sorted by metric name, so the key set for a given workload is stable —
    the golden cram test pins it with values masked. *)

val to_json : Telemetry.snapshot -> Json.Value.t
(** [{"counters": {..}, "gauges": {..}, "histograms": {name: {count, sum,
    min, max, p50, p90, p99}}, "spans": {path: {calls, total_s, max_s}}}] *)

val to_table : Telemetry.snapshot -> string
(** Aligned sections for a terminal; durations scaled to s/ms/us. *)
