type inferred = {
  jtype : Jtype.Types.t;
  counting : Jtype.Counting.t;
  json_schema : Json.Value.t;
  typescript : string;
  swift : string;
}

let build_inferred ~name t c =
  {
    jtype = t;
    counting = c;
    json_schema = Jtype.Interop.to_schema_json t;
    typescript = Jtype.Typescript.declaration ~name t;
    swift = Jtype.Swift.declaration ~name t;
  }

let infer ?(equiv = Jtype.Merge.Kind) ?(name = "Root") ?(jobs = 1)
    ?(telemetry = Telemetry.nop) values =
  let t = Parallel.infer_type ~equiv ~jobs ~telemetry values in
  let c = Parallel.infer_counting ~equiv ~jobs ~telemetry values in
  build_inferred ~name t c

let infer_ndjson ?(equiv = Jtype.Merge.Kind) ?(name = "Root") text =
  match Resilient.parse_ndjson_strict text with
  | Error msg -> Error msg
  | Ok docs -> Ok (infer ~equiv ~name docs)

let infer_ndjson_resilient ?equiv ?name ?budget ?(jobs = 1) ?telemetry text =
  let r = Parallel.ingest ?budget ~jobs ?telemetry text in
  let inferred =
    match r.Resilient.docs with
    | [] -> None
    | docs -> Some (infer ?equiv ?name ~jobs ?telemetry docs)
  in
  (inferred, r)

let validate_collection ?config ?(jobs = 1) ?telemetry ~root values =
  let failures = Parallel.validate ?config ~jobs ?telemetry ~root values in
  if failures = [] then Ok (List.length values) else Error failures

let validate_ndjson ?config ?budget ?(jobs = 1) ?telemetry ~root text =
  let r = Parallel.ingest ?budget ~jobs ?telemetry text in
  let failures =
    Parallel.validate ?config ~jobs ?telemetry ~root r.Resilient.docs
  in
  (r, failures)

let profile values =
  let t = Inference.Parametric.infer ~equiv:Jtype.Merge.Kind values in
  let mongo = Inference.Mongo.analyze values in
  let sk = Inference.Skeleton.build values in
  let total_bytes =
    List.fold_left (fun acc v -> acc + String.length (Json.Printer.to_string v)) 0 values
  in
  Json.Value.Object
    [ ("documents", Json.Value.Int (List.length values));
      ("json_bytes", Json.Value.Int total_bytes);
      ("inferred_type", Json.Value.String (Jtype.Types.to_string t));
      ("type_size", Json.Value.Int (Jtype.Types.size t));
      ("field_statistics", Inference.Mongo.to_json mongo);
      ("skeleton",
       Json.Value.Object
         [ ("structures",
            Json.Value.Array
              (List.map
                 (fun (s, n) ->
                   Json.Value.Object
                     [ ("structure",
                        Json.Value.String (Inference.Skeleton.structure_to_string s));
                       ("count", Json.Value.Int n) ])
                 sk.Inference.Skeleton.groups));
           ("documents_outside_skeleton", Json.Value.Int sk.Inference.Skeleton.dropped) ]) ]

type translated = {
  avro_schema : Json.Value.t;
  avro_bytes : string;
  columnar_bytes : string;
  json_bytes : int;
}

let translate ?(equiv = Jtype.Merge.Kind) values =
  let t = Inference.Parametric.infer ~equiv values in
  let avro_schema = Translate.Avro.of_jtype ~name:"root" t in
  match Translate.Avro.encode_all avro_schema values with
  | Error m -> Error ("avro: " ^ m)
  | Ok avro_bytes -> (
      let spark = Inference.Spark.infer values in
      match Translate.Columnar.shred ~schema:spark values with
      | Error m -> Error ("columnar: " ^ m)
      | Ok table ->
          Ok
            {
              avro_schema = Translate.Avro.schema_to_json avro_schema;
              avro_bytes;
              columnar_bytes = Translate.Columnar.encode table;
              json_bytes = String.length (Datagen.to_ndjson values);
            })

let translate_ndjson ?equiv ?budget text =
  let r = Resilient.ingest ?budget text in
  match r.Resilient.docs with
  | [] -> (None, r)
  | docs -> (Some (translate ?equiv docs), r)
