type inferred = {
  jtype : Jtype.Types.t;
  counting : Jtype.Counting.t;
  json_schema : Json.Value.t;
  typescript : string;
  swift : string;
}

let build_inferred ~name t c =
  {
    jtype = t;
    counting = c;
    json_schema = Jtype.Interop.to_schema_json t;
    typescript = Jtype.Typescript.declaration ~name t;
    swift = Jtype.Swift.declaration ~name t;
  }

let infer ?(equiv = Jtype.Merge.Kind) ?(name = "Root") ?(jobs = 1)
    ?(telemetry = Telemetry.nop) values =
  let t = Parallel.infer_type ~equiv ~jobs ~telemetry values in
  let c = Parallel.infer_counting ~equiv ~jobs ~telemetry values in
  build_inferred ~name t c

(* --- the streaming engine ----------------------------------------------- *)

type engine = [ `Tree | `Streaming ]

(* one token-level fold instance per shard: the factory shape matches
   [Parallel.ingest_with], so the interning scratch stays domain-local *)
let streaming_infer_doc ~equiv () =
  let scratch = Inference.Streaming.scratch () in
  fun ~options ~telemetry src ~pos ->
    Inference.Streaming.infer_tokens ~options ~telemetry ~scratch ~equiv src
      ~pos

(* Reduce the per-document (type, counting) pairs exactly as the tree
   engine reduces its per-document [of_value] results — same merge
   functions, same document order, so the same hash-consed result. The
   telemetry mirrors the tree path's sequential shape: [infer.merge_ops]
   counts both folds, [infer.union_width] samples the final type. *)
let merge_streamed ~equiv ~telemetry pairs =
  let t =
    Telemetry.span telemetry "infer" (fun () ->
        Jtype.Merge.merge_all ~equiv (List.map fst pairs))
  in
  let c =
    Telemetry.span telemetry "infer" (fun () ->
        Jtype.Counting.merge_all ~equiv (List.map snd pairs))
  in
  if Telemetry.is_recording telemetry then begin
    Telemetry.count telemetry "infer.merge_ops"
      (2 * max 0 (List.length pairs - 1));
    Telemetry.observe telemetry "infer.union_width"
      (float_of_int (Inference.Parametric.union_width t))
  end;
  (t, c)

let infer_ndjson ?(equiv = Jtype.Merge.Kind) ?(name = "Root")
    ?(engine = `Streaming) ?(jobs = 1) ?telemetry text =
  match engine with
  | `Tree -> (
      match Parallel.parse_ndjson_strict ~jobs ?telemetry text with
      | Error msg -> Error msg
      | Ok docs -> Ok (infer ~equiv ~name ~jobs ?telemetry docs))
  | `Streaming -> (
      let tele = Option.value telemetry ~default:Telemetry.nop in
      Parallel.with_kernel_stats tele @@ fun () ->
      let pairs, dead, _report =
        Parallel.ingest_with ~budget:Resilient.unbounded_budget ~jobs
          ~telemetry:tele
          ~parse_doc:(streaming_infer_doc ~equiv)
          text
      in
      match dead with
      | d :: _ -> Error d.Resilient.error
      | [] ->
          let t, c = merge_streamed ~equiv ~telemetry:tele pairs in
          Ok (build_inferred ~name t c))

let infer_ndjson_resilient ?(equiv = Jtype.Merge.Kind) ?name ?budget
    ?(engine = `Streaming) ?(jobs = 1) ?telemetry text =
  match engine with
  | `Tree ->
      let r = Parallel.ingest ?budget ~jobs ?telemetry text in
      let inferred =
        match r.Resilient.docs with
        | [] -> None
        | docs -> Some (infer ~equiv ?name ~jobs ?telemetry docs)
      in
      (inferred, r)
  | `Streaming ->
      let tele = Option.value telemetry ~default:Telemetry.nop in
      Parallel.with_kernel_stats tele @@ fun () ->
      let pairs, dead, report =
        Parallel.ingest_with ?budget ~jobs ~telemetry:tele
          ~parse_doc:(streaming_infer_doc ~equiv)
          text
      in
      let inferred =
        match pairs with
        | [] -> None
        | _ ->
            let t, c = merge_streamed ~equiv ~telemetry:tele pairs in
            Some
              (build_inferred ~name:(Option.value name ~default:"Root") t c)
      in
      (inferred, { Resilient.docs = []; dead; report })

let validate_collection ?config ?compiled ?(jobs = 1) ?telemetry ~root values =
  let failures =
    Parallel.validate ?config ?compiled ~jobs ?telemetry ~root values
  in
  if failures = [] then Ok (List.length values) else Error failures

(* the fused walk needs a compiled plan: when compilation is off or the
   schema is malformed (every document must fail with the compiler's error
   list), validation falls back to the tree engine *)
let streaming_plan ~compiled ~engine ~telemetry root =
  match engine with
  | `Tree -> None
  | `Streaming when not compiled -> None
  | `Streaming -> (
      match Jsonschema.Compile.plan_for ?telemetry root with
      | Ok plan -> Some plan
      | Error _ -> None)

let streaming_validate_doc ?config plan () ~options ~telemetry src ~pos =
  Jsonschema.Compile.run_stream ?config ~options ~telemetry plan src ~pos

let indexed_failures verdicts =
  List.mapi
    (fun i v -> match v with Ok () -> None | Error es -> Some (i, es))
    verdicts
  |> List.filter_map Fun.id

let validate_ndjson ?config ?compiled ?budget ?(engine = `Streaming)
    ?(jobs = 1) ?telemetry ~root text =
  match streaming_plan ~compiled:(compiled <> Some false) ~engine ~telemetry root with
  | None ->
      let r = Parallel.ingest ?budget ~jobs ?telemetry text in
      let failures =
        Parallel.validate ?config ?compiled ~jobs ?telemetry ~root
          r.Resilient.docs
      in
      (r, failures)
  | Some plan ->
      let verdicts, dead, report =
        Parallel.ingest_with ?budget ~jobs
          ?telemetry
          ~parse_doc:(streaming_validate_doc ?config plan)
          text
      in
      ({ Resilient.docs = []; dead; report }, indexed_failures verdicts)

let validate_ndjson_strict ?config ?compiled ?(engine = `Streaming)
    ?(jobs = 1) ?telemetry ~root text =
  match streaming_plan ~compiled:(compiled <> Some false) ~engine ~telemetry root with
  | None -> (
      match Parallel.parse_ndjson_strict ~jobs ?telemetry text with
      | Error msg -> Error msg
      | Ok docs ->
          Ok
            ( List.length docs,
              Parallel.validate ?config ?compiled ~jobs ?telemetry ~root docs ))
  | Some plan -> (
      let verdicts, dead, _report =
        Parallel.ingest_with ~budget:Resilient.unbounded_budget ~jobs
          ?telemetry
          ~parse_doc:(streaming_validate_doc ?config plan)
          text
      in
      match dead with
      | d :: _ -> Error d.Resilient.error
      | [] -> Ok (List.length verdicts, indexed_failures verdicts))

(* --- supervised sharded execution with checkpoint/resume ---------------- *)

type supervision = {
  sup_stats : Supervisor.stats;
  sup_resumed : int;
}

(* a poisoned shard becomes one dead letter in whole-input coordinates, so
   quarantine triage reads the same whether a single document or a whole
   shard was lost *)
let poison_letter ~(sh : Parallel.shard) ~failure ~attempts text =
  let len = min 80 sh.Parallel.s_len in
  { Resilient.line = sh.Parallel.s_line;
    byte_offset = sh.Parallel.s_off;
    error =
      Printf.sprintf "shard at line %d poisoned after %d attempt%s: %s"
        sh.Parallel.s_line attempts
        (if attempts = 1 then "" else "s")
        (Supervisor.failure_describe failure);
    kind = Resilient.Shard (Supervisor.failure_label failure);
    cause = Supervisor.failure_describe failure;
    attempts;
    raw_prefix = String.sub text sh.Parallel.s_off len }

(* Run one shard computation per shard under the supervisor, journaling
   each completed shard. [run_shard] receives the resolved budget/options,
   the shard descriptor and its substring, and returns the shard's ingest
   record (dead letters + report; the tree engine also carries documents,
   the streaming engine journals an empty document list) plus a
   pipeline-specific JSON payload (partial inference, local validation
   failures). Returns per-shard results in shard order: completed shards
   carry (ingest, payload-json, resumed?), poisoned ones their failure.
   Callers decode the payload back from JSON for resumed and fresh shards
   alike, so both take the identical code path — that, plus exact JSON
   round-trips, is what makes resume byte-identical. *)
let supervised_engine ?(budget = Resilient.default_budget) ?options
    ?(policy = Supervisor.default_policy) ?inject ?checkpoint ?(resume = false)
    ?(jobs = 1) ?(telemetry = Telemetry.nop) ~job ~engine ~run_shard text =
  let shards =
    (* a document-count budget is a global order-dependent cap: it cannot
       be applied per shard, so the whole input becomes one shard *)
    if String.length text = 0 then []
    else if budget.Resilient.max_docs <> None then
      [ { Parallel.s_off = 0; s_len = String.length text; s_line = 1 } ]
    else Parallel.shards ~jobs text
  in
  let journal_r =
    match checkpoint with
    | None -> Ok (None, [])
    | Some path -> (
        match Checkpoint.start ~path ~resume ~job ~engine ~input:text with
        | Ok (j, entries) -> Ok (Some j, entries)
        | Error e -> Error e)
  in
  match journal_r with
  | Error e -> Error e
  | Ok (journal, entries) ->
      let find_entry (sh : Parallel.shard) =
        List.find_opt
          (fun e ->
            e.Checkpoint.e_off = sh.Parallel.s_off
            && e.Checkpoint.e_len = sh.Parallel.s_len
            && e.Checkpoint.e_line = sh.Parallel.s_line)
          entries
      in
      let tagged = List.map (fun sh -> (sh, find_entry sh)) shards in
      let resumed_n =
        List.fold_left
          (fun n (_, e) -> if e = None then n else n + 1)
          0 tagged
      in
      if resumed_n > 0 then
        Telemetry.count telemetry "checkpoint.resumed_shards" resumed_n;
      let pending =
        List.concat
          (List.mapi
             (fun i (sh, e) -> if e = None then [ (i, sh) ] else [])
             tagged)
      in
      (* pending shards keep their *global* index, so a deterministic fault
         plan (Chaos.worker_faults) hits the same shards in a resumed run
         as in the original — and never hits already-journaled ones *)
      let globals = Array.of_list (List.map fst pending) in
      let inject =
        Option.map
          (fun plan ~shard ~attempt -> plan ~shard:globals.(shard) ~attempt)
          inject
      in
      (* the journal is shared across pool domains; entries land in
         completion order, which is fine — resume matches by coordinates,
         not position *)
      let jmutex = Mutex.create () in
      let record (sh : Parallel.shard) ing pjson =
        match journal with
        | None -> ()
        | Some j ->
            Mutex.lock jmutex;
            Fun.protect
              ~finally:(fun () -> Mutex.unlock jmutex)
              (fun () ->
                Checkpoint.record j
                  { Checkpoint.e_off = sh.Parallel.s_off;
                    e_len = sh.Parallel.s_len;
                    e_line = sh.Parallel.s_line;
                    e_ingest = ing;
                    e_payload = pjson })
      in
      let tasks =
        List.map
          (fun (_, (sh : Parallel.shard)) ->
            fun ~attempt ~tick ->
             let sub = String.sub text sh.Parallel.s_off sh.Parallel.s_len in
             let ing, pjson =
               run_shard ~budget ~options ~telemetry ~attempt ~tick sh sub
             in
             record sh ing pjson;
             (ing, pjson))
          pending
      in
      let outcomes, stats = Supervisor.run ~policy ~telemetry ?inject ~jobs tasks in
      let rec zip tagged outcomes =
        match (tagged, outcomes) with
        | [], _ -> []
        | (sh, Some e) :: rest, _ ->
            (sh, `Ok (e.Checkpoint.e_ingest, e.Checkpoint.e_payload, true))
            :: zip rest outcomes
        | (sh, None) :: rest, Supervisor.Done { value = (ing, pjson); _ } :: out ->
            (sh, `Ok (ing, pjson, false)) :: zip rest out
        | (sh, None) :: rest, Supervisor.Poisoned { failure; attempts } :: out ->
            (sh, `Poisoned (failure, attempts)) :: zip rest out
        | (_, None) :: _, [] -> assert false (* one outcome per pending shard *)
      in
      let results = zip tagged outcomes in
      (match journal with Some j -> Checkpoint.close j | None -> ());
      Ok (results, { sup_stats = stats; sup_resumed = resumed_n })

(* the tree engine's shard computation: resilient ingest, then [encode]
   over the materialized documents *)
let tree_run_shard encode ~budget ~options ~telemetry ~attempt ~tick
    (sh : Parallel.shard) sub =
  let ing =
    Resilient.ingest ~budget ?options ~first_line:sh.Parallel.s_line
      ~base_offset:sh.Parallel.s_off ~attempt ~tick ~telemetry sub
  in
  (ing, encode ing)

(* the streaming engine's shard computation: a token-level fold with no
   document materialization. Dead letters and the report are byte-identical
   to the tree shard's by [ingest_with]'s contract; the journaled ingest
   record carries an empty document list, which is why the payload — not
   the journal's documents — is what downstream decoding consumes. *)
let streaming_run_shard parse_doc finish ~budget ~options ~telemetry ~attempt
    ~tick (sh : Parallel.shard) sub =
  let payloads, dead, report =
    Resilient.ingest_with ~budget ?options ~first_line:sh.Parallel.s_line
      ~base_offset:sh.Parallel.s_off ~attempt ~tick ~telemetry
      ~parse_doc:(parse_doc ()) sub
  in
  ({ Resilient.docs = []; dead; report }, finish payloads)

(* fuse per-shard results into one ingest: completed shards contribute
   their documents and dead letters, poisoned shards one synthetic letter
   each; global dead-letter order and summed reports exactly as the
   unsupervised parallel path produces them *)
let merge_supervised results text =
  let docs =
    List.concat_map
      (fun (_, r) ->
        match r with
        | `Ok ((ing : Resilient.ingest), _, _) -> ing.Resilient.docs
        | `Poisoned _ -> [])
      results
  in
  let dead =
    List.concat_map
      (fun (sh, r) ->
        match r with
        | `Ok ((ing : Resilient.ingest), _, _) -> ing.Resilient.dead
        | `Poisoned (failure, attempts) ->
            [ poison_letter ~sh ~failure ~attempts text ])
      results
    |> List.stable_sort Parallel.dead_order
  in
  let report =
    List.fold_left
      (fun acc (_, r) ->
        match r with
        | `Ok ((ing : Resilient.ingest), _, _) ->
            Parallel.merge_reports acc ing.Resilient.report
        | `Poisoned _ ->
            { acc with Resilient.poisoned = acc.Resilient.poisoned + 1 })
      Resilient.empty_report results
  in
  { Resilient.docs; dead; report }

let ingest_ndjson_supervised ?budget ?options ?policy ?inject ?checkpoint
    ?resume ?jobs ?telemetry text =
  match
    supervised_engine ?budget ?options ?policy ?inject ?checkpoint ?resume
      ?jobs ?telemetry ~job:"ingest" ~engine:"tree"
      ~run_shard:(tree_run_shard (fun _ -> Json.Value.Null))
      text
  with
  | Error e -> Error e
  | Ok (results, sup) -> Ok (merge_supervised results text, sup)

let equiv_tag = function Jtype.Merge.Kind -> "kind" | Jtype.Merge.Label -> "label"

let ( let* ) = Result.bind

(* decode every completed shard's payload — resumed and fresh alike take
   this path, so a corrupt journal can only surface as an explicit error,
   never as silently different output *)
let decode_payloads ~decode results =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (_, `Ok (ing, pjson, _)) :: rest ->
        let* v = decode (ing : Resilient.ingest) pjson in
        go (v :: acc) rest
    | (_, `Poisoned _) :: rest -> go acc rest
  in
  go [] results

let infer_ndjson_supervised ?(equiv = Jtype.Merge.Kind) ?name ?budget ?options
    ?policy ?inject ?checkpoint ?resume ?(engine = `Streaming) ?jobs ?telemetry
    text =
  Parallel.with_kernel_stats (Option.value telemetry ~default:Telemetry.nop)
  @@ fun () ->
  let encode_pair t c =
    Json.Value.Object
      [ ("jtype", Jtype.Types.to_json t);
        ("counting", Jtype.Counting.to_json c) ]
  in
  let run_shard =
    match engine with
    | `Tree ->
        tree_run_shard (fun (ing : Resilient.ingest) ->
            let t = Inference.Parametric.infer ~equiv ing.Resilient.docs in
            let c = Jtype.Counting.infer ~equiv ing.Resilient.docs in
            encode_pair t c)
    | `Streaming ->
        (* the shard's partial is reduced from the per-document pairs with
           the same merges the tree shard's [infer] applies to its
           materialized documents, so the journaled payload is identical *)
        streaming_run_shard
          (streaming_infer_doc ~equiv)
          (fun pairs ->
            let t = Jtype.Merge.merge_all ~equiv (List.map fst pairs) in
            let c = Jtype.Counting.merge_all ~equiv (List.map snd pairs) in
            encode_pair t c)
  in
  let decode _ing pjson =
    match pjson with
    | Json.Value.Object fields -> (
        match (List.assoc_opt "jtype" fields, List.assoc_opt "counting" fields) with
        | Some tj, Some cj ->
            let* t = Jtype.Types.of_json tj in
            let* c = Jtype.Counting.of_json cj in
            Ok (t, c)
        | _ -> Error "checkpoint: inference payload missing jtype/counting")
    | _ -> Error "checkpoint: inference payload must be an object"
  in
  match
    supervised_engine ?budget ?options ?policy ?inject ?checkpoint ?resume
      ?jobs ?telemetry
      ~job:("infer:" ^ equiv_tag equiv)
      ~engine:(match engine with `Tree -> "tree" | `Streaming -> "streaming")
      ~run_shard text
  with
  | Error e -> Error e
  | Ok (results, sup) ->
      let ingest = merge_supervised results text in
      let* partials = decode_payloads ~decode results in
      let inferred =
        (* the streaming engine keeps [docs] empty, so "did anything
           survive" reads off the report — identical for the tree engine,
           whose document list has exactly [report.ok] entries *)
        match ingest.Resilient.report.Resilient.ok with
        | 0 -> None
        | _ ->
            let t = Jtype.Merge.merge_all ~equiv (List.map fst partials) in
            let c = Jtype.Counting.merge_all ~equiv (List.map snd partials) in
            Some (build_inferred ~name:(Option.value name ~default:"Root") t c)
      in
      Ok (inferred, ingest, sup)

let validation_error_to_json (e : Jsonschema.Validate.error) =
  Json.Value.Object
    [ ("instance", Json.Value.String (Json.Pointer.to_string e.Jsonschema.Validate.instance_at));
      ("schema", Json.Value.String (Json.Pointer.to_string e.Jsonschema.Validate.schema_at));
      ("message", Json.Value.String e.Jsonschema.Validate.message) ]

let validation_error_of_json j =
  match j with
  | Json.Value.Object fields -> (
      match
        ( List.assoc_opt "instance" fields,
          List.assoc_opt "schema" fields,
          List.assoc_opt "message" fields )
      with
      | Some (Json.Value.String i), Some (Json.Value.String s),
        Some (Json.Value.String m) ->
          let* instance_at = Json.Pointer.parse i in
          let* schema_at = Json.Pointer.parse s in
          Ok { Jsonschema.Validate.instance_at; schema_at; message = m }
      | _ -> Error "checkpoint: malformed validation error")
  | _ -> Error "checkpoint: validation error must be an object"

let validate_ndjson_supervised ?config ?(compiled = true) ?budget ?options
    ?policy ?inject ?checkpoint ?resume ?(engine = `Streaming) ?jobs
    ?telemetry ~root text =
  (* one shared plan for every shard and every retry attempt; the plan is
     immutable, so a retried shard revalidates through the same closures *)
  let plan_r =
    if not compiled then None
    else Some (Jsonschema.Compile.plan_for ?telemetry root)
  in
  let check =
    match plan_r with
    | None -> fun v -> Jsonschema.Validate.validate ?config ~root v
    | Some (Ok plan) -> fun v -> Jsonschema.Compile.run ?config plan v
    | Some (Error es) -> fun _ -> Error es
  in
  let encode_failures failures =
    Json.Value.Array
      (List.map
         (fun (i, es) ->
           Json.Value.Object
             [ ("doc", Json.Value.Int i);
               ("errors", Json.Value.Array (List.map validation_error_to_json es)) ])
         failures)
  in
  let streaming =
    match (engine, plan_r) with
    | `Streaming, Some (Ok plan) -> Some plan
    | _ -> None
  in
  let run_shard =
    match streaming with
    | None ->
        tree_run_shard (fun (ing : Resilient.ingest) ->
            List.mapi
              (fun i v ->
                match check v with
                | Ok () -> None
                | Error es -> Some (i, es))
              ing.Resilient.docs
            |> List.filter_map Fun.id |> encode_failures)
    | Some plan ->
        streaming_run_shard
          (streaming_validate_doc ?config plan)
          (fun verdicts -> encode_failures (indexed_failures verdicts))
  in
  let decode _ing pjson =
    match pjson with
    | Json.Value.Array items ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | Json.Value.Object fields :: rest -> (
              match
                (List.assoc_opt "doc" fields, List.assoc_opt "errors" fields)
              with
              | Some (Json.Value.Int i), Some (Json.Value.Array ejs) ->
                  let rec errs acc = function
                    | [] -> Ok (List.rev acc)
                    | ej :: more ->
                        let* e = validation_error_of_json ej in
                        errs (e :: acc) more
                  in
                  let* es = errs [] ejs in
                  go ((i, es) :: acc) rest
              | _ -> Error "checkpoint: malformed validation failure")
          | _ :: _ -> Error "checkpoint: malformed validation failure"
        in
        go [] items
    | _ -> Error "checkpoint: validation payload must be an array"
  in
  (* the schema is part of the job identity: a journal written against one
     schema must not resume a run against another. The engine travels in
     the journal header's own field — note it is the *effective* engine: a
     `Streaming request falls back to tree execution when the plan does not
     compile, and the journal records what actually ran. *)
  let job =
    "validate:" ^ Checkpoint.fingerprint (Json.Printer.to_string root)
  in
  match
    supervised_engine ?budget ?options ?policy ?inject ?checkpoint ?resume
      ?jobs ?telemetry ~job
      ~engine:(match streaming with None -> "tree" | Some _ -> "streaming")
      ~run_shard text
  with
  | Error e -> Error e
  | Ok (results, sup) ->
      let ingest = merge_supervised results text in
      let* locals = decode_payloads ~decode results in
      (* rebase each completed shard's document-local failure indices onto
         the merged document list; [report.ok] is the shard's document
         count whether or not the documents were materialized *)
      let doc_counts =
        List.filter_map
          (fun (_, r) ->
            match r with
            | `Ok ((ing : Resilient.ingest), _, _) ->
                Some ing.Resilient.report.Resilient.ok
            | `Poisoned _ -> None)
          results
      in
      let failures =
        let _, rev =
          List.fold_left2
            (fun (base, acc) n fs ->
              ( base + n,
                List.rev_append
                  (List.map (fun (i, es) -> (base + i, es)) fs)
                  acc ))
            (0, []) doc_counts locals
        in
        List.rev rev
      in
      Ok (ingest, failures, sup)

type checked = {
  chk_inferred : inferred option;
  chk_verdict : Jtype.Contain.verdict option;
}

(* The containment step runs outside [Parallel.with_kernel_stats] (the
   inference phase already wraps itself — nesting would double-count), so
   its kernel counters are snapshotted by hand. All three [subtype.*]
   keys are characteristic of the check pipeline and land in the sink
   whenever any subtype work happened. *)
let subtype_counter_delta telemetry f =
  if not (Telemetry.is_recording telemetry) then f ()
  else begin
    let get totals k = Option.value ~default:0 (List.assoc_opt k totals) in
    let before = Jtype.Kernel.totals () in
    let r = f () in
    let after = Jtype.Kernel.totals () in
    List.iter
      (fun k -> Telemetry.count telemetry k (get after k - get before k))
      [ "subtype.queries"; "subtype.hits"; "subtype.unknown" ];
    r
  end

let check_ndjson ?equiv ?name ?budget ?options ?policy ?inject ?checkpoint
    ?resume ?engine ?jobs ?telemetry ?vconfig ~root text =
  match
    infer_ndjson_supervised ?equiv ?name ?budget ?options ?policy ?inject
      ?checkpoint ?resume ?engine ?jobs ?telemetry text
  with
  | Error e -> Error e
  | Ok (inferred, ingest, sup) ->
      let tele = Option.value telemetry ~default:Telemetry.nop in
      let verdict =
        Option.map
          (fun inf ->
            subtype_counter_delta tele (fun () ->
                Jtype.Contain.check ?config:vconfig ~root inf.jtype))
          inferred
      in
      Ok ({ chk_inferred = inferred; chk_verdict = verdict }, ingest, sup)

let profile values =
  let t = Inference.Parametric.infer ~equiv:Jtype.Merge.Kind values in
  let mongo = Inference.Mongo.analyze values in
  let sk = Inference.Skeleton.build values in
  let total_bytes =
    List.fold_left (fun acc v -> acc + String.length (Json.Printer.to_string v)) 0 values
  in
  Json.Value.Object
    [ ("documents", Json.Value.Int (List.length values));
      ("json_bytes", Json.Value.Int total_bytes);
      ("inferred_type", Json.Value.String (Jtype.Types.to_string t));
      ("type_size", Json.Value.Int (Jtype.Types.size t));
      ("field_statistics", Inference.Mongo.to_json mongo);
      ("skeleton",
       Json.Value.Object
         [ ("structures",
            Json.Value.Array
              (List.map
                 (fun (s, n) ->
                   Json.Value.Object
                     [ ("structure",
                        Json.Value.String (Inference.Skeleton.structure_to_string s));
                       ("count", Json.Value.Int n) ])
                 sk.Inference.Skeleton.groups));
           ("documents_outside_skeleton", Json.Value.Int sk.Inference.Skeleton.dropped) ]) ]

type translated = {
  avro_schema : Json.Value.t;
  avro_bytes : string;
  columnar_bytes : string;
  json_bytes : int;
}

let translate ?(equiv = Jtype.Merge.Kind) values =
  let t = Inference.Parametric.infer ~equiv values in
  let avro_schema = Translate.Avro.of_jtype ~name:"root" t in
  match Translate.Avro.encode_all avro_schema values with
  | Error m -> Error ("avro: " ^ m)
  | Ok avro_bytes -> (
      let spark = Inference.Spark.infer values in
      match Translate.Columnar.shred ~schema:spark values with
      | Error m -> Error ("columnar: " ^ m)
      | Ok table ->
          Ok
            {
              avro_schema = Translate.Avro.schema_to_json avro_schema;
              avro_bytes;
              columnar_bytes = Translate.Columnar.encode table;
              json_bytes = String.length (Datagen.to_ndjson values);
            })

let translate_ndjson ?equiv ?budget text =
  let r = Resilient.ingest ?budget text in
  match r.Resilient.docs with
  | [] -> (None, r)
  | docs -> (Some (translate ?equiv docs), r)
