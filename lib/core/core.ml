(** Umbrella module: one [open] (or dune [libraries core]) pulls in every
    component of the toolkit under its natural name. *)

module Json = Json
module Jsonschema = Jsonschema
module Jtype = Jtype
module Joi = Joi
module Jsound = Jsound
module Inference = Inference
module Fastjson = Fastjson
module Translate = Translate
module Datagen = Datagen
module Query = Query
module Pipeline = Pipeline
module Resilient = Resilient
module Parallel = Parallel
module Supervisor = Supervisor
module Checkpoint = Checkpoint
module Chaos = Chaos
module Telemetry = Telemetry
module Telemetry_report = Telemetry_report
