(* Metrics registry: per-domain shards, merged on read.

   A recording sink holds a mutex-protected table of shards keyed by domain
   id. The mutex guards only shard lookup/creation and snapshot merging;
   within a shard every mutation is done by the owning domain alone, so the
   hot path after the first touch is a hashtable hit plus a field update.
   OCaml's per-location no-tearing guarantee makes a concurrent snapshot
   memory-safe (it may observe a mid-update shard, which the pipelines
   avoid by snapshotting after their pools are joined). *)

let now () = Unix.gettimeofday ()

(* --- log-scale histogram ------------------------------------------------ *)

module Histogram = struct
  (* quarter-powers-of-two buckets over [1e-9, 1e12]:
     index = floor (log2 v * 4) + bias, clamped. *)
  let sub = 4.0
  let bias = 120 (* covers 2^-30 = ~1e-9 *)
  let nbuckets = 281 (* up to 2^40 = ~1e12 *)

  type t = {
    mutable n : int;
    mutable total : float;
    mutable mn : float;
    mutable mx : float;
    buckets : int array;
  }

  let create () =
    { n = 0; total = 0.0; mn = infinity; mx = neg_infinity;
      buckets = Array.make nbuckets 0 }

  let bucket_of v =
    if v <= 0.0 then 0
    else
      let i = int_of_float (Float.floor (Float.log2 v *. sub)) + bias in
      if i < 0 then 0 else if i >= nbuckets then nbuckets - 1 else i

  (* geometric midpoint of a bucket *)
  let representative i = Float.exp2 ((float_of_int (i - bias) +. 0.5) /. sub)

  let observe h v =
    if Float.is_finite v then begin
      h.n <- h.n + 1;
      h.total <- h.total +. v;
      if v < h.mn then h.mn <- v;
      if v > h.mx then h.mx <- v;
      let i = bucket_of v in
      h.buckets.(i) <- h.buckets.(i) + 1
    end

  let count h = h.n
  let sum h = h.total

  let percentile h q =
    if h.n = 0 then None
    else begin
      let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int h.n))) in
      let rec walk i cum =
        if i >= nbuckets then h.mx
        else
          let cum = cum + h.buckets.(i) in
          if cum >= rank then Float.min h.mx (Float.max h.mn (representative i))
          else walk (i + 1) cum
      in
      Some (walk 0 0)
    end

  let merge_into ~dst src =
    dst.n <- dst.n + src.n;
    dst.total <- dst.total +. src.total;
    if src.mn < dst.mn then dst.mn <- src.mn;
    if src.mx > dst.mx then dst.mx <- src.mx;
    Array.iteri (fun i c -> dst.buckets.(i) <- dst.buckets.(i) + c) src.buckets
end

type histogram_summary = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_p50 : float;
  h_p90 : float;
  h_p99 : float;
}

let summarize h =
  let p q = Option.value ~default:0.0 (Histogram.percentile h q) in
  { h_count = Histogram.count h;
    h_sum = Histogram.sum h;
    h_min = (if Histogram.count h = 0 then 0.0 else h.Histogram.mn);
    h_max = (if Histogram.count h = 0 then 0.0 else h.Histogram.mx);
    h_p50 = p 0.5;
    h_p90 = p 0.9;
    h_p99 = p 0.99 }

(* --- shards ------------------------------------------------------------- *)

type span_cell = { mutable calls : int; mutable total_s : float; mutable max_s : float }

type shard = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  hists : (string, Histogram.t) Hashtbl.t;
  span_cells : (string, span_cell) Hashtbl.t;
  mutable span_stack : string list; (* paths of open spans, innermost first *)
}

let new_shard () =
  { counters = Hashtbl.create 16;
    gauges = Hashtbl.create 8;
    hists = Hashtbl.create 16;
    span_cells = Hashtbl.create 16;
    span_stack = [] }

type registry = {
  mutex : Mutex.t;
  shards : (int, shard) Hashtbl.t; (* domain id -> shard *)
}

type sink = Nop | Rec of registry

let nop = Nop
let create () = Rec { mutex = Mutex.create (); shards = Hashtbl.create 8 }
let is_recording = function Nop -> false | Rec _ -> true

let shard r =
  let id = (Domain.self () :> int) in
  Mutex.lock r.mutex;
  let sh =
    match Hashtbl.find_opt r.shards id with
    | Some sh -> sh
    | None ->
        let sh = new_shard () in
        Hashtbl.add r.shards id sh;
        sh
  in
  Mutex.unlock r.mutex;
  sh

let count sink name n =
  match sink with
  | Nop -> ()
  | Rec r ->
      if n > 0 then begin
        let sh = shard r in
        match Hashtbl.find_opt sh.counters name with
        | Some c -> c := !c + n
        | None -> Hashtbl.add sh.counters name (ref n)
      end

let gauge_max sink name v =
  match sink with
  | Nop -> ()
  | Rec r -> (
      let sh = shard r in
      match Hashtbl.find_opt sh.gauges name with
      | Some g -> if v > !g then g := v
      | None -> Hashtbl.add sh.gauges name (ref v))

let observe sink name v =
  match sink with
  | Nop -> ()
  | Rec r -> (
      let sh = shard r in
      match Hashtbl.find_opt sh.hists name with
      | Some h -> Histogram.observe h v
      | None ->
          let h = Histogram.create () in
          Histogram.observe h v;
          Hashtbl.add sh.hists name h)

let record_span sh path dt =
  match Hashtbl.find_opt sh.span_cells path with
  | Some c ->
      c.calls <- c.calls + 1;
      c.total_s <- c.total_s +. dt;
      if dt > c.max_s then c.max_s <- dt
  | None -> Hashtbl.add sh.span_cells path { calls = 1; total_s = dt; max_s = dt }

let span sink name f =
  match sink with
  | Nop -> f ()
  | Rec r ->
      let sh = shard r in
      let path =
        match sh.span_stack with [] -> name | parent :: _ -> parent ^ "/" ^ name
      in
      sh.span_stack <- path :: sh.span_stack;
      let t0 = now () in
      Fun.protect
        ~finally:(fun () ->
          let dt = now () -. t0 in
          (match sh.span_stack with
           | _ :: rest -> sh.span_stack <- rest
           | [] -> ());
          record_span sh path dt)
        f

(* --- snapshot ----------------------------------------------------------- *)

type span_summary = {
  sp_path : string;
  sp_calls : int;
  sp_total_s : float;
  sp_max_s : float;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_summary) list;
  spans : span_summary list;
}

let empty_snapshot = { counters = []; gauges = []; histograms = []; spans = [] }

let sorted_bindings tbl fold =
  List.sort (fun (a, _) (b, _) -> String.compare a b) (fold tbl)

let snapshot = function
  | Nop -> empty_snapshot
  | Rec r ->
      Mutex.lock r.mutex;
      let counters = Hashtbl.create 16 in
      let gauges = Hashtbl.create 8 in
      let hists = Hashtbl.create 16 in
      let spans = Hashtbl.create 16 in
      Hashtbl.iter
        (fun _ (sh : shard) ->
          Hashtbl.iter
            (fun name c ->
              match Hashtbl.find_opt counters name with
              | Some acc -> acc := !acc + !c
              | None -> Hashtbl.add counters name (ref !c))
            sh.counters;
          Hashtbl.iter
            (fun name g ->
              match Hashtbl.find_opt gauges name with
              | Some acc -> if !g > !acc then acc := !g
              | None -> Hashtbl.add gauges name (ref !g))
            sh.gauges;
          Hashtbl.iter
            (fun name h ->
              match Hashtbl.find_opt hists name with
              | Some acc -> Histogram.merge_into ~dst:acc h
              | None ->
                  let acc = Histogram.create () in
                  Histogram.merge_into ~dst:acc h;
                  Hashtbl.add hists name acc)
            sh.hists;
          Hashtbl.iter
            (fun path c ->
              match Hashtbl.find_opt spans path with
              | Some acc ->
                  acc.calls <- acc.calls + c.calls;
                  acc.total_s <- acc.total_s +. c.total_s;
                  if c.max_s > acc.max_s then acc.max_s <- c.max_s
              | None ->
                  Hashtbl.add spans path
                    { calls = c.calls; total_s = c.total_s; max_s = c.max_s })
            sh.span_cells)
        r.shards;
      Mutex.unlock r.mutex;
      { counters =
          sorted_bindings counters (fun t ->
              Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t []);
        gauges =
          sorted_bindings gauges (fun t ->
              Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t []);
        histograms =
          sorted_bindings hists (fun t ->
              Hashtbl.fold (fun k h acc -> (k, summarize h) :: acc) t []);
        spans =
          List.map
            (fun (path, c) ->
              { sp_path = path;
                sp_calls = c.calls;
                sp_total_s = c.total_s;
                sp_max_s = c.max_s })
            (sorted_bindings spans (fun t ->
                 Hashtbl.fold (fun k v acc -> (k, v) :: acc) t [])) }
