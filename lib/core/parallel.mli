(** Sharded parallel execution on OCaml 5 domains.

    The parametric inference of the tutorial is a map/reduce whose reduce —
    {!Jtype.Merge.merge} — is associative and commutative, so sharding a
    collection and fusing per-shard results is semantics-preserving by
    construction. This module supplies the runtime for that shape: a
    hand-rolled fixed pool of domains fed by a bounded work queue, NDJSON
    sharding at newline boundaries, and shard-merge wrappers for the
    resilient ingester, parametric inference, and JSON Schema validation.

    Every entry point takes [?jobs] (default [1]); [jobs <= 1] runs the
    exact sequential code with no pool. For [jobs > 1] the results are
    {e byte-identical} to the sequential path on newline-delimited input:
    documents come back in input order, dead letters carry whole-input line
    numbers and byte offsets (via {!Resilient.ingest}'s rebasing
    parameters) and are re-sorted by global position, and report counters
    are summed. The one caveat is inherent to sharding: a single document
    spanning a shard boundary (pretty-printed multi-line JSON) would be
    split, so parallel ingestion assumes one-document-per-line NDJSON. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

(** {1 Pool primitives} *)

val run : ?telemetry:Telemetry.sink -> jobs:int -> (unit -> 'a) list -> 'a list
(** Execute the thunks on a pool of [min jobs n] domains with a bounded
    ([2 * jobs]) work queue; results are returned in submission order. An
    exception in any thunk is re-raised in the caller after the pool is
    drained and joined. [jobs <= 1] (or a single thunk) runs in the calling
    domain. [telemetry] (default {!Telemetry.nop}) receives the pool's
    health histograms: [pool.queue_wait_s] (enqueue-to-start latency per
    task) and [pool.idle_s] (per-dequeue worker starvation time). *)

type shard = {
  s_off : int;   (** byte offset of the shard in the whole input *)
  s_len : int;
  s_line : int;  (** 1-based line number of the shard's first byte *)
}

val shards : jobs:int -> string -> shard list
(** Split [src] into at most [jobs] spans that cover it exactly, cutting
    only just after ['\n'] so no NDJSON line is divided. Spans are balanced
    by bytes, not by line count. *)

val merge_reports : Resilient.report -> Resilient.report -> Resilient.report
(** Sum two shard reports (counters add, cause breakdowns merge, truncation
    ors). Also used by the supervised pipelines ({!Pipeline}). *)

val dead_order : Resilient.dead_letter -> Resilient.dead_letter -> int
(** Global input order for dead letters (by whole-input byte offset) — the
    order the sequential scan produces them in. *)

(** {1 Sharded pipelines} *)

val ingest_with :
  ?budget:Resilient.budget -> ?options:Json.Parser.options -> ?jobs:int ->
  ?telemetry:Telemetry.sink ->
  parse_doc:
    (unit ->
     options:Json.Parser.options -> telemetry:Telemetry.sink ->
     string -> pos:int -> ('a * int, Json.Parser.error) result) ->
  string -> 'a list * Resilient.dead_letter list * Resilient.report
(** Shard-parallel {!Resilient.ingest_with}: payloads come back in input
    order, dead letters in whole-input coordinates re-sorted by global
    position, reports summed — the exact sequential output, for any [jobs].
    [parse_doc] is a {e factory} invoked once per shard on the worker
    domain that runs it, so an instance may carry mutable per-shard scratch
    (the streaming engine's interning table) without synchronization. A
    [max_docs] budget forces the sequential path, as in {!ingest}. *)

val ingest :
  ?budget:Resilient.budget -> ?options:Json.Parser.options -> ?jobs:int ->
  ?telemetry:Telemetry.sink -> string -> Resilient.ingest
(** Shard-parallel {!Resilient.ingest}: same documents, dead letters and
    report as the sequential scan, in the same order. A [max_docs] budget
    is a global order-dependent cap and forces the sequential path.
    [telemetry] adds, on top of {!Resilient.ingest}'s counters, the
    [parallel.shards] counter and [ingest.shard] / [ingest.merge] spans
    (plus the pool histograms of {!run}). *)

val parse_ndjson_strict :
  ?budget:Resilient.budget -> ?options:Json.Parser.options -> ?jobs:int ->
  ?telemetry:Telemetry.sink -> string -> (Json.Value.t list, string) result
(** Fail-fast wrapper over {!ingest}: the globally-first dead letter (by
    byte offset) aborts with its error — the same error the sequential
    {!Resilient.parse_ndjson_strict} reports. *)

val with_kernel_stats : Telemetry.sink -> (unit -> 'a) -> 'a
(** Run [f] and emit the {!Jtype.Kernel} counter deltas it caused
    ([kernel.nodes], [kernel.intern.hits], [kernel.merge.hits]/[.misses],
    [kernel.fuse.*], [kernel.simplify.*], [kernel.cache.clears]) plus the
    [kernel.cache.entries] gauge into the sink. No-op on {!Telemetry.nop}.
    Call only around joined parallel sections (deltas are summed over all
    domains). *)

val infer_type :
  equiv:Jtype.Merge.equiv -> ?jobs:int -> ?telemetry:Telemetry.sink ->
  Json.Value.t list -> Jtype.Types.t
(** Chunk the collection, infer per chunk on the pool, reduce with
    {!Jtype.Merge.merge_all}. Identical result for any [jobs]. [telemetry]
    records [parallel.merge_fanin], [infer.merge_ops],
    [infer.union_width], the [infer.shard] / [infer.merge] spans, and the
    [kernel.*] cache counters of {!with_kernel_stats}. *)

val infer_counting :
  equiv:Jtype.Merge.equiv -> ?jobs:int -> ?telemetry:Telemetry.sink ->
  Json.Value.t list -> Jtype.Counting.t
(** Counting variant; counts add pointwise under the merge. *)

val validate :
  ?config:Jsonschema.Validate.config -> ?compiled:bool -> ?jobs:int ->
  ?telemetry:Telemetry.sink -> root:Json.Value.t ->
  Json.Value.t list -> (int * Jsonschema.Validate.error list) list
(** Shard-parallel validation of a document batch against one schema:
    failing indices (into the input list) with their errors, in input
    order — the same list the sequential fold produces. [compiled]
    (default [true]) lowers the schema once through
    {!Jsonschema.Compile.plan_for} and shares the immutable plan across
    all worker domains; [false] re-interprets the schema per document.
    Verdicts and error reports are byte-identical either way. [telemetry]
    additionally records [validate.compile_ms], [validate.plan.nodes],
    and [validate.cache.{hits,misses}] on the compiled path. *)
