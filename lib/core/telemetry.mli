(** Zero-dependency metrics registry and span tracer for the pipelines.

    The tutorial's quantitative claims (Mison prunes what the query does
    not touch, sharding scales, budgets contain damage) are only credible
    when the pipelines report what they actually did. This module is the
    substrate: monotonic counters, max-gauges, log-scale histograms with
    p50/p90/p99, and lightweight wall-clock span tracing with parent/child
    nesting.

    Design constraints, in order:

    - {b cheap when disabled}: every operation takes a {!sink}; the {!nop}
      sink reduces each call to one branch, so instrumentation can live on
      hot paths unconditionally;
    - {b domain-safe when enabled}: a recording sink keeps one shard per
      domain (matching the {!Parallel} pool) so worker domains never
      contend on a write; shards are merged when a {!snapshot} is taken;
    - {b deterministic pipelines}: recording must never change a
      pipeline's output, only observe it (tested in [test_telemetry]).

    Timing uses [Unix.gettimeofday]; no other dependency. Snapshots taken
    while other domains are still writing are weakly consistent — the
    pipelines snapshot after their pools are joined. *)

(** {1 Histograms} *)

module Histogram : sig
  type t
  (** Log-scale histogram: buckets at quarter powers of two, covering
      [1e-9 .. 1e12] (latencies in seconds through sizes in bytes), with
      exact count / sum / min / max kept alongside. *)

  val create : unit -> t
  val observe : t -> float -> unit
  (** Record a sample. Non-finite samples are dropped; values at or below
      zero land in the underflow bucket (and still count). *)

  val count : t -> int
  val sum : t -> float

  val percentile : t -> float -> float option
  (** [percentile h q] with [0 <= q <= 1]: [None] on an empty histogram,
      otherwise the geometric midpoint of the bucket holding the rank
      [ceil (q * count)] sample, clamped to the exact [min, max] — so a
      one-sample histogram reports that sample exactly for every [q]. *)

  val merge_into : dst:t -> t -> unit
end

type histogram_summary = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_p50 : float;
  h_p90 : float;
  h_p99 : float;
}

val now : unit -> float
(** [Unix.gettimeofday] — exposed so instrumented code can time intervals
    that do not fit the {!span} shape (queue waits, idle loops) without
    depending on [unix] itself. *)

(** {1 Sinks} *)

type sink

val nop : sink
(** The disabled sink: every operation is a single pattern-match and
    return. [snapshot nop] is empty. *)

val create : unit -> sink
(** A recording sink with per-domain shards. *)

val is_recording : sink -> bool

val count : sink -> string -> int -> unit
(** Add to a monotonic counter (negative increments are ignored). *)

val gauge_max : sink -> string -> float -> unit
(** Raise a high-water-mark gauge ("max validation depth reached");
    shards merge by max. *)

val observe : sink -> string -> float -> unit
(** Record a histogram sample (a latency in seconds, a size in bytes). *)

val span : sink -> string -> (unit -> 'a) -> 'a
(** [span sink name f] times [f ()] with [Unix.gettimeofday] and records
    the duration under the {e path} of the span: nested spans extend their
    parent's path with ["/"], so [span s "infer" (fun () -> span s "merge"
    ...)] records under ["infer"] and ["infer/merge"]. Aggregated per path
    (call count, total and max seconds); re-raises whatever [f] raises,
    still closing the span. Nesting is tracked per domain. *)

(** {1 Snapshots} *)

type span_summary = {
  sp_path : string;   (** "/"-joined ancestry, e.g. ["infer/merge"] *)
  sp_calls : int;
  sp_total_s : float;
  sp_max_s : float;
}

type snapshot = {
  counters : (string * int) list;              (** sorted by name *)
  gauges : (string * float) list;              (** sorted by name *)
  histograms : (string * histogram_summary) list;  (** sorted by name *)
  spans : span_summary list;                   (** sorted by path *)
}

val snapshot : sink -> snapshot
(** Merge every domain shard into one view: counters and histogram cells
    sum, gauges take the max, spans aggregate per path. *)

val empty_snapshot : snapshot
