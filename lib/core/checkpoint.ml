(* Crash-safe checkpoint journal for supervised sharded jobs.

   Append-only NDJSON: one header line naming the job kind and a
   fingerprint of the input, then one line per *completed* shard (poisoned
   shards are deliberately not journaled — a resumed run must retry them,
   not inherit their quarantine). Each entry line is flushed as a unit, so
   a crash can only lose or tear the final line; the loader tolerates a
   torn tail by dropping everything from the first undecodable line on.
   Entries round-trip exactly (Resilient.ingest_of_json is the inverse of
   ingest_to_json, and the JSON printer emits shortest-round-trip floats),
   which is what makes a resumed run byte-identical to an uninterrupted
   one. *)

type entry = {
  e_off : int;
  e_len : int;
  e_line : int;
  e_ingest : Resilient.ingest;
  e_payload : Json.Value.t;
}

(* [buf] is reused across entry emissions: journaling is a per-shard hot
   path under the supervisor, and rendering into a retained buffer avoids
   allocating an intermediate string per entry *)
type journal = { oc : out_channel; buf : Buffer.t }

let format_tag = "jsontool-checkpoint/1"

(* FNV-1a 64-bit: cheap, dependency-free, and stable across runs —
   collision resistance is irrelevant here, accidental-mismatch detection
   (resuming against a different input or job kind) is the point *)
let fingerprint s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

let header_json ~job ~engine ~input_fp =
  Json.Value.Object
    [ ("format", Json.Value.String format_tag);
      ("job", Json.Value.String job);
      ("engine", Json.Value.String engine);
      ("input_fp", Json.Value.String input_fp) ]

let entry_to_json e =
  Json.Value.Object
    [ ("off", Json.Value.Int e.e_off);
      ("len", Json.Value.Int e.e_len);
      ("line", Json.Value.Int e.e_line);
      ("ingest", Resilient.ingest_to_json e.e_ingest);
      ("payload", e.e_payload) ]

let ( let* ) = Result.bind

let member name = function
  | Json.Value.Object fields -> (
      match List.assoc_opt name fields with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "checkpoint: missing field %S" name))
  | _ -> Error "checkpoint: expected an object"

let int_field name j =
  let* v = member name j in
  match v with
  | Json.Value.Int i -> Ok i
  | _ -> Error (Printf.sprintf "checkpoint: field %S must be an integer" name)

let string_field name j =
  let* v = member name j in
  match v with
  | Json.Value.String s -> Ok s
  | _ -> Error (Printf.sprintf "checkpoint: field %S must be a string" name)

let entry_of_json j =
  let* e_off = int_field "off" j in
  let* e_len = int_field "len" j in
  let* e_line = int_field "line" j in
  let* ingest_json = member "ingest" j in
  let* e_ingest = Resilient.ingest_of_json ingest_json in
  let* e_payload = member "payload" j in
  Ok { e_off; e_len; e_line; e_ingest; e_payload }

let check_header ~job ~engine ~input_fp j =
  let* format = string_field "format" j in
  let* file_job = string_field "job" j in
  let* file_engine = string_field "engine" j in
  let* file_fp = string_field "input_fp" j in
  if format <> format_tag then
    Error (Printf.sprintf "checkpoint: unknown format %S" format)
  else if file_job <> job then
    Error
      (Printf.sprintf "checkpoint: journal is for job %S, this run is %S"
         file_job job)
  else if file_engine <> engine then
    (* shard payloads are engine-independent by the byte-identity contract,
       but a mixed journal would silently launder one engine's results as
       the other's — refuse, like any other provenance mismatch *)
    Error
      (Printf.sprintf
         "checkpoint: engine mismatch (journal %s, this run %s) — refusing \
          to resume across engines"
         file_engine engine)
  else if file_fp <> input_fp then
    Error
      (Printf.sprintf
         "checkpoint: input fingerprint mismatch (journal %s, input %s) — \
          refusing to resume against different data"
         file_fp input_fp)
  else Ok ()

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

(* decode entries until the first undecodable line — the torn tail a crash
   mid-flush leaves behind; everything after it is recomputed, never
   trusted *)
let decode_entries lines =
  let rec go acc = function
    | [] -> List.rev acc
    | line :: rest -> (
        if String.trim line = "" then List.rev acc
        else
          match Json.Parser.parse line with
          | Error _ -> List.rev acc
          | Ok j -> (
              match entry_of_json j with
              | Error _ -> List.rev acc
              | Ok e -> go (e :: acc) rest))
  in
  go [] lines

let emit ~buf oc json =
  Buffer.clear buf;
  Json.Printer.to_buffer buf json;
  Buffer.add_char buf '\n';
  Buffer.output_buffer oc buf;
  flush oc

let start ~path ~resume ~job ~engine ~input =
  let input_fp = fingerprint input in
  let buf = Buffer.create 4096 in
  let fresh () =
    let oc = open_out_bin path in
    emit ~buf oc (header_json ~job ~engine ~input_fp);
    Ok ({ oc; buf }, [])
  in
  if not (resume && Sys.file_exists path) then fresh ()
  else
    match read_lines path with
    | [] -> fresh ()
    | header_line :: entry_lines -> (
        match Json.Parser.parse header_line with
        | Error _ -> Error "checkpoint: unreadable journal header"
        | Ok header ->
            let* () = check_header ~job ~engine ~input_fp header in
            let entries = decode_entries entry_lines in
            (* rewrite rather than append: scrubs any torn tail so the
               journal on disk is exactly the entries we trusted *)
            let oc = open_out_bin path in
            emit ~buf oc (header_json ~job ~engine ~input_fp);
            List.iter (fun e -> emit ~buf oc (entry_to_json e)) entries;
            Ok ({ oc; buf }, entries))

let record j e = emit ~buf:j.buf j.oc (entry_to_json e)

let close j = close_out_noerr j.oc
