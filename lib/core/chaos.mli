(** Deterministic fault injection for NDJSON inputs.

    The robustness tests and the [bench] robustness scenario need corpora
    with a *known* number of faults of a *known* kind, reproducible from a
    seed. [corrupt] walks an NDJSON text line by line and, at the given
    rate, injects one of four faults the tutorial's "massive and messy"
    discussion calls out:

    - {e truncation} — the line is cut mid-document (a crashed producer);
    - {e bit flips} — one bit of one byte is flipped (storage/transport
      corruption);
    - {e duplicate lines} — the record is emitted twice (at-least-once
      delivery);
    - {e oversized documents} — the record is wrapped in a padded envelope
      that stays valid JSON but blows any per-document byte budget.

    Faults in the first two classes carry a poison prefix that makes the
    line unparseable with the error {e contained inside the line} (a flip
    inside a string payload may leave the line valid; a truncation may leave
    a valid JSON prefix that would drag the parser into the next record), so
    [corrupting] is exactly the number of records a quarantining ingester
    must reject — tests assert equality, not inequality. *)

type fault = Truncate | Bit_flip | Duplicate_line | Oversize

val fault_name : fault -> string
val all_faults : fault list

type injected = {
  line : int;      (** 1-based input line the fault was applied to *)
  out_line : int;  (** 1-based line the faulted record lands on in [text]
                       (duplications above shift the two apart) *)
  fault : fault;
  site : string;   (** stable site id, e.g. ["chaos:truncate@L12"] —
                       threads injected faults into quarantine reports *)
}

val site_id : fault -> int -> string
(** [site_id fault line] is the id stamped on an injection at input
    [line]. *)

type outcome = {
  text : string;            (** the corrupted NDJSON *)
  injected : injected list; (** every fault, in input order *)
  corrupting : int;  (** faults guaranteed to defeat the parser *)
  oversized : int;   (** valid-but-huge records (budget kills) *)
  duplicated : int;  (** records emitted twice (still valid) *)
}

val corrupt :
  ?faults:fault list ->
  ?pad:int ->
  seed:int ->
  rate:float ->
  string ->
  outcome
(** [corrupt ~seed ~rate text] injects a fault into roughly [rate] of the
    non-blank lines, drawing faults uniformly from [faults] (default
    {!all_faults}) with a PRNG seeded by [seed] — same seed, same input,
    same outcome. [pad] (default 65536) is the envelope size used by
    [Oversize]; pick it above the ingestion byte budget under test. *)

val attribute :
  outcome -> Resilient.dead_letter list -> Resilient.dead_letter list
(** Rewrite the [cause] of every dead letter that an injected
    quarantine-causing fault (truncate / bit-flip / oversize) can claim —
    matched by the fault's [out_line] against the letter's whole-input line
    — to that fault's {!field-injected.site}. Letters no fault claims keep
    their parse-derived cause: after attribution, a drill is
    distinguishable from a real corpus problem in quarantine output. *)

val worker_faults :
  seed:int -> rate:float -> ?permanent:bool -> unit ->
  shard:int -> attempt:int -> string option
(** A deterministic worker-fault plan for {!Supervisor.run}'s [inject]
    hook: roughly [rate] of the shards fault, decided purely by
    [(seed, shard)] so the plan is independent of call order, retries, and
    resume. A faulted shard yields [Some site]. By default faults are
    {e transient} — the first 1–2 attempts fail, then the shard heals, so a
    retry policy with enough attempts recovers it; with [~permanent:true]
    every attempt fails and the shard must be poisoned. *)
