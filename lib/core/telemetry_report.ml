(* Render a Telemetry.snapshot for humans (--stats) and machines
   (--stats-json). Key order is sorted-by-name in both forms so the stats
   schema is stable and golden tests can pin it. *)

let hist_to_json (h : Telemetry.histogram_summary) =
  Json.Value.Object
    [ ("count", Json.Value.Int h.Telemetry.h_count);
      ("sum", Json.Value.Float h.Telemetry.h_sum);
      ("min", Json.Value.Float h.Telemetry.h_min);
      ("max", Json.Value.Float h.Telemetry.h_max);
      ("p50", Json.Value.Float h.Telemetry.h_p50);
      ("p90", Json.Value.Float h.Telemetry.h_p90);
      ("p99", Json.Value.Float h.Telemetry.h_p99) ]

let span_to_json (s : Telemetry.span_summary) =
  Json.Value.Object
    [ ("calls", Json.Value.Int s.Telemetry.sp_calls);
      ("total_s", Json.Value.Float s.Telemetry.sp_total_s);
      ("max_s", Json.Value.Float s.Telemetry.sp_max_s) ]

let to_json (s : Telemetry.snapshot) =
  Json.Value.Object
    [ ("counters",
       Json.Value.Object
         (List.map (fun (k, v) -> (k, Json.Value.Int v)) s.Telemetry.counters));
      ("gauges",
       Json.Value.Object
         (List.map (fun (k, v) -> (k, Json.Value.Float v)) s.Telemetry.gauges));
      ("histograms",
       Json.Value.Object
         (List.map (fun (k, h) -> (k, hist_to_json h)) s.Telemetry.histograms));
      ("spans",
       Json.Value.Object
         (List.map
            (fun sp -> (sp.Telemetry.sp_path, span_to_json sp))
            s.Telemetry.spans)) ]

(* seconds with a unit a human can read at a glance *)
let pp_seconds s =
  if s >= 1.0 then Printf.sprintf "%.2fs" s
  else if s >= 1e-3 then Printf.sprintf "%.2fms" (s *. 1e3)
  else Printf.sprintf "%.0fus" (s *. 1e6)

let pp_value v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.4g" v

let to_table (s : Telemetry.snapshot) =
  let b = Buffer.create 1024 in
  let section title = Buffer.add_string b (Printf.sprintf "-- %s --\n" title) in
  if s.Telemetry.counters <> [] then begin
    section "counters";
    List.iter
      (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%-42s %12d\n" k v))
      s.Telemetry.counters
  end;
  if s.Telemetry.gauges <> [] then begin
    section "gauges";
    List.iter
      (fun (k, v) ->
        Buffer.add_string b (Printf.sprintf "%-42s %12s\n" k (pp_value v)))
      s.Telemetry.gauges
  end;
  if s.Telemetry.histograms <> [] then begin
    section "histograms";
    Buffer.add_string b
      (Printf.sprintf "%-42s %8s %10s %10s %10s %10s\n" "" "count" "p50" "p90"
         "p99" "max");
    List.iter
      (fun (k, h) ->
        Buffer.add_string b
          (Printf.sprintf "%-42s %8d %10s %10s %10s %10s\n" k
             h.Telemetry.h_count
             (pp_value h.Telemetry.h_p50)
             (pp_value h.Telemetry.h_p90)
             (pp_value h.Telemetry.h_p99)
             (pp_value h.Telemetry.h_max)))
      s.Telemetry.histograms
  end;
  if s.Telemetry.spans <> [] then begin
    section "spans";
    Buffer.add_string b
      (Printf.sprintf "%-42s %8s %10s %10s\n" "" "calls" "total" "max");
    List.iter
      (fun sp ->
        Buffer.add_string b
          (Printf.sprintf "%-42s %8d %10s %10s\n" sp.Telemetry.sp_path
             sp.Telemetry.sp_calls
             (pp_seconds sp.Telemetry.sp_total_s)
             (pp_seconds sp.Telemetry.sp_max_s)))
      s.Telemetry.spans
  end;
  Buffer.contents b
