(** Guarded NDJSON ingestion: resource budgets, per-document quarantine,
    and fast-path degradation.

    Production JSON pipelines meet "massive and messy" data: one corrupted
    line, one pathologically deep document, or one multi-gigabyte record
    must not abort a batch or blow the stack. This layer is the single
    entry point the pipelines ({!Pipeline}) and the CLI route raw text
    through. It

    - enforces {e resource budgets} (bytes/doc, nodes/doc, string length,
      nesting depth, document count) via the typed
      {!Json.Parser.error_kind} machinery — budget violations are values,
      never exceptions;
    - {e quarantines} failing documents as dead letters instead of
      erroring, resuming at the next line boundary, and returns an
      {!report} alongside the surviving documents;
    - {e degrades} the Mison fast path per record to the full parser
      (see {!Fastjson.Mison.parse_line}), counting fallbacks instead of
      failing the batch. *)

type budget = {
  max_doc_bytes : int option;    (** byte span one document may occupy *)
  max_nodes : int option;        (** JSON nodes per document *)
  max_string_bytes : int option; (** unescaped length of one string *)
  max_depth : int;               (** nesting depth *)
  max_docs : int option;         (** documents ingested per batch *)
}

val default_budget : budget
(** Generous production defaults: 8 MiB/doc, 1M nodes, 1 MiB strings,
    depth 256, unlimited documents. *)

val unbounded_budget : budget
(** No caps beyond the parser's stock depth limit — the pre-resilient
    behaviour, used by the strict compatibility path. *)

val parser_options : ?base:Json.Parser.options -> budget -> Json.Parser.options
(** Lower a budget onto parser options ([base] defaults to
    {!Json.Parser.default_options}; [max_docs] is enforced here, not by the
    parser). *)

type fault_kind =
  | Parse of Json.Parser.error_kind
      (** one document failed: syntax fault vs. which budget *)
  | Shard of string
      (** a whole supervised shard was poisoned; the label is the
          supervisor's failure class ("timeout", "crash", "fault") *)

val kind_name : fault_kind -> string
(** Stable flag-style rendering: ["syntax"], ["budget:max-depth"],
    ["shard:timeout"], ... *)

val kind_of_name : string -> fault_kind option
(** Inverse of {!kind_name} (used by the checkpoint journal). *)

type dead_letter = {
  line : int;         (** 1-based line the document started on *)
  byte_offset : int;  (** offset of the document's first byte *)
  error : string;     (** human-readable, with global line/column *)
  kind : fault_kind;  (** what killed the span *)
  cause : string;
      (** attribution: defaults to {!kind_name}; rewritten to a fault site
          id when {!Chaos.attribute} proves the fault was injected, or to
          the supervisor's failure description for poisoned shards —
          quarantine triage can tell a real corpus problem from a drill *)
  attempts : int;
      (** execution attempts made on the shard that produced this letter
          (1 = no retry); for a poisoned shard this is the exhausted
          attempt budget, distinguishing transient-exhausted from
          first-try-permanent failures *)
  raw_prefix : string;  (** first bytes of the offending span, for triage *)
}

type report = {
  ok : int;            (** documents ingested *)
  quarantined : int;   (** syntax faults turned into dead letters *)
  budget_killed : int; (** budget violations turned into dead letters *)
  budget_causes : (Json.Parser.budget_violation * int) list;
      (** [budget_killed] broken down by which cap was blown, sorted by
          {!Json.Parser.violation_name} — a depth bomb and an oversized
          document are different operational problems, so the aggregate
          alone is not actionable *)
  poisoned : int;      (** supervised shards that exhausted every retry *)
  truncated : bool;    (** the [max_docs] cap cut ingestion short *)
}

val empty_report : report

val merge_causes :
  (Json.Parser.budget_violation * int) list ->
  (Json.Parser.budget_violation * int) list ->
  (Json.Parser.budget_violation * int) list
(** Sum two cause breakdowns (used when merging shard reports). *)

type ingest = {
  docs : Json.Value.t list;
  dead : dead_letter list;
  report : report;
}

val ingest_with :
  ?budget:budget -> ?options:Json.Parser.options ->
  ?first_line:int -> ?base_offset:int ->
  ?attempt:int -> ?tick:(unit -> unit) -> ?telemetry:Telemetry.sink ->
  parse_doc:
    (options:Json.Parser.options -> telemetry:Telemetry.sink ->
     string -> pos:int -> ('a * int, Json.Parser.error) result) ->
  string -> 'a list * dead_letter list * report
(** The ingestion loop, generic over what one document becomes. [parse_doc]
    is handed the resolved parser options (budget lowered, trailing input
    allowed) and must consume exactly one document starting at [pos],
    returning its payload and the offset one past it — or the error
    {!Json.Parser.parse_substring} would report there. The scanning, budget,
    quarantine, dead-letter and telemetry behaviour is exactly {!ingest}'s;
    with [parse_doc = Json.Parser.parse_substring] the payloads are the
    parsed documents and this {e is} {!ingest}. The streaming engine
    ({!Pipeline}) plugs in token-level folds
    ({!Inference.Streaming.infer_tokens}, {!Jsonschema.Compile.run_stream})
    whose error behaviour is byte-identical by contract, so dead letters and
    reports cannot differ between engines. *)

val ingest :
  ?budget:budget -> ?options:Json.Parser.options ->
  ?first_line:int -> ?base_offset:int ->
  ?attempt:int -> ?tick:(unit -> unit) -> ?telemetry:Telemetry.sink ->
  string -> ingest
(** Total: never raises, never errors — with one deliberate exception:
    whatever [tick] raises propagates. Parses an NDJSON / concatenated-JSON
    text document by document under [budget]; a failing document becomes a
    {!dead_letter} and scanning resumes after the next newline. [options]
    supplies non-budget knobs (duplicate-key policy, ...); its budget fields
    are overridden by [budget]. [first_line] (default 1) and [base_offset]
    (default 0) shift reported line numbers and byte offsets — used by
    {!Parallel} so a shard of a larger input produces dead letters in the
    coordinates of the whole input. [attempt] (default 1) stamps every dead
    letter's [attempts] field — the supervisor passes the current retry
    attempt so quarantine records carry their retry history. [tick]
    (default a no-op) is called once per document boundary; {!Supervisor}
    installs a deadline check here, making shard wall-clock timeouts
    cooperative instead of preemptive. [telemetry] (default
    {!Telemetry.nop}) receives [ingest.docs_ok], [ingest.docs_quarantined],
    [ingest.budget.<cap>] counters plus the underlying parser's [parse.*]
    metrics. *)

val parse_ndjson_strict :
  ?budget:budget -> ?options:Json.Parser.options -> string ->
  (Json.Value.t list, string) result
(** Fail-fast compatibility mode for the classic pipeline entry points:
    same scanning as {!ingest} (default budget {!unbounded_budget}) but the
    first dead letter aborts with its error. *)

(** {1 Fast-path projection with degradation} *)

type projected = {
  rows : (string * Json.Value.t) list list;  (** one row per surviving line *)
  proj_dead : dead_letter list;
  proj_report : report;
  mison : Fastjson.Mison.stats;
      (** includes [full_parse_fallbacks] — records rescued by the full
          parser after a fast-path failure *)
}

val project :
  ?budget:budget -> ?telemetry:Telemetry.sink -> fields:string list ->
  string -> projected
(** Mison projection over NDJSON with quarantine: each line goes through
    {!Fastjson.Mison.parse_line} (fast path, then full-parser fallback);
    lines failing both paths are quarantined, never raised. [telemetry]
    receives the ingest counters above plus {!Fastjson.Mison}'s
    pruned-vs-materialized accounting. *)

(** {1 Reports as JSON} *)

val report_to_json : report -> Json.Value.t
val dead_letter_to_json : dead_letter -> Json.Value.t

(** {1 Round trips}

    Exact inverses of the renderings above ([x_of_json (x_to_json v) = Ok
    v]); {!Checkpoint} journals completed-shard ingest results in this form
    so a resumed job reproduces the uninterrupted output byte-identically. *)

val report_of_json : Json.Value.t -> (report, string) result
val dead_letter_of_json : Json.Value.t -> (dead_letter, string) result
val ingest_to_json : ingest -> Json.Value.t
val ingest_of_json : Json.Value.t -> (ingest, string) result
