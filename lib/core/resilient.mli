(** Guarded NDJSON ingestion: resource budgets, per-document quarantine,
    and fast-path degradation.

    Production JSON pipelines meet "massive and messy" data: one corrupted
    line, one pathologically deep document, or one multi-gigabyte record
    must not abort a batch or blow the stack. This layer is the single
    entry point the pipelines ({!Pipeline}) and the CLI route raw text
    through. It

    - enforces {e resource budgets} (bytes/doc, nodes/doc, string length,
      nesting depth, document count) via the typed
      {!Json.Parser.error_kind} machinery — budget violations are values,
      never exceptions;
    - {e quarantines} failing documents as dead letters instead of
      erroring, resuming at the next line boundary, and returns an
      {!report} alongside the surviving documents;
    - {e degrades} the Mison fast path per record to the full parser
      (see {!Fastjson.Mison.parse_line}), counting fallbacks instead of
      failing the batch. *)

type budget = {
  max_doc_bytes : int option;    (** byte span one document may occupy *)
  max_nodes : int option;        (** JSON nodes per document *)
  max_string_bytes : int option; (** unescaped length of one string *)
  max_depth : int;               (** nesting depth *)
  max_docs : int option;         (** documents ingested per batch *)
}

val default_budget : budget
(** Generous production defaults: 8 MiB/doc, 1M nodes, 1 MiB strings,
    depth 256, unlimited documents. *)

val unbounded_budget : budget
(** No caps beyond the parser's stock depth limit — the pre-resilient
    behaviour, used by the strict compatibility path. *)

val parser_options : ?base:Json.Parser.options -> budget -> Json.Parser.options
(** Lower a budget onto parser options ([base] defaults to
    {!Json.Parser.default_options}; [max_docs] is enforced here, not by the
    parser). *)

type dead_letter = {
  line : int;         (** 1-based line the document started on *)
  byte_offset : int;  (** offset of the document's first byte *)
  error : string;     (** human-readable, with global line/column *)
  kind : Json.Parser.error_kind;  (** syntax fault vs. which budget *)
  raw_prefix : string;  (** first bytes of the offending span, for triage *)
}

type report = {
  ok : int;            (** documents ingested *)
  quarantined : int;   (** syntax faults turned into dead letters *)
  budget_killed : int; (** budget violations turned into dead letters *)
  budget_causes : (Json.Parser.budget_violation * int) list;
      (** [budget_killed] broken down by which cap was blown, sorted by
          {!Json.Parser.violation_name} — a depth bomb and an oversized
          document are different operational problems, so the aggregate
          alone is not actionable *)
  truncated : bool;    (** the [max_docs] cap cut ingestion short *)
}

val empty_report : report

val merge_causes :
  (Json.Parser.budget_violation * int) list ->
  (Json.Parser.budget_violation * int) list ->
  (Json.Parser.budget_violation * int) list
(** Sum two cause breakdowns (used when merging shard reports). *)

type ingest = {
  docs : Json.Value.t list;
  dead : dead_letter list;
  report : report;
}

val ingest :
  ?budget:budget -> ?options:Json.Parser.options ->
  ?first_line:int -> ?base_offset:int -> ?telemetry:Telemetry.sink ->
  string -> ingest
(** Total: never raises, never errors. Parses an NDJSON / concatenated-JSON
    text document by document under [budget]; a failing document becomes a
    {!dead_letter} and scanning resumes after the next newline. [options]
    supplies non-budget knobs (duplicate-key policy, ...); its budget fields
    are overridden by [budget]. [first_line] (default 1) and [base_offset]
    (default 0) shift reported line numbers and byte offsets — used by
    {!Parallel} so a shard of a larger input produces dead letters in the
    coordinates of the whole input. [telemetry] (default {!Telemetry.nop})
    receives [ingest.docs_ok], [ingest.docs_quarantined],
    [ingest.budget.<cap>] counters plus the underlying parser's [parse.*]
    metrics. *)

val parse_ndjson_strict :
  ?budget:budget -> ?options:Json.Parser.options -> string ->
  (Json.Value.t list, string) result
(** Fail-fast compatibility mode for the classic pipeline entry points:
    same scanning as {!ingest} (default budget {!unbounded_budget}) but the
    first dead letter aborts with its error. *)

(** {1 Fast-path projection with degradation} *)

type projected = {
  rows : (string * Json.Value.t) list list;  (** one row per surviving line *)
  proj_dead : dead_letter list;
  proj_report : report;
  mison : Fastjson.Mison.stats;
      (** includes [full_parse_fallbacks] — records rescued by the full
          parser after a fast-path failure *)
}

val project :
  ?budget:budget -> ?telemetry:Telemetry.sink -> fields:string list ->
  string -> projected
(** Mison projection over NDJSON with quarantine: each line goes through
    {!Fastjson.Mison.parse_line} (fast path, then full-parser fallback);
    lines failing both paths are quarantined, never raised. [telemetry]
    receives the ingest counters above plus {!Fastjson.Mison}'s
    pruned-vs-materialized accounting. *)

(** {1 Reports as JSON} *)

val report_to_json : report -> Json.Value.t
val dead_letter_to_json : dead_letter -> Json.Value.t
