(** Raw byte-level scanning over JSON text, without tokenizing.

    These are the "skip without parsing" primitives that give Mison and
    Fad.js their speed: a value that the query does not need is stepped
    over by bracket/quote counting only — no unescaping, no number
    conversion, no tree allocation. *)

val skip_ws : string -> int -> int
(** First offset ≥ the argument that is not JSON whitespace. *)

val skip_string : string -> int -> (int, string) result
(** [skip_string s i] with [s.[i] = '"']: offset one past the closing
    quote, honoring backslash escapes. *)

val skip_value : string -> int -> (int, string) result
(** Offset one past the JSON value starting at the given offset (which must
    not be whitespace). Containers are skipped by depth counting with
    in-string awareness; scalars by delimiter scanning. The value is not
    validated beyond bracket balance. *)

val skim_value :
  Json.Lexer.t ->
  dup_keys:Json.Parser.dup_policy ->
  max_depth:int ->
  depth:int ->
  spend_node:(Json.Lexer.position -> unit) ->
  check_bytes:(Json.Lexer.position -> unit) ->
  unit
(** Consume exactly one JSON value from the lexer without building a tree,
    validating everything [Json.Parser] would: grammar, [max_depth] (the
    value itself sits at [depth], matching [parse_value]'s [value depth]),
    per-token node/byte budgets via the caller's hooks (shared with the
    enclosing document walk), string budgets, and duplicate keys under
    [Reject]. String payloads are skimmed ({!Json.Lexer.next_skimming});
    field names are materialized only when [dup_keys = Reject]. Raises the
    parser's own exceptions with byte-identical positions, messages, and
    kinds — recover with [Json.Parser.run]. This is the streaming
    validator's instrument for subtrees its plan provably ignores. *)

val raw_key_at : string -> colon:int -> (string * int, string) result
(** Scan {e backward} from a colon position to extract the raw (still
    escaped) field name, returning the name and the offset of its opening
    quote. This is how Mison recovers field names from its colon bitmap. *)
