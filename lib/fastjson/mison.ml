type projection = { fields : string list }

type stats = {
  records : int;
  speculative_hits : int;
  fallback_scans : int;
  full_parse_fallbacks : int;
}

type t = {
  wanted : (string, unit) Hashtbl.t;
  depth : int; (* deepest projected path *)
  predicted : (string, int) Hashtbl.t; (* field -> colon ordinal *)
  tele : Telemetry.sink;
  mutable touched : int; (* bytes materialized by the last parse_record *)
  mutable last_colons : int; (* level-1 colons seen by the last parse_record *)
  mutable records : int;
  mutable speculative_hits : int;
  mutable fallback_scans : int;
  mutable full_parse_fallbacks : int;
}

let create ?(telemetry = Telemetry.nop) (p : projection) =
  let wanted = Hashtbl.create 8 in
  List.iter (fun f -> Hashtbl.replace wanted f ()) p.fields;
  let depth =
    List.fold_left
      (fun d f -> max d (List.length (String.split_on_char '.' f)))
      1 p.fields
  in
  { wanted;
    depth;
    predicted = Hashtbl.create 8;
    tele = telemetry;
    touched = 0;
    last_colons = 0;
    records = 0;
    speculative_hits = 0;
    fallback_scans = 0;
    full_parse_fallbacks = 0 }

let stats t =
  { records = t.records;
    speculative_hits = t.speculative_hits;
    fallback_scans = t.fallback_scans;
    full_parse_fallbacks = t.full_parse_fallbacks }

(* returns the value and the bytes consumed parsing it, for the
   pruned-vs-materialized accounting *)
let parse_value_at src pos =
  let pos = Rawscan.skip_ws src pos in
  match Json.Parser.parse_substring src ~pos with
  | Ok (v, stop) -> Ok (v, stop - pos)
  | Error e -> Error (Json.Parser.string_of_error e)

(* name of the field owning the colon at offset c *)
let key_of src c = Rawscan.raw_key_at src ~colon:c

(* Locate a dotted path inside [lo,hi) using colons of increasing level;
   returns the byte offset of the value, never parsing enclosing objects.
   Falls back to None when the path is absent (or deeper than the index). *)
let rec locate idx ~level ~lo ~hi segments =
  let src = Structural_index.source idx in
  match segments with
  | [] -> None
  | seg :: rest ->
      let colons = Structural_index.colons idx ~level ~lo ~hi in
      let rec scan = function
        | [] -> None
        | c :: more -> (
            match key_of src c with
            | Ok (name, _) when String.equal name seg -> (
                let value_start = Rawscan.skip_ws src (c + 1) in
                match rest with
                | [] -> Some value_start
                | _ -> (
                    match Rawscan.skip_value src value_start with
                    | Ok value_end ->
                        if level + 1 <= Structural_index.max_level idx then
                          locate idx ~level:(level + 1) ~lo:value_start
                            ~hi:value_end rest
                        else None
                    | Error _ -> None))
            | _ -> scan more)
      in
      scan colons

let parse_record t idx ~lo ~hi =
  let src = Structural_index.source idx in
  (* pruned-vs-materialized accounting: [touched] sums the byte spans this
     record actually handed to the full parser; everything else in [lo,hi)
     was pruned (skipped by the colon index) *)
  t.touched <- 0;
  (* dotted paths go through the leveled locator; plain names through the
     speculative ordinal machinery below *)
  let nested =
    Hashtbl.fold
      (fun f () acc -> if String.contains f '.' then f :: acc else acc)
      t.wanted []
  in
  let nested_results =
    List.filter_map
      (fun path ->
        let segments = String.split_on_char '.' path in
        match locate idx ~level:1 ~lo ~hi segments with
        | Some value_pos -> (
            match parse_value_at src value_pos with
            | Ok (v, used) ->
                t.touched <- t.touched + used;
                Some (path, v)
            | Error _ -> None)
        | None -> None)
      nested
  in
  let colon_list = Structural_index.colons idx ~level:1 ~lo ~hi in
  let colon_arr = Array.of_list colon_list in
  let n_colons = Array.length colon_arr in
  t.last_colons <- n_colons;
  let n_wanted = Hashtbl.length t.wanted - List.length nested in
  t.records <- t.records + 1;
  let results = ref [] in
  let found = Hashtbl.create 8 in
  let exception Fail of string in
  let take field c =
    match parse_value_at src (c + 1) with
    | Ok (v, used) ->
        t.touched <- t.touched + used;
        Hashtbl.replace found field ();
        results := (field, v) :: !results
    | Error msg -> raise (Fail msg)
  in
  match
    (* speculative probe: for each wanted field, test its predicted colon *)
    Hashtbl.iter
      (fun field () ->
        if String.contains field '.' then ()
        else
        match Hashtbl.find_opt t.predicted field with
        | Some ord when ord < n_colons -> (
            let c = colon_arr.(ord) in
            match key_of src c with
            | Ok (name, _) when String.equal name field ->
                t.speculative_hits <- t.speculative_hits + 1;
                take field c
            | _ -> ())
        | _ -> ())
      t.wanted;
    (* fallback: scan remaining colons for fields not yet found *)
    if Hashtbl.length found < n_wanted then begin
      t.fallback_scans <- t.fallback_scans + 1;
      let rec scan ord =
        if ord < n_colons && Hashtbl.length found < n_wanted then begin
          let c = colon_arr.(ord) in
          (match key_of src c with
           | Ok (name, _) when Hashtbl.mem t.wanted name && not (Hashtbl.mem found name) ->
               Hashtbl.replace t.predicted name ord;
               take name c
           | _ -> ());
          scan (ord + 1)
        end
      in
      scan 0
    end
  with
  | () -> Ok (nested_results @ List.rev !results)
  | exception Fail msg -> Error msg

(* fast path without accounting emission: [parse_line] decides how the
   record is finally charged (fast projection vs full-parse rescue) *)
let parse_string_raw t src =
  let idx =
    Telemetry.span t.tele "mison.index_build" (fun () ->
        Structural_index.build ~max_level:t.depth src)
  in
  parse_record t idx ~lo:0 ~hi:(String.length src)

(* Emit one record's byte accounting. [materialized] is clamped into
   [0, input_bytes] so the invariant [bytes_pruned + bytes_materialized <=
   mison.input_bytes] holds even for overlapping projections (a dotted path
   inside another projected field parses the same bytes twice). *)
let emit_record t ~input_bytes ~materialized =
  if Telemetry.is_recording t.tele then begin
    let materialized = min (max 0 materialized) input_bytes in
    Telemetry.count t.tele "mison.records" 1;
    Telemetry.count t.tele "mison.input_bytes" input_bytes;
    Telemetry.count t.tele "mison.bytes_materialized" materialized;
    Telemetry.count t.tele "mison.bytes_pruned" (input_bytes - materialized)
  end

let emit_fields t ~n_found ~n_colons =
  if Telemetry.is_recording t.tele then begin
    Telemetry.count t.tele "mison.fields_materialized" n_found;
    Telemetry.count t.tele "mison.fields_pruned" (max 0 (n_colons - n_found))
  end

let parse_string t src =
  let r = parse_string_raw t src in
  (match r with
   | Ok fields ->
       emit_record t ~input_bytes:(String.length src) ~materialized:t.touched;
       emit_fields t ~n_found:(List.length fields) ~n_colons:t.last_colons
   | Error _ -> ());
  r

(* Degradation path: project the wanted fields out of a fully-parsed tree.
   Used when the structural-index fast path fails (or cannot be trusted) on
   one record, so a single bad record degrades instead of erroring the
   batch. *)
let project_of_tree t v =
  let lookup_path v segments =
    let rec go v = function
      | [] -> Some v
      | seg :: rest -> (
          match v with
          | Json.Value.Object fields -> (
              match List.assoc_opt seg fields with
              | Some x -> go x rest
              | None -> None)
          | _ -> None)
    in
    go v segments
  in
  let nested, plain =
    Hashtbl.fold
      (fun f () (n, p) ->
        if String.contains f '.' then (f :: n, p) else (n, f :: p))
      t.wanted ([], [])
  in
  let nested_results =
    List.filter_map
      (fun path ->
        match lookup_path v (String.split_on_char '.' path) with
        | Some x -> Some (path, x)
        | None -> None)
      nested
  in
  let plain_results =
    match v with
    | Json.Value.Object fields -> List.filter (fun (k, _) -> List.mem k plain) fields
    | _ -> []
  in
  nested_results @ plain_results

let parse_line ?options t src =
  let fast = parse_string_raw t src in
  (* [parse_record] resets [t.touched]; capture it before any fallback full
     parse so the fast-path accounting survives the rescue attempt *)
  let fast_touched = t.touched and fast_colons = t.last_colons in
  let emit_fast fields =
    emit_record t ~input_bytes:(String.length src) ~materialized:fast_touched;
    emit_fields t ~n_found:(List.length fields) ~n_colons:fast_colons
  in
  let n_wanted = Hashtbl.length t.wanted in
  let trustworthy =
    (* A record containing backslashes may carry escaped field names, which
       the raw colon scanner compares in their escaped form and therefore
       misses; only a full parse can decide. Complete projections are safe
       either way. *)
    match fast with
    | Ok fields -> List.length fields = n_wanted || not (String.contains src '\\')
    | Error _ -> false
  in
  if trustworthy then begin
    (match fast with Ok fields -> emit_fast fields | Error _ -> ());
    fast
  end
  else
    match Json.Parser.parse ?options ~telemetry:t.tele src with
    | Ok v ->
        t.full_parse_fallbacks <- t.full_parse_fallbacks + 1;
        Telemetry.count t.tele "mison.full_parse_fallbacks" 1;
        let fields = project_of_tree t v in
        (* the rescue materializes the whole record: nothing was pruned *)
        emit_record t ~input_bytes:(String.length src)
          ~materialized:(String.length src);
        emit_fields t ~n_found:(List.length fields)
          ~n_colons:(List.length fields);
        Ok fields
    | Error e -> (
        match fast with
        | Ok fields ->
            (* the raw scan succeeded and only skipped over whatever the
               full parser rejects — keep the fast-path projection *)
            emit_fast fields;
            fast
        | Error _ ->
            Telemetry.count t.tele "mison.errors" 1;
            Error (Json.Parser.string_of_error e))

let project_ndjson_with_stats ?telemetry p text =
  let t = create ?telemetry p in
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' text)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc, stats t)
    | line :: rest -> (
        match parse_line t line with
        | Ok fields -> go (fields :: acc) rest
        | Error _ as e -> (match e with Error msg -> Error msg | _ -> assert false))
  in
  go [] lines

let project_ndjson ?telemetry p text =
  match project_ndjson_with_stats ?telemetry p text with
  | Ok (rows, _) -> Ok rows
  | Error _ as e -> e
