(** Mison's projection parser: parse only the queried fields.

    Given the colon positions from the {!Structural_index}, each record's
    wanted fields are located directly: walk the level-1 colons, recover the
    field name with a short backward scan, and fully parse {e only} values
    whose name is in the projection set — everything else is never touched.

    Speculation (§5 of the paper): across records of a collection, a field
    tends to appear at the same ordinal position. The parser remembers, for
    every projected field, the colon ordinal where it was last found and
    probes that position first; a miss falls back to the full scan of the
    record's colons and retrains. {!stats} reports the hit rate (E6 uses
    the same mechanism in Fad.js form). *)

type projection = {
  fields : string list;
      (** field paths wanted: top-level names (["id"]) or dotted paths into
          nested objects (["user.name"]), resolved with the leveled colon
          bitmaps — level k of the index serves depth-k fields without
          parsing the enclosing objects *)
}

type stats = {
  records : int;
  speculative_hits : int;  (** fields found at their predicted ordinal *)
  fallback_scans : int;    (** records needing a full colon scan *)
  full_parse_fallbacks : int;
      (** records the fast path gave up on and handed to {!Json.Parser}
          (degradation policy — see {!parse_line}) *)
}

type t
(** Stateful projection parser (holds the learned field positions). *)

val create : ?telemetry:Telemetry.sink -> projection -> t
(** [telemetry] (default {!Telemetry.nop}) receives the pruned-vs-
    materialized byte accounting of every record this parser handles:
    counters [mison.records], [mison.input_bytes],
    [mison.bytes_materialized], [mison.bytes_pruned] (with
    [bytes_pruned + bytes_materialized <= input_bytes] always),
    [mison.fields_materialized] / [mison.fields_pruned],
    [mison.full_parse_fallbacks], [mison.errors], and the span
    [mison.index_build] timing the structural-index construction. *)

val stats : t -> stats

val parse_record :
  t -> Structural_index.t -> lo:int -> hi:int -> ((string * Json.Value.t) list, string) result
(** Parse the projected fields of the object spanning [lo,hi) in the
    indexed input. Fields absent from the record are simply not returned. *)

val parse_string : t -> string -> ((string * Json.Value.t) list, string) result
(** Convenience: index one standalone JSON object and project it. *)

val parse_line :
  ?options:Json.Parser.options ->
  t -> string -> ((string * Json.Value.t) list, string) result
(** {!parse_string} with the per-record degradation policy: when the
    structural-index fast path errors, or returns an incomplete projection
    on a record that contains backslashes (escaped field names are invisible
    to the raw colon scanner), the record is re-parsed with the full
    {!Json.Parser} (under [options], so ingestion budgets still apply) and
    projected from the tree. Each such rescue is counted in
    [stats.full_parse_fallbacks]; [Error] only when both paths fail. *)

val project_ndjson :
  ?telemetry:Telemetry.sink ->
  projection -> string -> ((string * Json.Value.t) list list, string) result
(** Project every line of an NDJSON text with a fresh speculative parser;
    lines share the learned positions, which is where the speedup comes
    from. Individual records degrade per {!parse_line}; the whole batch
    errors only when a record fails both the fast path and the full
    parser. *)

val project_ndjson_with_stats :
  ?telemetry:Telemetry.sink ->
  projection -> string -> ((string * Json.Value.t) list list * stats, string) result
