let skip_ws s i =
  let n = String.length s in
  let rec go i =
    if i < n then
      match s.[i] with ' ' | '\t' | '\n' | '\r' -> go (i + 1) | _ -> i
    else i
  in
  go i

let skip_string s i =
  let n = String.length s in
  if i >= n || s.[i] <> '"' then Error "expected a string"
  else
    let rec go i =
      if i >= n then Error "unterminated string"
      else
        match s.[i] with
        | '"' -> Ok (i + 1)
        | '\\' -> if i + 1 < n then go (i + 2) else Error "truncated escape"
        | _ -> go (i + 1)
    in
    go (i + 1)

let skip_literal s i =
  (* numbers, true/false/null: scan to a delimiter *)
  let n = String.length s in
  let rec go i =
    if i >= n then i
    else
      match s.[i] with
      | ',' | '}' | ']' | ' ' | '\t' | '\n' | '\r' -> i
      | _ -> go (i + 1)
  in
  Ok (go i)

let skip_container s i =
  let n = String.length s in
  let rec go i depth in_string =
    if i >= n then Error "unbalanced brackets"
    else if in_string then
      match s.[i] with
      | '\\' -> if i + 1 < n then go (i + 2) depth true else Error "truncated escape"
      | '"' -> go (i + 1) depth false
      | _ -> go (i + 1) depth true
    else
      match s.[i] with
      | '"' -> go (i + 1) depth true
      | '{' | '[' -> go (i + 1) (depth + 1) false
      | '}' | ']' -> if depth = 1 then Ok (i + 1) else go (i + 1) (depth - 1) false
      | _ -> go (i + 1) depth false
  in
  go i 0 false

let skip_value s i =
  let n = String.length s in
  if i >= n then Error "unexpected end of input"
  else
    match s.[i] with
    | '"' -> skip_string s i
    | '{' | '[' -> skip_container s i
    | _ -> skip_literal s i

(* Token-level validating skip: consume exactly one JSON value from the
   lexer, checking everything [Json.Parser.parse_value] would check — depth,
   per-token node/byte budgets (via the caller's hooks, so the accounting is
   shared with the enclosing document walk), string budgets, grammar, and
   duplicate keys under [Reject] — without building any [Value.t]. Failure
   positions, messages, and kinds are identical to the tree parser's, which
   is what lets a streaming engine skip plan-irrelevant subtrees and still
   report byte-identical errors. *)
let skim_value lx ~dup_keys ~max_depth ~depth ~spend_node ~check_bytes =
  let module L = Json.Lexer in
  let module P = Json.Parser in
  let reject = dup_keys = P.Reject in
  (* Under [Reject] field names must be materialized for the duplicate
     check; otherwise they are skimmed like any other string. *)
  let next_key () = if reject then L.next lx else L.next_skimming lx in
  let rec value depth =
    if depth > max_depth then
      P.fail ~kind:(P.Budget_exceeded P.Depth_exceeded) (L.position lx)
        "maximum nesting depth exceeded";
    let tok, pos = L.next_skimming lx in
    spend_node pos;
    check_bytes pos;
    value_tok tok pos depth
  and value_tok tok pos depth =
    match tok with
    | L.Null_tok | L.True | L.False | L.Number_tok _ | L.String_tok _ -> ()
    | L.Lbracket -> array depth
    | L.Lbrace -> object_ depth
    | (L.Rbrace | L.Rbracket | L.Colon | L.Comma | L.Eof) as t ->
        P.fail pos (Printf.sprintf "expected a value, got %s" (L.token_name t))
  and array depth =
    (* The tree parser peeks for ']' — lexing the first element's token
       before the depth check, with [position] left past it. Reading the
       token first and depth-checking second reproduces that order. *)
    let tok, pos = L.next_skimming lx in
    match tok with
    | L.Rbracket -> ()
    | _ ->
        if depth + 1 > max_depth then
          P.fail ~kind:(P.Budget_exceeded P.Depth_exceeded) (L.position lx)
            "maximum nesting depth exceeded";
        spend_node pos;
        check_bytes pos;
        value_tok tok pos (depth + 1);
        elements depth
  and elements depth =
    let tok, pos = L.next_skimming lx in
    match tok with
    | L.Comma -> value (depth + 1); elements depth
    | L.Rbracket -> ()
    | t -> P.fail pos (Printf.sprintf "expected ',' or ']', got %s" (L.token_name t))
  and object_ depth =
    let tok, pos = next_key () in
    match tok with
    | L.Rbrace -> ()
    | _ -> fields [] tok pos depth
  and fields acc tok key_pos depth =
    match tok with
    | L.String_tok key -> (
        let tok, pos = L.next lx in
        match tok with
        | L.Colon -> (
            value (depth + 1);
            let tok, pos = L.next lx in
            match tok with
            | L.Comma ->
                let tok, key_pos = next_key () in
                fields ((key, ()) :: acc) tok key_pos depth
            | L.Rbrace ->
                if reject then
                  ignore (P.apply_dup_policy dup_keys ((key, ()) :: acc) pos)
            | t ->
                P.fail pos
                  (Printf.sprintf "expected ',' or '}', got %s" (L.token_name t)))
        | t -> P.fail pos (Printf.sprintf "expected ':', got %s" (L.token_name t)))
    | t ->
        P.fail key_pos
          (Printf.sprintf "expected a field name, got %s" (L.token_name t))
  in
  value depth

let raw_key_at s ~colon =
  (* walk back over whitespace, expect closing quote, then scan to the
     opening quote (a quote preceded by an even number of backslashes) *)
  let rec back_ws i =
    if i >= 0 && (s.[i] = ' ' || s.[i] = '\t' || s.[i] = '\n' || s.[i] = '\r') then
      back_ws (i - 1)
    else i
  in
  let close = back_ws (colon - 1) in
  if close < 0 || s.[close] <> '"' then Error "no field name before colon"
  else
    let rec find_open i =
      if i < 0 then Error "unterminated field name"
      else if s.[i] = '"' then begin
        (* count preceding backslashes *)
        let rec bs j acc = if j >= 0 && s.[j] = '\\' then bs (j - 1) (acc + 1) else acc in
        if bs (i - 1) 0 mod 2 = 0 then Ok i else find_open (i - 1)
      end
      else find_open (i - 1)
    in
    match find_open (close - 1) with
    | Ok open_q -> Ok (String.sub s (open_q + 1) (close - open_q - 1), open_q)
    | Error _ as e -> e
