type schema =
  | Null
  | Boolean
  | Long
  | Double
  | String
  | Record of string * (string * schema) list
  | Array of schema
  | Union of schema list
  | Anything

let rec of_jtype ~name (t : Jtype.Types.t) : schema =
  match t.Jtype.Types.node with
  | Jtype.Types.Bot | Jtype.Types.Null -> Null
  | Jtype.Types.Bool -> Boolean
  | Jtype.Types.Int -> Long
  | Jtype.Types.Num -> Double
  | Jtype.Types.Str -> String
  | Jtype.Types.Any -> Anything
  | Jtype.Types.Arr elem -> Array (of_jtype ~name:(name ^ "_item") elem)
  | Jtype.Types.Rec fields ->
      Record
        ( name,
          List.map
            (fun f ->
              let sub = of_jtype ~name:(name ^ "_" ^ f.Jtype.Types.fname) f.Jtype.Types.ftype in
              let sub =
                if f.Jtype.Types.optional then
                  match sub with
                  | Union branches when List.mem Null branches -> sub
                  | Union branches -> Union (Null :: branches)
                  | other -> Union [ Null; other ]
                else sub
              in
              (f.Jtype.Types.fname, sub))
            fields )
  | Jtype.Types.Union ts ->
      let branches = List.mapi (fun i t -> of_jtype ~name:(Printf.sprintf "%s_u%d" name i) t) ts in
      (* Avro unions may not contain two branches of the same unnamed kind;
         collapse duplicates *)
      let dedup =
        List.fold_left
          (fun acc b -> if List.exists (same_branch_kind b) acc then acc else b :: acc)
          [] branches
      in
      Union (List.rev dedup)

and same_branch_kind a b =
  match (a, b) with
  | Null, Null | Boolean, Boolean | Long, Long | Double, Double | String, String
  | Array _, Array _ | Anything, Anything ->
      true
  | Record (n1, _), Record (n2, _) -> String.equal n1 n2
  | _ -> false

let rec schema_to_json (s : schema) : Json.Value.t =
  match s with
  | Null -> Json.Value.String "null"
  | Boolean -> Json.Value.String "boolean"
  | Long -> Json.Value.String "long"
  | Double -> Json.Value.String "double"
  | String -> Json.Value.String "string"
  | Anything -> Json.Value.String "bytes"
  | Array elem ->
      Json.Value.Object
        [ ("type", Json.Value.String "array"); ("items", schema_to_json elem) ]
  | Union branches -> Json.Value.Array (List.map schema_to_json branches)
  | Record (name, fields) ->
      Json.Value.Object
        [ ("type", Json.Value.String "record");
          ("name", Json.Value.String name);
          ("fields",
           Json.Value.Array
             (List.map
                (fun (fname, fs) ->
                  Json.Value.Object
                    [ ("name", Json.Value.String fname); ("type", schema_to_json fs) ])
                fields)) ]

(* --- varints ------------------------------------------------------------ *)

let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag n = (n lsr 1) lxor (-(n land 1))

let write_varint buf n =
  (* n is a zigzagged (bit-pattern) quantity; lsr makes the loop total even
     if the top bit is set *)
  let rec go n =
    let b = n land 0x7f in
    let rest = n lsr 7 in
    if rest = 0 then Buffer.add_char buf (Char.chr b)
    else begin
      Buffer.add_char buf (Char.chr (b lor 0x80));
      go rest
    end
  in
  go n

let read_varint s pos =
  let n = String.length s in
  let rec go pos shift acc =
    if pos >= n then Error "truncated varint"
    else
      let b = Char.code s.[pos] in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then Ok (acc, pos + 1) else go (pos + 1) (shift + 7) acc
  in
  go pos 0 0

(* --- encoding ------------------------------------------------------------ *)

exception Enc_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Enc_error m)) fmt

let write_long buf n = write_varint buf (zigzag n)

let write_double buf f =
  let bits = Int64.bits_of_float f in
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
  done

let write_string buf s =
  write_long buf (String.length s);
  Buffer.add_string buf s

(* does a value fit a schema branch? used for union tagging *)
let rec matches (s : schema) (v : Json.Value.t) =
  match (s, v) with
  | Null, Json.Value.Null -> true
  | Boolean, Json.Value.Bool _ -> true
  | Long, Json.Value.Int _ -> true
  | Double, (Json.Value.Int _ | Json.Value.Float _) -> true
  | String, Json.Value.String _ -> true
  | Array _, Json.Value.Array _ -> true
  | Record (_, fields), Json.Value.Object obj ->
      List.for_all
        (fun (fname, fs) ->
          match List.assoc_opt fname obj with
          | Some x -> matches fs x
          | None -> (match fs with Union bs -> List.mem Null bs | _ -> false))
        fields
      && List.for_all (fun (k, _) -> List.mem_assoc k fields) obj
  | Union branches, _ -> List.exists (fun b -> matches b v) branches
  | Anything, _ -> true
  | _ -> false

let rec write buf (s : schema) (v : Json.Value.t) =
  match (s, v) with
  | Null, Json.Value.Null -> ()
  | Boolean, Json.Value.Bool b -> Buffer.add_char buf (if b then '\001' else '\000')
  | Long, Json.Value.Int n -> write_long buf n
  | Double, Json.Value.Int n -> write_double buf (float_of_int n)
  | Double, Json.Value.Float f -> write_double buf f
  | String, Json.Value.String s -> write_string buf s
  | Anything, v -> write_string buf (Json.Printer.to_string v)
  | Array elem, Json.Value.Array vs ->
      (* one block then the 0 terminator, as Avro writers commonly do *)
      if vs <> [] then begin
        write_long buf (List.length vs);
        List.iter (write buf elem) vs
      end;
      write_long buf 0
  | Record (_, fields), Json.Value.Object obj ->
      List.iter
        (fun (fname, fs) ->
          match List.assoc_opt fname obj with
          | Some x -> write buf fs x
          | None ->
              (* absent optional: encode as the null branch *)
              (match fs with
               | Union branches -> (
                   match List.mapi (fun i b -> (i, b)) branches
                         |> List.find_opt (fun (_, b) -> b = Null)
                   with
                   | Some (i, _) -> write_long buf i
                   | None -> fail "missing field %S has no null branch" fname)
               | _ -> fail "missing required field %S" fname))
        fields
  | Union branches, v -> (
      let indexed = List.mapi (fun i b -> (i, b)) branches in
      match List.find_opt (fun (_, b) -> matches b v) indexed with
      | Some (i, b) ->
          write_long buf i;
          write buf b v
      | None -> fail "no union branch matches %s" (Json.Printer.to_string v))
  | _ ->
      fail "schema/value mismatch: %s vs %s"
        (Json.Printer.to_string (schema_to_json s))
        (Json.Printer.to_string v)

let encode s v =
  let buf = Buffer.create 256 in
  match write buf s v with
  | () -> Ok (Buffer.contents buf)
  | exception Enc_error m -> Error m

(* --- decoding ------------------------------------------------------------ *)

exception Dec_error of string

let dfail fmt = Printf.ksprintf (fun m -> raise (Dec_error m)) fmt

let read_long s pos =
  match read_varint s pos with
  | Ok (n, pos) -> (unzigzag n, pos)
  | Error m -> dfail "%s" m

let read_double s pos =
  if pos + 8 > String.length s then dfail "truncated double";
  let bits = ref 0L in
  for i = 7 downto 0 do
    bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (Char.code s.[pos + i]))
  done;
  (Int64.float_of_bits !bits, pos + 8)

let read_string s pos =
  let len, pos = read_long s pos in
  if len < 0 || pos + len > String.length s then dfail "truncated string";
  (String.sub s pos len, pos + len)

let rec read (sch : schema) s pos : Json.Value.t * int =
  match sch with
  | Null -> (Json.Value.Null, pos)
  | Boolean ->
      if pos >= String.length s then dfail "truncated boolean";
      (Json.Value.Bool (s.[pos] <> '\000'), pos + 1)
  | Long ->
      let n, pos = read_long s pos in
      (Json.Value.Int n, pos)
  | Double ->
      let f, pos = read_double s pos in
      (Json.Value.Float f, pos)
  | String ->
      let str, pos = read_string s pos in
      (Json.Value.String str, pos)
  | Anything -> (
      let str, pos = read_string s pos in
      match Json.Parser.parse str with
      | Ok v -> (v, pos)
      | Error e -> dfail "bad embedded JSON: %s" (Json.Parser.string_of_error e))
  | Array elem ->
      let rec blocks acc pos =
        let count, pos = read_long s pos in
        if count = 0 then (List.rev acc, pos)
        else begin
          let acc = ref acc and pos = ref pos in
          for _ = 1 to count do
            let v, p = read elem s !pos in
            acc := v :: !acc;
            pos := p
          done;
          blocks !acc !pos
        end
      in
      let vs, pos = blocks [] pos in
      (Json.Value.Array vs, pos)
  | Record (_, fields) ->
      let obj = ref [] and p = ref pos in
      List.iter
        (fun (fname, fs) ->
          let v, p' = read fs s !p in
          obj := (fname, v) :: !obj;
          p := p')
        fields;
      (Json.Value.Object (List.rev !obj), !p)
  | Union branches ->
      let i, pos = read_long s pos in
      if i < 0 || i >= List.length branches then dfail "bad union tag %d" i;
      read (List.nth branches i) s pos

let decode sch s =
  match read sch s 0 with
  | v, _ -> Ok v
  | exception Dec_error m -> Error m

let encode_all sch vs =
  let buf = Buffer.create 4096 in
  write_long buf (List.length vs);
  match List.iter (fun v -> write buf sch v) vs with
  | () -> Ok (Buffer.contents buf)
  | exception Enc_error m -> Error m

let decode_all sch s =
  match
    let count, pos = read_long s 0 in
    let acc = ref [] and p = ref pos in
    for _ = 1 to count do
      let v, p' = read sch s !p in
      acc := v :: !acc;
      p := p'
    done;
    List.rev !acc
  with
  | vs -> Ok vs
  | exception Dec_error m -> Error m

(* --- schema resolution ---------------------------------------------------- *)

let admits_null = function
  | Null -> true
  | Union branches -> List.mem Null branches
  | _ -> false

let rec resolve_check ~writer ~reader =
  match (writer, reader) with
  | Null, Null | Boolean, Boolean | Long, Long | Double, Double | String, String
  | Anything, Anything ->
      Ok ()
  | Long, Double -> Ok () (* numeric promotion *)
  | Array w, Array r -> resolve_check ~writer:w ~reader:r
  | Record (_, wf), Record (rname, rf) ->
      let rec fields = function
        | [] ->
            (* reader-only fields must be defaultable (null-admitting) *)
            let missing =
              List.filter (fun (k, _) -> not (List.mem_assoc k wf)) rf
            in
            (match
               List.find_opt (fun (_, rs) -> not (admits_null rs)) missing
             with
             | Some (k, _) ->
                 Error
                   (Printf.sprintf
                      "reader field %S of record %S has no writer value and does not admit null"
                      k rname)
             | None -> Ok ())
        | (k, ws) :: rest -> (
            match List.assoc_opt k rf with
            | None -> fields rest (* writer-only: skipped on read *)
            | Some rs -> (
                match resolve_check ~writer:ws ~reader:rs with
                | Ok () -> fields rest
                | Error _ as e -> e))
      in
      fields wf
  | Union wb, _ ->
      (* every writer branch must be readable *)
      let rec all = function
        | [] -> Ok ()
        | b :: rest -> (
            match resolve_check ~writer:b ~reader with
            | Ok () -> all rest
            | Error _ as e -> e)
      in
      all wb
  | _, Union rb ->
      if List.exists (fun b -> resolve_check ~writer ~reader:b = Ok ()) rb then Ok ()
      else
        Error
          (Printf.sprintf "no reader union branch accepts writer type %s"
             (Json.Printer.to_string (schema_to_json writer)))
  | _ ->
      Error
        (Printf.sprintf "cannot resolve writer %s against reader %s"
           (Json.Printer.to_string (schema_to_json writer))
           (Json.Printer.to_string (schema_to_json reader)))

let resolve ~writer ~reader = resolve_check ~writer ~reader

(* Adapt a decoded writer value into the reader's shape. *)
let rec adapt ~writer ~reader (v : Json.Value.t) : Json.Value.t =
  match (writer, reader) with
  | Long, Double -> (
      match v with Json.Value.Int n -> Json.Value.Float (float_of_int n) | v -> v)
  | Array w, Array r -> (
      match v with
      | Json.Value.Array vs -> Json.Value.Array (List.map (adapt ~writer:w ~reader:r) vs)
      | v -> v)
  | Record (_, wf), Record (_, rf) -> (
      match v with
      | Json.Value.Object obj ->
          Json.Value.Object
            (List.map
               (fun (k, rs) ->
                 match (List.assoc_opt k obj, List.assoc_opt k wf) with
                 | Some x, Some ws -> (k, adapt ~writer:ws ~reader:rs x)
                 | _ -> (k, Json.Value.Null))
               rf)
      | v -> v)
  | Union wb, _ ->
      (* the decoded value carries no tag anymore; adapt through the first
         writer branch it matches *)
      (match List.find_opt (fun b -> matches b v) wb with
       | Some b -> adapt ~writer:b ~reader v
       | None -> v)
  | _, Union rb -> (
      match List.find_opt (fun b -> resolve_check ~writer ~reader:b = Ok ()) rb with
      | Some b -> adapt ~writer ~reader:b v
      | None -> v)
  | _ -> v

let decode_resolved ~writer ~reader bytes =
  match resolve ~writer ~reader with
  | Error _ as e -> e
  | Ok () -> (
      match decode writer bytes with
      | Error _ as e -> e
      | Ok v -> Ok (adapt ~writer ~reader v))
