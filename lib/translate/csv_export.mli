(** CSV rendering of normalized relations (the final step of the
    JSON → relational pipeline of {!Inference.Relational}). *)

val escape_cell : string -> string
(** RFC 4180 quoting. *)

val cell_to_string : Json.Value.t -> string
(** Scalars print bare ([null] as empty); containers as their JSON text. *)

val table_to_csv : Inference.Relational.table -> string
(** Header line + one line per row. [null] renders as a bare empty cell
    and the empty string as a quoted one ([""]), so the two survive a
    round-trip through the CSV — every other cell is
    {!cell_to_string} under {!escape_cell} quoting. *)

val result_to_csvs : Inference.Relational.result -> (string * string) list
(** [(table name, CSV text)] for every table of the normalization. *)
