let escape_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let cell_to_string (v : Json.Value.t) =
  match v with
  | Json.Value.Null -> ""
  | Json.Value.Bool b -> string_of_bool b
  | Json.Value.Int n -> string_of_int n
  | Json.Value.Float f -> Json.Number.print_float f
  | Json.Value.String s -> s
  | Json.Value.Array _ | Json.Value.Object _ -> Json.Printer.to_string v

(* An SQL-ish NULL/empty-string distinction: null is the bare empty cell,
   the empty string is explicitly quoted. Every other value renders as
   [cell_to_string] then RFC 4180 quoting — where the two used to
   collapse into the same empty cell and the export did not round-trip. *)
let render_cell (v : Json.Value.t) =
  match v with
  | Json.Value.String "" -> "\"\""
  | _ -> escape_cell (cell_to_string v)

let table_to_csv (t : Inference.Relational.table) =
  let header =
    String.concat "," (List.map escape_cell t.Inference.Relational.columns)
  in
  let lines =
    List.map
      (fun row -> String.concat "," (List.map render_cell row))
      t.Inference.Relational.rows
  in
  String.concat "\n" (header :: lines) ^ "\n"

let result_to_csvs (r : Inference.Relational.result) =
  List.map
    (fun t -> (t.Inference.Relational.table_name, table_to_csv t))
    r.Inference.Relational.tables
