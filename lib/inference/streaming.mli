(** Token-level fused inference (the streaming engine's map step).

    Mison's observation — type-aware parsers win by not building what
    downstream doesn't need — applied to parametric inference: the typing
    judgment of a document depends only on its shape, so the map step of the
    Baazizi et al. fold never needed the value tree. {!infer_tokens} folds
    the lexer's token stream directly into hash-consed {!Jtype.Types} and
    {!Jtype.Counting} nodes: string payloads are skimmed, not unescaped;
    field names are interned in a per-shard {!scratch} table; no
    intermediate {!Json.Value.t} exists.

    The contract is byte-identity with the tree engine: same types, same
    errors (position, message, kind), same [parse.*] telemetry — enforced by
    sharing the parser's own budget arithmetic and error machinery and by a
    differential QCheck oracle. Documents the walker cannot handle are
    re-parsed with the tree parser, so failure reporting is always the
    canonical one. *)

type scratch
(** Per-domain scratch state: a field-name interning table reused across the
    documents of a shard, so a wide-record corpus allocates each distinct
    key once per shard instead of once per document. Not thread-safe — one
    per domain. *)

val scratch : unit -> scratch

val infer_tokens :
  ?options:Json.Parser.options ->
  ?telemetry:Telemetry.sink ->
  ?scratch:scratch ->
  equiv:Jtype.Merge.equiv ->
  string ->
  pos:int ->
  ((Jtype.Types.t * Jtype.Counting.t) * int, Json.Parser.error) result
(** Type one document starting at byte [pos]: exactly
    [(Types.of_value v, Counting.of_value ~equiv v)] for the [v] that
    {!Json.Parser.parse_substring} would return, plus the offset one past
    the document — or exactly that parse's error. Telemetry: the parser's
    per-document [parse.*] family as emitted by [parse_substring], plus
    [stream.tokens] (tokens consumed) and [stream.scratch.reuse] (interning
    hits) on success. *)
