(** Parametric schema inference for massive JSON collections
    (Baazizi, Ben Lahmar, Colazzo, Ghelli, Sartiani — EDBT'17, VLDBJ'19).

    The algorithm is a map/reduce: {e map} types every value
    ({!Jtype.Types.of_value}), {e reduce} fuses the types with the
    equivalence-parameterized merge ({!Jtype.Merge.merge}). Because the
    merge is associative and commutative, the reduce can be evaluated in any
    tree shape; {!infer_partitioned} evaluates it as a balanced tree over
    partitions, which is exactly the shape a distributed runtime (the
    papers use Spark) produces. Experiment E3 checks shape-independence and
    measures the merge-tree speedup; [Core.Parallel] evaluates the same
    shard/reduce shape on a pool of OCaml 5 domains (experiment E14), with
    results identical to the sequential fold for any shard count. *)

val infer :
  ?telemetry:Telemetry.sink -> equiv:Jtype.Merge.equiv ->
  Json.Value.t list -> Jtype.Types.t
(** Sequential fold. [telemetry] (default {!Telemetry.nop}) records the
    span [infer], the counter [infer.merge_ops] (pairwise merges performed)
    and the histogram [infer.union_width] (top-level branch count of the
    result — see {!union_width}). *)

val union_width : Jtype.Types.t -> int
(** Top-level union branch count: 0 for [Bot], 1 for any non-union type,
    the number of branches otherwise. The "how heterogeneous is this
    collection" observability measure. *)

val infer_partitioned :
  equiv:Jtype.Merge.equiv -> partitions:int -> Json.Value.t list -> Jtype.Types.t
(** Split the collection into [partitions] chunks, infer each, then reduce
    the partial types with a balanced merge tree. Same result as {!infer}
    for any partition count. *)

val infer_counting :
  ?telemetry:Telemetry.sink -> equiv:Jtype.Merge.equiv ->
  Json.Value.t list -> Jtype.Counting.t
(** Counting variant (DBPL'17). *)

val infer_ndjson :
  equiv:Jtype.Merge.equiv -> string -> (Jtype.Types.t, Json.Parser.error) result
(** Stream over an NDJSON / concatenated-JSON text without materializing the
    collection. *)

(** {1 Quality metrics used by the experiments} *)

val precision : Jtype.Types.t -> Json.Value.t list -> float
(** Fraction of the given values inhabiting the type (1.0 = sound, which
    inference guarantees on its own input; interesting on {e held-out}
    data). *)

val conciseness : Jtype.Types.t -> int
(** Alias for {!Jtype.Types.size}. *)
