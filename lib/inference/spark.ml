type t =
  | Null_type
  | Boolean
  | Long
  | Double
  | String
  | Array of field
  | Struct of (string * field) list

and field = { typ : t; nullable : bool }

let not_null typ = { typ; nullable = false }

let rec infer_value (v : Json.Value.t) : field =
  match v with
  | Json.Value.Null -> { typ = Null_type; nullable = true }
  | Json.Value.Bool _ -> not_null Boolean
  | Json.Value.Int _ -> not_null Long
  | Json.Value.Float _ -> not_null Double
  | Json.Value.String _ -> not_null String
  | Json.Value.Array vs ->
      let elem =
        List.fold_left
          (fun acc x -> merge acc (infer_value x))
          { typ = Null_type; nullable = false }
          vs
      in
      not_null (Array elem)
  | Json.Value.Object fields ->
      let seen = Hashtbl.create 8 in
      let uniq =
        List.filter
          (fun (k, _) ->
            if Hashtbl.mem seen k then false
            else begin
              Hashtbl.add seen k ();
              true
            end)
          (List.rev fields)
      in
      let entries =
        List.sort
          (fun (a, _) (b, _) -> String.compare a b)
          (List.map (fun (k, x) -> (k, infer_value x)) uniq)
      in
      not_null (Struct entries)

and merge (a : field) (b : field) : field =
  let nullable = a.nullable || b.nullable in
  let typ =
    match (a.typ, b.typ) with
    | Null_type, t | t, Null_type -> t
    | Boolean, Boolean -> Boolean
    | Long, Long -> Long
    | (Long | Double), (Long | Double) -> Double
    | String, _ | _, String -> String (* the string fallback *)
    | Array x, Array y -> Array (merge x y)
    | Struct xs, Struct ys -> Struct (merge_struct xs ys)
    | _ -> String (* cross-kind conflict: resort to Str *)
  in
  let nullable =
    (* Null_type on either side forces nullability of the merged column *)
    nullable || a.typ = Null_type || b.typ = Null_type
  in
  { typ; nullable }

and merge_struct xs ys =
  (* both sorted; a field missing on one side becomes nullable *)
  let rec go xs ys =
    match (xs, ys) with
    | [], rest | rest, [] ->
        List.map (fun (k, f) -> (k, { f with nullable = true })) rest
    | ((kx, fx) :: xs' as xl), ((ky, fy) :: ys' as yl) ->
        let c = String.compare kx ky in
        if c = 0 then (kx, merge fx fy) :: go xs' ys'
        else if c < 0 then (kx, { fx with nullable = true }) :: go xs' yl
        else (ky, { fy with nullable = true }) :: go xl ys'
  in
  go xs ys

let infer = function
  | [] -> { typ = Null_type; nullable = true }
  | v :: vs -> List.fold_left (fun acc x -> merge acc (infer_value x)) (infer_value v) vs

(* Spark SQL identifier rules: a name that is not [A-Za-z_][A-Za-z0-9_]*
   must be backtick-quoted in DDL, with embedded backticks doubled —
   otherwise a key containing ':', ',', '<', '>' or spaces produces a
   STRUCT<...> string Spark cannot parse back. *)
let is_plain_ident s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let quote_ident k =
  if is_plain_ident k then k
  else
    let buf = Buffer.create (String.length k + 2) in
    Buffer.add_char buf '`';
    String.iter
      (fun c ->
        if c = '`' then Buffer.add_string buf "``" else Buffer.add_char buf c)
      k;
    Buffer.add_char buf '`';
    Buffer.contents buf

let rec to_ddl = function
  | Null_type -> "NULL"
  | Boolean -> "BOOLEAN"
  | Long -> "BIGINT"
  | Double -> "DOUBLE"
  | String -> "STRING"
  | Array f -> Printf.sprintf "ARRAY<%s>" (to_ddl f.typ)
  | Struct fields ->
      Printf.sprintf "STRUCT<%s>"
        (String.concat ", "
           (List.map
              (fun (k, f) -> Printf.sprintf "%s: %s" (quote_ident k) (to_ddl f.typ))
              fields))

let field_to_ddl f = to_ddl f.typ ^ if f.nullable then "" else " NOT NULL"

let rec to_jtype (f : field) : Jtype.Types.t =
  let base =
    match f.typ with
    | Null_type -> Jtype.Types.null
    | Boolean -> Jtype.Types.bool
    | Long -> Jtype.Types.int
    | Double -> Jtype.Types.num
    | String -> Jtype.Types.str
    | Array elem -> Jtype.Types.arr (to_jtype elem)
    | Struct fields ->
        Jtype.Types.rec_
          (List.map
             (fun (k, sub) ->
               (* nullable column = optional-or-null field *)
               Jtype.Types.field ~optional:sub.nullable k (to_jtype sub))
             fields)
  in
  if f.nullable && f.typ <> Null_type then
    Jtype.Types.union [ base; Jtype.Types.null ]
  else base

let rec accepts (f : field) (v : Json.Value.t) : bool =
  match v with
  | Json.Value.Null -> f.nullable
  | _ -> (
      match (f.typ, v) with
      | Boolean, Json.Value.Bool _ -> true
      | Long, Json.Value.Int _ -> true
      | Double, (Json.Value.Int _ | Json.Value.Float _) -> true
      | String, Json.Value.String _ -> true
      | Array elem, Json.Value.Array vs -> List.for_all (accepts elem) vs
      | Struct fields, Json.Value.Object obj ->
          List.for_all
            (fun (k, sub) ->
              match List.assoc_opt k obj with
              | Some x -> accepts sub x
              | None -> sub.nullable)
            fields
          && List.for_all (fun (k, _) -> List.mem_assoc k fields) obj
      | _ -> false)
