(* top-level branch count of an inferred type: how wide the collection's
   variability is after merging (1 for a homogeneous collection) *)
let union_width (t : Jtype.Types.t) =
  match t.Jtype.Types.node with
  | Jtype.Types.Union branches -> List.length branches
  | Jtype.Types.Bot -> 0
  | _ -> 1

let emit_inferred telemetry ~docs t =
  if Telemetry.is_recording telemetry then begin
    Telemetry.count telemetry "infer.merge_ops" (max 0 (docs - 1));
    Telemetry.observe telemetry "infer.union_width"
      (float_of_int (union_width t))
  end

let infer ?(telemetry = Telemetry.nop) ~equiv values =
  Telemetry.span telemetry "infer" (fun () ->
      let t =
        Jtype.Merge.merge_all ~equiv (List.map Jtype.Types.of_value values)
      in
      emit_inferred telemetry ~docs:(List.length values) t;
      t)

let split_into n xs =
  let len = List.length xs in
  if n <= 1 || len <= 1 then [ xs ]
  else begin
    let chunk = max 1 ((len + n - 1) / n) in
    let rec go acc current count = function
      | [] -> List.rev (List.rev current :: acc)
      | x :: rest ->
          if count = chunk then go (List.rev current :: acc) [ x ] 1 rest
          else go acc (x :: current) (count + 1) rest
    in
    match xs with [] -> [ [] ] | x :: rest -> go [] [ x ] 1 rest
  end

(* Balanced pairwise reduction: the shape a distributed reduce produces. *)
let rec tree_reduce f = function
  | [] -> invalid_arg "tree_reduce: empty"
  | [ x ] -> x
  | xs ->
      let rec pair = function
        | a :: b :: rest -> f a b :: pair rest
        | leftover -> leftover
      in
      tree_reduce f (pair xs)

let infer_partitioned ~equiv ~partitions values =
  match values with
  | [] -> Jtype.Types.bot
  | _ ->
      let parts = split_into partitions values in
      let partials = List.map (infer ~equiv) parts in
      (* partials are already canonical: merge directly *)
      tree_reduce (fun a b -> Jtype.Merge.merge ~equiv a b) partials

let infer_counting ?(telemetry = Telemetry.nop) ~equiv values =
  Telemetry.span telemetry "infer" (fun () ->
      let t = Jtype.Counting.infer ~equiv values in
      Telemetry.count telemetry "infer.merge_ops"
        (max 0 (List.length values - 1));
      t)

let infer_ndjson ~equiv src =
  Json.Stream.fold_documents src ~init:Jtype.Types.bot ~f:(fun acc v ->
      (* acc stays canonical across the fold; only the new document's type
         needs simplification, which merge performs *)
      Jtype.Merge.merge ~equiv acc (Jtype.Types.of_value v))

let precision t values =
  match values with
  | [] -> 1.0
  | _ ->
      let hits =
        List.length (List.filter (fun v -> Jtype.Typecheck.member v t) values)
      in
      float_of_int hits /. float_of_int (List.length values)

let conciseness = Jtype.Types.size
