(* Token-level fused inference: fold the lexer's token stream directly into
   hash-consed types, producing exactly what [Types.of_value] and
   [Counting.of_value] would produce on the tree that
   [Parser.parse_substring] would build — without building it.

   The walker is a line-by-line mirror of [Parser.parse_value]: same node
   and byte accounting (spent at the same token positions), same depth
   checks (including the peeked-token ordering at the head of a non-empty
   array), same grammar errors. It runs on [Lexer.skim] tokens — immediate
   constants, no per-token tuple/position/number allocation — and interns
   field names straight from their source spans. When the walker fails for
   any reason, the document is re-parsed with the tree parser so the
   reported error — and its telemetry — is the canonical one; if that
   re-parse unexpectedly succeeds, its value is typed the classic way.
   Either way the observable behavior is byte-identical to the tree engine,
   which is what the differential oracle pins. *)

module L = Json.Lexer
module P = Json.Parser
module T = Jtype.Types
module C = Jtype.Counting

(* Open-addressing intern table keyed by the *contents* bytes of a field
   name. Escape-free names are probed directly from their source span — no
   per-occurrence allocation; names with escapes are materialized first and
   probed by the same content hash, so both spellings of a key intern to
   the same string instance. That physical uniqueness is what lets the
   record close path detect duplicate keys with pointer comparisons. *)

let sentinel = String.make 1 '\000' (* slot emptiness: compared with ==, never = *)

type scratch = {
  mutable slots : string array;
  mutable count : int;
  mutable reuse : int;
}

let make_scratch () = { slots = Array.make 128 sentinel; count = 0; reuse = 0 }
let scratch = make_scratch

(* FNV-1a over a byte span, masked positive. *)
let content_hash s i stop =
  let h = ref 0x811c9dc5 in
  for k = i to stop - 1 do
    h := (!h lxor Char.code (String.unsafe_get s k)) * 0x01000193 land max_int
  done;
  !h

let span_matches src i stop s =
  String.length s = stop - i
  && (let rec eq k =
        k >= String.length s
        || (String.unsafe_get s k = String.unsafe_get src (i + k) && eq (k + 1))
      in
      eq 0)

let rec add_absent sc s =
  let mask = Array.length sc.slots - 1 in
  let h = content_hash s 0 (String.length s) in
  let rec probe k =
    let j = (h + k) land mask in
    if sc.slots.(j) == sentinel then begin
      sc.slots.(j) <- s;
      sc.count <- sc.count + 1;
      if 2 * sc.count > Array.length sc.slots then rehash sc
    end
    else probe (k + 1)
  in
  probe 0

and rehash sc =
  let old = sc.slots in
  sc.slots <- Array.make (2 * Array.length old) sentinel;
  sc.count <- 0;
  Array.iter (fun s -> if s != sentinel then add_absent sc s) old

let intern_span sc src i stop =
  let mask = Array.length sc.slots - 1 in
  let h = content_hash src i stop in
  let rec probe k =
    let j = (h + k) land mask in
    let slot = Array.unsafe_get sc.slots j in
    if slot == sentinel then begin
      let s = String.sub src i (stop - i) in
      sc.slots.(j) <- s;
      sc.count <- sc.count + 1;
      if 2 * sc.count > Array.length sc.slots then rehash sc;
      s
    end
    else if span_matches src i stop slot then begin
      sc.reuse <- sc.reuse + 1;
      slot
    end
    else probe (k + 1)
  in
  probe 0

let intern_string sc s =
  let mask = Array.length sc.slots - 1 in
  let h = content_hash s 0 (String.length s) in
  let rec probe k =
    let j = (h + k) land mask in
    let slot = Array.unsafe_get sc.slots j in
    if slot == sentinel then begin
      sc.slots.(j) <- s;
      sc.count <- sc.count + 1;
      if 2 * sc.count > Array.length sc.slots then rehash sc;
      s
    end
    else if String.equal slot s then begin
      sc.reuse <- sc.reuse + 1;
      slot
    end
    else probe (k + 1)
  in
  probe 0

let sort_cfields =
  List.sort (fun a b -> String.compare a.C.fname b.C.fname)

(* Resolve the duplicate-key policy, then apply [of_value]'s own last-wins
   dedup (which matters only under [Keep_all]). The result order is
   irrelevant: both record constructors sort by field name. *)
let resolve_fields dup_keys fields_rev close_pos =
  let resolved = P.apply_dup_policy dup_keys fields_rev close_pos in
  let seen = Hashtbl.create 8 in
  List.filter
    (fun (k, _) ->
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    (List.rev resolved)

(* Keys are interned, so physical equality is key equality. Small records
   take the quadratic pointer scan; wide ones a sort plus adjacency check
   (the comparator's pointer shortcut makes equal keys free to confirm). *)
let has_dup_keys acc =
  let rec mem_key k = function
    | [] -> false
    | (k', _) :: rest -> k' == k || mem_key k rest
  in
  let rec small = function
    | [] -> false
    | (k, _) :: rest -> mem_key k rest || small rest
  in
  let rec len n = function [] -> n | _ :: r -> len (n + 1) r in
  if len 0 acc <= 12 then small acc
  else
    let sorted =
      List.sort
        (fun (a, _) (b, _) -> if a == b then 0 else String.compare a b)
        acc
    in
    let rec adjacent_dup = function
      | (a, _) :: ((b, _) :: _ as rest) -> a == b || adjacent_dup rest
      | _ -> false
    in
    adjacent_dup sorted

(* Scalar results are identical for every occurrence — the type side is
   hash-consed already, and a count-1 leaf is immutable — so one tuple per
   kind serves the whole process instead of one per scalar token. *)
let typed_null = (T.null, C.CNull 1)
let typed_bool = (T.bool, C.CBool 1)
let typed_int = (T.int, C.CInt 1)
let typed_float = (T.num, C.CNum 1)
let typed_str = (T.str, C.CStr 1)

let infer_tokens ?(options = P.default_options) ?(telemetry = Telemetry.nop)
    ?scratch ~equiv src ~pos =
  let lx = L.create ~pos ?max_string_bytes:options.P.max_string_bytes src in
  let tokens = ref 0 in
  let sc = match scratch with Some sc -> sc | None -> make_scratch () in
  let reuse0 = sc.reuse in
  let max_depth = options.P.max_depth in
  let max_nodes = options.P.max_nodes in
  let max_doc_bytes = options.P.max_doc_bytes in
  let intern () =
    let i, stop, escaped = L.last_string_span lx in
    if escaped then intern_string sc (L.string_of_last lx)
    else intern_span sc src i stop
  in
  let walk () =
    let nodes = ref 0 in
    let spend_node () =
      incr nodes;
      match max_nodes with
      | Some limit when !nodes > limit ->
          P.fail ~kind:(P.Budget_exceeded P.Nodes_exceeded) (L.tok_pos lx)
            (Printf.sprintf "document exceeds %d nodes" limit)
      | _ -> ()
    in
    (* Byte budget against the last token's start — positions are built
       lazily, only if the check fails. *)
    let check_bytes_tok () =
      match max_doc_bytes with
      | Some limit when L.tok_start lx - pos > limit ->
          P.fail ~kind:(P.Budget_exceeded P.Bytes_exceeded) (L.tok_pos lx)
            (Printf.sprintf "document exceeds %d bytes" limit)
      | _ -> ()
    in
    let check_bytes_end () =
      match max_doc_bytes with
      | Some limit when L.offset lx - pos > limit ->
          P.fail ~kind:(P.Budget_exceeded P.Bytes_exceeded) (L.position lx)
            (Printf.sprintf "document exceeds %d bytes" limit)
      | _ -> ()
    in
    let next_skim () = incr tokens; L.skim lx in
    let rec value depth =
      if depth > max_depth then
        P.fail ~kind:(P.Budget_exceeded P.Depth_exceeded) (L.position lx)
          "maximum nesting depth exceeded";
      let tok = next_skim () in
      spend_node ();
      check_bytes_tok ();
      value_tok tok depth
    and value_tok tok depth =
      match tok with
      | L.S_null -> typed_null
      | L.S_true | L.S_false -> typed_bool
      | L.S_int -> typed_int
      | L.S_float -> typed_float
      | L.S_string -> typed_str
      | L.S_lbracket -> array depth
      | L.S_lbrace -> object_ depth
      | (L.S_rbrace | L.S_rbracket | L.S_colon | L.S_comma | L.S_eof) as t ->
          P.fail (L.tok_pos lx)
            (Printf.sprintf "expected a value, got %s" (L.skim_name t))
    and array depth =
      (* [parse_value] peeks for ']', lexing the first element's token
         before its depth check; reading the token first reproduces that
         failure order exactly. *)
      let tok = next_skim () in
      match tok with
      | L.S_rbracket -> (T.arr (T.union []), C.CArr (1, C.CBot))
      | _ ->
          if depth + 1 > max_depth then
            P.fail ~kind:(P.Budget_exceeded P.Depth_exceeded) (L.position lx)
              "maximum nesting depth exceeded";
          spend_node ();
          check_bytes_tok ();
          let t0, c0 = value_tok tok (depth + 1) in
          elements depth [ t0 ] (C.merge ~equiv C.CBot c0)
    and elements depth ttys cacc =
      let tok = next_skim () in
      match tok with
      | L.S_comma ->
          let t, c = value (depth + 1) in
          elements depth (t :: ttys) (C.merge ~equiv cacc c)
      | L.S_rbracket -> (T.arr (T.union (List.rev ttys)), C.CArr (1, cacc))
      | t ->
          P.fail (L.tok_pos lx)
            (Printf.sprintf "expected ',' or ']', got %s" (L.skim_name t))
    and object_ depth =
      let tok = next_skim () in
      match tok with
      | L.S_rbrace -> (T.rec_ [], C.CRec (1, []))
      | _ -> fields depth [] tok
    and fields depth acc tok =
      match tok with
      | L.S_string -> (
          let key = intern () in
          let tok = next_skim () in
          match tok with
          | L.S_colon -> (
              let t, c = value (depth + 1) in
              let tok = next_skim () in
              match tok with
              | L.S_comma ->
                  let tok = next_skim () in
                  fields depth ((key, (t, c)) :: acc) tok
              | L.S_rbrace -> close_record ((key, (t, c)) :: acc)
              | t ->
                  P.fail (L.tok_pos lx)
                    (Printf.sprintf "expected ',' or '}', got %s"
                       (L.skim_name t)))
          | t ->
              P.fail (L.tok_pos lx)
                (Printf.sprintf "expected ':', got %s" (L.skim_name t)))
      | t ->
          P.fail (L.tok_pos lx)
            (Printf.sprintf "expected a field name, got %s" (L.skim_name t))
    and close_record acc =
      (* No-dup fast path: [apply_dup_policy] and the last-wins filter are
         both identity (modulo order, which the constructors sort away)
         when every key is distinct — the overwhelmingly common case. *)
      let uniq =
        if has_dup_keys acc then
          resolve_fields options.P.dup_keys acc (L.tok_pos lx)
        else List.rev acc
      in
      ( T.rec_ (List.map (fun (k, (t, _)) -> T.field k t) uniq),
        C.CRec
          ( 1,
            sort_cfields
              (List.map
                 (fun (k, (_, c)) -> { C.fname = k; occurs = 1; ftype = c })
                 uniq) ) )
    in
    let typed = value 0 in
    check_bytes_end ();
    (typed, !nodes)
  in
  match P.run lx walk with
  | Ok (typed, nodes) ->
      let stop = L.offset lx in
      P.emit_doc telemetry options ~bytes:(stop - pos) ~nodes;
      if Telemetry.is_recording telemetry then begin
        Telemetry.count telemetry "stream.tokens" !tokens;
        Telemetry.count telemetry "stream.scratch.reuse" (sc.reuse - reuse0)
      end;
      Ok (typed, stop)
  | Error _ -> (
      (* Canonical fallback: let the tree parser produce the authoritative
         error (and its telemetry); type its value classically in the
         unexpected case where it succeeds. *)
      match P.parse_substring ~options ~telemetry src ~pos with
      | Ok (v, stop) -> Ok ((T.of_value v, C.of_value ~equiv v), stop)
      | Error e -> Error e)
