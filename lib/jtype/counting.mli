(** Counting types (Baazizi et al., DBPL'17): the type algebra annotated
    with cardinalities.

    Every node records how many values of the collection it described;
    record fields additionally record in how many of those records they
    occurred, so optionality becomes quantitative ("present in 93% of
    tweets") instead of a bare [?]. Counting merge is the same fusion as
    {!Merge.merge} with counts added pointwise, so it inherits
    associativity/commutativity — the distribution property E3 tests. *)

type t =
  | CNull of int
  | CBool of int
  | CInt of int
  | CNum of int
  | CStr of int
  | CArr of int * t  (** count of arrays, element type with element counts *)
  | CRec of int * cfield list  (** count of records; fields sorted by name *)
  | CUnion of t list  (** branches with pairwise-unfusable types *)
  | CAny of int
  | CBot

and cfield = { fname : string; occurs : int; ftype : t }
(** [occurs] ≤ the enclosing record count; strict inequality = optional. *)

val count : t -> int
(** Total number of values described (sum over union branches). *)

val of_value : equiv:Merge.equiv -> Json.Value.t -> t
(** Counting typing of one value: every count is 1. The equivalence governs
    how the element types of one array fuse, exactly as in {!Merge}. *)

val merge : equiv:Merge.equiv -> t -> t -> t
val merge_all : equiv:Merge.equiv -> t list -> t
val infer : equiv:Merge.equiv -> Json.Value.t list -> t

val erase : t -> Types.t
(** Forget counts; field optional iff [occurs < record count]. *)

val to_string : t -> string
(** Concrete syntax with counts, e.g. [{a(980): Int(980)}(1000)]. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Json.Value.t
(** Machine-readable rendering (used by the CLI): every node carries its
    count, records list their fields with occurrence counts. *)

val field_probability : t -> string list -> float option
(** [field_probability t path] is the empirical probability that the
    record field at [path] (a chain of field names from the root) occurs,
    e.g. [["user"; "verified"]]. [None] if the path never occurs. *)

val of_json : Json.Value.t -> (t, string) result
(** Inverse of {!to_json} ([of_json (to_json t) = Ok t]); lets
    {!Core.Checkpoint} journal and resume partial counting merges. *)
