type t =
  | CNull of int
  | CBool of int
  | CInt of int
  | CNum of int
  | CStr of int
  | CArr of int * t
  | CRec of int * cfield list
  | CUnion of t list
  | CAny of int
  | CBot

and cfield = { fname : string; occurs : int; ftype : t }

let rec count = function
  | CNull n | CBool n | CInt n | CNum n | CStr n | CArr (n, _) | CRec (n, _)
  | CAny n ->
      n
  | CUnion ts -> List.fold_left (fun acc t -> acc + count t) 0 ts
  | CBot -> 0

let sort_fields = List.sort (fun a b -> String.compare a.fname b.fname)

let rec of_value ~equiv (v : Json.Value.t) : t =
  match v with
  | Json.Value.Null -> CNull 1
  | Json.Value.Bool _ -> CBool 1
  | Json.Value.Int _ -> CInt 1
  | Json.Value.Float _ -> CNum 1
  | Json.Value.String _ -> CStr 1
  | Json.Value.Array vs ->
      (* element counts accumulate across all elements of this one array *)
      let elem =
        List.fold_left (fun acc x -> merge ~equiv acc (of_value ~equiv x)) CBot vs
      in
      CArr (1, elem)
  | Json.Value.Object fields ->
      let seen = Hashtbl.create 8 in
      let uniq =
        List.filter
          (fun (k, _) ->
            if Hashtbl.mem seen k then false
            else begin
              Hashtbl.add seen k ();
              true
            end)
          (List.rev fields)
      in
      CRec
        (1,
         sort_fields
           (List.map (fun (k, x) -> { fname = k; occurs = 1; ftype = of_value ~equiv x }) uniq))

and merge_fields ~equiv total_other_absent xs ys =
  (* Both sorted. A field absent on one side keeps its count (it just
     becomes optional relative to the merged record count). *)
  ignore total_other_absent;
  let rec go xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> rest
    | (x :: xs' as xl), (y :: ys' as yl) ->
        let c = String.compare x.fname y.fname in
        if c = 0 then
          { fname = x.fname;
            occurs = x.occurs + y.occurs;
            ftype = merge ~equiv x.ftype y.ftype }
          :: go xs' ys'
        else if c < 0 then x :: go xs' yl
        else y :: go xl ys'
  in
  go xs ys

and same_labels xs ys =
  List.length xs = List.length ys
  && List.for_all2 (fun x y -> String.equal x.fname y.fname) xs ys

and fuse ~equiv a b : t option =
  match (a, b) with
  | CAny n, other | other, CAny n -> Some (CAny (n + count other))
  | CNull n, CNull m -> Some (CNull (n + m))
  | CBool n, CBool m -> Some (CBool (n + m))
  | CInt n, CInt m -> Some (CInt (n + m))
  | CStr n, CStr m -> Some (CStr (n + m))
  | (CNum n | CInt n), (CNum m | CInt m) -> Some (CNum (n + m))
  | CArr (n, x), CArr (m, y) -> Some (CArr (n + m, merge ~equiv x y))
  | CRec (n, xs), CRec (m, ys) -> (
      match equiv with
      | Merge.Kind -> Some (CRec (n + m, merge_fields ~equiv 0 xs ys))
      | Merge.Label ->
          if same_labels xs ys then Some (CRec (n + m, merge_fields ~equiv 0 xs ys))
          else None)
  | _ -> None

and insert ~equiv branch acc =
  let rec go seen = function
    | [] -> List.rev (branch :: seen)
    | candidate :: rest -> (
        match fuse ~equiv candidate branch with
        | Some fused -> insert ~equiv fused (List.rev_append seen rest)
        | None -> go (candidate :: seen) rest)
  in
  go [] acc

and merge ~equiv a b =
  let branches = function CUnion ts -> ts | CBot -> [] | t -> [ t ] in
  match List.fold_left (fun acc t -> insert ~equiv t acc) [] (branches a @ branches b) with
  | [] -> CBot
  | [ t ] -> t
  | ts -> CUnion (List.sort Stdlib.compare ts)

let merge_all ~equiv = function
  | [] -> CBot
  | t :: ts -> List.fold_left (merge ~equiv) t ts

let infer ~equiv values = merge_all ~equiv (List.map (of_value ~equiv) values)

let rec erase (t : t) : Types.t =
  match t with
  | CBot -> Types.bot
  | CNull _ -> Types.null
  | CBool _ -> Types.bool
  | CInt _ -> Types.int
  | CNum _ -> Types.num
  | CStr _ -> Types.str
  | CAny _ -> Types.any
  | CArr (_, elem) -> Types.arr (erase elem)
  | CRec (n, fields) ->
      Types.rec_
        (List.map
           (fun f -> Types.field ~optional:(f.occurs < n) f.fname (erase f.ftype))
           fields)
  | CUnion ts -> Types.union (List.map erase ts)

let rec to_string (t : t) =
  match t with
  | CBot -> "Bot"
  | CNull n -> Printf.sprintf "Null(%d)" n
  | CBool n -> Printf.sprintf "Bool(%d)" n
  | CInt n -> Printf.sprintf "Int(%d)" n
  | CNum n -> Printf.sprintf "Num(%d)" n
  | CStr n -> Printf.sprintf "Str(%d)" n
  | CAny n -> Printf.sprintf "Any(%d)" n
  | CArr (n, elem) -> Printf.sprintf "[%s](%d)" (to_string elem) n
  | CRec (n, fields) ->
      let f fld = Printf.sprintf "%s(%d): %s" fld.fname fld.occurs (to_string fld.ftype) in
      Printf.sprintf "{%s}(%d)" (String.concat ", " (List.map f fields)) n
  | CUnion ts -> String.concat " + " (List.map to_string ts)

let pp ppf t = Format.pp_print_string ppf (to_string t)

let field_probability t path =
  (* Walk the chain of record fields, descending through union branches by
     picking the record branch. *)
  let rec records = function
    | CRec (n, fields) -> [ (n, fields) ]
    | CUnion ts -> List.concat_map records ts
    | _ -> []
  in
  let rec go t = function
    | [] -> None
    | [ last ] ->
        let hits =
          List.concat_map
            (fun (n, fields) ->
              List.filter_map
                (fun f -> if String.equal f.fname last then Some (f.occurs, n) else None)
                fields)
            (records t)
        in
        (match hits with
         | [] -> None
         | _ ->
             let occ = List.fold_left (fun a (o, _) -> a + o) 0 hits in
             let tot = List.fold_left (fun a (_, n) -> a + n) 0 hits in
             if tot = 0 then None else Some (float_of_int occ /. float_of_int tot))
    | name :: rest ->
        let children =
          List.concat_map
            (fun (_, fields) ->
              List.filter_map
                (fun f -> if String.equal f.fname name then Some f.ftype else None)
                fields)
            (records t)
        in
        (match children with
         | [] -> None
         | [ child ] -> go child rest
         | many -> go (CUnion many) rest)
  in
  go t path

let rec to_json (t : t) : Json.Value.t =
  let tagged kind n extra =
    Json.Value.Object
      ([ ("kind", Json.Value.String kind); ("count", Json.Value.Int n) ] @ extra)
  in
  match t with
  | CBot -> Json.Value.Object [ ("kind", Json.Value.String "bottom") ]
  | CNull n -> tagged "null" n []
  | CBool n -> tagged "boolean" n []
  | CInt n -> tagged "integer" n []
  | CNum n -> tagged "number" n []
  | CStr n -> tagged "string" n []
  | CAny n -> tagged "any" n []
  | CArr (n, elem) -> tagged "array" n [ ("items", to_json elem) ]
  | CRec (n, fields) ->
      tagged "record" n
        [ ("fields",
           Json.Value.Object
             (List.map
                (fun f ->
                  ( f.fname,
                    Json.Value.Object
                      [ ("occurs", Json.Value.Int f.occurs); ("type", to_json f.ftype) ] ))
                fields)) ]
  | CUnion ts ->
      Json.Value.Object
        [ ("kind", Json.Value.String "union");
          ("branches", Json.Value.Array (List.map to_json ts)) ]

(* Inverse of [to_json]; the encoding is exact, so checkpoint journals can
   park a partial counting merge on disk and resume it without re-counting.
   Shapes [to_json] never emits are rejected, not repaired. *)
let of_json (v : Json.Value.t) : (t, string) result =
  let ( let* ) = Result.bind in
  let member name = function
    | Json.Value.Object fields -> (
        match List.assoc_opt name fields with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "counting json: missing %S" name))
    | _ -> Error "counting json: expected an object"
  in
  let int_of = function
    | Json.Value.Int n -> Ok n
    | _ -> Error "counting json: expected an integer"
  in
  let count_of v =
    let* c = member "count" v in
    int_of c
  in
  let rec go v =
    let* tag = member "kind" v in
    match tag with
    | Json.Value.String "bottom" -> Ok CBot
    | Json.Value.String "null" ->
        let* n = count_of v in
        Ok (CNull n)
    | Json.Value.String "boolean" ->
        let* n = count_of v in
        Ok (CBool n)
    | Json.Value.String "integer" ->
        let* n = count_of v in
        Ok (CInt n)
    | Json.Value.String "number" ->
        let* n = count_of v in
        Ok (CNum n)
    | Json.Value.String "string" ->
        let* n = count_of v in
        Ok (CStr n)
    | Json.Value.String "any" ->
        let* n = count_of v in
        Ok (CAny n)
    | Json.Value.String "array" ->
        let* n = count_of v in
        let* items = member "items" v in
        let* elem = go items in
        Ok (CArr (n, elem))
    | Json.Value.String "record" -> (
        let* n = count_of v in
        let* fields = member "fields" v in
        match fields with
        | Json.Value.Object fs ->
            let* cfields =
              List.fold_left
                (fun acc (fname, fv) ->
                  let* acc = acc in
                  let* occurs = member "occurs" fv in
                  let* occurs = int_of occurs in
                  let* tv = member "type" fv in
                  let* ftype = go tv in
                  Ok ({ fname; occurs; ftype } :: acc))
                (Ok []) fs
            in
            Ok (CRec (n, List.rev cfields))
        | _ -> Error "counting json: record fields must be an object")
    | Json.Value.String "union" -> (
        let* branches = member "branches" v in
        match branches with
        | Json.Value.Array bs ->
            let* ts =
              List.fold_left
                (fun acc b ->
                  let* acc = acc in
                  let* t = go b in
                  Ok (t :: acc))
                (Ok []) bs
            in
            Ok (CUnion (List.rev ts))
        | _ -> Error "counting json: union branches must be an array")
    | Json.Value.String other -> Error ("counting json: unknown kind " ^ other)
    | _ -> Error "counting json: kind must be a string"
  in
  go v
