(** The fusion operator ⊕ of parametric schema inference.

    Merging is parameterized by an equivalence on types that decides which
    union branches collapse (Baazizi et al., VLDBJ'19):

    - {b Kind equivalence} ([K]): any two types of the same kind fuse. All
      record types collapse into one record whose fields are merged
      field-wise (a field missing on one side becomes optional); all array
      types collapse element-wise. Produces maximally concise, least precise
      types.
    - {b Label equivalence} ([L]): two record types fuse only when they have
      exactly the same set of (mandatory and optional) field names;
      otherwise both stay as separate union branches. Captures field
      correlations that kind equivalence loses.

    Both parameters yield an associative, commutative, idempotent merge —
    the property that makes map/reduce inference deterministic regardless of
    partitioning (exercised by experiment E3).

    {b Memoized fusion.} On top of the hash-consed kernel ({!Types}), the
    operator is memoized per domain: [merge_canonical] and the composite
    [fuse] cases on commutatively normalized [(equiv, min id, max id)]
    keys, and [simplify] on single node ids. Results are structurally
    determined, so memoization cannot perturb the byte-identical
    sequential-vs-sharded guarantee; cache hit/miss/clear counts flow
    into [kernel.*] telemetry counters (see {!Kernel}). Experiment E17
    measures the effect. *)

type equiv = Kind | Label

val equiv_to_string : equiv -> string

val merge : equiv:equiv -> Types.t -> Types.t -> Types.t
(** Fuse two types. *)

val merge_all : equiv:equiv -> Types.t list -> Types.t
(** Left fold of {!merge} over the list ([Bot] for the empty list). *)

val simplify : equiv:equiv -> Types.t -> Types.t
(** Re-canonicalize a type bottom-up, collapsing union branches that the
    equivalence identifies. [merge] outputs are already simplified; use this
    on types built by other means (e.g. {!Types.of_value} unions). *)

(** {1 Memo-cache control} *)

val set_memoize : bool -> unit
(** Globally enable/disable the fusion memo caches (default: enabled).
    Disabling only changes cost, never results — useful for memory-capped
    runs and for baseline measurements (bench E17, [jsontool infer
    --merge-cache=off]). *)

val memoize_enabled : unit -> bool

val cache_size : unit -> int
(** Number of live memo entries in the {e calling domain}'s caches. *)

val clear_caches : unit -> unit
(** Drop the calling domain's memo caches (cold-start measurement aid).
    Never required for correctness. *)
