let capitalize s =
  if s = "" then s
  else String.make 1 (Char.uppercase_ascii s.[0]) ^ String.sub s 1 (String.length s - 1)

(* Split a union into (nullable, remaining branches): Swift expresses
   [T + Null] as [T?]. *)
let split_null (ts : Types.t list) =
  let nulls, rest =
    List.partition (fun t -> match t.Types.node with Types.Null -> true | _ -> false) ts
  in
  (nulls <> [], rest)

let rec type_expr (t : Types.t) =
  match t.Types.node with
  | Types.Bot -> "Never"
  | Types.Null -> "NSNull"
  | Types.Bool -> "Bool"
  | Types.Int -> "Int"
  | Types.Num -> "Double"
  | Types.Str -> "String"
  | Types.Any -> "AnyCodable"
  | Types.Arr elem -> "[" ^ type_expr elem ^ "]"
  | Types.Rec _ -> "Record"  (* placeholder; [declaration] names these *)
  | Types.Union ts -> (
      let nullable, rest = split_null ts in
      match rest with
      | [ t ] when nullable -> type_expr t ^ "?"
      | _ -> "Union" (* placeholder; [declaration] names these *))

let case_name (t : Types.t) =
  match t.Types.node with
  | Types.Bool -> "bool"
  | Types.Int -> "int"
  | Types.Num -> "double"
  | Types.Str -> "string"
  | Types.Null -> "null"
  | Types.Arr _ -> "array"
  | Types.Rec _ -> "object"
  | Types.Any -> "any"
  | Types.Bot -> "never"
  | Types.Union _ -> "union"

let indent n s =
  let pad = String.make n ' ' in
  String.concat "\n"
    (List.map (fun line -> if line = "" then line else pad ^ line)
       (String.split_on_char '\n' s))

(* Emit declarations for a type, returning (swift type expression, nested
   declaration blocks in dependency order). *)
let rec render name (t : Types.t) : string * string list =
  match t.Types.node with
  | Types.Rec fields ->
      let members, nested =
        List.fold_left
          (fun (members, nested) (f : Types.field) ->
            let field_type_name = capitalize f.Types.fname in
            let expr, decls = render field_type_name f.Types.ftype in
            let expr = if f.Types.optional then expr ^ "?" else expr in
            ( Printf.sprintf "let %s: %s" f.Types.fname expr :: members,
              nested @ decls ))
          ([], []) fields
      in
      let body =
        String.concat "\n"
          (List.map (indent 4) (List.map Fun.id nested)
          @ List.rev_map (fun m -> "    " ^ m) members)
      in
      let decl = Printf.sprintf "struct %s: Codable {\n%s\n}" name body in
      (name, [ decl ])
  | Types.Union ts -> (
      let nullable, rest = split_null ts in
      match rest with
      | [ inner ] when nullable ->
          let expr, decls = render name inner in
          (expr ^ "?", decls)
      | _ ->
          let cases, nested =
            List.fold_left
              (fun (cases, nested) branch ->
                let cname = case_name branch in
                let expr, decls = render (name ^ capitalize cname) branch in
                ( Printf.sprintf "case %s(%s)" cname expr :: cases,
                  nested @ decls ))
              ([], []) rest
          in
          let cases = List.rev cases in
          let decode_attempts =
            List.map
              (fun branch ->
                let cname = case_name branch in
                let expr, _ = render (name ^ capitalize cname) branch in
                Printf.sprintf
                  "if let v = try? container.decode(%s.self) { self = .%s(v); return }"
                  expr cname)
              rest
          in
          let body =
            String.concat "\n"
              (List.map (indent 4) nested
              @ List.map (fun c -> "    " ^ c) cases
              @ [ "    init(from decoder: Decoder) throws {";
                  "        let container = try decoder.singleValueContainer()" ]
              @ List.map (fun a -> "        " ^ a) decode_attempts
              @ [ "        throw DecodingError.typeMismatch(";
                  Printf.sprintf "            %s.self," name;
                  "            .init(codingPath: decoder.codingPath, debugDescription: \"no case matched\"))";
                  "    }" ])
          in
          let decl = Printf.sprintf "enum %s: Codable {\n%s\n}" name body in
          let suffix = if nullable then "?" else "" in
          (name ^ suffix, [ decl ]))
  | Types.Arr elem ->
      let expr, decls = render (name ^ "Element") elem in
      ("[" ^ expr ^ "]", decls)
  | _ -> (type_expr t, [])

let declaration ~name t =
  let root = capitalize name in
  let expr, decls = render root t in
  (* When the rendered expression is exactly the root declaration's name,
     the declaration itself is the deliverable; otherwise alias it. *)
  if String.equal expr root then String.concat "\n\n" decls
  else
    String.concat "\n\n" (decls @ [ Printf.sprintf "typealias %s = %s" root expr ])
