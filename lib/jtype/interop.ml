let rec to_schema (t : Types.t) : Jsonschema.Schema.t =
  let open Jsonschema.Schema in
  match t.Types.node with
  | Types.Any -> Bool_schema true
  | Types.Bot -> Bool_schema false
  | Types.Null -> Schema { empty with types = Some [ `Null ] }
  | Types.Bool -> Schema { empty with types = Some [ `Boolean ] }
  | Types.Int -> Schema { empty with types = Some [ `Integer ] }
  | Types.Num -> Schema { empty with types = Some [ `Number ] }
  | Types.Str -> Schema { empty with types = Some [ `String ] }
  | Types.Arr elem ->
      Schema
        { empty with
          types = Some [ `Array ];
          items = (match elem.Types.node with Types.Bot -> None | _ -> Some (Items_one (to_schema elem)));
        }
  | Types.Rec fields ->
      Schema
        { empty with
          types = Some [ `Object ];
          properties =
            List.map (fun f -> (f.Types.fname, to_schema f.Types.ftype)) fields;
          required =
            List.filter_map
              (fun f -> if f.Types.optional then None else Some f.Types.fname)
              fields;
          additional_properties = Some (Bool_schema false);
        }
  | Types.Union ts ->
      Schema { empty with any_of = List.map to_schema ts }

let to_schema_json t = Jsonschema.Print.to_json (to_schema t)

let rec of_schema_in ~definitions ~seen (s : Jsonschema.Schema.t) : Types.t =
  let open Jsonschema.Schema in
  match s with
  | Bool_schema true -> Types.any
  | Bool_schema false -> Types.bot
  | Schema n -> (
      match n.ref_ with
      | Some target when not (List.mem target seen) -> (
          (* only "#/definitions/<name>" refs are resolved *)
          match String.split_on_char '/' target with
          | [ "#"; "definitions"; name ] -> (
              match List.assoc_opt name definitions with
              | Some sub -> of_schema_in ~definitions ~seen:(target :: seen) sub
              | None -> Types.any)
          | _ -> Types.any)
      | Some _ -> Types.any (* cyclic: cut with Any *)
      | None ->
          if n.any_of <> [] then
            Types.union (List.map (of_schema_in ~definitions ~seen) n.any_of)
          else if n.one_of <> [] then
            Types.union (List.map (of_schema_in ~definitions ~seen) n.one_of)
          else if n.all_of <> [] then
            (* approximate a conjunction by its first conjunct *)
            of_schema_in ~definitions ~seen (List.hd n.all_of)
          else
            match n.types with
            | None -> infer_untyped ~definitions ~seen n
            | Some ts ->
                Types.union (List.map (of_schema_typed ~definitions ~seen n) ts))

and infer_untyped ~definitions ~seen n =
  let open Jsonschema.Schema in
  if n.properties <> [] || n.required <> [] then
    of_schema_typed ~definitions ~seen n `Object
  else if n.items <> None then of_schema_typed ~definitions ~seen n `Array
  else if n.minimum <> None || n.maximum <> None || n.multiple_of <> None then
    Types.num
  else if n.pattern <> None || n.min_length <> None || n.max_length <> None then
    Types.str
  else
    match (n.const, n.enum) with
    | Some c, _ -> Types.of_value c
    | None, Some vs -> Types.union (List.map Types.of_value vs)
    | None, None -> Types.any

and of_schema_typed ~definitions ~seen n t =
  let open Jsonschema.Schema in
  match t with
  | `Null -> Types.null
  | `Boolean -> Types.bool
  | `Integer -> Types.int
  | `Number -> Types.num
  | `String -> Types.str
  | `Array ->
      let elem =
        match n.items with
        | Some (Items_one s) -> of_schema_in ~definitions ~seen s
        | Some (Items_many ss) ->
            Types.union (List.map (of_schema_in ~definitions ~seen) ss)
        | None -> Types.any
      in
      Types.arr elem
  | `Object ->
      if n.properties = [] && n.pattern_properties = [] && n.additional_properties = None
      then
        (* open object with no described fields: approximate as {} with
           everything optional is wrong (closed); use Any-field record *)
        Types.rec_
          (List.map (fun r -> Types.field r Types.any) n.required)
      else
        let closed =
          match n.additional_properties with
          | Some (Bool_schema false) -> true
          | _ -> false
        in
        ignore closed;
        Types.rec_
          (List.map
             (fun (k, s) ->
               Types.field
                 ~optional:(not (List.mem k n.required))
                 k
                 (of_schema_in ~definitions ~seen s))
             n.properties)

let of_schema (s : Jsonschema.Schema.t) =
  let definitions =
    match s with Jsonschema.Schema.Schema n -> n.Jsonschema.Schema.definitions | _ -> []
  in
  of_schema_in ~definitions ~seen:[] s

let of_schema_json j =
  match Jsonschema.Parse.of_json j with
  | Ok s -> Ok (of_schema s)
  | Error e -> Error (Jsonschema.Parse.string_of_error e)
