(** Type-in-schema containment: is every value of an inferred type
    accepted by a JSON Schema?

    This is the [Jsonschema.Contain] decision procedure of the roadmap; it
    lives in [Jtype] because the dependency arrow points from the type
    algebra to the schema library, not back. [check ~root t] walks the
    schema keyword by keyword against each inhabited union branch of [t]:
    type-kind booleans, folded numeric bounds, [required]/[properties]
    coverage, [enum]/[const] sets, array shape. Schemas inside the exact
    structural fragment ({!Containment.exact}) short-circuit through the
    kernel subtype procedure {!Subtype.check}.

    Three-valued and self-verifying: a [Not_contained w] verdict carries a
    concrete member [w] of [t] that {b both} validation engines
    ([Validate.validate] and [Compile.run]) were observed to reject —
    candidate counterexamples that either engine accepts are discarded, and
    if none survives the verdict degrades to [Unknown] with a reason.
    Keywords outside the decided fragment ([pattern], asserted [format],
    [oneOf], [not], [if]/[then]/[else], [patternProperties],
    [propertyNames], [dependencies]) never prove containment: they
    contribute refutation candidates and otherwise report [Unknown].

    Cost is O(|type| · |schema|) plus a handful of candidate validations —
    independent of how much data the type was inferred from, which is the
    point: checking drift of a corpus against a schema without
    re-validating the corpus. *)

type verdict =
  | Contained  (** proved: every value of the type satisfies the schema *)
  | Not_contained of Json.Value.t
      (** witness: a member of the type rejected by both engines *)
  | Unknown of string  (** outside the decided fragment; the reason why *)

val check :
  ?config:Jsonschema.Validate.config -> root:Json.Value.t -> Types.t -> verdict
(** [check ~root t] where [root] is the schema as a JSON document (the
    form [Compile.compile] takes). [config] controls witness verification
    and which keywords assert — with [assert_formats] unset (the default),
    [format] is an annotation and never blocks a proof. An unparseable
    schema is [Unknown], never a guess. *)

val verdict_to_string : verdict -> string
