(* Keyword-wise containment of a type in a schema.

   A schema node is a conjunction of keyword assertions, so one keyword
   that some member of the type violates refutes the whole schema — each
   per-keyword check returns either a proof or a bag of *candidate*
   counterexamples plus the reason to report if none survives. Candidates
   are cheap to propose and only trusted after the real engines reject
   them: the final verdict never claims [Not_contained] on the checker's
   own authority, and never claims [Contained] unless every applicable
   keyword was proved for every inhabited union branch.

   Schemas in the exact structural fragment (Containment.exact: the image
   of Interop.to_schema) skip the keyword walk entirely and are decided by
   the kernel subtype procedure, whose verdicts come with their own
   verified witnesses. *)

module V = Json.Value
module S = Jsonschema.Schema

type verdict = Contained | Not_contained of V.t | Unknown of string

let verdict_to_string = function
  | Contained -> "contained"
  | Not_contained w ->
      "not contained (witness: " ^ Json.Printer.to_string w ^ ")"
  | Unknown reason -> "unknown (" ^ reason ^ ")"

let c_unknown = Kernel.counter "subtype.unknown"

(* One structural check: proved, or candidates + the reason when none of
   them verifies. [Refute ([], reason)] is a pure don't-know. *)
type outcome = Proved | Refute of V.t list * string

let all outcomes =
  let rec go cands reason = function
    | [] -> (
        match reason with
        | None -> Proved
        | Some r -> Refute (List.rev cands, r))
    | Proved :: rest -> go cands reason rest
    | Refute (ws, r) :: rest ->
        let reason = match reason with Some _ -> reason | None -> Some r in
        go (List.rev_append ws cands) reason rest
  in
  go [] None outcomes

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let replicate n x = List.init (max 0 n) (fun _ -> x)

let dedup vs =
  List.rev
    (List.fold_left
       (fun acc v -> if List.exists (V.equal v) acc then acc else v :: acc)
       [] vs)

(* A small zoo of members of the type, used as extra refutation
   candidates for keywords we do not model precisely. *)
let rec samples depth (t : Types.t) : V.t list =
  if depth <= 0 then Option.to_list (Subtype.inhabitant t)
  else
    match t.Types.node with
    | Types.Bot -> []
    | Types.Null -> [ V.Null ]
    | Types.Bool -> [ V.Bool true; V.Bool false ]
    | Types.Int -> [ V.Int 0; V.Int 1; V.Int (-1); V.Int 7 ]
    | Types.Num -> [ V.Float 0.5; V.Int 0; V.Float (-1.5); V.Float 2.25 ]
    | Types.Str -> [ V.String ""; V.String "a"; V.String "zq" ]
    | Types.Any ->
        [
          V.Null; V.Bool true; V.Int 0; V.Float 0.5; V.String "";
          V.Array []; V.Object [];
        ]
    | Types.Arr e ->
        let es = take 2 (samples (depth - 1) e) in
        V.Array []
        :: List.concat_map (fun x -> [ V.Array [ x ]; V.Array [ x; x ] ]) es
    | Types.Rec fs -> rec_samples_fields depth fs
    | Types.Union ts -> take 24 (List.concat_map (samples depth) ts)

and rec_samples_fields depth fs =
  let mandatory =
    List.filter_map
      (fun (f : Types.field) ->
        if f.Types.optional then None
        else
          Option.map (fun v -> (f.Types.fname, v)) (Subtype.inhabitant f.Types.ftype))
      fs
  in
  let all_mandatory_ok =
    List.for_all
      (fun (f : Types.field) ->
        f.Types.optional || Subtype.inhabited f.Types.ftype)
      fs
  in
  if not all_mandatory_ok then []
  else
    let base = V.Object mandatory in
    let full =
      V.Object
        (List.filter_map
           (fun (f : Types.field) ->
             Option.map
               (fun v -> (f.Types.fname, v))
               (Subtype.inhabitant f.Types.ftype))
           fs)
    in
    let variants =
      List.filter_map
        (fun (f : Types.field) ->
          match take 2 (samples (depth - 1) f.Types.ftype) with
          | [ _; second ] ->
              Some
                (V.Object
                   (List.map
                      (fun (k, v) ->
                        if String.equal k f.Types.fname then (k, second)
                        else (k, v))
                      (match full with V.Object kvs -> kvs | _ -> [])))
          | _ -> None)
        fs
    in
    dedup (base :: full :: take 6 variants)

(* Distinct members of the type, for pigeonhole refutation of enum/const
   over infinite types: any finite keyword set excludes one of [k]
   distinct values... which one, the engines will tell us. *)
let rec distinct_values (t : Types.t) k : V.t list =
  if k <= 0 then []
  else
    match t.Types.node with
    | Types.Bot -> []
    | Types.Null -> [ V.Null ]
    | Types.Bool -> take k [ V.Bool true; V.Bool false ]
    | Types.Int -> List.init k (fun i -> V.Int i)
    | Types.Num -> List.init k (fun i -> V.Float (float_of_int i +. 0.5))
    | Types.Str -> List.init k (fun i -> V.String (String.make i 'a'))
    | Types.Any -> List.init k (fun i -> V.Int i)
    | Types.Arr e -> (
        match Subtype.inhabitant e with
        | None -> [ V.Array [] ]
        | Some w -> List.init k (fun i -> V.Array (replicate i w)))
    | Types.Rec fs -> (
        (* vary the first field whose type offers enough distinct values *)
        match rec_samples_fields 1 fs with
        | [] -> []
        | base :: _ -> (
            let varying =
              List.find_map
                (fun (f : Types.field) ->
                  if f.Types.optional then None
                  else
                    let vs = distinct_values f.Types.ftype k in
                    if List.length vs >= k then Some (f.Types.fname, vs)
                    else None)
                fs
            in
            match varying with
            | None -> [ base ]
            | Some (name, vs) ->
                List.map
                  (fun v ->
                    match base with
                    | V.Object kvs ->
                        V.Object
                          (List.map
                             (fun (k', v') ->
                               if String.equal k' name then (k', v) else (k', v'))
                             kvs)
                    | _ -> base)
                  vs))
    | Types.Union ts ->
        take k
          (dedup (List.concat_map (fun u -> distinct_values u k) ts))

(* The finite extension of a type, when it is finite and small. *)
let rec finite_values ?(cap = 64) (t : Types.t) : V.t list option =
  let ( let* ) = Option.bind in
  match t.Types.node with
  | Types.Bot -> Some []
  | Types.Null -> Some [ V.Null ]
  | Types.Bool -> Some [ V.Bool true; V.Bool false ]
  | Types.Int | Types.Num | Types.Str | Types.Any -> None
  | Types.Arr e -> if Subtype.inhabited e then None else Some [ V.Array [] ]
  | Types.Rec fs ->
      let rec fields acc = function
        | [] -> Some (List.map (fun kvs -> V.Object (List.rev kvs)) acc)
        | (f : Types.field) :: rest ->
            let* choices = finite_values ~cap f.Types.ftype in
            let with_present =
              List.concat_map
                (fun kvs ->
                  List.map (fun v -> (f.Types.fname, v) :: kvs) choices)
                acc
            in
            let next =
              if f.Types.optional then acc @ with_present else with_present
            in
            if List.length next > cap then None else fields next rest
      in
      fields [ [] ] fs
  | Types.Union ts ->
      let* all =
        List.fold_left
          (fun acc u ->
            let* acc = acc in
            let* vs = finite_values ~cap u in
            Some (acc @ vs))
          (Some []) ts
      in
      let d = dedup all in
      if List.length d > cap then None else Some d

(* ------------------------------------------------------------------ *)

type ctx = {
  root : S.t;  (** the whole schema, the target of ["#"] *)
  defs : (string * S.t) list;
  asserts : bool;  (** does [format] assert under this config? *)
}

let resolve ctx target =
  if String.equal target "#" then Some ctx.root
  else
    (* the common internal pointer: #/definitions/<name>; anything more
       exotic is reported, not guessed at *)
    let prefix = "#/definitions/" in
    let plen = String.length prefix in
    if String.length target > plen && String.sub target 0 plen = prefix then
      List.assoc_opt (String.sub target plen (String.length target - plen)) ctx.defs
    else None

let rec contain_ty ctx ~fuel (t : Types.t) (s : S.t) : outcome =
  if Containment.exact s then
    match Subtype.check t (Interop.of_schema s) with
    | Subtype.Sub -> Proved
    | Subtype.Not_sub w -> Refute ([ w ], "kernel subtype witness")
    | Subtype.Unknown _ -> structural ctx ~fuel t s
  else structural ctx ~fuel t s

and structural ctx ~fuel (t : Types.t) (s : S.t) : outcome =
  match s with
  | S.Bool_schema true -> Proved
  | S.Bool_schema false -> (
      match Subtype.inhabitant t with
      | None -> Proved
      | Some w -> Refute ([ w ], "false schema"))
  | S.Schema n ->
      let brs =
        match t.Types.node with Types.Union ts -> ts | _ -> [ t ]
      in
      all
        (List.map
           (fun b -> branch ctx ~fuel b n)
           (List.filter Subtype.inhabited brs))

and branch ctx ~fuel (b : Types.t) (n : S.node) : outcome =
  let checks = ref [] in
  let push o = checks := o :: !checks in
  (match n.S.ref_ with
  | None -> ()
  | Some target ->
      if fuel <= 0 then push (Refute ([], "$ref expansion budget exhausted"))
      else (
        (* $ref conjoins with its siblings, mirroring Validate *)
        match resolve ctx target with
        | Some sub -> push (contain_ty ctx ~fuel:(fuel - 1) b sub)
        | None ->
            push
              (Refute
                 ( [],
                   Printf.sprintf "$ref %S outside the decided fragment" target
                 ))));
  push (type_check b n);
  push (enum_check b n);
  push (const_check b n);
  (match b.Types.node with
  | Types.Int | Types.Num -> push (numeric_checks b n)
  | Types.Str -> push (string_checks ctx b n)
  | Types.Arr e -> push (array_checks ctx ~fuel e n)
  | Types.Rec fs -> push (object_checks ctx ~fuel fs n)
  | Types.Any -> push (any_check ctx b n)
  | Types.Null | Types.Bool -> ()
  | Types.Bot | Types.Union _ -> assert false);
  List.iter (fun s -> push (contain_ty ctx ~fuel b s)) n.S.all_of;
  (match n.S.any_of with
  | [] -> ()
  | ds -> push (anyof_check ctx ~fuel b ds));
  (match n.S.one_of with
  | [] -> ()
  | _ -> push (Refute (samples 2 b, "oneOf outside the decided fragment")));
  (match n.S.not_ with
  | None -> ()
  | Some _ -> push (Refute (samples 2 b, "not outside the decided fragment")));
  (match n.S.if_ with
  | None -> ()
  | Some _ ->
      push (Refute (samples 2 b, "if/then/else outside the decided fragment")));
  all (List.rev !checks)

and anyof_check ctx ~fuel b ds =
  (* one proved disjunct proves the branch; otherwise every candidate from
     every disjunct is fair game (a value rejected by the whole anyOf) *)
  let outcomes = List.map (contain_ty ctx ~fuel b) ds in
  if List.exists (function Proved -> true | _ -> false) outcomes then Proved
  else
    all
      (List.map
         (function
           | Proved -> assert false
           | Refute (ws, r) -> Refute (ws, "anyOf: " ^ r))
         outcomes)

and type_check (b : Types.t) (n : S.node) : outcome =
  match n.S.types with
  | None -> Proved
  | Some ts ->
      let has k = List.mem k ts in
      let need ok witness = if ok then Proved else Refute ([ witness ], "type") in
      (match b.Types.node with
      | Types.Null -> need (has `Null) V.Null
      | Types.Bool -> need (has `Boolean) (V.Bool true)
      | Types.Int -> need (has `Integer || has `Number) (V.Int 0)
      | Types.Num -> need (has `Number) (V.Float 0.5)
      | Types.Str -> need (has `String) (V.String "")
      | Types.Arr _ -> need (has `Array) (V.Array [])
      | Types.Rec _ ->
          need (has `Object)
            (Option.value (Subtype.inhabitant b) ~default:(V.Object []))
      | Types.Any ->
          (* Any needs every kind admitted; each missing kind is a witness *)
          let missing =
            List.filter_map
              (fun (k, w) -> if has k then None else Some w)
              [
                (`Null, V.Null); (`Boolean, V.Bool true); (`Number, V.Float 0.5);
                (`String, V.String ""); (`Array, V.Array []);
                (`Object, V.Object []);
              ]
          in
          if missing = [] then Proved else Refute (missing, "type")
      | Types.Bot | Types.Union _ -> assert false)

and enum_check (b : Types.t) (n : S.node) : outcome =
  match n.S.enum with
  | None -> Proved
  | Some vs -> set_membership b vs "enum"

and const_check (b : Types.t) (n : S.node) : outcome =
  match n.S.const with
  | None -> Proved
  | Some c -> set_membership b [ c ] "const"

and set_membership b vs keyword =
  let mem v = List.exists (V.equal v) vs in
  match finite_values b with
  | Some values -> (
      match List.find_opt (fun v -> not (mem v)) values with
      | None -> Proved
      | Some w -> Refute ([ w ], keyword))
  | None -> (
      (* infinite type vs. finite set: k+1 distinct members must include
         an excluded one — if we managed to enumerate that many *)
      let cands = distinct_values b (List.length vs + 1) in
      match List.filter (fun v -> not (mem v)) cands with
      | [] -> Refute ([], keyword ^ " (no excluded member enumerated)")
      | ws -> Refute (take 4 ws, keyword))

and numeric_checks (b : Types.t) (n : S.node) : outcome =
  let is_int = match b.Types.node with Types.Int -> true | _ -> false in
  let big m = Float.abs m > 1e15 in
  let below keyword m strict =
    (* a member of the type smaller than (or equal to, when strict) m *)
    if big m then Refute ([], keyword ^ " (bound too large to refute)")
    else if is_int then
      let w =
        if strict then int_of_float (Float.floor m)
        else int_of_float (Float.floor m) - 1
      in
      Refute ([ V.Int w ], keyword)
    else
      let w = if strict then m else m -. 1.0 in
      Refute ([ V.Float w; V.Float (w -. 0.5) ], keyword)
  in
  let above keyword m strict =
    if big m then Refute ([], keyword ^ " (bound too large to refute)")
    else if is_int then
      let w =
        if strict then int_of_float (Float.ceil m)
        else int_of_float (Float.ceil m) + 1
      in
      Refute ([ V.Int w ], keyword)
    else
      let w = if strict then m else m +. 1.0 in
      Refute ([ V.Float w; V.Float (w +. 0.5) ], keyword)
  in
  all
    [
      (match n.S.minimum with None -> Proved | Some m -> below "minimum" m false);
      (match n.S.exclusive_minimum with
      | None -> Proved
      | Some m -> below "exclusiveMinimum" m true);
      (match n.S.maximum with None -> Proved | Some m -> above "maximum" m false);
      (match n.S.exclusive_maximum with
      | None -> Proved
      | Some m -> above "exclusiveMaximum" m true);
      (match n.S.multiple_of with
      | None -> Proved
      | Some m ->
          if is_int && m > 0.0 && Float.is_integer (1.0 /. m) then
            (* every integer is a multiple of 1/k *)
            Proved
          else if is_int then
            Refute ([ V.Int 1; V.Int 2; V.Int 3; V.Int 5 ], "multipleOf")
          else
            Refute
              ( [ V.Float (m /. 2.0); V.Float (m *. 0.3); V.Float 0.1 ],
                "multipleOf" ));
    ]

and string_checks ctx (b : Types.t) (n : S.node) : outcome =
  ignore b;
  all
    [
      (match n.S.min_length with
      | Some k when k > 0 -> Refute ([ V.String "" ], "minLength")
      | _ -> Proved);
      (match n.S.max_length with
      | Some k when k <= 100_000 ->
          Refute ([ V.String (String.make (k + 1) 'a') ], "maxLength")
      | Some _ -> Refute ([], "maxLength (bound too large to refute)")
      | None -> Proved);
      (match n.S.pattern with
      | None -> Proved
      | Some (src, _) ->
          Refute
            ( [ V.String ""; V.String "a"; V.String "0"; V.String "-" ],
              Printf.sprintf "pattern %S outside the decided fragment" src ));
      (match n.S.format with
      | Some f when ctx.asserts ->
          Refute
            ( [ V.String ""; V.String "x" ],
              Printf.sprintf "asserted format %S outside the decided fragment" f
            )
      | _ -> Proved (* annotation only: never blocks a proof *));
    ]

and array_checks ctx ~fuel (e : Types.t) (n : S.node) : outcome =
  let wrap mk = function
    | Proved -> Proved
    | Refute (ws, r) -> Refute (List.map mk ws, r)
  in
  all
    [
      (match n.S.items with
      | None -> Proved
      | Some (S.Items_one s) ->
          wrap (fun w -> V.Array [ w ]) (contain_ty ctx ~fuel e s)
      | Some (S.Items_many ss) ->
          let positional =
            List.mapi
              (fun i si ->
                (* a failing element at position i; the prefix positions
                   hold the same value — rejection anywhere suffices *)
                wrap
                  (fun w -> V.Array (replicate (i + 1) w))
                  (contain_ty ctx ~fuel e si))
              ss
          in
          let rest =
            match n.S.additional_items with
            | None -> Proved
            | Some s ->
                wrap
                  (fun w -> V.Array (replicate (List.length ss + 1) w))
                  (contain_ty ctx ~fuel e s)
          in
          all (rest :: positional));
      (match n.S.min_items with
      | Some k when k > 0 -> Refute ([ V.Array [] ], "minItems")
      | _ -> Proved);
      (match n.S.max_items with
      | None -> Proved
      | Some k -> (
          match Subtype.inhabitant e with
          | None -> Proved (* only [] inhabits the array type *)
          | Some w when k <= 10_000 ->
              Refute ([ V.Array (replicate (k + 1) w) ], "maxItems")
          | Some _ -> Refute ([], "maxItems (bound too large to refute)")));
      (if n.S.unique_items then
         match Subtype.inhabitant e with
         | Some w -> Refute ([ V.Array [ w; w ] ], "uniqueItems")
         | None -> Proved
       else Proved);
      (match n.S.contains with
      | None -> Proved
      | Some _ -> Refute ([ V.Array [] ], "contains"));
      (match n.S.max_contains with
      | None -> Proved
      | Some k -> (
          match Subtype.inhabitant e with
          | Some w when k <= 10_000 ->
              Refute ([ V.Array (replicate (k + 1) w) ], "maxContains")
          | _ -> Refute ([], "maxContains outside the decided fragment")));
    ]

and object_checks ctx ~fuel (fs : Types.field list) (n : S.node) : outcome =
  let find name =
    List.find_opt (fun (f : Types.field) -> String.equal f.Types.fname name) fs
  in
  let base = V.Object (mandatory_fields fs) in
  let full = V.Object (all_fields fs) in
  let with_field k v =
    match base with
    | V.Object kvs ->
        if List.mem_assoc k kvs then
          V.Object
            (List.map (fun (k', v') -> if String.equal k' k then (k, v) else (k', v')) kvs)
        else V.Object (kvs @ [ (k, v) ])
    | _ -> assert false
  in
  let required_checks =
    List.map
      (fun r ->
        match find r with
        | Some f when not f.Types.optional -> Proved
        | _ -> Refute ([ base ], "required"))
      n.S.required
  in
  let property_checks =
    List.map
      (fun (k, sk) ->
        match find k with
        | None -> Proved (* closed records: the field never appears *)
        | Some f ->
            (* an uninhabited optional field never appears either; the
               branch filter inside contain_ty handles that for free *)
            wrap_field with_field k (contain_ty ctx ~fuel f.Types.ftype sk))
      n.S.properties
  in
  let additional =
    match (n.S.additional_properties, n.S.pattern_properties) with
    | None, _ -> Proved
    | Some _, _ :: _ ->
        (* patternProperties changes which fields count as additional *)
        Refute
          ([ full; base ], "additionalProperties with patternProperties")
    | Some ap, [] ->
        all
          (List.filter_map
             (fun (f : Types.field) ->
               if List.mem_assoc f.Types.fname n.S.properties then None
               else
                 Some
                   (wrap_field with_field f.Types.fname
                      (contain_ty ctx ~fuel f.Types.ftype ap)))
             fs)
  in
  all
    (required_checks @ property_checks
    @ [
        additional;
        (match n.S.pattern_properties with
        | [] -> Proved
        | _ ->
            Refute ([ full; base ], "patternProperties outside the decided fragment"));
        (match n.S.property_names with
        | None -> Proved
        | Some _ ->
            Refute ([ full; base ], "propertyNames outside the decided fragment"));
        (match n.S.dependencies with
        | [] -> Proved
        | _ -> Refute ([ full; base ], "dependencies outside the decided fragment"));
        (match n.S.min_properties with
        | None -> Proved
        | Some k ->
            if List.length (mandatory_fields fs) >= k then Proved
            else Refute ([ base ], "minProperties"));
        (match n.S.max_properties with
        | None -> Proved
        | Some k ->
            if List.length (all_fields fs) <= k then Proved
            else Refute ([ full ], "maxProperties"));
      ])

and wrap_field with_field k = function
  | Proved -> Proved
  | Refute (ws, r) ->
      Refute (List.map (with_field k) ws, Printf.sprintf "properties/%s: %s" k r)

and mandatory_fields fs =
  List.filter_map
    (fun (f : Types.field) ->
      if f.Types.optional then None
      else
        Option.map (fun v -> (f.Types.fname, v)) (Subtype.inhabitant f.Types.ftype))
    fs

and all_fields fs =
  List.filter_map
    (fun (f : Types.field) ->
      Option.map (fun v -> (f.Types.fname, v)) (Subtype.inhabitant f.Types.ftype))
    fs

and any_check ctx (b : Types.t) (n : S.node) : outcome =
  (* [Any] meets every keyword family; type/enum/const/combinators are
     handled by the shared checks, so only per-kind keywords remain. A
     single present keyword already constrains some kind of value. *)
  let constrained =
    n.S.multiple_of <> None || n.S.maximum <> None || n.S.minimum <> None
    || n.S.exclusive_maximum <> None || n.S.exclusive_minimum <> None
    || n.S.min_length <> None || n.S.max_length <> None || n.S.pattern <> None
    || (ctx.asserts && n.S.format <> None)
    || n.S.items <> None || n.S.additional_items <> None
    || n.S.min_items <> None || n.S.max_items <> None || n.S.unique_items
    || n.S.contains <> None || n.S.max_contains <> None
    || n.S.properties <> [] || n.S.pattern_properties <> []
    || n.S.additional_properties <> None || n.S.required <> []
    || n.S.min_properties <> None || n.S.max_properties <> None
    || n.S.property_names <> None || n.S.dependencies <> []
  in
  if constrained then
    Refute (samples 2 b, "open type (⊤) against a constraining keyword")
  else Proved

(* ------------------------------------------------------------------ *)

let check ?(config = Jsonschema.Validate.default_config) ~root (t : Types.t) :
    verdict =
  match Jsonschema.Parse.of_json root with
  | Error e ->
      Kernel.hit c_unknown;
      Unknown ("schema does not parse: " ^ Jsonschema.Parse.string_of_error e)
  | Ok schema ->
      let defs =
        match schema with S.Schema n -> n.S.definitions | S.Bool_schema _ -> []
      in
      let ctx = { root = schema; defs; asserts = config.Jsonschema.Validate.assert_formats } in
      let plan = Jsonschema.Compile.compile root in
      let rejected w =
        (not (Jsonschema.Validate.is_valid ~config ~root w))
        &&
        match plan with
        | Ok p -> not (Jsonschema.Compile.is_valid ~config p w)
        | Error _ -> true
      in
      let verify w = Typecheck.member w t && rejected w in
      (match contain_ty ctx ~fuel:32 t schema with
      | Proved -> Contained
      | Refute (ws, reason) -> (
          match
            List.find_opt verify (dedup (ws @ take 16 (samples 2 t)))
          with
          | Some w -> Not_contained w
          | None ->
              Kernel.hit c_unknown;
              Unknown reason))
