(* Witness-producing subtype decision procedure.

   The semantics decided here is exactly [Typecheck.member]: closed
   records, Int ⊆ Num, unions as set union. Structure of the algorithm:

   - [Bot] and uninhabited types are subtypes of everything (vacuously);
     [Any] on the right absorbs; [Any] on the left of anything smaller is
     refuted by an object with a field name that occurs nowhere in the
     supertype (records are closed, so no record branch can admit it, and
     non-record branches reject objects outright).
   - Scalars check kind coverage of the supertype's branches.
   - [Arr e ≤ b] holds iff some [Arr u] branch of [b] has [e ≤ u];
     otherwise one failing element per array branch is packed into a
     single witness array that no branch admits.
   - [Rec fs ≤ b] tries each record branch; a branch's counterexample is
     only a witness if the *whole* union rejects it, which we test with
     [Typecheck.member]. When every candidate is absorbed by some other
     branch we are facing union distribution, outside the decided
     fragment: [Unknown], never a guess.

   Verdicts are memoized per domain on interned id pairs; an in-flight
   pair re-entered during its own computation answers [Sub] — the
   coinductive hypothesis. Types are interned as finite dags today, so
   the hypothesis is never actually consulted, but it keeps the procedure
   total if cyclic type graphs ever appear. A final self-check rejects
   any witness the semantics disagrees with, downgrading to [Unknown]
   rather than ever returning an unverified counterexample. *)

module V = Json.Value

type verdict = Sub | Not_sub of V.t | Unknown of string

let verdict_to_string = function
  | Sub -> "sub"
  | Not_sub w -> "not sub (witness: " ^ Json.Printer.to_string w ^ ")"
  | Unknown reason -> "unknown (" ^ reason ^ ")"

let c_queries = Kernel.counter "subtype.queries"
let c_hits = Kernel.counter "subtype.hits"
let c_unknown = Kernel.counter "subtype.unknown"

type cell = Pending | Done of verdict

let cache_capacity = 1 lsl 16

let memo_key : (int * int, cell) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 1024)

let rec inhabitant (t : Types.t) : V.t option =
  match t.Types.node with
  | Types.Bot -> None
  | Types.Null -> Some V.Null
  | Types.Bool -> Some (V.Bool true)
  | Types.Int -> Some (V.Int 0)
  | Types.Num -> Some (V.Float 0.5)
  | Types.Str -> Some (V.String "")
  | Types.Any -> Some V.Null
  | Types.Arr _ -> Some (V.Array [])
  | Types.Rec fields ->
      let rec go acc = function
        | [] -> Some (V.Object (List.rev acc))
        | (f : Types.field) :: rest ->
            if f.Types.optional then go acc rest
            else (
              match inhabitant f.Types.ftype with
              | None -> None
              | Some v -> go ((f.Types.fname, v) :: acc) rest)
      in
      go [] fields
  | Types.Union ts -> List.find_map inhabitant ts

let inhabited t = inhabitant t <> None

let branches (t : Types.t) =
  match t.Types.node with Types.Union ts -> ts | _ -> [ t ]

let covers b pred = List.exists (fun (u : Types.t) -> pred u.Types.node) (branches b)

(* A field name foreign to every record type reachable in [t] — the
   refutation key for [Any ≤ t]. *)
let fresh_field t =
  let rec names acc (t : Types.t) =
    match t.Types.node with
    | Types.Arr e -> names acc e
    | Types.Rec fs ->
        List.fold_left
          (fun acc (f : Types.field) -> names (f.Types.fname :: acc) f.Types.ftype)
          acc fs
    | Types.Union ts -> List.fold_left names acc ts
    | _ -> acc
  in
  let used = names [] t in
  let rec go i =
    let cand = if i = 0 then "_" else "_" ^ string_of_int i in
    if List.mem cand used then go (i + 1) else cand
  in
  go 0

(* Functional field update/append on an object witness. *)
let set_field obj k v =
  match obj with
  | V.Object kvs ->
      if List.mem_assoc k kvs then
        V.Object
          (List.map (fun (k', v') -> if String.equal k' k then (k, v) else (k', v')) kvs)
      else V.Object (kvs @ [ (k, v) ])
  | _ -> invalid_arg "Subtype.set_field: not an object"

let first_reason a b = match a with Some _ -> a | None -> b

let rec sub (a : Types.t) (b : Types.t) : verdict =
  Kernel.hit c_queries;
  if Types.equal a b then Sub
  else begin
    let memo = Domain.DLS.get memo_key in
    let key = (Types.id a, Types.id b) in
    match Hashtbl.find_opt memo key with
    | Some (Done v) ->
        Kernel.hit c_hits;
        v
    | Some Pending ->
        (* coinductive hypothesis: assume the pair holds while deciding it *)
        Kernel.hit c_hits;
        Sub
    | None ->
        if Hashtbl.length memo >= cache_capacity then Hashtbl.reset memo;
        Hashtbl.replace memo key Pending;
        let v = compute a b in
        Hashtbl.replace memo key (Done v);
        v
  end

and compute (a : Types.t) (b : Types.t) : verdict =
  match (a.Types.node, b.Types.node) with
  | Types.Bot, _ -> Sub
  | _, Types.Any -> Sub
  | _ -> (
      match inhabitant a with
      | None -> Sub (* uninhabited: vacuously below everything *)
      | Some wa -> (
          match (a.Types.node, b.Types.node) with
          | _, Types.Bot -> Not_sub wa
          | Types.Any, _ -> Not_sub (V.Object [ (fresh_field b, V.Null) ])
          | Types.Union ts, _ ->
              (* every branch must fit; a branch witness refutes the union *)
              let rec go unknown = function
                | [] -> (
                    match unknown with None -> Sub | Some r -> Unknown r)
                | t :: rest -> (
                    match sub t b with
                    | Sub -> go unknown rest
                    | Not_sub w -> Not_sub w
                    | Unknown r -> go (first_reason unknown (Some r)) rest)
              in
              go None ts
          | Types.Null, _ ->
              if covers b (function Types.Null -> true | _ -> false) then Sub
              else Not_sub V.Null
          | Types.Bool, _ ->
              if covers b (function Types.Bool -> true | _ -> false) then Sub
              else Not_sub (V.Bool true)
          | Types.Int, _ ->
              if covers b (function Types.Int | Types.Num -> true | _ -> false)
              then Sub
              else Not_sub (V.Int 0)
          | Types.Num, _ ->
              (* 0.5 refutes Int branches too, so coverage needs Num itself *)
              if covers b (function Types.Num -> true | _ -> false) then Sub
              else Not_sub (V.Float 0.5)
          | Types.Str, _ ->
              if covers b (function Types.Str -> true | _ -> false) then Sub
              else Not_sub (V.String "")
          | Types.Arr e, _ -> arr_case e b
          | Types.Rec fs, _ -> rec_case fs b wa
          | Types.Bot, _ -> assert false))

and arr_case e b =
  let elems =
    List.filter_map
      (fun (u : Types.t) ->
        match u.Types.node with Types.Arr x -> Some x | _ -> None)
      (branches b)
  in
  if elems = [] then Not_sub (V.Array [])
  else
    (* Arr e ≤ ∪ᵢ Arr uᵢ iff e ≤ uᵢ for some i: element types live in a
       lattice where an array's elements must all fit one branch… they
       don't — an array mixes branches only through e itself, so we need
       one uᵢ above e. Failing that, an array holding one bad element per
       branch is rejected by all of them at once. *)
    let rec go wits unknown = function
      | [] -> (
          match unknown with
          | Some r -> Unknown r
          | None -> Not_sub (V.Array (List.rev wits)))
      | u :: rest -> (
          match sub e u with
          | Sub -> Sub
          | Not_sub w -> go (w :: wits) unknown rest
          | Unknown r -> go wits (first_reason unknown (Some r)) rest)
    in
    go [] None elems

and rec_case fs b base =
  let recs =
    List.filter
      (fun (u : Types.t) ->
        match u.Types.node with Types.Rec _ -> true | _ -> false)
      (branches b)
  in
  if recs = [] then Not_sub base
  else
    let rec go cands unknown = function
      | [] -> (
          (* no single branch admits all of [a]; a branch counterexample
             refutes the union only if no *other* branch absorbs it *)
          match
            List.find_opt (fun w -> not (Typecheck.member w b)) (List.rev cands)
          with
          | Some w -> Not_sub w
          | None -> (
              match unknown with
              | Some r -> Unknown r
              | None ->
                  Unknown
                    "record type vs. union of record types (distribution \
                     outside the decided fragment)"))
      | r :: rest -> (
          match rec_vs_rec fs r base with
          | Sub -> Sub
          | Not_sub w -> go (w :: cands) unknown rest
          | Unknown r' -> go cands (first_reason unknown (Some r')) rest)
    in
    go [] None recs

and rec_vs_rec fs (r : Types.t) base =
  let gs = match r.Types.node with Types.Rec gs -> gs | _ -> assert false in
  let find name l =
    List.find_opt (fun (f : Types.field) -> String.equal f.Types.fname name) l
  in
  let rec fields_check unknown = function
    | [] -> (
        (* a mandatory supertype field the subtype never provides: the
           base inhabitant (mandatory fields of [fs] only) lacks it *)
        let missing =
          List.find_opt
            (fun (g : Types.field) ->
              (not g.Types.optional) && find g.Types.fname fs = None)
            gs
        in
        match missing with
        | Some _ -> Not_sub base
        | None -> ( match unknown with None -> Sub | Some r -> Unknown r))
    | (x : Types.field) :: rest -> (
        match find x.Types.fname gs with
        | None -> (
            (* extra field: closed records reject it when present *)
            if not x.Types.optional then Not_sub base
            else
              match inhabitant x.Types.ftype with
              | Some wx -> Not_sub (set_field base x.Types.fname wx)
              | None -> fields_check unknown rest (* can never be present *))
        | Some y ->
            (* optional-here vs mandatory-there: base omits the field *)
            if x.Types.optional && not y.Types.optional then Not_sub base
            else (
              match sub x.Types.ftype y.Types.ftype with
              | Sub -> fields_check unknown rest
              | Not_sub w -> Not_sub (set_field base x.Types.fname w)
              | Unknown r -> fields_check (first_reason unknown (Some r)) rest))
  in
  fields_check None fs

let check a b =
  match sub a b with
  | Sub -> Sub
  | Unknown reason ->
      Kernel.hit c_unknown;
      Unknown reason
  | Not_sub w ->
      (* self-check: never hand out a witness the semantics disputes *)
      if Typecheck.member w a && not (Typecheck.member w b) then Not_sub w
      else begin
        Kernel.hit c_unknown;
        Unknown "internal: constructed witness failed its member self-check"
      end

let is_sub a b = match check a b with Sub -> true | _ -> false
