let capitalize s =
  if s = "" then s else String.make 1 (Char.uppercase_ascii s.[0]) ^ String.sub s 1 (String.length s - 1)

let is_ident s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | '$' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' -> true | _ -> false)
       s

let quote_key k = if is_ident k then k else Json.Printer.escape_string k

let rec type_expr (t : Types.t) =
  match t.Types.node with
  | Types.Bot -> "never"
  | Types.Null -> "null"
  | Types.Bool -> "boolean"
  | Types.Int | Types.Num -> "number"
  | Types.Str -> "string"
  | Types.Any -> "unknown"
  | Types.Arr elem -> array_expr elem
  | Types.Rec fields ->
      let member f =
        Printf.sprintf "%s%s: %s" (quote_key f.Types.fname)
          (if f.Types.optional then "?" else "")
          (type_expr f.Types.ftype)
      in
      if fields = [] then "{}"
      else "{ " ^ String.concat "; " (List.map member fields) ^ " }"
  | Types.Union ts -> String.concat " | " (List.map atom ts)

and atom t =
  match t.Types.node with
  | Types.Union _ -> "(" ^ type_expr t ^ ")"
  | _ -> type_expr t

and array_expr elem =
  match elem.Types.node with
  | Types.Union _ | Types.Rec _ -> "(" ^ type_expr elem ^ ")[]"
  | Types.Bot -> "never[]"
  | _ -> type_expr elem ^ "[]"

(* Lift nested records into named interfaces, depth-first, so declarations
   appear before their uses. *)
let declaration ~name t =
  let decls = ref [] in
  let fresh_names = Hashtbl.create 8 in
  let fresh base =
    let rec try_ n =
      let candidate = if n = 0 then base else Printf.sprintf "%s%d" base n in
      if Hashtbl.mem fresh_names candidate then try_ (n + 1)
      else begin
        Hashtbl.add fresh_names candidate ();
        candidate
      end
    in
    try_ 0
  in
  let rec lift prefix (t : Types.t) : Types.t * string option =
    match t.Types.node with
    | Types.Rec fields when fields <> [] ->
        let iface = fresh prefix in
        let members =
          List.map
            (fun f ->
              let inner, named =
                lift (prefix ^ capitalize f.Types.fname) f.Types.ftype
              in
              let rendered =
                match named with Some n -> n | None -> type_expr inner
              in
              Printf.sprintf "  %s%s: %s;" (quote_key f.Types.fname)
                (if f.Types.optional then "?" else "")
                rendered)
            fields
        in
        decls :=
          Printf.sprintf "interface %s {\n%s\n}" iface (String.concat "\n" members)
          :: !decls;
        (t, Some iface)
    | Types.Arr elem ->
        let _, named = lift prefix elem in
        (match named with
         | Some n -> (t, Some (n ^ "[]"))
         | None -> (t, None))
    | Types.Union ts ->
        let parts =
          List.map
            (fun branch ->
              let _, named = lift prefix branch in
              match named with Some n -> n | None -> atom branch)
            ts
        in
        (t, Some (String.concat " | " parts))
    | _ -> (t, None)
  in
  let rendered =
    match t.Types.node with
    | Types.Rec _ ->
        let _, named = lift (capitalize name) t in
        (match named with Some _ -> None | None -> Some (type_expr t))
    | _ ->
        let _, named = lift (capitalize name) t in
        (match named with
         | Some n -> Some n
         | None -> Some (type_expr t))
  in
  let decls = List.rev !decls in
  match rendered with
  | None -> String.concat "\n\n" decls
  | Some expr ->
      String.concat "\n\n"
        (decls @ [ Printf.sprintf "type %s = %s;" (capitalize name) expr ])
