type verdict =
  | Included
  | Not_included of Json.Value.t
  | Unknown

let verdict_to_string = function
  | Included -> "included"
  | Not_included cex -> "not included (counterexample: " ^ Json.Printer.to_string cex ^ ")"
  | Unknown -> "unknown"

(* The structural fragment: schemas whose Interop.of_schema translation is
   exact (accepts precisely the same instances). *)
let exact s =
  let open Jsonschema.Schema in
  let rec go s =
    match s with
    | Bool_schema _ -> true
    | Schema n -> (
        n.enum = None && n.const = None && n.multiple_of = None && n.maximum = None
        && n.exclusive_maximum = None && n.minimum = None && n.exclusive_minimum = None
        && n.min_length = None && n.max_length = None && n.pattern = None
        && n.format = None && n.additional_items = None && n.min_items = None
        && n.max_items = None && (not n.unique_items) && n.contains = None
        && n.min_contains = None && n.max_contains = None
        && n.pattern_properties = [] && n.min_properties = None
        && n.max_properties = None && n.property_names = None && n.dependencies = []
        && n.all_of = [] && n.one_of = [] && n.not_ = None && n.if_ = None
        && n.ref_ = None && n.definitions = []
        && List.for_all go n.any_of
        &&
        match n.types with
        | None ->
            n.properties = [] && n.required = [] && n.items = None
            && n.additional_properties = None
        | Some [ `Null ] | Some [ `Boolean ] | Some [ `Integer ] | Some [ `Number ]
        | Some [ `String ] ->
            n.properties = [] && n.required = [] && n.items = None
            && n.additional_properties = None && n.any_of = []
        | Some [ `Array ] -> (
            n.properties = [] && n.required = [] && n.additional_properties = None
            && n.any_of = []
            &&
            match n.items with
            | None -> true
            | Some (Items_one s) -> go s
            | Some (Items_many _) -> false)
        | Some [ `Object ] ->
            n.items = None && n.any_of = []
            && (match n.additional_properties with
                | Some (Bool_schema false) -> true
                | _ -> false)
            && List.for_all (fun r -> List.mem_assoc r n.properties) n.required
            && List.for_all (fun (_, s) -> go s) n.properties
        | Some _ -> false)
  in
  go s

let refute ~samples sub_root super_root =
  let st = Jsonschema.Generate.rng ~seed:97 in
  let rec go k =
    if k = 0 then None
    else
      match Jsonschema.Generate.generate_valid st ~root:sub_root with
      | Some v when not (Jsonschema.Validate.is_valid ~root:super_root v) -> Some v
      | Some _ -> go (k - 1)
      | None -> go (k - 1)
  in
  go samples

let check ?(samples = 200) sub_root super_root =
  match refute ~samples sub_root super_root with
  | Some cex -> Not_included cex
  | None -> (
      match (Jsonschema.Parse.of_json sub_root, Jsonschema.Parse.of_json super_root) with
      | Ok sub, Ok super when exact sub && exact super -> (
          (* both translations are exact, so the kernel subtype procedure
             decides inclusion of the schemas themselves — and its witness,
             double-checked against the real validator, upgrades what used
             to be a blind Unknown into a counterexample *)
          match
            Subtype.check (Interop.of_schema sub) (Interop.of_schema super)
          with
          | Subtype.Sub -> Included
          | Subtype.Not_sub w
            when Jsonschema.Validate.is_valid ~root:sub_root w
                 && not (Jsonschema.Validate.is_valid ~root:super_root w) ->
              Not_included w
          | Subtype.Not_sub _ | Subtype.Unknown _ ->
              (* record-vs-union distribution, or a witness the engines
                 dispute: absence of proof is not refutation *)
              Unknown)
      | _ -> Unknown)

let equivalent ?samples a b =
  match check ?samples a b with
  | Not_included cex -> Not_included cex
  | fwd -> (
      match check ?samples b a with
      | Not_included cex -> Not_included cex
      | bwd -> (
          match (fwd, bwd) with
          | Included, Included -> Included
          | _ -> Unknown))

type sat = Satisfiable of Json.Value.t | Maybe_unsatisfiable

let satisfiable ?(samples = 200) root =
  match root with
  | Json.Value.Bool false -> Maybe_unsatisfiable
  | _ -> (
      let st = Jsonschema.Generate.rng ~seed:89 in
      let rec go k =
        if k = 0 then Maybe_unsatisfiable
        else
          match Jsonschema.Generate.generate_valid st ~root with
          | Some v -> Satisfiable v
          | None -> go (k - 1)
      in
      go (max 1 (samples / 50)))
