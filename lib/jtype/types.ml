type t =
  | Bot
  | Null
  | Bool
  | Int
  | Num
  | Str
  | Arr of t
  | Rec of field list
  | Union of t list
  | Any

and field = { fname : string; optional : bool; ftype : t }

let bot = Bot
let null = Null
let bool = Bool
let int = Int
let num = Num
let str = Str
let any = Any
let arr t = Arr t
let field ?(optional = false) fname ftype = { fname; optional; ftype }

let rec_ fields =
  let sorted = List.sort (fun a b -> String.compare a.fname b.fname) fields in
  let rec check = function
    | a :: (b :: _ as rest) ->
        if String.equal a.fname b.fname then
          invalid_arg (Printf.sprintf "Jtype.rec_: duplicate field %S" a.fname)
        else check rest
    | _ -> ()
  in
  check sorted;
  Rec sorted

let rank = function
  | Bot -> 0
  | Null -> 1
  | Bool -> 2
  | Int -> 3
  | Num -> 4
  | Str -> 5
  | Arr _ -> 6
  | Rec _ -> 7
  | Union _ -> 8
  | Any -> 9

let rec compare a b =
  match (a, b) with
  | Arr x, Arr y -> compare x y
  | Rec xs, Rec ys -> compare_fields xs ys
  | Union xs, Union ys -> compare_list xs ys
  | _ -> Stdlib.compare (rank a) (rank b)

and compare_list xs ys =
  match (xs, ys) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | x :: xs', y :: ys' ->
      let c = compare x y in
      if c <> 0 then c else compare_list xs' ys'

and compare_fields xs ys =
  match (xs, ys) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | x :: xs', y :: ys' ->
      let c = String.compare x.fname y.fname in
      if c <> 0 then c
      else
        let c = Bool.compare x.optional y.optional in
        if c <> 0 then c
        else
          let c = compare x.ftype y.ftype in
          if c <> 0 then c else compare_fields xs' ys'

let equal a b = compare a b = 0

let union ts =
  let rec flatten acc = function
    | [] -> acc
    | Union us :: rest -> flatten (flatten acc us) rest
    | Bot :: rest -> flatten acc rest
    | t :: rest -> flatten (t :: acc) rest
  in
  let flat = flatten [] ts in
  if List.exists (fun t -> t = Any) flat then Any
  else
    let sorted = List.sort_uniq compare flat in
    match sorted with
    | [] -> Bot
    | [ t ] -> t
    | ts -> Union ts

let rec of_value (v : Json.Value.t) : t =
  match v with
  | Json.Value.Null -> Null
  | Json.Value.Bool _ -> Bool
  | Json.Value.Int _ -> Int
  | Json.Value.Float _ -> Num
  | Json.Value.String _ -> Str
  | Json.Value.Array vs -> Arr (union (List.map of_value vs))
  | Json.Value.Object fields ->
      (* last-wins on duplicate keys, matching the parser default *)
      let seen = Hashtbl.create 8 in
      let uniq =
        List.filter
          (fun (k, _) ->
            if Hashtbl.mem seen k then false
            else begin
              Hashtbl.add seen k ();
              true
            end)
          (List.rev fields)
      in
      rec_ (List.map (fun (k, x) -> field k (of_value x)) uniq)

let rec size = function
  | Bot | Null | Bool | Int | Num | Str | Any -> 1
  | Arr t -> 1 + size t
  | Rec fields -> 1 + List.fold_left (fun n f -> n + size f.ftype) 0 fields
  | Union ts -> 1 + List.fold_left (fun n t -> n + size t) 0 ts

let rec depth = function
  | Bot | Null | Bool | Int | Num | Str | Any -> 1
  | Arr t -> 1 + depth t
  | Rec fields -> 1 + List.fold_left (fun n f -> max n (depth f.ftype)) 0 fields
  | Union ts -> List.fold_left (fun n t -> max n (depth t)) 1 ts

let kind_of = function
  | Bot -> "bottom"
  | Null -> "null"
  | Bool -> "boolean"
  | Int -> "integer"
  | Num -> "number"
  | Str -> "string"
  | Arr _ -> "array"
  | Rec _ -> "record"
  | Union _ -> "union"
  | Any -> "any"

let rec to_string t =
  match t with
  | Bot -> "Bot"
  | Null -> "Null"
  | Bool -> "Bool"
  | Int -> "Int"
  | Num -> "Num"
  | Str -> "Str"
  | Any -> "Any"
  | Arr Bot -> "[]"
  | Arr t -> "[" ^ to_string t ^ "]"
  | Rec fields ->
      let f { fname; optional; ftype } =
        Printf.sprintf "%s%s: %s" fname (if optional then "?" else "") (to_string ftype)
      in
      "{" ^ String.concat ", " (List.map f fields) ^ "}"
  | Union ts -> String.concat " + " (List.map to_string_atom ts)

and to_string_atom t =
  match t with
  | Union _ -> "(" ^ to_string t ^ ")"
  | _ -> to_string t

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* --- precise JSON serialization ---------------------------------------- *)

(* Unlike [Interop.to_schema_json] (which targets JSON Schema and loses the
   Int/Num distinction in round trips), this is an exact tagged encoding:
   [of_json (to_json t) = Ok t] for every [t]. Checkpoint journals rely on
   that equation to resume an interrupted merge byte-identically. *)

let rec to_json (t : t) : Json.Value.t =
  let k name = Json.Value.Object [ ("k", Json.Value.String name) ] in
  match t with
  | Bot -> k "bot"
  | Null -> k "null"
  | Bool -> k "bool"
  | Int -> k "int"
  | Num -> k "num"
  | Str -> k "str"
  | Any -> k "any"
  | Arr elem ->
      Json.Value.Object
        [ ("k", Json.Value.String "arr"); ("of", to_json elem) ]
  | Rec fields ->
      Json.Value.Object
        [ ("k", Json.Value.String "rec");
          ("fields",
           Json.Value.Array
             (List.map
                (fun f ->
                  Json.Value.Object
                    [ ("name", Json.Value.String f.fname);
                      ("opt", Json.Value.Bool f.optional);
                      ("type", to_json f.ftype) ])
                fields)) ]
  | Union ts ->
      Json.Value.Object
        [ ("k", Json.Value.String "union");
          ("of", Json.Value.Array (List.map to_json ts)) ]

let of_json (v : Json.Value.t) : (t, string) result =
  let ( let* ) = Result.bind in
  let member name = function
    | Json.Value.Object fields -> (
        match List.assoc_opt name fields with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "jtype json: missing %S" name))
    | _ -> Error "jtype json: expected an object"
  in
  let rec go v =
    let* tag = member "k" v in
    match tag with
    | Json.Value.String "bot" -> Ok bot
    | Json.Value.String "null" -> Ok null
    | Json.Value.String "bool" -> Ok bool
    | Json.Value.String "int" -> Ok int
    | Json.Value.String "num" -> Ok num
    | Json.Value.String "str" -> Ok str
    | Json.Value.String "any" -> Ok any
    | Json.Value.String "arr" ->
        let* elem = member "of" v in
        let* elem = go elem in
        Ok (arr elem)
    | Json.Value.String "rec" -> (
        let* fields = member "fields" v in
        match fields with
        | Json.Value.Array fs ->
            let* fields =
              List.fold_left
                (fun acc fv ->
                  let* acc = acc in
                  let* name = member "name" fv in
                  let* opt = member "opt" fv in
                  let* ftype = member "type" fv in
                  match (name, opt) with
                  | Json.Value.String name, Json.Value.Bool optional ->
                      let* ftype = go ftype in
                      Ok (field ~optional name ftype :: acc)
                  | _ -> Error "jtype json: malformed record field")
                (Ok []) fs
            in
            (try Ok (rec_ (List.rev fields))
             with Invalid_argument m -> Error m)
        | _ -> Error "jtype json: rec fields must be an array")
    | Json.Value.String "union" -> (
        let* branches = member "of" v in
        match branches with
        | Json.Value.Array bs ->
            let* ts =
              List.fold_left
                (fun acc b ->
                  let* acc = acc in
                  let* t = go b in
                  Ok (t :: acc))
                (Ok []) bs
            in
            Ok (union (List.rev ts))
        | _ -> Error "jtype json: union branches must be an array")
    | Json.Value.String other -> Error ("jtype json: unknown tag " ^ other)
    | _ -> Error "jtype json: tag must be a string"
  in
  go v
