(* Hash-consed representation: every structural type is interned so that
   one physical node stands for each distinct type a domain has seen.
   [t] wraps the constructor layer [node] with a globally unique [id]
   (Atomic counter — ids are never reused, so they are safe as memo-cache
   keys even when nodes cross domains) and a precomputed structural
   [hash] (derived from child *hashes*, not ids, so structurally equal
   nodes hash alike on every domain).

   Interning is per-domain (Domain.DLS) with no cross-domain locking: a
   node built on one domain and revisited on another is simply re-interned
   there — two physical nodes, same hash, structurally equal — which costs
   a cache miss, never correctness. Tables are weak (Weak.Make) so types
   no longer reachable from live data can be collected mid-run. *)

type t = { id : int; hash : int; node : node }

and node =
  | Bot
  | Null
  | Bool
  | Int
  | Num
  | Str
  | Arr of t
  | Rec of field list
  | Union of t list
  | Any

and field = { fname : string; optional : bool; ftype : t }

(* --- structural hashing -------------------------------------------------- *)

let combine h k = (((h * 0x01000193) lxor k) land max_int : int)

let hash_node = function
  | Bot -> 3
  | Null -> 5
  | Bool -> 7
  | Int -> 11
  | Num -> 13
  | Str -> 17
  | Any -> 19
  | Arr t -> combine 23 t.hash
  | Rec fields ->
      List.fold_left
        (fun h f ->
          combine
            (combine (combine h (Hashtbl.hash f.fname)) (Bool.to_int f.optional))
            f.ftype.hash)
        29 fields
  | Union ts -> List.fold_left (fun h t -> combine h t.hash) 31 ts

(* --- interning ----------------------------------------------------------- *)

(* One pointer-equality probe per child: by the interning invariant,
   structurally equal children already share a physical node (within a
   domain), so shallow [==] is a complete equality test for table hits. *)
let shallow_equal a b =
  match (a, b) with
  | Bot, Bot | Null, Null | Bool, Bool | Int, Int | Num, Num | Str, Str
  | Any, Any ->
      true
  | Arr x, Arr y -> x == y
  | Rec xs, Rec ys ->
      List.compare_lengths xs ys = 0
      && List.for_all2
           (fun x y ->
             x.optional = y.optional && x.ftype == y.ftype
             && String.equal x.fname y.fname)
           xs ys
  | Union xs, Union ys ->
      List.compare_lengths xs ys = 0 && List.for_all2 ( == ) xs ys
  | _ -> false

module Table = Weak.Make (struct
  type nonrec t = t

  let hash t = t.hash
  let equal a b = shallow_equal a.node b.node
end)

(* the scalar constants are interned once, globally, below *)
let next_id = Atomic.make 16
let table_key : Table.t Domain.DLS.key = Domain.DLS.new_key (fun () -> Table.create 1024)
let c_nodes = Kernel.counter "kernel.nodes"
let c_intern_hits = Kernel.counter "kernel.intern.hits"

let intern node =
  let tbl = Domain.DLS.get table_key in
  let probe = { id = 0; hash = hash_node node; node } in
  match Table.find_opt tbl probe with
  | Some t ->
      Kernel.hit c_intern_hits;
      t
  | None ->
      let t = { probe with id = Atomic.fetch_and_add next_id 1 } in
      Table.add tbl t;
      Kernel.hit c_nodes;
      t

(* Scalars are closed and domain-free: intern them once at module
   initialization and share the physical node across all domains. *)
let scalar id node = { id; hash = hash_node node; node }

let bot = scalar 0 Bot
let null = scalar 1 Null
let bool = scalar 2 Bool
let int = scalar 3 Int
let num = scalar 4 Num
let str = scalar 5 Str
let any = scalar 6 Any
let arr t = intern (Arr t)
let field ?(optional = false) fname ftype = { fname; optional; ftype }

let rec_ fields =
  let sorted = List.sort (fun a b -> String.compare a.fname b.fname) fields in
  let rec check = function
    | a :: (b :: _ as rest) ->
        if String.equal a.fname b.fname then
          invalid_arg (Printf.sprintf "Jtype.rec_: duplicate field %S" a.fname)
        else check rest
    | _ -> ()
  in
  check sorted;
  intern (Rec sorted)

let id t = t.id
let hash t = t.hash

let rank_node = function
  | Bot -> 0
  | Null -> 1
  | Bool -> 2
  | Int -> 3
  | Num -> 4
  | Str -> 5
  | Arr _ -> 6
  | Rec _ -> 7
  | Union _ -> 8
  | Any -> 9

(* The order must stay the seed's *structural* order — the union canonical
   form (and therefore every printed type) depends on it, and an id-based
   order would vary run to run. Physical equality gives the O(1) fast path
   on the interned common case. *)
let rec compare a b =
  if a == b then 0
  else
    match (a.node, b.node) with
    | Arr x, Arr y -> compare x y
    | Rec xs, Rec ys -> compare_fields xs ys
    | Union xs, Union ys -> compare_list xs ys
    | na, nb -> Stdlib.compare (rank_node na) (rank_node nb)

and compare_list xs ys =
  match (xs, ys) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | x :: xs', y :: ys' ->
      let c = compare x y in
      if c <> 0 then c else compare_list xs' ys'

and compare_fields xs ys =
  match (xs, ys) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | x :: xs', y :: ys' ->
      let c = String.compare x.fname y.fname in
      if c <> 0 then c
      else
        let c = Bool.compare x.optional y.optional in
        if c <> 0 then c
        else
          let c = compare x.ftype y.ftype in
          if c <> 0 then c else compare_fields xs' ys'

(* interned same-domain nodes resolve on the first test; the structural
   fallback only runs for nodes that crossed a domain boundary *)
let equal a b = a == b || (a.hash = b.hash && compare a b = 0)

let union ts =
  let rec flatten acc = function
    | [] -> acc
    | t :: rest -> (
        match t.node with
        | Union us -> flatten (flatten acc us) rest
        | Bot -> flatten acc rest
        | _ -> flatten (t :: acc) rest)
  in
  let flat = flatten [] ts in
  if List.exists (fun t -> match t.node with Any -> true | _ -> false) flat
  then any
  else
    let sorted = List.sort_uniq compare flat in
    match sorted with [] -> bot | [ t ] -> t | ts -> intern (Union ts)

let rec of_value (v : Json.Value.t) : t =
  match v with
  | Json.Value.Null -> null
  | Json.Value.Bool _ -> bool
  | Json.Value.Int _ -> int
  | Json.Value.Float _ -> num
  | Json.Value.String _ -> str
  | Json.Value.Array vs -> arr (union (List.map of_value vs))
  | Json.Value.Object fields ->
      (* last-wins on duplicate keys, matching the parser default *)
      let seen = Hashtbl.create 8 in
      let uniq =
        List.filter
          (fun (k, _) ->
            if Hashtbl.mem seen k then false
            else begin
              Hashtbl.add seen k ();
              true
            end)
          (List.rev fields)
      in
      rec_ (List.map (fun (k, x) -> field k (of_value x)) uniq)

let rec size t =
  match t.node with
  | Bot | Null | Bool | Int | Num | Str | Any -> 1
  | Arr t -> 1 + size t
  | Rec fields -> 1 + List.fold_left (fun n f -> n + size f.ftype) 0 fields
  | Union ts -> 1 + List.fold_left (fun n t -> n + size t) 0 ts

let rec depth t =
  match t.node with
  | Bot | Null | Bool | Int | Num | Str | Any -> 1
  | Arr t -> 1 + depth t
  | Rec fields -> 1 + List.fold_left (fun n f -> max n (depth f.ftype)) 0 fields
  | Union ts -> List.fold_left (fun n t -> max n (depth t)) 1 ts

let kind_of t =
  match t.node with
  | Bot -> "bottom"
  | Null -> "null"
  | Bool -> "boolean"
  | Int -> "integer"
  | Num -> "number"
  | Str -> "string"
  | Arr _ -> "array"
  | Rec _ -> "record"
  | Union _ -> "union"
  | Any -> "any"

let rec to_string t =
  match t.node with
  | Bot -> "Bot"
  | Null -> "Null"
  | Bool -> "Bool"
  | Int -> "Int"
  | Num -> "Num"
  | Str -> "Str"
  | Any -> "Any"
  | Arr { node = Bot; _ } -> "[]"
  | Arr t -> "[" ^ to_string t ^ "]"
  | Rec fields ->
      let f { fname; optional; ftype } =
        Printf.sprintf "%s%s: %s" fname (if optional then "?" else "") (to_string ftype)
      in
      "{" ^ String.concat ", " (List.map f fields) ^ "}"
  | Union ts -> String.concat " + " (List.map to_string_atom ts)

and to_string_atom t =
  match t.node with
  | Union _ -> "(" ^ to_string t ^ ")"
  | _ -> to_string t

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* --- precise JSON serialization ---------------------------------------- *)

(* Unlike [Interop.to_schema_json] (which targets JSON Schema and loses the
   Int/Num distinction in round trips), this is an exact tagged encoding:
   [of_json (to_json t) = Ok t] for every [t]. Checkpoint journals rely on
   that equation to resume an interrupted merge byte-identically. *)

let rec to_json (t : t) : Json.Value.t =
  let k name = Json.Value.Object [ ("k", Json.Value.String name) ] in
  match t.node with
  | Bot -> k "bot"
  | Null -> k "null"
  | Bool -> k "bool"
  | Int -> k "int"
  | Num -> k "num"
  | Str -> k "str"
  | Any -> k "any"
  | Arr elem ->
      Json.Value.Object
        [ ("k", Json.Value.String "arr"); ("of", to_json elem) ]
  | Rec fields ->
      Json.Value.Object
        [ ("k", Json.Value.String "rec");
          ("fields",
           Json.Value.Array
             (List.map
                (fun f ->
                  Json.Value.Object
                    [ ("name", Json.Value.String f.fname);
                      ("opt", Json.Value.Bool f.optional);
                      ("type", to_json f.ftype) ])
                fields)) ]
  | Union ts ->
      Json.Value.Object
        [ ("k", Json.Value.String "union");
          ("of", Json.Value.Array (List.map to_json ts)) ]

let of_json (v : Json.Value.t) : (t, string) result =
  let ( let* ) = Result.bind in
  let member name = function
    | Json.Value.Object fields -> (
        match List.assoc_opt name fields with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "jtype json: missing %S" name))
    | _ -> Error "jtype json: expected an object"
  in
  let rec go v =
    let* tag = member "k" v in
    match tag with
    | Json.Value.String "bot" -> Ok bot
    | Json.Value.String "null" -> Ok null
    | Json.Value.String "bool" -> Ok bool
    | Json.Value.String "int" -> Ok int
    | Json.Value.String "num" -> Ok num
    | Json.Value.String "str" -> Ok str
    | Json.Value.String "any" -> Ok any
    | Json.Value.String "arr" ->
        let* elem = member "of" v in
        let* elem = go elem in
        Ok (arr elem)
    | Json.Value.String "rec" -> (
        let* fields = member "fields" v in
        match fields with
        | Json.Value.Array fs ->
            let* fields =
              List.fold_left
                (fun acc fv ->
                  let* acc = acc in
                  let* name = member "name" fv in
                  let* opt = member "opt" fv in
                  let* ftype = member "type" fv in
                  match (name, opt) with
                  | Json.Value.String name, Json.Value.Bool optional ->
                      let* ftype = go ftype in
                      Ok (field ~optional name ftype :: acc)
                  | _ -> Error "jtype json: malformed record field")
                (Ok []) fs
            in
            (try Ok (rec_ (List.rev fields))
             with Invalid_argument m -> Error m)
        | _ -> Error "jtype json: rec fields must be an array")
    | Json.Value.String "union" -> (
        let* branches = member "of" v in
        match branches with
        | Json.Value.Array bs ->
            let* ts =
              List.fold_left
                (fun acc b ->
                  let* acc = acc in
                  let* t = go b in
                  Ok (t :: acc))
                (Ok []) bs
            in
            Ok (union (List.rev ts))
        | _ -> Error "jtype json: union branches must be an array")
    | Json.Value.String other -> Error ("jtype json: unknown tag " ^ other)
    | _ -> Error "jtype json: tag must be a string"
  in
  go v
