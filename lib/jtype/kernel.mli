(** Per-domain counters for the hash-consed type kernel.

    {!Types} (interning) and {!Merge} (memoized fusion) keep their caches
    domain-local — no cross-domain locking on the hot path — so their
    statistics are domain-local too. A [counter] is a name; each domain
    that touches it gets a private cell, and {!totals} sums the cells of
    every domain that ever ran, grouped by name. The counters feed the
    [kernel.*] entries of [--stats-json] via {!Core.Telemetry}. *)

type counter

val counter : string -> counter
(** Declare a named counter (module-initialization time). Cheap: the
    per-domain cell is only allocated on the domain's first {!hit}. *)

val hit : counter -> unit
(** Increment this domain's cell by one. Lock-free after first touch. *)

val add : counter -> int -> unit
(** Increment this domain's cell by [n]. *)

val totals : unit -> (string * int) list
(** Sum of every domain's cells, grouped by counter name, sorted by name.
    Only counters that were actually touched appear. *)
