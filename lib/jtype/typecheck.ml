type mismatch = { at : Json.Pointer.t; expected : Types.t; got : Json.Value.t }

let string_of_mismatch { at; expected; got } =
  Printf.sprintf "at %s: expected %s, got %s"
    (match Json.Pointer.to_string at with "" -> "<root>" | s -> s)
    (Types.to_string expected)
    (Json.Printer.to_string got)

exception Mismatch of mismatch

let rec check_at at (v : Json.Value.t) (t : Types.t) =
  let fail () = raise (Mismatch { at; expected = t; got = v }) in
  match (t.Types.node, v) with
  | Types.Any, _ -> ()
  | Types.Bot, _ -> fail ()
  | Types.Null, Json.Value.Null -> ()
  | Types.Bool, Json.Value.Bool _ -> ()
  | Types.Int, Json.Value.Int _ -> ()
  | Types.Num, (Json.Value.Int _ | Json.Value.Float _) -> ()
  | Types.Str, Json.Value.String _ -> ()
  | Types.Arr elem, Json.Value.Array vs ->
      List.iteri
        (fun i x -> check_at (Json.Pointer.append at (Json.Pointer.Index i)) x elem)
        vs
  | Types.Rec fields, Json.Value.Object obj ->
      List.iter
        (fun f ->
          match List.assoc_opt f.Types.fname obj with
          | Some x ->
              check_at (Json.Pointer.append at (Json.Pointer.Key f.Types.fname)) x
                f.Types.ftype
          | None -> if not f.Types.optional then fail ())
        fields;
      (* closed records: no extra fields *)
      List.iter
        (fun (k, _) ->
          if not (List.exists (fun f -> String.equal f.Types.fname k) fields) then
            fail ())
        obj
  | Types.Union ts, _ ->
      if
        not
          (List.exists
             (fun branch ->
               match check_at at v branch with
               | () -> true
               | exception Mismatch _ -> false)
             ts)
      then fail ()
  | (Types.Null | Types.Bool | Types.Int | Types.Num | Types.Str | Types.Arr _
    | Types.Rec _), _ ->
      fail ()

let check v t =
  match check_at [] v t with () -> Ok () | exception Mismatch m -> Error m

let member v t = Result.is_ok (check v t)

(* --- subtyping -------------------------------------------------------- *)

let rec subtype (a : Types.t) (b : Types.t) =
  a == b
  || match (a.Types.node, b.Types.node) with
  | Types.Bot, _ -> true
  | _, Types.Any -> true
  | Types.Any, _ -> false
  | _, Types.Bot -> false
  | Types.Null, Types.Null | Types.Bool, Types.Bool | Types.Str, Types.Str -> true
  | Types.Int, (Types.Int | Types.Num) -> true
  | Types.Num, Types.Num -> true
  | Types.Arr x, Types.Arr y -> subtype x y
  | Types.Rec xs, Types.Rec ys -> subtype_fields xs ys
  | Types.Union ts, _ -> List.for_all (fun t -> subtype t b) ts
  | _, Types.Union us -> List.exists (fun u -> subtype a u) us
  | (Types.Null | Types.Bool | Types.Int | Types.Num | Types.Str | Types.Arr _
    | Types.Rec _), _ ->
      false

(* Record subtyping with closed records: a record type xs is included in ys
   iff every value of xs is a value of ys. Every field of xs must exist in
   ys with a compatible type, and every mandatory field of ys must be
   mandatory in xs. Fields of ys absent from xs must be optional. *)
and subtype_fields xs ys =
  let find name fs = List.find_opt (fun f -> String.equal f.Types.fname name) fs in
  List.for_all
    (fun (x : Types.field) ->
      match find x.Types.fname ys with
      | None -> false (* closed supertype forbids the extra field *)
      | Some y ->
          subtype x.Types.ftype y.Types.ftype
          && ((not x.Types.optional) || y.Types.optional))
    xs
  && List.for_all
       (fun (y : Types.field) ->
         match find y.Types.fname xs with
         | Some _ -> true
         | None -> y.Types.optional)
       ys

let precision a b =
  match (subtype a b, subtype b a) with
  | true, true -> `Equal
  | true, false -> `Less
  | false, true -> `Greater
  | false, false -> `Incomparable
