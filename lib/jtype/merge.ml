type equiv = Kind | Label

let equiv_to_string = function Kind -> "kind" | Label -> "label"

(* --- per-domain memo caches --------------------------------------------- *)

(* Fusion is memoized on node identity: hash-consing (Types) guarantees
   that within a domain, structurally equal inputs are physically equal,
   so a pair of ids determines the (purely structural) result. Keys are
   normalized commutatively — merge and fuse are commutative up to
   structural identity (the algebra the determinism tests pin down), so
   (a ⊕ b) and (b ⊕ a) share one entry under (min id, max id). Values
   hold results strongly; a wholesale clear at [cache_capacity] bounds
   both memory and stale-key accumulation (ids are never reused, so an
   entry whose operand died is unreachable, not wrong).

   Each domain owns its caches (Domain.DLS): no locking on the hot path,
   and a worker's warm cache dies with the domain. Memoized results are
   structurally determined, so sequential and sharded runs print
   byte-identical types no matter which domain computed what. *)

type caches = {
  merge_kind : (int * int, Types.t) Hashtbl.t;
  merge_label : (int * int, Types.t) Hashtbl.t;
  fuse_kind : (int * int, Types.t option) Hashtbl.t;
  fuse_label : (int * int, Types.t option) Hashtbl.t;
  simp_kind : (int, Types.t) Hashtbl.t;
  simp_label : (int, Types.t) Hashtbl.t;
}

let cache_capacity = 1 lsl 17

let caches_key : caches Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { merge_kind = Hashtbl.create 1024;
        merge_label = Hashtbl.create 1024;
        fuse_kind = Hashtbl.create 1024;
        fuse_label = Hashtbl.create 1024;
        simp_kind = Hashtbl.create 1024;
        simp_label = Hashtbl.create 1024 })

let memo_on = Atomic.make true
let set_memoize b = Atomic.set memo_on b
let memoize_enabled () = Atomic.get memo_on

let cache_size () =
  let c = Domain.DLS.get caches_key in
  Hashtbl.length c.merge_kind + Hashtbl.length c.merge_label
  + Hashtbl.length c.fuse_kind + Hashtbl.length c.fuse_label
  + Hashtbl.length c.simp_kind + Hashtbl.length c.simp_label

let clear_caches () =
  let c = Domain.DLS.get caches_key in
  Hashtbl.reset c.merge_kind;
  Hashtbl.reset c.merge_label;
  Hashtbl.reset c.fuse_kind;
  Hashtbl.reset c.fuse_label;
  Hashtbl.reset c.simp_kind;
  Hashtbl.reset c.simp_label

let c_merge_hit = Kernel.counter "kernel.merge.hits"
let c_merge_miss = Kernel.counter "kernel.merge.misses"
let c_fuse_hit = Kernel.counter "kernel.fuse.hits"
let c_fuse_miss = Kernel.counter "kernel.fuse.misses"
let c_simp_hit = Kernel.counter "kernel.simplify.hits"
let c_simp_miss = Kernel.counter "kernel.simplify.misses"
let c_clears = Kernel.counter "kernel.cache.clears"

let pair_key a b =
  let ia = Types.id a and ib = Types.id b in
  if ia <= ib then (ia, ib) else (ib, ia)

let memoized tbl ~hit ~miss key compute =
  match Hashtbl.find_opt tbl key with
  | Some r ->
      Kernel.hit hit;
      r
  | None ->
      Kernel.hit miss;
      let r = compute () in
      if Hashtbl.length tbl >= cache_capacity then begin
        Hashtbl.reset tbl;
        Kernel.hit c_clears
      end;
      Hashtbl.add tbl key r;
      r

(* --- fusion -------------------------------------------------------------- *)

(* Merge the field lists of two records that have been deemed equivalent.
   Both lists are sorted by name (Types invariant). A field present on only
   one side becomes optional. The field-list merge is memoized through the
   fuse cache: the Rec × Rec entry pins the fully merged field list. *)
let rec merge_fields ~equiv xs ys =
  match (xs, ys) with
  | [], rest | rest, [] ->
      List.map (fun f -> { f with Types.optional = true }) rest
  | (x :: xs' as xl), (y :: ys' as yl) ->
      let c = String.compare x.Types.fname y.Types.fname in
      if c = 0 then
        Types.field ~optional:(x.Types.optional || y.Types.optional) x.Types.fname
          (merge_canonical ~equiv x.Types.ftype y.Types.ftype)
        :: merge_fields ~equiv xs' ys'
      else if c < 0 then { x with Types.optional = true } :: merge_fields ~equiv xs' yl
      else { y with Types.optional = true } :: merge_fields ~equiv xl ys'

(* Two record types are label-equivalent when they declare the same field
   names (optionality ignored: an optional field still names a label). *)
and same_labels xs ys =
  List.length xs = List.length ys
  && List.for_all2 (fun x y -> String.equal x.Types.fname y.Types.fname) xs ys

(* Try to fuse two non-union, non-Bot branches; None when the equivalence
   keeps them as distinct union branches. Scalar pairs resolve with a
   constant match; only the composite pairs (Arr × Arr, Rec × Rec — the
   ones that recurse) go through the memo table. *)
and fuse ~equiv (a : Types.t) (b : Types.t) : Types.t option =
  if a == b then Some a (* idempotence: canonical branches fuse to themselves *)
  else
    match (a.Types.node, b.Types.node) with
    | Types.Any, _ | _, Types.Any -> Some Types.any
    | Types.Null, Types.Null -> Some Types.null
    | Types.Bool, Types.Bool -> Some Types.bool
    | Types.Int, Types.Int -> Some Types.int
    | Types.Str, Types.Str -> Some Types.str
    | (Types.Num | Types.Int), (Types.Num | Types.Int) -> Some Types.num
    | Types.Arr _, Types.Arr _ | Types.Rec _, Types.Rec _ ->
        if not (Atomic.get memo_on) then fuse_composite ~equiv a b
        else
          let c = Domain.DLS.get caches_key in
          let tbl = match equiv with Kind -> c.fuse_kind | Label -> c.fuse_label in
          memoized tbl ~hit:c_fuse_hit ~miss:c_fuse_miss (pair_key a b)
            (fun () -> fuse_composite ~equiv a b)
    | _ -> None

and fuse_composite ~equiv a b =
  match (a.Types.node, b.Types.node) with
  | Types.Arr x, Types.Arr y -> Some (Types.arr (merge_canonical ~equiv x y))
  | Types.Rec xs, Types.Rec ys -> (
      match equiv with
      | Kind -> Some (Types.rec_ (merge_fields ~equiv xs ys))
      | Label ->
          if same_labels xs ys then Some (Types.rec_ (merge_fields ~equiv xs ys))
          else None)
  | _ -> assert false

(* Insert a branch into an accumulated list of pairwise-unfusable branches.
   The quadratic rescan survives, but each candidate × branch probe is an
   O(1) memo hit once the pair has been seen — this is where the fuse
   cache pays for union-heavy corpora. *)
and insert ~equiv branch acc =
  let rec go seen = function
    | [] -> List.rev (branch :: seen)
    | candidate :: rest -> (
        match fuse ~equiv candidate branch with
        | Some fused ->
            (* fusing may enable further fusions (e.g. Int then Num) *)
            insert ~equiv fused (List.rev_append seen rest)
        | None -> go (candidate :: seen) rest)
  in
  go [] acc

(* Merge two types whose subterms are already simplified under [equiv]
   ("canonical"). [fuse] merges subtrees with [merge_canonical], so by
   induction the output is canonical — this is what keeps a fold over a
   collection linear instead of re-traversing the accumulator each step. *)
and merge_canonical ~equiv a b =
  if a == b then a (* ⊕ is idempotent on canonical types *)
  else
    match (a.Types.node, b.Types.node) with
    | Types.Bot, _ -> b (* Bot is the identity; b is already canonical *)
    | _, Types.Bot -> a
    | _ ->
        if not (Atomic.get memo_on) then merge_canonical_raw ~equiv a b
        else
          let c = Domain.DLS.get caches_key in
          let tbl = match equiv with Kind -> c.merge_kind | Label -> c.merge_label in
          memoized tbl ~hit:c_merge_hit ~miss:c_merge_miss (pair_key a b)
            (fun () -> merge_canonical_raw ~equiv a b)

and merge_canonical_raw ~equiv a b =
  let branches t =
    match t.Types.node with Types.Union ts -> ts | Types.Bot -> [] | _ -> [ t ]
  in
  Types.union
    (List.fold_left (fun acc t -> insert ~equiv t acc) [] (branches a @ branches b))

(* Simplify the subterms of a single branch. *)
and push_down ~equiv (t : Types.t) : Types.t =
  match t.Types.node with
  | Types.Bot | Types.Null | Types.Bool | Types.Int | Types.Num | Types.Str
  | Types.Any ->
      t
  | Types.Arr x -> Types.arr (simplify ~equiv x)
  | Types.Rec fields ->
      Types.rec_
        (List.map
           (fun f -> { f with Types.ftype = simplify ~equiv f.Types.ftype })
           fields)
  | Types.Union ts -> Types.union (List.map (push_down ~equiv) ts)

(* Memoized on the node id: NDJSON corpora re-derive the same document
   types over and over, and simplify is the per-document preprocessing
   step of every merge fold. *)
and simplify ~equiv t =
  match t.Types.node with
  | Types.Bot | Types.Null | Types.Bool | Types.Int | Types.Num | Types.Str
  | Types.Any ->
      t
  | _ ->
      if not (Atomic.get memo_on) then simplify_raw ~equiv t
      else
        let c = Domain.DLS.get caches_key in
        let tbl = match equiv with Kind -> c.simp_kind | Label -> c.simp_label in
        memoized tbl ~hit:c_simp_hit ~miss:c_simp_miss (Types.id t)
          (fun () -> simplify_raw ~equiv t)

and simplify_raw ~equiv t =
  match t.Types.node with
  | Types.Union ts ->
      let ts = List.map (push_down ~equiv) ts in
      Types.union (List.fold_left (fun acc t -> insert ~equiv t acc) [] ts)
  | _ -> push_down ~equiv t

and merge ~equiv a b =
  merge_canonical ~equiv (simplify ~equiv a) (simplify ~equiv b)

let merge_all ~equiv = function
  | [] -> Types.bot
  | t :: ts ->
      List.fold_left
        (fun acc t -> merge_canonical ~equiv acc (simplify ~equiv t))
        (simplify ~equiv t) ts
