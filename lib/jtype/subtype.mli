(** Coinductive subtyping over the hash-consed kernel, with witnesses.

    [check a b] decides whether every value of type [a] also has type [b]
    under the exact denotational semantics of {!Typecheck.member} (closed
    records, [Int] ⊆ [Num], unions as set union). Unlike the syntactic
    approximation {!Typecheck.subtype}, a negative answer here carries a
    {b witness}: a concrete JSON value [w] with [member w a] and
    [not (member w b)], verified before it is returned. When the decided
    fragment runs out — distribution of a record type over a union of
    record types is the one genuinely hard case — the verdict is
    [Unknown] with the reason, never an unsound [Sub].

    The procedure is memoized per domain on interned node-id pairs
    [(Types.id a, Types.id b)]: wide union types and repeated queries are
    O(1) after first computation, and an in-flight pair re-entered during
    its own computation is answered [Sub] (the coinductive hypothesis), so
    the procedure terminates even on cyclic type graphs should the kernel
    ever intern them. Counters [subtype.queries], [subtype.hits] and
    [subtype.unknown] feed {!Kernel.totals} and from there [--stats-json]. *)

type verdict =
  | Sub  (** every value of [a] is a value of [b] *)
  | Not_sub of Json.Value.t
      (** a verified witness: a member of [a] that [b] rejects *)
  | Unknown of string  (** outside the decided fragment; the reason why *)

val check : Types.t -> Types.t -> verdict
(** [check a b] — three-valued, sound in both directions: [Sub] only if
    [a] ⊆ [b]; [Not_sub w] only with a witness that passed the
    [member w a && not (member w b)] self-check. *)

val is_sub : Types.t -> Types.t -> bool
(** [is_sub a b] is [check a b = Sub]. *)

val inhabitant : Types.t -> Json.Value.t option
(** A canonical member of the type, or [None] iff the type is empty
    ([Bot], or a record with an uninhabited mandatory field, ...).
    Records materialize mandatory fields only. *)

val inhabited : Types.t -> bool

val verdict_to_string : verdict -> string
