(* Per-domain counters for the hash-consed type kernel.

   The kernel (interning in Types, memo caches in Merge) runs on every
   domain of the parallel pipelines, so its statistics cannot live in one
   mutable cell without cross-domain races — and taking a lock on the
   fusion hot path would defeat the point of per-domain caches. Instead
   each (counter, domain) pair gets a private cell, created on the
   domain's first touch and registered in a global list under a mutex;
   [totals] folds the registry by counter name. Reading while other
   domains are mid-flight is safe (cells are plain ints, torn reads
   impossible on word-sized values); the pipelines only snapshot around
   joined parallel sections anyway. *)

type cell = { name : string; mutable count : int }

let registry_mu = Mutex.create ()
let registry : cell list ref = ref []

type counter = cell Domain.DLS.key

let counter name : counter =
  Domain.DLS.new_key (fun () ->
      let c = { name; count = 0 } in
      Mutex.protect registry_mu (fun () -> registry := c :: !registry);
      c)

let hit (k : counter) =
  let c = Domain.DLS.get k in
  c.count <- c.count + 1

let add (k : counter) n =
  let c = Domain.DLS.get k in
  c.count <- c.count + n

let totals () =
  let cells = Mutex.protect registry_mu (fun () -> !registry) in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun c ->
      let prev = Option.value ~default:0 (Hashtbl.find_opt tbl c.name) in
      Hashtbl.replace tbl c.name (prev + c.count))
    cells;
  List.sort Stdlib.compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
