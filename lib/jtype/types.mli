(** The structural type algebra for JSON values.

    This is the type language of the parametric schema-inference line of
    work (Baazizi et al., EDBT'17/VLDBJ'19) and — not coincidentally — the
    fragment shared by TypeScript and Swift that the tutorial highlights:
    records with optional fields, homogeneous arrays, and union types.

    Types are kept in a canonical form maintained by the smart constructors:
    record fields sorted by name, unions flattened / sorted / deduplicated
    with [Bot] removed and [Any] absorbing.

    {b Hash-consed kernel.} Since PR 5 the representation is hash-consed:
    [t] is a private record wrapping the constructor layer {!node} with a
    globally unique [id] and a precomputed structural [hash]. The smart
    constructors intern every node in a per-domain weak table, so within a
    domain one physical node stands for each distinct structural type —
    [equal] is pointer equality in the common case, [compare] short-circuits
    on shared subtrees, and {!Merge} memoizes fusion on [(id, id)] pairs.
    Nodes that cross a domain boundary (shard hand-off) are merely
    re-interned on the receiving domain; structural equality and the hash
    (computed from child hashes, not ids) are domain-independent. Pattern
    match through the [node] field: [match t.node with Arr elem -> ...]. *)

type t = private { id : int; hash : int; node : node }

and node =
  | Bot  (** the empty type: no value has it; identity of union *)
  | Null
  | Bool
  | Int
  | Num  (** any number; [Int] is a subtype *)
  | Str
  | Arr of t  (** element type; [Arr bot] is the type of the empty array *)
  | Rec of field list  (** sorted by field name *)
  | Union of t list  (** canonical: ≥2 branches, flat, sorted, duplicate-free *)
  | Any  (** top *)

and field = { fname : string; optional : bool; ftype : t }

(** {1 Smart constructors} — the only way to build values of the type. *)

val bot : t
val null : t
val bool : t
val int : t
val num : t
val str : t
val arr : t -> t
val rec_ : field list -> t
(** Sorts fields; duplicate names are an error. @raise Invalid_argument *)

val field : ?optional:bool -> string -> t -> field
val union : t list -> t
(** Canonicalizing n-ary union: flattens nested unions, drops [Bot] and
    syntactic duplicates, absorbs into [Any]. [union []] = [Bot],
    [union [t]] = [t]. *)

val any : t

(** {1 Typing of values} *)

val of_value : Json.Value.t -> t
(** The typing judgment: the most precise type of a single value. Arrays
    type as [arr (union (map of_value elements))]; all record fields are
    required. *)

(** {1 Structure} *)

val id : t -> int
(** Globally unique node identity (never reused, stable for the process
    lifetime) — the memo-cache key of {!Merge}. *)

val hash : t -> int
(** Precomputed structural hash: equal for structurally equal types on any
    domain, O(1) to read. *)

val compare : t -> t -> int
(** Total syntactic order (used for the union canonical form). Pointer
    equality short-circuits shared subtrees; the order itself is purely
    structural and thus deterministic across runs and domains. *)

val equal : t -> t -> bool
(** Pointer equality on the interned fast path; falls back to hash-guarded
    structural comparison for nodes interned on different domains. *)

val size : t -> int
(** Number of type nodes — the "schema size" measure of the experiments. *)

val depth : t -> int
val kind_of : t -> string
(** Coarse constructor name, e.g. ["record"], used by kind-equivalence. *)

(** {1 Printing} *)

val to_string : t -> string
(** Concrete syntax of the inference papers: [{a: Int, b?: Str} + Null],
    [[Int + Str]], [⊥], [⊤]. *)

val pp : Format.formatter -> t -> unit

(** {1 Exact JSON serialization}

    A tagged encoding with the round-trip law [of_json (to_json t) = Ok t]
    — unlike the JSON Schema translation in {!Interop}, nothing is widened
    or lost. {!Core.Checkpoint} journals partial merges in this form. *)

val to_json : t -> Json.Value.t
val of_json : Json.Value.t -> (t, string) result
