(* Length of the valid UTF-8 scalar sequence starting at [s.[i]], or 0.
   Encodes the exact RFC 3629 ranges: no overlong forms (C0/C1, E0 80-9F,
   F0 80-8F), no surrogates (ED A0-BF), nothing above U+10FFFF (F4 90+). *)
let utf8_scalar_len s i =
  let n = String.length s in
  let byte k = Char.code s.[k] in
  let cont k = k < n && byte k land 0xC0 = 0x80 in
  let b0 = byte i in
  if b0 < 0x80 then 1
  else if b0 < 0xC2 then 0 (* continuation byte or overlong lead *)
  else if b0 < 0xE0 then if cont (i + 1) then 2 else 0
  else if b0 < 0xF0 then begin
    let lo, hi =
      if b0 = 0xE0 then (0xA0, 0xBF)
      else if b0 = 0xED then (0x80, 0x9F) (* exclude surrogates *)
      else (0x80, 0xBF)
    in
    if i + 1 < n && byte (i + 1) >= lo && byte (i + 1) <= hi && cont (i + 2)
    then 3
    else 0
  end
  else if b0 <= 0xF4 then begin
    let lo, hi =
      if b0 = 0xF0 then (0x90, 0xBF)
      else if b0 = 0xF4 then (0x80, 0x8F)
      else (0x80, 0xBF)
    in
    if i + 1 < n && byte (i + 1) >= lo && byte (i + 1) <= hi && cont (i + 2)
       && cont (i + 3)
    then 4
    else 0
  end
  else 0

(* A JSON document is UTF-8 by definition (RFC 8259 §8.1), so emitting raw
   bytes ≥ 0x80 that do not form valid sequences would produce output no
   conforming parser (including ours on a strict round trip) accepts. Valid
   multi-byte sequences pass through untouched; each byte that is not part
   of one is replaced by U+FFFD, one replacement character per bogus byte. *)
let replacement = "\xEF\xBF\xBD" (* U+FFFD *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
     | '"' -> Buffer.add_string buf "\\\""; incr i
     | '\\' -> Buffer.add_string buf "\\\\"; incr i
     | '\n' -> Buffer.add_string buf "\\n"; incr i
     | '\r' -> Buffer.add_string buf "\\r"; incr i
     | '\t' -> Buffer.add_string buf "\\t"; incr i
     | '\b' -> Buffer.add_string buf "\\b"; incr i
     | '\012' -> Buffer.add_string buf "\\f"; incr i
     | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c));
         incr i
     | c when Char.code c < 0x80 -> Buffer.add_char buf c; incr i
     | _ -> (
         match utf8_scalar_len s !i with
         | 0 ->
             Buffer.add_string buf replacement;
             incr i
         | len ->
             Buffer.add_substring buf s !i len;
             i := !i + len))
  done;
  Buffer.add_char buf '"'

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  add_escaped buf s;
  Buffer.contents buf

let rec add_compact buf (v : Value.t) =
  match v with
  | Value.Null -> Buffer.add_string buf "null"
  | Value.Bool true -> Buffer.add_string buf "true"
  | Value.Bool false -> Buffer.add_string buf "false"
  | Value.Int n -> Buffer.add_string buf (string_of_int n)
  | Value.Float f -> Buffer.add_string buf (Number.print_float f)
  | Value.String s -> add_escaped buf s
  | Value.Array vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          add_compact buf x)
        vs;
      Buffer.add_char buf ']'
  | Value.Object fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          add_compact buf x)
        fields;
      Buffer.add_char buf '}'

let add_pretty ~indent buf v =
  let pad level = Buffer.add_string buf (String.make (level * indent) ' ') in
  let rec go level (v : Value.t) =
    match v with
    | Value.Array [] -> Buffer.add_string buf "[]"
    | Value.Object [] -> Buffer.add_string buf "{}"
    | Value.Array vs ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (level + 1);
            go (level + 1) x)
          vs;
        Buffer.add_char buf '\n';
        pad level;
        Buffer.add_char buf ']'
    | Value.Object fields ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (level + 1);
            add_escaped buf k;
            Buffer.add_string buf ": ";
            go (level + 1) x)
          fields;
        Buffer.add_char buf '\n';
        pad level;
        Buffer.add_char buf '}'
    | scalar -> add_compact buf scalar
  in
  go 0 v

let to_buffer buf v = add_compact buf v

let to_string v =
  let buf = Buffer.create 256 in
  add_compact buf v;
  Buffer.contents buf

let to_string_pretty ?(indent = 2) v =
  let buf = Buffer.create 256 in
  add_pretty ~indent buf v;
  Buffer.contents buf

let to_channel oc v = output_string oc (to_string v)
let pp ppf v = Format.pp_print_string ppf (to_string v)
let pp_pretty ppf v = Format.pp_print_string ppf (to_string_pretty v)

(* Make Value.pp usable without depending on this module. *)
let () = Value.pp_ref := pp
