(** JSON serialization.

    [to_string] produces compact output; [to_string_pretty] produces
    2-space-indented output. Both escape control characters, quotes and
    backslashes, and print floats with the shortest round-tripping literal
    (see {!Number.print_float}).

    Output is always valid UTF-8 (RFC 8259 §8.1): well-formed multi-byte
    sequences in strings pass through byte-for-byte, while every byte that
    is not part of one — stray continuation bytes, overlong encodings,
    surrogate encodings, truncated sequences — is replaced by one U+FFFD
    replacement character, so printed documents re-parse and checkpoint
    journals survive arbitrary byte junk in quarantined inputs. *)

val escape_string : string -> string
(** The JSON string literal for [s], including the surrounding quotes. *)

val to_string : Value.t -> string
val to_string_pretty : ?indent:int -> Value.t -> string

val to_buffer : Buffer.t -> Value.t -> unit
val to_channel : out_channel -> Value.t -> unit

val pp : Format.formatter -> Value.t -> unit
(** Compact form, suitable for Alcotest testables and logs. *)

val pp_pretty : Format.formatter -> Value.t -> unit
