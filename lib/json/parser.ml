type dup_policy = Keep_first | Keep_last | Reject | Keep_all

type options = {
  dup_keys : dup_policy;
  max_depth : int;
  allow_trailing : bool;
  max_doc_bytes : int option;
  max_nodes : int option;
  max_string_bytes : int option;
}

let default_options =
  { dup_keys = Keep_last;
    max_depth = 512;
    allow_trailing = false;
    max_doc_bytes = None;
    max_nodes = None;
    max_string_bytes = None }

type budget_violation =
  | Depth_exceeded
  | Bytes_exceeded
  | Nodes_exceeded
  | String_exceeded
  | Documents_exceeded

type error_kind = Syntax | Budget_exceeded of budget_violation

type error = { position : Lexer.position; message : string; kind : error_kind }

exception Parse_error of error

let violation_name = function
  | Depth_exceeded -> "max-depth"
  | Bytes_exceeded -> "max-bytes"
  | Nodes_exceeded -> "max-nodes"
  | String_exceeded -> "max-string"
  | Documents_exceeded -> "max-docs"

let is_budget_error e =
  match e.kind with Budget_exceeded _ -> true | Syntax -> false

let string_of_error { position; message; _ } =
  Printf.sprintf "line %d, column %d: %s" position.Lexer.line position.Lexer.column
    message

let fail ?(kind = Syntax) position message =
  raise (Parse_error { position; message; kind })

let apply_dup_policy policy fields_rev last_pos =
  (* [fields_rev] is in reverse document order. *)
  let fields = List.rev fields_rev in
  match policy with
  | Keep_all -> fields
  | Reject ->
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (k, _) ->
          if Hashtbl.mem seen k then
            fail last_pos (Printf.sprintf "duplicate key %S" k)
          else Hashtbl.add seen k ())
        fields;
      fields
  | Keep_first ->
      let seen = Hashtbl.create 8 in
      List.filter
        (fun (k, _) ->
          if Hashtbl.mem seen k then false
          else begin
            Hashtbl.add seen k ();
            true
          end)
        fields
  | Keep_last ->
      (* JavaScript object semantics: a repeated key keeps its first
         position but its last value. *)
      let latest = Hashtbl.create 8 in
      List.iter (fun (k, v) -> Hashtbl.replace latest k v) fields;
      let seen = Hashtbl.create 8 in
      List.filter_map
        (fun (k, _) ->
          if Hashtbl.mem seen k then None
          else begin
            Hashtbl.add seen k ();
            Some (k, Hashtbl.find latest k)
          end)
        fields

let parse_value options lx =
  (* resource accounting: nodes and bytes are counted per document, so the
     caller resets them simply by calling [parse_value] again *)
  let nodes = ref 0 in
  let start_offset = (Lexer.position lx).Lexer.offset in
  let spend_node pos =
    incr nodes;
    match options.max_nodes with
    | Some limit when !nodes > limit ->
        fail ~kind:(Budget_exceeded Nodes_exceeded) pos
          (Printf.sprintf "document exceeds %d nodes" limit)
    | _ -> ()
  in
  let check_bytes pos =
    match options.max_doc_bytes with
    | Some limit when pos.Lexer.offset - start_offset > limit ->
        fail ~kind:(Budget_exceeded Bytes_exceeded) pos
          (Printf.sprintf "document exceeds %d bytes" limit)
    | _ -> ()
  in
  let rec value depth =
    if depth > options.max_depth then
      fail ~kind:(Budget_exceeded Depth_exceeded) (Lexer.position lx)
        "maximum nesting depth exceeded";
    let tok, pos = Lexer.next lx in
    spend_node pos;
    check_bytes pos;
    match tok with
    | Lexer.Null_tok -> Value.Null
    | Lexer.True -> Value.Bool true
    | Lexer.False -> Value.Bool false
    | Lexer.Number_tok (Number.Int_lit n) -> Value.Int n
    | Lexer.Number_tok (Number.Float_lit f) -> Value.Float f
    | Lexer.String_tok s -> Value.String s
    | Lexer.Lbracket -> array depth pos
    | Lexer.Lbrace -> object_ depth pos
    | (Lexer.Rbrace | Lexer.Rbracket | Lexer.Colon | Lexer.Comma | Lexer.Eof) as t ->
        fail pos (Printf.sprintf "expected a value, got %s" (Lexer.token_name t))
  and array depth _open_pos =
    match Lexer.peek lx with
    | Lexer.Rbracket, _ ->
        ignore (Lexer.next lx);
        Value.Array []
    | _ ->
        let rec elements acc =
          let v = value (depth + 1) in
          let tok, pos = Lexer.next lx in
          match tok with
          | Lexer.Comma -> elements (v :: acc)
          | Lexer.Rbracket -> List.rev (v :: acc)
          | t -> fail pos (Printf.sprintf "expected ',' or ']', got %s" (Lexer.token_name t))
        in
        Value.Array (elements [])
  and object_ depth _open_pos =
    match Lexer.peek lx with
    | Lexer.Rbrace, _ ->
        ignore (Lexer.next lx);
        Value.Object []
    | _ ->
        let rec fields acc =
          let tok, pos = Lexer.next lx in
          match tok with
          | Lexer.String_tok key -> (
              let tok, pos = Lexer.next lx in
              match tok with
              | Lexer.Colon -> (
                  let v = value (depth + 1) in
                  let tok, pos = Lexer.next lx in
                  match tok with
                  | Lexer.Comma -> fields ((key, v) :: acc)
                  | Lexer.Rbrace -> ((key, v) :: acc, pos)
                  | t ->
                      fail pos
                        (Printf.sprintf "expected ',' or '}', got %s" (Lexer.token_name t)))
              | t -> fail pos (Printf.sprintf "expected ':', got %s" (Lexer.token_name t)))
          | t -> fail pos (Printf.sprintf "expected a field name, got %s" (Lexer.token_name t))
        in
        let fields_rev, close_pos = fields [] in
        Value.Object (apply_dup_policy options.dup_keys fields_rev close_pos)
  in
  let v = value 0 in
  check_bytes (Lexer.position lx);
  (v, !nodes)

(* Per-document observability: emitted by every entry point below on the
   [telemetry] sink (default {!Telemetry.nop}, one branch per call).
   Headroom histograms record how close each document came to its budget —
   the early-warning signal for a corpus drifting toward its caps. *)
let emit_doc tele options ~bytes ~nodes =
  if Telemetry.is_recording tele then begin
    Telemetry.count tele "parse.docs" 1;
    Telemetry.count tele "parse.bytes" bytes;
    Telemetry.count tele "parse.nodes" nodes;
    Telemetry.observe tele "parse.doc_bytes" (float_of_int bytes);
    Telemetry.observe tele "parse.doc_nodes" (float_of_int nodes);
    (match options.max_doc_bytes with
     | Some limit ->
         Telemetry.observe tele "parse.budget_headroom_bytes"
           (float_of_int (limit - bytes))
     | None -> ());
    match options.max_nodes with
    | Some limit ->
        Telemetry.observe tele "parse.budget_headroom_nodes"
          (float_of_int (limit - nodes))
    | None -> ()
  end

let emit_error tele (e : error) =
  if Telemetry.is_recording tele then
    match e.kind with
    | Syntax -> Telemetry.count tele "parse.errors.syntax" 1
    | Budget_exceeded v ->
        Telemetry.count tele ("parse.errors.budget." ^ violation_name v) 1

let run lx f =
  try Ok (f ()) with
  | Parse_error e -> Error e
  | Lexer.Lex_error (position, message) -> Error { position; message; kind = Syntax }
  | Lexer.Limit_error (position, message) ->
      Error { position; message; kind = Budget_exceeded String_exceeded }
  | Stack_overflow ->
      Error
        { position = Lexer.position lx;
          message = "nesting too deep (stack overflow)";
          kind = Budget_exceeded Depth_exceeded }

let lexer_of ?pos options src =
  Lexer.create ?pos ?max_string_bytes:options.max_string_bytes src

let with_error_telemetry tele result =
  (match result with Error e -> emit_error tele e | Ok _ -> ());
  result

let parse ?(options = default_options) ?(telemetry = Telemetry.nop) src =
  let lx = lexer_of options src in
  with_error_telemetry telemetry
    (run lx (fun () ->
         let start = (Lexer.position lx).Lexer.offset in
         let v, nodes = parse_value options lx in
         if not options.allow_trailing then begin
           match Lexer.next lx with
           | Lexer.Eof, _ -> ()
           | t, pos ->
               fail pos (Printf.sprintf "trailing input: %s" (Lexer.token_name t))
         end;
         emit_doc telemetry options
           ~bytes:((Lexer.position lx).Lexer.offset - start)
           ~nodes;
         v))

let parse_exn ?options src =
  match parse ?options src with
  | Ok v -> v
  | Error e -> failwith (string_of_error e)

let parse_many ?(options = default_options) ?(telemetry = Telemetry.nop) src =
  let lx = lexer_of options src in
  with_error_telemetry telemetry
    (run lx (fun () ->
         let rec go acc =
           match Lexer.peek lx with
           | Lexer.Eof, _ -> List.rev acc
           | _ ->
               let start = (Lexer.position lx).Lexer.offset in
               let v, nodes = parse_value options lx in
               emit_doc telemetry options
                 ~bytes:((Lexer.position lx).Lexer.offset - start)
                 ~nodes;
               go (v :: acc)
         in
         go []))

let parse_substring ?(options = default_options) ?(telemetry = Telemetry.nop) src
    ~pos =
  let lx = lexer_of ~pos options src in
  with_error_telemetry telemetry
    (run lx (fun () ->
         let v, nodes = parse_value options lx in
         let stop = (Lexer.position lx).Lexer.offset in
         emit_doc telemetry options ~bytes:(stop - pos) ~nodes;
         (v, stop)))
