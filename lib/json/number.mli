(** Lexical grammar of JSON numbers (RFC 8259 §6) and round-trippable
    printing.

    JSON does not distinguish integers from floats; this toolkit does (see
    {!Value.t}) because schema languages and type systems do. A literal with
    no fraction and no exponent that fits in an OCaml [int] lexes as an
    integer; everything else lexes as a float. *)

type parsed =
  | Int_lit of int
  | Float_lit of float

val parse : string -> (parsed, string) result
(** Parse a complete JSON number literal. Rejects leading zeros, bare [.5],
    [5.], [+5], hex, [NaN], [Infinity] — exactly the RFC grammar — and
    well-formed literals that overflow the IEEE double range (they would
    parse to an infinity that {!print_float} cannot re-encode; underflow to
    [0.] is accepted). Total: malformed or unrepresentable literals return
    [Error], never raise — so every [Ok] value survives a print/parse
    round-trip. *)

val is_valid_literal : string -> bool

val print_float : float -> string
(** Shortest decimal representation that round-trips through
    [float_of_string], always containing ['.'], ['e'], or ['E'] so it cannot
    be mistaken for an integer literal.

    @raise Invalid_argument on NaN or infinities, which JSON cannot encode. *)

val float_fits_int : float -> bool
(** [true] when the float is integral and exactly representable as an OCaml
    [int]. Used by canonicalization and by equality of [Int]/[Float]. *)
