type parsed =
  | Int_lit of int
  | Float_lit of float

(* RFC 8259: number = [ minus ] int [ frac ] [ exp ]
   int  = zero / ( digit1-9 *DIGIT )
   frac = decimal-point 1*DIGIT
   exp  = e [ minus / plus ] 1*DIGIT *)
let scan s =
  let n = String.length s in
  let is_digit c = c >= '0' && c <= '9' in
  let pos = ref 0 in
  let ok = ref true in
  let has_frac = ref false and has_exp = ref false in
  if !pos < n && s.[!pos] = '-' then incr pos;
  (if !pos < n && s.[!pos] = '0' then incr pos
   else if !pos < n && is_digit s.[!pos] then
     while !pos < n && is_digit s.[!pos] do incr pos done
   else ok := false);
  if !ok && !pos < n && s.[!pos] = '.' then begin
    has_frac := true;
    incr pos;
    if !pos < n && is_digit s.[!pos] then
      while !pos < n && is_digit s.[!pos] do incr pos done
    else ok := false
  end;
  if !ok && !pos < n && (s.[!pos] = 'e' || s.[!pos] = 'E') then begin
    has_exp := true;
    incr pos;
    if !pos < n && (s.[!pos] = '+' || s.[!pos] = '-') then incr pos;
    if !pos < n && is_digit s.[!pos] then
      while !pos < n && is_digit s.[!pos] do incr pos done
    else ok := false
  end;
  if !ok && !pos = n && n > 0 then Ok (!has_frac, !has_exp) else Error ()

let parse s =
  (* [float_of_string] accepts a wider grammar than JSON (hex floats,
     underscores, "nan") and raises [Failure] on anything else, so it must
     only ever see literals [scan] accepted — and even then we go through
     the [_opt] variant so a discrepancy surfaces as [Error], never as an
     exception out of the lexer. *)
  let float_lit s =
    match float_of_string_opt s with
    | Some f when Float.is_finite f -> Ok (Float_lit f)
    | Some _ ->
        (* Overflow to ±infinity loses the value and — worse — produces a
           float no JSON printer can re-encode, so every component that
           re-renders parsed documents (checkpoint journals, translation)
           would trap on it later. Underflow to 0. is lossy but printable,
           so it stays accepted. *)
        Error (Printf.sprintf "number literal %S overflows the double range" s)
    | None -> Error (Printf.sprintf "unrepresentable number literal %S" s)
  in
  match scan s with
  | Error () -> Error (Printf.sprintf "invalid number literal %S" s)
  | Ok (has_frac, has_exp) ->
      if (not has_frac) && not has_exp then
        match int_of_string_opt s with
        | Some n -> Ok (Int_lit n)
        | None ->
            (* Magnitude exceeds the native int: degrade to float, as every
               JSON implementation with bounded integers does. *)
            float_lit s
      else float_lit s

let is_valid_literal s = Result.is_ok (scan s)

let float_fits_int f =
  Float.is_integer f
  && f >= -1.0e15 && f <= 1.0e15 (* conservatively within exact int range *)

let print_float f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
    invalid_arg "Json.Number.print_float: not representable in JSON"
  else if Float.is_integer f && Float.abs f < 1e16 then
    (* Integral floats print as "N.0", not exponent notation. *)
    Printf.sprintf "%.1f" f
  else
    (* Shortest round-tripping decimal: try increasing precision. *)
    let try_prec p =
      let s = Printf.sprintf "%.*g" p f in
      if float_of_string s = f then Some s else None
    in
    let rec search p = if p > 17 then Printf.sprintf "%.17g" f else
      match try_prec p with Some s -> s | None -> search (p + 1)
    in
    let s = search 1 in
    (* Ensure the literal cannot re-lex as an integer. *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"
